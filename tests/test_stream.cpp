// Bit-identity of the out-of-core streaming drivers against the in-memory
// scans, across kernels, blocking shapes, ragged shard boundaries,
// statistics and sequential/nest execution — plus the residency-budget
// invariant the streaming engine exists to provide.
//
// "Bit-identical" is literal: the streamed tiles and the ld_stat_scan tiles
// are assembled into dense matrices and compared with memcmp, so NaN
// payloads and -0.0 count as differences. The streaming path recomputes
// StatTables from persisted popcounts and rebases tile indices, so this is
// the test that pins its epilogue arithmetic to ld.cpp's.
#include "core/ld_stream.hpp"

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ld.hpp"
#include "core/parallel.hpp"
#include "sim/rng.hpp"
#include "util/contract.hpp"
#include "util/sync.hpp"

namespace ldla {
namespace {

BitMatrix random_matrix(std::size_t snps, std::size_t samples,
                        std::uint64_t seed, double density = 0.3) {
  Rng rng(seed);
  BitMatrix m(snps, samples);
  for (std::size_t s = 0; s < snps; ++s) {
    for (std::size_t b = 0; b < samples; ++b) {
      if (rng.next_bool(density)) m.set(s, b, true);
    }
  }
  return m;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// Assembles tiles into a dense matrix for the memcmp; a sentinel fill
/// makes a missing emission differ from an emitted zero.
struct Assembly {
  std::size_t cols = 0;
  std::vector<double> values;
  std::size_t cells = 0;
  Mutex mu;  // nest mode delivers tiles concurrently

  Assembly(std::size_t r, std::size_t c) : cols(c), values(r * c, -7777.0) {}

  void add(const LdTile& t) {
    MutexLock lock(mu);
    for (std::size_t i = 0; i < t.rows; ++i) {
      std::memcpy(values.data() + (t.row_begin + i) * cols + t.col_begin,
                  t.values + i * t.ld, t.cols * sizeof(double));
    }
    cells += t.rows * t.cols;
  }
};

void expect_identical(const Assembly& got, const Assembly& want,
                      const std::string& label) {
  ASSERT_EQ(got.cells, want.cells) << label << ": pair coverage differs";
  EXPECT_EQ(std::memcmp(got.values.data(), want.values.data(),
                        want.values.size() * sizeof(double)),
            0)
      << label << ": values diverge bitwise";
}

struct Case {
  std::size_t snps, samples, rows_per_shard;
  std::size_t kc_words, mc, nc;
};

// Ragged everywhere: shard sizes off the row count, blocking off the shard
// sizes, sample counts off the word/ku grids. The last case leaves a
// 1-row final shard (row 96 of 97).
const Case kCases[] = {
    {61, 130, 17, 2, 8, 8},
    {97, 1025, 32, 4, 16, 16},
    {97, 391, 24, 3, 8, 32},
};

class StreamIdentity
    : public ::testing::TestWithParam<std::tuple<KernelArch, Case>> {};

TEST_P(StreamIdentity, MatrixStreamMatchesStatScan) {
  const auto [arch, c] = GetParam();
  const BitMatrix g = random_matrix(c.snps, c.samples, 13 + c.snps);
  GemmConfig cfg;
  cfg.arch = arch;
  cfg.kc_words = c.kc_words;
  cfg.mc = c.mc;
  cfg.nc = c.nc;

  const std::string path = temp_path("identity.ldshard");
  write_shard_store(path, g.view(), cfg, c.rows_per_shard);
  ShardStore store = ShardStore::open(path);
  EXPECT_EQ(store.shards(), (c.snps + c.rows_per_shard - 1) /
                                c.rows_per_shard);

  for (const LdStatistic stat :
       {LdStatistic::kD, LdStatistic::kDPrime, LdStatistic::kRSquared}) {
    LdOptions opts;
    opts.stat = stat;
    opts.gemm = cfg;
    Assembly want(g.snps(), g.snps());
    ld_stat_scan(g, [&](const LdTile& t) { want.add(t); }, opts);

    for (const unsigned threads : {1u, 3u}) {
      StreamOptions sopts;
      sopts.stat = stat;
      sopts.threads = threads;
      Assembly got(g.snps(), g.snps());
      ld_matrix_stream(store, [&](const LdTile& t) { got.add(t); }, sopts);
      expect_identical(got, want,
                       "stat=" + std::to_string(static_cast<int>(stat)) +
                           " threads=" + std::to_string(threads));
    }
  }
}

TEST_P(StreamIdentity, CrossStreamMatchesCrossStatScan) {
  const auto [arch, c] = GetParam();
  const BitMatrix a = random_matrix(c.snps, c.samples, 17 + c.snps);
  const BitMatrix b = random_matrix(c.snps / 2 + 3, c.samples, 23 + c.snps);
  GemmConfig cfg;
  cfg.arch = arch;
  cfg.kc_words = c.kc_words;
  cfg.mc = c.mc;
  cfg.nc = c.nc;

  const std::string pa = temp_path("cross_a.ldshard");
  const std::string pb = temp_path("cross_b.ldshard");
  write_shard_store(pa, a.view(), cfg, c.rows_per_shard);
  write_shard_store(pb, b.view(), cfg, c.rows_per_shard + 5);
  ShardStore sa = ShardStore::open(pa);
  ShardStore sb = ShardStore::open(pb);

  LdOptions opts;
  opts.gemm = cfg;
  Assembly want(a.snps(), b.snps());
  ld_cross_stat_scan(a, b, [&](const LdTile& t) { want.add(t); }, opts);

  for (const unsigned threads : {1u, 3u}) {
    StreamOptions sopts;
    sopts.threads = threads;
    Assembly got(a.snps(), b.snps());
    ld_cross_stream(sa, sb, [&](const LdTile& t) { got.add(t); }, sopts);
    expect_identical(got, want, "cross threads=" + std::to_string(threads));
  }
}

std::vector<std::tuple<KernelArch, Case>> identity_cases() {
  std::vector<std::tuple<KernelArch, Case>> cases;
  for (const KernelArch arch : available_kernels()) {
    for (const Case& c : kCases) cases.emplace_back(arch, c);
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, StreamIdentity,
                         ::testing::ValuesIn(identity_cases()));

TEST(StreamBudget, ResidencyNeverExceedsTheBudgetAndResultsMatch) {
  const BitMatrix g = random_matrix(120, 700, 41);
  GemmConfig cfg;
  cfg.arch = KernelArch::kScalar;
  cfg.kc_words = 4;
  cfg.mc = 16;
  cfg.nc = 16;
  const std::string path = temp_path("budget.ldshard");
  write_shard_store(path, g.view(), cfg, /*rows_per_shard=*/16);
  ShardStore store = ShardStore::open(path);
  ASSERT_GE(store.shards(), 7u);

  LdOptions opts;
  opts.gemm = cfg;
  Assembly want(g.snps(), g.snps());
  ld_stat_scan(g, [&](const LdTile& t) { want.add(t); }, opts);

  for (const bool prefetch : {true, false}) {
    StreamOptions sopts;
    sopts.prefetch = prefetch;
    // The documented floor exactly: the tightest legal budget.
    sopts.cache_bytes =
        (prefetch ? 4 : 2) * store.max_shard_bytes();
    std::size_t peak = 0;
    Assembly got(g.snps(), g.snps());
    ld_matrix_stream(store,
                     [&](const LdTile& t) {
                       got.add(t);
                       peak = std::max(peak, store.resident_bytes());
                     },
                     sopts);
    EXPECT_LE(peak, sopts.cache_bytes) << "prefetch=" << prefetch;
    EXPECT_LE(store.resident_bytes(), sopts.cache_bytes);
    EXPECT_GT(peak, 0u);
    expect_identical(got, want,
                     std::string("budget prefetch=") +
                         (prefetch ? "on" : "off"));
  }

  // Below-floor budgets are a contract violation, not a silent degrade.
  StreamOptions tiny;
  tiny.cache_bytes = store.max_shard_bytes();
  EXPECT_THROW(ld_matrix_stream(store, [](const LdTile&) {}, tiny),
               ContractViolation);
}

TEST(StreamBudget, CrossStreamHonorsBudgetAcrossTwoStores) {
  const BitMatrix a = random_matrix(60, 500, 3);
  const BitMatrix b = random_matrix(45, 500, 4);
  GemmConfig cfg;
  cfg.arch = KernelArch::kScalar;
  cfg.kc_words = 4;
  const std::string pa = temp_path("budget_a.ldshard");
  const std::string pb = temp_path("budget_b.ldshard");
  write_shard_store(pa, a.view(), cfg, 16);
  write_shard_store(pb, b.view(), cfg, 12);
  ShardStore sa = ShardStore::open(pa);
  ShardStore sb = ShardStore::open(pb);

  LdOptions opts;
  opts.gemm = cfg;
  Assembly want(a.snps(), b.snps());
  ld_cross_stat_scan(a, b, [&](const LdTile& t) { want.add(t); }, opts);

  StreamOptions sopts;
  sopts.cache_bytes = 2 * (sa.max_shard_bytes() + sb.max_shard_bytes());
  std::size_t peak = 0;
  Assembly got(a.snps(), b.snps());
  ld_cross_stream(sa, sb,
                  [&](const LdTile& t) {
                    got.add(t);
                    peak = std::max(peak,
                                    sa.resident_bytes() + sb.resident_bytes());
                  },
                  sopts);
  EXPECT_LE(peak, sopts.cache_bytes);
  expect_identical(got, want, "cross budget");
}

TEST(StreamContracts, RejectsNullVisitorAndMismatchedStores) {
  const BitMatrix g = random_matrix(20, 100, 9);
  GemmConfig cfg;
  cfg.arch = KernelArch::kScalar;
  const std::string p1 = temp_path("contract1.ldshard");
  write_shard_store(p1, g.view(), cfg, 10);
  ShardStore s1 = ShardStore::open(p1);
  EXPECT_THROW(ld_matrix_stream(s1, nullptr), ContractViolation);

  // Different sample universe.
  const BitMatrix h = random_matrix(20, 130, 10);
  const std::string p2 = temp_path("contract2.ldshard");
  write_shard_store(p2, h.view(), cfg, 10);
  ShardStore s2 = ShardStore::open(p2);
  EXPECT_THROW(ld_cross_stream(s1, s2, [](const LdTile&) {}),
               ContractViolation);
}

}  // namespace
}  // namespace ldla
