#include "core/bit_transpose.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace ldla {
namespace {

TEST(Transpose64, IdentityAndDiagonalBlocks) {
  std::array<std::uint64_t, 64> zero{};
  transpose_64x64(zero);
  for (const auto w : zero) EXPECT_EQ(w, 0u);

  std::array<std::uint64_t, 64> diag{};
  for (unsigned i = 0; i < 64; ++i) diag[i] = std::uint64_t{1} << i;
  transpose_64x64(diag);
  for (unsigned i = 0; i < 64; ++i) {
    EXPECT_EQ(diag[i], std::uint64_t{1} << i) << "diagonal must be fixed";
  }
}

TEST(Transpose64, MatchesPerBitReference) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::array<std::uint64_t, 64> block;
    for (auto& w : block) w = rng.next_u64();
    const std::array<std::uint64_t, 64> original = block;
    transpose_64x64(block);
    for (unsigned r = 0; r < 64; ++r) {
      for (unsigned c = 0; c < 64; ++c) {
        const bool orig = (original[r] >> c) & 1u;
        const bool flip = (block[c] >> r) & 1u;
        ASSERT_EQ(orig, flip) << "trial " << trial << " (" << r << "," << c
                              << ")";
      }
    }
  }
}

TEST(Transpose64, InvolutionRestoresInput) {
  Rng rng(2);
  std::array<std::uint64_t, 64> block;
  for (auto& w : block) w = rng.next_u64();
  const auto original = block;
  transpose_64x64(block);
  transpose_64x64(block);
  EXPECT_EQ(block, original);
}

BitMatrix random_matrix(std::size_t snps, std::size_t samples,
                        std::uint64_t seed) {
  Rng rng(seed);
  BitMatrix m(snps, samples);
  for (std::size_t s = 0; s < snps; ++s) {
    for (std::size_t b = 0; b < samples; ++b) {
      if (rng.next_bool(0.5)) m.set(s, b, true);
    }
  }
  return m;
}

TEST(TransposeBits, MatchesPerBitAcrossShapes) {
  for (const auto& [rows, cols] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 1}, {1, 64}, {64, 1}, {64, 64}, {65, 63}, {3, 200},
           {200, 3}, {130, 130}, {127, 129}}) {
    const BitMatrix m = random_matrix(rows, cols, rows * 1000 + cols);
    const BitMatrix t = transpose_bits(m);
    ASSERT_EQ(t.snps(), cols);
    ASSERT_EQ(t.samples(), rows);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        ASSERT_EQ(m.get(r, c), t.get(c, r))
            << rows << "x" << cols << " at (" << r << "," << c << ")";
      }
    }
    EXPECT_TRUE(t.padding_is_clean());
  }
}

TEST(TransposeBits, DoubleTransposeIsIdentity) {
  const BitMatrix m = random_matrix(77, 201, 9);
  const BitMatrix back = transpose_bits(transpose_bits(m));
  ASSERT_EQ(back.snps(), m.snps());
  ASSERT_EQ(back.samples(), m.samples());
  for (std::size_t s = 0; s < m.snps(); ++s) {
    EXPECT_EQ(back.snp_string(s), m.snp_string(s));
  }
}

TEST(TransposeBits, EmptyMatrix) {
  BitMatrix empty;
  const BitMatrix t = transpose_bits(empty);
  EXPECT_EQ(t.snps(), 0u);
  EXPECT_EQ(t.samples(), 0u);
}

}  // namespace
}  // namespace ldla
