// In-nest parallel driver sweep: gemm_count_parallel_nest and
// syrk_count_parallel_nest must be bit-identical to the sequential fused
// drivers across kernel arch x blocking params x ragged shapes x team
// sizes, with every in-range (gemm) / canonical (syrk) element delivered
// exactly once. The team packing path must also be byte-identical to a
// sequential pack.
#include "core/gemm/nest.hpp"

#include <array>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/gemm/kernel.hpp"
#include "core/gemm/syrk.hpp"
#include "sim/rng.hpp"
#include "util/contract.hpp"

namespace ldla {
namespace {

BitMatrix random_matrix(std::size_t snps, std::size_t samples,
                        std::uint64_t seed) {
  Rng rng(seed);
  BitMatrix m(snps, samples);
  for (std::size_t s = 0; s < snps; ++s) {
    for (std::size_t b = 0; b < samples; ++b) {
      if (rng.next_bool(0.4)) m.set(s, b, true);
    }
  }
  return m;
}

// Ragged shapes, none a multiple of any register tile; sample counts off
// word boundaries so zero-padded words are always in play.
const std::vector<std::pair<std::size_t, std::size_t>> kShapes = {
    {5, 100}, {33, 323}, {70, 129}, {128, 1000}};

// Team sizes around the interesting boundaries: 1 (degrades to the
// sequential driver), 2, a non-power-of-two, and more members than most
// shapes have chunks.
const std::vector<unsigned> kTeams = {1, 2, 7, 16};

std::vector<GemmConfig> blocking_configs(KernelArch arch) {
  std::vector<GemmConfig> cfgs(3);
  cfgs[1].kc_words = 2;
  cfgs[1].mc = 8;
  cfgs[1].nc = 8;
  cfgs[2].kc_words = 3;
  cfgs[2].mc = 24;
  cfgs[2].nc = 16;
  for (GemmConfig& cfg : cfgs) cfg.arch = arch;
  return cfgs;
}

// Dense per-element capture of a tile stream over the rectangle
// [r0, r1) x [c0, c1). Records each in-window element exactly once (a
// duplicate delivery fails the test). With lower_only the window is the
// canonical gj <= gi band — strictly-upper slack of diagonal-straddling
// SYRK tiles is ignored, exactly as the real consumers ignore it.
struct ElementCapture {
  std::size_t r0, r1, c0, c1;
  bool lower_only;  ///< restrict the window to gj <= gi (SYRK canonical)
  std::vector<std::uint32_t> counts;
  std::vector<std::uint8_t> seen;
  std::mutex mu;
  bool duplicate = false;

  ElementCapture(std::size_t row_begin, std::size_t row_end,
                 std::size_t col_begin, std::size_t col_end, bool lower)
      : r0(row_begin), r1(row_end), c0(col_begin), c1(col_end),
        lower_only(lower), counts((row_end - row_begin) * (col_end - col_begin)),
        seen((row_end - row_begin) * (col_end - col_begin)) {}

  CountTileSink sink() {
    return [this](const CountTile& t) {
      const std::lock_guard<std::mutex> lock(mu);
      for (std::size_t i = 0; i < t.rows; ++i) {
        const std::size_t gi = t.row_begin + i;
        for (std::size_t j = 0; j < t.cols; ++j) {
          const std::size_t gj = t.col_begin + j;
          if (lower_only && gj > gi) continue;
          const std::size_t at = (gi - r0) * (c1 - c0) + (gj - c0);
          if (seen[at]) duplicate = true;
          seen[at] = 1;
          counts[at] = t.row(i)[j];
        }
      }
    };
  }
};

void expect_same_capture(const ElementCapture& got, const ElementCapture& want,
                         const char* what) {
  ASSERT_FALSE(got.duplicate) << what << ": element delivered twice";
  ASSERT_EQ(got.seen.size(), want.seen.size()) << what;
  for (std::size_t i = 0; i < want.seen.size(); ++i) {
    ASSERT_EQ(got.seen[i] != 0, want.seen[i] != 0)
        << what << " coverage mismatch at flat index " << i;
    ASSERT_EQ(got.counts[i], want.counts[i])
        << what << " count mismatch at flat index " << i;
  }
}

class ParallelNest : public ::testing::TestWithParam<KernelArch> {};

TEST_P(ParallelNest, GemmBitIdenticalToSequentialFused) {
  for (const auto& [n, k] : kShapes) {
    const BitMatrix a = random_matrix(n, k, n * 131 + k);
    const BitMatrix b = random_matrix(n + 11, k, n * 137 + k + 1);
    for (const GemmConfig& cfg : blocking_configs(GetParam())) {
      const GemmPlan plan = resolve_plan(cfg, a.view().n_words);
      const PackedBitMatrix pa(a.view(), plan, PackSides::kA);
      const PackedBitMatrix pb(b.view(), plan, PackSides::kB);

      ElementCapture want(0, n, 0, b.snps(), /*lower=*/false);
      gemm_count_fused(pa, 0, n, pb, 0, b.snps(), want.sink());
      ASSERT_FALSE(want.duplicate);

      for (const unsigned team : kTeams) {
        ElementCapture got(0, n, 0, b.snps(), /*lower=*/false);
        gemm_count_parallel_nest(pa, 0, n, pb, 0, b.snps(), got.sink(), team);
        expect_same_capture(got, want, "gemm full");
      }
    }
  }
}

TEST_P(ParallelNest, GemmSubRangesMatchSequentialFused) {
  // Ranges that start and end off every register-tile boundary, so the
  // chunk grid's ic0/jc0 snapping and clamp windows are all exercised.
  const BitMatrix a = random_matrix(61, 517, 21);
  const BitMatrix b = random_matrix(83, 517, 22);
  for (const GemmConfig& cfg : blocking_configs(GetParam())) {
    const GemmPlan plan = resolve_plan(cfg, a.view().n_words);
    const PackedBitMatrix pa(a.view(), plan, PackSides::kA);
    const PackedBitMatrix pb(b.view(), plan, PackSides::kB);
    for (const auto& [a0, a1, b0, b1] :
         std::vector<std::array<std::size_t, 4>>{
             {3, 58, 5, 77}, {7, 12, 41, 42}, {0, 61, 19, 83}}) {
      ElementCapture want(a0, a1, b0, b1, /*lower=*/false);
      gemm_count_fused(pa, a0, a1, pb, b0, b1, want.sink());
      for (const unsigned team : kTeams) {
        ElementCapture got(a0, a1, b0, b1, /*lower=*/false);
        gemm_count_parallel_nest(pa, a0, a1, pb, b0, b1, got.sink(), team);
        expect_same_capture(got, want, "gemm subrange");
      }
    }
  }
}

TEST_P(ParallelNest, SyrkBitIdenticalToSequentialFused) {
  for (const auto& [n, k] : kShapes) {
    const BitMatrix g = random_matrix(n, k, n * 149 + k);
    for (const GemmConfig& cfg : blocking_configs(GetParam())) {
      const GemmPlan plan = resolve_plan(cfg, g.view().n_words);
      const PackedBitMatrix pg(g.view(), plan, PackSides::kBoth);

      ElementCapture want(0, n, 0, n, /*lower=*/true);
      syrk_count_fused(pg, 0, n, want.sink());
      ASSERT_FALSE(want.duplicate);

      for (const unsigned team : kTeams) {
        ElementCapture got(0, n, 0, n, /*lower=*/true);
        syrk_count_parallel_nest(pg, 0, n, got.sink(), team);
        expect_same_capture(got, want, "syrk full");
      }
    }
  }
}

TEST_P(ParallelNest, SyrkSubRangesMatchSequentialFused) {
  const BitMatrix g = random_matrix(90, 413, 23);
  for (const GemmConfig& cfg : blocking_configs(GetParam())) {
    const GemmPlan plan = resolve_plan(cfg, g.view().n_words);
    const PackedBitMatrix pg(g.view(), plan, PackSides::kBoth);
    for (const auto& [r0, r1] : std::vector<std::pair<std::size_t, std::size_t>>{
             {3, 87}, {17, 33}, {0, 90}, {41, 42}}) {
      ElementCapture want(r0, r1, r0, r1, /*lower=*/true);
      syrk_count_fused(pg, r0, r1, want.sink());
      for (const unsigned team : kTeams) {
        ElementCapture got(r0, r1, r0, r1, /*lower=*/true);
        syrk_count_parallel_nest(pg, r0, r1, got.sink(), team);
        expect_same_capture(got, want, "syrk subrange");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, ParallelNest, ::testing::ValuesIn(available_kernels()),
    [](const ::testing::TestParamInfo<KernelArch>& param_info) {
      std::string name = kernel_arch_name(param_info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ParallelPack, TeamPackIsByteIdenticalToSequential) {
  const BitMatrix g = random_matrix(77, 700, 31);
  GemmConfig cfg;
  cfg.kc_words = 3;
  const GemmPlan plan = resolve_plan(cfg, g.view().n_words);
  const PackedBitMatrix seq(g.view(), plan, PackSides::kBoth, /*threads=*/1);
  for (const unsigned threads : {2u, 5u, 16u}) {
    const PackedBitMatrix par(g.view(), plan, PackSides::kBoth, threads);
    ASSERT_EQ(par.panels(), seq.panels());
    for (std::size_t p = 0; p < seq.panels(); ++p) {
      const PackedPanelView sa = seq.a_panel(p, 0, (seq.snps() + plan.mr - 1) / plan.mr);
      const PackedPanelView pa = par.a_panel(p, 0, (par.snps() + plan.mr - 1) / plan.mr);
      ASSERT_EQ(pa.words(), sa.words());
      for (std::size_t w = 0; w < sa.words(); ++w) {
        ASSERT_EQ(pa.data[w], sa.data[w])
            << "threads=" << threads << " panel " << p << " word " << w;
      }
      const PackedPanelView sb = seq.b_panel(p, 0, (seq.snps() + plan.nr - 1) / plan.nr);
      const PackedPanelView pb = par.b_panel(p, 0, (par.snps() + plan.nr - 1) / plan.nr);
      ASSERT_EQ(pb.words(), sb.words());
      for (std::size_t w = 0; w < sb.words(); ++w) {
        ASSERT_EQ(pb.data[w], sb.data[w])
            << "threads=" << threads << " panel " << p << " word " << w;
      }
    }
  }
}

TEST(ParallelNestContracts, RejectsBadRangesAndMissingSink) {
  const BitMatrix g = random_matrix(10, 64, 41);
  const GemmPlan plan = resolve_plan({}, g.view().n_words);
  const PackedBitMatrix pg(g.view(), plan, PackSides::kBoth);
  EXPECT_THROW(syrk_count_parallel_nest(pg, 0, 11, [](const CountTile&) {}),
               ContractViolation);
  EXPECT_THROW(syrk_count_parallel_nest(pg, 0, 10, nullptr),
               ContractViolation);
  EXPECT_THROW(
      gemm_count_parallel_nest(pg, 0, 11, pg, 0, 10, [](const CountTile&) {}),
      ContractViolation);
  EXPECT_THROW(gemm_count_parallel_nest(pg, 0, 10, pg, 0, 10, nullptr),
               ContractViolation);
}

TEST(ParallelNestContracts, EmptyRangeIsANoop) {
  const BitMatrix g = random_matrix(10, 64, 43);
  const GemmPlan plan = resolve_plan({}, g.view().n_words);
  const PackedBitMatrix pg(g.view(), plan, PackSides::kBoth);
  bool called = false;
  syrk_count_parallel_nest(pg, 4, 4, [&](const CountTile&) { called = true; },
                           8);
  gemm_count_parallel_nest(pg, 0, 0, pg, 0, 10,
                           [&](const CountTile&) { called = true; }, 8);
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace ldla
