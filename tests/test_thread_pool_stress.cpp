// Stress and exception-safety tests for ThreadPool, written to be run
// under TSan (cmake --preset tsan): concurrent callers share one pool, so
// any completion-tracking state that leaks across task groups shows up as a
// race or a lost wakeup here.

#include "util/thread_pool.hpp"

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/contract.hpp"

namespace ldla {
namespace {

TEST(ThreadPoolStress, ConcurrentCallersShareOnePool) {
  ThreadPool pool(4);
  constexpr std::size_t kCallers = 8;
  constexpr std::size_t kRounds = 50;
  constexpr std::size_t kTasks = 16;

  std::atomic<std::size_t> total{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &total] {
      for (std::size_t r = 0; r < kRounds; ++r) {
        pool.run_tasks(kTasks, [&total](std::size_t) {
          total.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), kCallers * kRounds * kTasks);
}

TEST(ThreadPoolStress, ConcurrentParallelForCoversEveryRange) {
  ThreadPool pool(3);
  constexpr std::size_t kCallers = 6;
  constexpr std::size_t kN = 1000;

  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& h : hits) {
    h = std::vector<std::atomic<int>>(kN);
  }
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &hits, c] {
      pool.parallel_for(0, kN, [&hits, c](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          hits[c][i].fetch_add(1, std::memory_order_relaxed);
        }
      });
    });
  }
  for (auto& t : callers) t.join();
  for (std::size_t c = 0; c < kCallers; ++c) {
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[c][i].load(), 1)
          << "caller " << c << " index " << i;
    }
  }
}

TEST(ThreadPoolStress, GlobalPoolHandlesConcurrentCallers) {
  constexpr std::size_t kCallers = 4;
  std::atomic<std::size_t> total{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&total] {
      for (int r = 0; r < 20; ++r) {
        global_pool().run_tasks(8, [&total](std::size_t) {
          total.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), kCallers * 20u * 8u);
}

TEST(ThreadPoolStress, TaskExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.run_tasks(32,
                     [](std::size_t t) {
                       if (t == 7) throw std::runtime_error("task 7 failed");
                     }),
      std::runtime_error);
}

TEST(ThreadPoolStress, CallerSliceExceptionPropagates) {
  // The caller runs task index tasks-1 itself; a throw there must follow the
  // same capture-drain-rethrow path, not unwind past the in-flight batch.
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(pool.run_tasks(8,
                              [&completed](std::size_t t) {
                                if (t == 7) throw std::runtime_error("caller");
                                completed.fetch_add(1);
                              }),
               std::runtime_error);
  EXPECT_EQ(completed.load(), 7);
}

TEST(ThreadPoolStress, AllTasksFinishBeforeRethrow) {
  // run_tasks must drain the whole group before rethrowing, so references
  // captured by the tasks are dead by the time the caller's scope unwinds.
  ThreadPool pool(4);
  std::atomic<int> finished{0};
  EXPECT_THROW(pool.run_tasks(64,
                              [&finished](std::size_t t) {
                                if (t % 16 == 3) {
                                  throw std::runtime_error("boom");
                                }
                                finished.fetch_add(1);
                              }),
               std::runtime_error);
  EXPECT_EQ(finished.load(), 60);  // 64 tasks, 4 throwers
}

TEST(ThreadPoolStress, PoolIsReusableAfterException) {
  ThreadPool pool(3);
  for (int round = 0; round < 10; ++round) {
    EXPECT_THROW(pool.run_tasks(8,
                                [](std::size_t t) {
                                  if (t == 0) throw std::logic_error("round");
                                }),
                 std::logic_error);
    std::atomic<int> ok{0};
    pool.run_tasks(8, [&ok](std::size_t) { ok.fetch_add(1); });
    EXPECT_EQ(ok.load(), 8);
  }
}

TEST(ThreadPoolStress, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t lo, std::size_t) {
                          if (lo == 0) throw std::runtime_error("chunk 0");
                        }),
      std::runtime_error);
  // and stays usable
  std::atomic<int> n{0};
  pool.parallel_for(0, 100, [&n](std::size_t lo, std::size_t hi) {
    n.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(n.load(), 100);
}

TEST(ThreadPoolStress, ConcurrentCallersWithMixedOutcomes) {
  // Half the callers throw, half succeed, all on the same pool at once; a
  // failure in one group must never bleed into another.
  ThreadPool pool(4);
  constexpr std::size_t kCallers = 8;
  std::atomic<std::size_t> succeeded{0};
  std::atomic<std::size_t> threw{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &succeeded, &threw, c] {
      for (int r = 0; r < 25; ++r) {
        try {
          pool.run_tasks(8, [c](std::size_t t) {
            if (c % 2 == 0 && t == 4) {
              throw std::runtime_error("caller " + std::to_string(c));
            }
          });
          succeeded.fetch_add(1);
        } catch (const std::runtime_error&) {
          threw.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(threw.load(), 4u * 25u);
  EXPECT_EQ(succeeded.load(), 4u * 25u);
}

TEST(ThreadPoolStress, ExceptionMessageSurvivesPropagation) {
  ThreadPool pool(2);
  try {
    pool.run_tasks(4, [](std::size_t t) {
      if (t == 1) throw std::runtime_error("distinctive message 42");
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "distinctive message 42");
  }
}

TEST(ThreadPoolStress, SingleThreadPoolPropagatesExceptions) {
  // With zero workers everything runs on the caller; the exception path must
  // behave identically.
  ThreadPool pool(1);
  std::atomic<int> done{0};
  EXPECT_THROW(pool.run_tasks(5,
                              [&done](std::size_t t) {
                                if (t == 2) throw std::runtime_error("solo");
                                done.fetch_add(1);
                              }),
               std::runtime_error);
  EXPECT_EQ(done.load(), 4);
}

TEST(ThreadPoolStress, ManySmallBatchesFromManyCallers) {
  // Lots of tiny groups maximize contention on the shared queue/cv — the
  // classic lost-wakeup shaker for fork-join pools.
  ThreadPool pool(4);
  constexpr std::size_t kCallers = 8;
  std::atomic<std::size_t> total{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &total] {
      for (int r = 0; r < 200; ++r) {
        pool.run_tasks(2, [&total](std::size_t) {
          total.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), kCallers * 200u * 2u);
}

}  // namespace
}  // namespace ldla
