#include "core/parallel.hpp"

#include <cmath>
#include <mutex>
#include <set>

#include <gtest/gtest.h>

#include "sim/wright_fisher.hpp"

namespace ldla {
namespace {

BitMatrix test_matrix(std::size_t snps, std::size_t samples,
                      std::uint64_t seed) {
  WrightFisherParams p;
  p.n_snps = snps;
  p.n_samples = samples;
  p.seed = seed;
  p.founders = 16;
  return simulate_genotypes(p);
}

void expect_matrices_equal(const LdMatrix& got, const LdMatrix& want) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (std::size_t i = 0; i < got.rows(); ++i) {
    for (std::size_t j = 0; j < got.cols(); ++j) {
      if (std::isnan(want(i, j))) {
        EXPECT_TRUE(std::isnan(got(i, j))) << i << "," << j;
      } else {
        EXPECT_DOUBLE_EQ(got(i, j), want(i, j)) << i << "," << j;
      }
    }
  }
}

// The invariant the paper's Tables rely on: thread count never changes the
// result, only the wall clock.
class ParallelThreads : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelThreads, SymmetricMatrixMatchesSequential) {
  const BitMatrix g = test_matrix(43, 150, 1);
  const LdMatrix sequential = ld_matrix(g);
  LdOptions opts;
  opts.slab_rows = 8;
  expect_matrices_equal(ld_matrix_parallel(g, opts, GetParam()), sequential);
}

TEST_P(ParallelThreads, CrossMatrixMatchesSequential) {
  const BitMatrix a = test_matrix(19, 90, 2);
  const BitMatrix b = test_matrix(27, 90, 3);
  const LdMatrix sequential = ld_cross_matrix(a, b);
  LdOptions opts;
  opts.slab_rows = 5;
  expect_matrices_equal(ld_cross_matrix_parallel(a, b, opts, GetParam()),
                        sequential);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelThreads,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

TEST(ParallelScan, CoversEveryLowerPairExactlyOnce) {
  const BitMatrix g = test_matrix(37, 70, 4);
  LdOptions opts;
  opts.slab_rows = 6;
  std::mutex mu;
  std::set<std::pair<std::size_t, std::size_t>> seen;
  bool duplicate = false;
  ld_scan_parallel(
      g,
      [&](const LdTile& tile) {
        std::lock_guard lock(mu);
        for (std::size_t i = 0; i < tile.rows; ++i) {
          for (std::size_t j = 0; j < tile.cols; ++j) {
            if (!seen.insert({tile.row_begin + i, tile.col_begin + j}).second) {
              duplicate = true;
            }
          }
        }
      },
      opts, 4);
  EXPECT_FALSE(duplicate);
  for (std::size_t i = 0; i < g.snps(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      EXPECT_TRUE(seen.contains({i, j})) << i << "," << j;
    }
  }
}

TEST(ParallelScan, AggregateIndependentOfThreadCount) {
  const BitMatrix g = test_matrix(50, 128, 5);
  auto aggregate = [&](unsigned threads) {
    std::mutex mu;
    double sum = 0.0;
    std::uint64_t pairs = 0;
    LdOptions opts;
    opts.slab_rows = 9;
    ld_scan_parallel(
        g,
        [&](const LdTile& tile) {
          double local = 0.0;
          std::uint64_t local_pairs = 0;
          for (std::size_t i = 0; i < tile.rows; ++i) {
            // Only count the canonical j <= i triangle for the aggregate.
            const std::size_t gi = tile.row_begin + i;
            for (std::size_t j = 0; j < tile.cols; ++j) {
              const std::size_t gj = tile.col_begin + j;
              if (gj > gi) continue;
              const double v = tile.at(i, j);
              if (std::isfinite(v)) local += v;
              ++local_pairs;
            }
          }
          std::lock_guard lock(mu);
          sum += local;
          pairs += local_pairs;
        },
        opts, threads);
    return std::pair{sum, pairs};
  };

  const auto [sum1, pairs1] = aggregate(1);
  EXPECT_EQ(pairs1, ld_pair_count(g.snps()));
  for (unsigned t : {2u, 3u, 5u}) {
    const auto [sum, pairs] = aggregate(t);
    EXPECT_EQ(pairs, pairs1);
    EXPECT_NEAR(sum, sum1, 1e-9);
  }
}

TEST(ParallelDrivers, ZeroThreadsMeansHardwareConcurrency) {
  const BitMatrix g = test_matrix(11, 64, 6);
  const LdMatrix a = ld_matrix_parallel(g, {}, 0);
  const LdMatrix b = ld_matrix(g);
  expect_matrices_equal(a, b);
}

TEST(ParallelDrivers, MoreThreadsThanRows) {
  const BitMatrix g = test_matrix(3, 64, 7);
  const LdMatrix a = ld_matrix_parallel(g, {}, 16);
  expect_matrices_equal(a, ld_matrix(g));
}

}  // namespace
}  // namespace ldla
