#include "io/ldm_binary.hpp"
#include "io/matrix_writer.hpp"
#include "io/ms_format.hpp"
#include "io/vcf_lite.hpp"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "sim/wright_fisher.hpp"
#include "util/contract.hpp"

namespace ldla {
namespace {

// --- ms format -------------------------------------------------------------

constexpr const char* kMsSample =
    "ms 4 1 -t 5\n"
    "12345 23456 34567\n"
    "\n"
    "//\n"
    "segsites: 5\n"
    "positions: 0.1 0.2 0.5 0.7 0.9\n"
    "10110\n"
    "01010\n"
    "11111\n"
    "00000\n"
    "\n";

TEST(MsFormat, ParsesSampleInput) {
  std::istringstream in(kMsSample);
  const auto reps = parse_ms(in);
  ASSERT_EQ(reps.size(), 1u);
  const MsReplicate& r = reps[0];
  EXPECT_EQ(r.genotypes.snps(), 5u);
  EXPECT_EQ(r.genotypes.samples(), 4u);
  ASSERT_EQ(r.positions.size(), 5u);
  EXPECT_DOUBLE_EQ(r.positions[2], 0.5);
  // Transposition check: SNP 0 across samples is 1,0,1,0.
  EXPECT_EQ(r.genotypes.snp_string(0), "1010");
  EXPECT_EQ(r.genotypes.snp_string(4), "0010");
}

TEST(MsFormat, RoundTripsThroughWriter) {
  WrightFisherParams p;
  p.n_snps = 37;
  p.n_samples = 21;
  p.seed = 5;
  const SimulatedDataset d = simulate_wright_fisher(p);
  MsReplicate rep;
  rep.genotypes = d.genotypes.clone();
  rep.positions = d.positions;

  std::stringstream io;
  write_ms(io, rep);
  const auto reps = parse_ms(io);
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_EQ(reps[0].genotypes.snps(), 37u);
  EXPECT_EQ(reps[0].genotypes.samples(), 21u);
  for (std::size_t s = 0; s < 37; ++s) {
    EXPECT_EQ(reps[0].genotypes.snp_string(s), d.genotypes.snp_string(s));
    EXPECT_DOUBLE_EQ(reps[0].positions[s], d.positions[s]);
  }
}

TEST(MsFormat, ParsesMultipleReplicates) {
  std::string two = std::string(kMsSample) +
                    "//\n"
                    "segsites: 2\n"
                    "positions: 0.3 0.6\n"
                    "10\n"
                    "01\n"
                    "\n";
  std::istringstream in(two);
  const auto reps = parse_ms(in);
  ASSERT_EQ(reps.size(), 2u);
  EXPECT_EQ(reps[1].genotypes.snps(), 2u);
  EXPECT_EQ(reps[1].genotypes.samples(), 2u);
}

TEST(MsFormat, RejectsMalformedInput) {
  {
    std::istringstream in("no replicates here\n");
    EXPECT_THROW(parse_ms(in), ParseError);
  }
  {
    std::istringstream in("//\nsegsites: 2\npositions: 0.5\n10\n01\n");
    EXPECT_THROW(parse_ms(in), ParseError) << "positions != segsites";
  }
  {
    std::istringstream in("//\nsegsites: 3\npositions: 0.1 0.2 0.3\n10\n");
    EXPECT_THROW(parse_ms(in), ParseError) << "haplotype too short";
  }
  {
    std::istringstream in(
        "//\nsegsites: 2\npositions: 0.1 0.2\n1x\n00\n");
    EXPECT_THROW(parse_ms(in), ParseError) << "bad character";
  }
}

TEST(MsFormat, MissingFileThrows) {
  EXPECT_THROW(parse_ms_file("/nonexistent/path.ms"), Error);
}

// --- VCF -------------------------------------------------------------------

constexpr const char* kVcfSample =
    "##fileformat=VCFv4.2\n"
    "##source=test\n"
    "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tS1\tS2\tS3\n"
    "1\t100\trs1\tA\tG\t.\tPASS\t.\tGT\t0|1\t1|1\t0|0\n"
    "1\t250\trs2\tC\tT\t.\tPASS\t.\tGT:DP\t1|0:12\t0|0:9\t0|1:30\n";

TEST(VcfLite, ParsesPhasedDiploidRecords) {
  std::istringstream in(kVcfSample);
  const VcfData d = parse_vcf(in);
  EXPECT_EQ(d.genotypes.snps(), 2u);
  EXPECT_EQ(d.genotypes.samples(), 6u);  // 3 individuals x 2 haplotypes
  ASSERT_EQ(d.positions.size(), 2u);
  EXPECT_EQ(d.positions[0], 100u);
  EXPECT_EQ(d.positions[1], 250u);
  EXPECT_EQ(d.ids[0], "rs1");
  EXPECT_EQ(d.genotypes.snp_string(0), "011100");
  EXPECT_EQ(d.genotypes.snp_string(1), "100001");
}

TEST(VcfLite, MultiAllelicSiteThrowsOrSkips) {
  const std::string vcf =
      "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tS1\n"
      "1\t10\t.\tA\tG,T\t.\t.\t.\tGT\t1|2\n"
      "1\t20\t.\tA\tG\t.\t.\t.\tGT\t1|0\n";
  {
    std::istringstream in(vcf);
    EXPECT_THROW(parse_vcf(in), ParseError);
  }
  {
    std::istringstream in(vcf);
    const VcfData d = parse_vcf(in, /*skip_invalid=*/true);
    EXPECT_EQ(d.genotypes.snps(), 1u);
    EXPECT_EQ(d.skipped, 1u);
    EXPECT_EQ(d.positions[0], 20u);
  }
}

TEST(VcfLite, MissingGenotypeThrowsOrSkips) {
  const std::string vcf =
      "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tS1\n"
      "1\t10\t.\tA\tG\t.\t.\t.\tGT\t.|.\n";
  std::istringstream in(vcf);
  EXPECT_THROW(parse_vcf(in), ParseError);
  std::istringstream in2(vcf);
  const VcfData d = parse_vcf(in2, true);
  EXPECT_EQ(d.genotypes.snps(), 0u);
  EXPECT_EQ(d.skipped, 1u);
}

TEST(VcfLite, RecordBeforeHeaderThrows) {
  std::istringstream in("1\t10\t.\tA\tG\t.\t.\t.\tGT\t1|0\n");
  EXPECT_THROW(parse_vcf(in), ParseError);
}

TEST(VcfLite, TruncatedRecordThrows) {
  std::istringstream in(
      "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tS1\n"
      "1\t10\t.\tA\n");
  EXPECT_THROW(parse_vcf(in), ParseError);
}

// --- ldm binary --------------------------------------------------------------

TEST(LdmBinary, RoundTrips) {
  WrightFisherParams p;
  p.n_snps = 29;
  p.n_samples = 133;
  p.seed = 6;
  const BitMatrix m = simulate_genotypes(p);
  std::stringstream io(std::ios::in | std::ios::out | std::ios::binary);
  write_ldm(io, m);
  const BitMatrix back = read_ldm(io);
  ASSERT_EQ(back.snps(), m.snps());
  ASSERT_EQ(back.samples(), m.samples());
  for (std::size_t s = 0; s < m.snps(); ++s) {
    EXPECT_EQ(back.snp_string(s), m.snp_string(s));
  }
}

TEST(LdmBinary, RejectsBadMagic) {
  std::stringstream io;
  io << "NOTLDM00" << std::string(64, '\0');
  EXPECT_THROW(read_ldm(io), ParseError);
}

TEST(LdmBinary, RejectsTruncatedPayload) {
  const BitMatrix m(4, 100);
  std::stringstream io(std::ios::in | std::ios::out | std::ios::binary);
  write_ldm(io, m);
  std::string bytes = io.str();
  bytes.resize(bytes.size() - 8);  // chop one word
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW(read_ldm(in), ParseError);
}

// --- matrix writer -----------------------------------------------------------

TEST(MatrixWriter, CsvHasExpectedShapeAndNan) {
  LdMatrix m(2, 3);
  m(0, 0) = 1.0;
  m(0, 1) = 0.25;
  m(0, 2) = std::numeric_limits<double>::quiet_NaN();
  m(1, 2) = -0.5;
  std::ostringstream out;
  write_matrix_csv(out, m);
  EXPECT_EQ(out.str(), "1,0.25,nan\n0,0,-0.5\n");
}

TEST(MatrixWriter, TopPairsRanksDescendingLowerTriangle) {
  LdMatrix m(4, 4);
  m(1, 0) = m(0, 1) = 0.3;
  m(2, 0) = m(0, 2) = 0.9;
  m(2, 1) = m(1, 2) = std::numeric_limits<double>::quiet_NaN();
  m(3, 2) = m(2, 3) = 0.5;
  const auto pairs = top_pairs(m, 10);
  ASSERT_EQ(pairs.size(), 5u);  // 6 lower pairs minus 1 NaN
  EXPECT_EQ(pairs[0].i, 2u);
  EXPECT_EQ(pairs[0].j, 0u);
  EXPECT_DOUBLE_EQ(pairs[0].value, 0.9);
  EXPECT_DOUBLE_EQ(pairs[1].value, 0.5);
  EXPECT_DOUBLE_EQ(pairs[2].value, 0.3);
}

TEST(MatrixWriter, TopPairsTruncatesToCount) {
  LdMatrix m(5, 5);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      m(i, j) = static_cast<double>(i + j) / 10.0;
    }
  }
  EXPECT_EQ(top_pairs(m, 3).size(), 3u);
}

TEST(MatrixWriter, TopPairsRejectsRectangular) {
  LdMatrix m(2, 3);
  EXPECT_THROW((void)top_pairs(m, 1), ContractViolation);
}

TEST(MatrixWriter, ReportRendersRows) {
  std::ostringstream out;
  write_top_pairs(out, {{3, 1, 0.75}}, "r^2");
  const std::string s = out.str();
  EXPECT_NE(s.find("r^2"), std::string::npos);
  EXPECT_NE(s.find("0.75"), std::string::npos);
}

}  // namespace
}  // namespace ldla
