#include "core/gemm/macro.hpp"

#include <tuple>

#include <gtest/gtest.h>

#include "baselines/naive.hpp"
#include "core/gemm/kernel.hpp"
#include "sim/rng.hpp"
#include "util/contract.hpp"

namespace ldla {
namespace {

BitMatrix random_matrix(std::size_t snps, std::size_t samples,
                        std::uint64_t seed, double density = 0.4) {
  Rng rng(seed);
  BitMatrix m(snps, samples);
  for (std::size_t s = 0; s < snps; ++s) {
    for (std::size_t b = 0; b < samples; ++b) {
      if (rng.next_bool(density)) m.set(s, b, true);
    }
  }
  return m;
}

void expect_equal_counts(const CountMatrix& got, const CountMatrix& want) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (std::size_t i = 0; i < got.rows(); ++i) {
    for (std::size_t j = 0; j < got.cols(); ++j) {
      ASSERT_EQ(got(i, j), want(i, j)) << "at (" << i << ", " << j << ")";
    }
  }
}

// (kernel, m, n, samples) sweep — shapes chosen to stress register-tile
// edges (m, n not multiples of mr/nr), word-boundary samples, and multiple
// kc panels.
using GemmCase = std::tuple<KernelArch, std::size_t, std::size_t, std::size_t>;

class GemmOracle : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmOracle, MatchesNaiveBitLoop) {
  const auto [arch, m, n, samples] = GetParam();
  const BitMatrix a = random_matrix(m, samples, 42 + m);
  const BitMatrix b = random_matrix(n, samples, 99 + n);

  GemmConfig cfg;
  cfg.arch = arch;
  CountMatrix c(m, n);
  gemm_count(a.view(), b.view(), c.ref(), cfg);

  const CountMatrix expected = naive_count_matrix(a, b);
  expect_equal_counts(c, expected);
}

std::vector<GemmCase> oracle_cases() {
  std::vector<GemmCase> cases;
  for (KernelArch arch : available_kernels()) {
    for (const auto& [m, n, k] :
         std::vector<std::tuple<std::size_t, std::size_t, std::size_t>>{
             {1, 1, 1},      // minimal
             {4, 4, 64},     // one exact tile, one word
             {3, 5, 64},     // sub-tile edges
             {17, 9, 100},   // ragged everything
             {16, 16, 1000}, // multiple words, word tail
             {33, 47, 64 * 9 + 7},  // several kc chunks for vector kernels
             {8, 70, 129},   // n wider than a B sliver row
         }) {
      cases.emplace_back(arch, m, n, k);
    }
  }
  return cases;
}

std::string oracle_case_name(const ::testing::TestParamInfo<GemmCase>& info) {
  std::string name = kernel_arch_name(std::get<0>(info.param)) + "_m" +
                     std::to_string(std::get<1>(info.param)) + "_n" +
                     std::to_string(std::get<2>(info.param)) + "_k" +
                     std::to_string(std::get<3>(info.param));
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmOracle,
                         ::testing::ValuesIn(oracle_cases()),
                         oracle_case_name);

TEST(Gemm, AllKernelsAgreeOnLargerProblem) {
  const BitMatrix a = random_matrix(53, 64 * 40 + 13, 7);
  const BitMatrix b = random_matrix(61, 64 * 40 + 13, 8);
  const auto kernels = available_kernels();
  ASSERT_FALSE(kernels.empty());

  CountMatrix reference(53, 61);
  {
    GemmConfig cfg;
    cfg.arch = kernels.front();
    gemm_count(a.view(), b.view(), reference.ref(), cfg);
  }
  for (std::size_t ki = 1; ki < kernels.size(); ++ki) {
    GemmConfig cfg;
    cfg.arch = kernels[ki];
    CountMatrix c(53, 61);
    gemm_count(a.view(), b.view(), c.ref(), cfg);
    SCOPED_TRACE(kernel_arch_name(kernels[ki]));
    expect_equal_counts(c, reference);
  }
}

TEST(Gemm, ResultInvariantUnderBlockingParameters) {
  const BitMatrix a = random_matrix(40, 2000, 11);
  const BitMatrix b = random_matrix(35, 2000, 12);
  const CountMatrix expected = naive_count_matrix(a, b);

  for (const auto& [kc, mc, nc] :
       std::vector<std::tuple<std::size_t, std::size_t, std::size_t>>{
           {8, 8, 8}, {16, 12, 20}, {1024, 64, 64}, {3, 4, 4}}) {
    GemmConfig cfg;
    cfg.kc_words = kc;
    cfg.mc = mc;
    cfg.nc = nc;
    CountMatrix c(40, 35);
    gemm_count(a.view(), b.view(), c.ref(), cfg);
    SCOPED_TRACE("kc=" + std::to_string(kc) + " mc=" + std::to_string(mc) +
                 " nc=" + std::to_string(nc));
    expect_equal_counts(c, expected);
  }
}

TEST(Gemm, PackingAblationMatches) {
  const BitMatrix a = random_matrix(21, 500, 13);
  const BitMatrix b = random_matrix(19, 500, 14);
  const CountMatrix expected = naive_count_matrix(a, b);

  GemmConfig cfg;
  cfg.packing = false;
  CountMatrix c(21, 19);
  gemm_count(a.view(), b.view(), c.ref(), cfg);
  expect_equal_counts(c, expected);
}

TEST(Gemm, BlockingAblationMatches) {
  const BitMatrix a = random_matrix(21, 500, 15);
  const BitMatrix b = random_matrix(19, 500, 16);
  const CountMatrix expected = naive_count_matrix(a, b);

  GemmConfig cfg;
  cfg.blocking = false;
  CountMatrix c(21, 19);
  gemm_count(a.view(), b.view(), c.ref(), cfg);
  expect_equal_counts(c, expected);
}

TEST(Gemm, AccumulatesIntoExistingOutput) {
  const BitMatrix a = random_matrix(6, 64, 17);
  const BitMatrix b = random_matrix(6, 64, 18);
  CountMatrix c(6, 6);
  gemm_count(a.view(), b.view(), c.ref());
  const std::uint32_t first = c(2, 3);
  gemm_count(a.view(), b.view(), c.ref());
  EXPECT_EQ(c(2, 3), 2 * first);
}

TEST(Gemm, PaddingBitsNeverLeakIntoCounts) {
  // samples = 1: rows are 1/64th full; any kernel reading padding would
  // inflate counts.
  const BitMatrix a = random_matrix(9, 1, 19, 1.0);  // all ones (1 bit)
  CountMatrix c(9, 9);
  gemm_count(a.view(), a.view(), c.ref());
  for (std::size_t i = 0; i < 9; ++i) {
    for (std::size_t j = 0; j < 9; ++j) {
      EXPECT_EQ(c(i, j), 1u);
    }
  }
}

TEST(Gemm, SubViewsComputeSubBlocks) {
  const BitMatrix g = random_matrix(20, 300, 20);
  const CountMatrix full = naive_count_matrix(g, g);

  CountMatrix c(5, 8);
  gemm_count(g.view(10, 15), g.view(2, 10), c.ref());
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_EQ(c(i, j), full(10 + i, 2 + j));
    }
  }
}

TEST(Gemm, RejectsMismatchedOperands) {
  const BitMatrix a = random_matrix(4, 64, 21);
  const BitMatrix b = random_matrix(4, 128, 22);
  CountMatrix c(4, 4);
  EXPECT_THROW(gemm_count(a.view(), b.view(), c.ref()), ContractViolation);
}

TEST(Gemm, RejectsTooSmallOutput) {
  const BitMatrix a = random_matrix(4, 64, 23);
  CountMatrix c(3, 4);
  EXPECT_THROW(gemm_count(a.view(), a.view(), c.ref()), ContractViolation);
}

TEST(Gemm, EmptyOperandsAreNoops) {
  const BitMatrix a = random_matrix(4, 64, 24);
  BitMatrix empty;
  CountMatrix c(4, 4);
  gemm_count(empty.view(), a.view(), c.ref());  // must not crash
  gemm_count(a.view(), empty.view(), c.ref());
}

TEST(GemmParallel, MatchesSequentialAcrossThreadCounts) {
  const BitMatrix a = random_matrix(45, 900, 31);
  const BitMatrix b = random_matrix(38, 900, 32);
  CountMatrix expected(45, 38);
  gemm_count(a.view(), b.view(), expected.ref());
  for (unsigned t : {1u, 2u, 3u, 8u}) {
    CountMatrix c(45, 38);
    gemm_count_parallel(a.view(), b.view(), c.ref(), {}, t);
    SCOPED_TRACE(t);
    expect_equal_counts(c, expected);
  }
}

TEST(GemmParallel, SingleRowAndEmptyAreSafe) {
  const BitMatrix a = random_matrix(1, 64, 33);
  CountMatrix c(1, 1);
  gemm_count_parallel(a.view(), a.view(), c.ref(), {}, 4);
  EXPECT_EQ(c(0, 0), static_cast<std::uint32_t>(a.derived_count(0)));
  BitMatrix empty;
  gemm_count_parallel(empty.view(), a.view(), c.ref(), {}, 4);
}

TEST(GemmTuner, ReturnsValidConfigThatComputesCorrectly) {
  const BitMatrix g = random_matrix(60, 3000, 34);
  const GemmConfig tuned = tune_gemm_config(g.view());
  EXPECT_GT(tuned.kc_words, 0u);
  EXPECT_GT(tuned.mc, 0u);
  CountMatrix c(60, 60);
  gemm_count(g.view(), g.view(), c.ref(), tuned);
  const CountMatrix expected = naive_count_matrix(g, g);
  expect_equal_counts(c, expected);
}

TEST(GemmTuner, EmptySampleReturnsBase) {
  BitMatrix empty;
  GemmConfig base;
  base.kc_words = 123;
  const GemmConfig tuned = tune_gemm_config(empty.view(), base);
  EXPECT_EQ(tuned.kc_words, 123u);
}

TEST(GemmPlan, ForcedUnavailableKernelThrows) {
  // kStrawman requires AVX2; if this machine lacks it the resolve must
  // throw rather than silently fall back.
  GemmConfig cfg;
  cfg.arch = KernelArch::kStrawman;
  if (!kernel_available(KernelArch::kStrawman)) {
    EXPECT_THROW(resolve_plan(cfg, 10), ContractViolation);
  } else {
    EXPECT_EQ(resolve_plan(cfg, 10).arch, KernelArch::kStrawman);
  }
}

TEST(GemmPlan, AutoResolvesToAvailableKernel) {
  const GemmPlan plan = resolve_plan(GemmConfig{}, 100);
  EXPECT_NE(plan.arch, KernelArch::kAuto);
  EXPECT_TRUE(kernel_available(plan.arch));
  EXPECT_GT(plan.kc_words, 0u);
  EXPECT_EQ(plan.kc_words % plan.ku, 0u);
  EXPECT_EQ(plan.mc % plan.mr, 0u);
  EXPECT_EQ(plan.nc % plan.nr, 0u);
}

TEST(GemmPlan, RespectsExplicitParameters) {
  GemmConfig cfg;
  cfg.arch = KernelArch::kScalar;
  cfg.kc_words = 100;
  cfg.mc = 32;
  cfg.nc = 64;
  const GemmPlan plan = resolve_plan(cfg, 1000);
  EXPECT_EQ(plan.kc_words, 100u);  // ku = 1 for scalar, no rounding needed
  EXPECT_EQ(plan.mc, 32u);
  EXPECT_EQ(plan.nc, 64u);
}

}  // namespace
}  // namespace ldla
