// Counter-exactness and span-nesting tests for the tracing layer.
//
// The phase counters are specified as *exact*: for a resolved GemmPlan the
// traced kernel/pack/tile counts must equal the analytic values implied by
// the blocking (DESIGN.md "Observability"). The walkers below mirror the
// documented loop structure of gemm_count_packed / gemm_count_fused and
// PackedBitMatrix::pack_side; any drift between the drivers and their
// instrumentation shows up here as an off-by-a-tile mismatch.
//
// Counter deltas are read with trace::snapshot().since(before), which is
// exact as long as no unrelated instrumented work runs concurrently — true
// inside a test binary.
#include "util/trace.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/gemm/macro.hpp"
#include "core/gemm/nest.hpp"
#include "core/ld.hpp"
#include "core/ld_stream.hpp"
#include "core/parallel.hpp"
#include "sim/rng.hpp"
#include "util/thread_pool.hpp"

namespace ldla {
namespace {

BitMatrix random_matrix(std::size_t snps, std::size_t samples,
                        std::uint64_t seed) {
  Rng rng(seed);
  BitMatrix m(snps, samples);
  for (std::size_t s = 0; s < snps; ++s) {
    for (std::size_t b = 0; b < samples; ++b) {
      if (rng.next_bool(0.4)) m.set(s, b, true);
    }
  }
  return m;
}

// Small blocking so a modest problem still crosses several cache blocks
// and k panels (the interesting counter geometry).
GemmConfig small_blocking(KernelArch arch) {
  GemmConfig cfg;
  cfg.arch = arch;
  cfg.kc_words = 8;
  cfg.mc = 16;
  cfg.nc = 16;
  return cfg;
}

// What one traced driver call should have counted.
struct Expected {
  std::uint64_t kernel_calls = 0;
  std::uint64_t kernel_words = 0;
  std::uint64_t tiles_emitted = 0;
  std::uint64_t slivers_reused = 0;
  std::uint64_t epilogue_rows = 0;  ///< sum of in-range tile rows (fused)
};

// Analytic mirror of gemm_count_packed's loop nest over [a_begin, a_end) x
// [b_begin, b_end): jc (nc) -> k panel -> ic (mc), one micro-kernel call
// per mr x nr register tile, one sliver view per panel side per block.
Expected expect_two_pass(const PackedBitMatrix& p, std::size_t a_begin,
                         std::size_t a_end, std::size_t b_begin,
                         std::size_t b_end) {
  const GemmPlan& plan = p.plan();
  const std::size_t mr = plan.mr;
  const std::size_t nr = plan.nr;
  const std::size_t ic0 = a_begin / mr * mr;
  const std::size_t jc0 = b_begin / nr * nr;
  const std::size_t a_pad = (a_end + mr - 1) / mr * mr;
  const std::size_t b_pad = (b_end + nr - 1) / nr * nr;
  Expected e;
  for (std::size_t jc = jc0; jc < b_end; jc += plan.nc) {
    const std::size_t jc_end = std::min(jc + plan.nc, b_pad);
    for (std::size_t panel = 0; panel < p.panels(); ++panel) {
      const std::uint64_t kcp = p.panel_kc_padded(panel);
      e.slivers_reused += (jc_end - jc) / nr;  // one b_panel view per (jc, p)
      for (std::size_t ic = ic0; ic < a_end; ic += plan.mc) {
        const std::size_t ic_end = std::min(ic + plan.mc, a_pad);
        const std::uint64_t calls = static_cast<std::uint64_t>(
            ((jc_end - jc) / nr) * ((ic_end - ic) / mr));
        e.kernel_calls += calls;
        e.kernel_words += calls * static_cast<std::uint64_t>(mr * nr) * kcp;
        e.slivers_reused += (ic_end - ic) / mr;  // one a_panel view per block
      }
    }
  }
  return e;
}

// Analytic mirror of gemm_count_fused: jc (nc) -> ic (mc) tiles, with the
// panel loop innermost; one CountTile per cache tile.
Expected expect_fused(const PackedBitMatrix& p, std::size_t a_begin,
                      std::size_t a_end, std::size_t b_begin,
                      std::size_t b_end) {
  const GemmPlan& plan = p.plan();
  const std::size_t mr = plan.mr;
  const std::size_t nr = plan.nr;
  const std::size_t ic0 = a_begin / mr * mr;
  const std::size_t jc0 = b_begin / nr * nr;
  const std::size_t a_pad = (a_end + mr - 1) / mr * mr;
  const std::size_t b_pad = (b_end + nr - 1) / nr * nr;
  Expected e;
  for (std::size_t jc = jc0; jc < b_end; jc += plan.nc) {
    const std::size_t jc_end = std::min(jc + plan.nc, b_pad);
    const std::size_t tile_cols = jc_end - jc;
    for (std::size_t ic = ic0; ic < a_end; ic += plan.mc) {
      const std::size_t ic_end = std::min(ic + plan.mc, a_pad);
      const std::size_t tile_rows = ic_end - ic;
      e.tiles_emitted += 1;
      for (std::size_t panel = 0; panel < p.panels(); ++panel) {
        const std::uint64_t kcp = p.panel_kc_padded(panel);
        e.kernel_calls += static_cast<std::uint64_t>((tile_cols / nr) *
                                                     (tile_rows / mr));
        e.kernel_words +=
            static_cast<std::uint64_t>(tile_rows * tile_cols) * kcp;
        e.slivers_reused += tile_cols / nr + tile_rows / mr;
      }
      e.epilogue_rows += std::min(ic_end, a_end) - std::max(ic, a_begin);
    }
  }
  return e;
}

struct Shape {
  std::size_t m, n, samples;
};

// Ragged on every axis: m, n off register-tile multiples; samples chosen so
// the word count is off the ku and kc_words grids.
const Shape kShapes[] = {
    {33, 47, 130},   // 3 words: single short k panel
    {64, 64, 4099},  // 65 words: full tiles, ragged k panels
    {37, 91, 1025},  // 17 words: everything ragged
};

class TraceCounters
    : public ::testing::TestWithParam<std::tuple<KernelArch, Shape>> {
 protected:
  void SetUp() override {
    if (!trace::compiled()) {
      GTEST_SKIP() << "built with LDLA_TRACE=OFF";
    }
  }
};

TEST_P(TraceCounters, TwoPassMatchesAnalyticBlocking) {
  const auto [arch, shape] = GetParam();
  const BitMatrix a = random_matrix(shape.m, shape.samples, 7 + shape.m);
  const BitMatrix b = random_matrix(shape.n, shape.samples, 11 + shape.n);
  const GemmConfig cfg = small_blocking(arch);
  const GemmPlan plan = gemm_plan_for(a.view(), cfg);
  const PackedBitMatrix pa(a.view(), plan, PackSides::kA);
  const PackedBitMatrix pb(b.view(), plan, PackSides::kB);

  CountMatrix c(shape.m, shape.n);
  const trace::TraceSnapshot before = trace::snapshot();
  gemm_count_packed(pa, 0, shape.m, pb, 0, shape.n, c.ref());
  const trace::TraceSnapshot d = trace::snapshot().since(before);

  const Expected e = expect_two_pass(pa, 0, shape.m, 0, shape.n);
  EXPECT_EQ(d.counters.kernel_calls, e.kernel_calls);
  EXPECT_EQ(d.counters.kernel_words, e.kernel_words);
  EXPECT_EQ(d.counters.slivers_reused, e.slivers_reused);
  EXPECT_EQ(d.counters.tiles_emitted, 0u);
  EXPECT_EQ(d.counters.epilogue_rows, 0u);
  EXPECT_EQ(d.counters.slivers_packed, 0u);  // persistent pack: no repack
  EXPECT_EQ(d.counters.bytes_packed, 0u);
}

TEST_P(TraceCounters, FusedMatchesAnalyticBlocking) {
  const auto [arch, shape] = GetParam();
  const BitMatrix a = random_matrix(shape.m, shape.samples, 7 + shape.m);
  const BitMatrix b = random_matrix(shape.n, shape.samples, 11 + shape.n);
  const GemmConfig cfg = small_blocking(arch);
  const GemmPlan plan = gemm_plan_for(a.view(), cfg);
  const PackedBitMatrix pa(a.view(), plan, PackSides::kA);
  const PackedBitMatrix pb(b.view(), plan, PackSides::kB);

  std::uint64_t sink_rows = 0;
  std::uint64_t sink_tiles = 0;
  const trace::TraceSnapshot before = trace::snapshot();
  gemm_count_fused(pa, 0, shape.m, pb, 0, shape.n, [&](const CountTile& t) {
    sink_rows += t.rows;
    ++sink_tiles;
  });
  const trace::TraceSnapshot d = trace::snapshot().since(before);

  const Expected e = expect_fused(pa, 0, shape.m, 0, shape.n);
  EXPECT_EQ(d.counters.kernel_calls, e.kernel_calls);
  EXPECT_EQ(d.counters.kernel_words, e.kernel_words);
  EXPECT_EQ(d.counters.slivers_reused, e.slivers_reused);
  EXPECT_EQ(d.counters.tiles_emitted, e.tiles_emitted);
  EXPECT_EQ(sink_tiles, e.tiles_emitted);
  EXPECT_EQ(sink_rows, e.epilogue_rows);
}

TEST_P(TraceCounters, RaggedRangesMatchAnalyticBlocking) {
  const auto [arch, shape] = GetParam();
  if (shape.m < 8 || shape.n < 8) GTEST_SKIP() << "range too small";
  const BitMatrix g = random_matrix(shape.m + shape.n, shape.samples, 3);
  const GemmConfig cfg = small_blocking(arch);
  const GemmPlan plan = gemm_plan_for(g.view(), cfg);
  const PackedBitMatrix p(g.view(), plan, PackSides::kBoth);

  // Off-sliver window: starts and ends cross register-tile boundaries.
  const std::size_t a_begin = 3, a_end = shape.m + 1;
  const std::size_t b_begin = 5, b_end = shape.n + 2;

  CountMatrix c(a_end - a_begin, b_end - b_begin);
  const trace::TraceSnapshot t0 = trace::snapshot();
  gemm_count_packed(p, a_begin, a_end, p, b_begin, b_end, c.ref());
  const trace::TraceSnapshot d1 = trace::snapshot().since(t0);
  const Expected e1 = expect_two_pass(p, a_begin, a_end, b_begin, b_end);
  EXPECT_EQ(d1.counters.kernel_calls, e1.kernel_calls);
  EXPECT_EQ(d1.counters.kernel_words, e1.kernel_words);
  EXPECT_EQ(d1.counters.slivers_reused, e1.slivers_reused);

  const trace::TraceSnapshot t1 = trace::snapshot();
  std::uint64_t sink_rows = 0;
  gemm_count_fused(p, a_begin, a_end, p, b_begin, b_end,
                   [&](const CountTile& t) { sink_rows += t.rows; });
  const trace::TraceSnapshot d2 = trace::snapshot().since(t1);
  const Expected e2 = expect_fused(p, a_begin, a_end, b_begin, b_end);
  EXPECT_EQ(d2.counters.kernel_calls, e2.kernel_calls);
  EXPECT_EQ(d2.counters.kernel_words, e2.kernel_words);
  EXPECT_EQ(d2.counters.tiles_emitted, e2.tiles_emitted);
  EXPECT_EQ(sink_rows, e2.epilogue_rows);
}

std::vector<std::tuple<KernelArch, Shape>> counter_cases() {
  std::vector<std::tuple<KernelArch, Shape>> cases;
  for (const KernelArch arch : available_kernels()) {
    for (const Shape& s : kShapes) cases.emplace_back(arch, s);
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Blocking, TraceCounters,
                         ::testing::ValuesIn(counter_cases()));

class TraceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!trace::compiled()) {
      GTEST_SKIP() << "built with LDLA_TRACE=OFF";
    }
  }
};

TEST_F(TraceFixture, PackCountersMatchSliverGeometry) {
  const std::size_t snps = 53, samples = 1100;
  const BitMatrix g = random_matrix(snps, samples, 17);
  const GemmConfig cfg = small_blocking(KernelArch::kScalar);
  const GemmPlan plan = gemm_plan_for(g.view(), cfg);

  const trace::TraceSnapshot before = trace::snapshot();
  const PackedBitMatrix p(g.view(), plan, PackSides::kBoth);
  const trace::TraceSnapshot d = trace::snapshot().since(before);

  // Per packed side, per k panel: ceil(snps/r) slivers of r*kcp words.
  // When mr == nr one copy serves both sides (pack_side runs once).
  std::vector<std::size_t> sides = {plan.mr};
  if (plan.nr != plan.mr) sides.push_back(plan.nr);
  std::uint64_t slivers = 0, bytes = 0;
  for (const std::size_t r : sides) {
    const std::uint64_t side_slivers = (snps + r - 1) / r;
    for (std::size_t panel = 0; panel < p.panels(); ++panel) {
      slivers += side_slivers;
      bytes += side_slivers * r * p.panel_kc_padded(panel) * 8;
    }
  }
  EXPECT_EQ(d.counters.slivers_packed, slivers);
  EXPECT_EQ(d.counters.bytes_packed, bytes);
  EXPECT_EQ(d.counters.slivers_reused, 0u);
}

TEST_F(TraceFixture, FusedEpilogueRowCounterMatchesSink) {
  const std::size_t m = 45, n = 71, samples = 700;
  const BitMatrix a = random_matrix(m, samples, 5);
  const BitMatrix b = random_matrix(n, samples, 6);
  LdOptions opts;
  opts.gemm = small_blocking(KernelArch::kScalar);
  opts.fused = true;

  const trace::TraceSnapshot before = trace::snapshot();
  const LdMatrix out = ld_cross_matrix(a, b, opts);
  const trace::TraceSnapshot d = trace::snapshot().since(before);
  ASSERT_EQ(out.rows(), m);

  // ld_cross_matrix converts every row of every fused tile exactly once.
  const GemmPlan plan = gemm_plan_for(a.view(), opts.gemm);
  const PackedBitMatrix p(a.view(), plan, PackSides::kBoth);
  const Expected e = expect_fused(p, 0, m, 0, n);
  EXPECT_EQ(d.counters.epilogue_rows, e.epilogue_rows);
  EXPECT_EQ(d.counters.tiles_emitted, e.tiles_emitted);
}

TEST_F(TraceFixture, CountersAccumulateWithTimingDisabled) {
  const BitMatrix g = random_matrix(40, 500, 23);
  const GemmConfig cfg = small_blocking(KernelArch::kScalar);
  const GemmPlan plan = gemm_plan_for(g.view(), cfg);
  const PackedBitMatrix p(g.view(), plan, PackSides::kBoth);
  CountMatrix c(40, 40);

  trace::set_timing_enabled(false);
  const trace::TraceSnapshot before = trace::snapshot();
  gemm_count_packed(p, 0, 40, p, 0, 40, c.ref());
  const trace::TraceSnapshot d = trace::snapshot().since(before);
  trace::set_timing_enabled(true);

  EXPECT_GT(d.counters.kernel_calls, 0u);  // counters stay on
  for (std::size_t ph = 0; ph < trace::kPhaseCount; ++ph) {
    EXPECT_EQ(d.phase_self_ns[ph], 0u) << "phase " << ph;  // spans inert
  }
}

// Events on one thread must form a laminar family (every pair disjoint or
// nested): RAII spans cannot partially overlap. Returns the number of
// top-level intervals checked.
std::size_t check_laminar(std::vector<trace::TraceEvent> events) {
  std::sort(events.begin(), events.end(),
            [](const trace::TraceEvent& x, const trace::TraceEvent& y) {
              if (x.ts_ns != y.ts_ns) return x.ts_ns < y.ts_ns;
              return x.dur_ns > y.dur_ns;  // enclosing span first
            });
  std::vector<std::uint64_t> stack;  // end times of enclosing spans
  std::size_t top_level = 0;
  for (const trace::TraceEvent& ev : events) {
    const std::uint64_t end = ev.ts_ns + ev.dur_ns;
    while (!stack.empty() && stack.back() <= ev.ts_ns) stack.pop_back();
    if (stack.empty()) {
      ++top_level;
    } else {
      EXPECT_LE(end, stack.back()) << "span partially overlaps its parent";
    }
    stack.push_back(end);
  }
  return top_level;
}

TEST_F(TraceFixture, SessionEventsNestExactlyOnceUnderParallelDrivers) {
  const std::size_t n = 96;
  const BitMatrix g = random_matrix(n, 400, 31);
  LdOptions opts;
  opts.gemm = small_blocking(KernelArch::kScalar);
  opts.slab_rows = 24;

  trace::start_session("test_trace_nesting");
  ASSERT_TRUE(trace::session_active());
  const trace::TraceSnapshot before = trace::snapshot();
  const LdMatrix out = ld_matrix_parallel(g, opts, 2);
  const trace::TraceSnapshot d = trace::snapshot().since(before);
  const std::vector<trace::TraceEvent> events = trace::session_events();
  trace::cancel_session();
  ASSERT_FALSE(trace::session_active());
  ASSERT_EQ(out.rows(), n);

  ASSERT_FALSE(events.empty());
  std::uint64_t task_run_events = 0;
  std::uint64_t mirror_events = 0;
  std::vector<std::vector<trace::TraceEvent>> by_tid;
  for (const trace::TraceEvent& ev : events) {
    ASSERT_LT(static_cast<std::size_t>(ev.phase), trace::kPhaseCount);
    if (ev.phase == trace::Phase::kTaskRun) ++task_run_events;
    if (ev.phase == trace::Phase::kMirror) ++mirror_events;
    if (ev.tid >= by_tid.size()) by_tid.resize(ev.tid + 1);
    by_tid[ev.tid].push_back(ev);
  }
  // Exactly one span per pool task and one mirror pass — no double
  // emission from the worker/caller/inline execution paths.
  EXPECT_EQ(task_run_events, d.counters.task_runs);
  EXPECT_GE(task_run_events, 1u);
  EXPECT_EQ(mirror_events, 1u);
  for (const auto& tid_events : by_tid) {
    check_laminar(tid_events);
  }
}

TEST_F(TraceFixture, SessionLifecycleAndSnapshotDiff) {
  // since() must subtract field-wise.
  trace::TraceSnapshot a, b;
  a.counters.kernel_calls = 10;
  a.phase_self_ns[0] = 100;
  b.counters.kernel_calls = 3;
  b.phase_self_ns[0] = 40;
  const trace::TraceSnapshot d = a.since(b);
  EXPECT_EQ(d.counters.kernel_calls, 7u);
  EXPECT_EQ(d.phase_self_ns[0], 60u);

  // Cancelled sessions discard events; a new session starts clean.
  trace::start_session("test_trace_lifecycle");
  {
    const BitMatrix g = random_matrix(8, 130, 2);
    CountMatrix c(8, 8);
    gemm_count(g.view(), g.view(), c.ref(),
               small_blocking(KernelArch::kScalar));
  }
  EXPECT_FALSE(trace::session_events().empty());
  trace::cancel_session();
  trace::start_session("test_trace_lifecycle_2");
  EXPECT_TRUE(trace::session_events().empty());
  trace::cancel_session();
}

TEST(TraceBasics, PhaseNamesAreStable) {
  // validate_trace.py and the BenchJson schema key on these strings.
  EXPECT_STREQ(trace::phase_name(trace::Phase::kPackA), "pack_a");
  EXPECT_STREQ(trace::phase_name(trace::Phase::kPackB), "pack_b");
  EXPECT_STREQ(trace::phase_name(trace::Phase::kKernel), "kernel");
  EXPECT_STREQ(trace::phase_name(trace::Phase::kEpilogue), "epilogue");
  EXPECT_STREQ(trace::phase_name(trace::Phase::kMirror), "mirror");
  EXPECT_STREQ(trace::phase_name(trace::Phase::kIo), "io");
  EXPECT_STREQ(trace::phase_name(trace::Phase::kTaskRun), "task_run");
  EXPECT_STREQ(trace::phase_name(trace::Phase::kTaskWait), "task_wait");
  EXPECT_STREQ(trace::phase_name(trace::Phase::kBarrier), "barrier");
}

TEST_F(TraceFixture, PoolCountersOnInlineAndPooledPaths) {
  // Inline execution (single task, or a pool with zero workers) runs no
  // fork-join barrier and steals nothing; the pooled path pays exactly one
  // barrier per run_tasks call.
  ThreadPool solo(1);  // 0 workers: every run_tasks degrades to inline
  trace::TraceSnapshot before = trace::snapshot();
  solo.run_tasks(5, [](std::size_t) {});
  trace::TraceSnapshot d = trace::snapshot().since(before);
  EXPECT_EQ(d.counters.task_runs, 5u);
  EXPECT_EQ(d.counters.barrier_waits, 0u);
  EXPECT_EQ(d.counters.steals, 0u);

  ThreadPool& pool = global_pool();
  before = trace::snapshot();
  pool.run_tasks(1, [](std::size_t) {});
  d = trace::snapshot().since(before);
  EXPECT_EQ(d.counters.task_runs, 1u);
  EXPECT_EQ(d.counters.barrier_waits, 0u);  // single task is always inline

  before = trace::snapshot();
  pool.run_tasks(4, [](std::size_t) {});
  d = trace::snapshot().since(before);
  EXPECT_EQ(d.counters.task_runs, 4u);
  if (pool.size() == 0) {
    EXPECT_EQ(d.counters.barrier_waits, 0u);
  } else {
    EXPECT_EQ(d.counters.barrier_waits, 1u);
  }
}

TEST_F(TraceFixture, WorkerParksAreCounted) {
  const trace::TraceSnapshot before = trace::snapshot();
  {
    // One spawned worker with nothing to do: its first sweep finds no work
    // and it parks on the idle condition variable.
    ThreadPool pool(2);
    for (int i = 0; i < 2000; ++i) {
      if (trace::snapshot().since(before).counters.parks > 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_GT(trace::snapshot().since(before).counters.parks, 0u);
}

TEST_F(TraceFixture, NestDriversExposeStealCounters) {
  // Chunk stealing must be visible in the trace even on a single-CPU
  // machine: the team's chunk deques are pre-seeded before launch, so when
  // the pool has no workers the caller runs every member in turn — member 0
  // drains its own block, then *steals* every other member's seeded chunks.
  const std::size_t n = 96;
  const BitMatrix g = random_matrix(n, 700, 51);
  const GemmConfig cfg = small_blocking(KernelArch::kScalar);
  const GemmPlan plan = gemm_plan_for(g.view(), cfg);
  const PackedBitMatrix p(g.view(), plan, PackSides::kBoth);

  const trace::TraceSnapshot before = trace::snapshot();
  syrk_count_parallel_nest(p, 0, n, [](const CountTile&) {}, 4);
  const trace::TraceSnapshot d = trace::snapshot().since(before);

  // One pool task per team member, every member accounted exactly once.
  EXPECT_EQ(d.counters.task_runs, 4u);
  if (global_pool().size() == 0) {
    // Deterministic single-thread schedule: members 1..3 never pop their
    // own deques before member 0 has swept them.
    EXPECT_GT(d.counters.steals, 0u);
    EXPECT_EQ(d.counters.barrier_waits, 0u);
  } else {
    EXPECT_EQ(d.counters.barrier_waits, 1u);
  }
}

// ---- Streaming io counters --------------------------------------------
//
// The stream walk's counter semantics are deterministic (DESIGN.md §4.7):
//   prefetch_stalls  = acquires that had to materialize on the critical path
//   prefetch_hits    = acquires that found the shard already materialized
//   prefetch_issued  = next-pair shards found cold at prefetch time
//   io_bytes_read    = payload bytes of every materialization
// For a 2-shard store walked (0,0) (1,0) (1,1) with threads=1, prefetch on
// and no budget, the schedule is fully determined: pair (0,0) stalls on
// shard 0 and prefetches shard 1 in the overlap task; the run_tasks join
// makes every later acquire a hit (the diagonal's shared key is acquired
// once). Totals: 1 stall, 3 hits, 1 issue, io = both payloads.

TEST_F(TraceFixture, StreamCountersMatchTheDeterministicWalk) {
  const BitMatrix g = random_matrix(40, 300, 77);
  GemmConfig cfg = small_blocking(KernelArch::kScalar);
  const std::string path = ::testing::TempDir() + "trace_stream.ldshard";
  write_shard_store(path, g.view(), cfg, /*rows_per_shard=*/20);
  ShardStore store = ShardStore::open(path);
  ASSERT_EQ(store.shards(), 2u);
  const std::uint64_t payload =
      store.shard_bytes(0) + store.shard_bytes(1);

  const trace::TraceSnapshot before = trace::snapshot();
  ld_matrix_stream(store, [](const LdTile&) {}, {});
  const trace::TraceSnapshot d = trace::snapshot().since(before);

  EXPECT_EQ(d.counters.prefetch_stalls, 1u);
  EXPECT_EQ(d.counters.prefetch_hits, 3u);
  EXPECT_EQ(d.counters.prefetch_issued, 1u);
  EXPECT_EQ(d.counters.io_bytes_read, payload);
  EXPECT_GT(d.phase_self_ns[static_cast<std::size_t>(trace::Phase::kIo)], 0u);
}

TEST_F(TraceFixture, StreamCountersWithoutPrefetchAreAllStalls) {
  const BitMatrix g = random_matrix(40, 300, 78);
  GemmConfig cfg = small_blocking(KernelArch::kScalar);
  const std::string path = ::testing::TempDir() + "trace_stream_np.ldshard";
  write_shard_store(path, g.view(), cfg, /*rows_per_shard=*/20);
  ShardStore store = ShardStore::open(path);
  ASSERT_EQ(store.shards(), 2u);

  StreamOptions opts;
  opts.prefetch = false;
  const trace::TraceSnapshot before = trace::snapshot();
  ld_matrix_stream(store, [](const LdTile&) {}, opts);
  const trace::TraceSnapshot d = trace::snapshot().since(before);

  // (0,0): stall 0. (1,0): stall 1, hit 0. (1,1): hit 1.
  EXPECT_EQ(d.counters.prefetch_stalls, 2u);
  EXPECT_EQ(d.counters.prefetch_hits, 2u);
  EXPECT_EQ(d.counters.prefetch_issued, 0u);
  EXPECT_EQ(d.counters.io_bytes_read,
            store.shard_bytes(0) + store.shard_bytes(1));
}

}  // namespace
}  // namespace ldla
