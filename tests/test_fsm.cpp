#include "core/fsm.hpp"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/rng.hpp"
#include "util/contract.hpp"

namespace ldla {
namespace {

FsmMatrix random_fsm(std::size_t snps, std::size_t samples, double gap_rate,
                     unsigned alphabet, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> rows(snps);
  const char nucs[] = {'A', 'C', 'G', 'T'};
  for (auto& row : rows) {
    row.resize(samples);
    for (auto& c : row) {
      if (rng.next_bool(gap_rate)) {
        c = '-';
      } else {
        c = nucs[rng.next_below(alphabet)];
      }
    }
  }
  return FsmMatrix::from_snp_strings(rows);
}

TEST(FsmMatrix, ParsesNucleotidesAndGaps) {
  const std::vector<std::string> rows = {"ACGT-N", "aacgtt"};
  const FsmMatrix m = FsmMatrix::from_snp_strings(rows);
  EXPECT_EQ(m.snps(), 2u);
  EXPECT_EQ(m.samples(), 6u);
  EXPECT_EQ(m.state(0, 0), kA);
  EXPECT_EQ(m.state(0, 1), kC);
  EXPECT_EQ(m.state(0, 2), kG);
  EXPECT_EQ(m.state(0, 3), kT);
  EXPECT_EQ(m.state(0, 4), -1);
  EXPECT_EQ(m.state(0, 5), -1);
  EXPECT_EQ(m.state(1, 0), kA) << "lowercase must parse";
  EXPECT_EQ(m.states_present(0), 4u);
  EXPECT_EQ(m.states_present(1), 4u);
}

TEST(FsmMatrix, RejectsBadCharacters) {
  const std::vector<std::string> rows = {"ACGX"};
  EXPECT_THROW(FsmMatrix::from_snp_strings(rows), ParseError);
}

TEST(FsmMatrix, SetStateClearsPreviousPlane) {
  FsmMatrix m(1, 4);
  m.set_state(0, 0, kA);
  m.set_state(0, 0, kT);
  EXPECT_EQ(m.state(0, 0), kT);
  EXPECT_FALSE(m.plane(kA).get(0, 0));
  m.set_gap(0, 0);
  EXPECT_EQ(m.state(0, 0), -1);
}

TEST(FsmMatrix, ValidityIsUnionOfPlanes) {
  const std::vector<std::string> rows = {"AC-T"};
  const FsmMatrix m = FsmMatrix::from_snp_strings(rows);
  const BitMatrix v = m.validity();
  EXPECT_TRUE(v.get(0, 0));
  EXPECT_TRUE(v.get(0, 1));
  EXPECT_FALSE(v.get(0, 2));
  EXPECT_TRUE(v.get(0, 3));
}

TEST(FsmT, GemmMatchesPerSampleReference) {
  const FsmMatrix g = random_fsm(15, 80, 0.1, 4, 42);
  const LdMatrix got = fsm_t_matrix(g);
  for (std::size_t i = 0; i < g.snps(); ++i) {
    for (std::size_t j = 0; j < g.snps(); ++j) {
      const double want = fsm_t_pair_reference(g, i, j);
      if (std::isnan(want)) {
        EXPECT_TRUE(std::isnan(got(i, j))) << i << "," << j;
      } else {
        EXPECT_NEAR(got(i, j), want, 1e-10) << i << "," << j;
      }
    }
  }
}

TEST(FsmT, BiallelicNoGapsReducesToScaledIsmR2) {
  // With exactly two states (A/C), no gaps: v_i = v_j = 2, v_ij = Nseq, and
  // the four r^2_ab terms are all equal to the biallelic r^2, so
  // T = (1*1*N / 4) * 4 * r^2 = N * r^2.
  Rng rng(9);
  const std::size_t snps = 12, samples = 64;
  std::vector<std::string> fsm_rows(snps), bin_rows(snps);
  for (std::size_t s = 0; s < snps; ++s) {
    fsm_rows[s].resize(samples);
    bin_rows[s].resize(samples);
    for (std::size_t i = 0; i < samples; ++i) {
      const bool derived = rng.next_bool(0.4);
      fsm_rows[s][i] = derived ? 'C' : 'A';
      bin_rows[s][i] = derived ? '1' : '0';
    }
  }
  const FsmMatrix fsm = FsmMatrix::from_snp_strings(fsm_rows);
  const BitMatrix bin = BitMatrix::from_snp_strings(bin_rows);

  const LdMatrix t = fsm_t_matrix(fsm);
  const LdMatrix r2 = ld_matrix(bin);
  const double n = static_cast<double>(samples);
  for (std::size_t i = 0; i < snps; ++i) {
    for (std::size_t j = 0; j < snps; ++j) {
      if (std::isnan(r2(i, j))) {
        EXPECT_TRUE(std::isnan(t(i, j)));
      } else {
        EXPECT_NEAR(t(i, j), n * r2(i, j), 1e-9) << i << "," << j;
      }
    }
  }
}

TEST(FsmT, MonomorphicSnpGivesNaN) {
  const std::vector<std::string> rows = {"AAAA", "ACGT"};
  const FsmMatrix m = FsmMatrix::from_snp_strings(rows);
  const LdMatrix t = fsm_t_matrix(m);
  EXPECT_TRUE(std::isnan(t(0, 1)));
  EXPECT_TRUE(std::isnan(t(0, 0)));
}

TEST(FsmT, PerfectlyLinkedSnpsScoreHigherThanIndependent) {
  // SNP 0 and 1 are copies (perfect LD); SNP 2 alternates out of phase.
  Rng rng(11);
  const std::size_t samples = 256;
  std::string a(samples, 'A');
  for (std::size_t i = 0; i < samples; ++i) {
    a[i] = rng.next_bool(0.5) ? 'G' : 'A';
  }
  std::string c(samples, 'A');
  for (std::size_t i = 0; i < samples; ++i) {
    c[i] = rng.next_bool(0.5) ? 'T' : 'C';
  }
  const std::vector<std::string> rows = {a, a, c};
  const FsmMatrix m = FsmMatrix::from_snp_strings(rows);
  const LdMatrix t = fsm_t_matrix(m);
  EXPECT_GT(t(0, 1), t(0, 2));
}

TEST(FsmT, SymmetricResult) {
  const FsmMatrix g = random_fsm(10, 60, 0.05, 3, 13);
  const LdMatrix t = fsm_t_matrix(g);
  for (std::size_t i = 0; i < g.snps(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (!std::isnan(t(i, j))) {
        EXPECT_NEAR(t(i, j), t(j, i), 1e-10);
      }
    }
  }
}

}  // namespace
}  // namespace ldla
