#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/contract.hpp"

namespace ldla {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"Threads", "Time", "Speedup"});
  t.add_row({"1", "14.18", "7.48"});
  t.add_row({"12", "5.29", "8.43"});
  const std::string s = t.str();
  EXPECT_NE(s.find("Threads"), std::string::npos);
  EXPECT_NE(s.find("14.18"), std::string::npos);
  EXPECT_NE(s.find("8.43"), std::string::npos);
  // Header rule present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, RejectsMismatchedRowWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), ContractViolation);
}

TEST(Table, ColumnsAlign) {
  Table t({"x", "yyyy"});
  t.add_row({"longvalue", "1"});
  const std::string s = t.str();
  // Each line must be equally long (aligned columns, trailing newline).
  std::size_t prev = std::string::npos;
  std::size_t start = 0;
  while (start < s.size()) {
    const std::size_t nl = s.find('\n', start);
    const std::size_t len = nl - start;
    if (prev != std::string::npos) {
      EXPECT_EQ(len, prev);
    }
    prev = len;
    start = nl + 1;
  }
}

TEST(FmtHelpers, FixedAndSci) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(-1.0, 1), "-1.0");
  EXPECT_EQ(fmt_sci(12345.0, 2), "1.23e+04");
}

TEST(FmtHelpers, Percent) {
  EXPECT_EQ(fmt_percent(0.8432, 1), "84.3%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
}

}  // namespace
}  // namespace ldla
