#include "util/thread_pool.hpp"

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/contract.hpp"

namespace ldla {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.run_tasks(hits.size(),
                 [&](std::size_t t) { hits[t].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroTasksIsANoop) {
  ThreadPool pool(2);
  pool.run_tasks(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, SingleThreadPoolStillRunsTasks) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.run_tasks(10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, SizeReportsWorkerCount) {
  // The caller participates, so a pool of N spawns N-1 workers.
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 3u);
  ThreadPool solo(1);
  EXPECT_EQ(solo.size(), 0u);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::mutex mu;
  std::set<std::size_t> seen;
  pool.parallel_for(10, 250, [&](std::size_t lo, std::size_t hi) {
    std::lock_guard lock(mu);
    for (std::size_t i = lo; i < hi; ++i) {
      EXPECT_TRUE(seen.insert(i).second) << "index " << i << " visited twice";
    }
  });
  EXPECT_EQ(seen.size(), 240u);
  EXPECT_EQ(*seen.begin(), 10u);
  EXPECT_EQ(*seen.rbegin(), 249u);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  pool.parallel_for(5, 5, [](std::size_t, std::size_t) {
    FAIL() << "must not be called";
  });
}

TEST(ThreadPool, ParallelForRejectsInvertedRange) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10, 5, [](std::size_t, std::size_t) {}),
               ContractViolation);
}

TEST(ThreadPool, ResultsAreDeterministicAcrossRuns) {
  // Summing into per-task slots then reducing must not depend on timing.
  ThreadPool pool(4);
  for (int run = 0; run < 5; ++run) {
    std::vector<long> partial(64, 0);
    pool.run_tasks(partial.size(), [&](std::size_t t) {
      partial[t] = static_cast<long>(t * t);
    });
    long total = std::accumulate(partial.begin(), partial.end(), 0L);
    EXPECT_EQ(total, 85344L);  // sum of t^2 for t in [0, 64)
  }
}

TEST(ThreadPool, SequentialBatchesReuseWorkers) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int round = 0; round < 20; ++round) {
    pool.run_tasks(8, [&](std::size_t) { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 160);
}

TEST(GlobalPool, IsUsableAndStable) {
  ThreadPool& a = global_pool();
  ThreadPool& b = global_pool();
  EXPECT_EQ(&a, &b);
  std::atomic<int> count{0};
  a.run_tasks(4, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4);
}

}  // namespace
}  // namespace ldla
