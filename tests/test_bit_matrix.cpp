#include "core/bit_matrix.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/contract.hpp"

namespace ldla {
namespace {

TEST(BitMatrix, EmptyMatrix) {
  BitMatrix m;
  EXPECT_EQ(m.snps(), 0u);
  EXPECT_EQ(m.samples(), 0u);
  EXPECT_TRUE(m.view().empty());
}

TEST(BitMatrix, DimensionsAndPadding) {
  BitMatrix m(3, 100);
  EXPECT_EQ(m.snps(), 3u);
  EXPECT_EQ(m.samples(), 100u);
  EXPECT_EQ(m.words_per_snp(), 2u);             // ceil(100/64)
  EXPECT_EQ(m.stride_words() % BitMatrix::kRowAlignWords, 0u);
  EXPECT_GE(m.stride_words(), m.words_per_snp());
  EXPECT_TRUE(m.padding_is_clean());
}

TEST(BitMatrix, SetGetRoundTrip) {
  BitMatrix m(2, 130);
  m.set(0, 0, true);
  m.set(0, 63, true);
  m.set(0, 64, true);
  m.set(1, 129, true);
  EXPECT_TRUE(m.get(0, 0));
  EXPECT_TRUE(m.get(0, 63));
  EXPECT_TRUE(m.get(0, 64));
  EXPECT_TRUE(m.get(1, 129));
  EXPECT_FALSE(m.get(0, 1));
  EXPECT_FALSE(m.get(1, 0));
  m.set(0, 63, false);
  EXPECT_FALSE(m.get(0, 63));
  EXPECT_TRUE(m.padding_is_clean());
}

TEST(BitMatrix, OutOfRangeAccessThrows) {
  BitMatrix m(2, 10);
  EXPECT_THROW(m.set(2, 0, true), ContractViolation);
  EXPECT_THROW(m.set(0, 10, true), ContractViolation);
  EXPECT_THROW((void)m.get(5, 5), ContractViolation);
  EXPECT_THROW((void)m.derived_count(2), ContractViolation);
}

TEST(BitMatrix, FromSnpStrings) {
  const std::vector<std::string> snps = {"0101", "1111", "0000"};
  BitMatrix m = BitMatrix::from_snp_strings(snps);
  EXPECT_EQ(m.snps(), 3u);
  EXPECT_EQ(m.samples(), 4u);
  EXPECT_EQ(m.snp_string(0), "0101");
  EXPECT_EQ(m.snp_string(1), "1111");
  EXPECT_EQ(m.snp_string(2), "0000");
}

TEST(BitMatrix, FromSnpStringsRejectsRaggedInput) {
  const std::vector<std::string> snps = {"0101", "01"};
  EXPECT_THROW(BitMatrix::from_snp_strings(snps), ParseError);
}

TEST(BitMatrix, FromSnpStringsRejectsBadCharacters) {
  const std::vector<std::string> snps = {"01x1"};
  EXPECT_THROW(BitMatrix::from_snp_strings(snps), ParseError);
}

TEST(BitMatrix, DerivedCountAndFrequency) {
  const std::vector<std::string> snps = {"110010", "000000", "111111"};
  BitMatrix m = BitMatrix::from_snp_strings(snps);
  EXPECT_EQ(m.derived_count(0), 3u);
  EXPECT_EQ(m.derived_count(1), 0u);
  EXPECT_EQ(m.derived_count(2), 6u);
  EXPECT_DOUBLE_EQ(m.allele_frequency(0), 0.5);
  EXPECT_DOUBLE_EQ(m.allele_frequency(1), 0.0);
  EXPECT_DOUBLE_EQ(m.allele_frequency(2), 1.0);
  const auto p = m.allele_frequencies();
  ASSERT_EQ(p.size(), 3u);
  EXPECT_DOUBLE_EQ(p[0], 0.5);
}

TEST(BitMatrix, DerivedCountAcrossWordBoundary) {
  BitMatrix m(1, 200);
  for (std::size_t s = 0; s < 200; s += 3) m.set(0, s, true);
  std::uint64_t expected = 0;
  for (std::size_t s = 0; s < 200; s += 3) ++expected;
  EXPECT_EQ(m.derived_count(0), expected);
}

TEST(BitMatrix, ViewExposesRows) {
  BitMatrix m(5, 70);
  m.set(3, 65, true);
  const BitMatrixView v = m.view();
  EXPECT_EQ(v.n_snps, 5u);
  EXPECT_EQ(v.n_words, 2u);
  EXPECT_EQ(v.n_samples, 70u);
  EXPECT_EQ(v.row(3)[1] & 0b10, 0b10u);
}

TEST(BitMatrix, SubViewSelectsRowRange) {
  BitMatrix m(10, 64);
  m.set(4, 0, true);
  const BitMatrixView v = m.view(4, 7);
  EXPECT_EQ(v.n_snps, 3u);
  EXPECT_EQ(v.row(0)[0] & 1u, 1u);
  EXPECT_THROW((void)m.view(7, 4), ContractViolation);
  EXPECT_THROW((void)m.view(0, 11), ContractViolation);
}

TEST(BitMatrix, CloneIsDeepAndEqual) {
  const std::vector<std::string> snps = {"1010101", "0110011"};
  BitMatrix m = BitMatrix::from_snp_strings(snps);
  BitMatrix c = m.clone();
  EXPECT_EQ(c.snp_string(0), m.snp_string(0));
  c.set(0, 0, false);
  EXPECT_TRUE(m.get(0, 0)) << "clone must not alias the original";
}

TEST(BitMatrix, PaddingInvariantDetectsDirtyTail) {
  BitMatrix m(1, 65);  // one padding word tail of 63 bits
  EXPECT_TRUE(m.padding_is_clean());
  // Corrupt a padding bit directly.
  m.row_data(0)[1] |= std::uint64_t{1} << 40;
  EXPECT_FALSE(m.padding_is_clean());
}

TEST(BitMatrix, RejectsAstronomicalSampleCounts) {
  EXPECT_THROW(BitMatrix(1, std::uint64_t{1} << 32), ContractViolation);
}

TEST(WordsForBits, Boundary) {
  EXPECT_EQ(words_for_bits(0), 0u);
  EXPECT_EQ(words_for_bits(1), 1u);
  EXPECT_EQ(words_for_bits(64), 1u);
  EXPECT_EQ(words_for_bits(65), 2u);
  EXPECT_EQ(words_for_bits(128), 2u);
}

}  // namespace
}  // namespace ldla
