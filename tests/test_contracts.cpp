// Tests for the debug/checked-build contract layer: bounds-checked accessors
// on BitMatrix / CountMatrix / packed-panel views throw ContractViolation,
// and the noexcept AlignedBuffer accessor terminates (death test).
//
// This binary is intentionally single-threaded: death tests fork, and a
// fork from a multi-threaded process is undefined enough that TSan
// (correctly) complains. Keep any pool/thread usage out of this file.

#include <cstdint>

#include <gtest/gtest.h>

#include "core/bit_matrix.hpp"
#include "core/gemm/count_matrix.hpp"
#include "core/gemm/packing.hpp"
#include "util/aligned_buffer.hpp"
#include "util/contract.hpp"

namespace ldla {
namespace {

// The bounds checks compile away in plain release builds (NDEBUG without
// LDLA_BOUNDS_CHECKS); skip rather than fail there so the suite stays green
// under every preset.
#define LDLA_REQUIRE_CHECKED_BUILD()                                     \
  do {                                                                   \
    if (!LDLA_CHECKED_BUILD) {                                           \
      GTEST_SKIP() << "bounds checks disabled in this configuration";    \
    }                                                                    \
  } while (0)

TEST(Contracts, BitMatrixRowDataOutOfRangeThrows) {
  LDLA_REQUIRE_CHECKED_BUILD();
  BitMatrix m(4, 100);
  EXPECT_THROW((void)m.row_data(4), ContractViolation);
  const BitMatrix& cm = m;
  EXPECT_THROW((void)cm.row_data(4), ContractViolation);
  EXPECT_NO_THROW((void)m.row_data(3));
}

TEST(Contracts, BitMatrixViewRowOutOfRangeThrows) {
  LDLA_REQUIRE_CHECKED_BUILD();
  BitMatrix m(8, 64);
  const BitMatrixView v = m.view(2, 6);
  EXPECT_NO_THROW((void)v.row(3));
  EXPECT_THROW((void)v.row(4), ContractViolation);
}

TEST(Contracts, CountMatrixRefAtOutOfRangeThrows) {
  LDLA_REQUIRE_CHECKED_BUILD();
  CountMatrix c(3, 5);
  const CountMatrixRef ref = c.ref();
  EXPECT_NO_THROW((void)ref.at(2, 4));
  EXPECT_THROW((void)ref.at(3, 0), ContractViolation);
  EXPECT_THROW((void)ref.at(0, 5), ContractViolation);
}

TEST(Contracts, PackedPanelSliverOutOfRangeThrows) {
  LDLA_REQUIRE_CHECKED_BUILD();
  BitMatrix m(10, 256);
  const std::size_t r = 4, ku = 2, kc = m.words_per_snp();
  AlignedBuffer<std::uint64_t> buf(packed_panel_words(m.snps(), kc, r, ku));
  const PackedPanelView panel =
      pack_panel_view(m.view(), 0, m.snps(), 0, kc, r, ku, buf.data());
  ASSERT_EQ(panel.slivers, 3u);  // ceil(10 / 4)
  EXPECT_NO_THROW((void)panel.sliver(2));
  EXPECT_THROW((void)panel.sliver(3), ContractViolation);
}

TEST(Contracts, PackPanelViewRejectsMisalignedOutput) {
  LDLA_REQUIRE_CHECKED_BUILD();
  BitMatrix m(4, 64);
  const std::size_t r = 4, ku = 2, kc = m.words_per_snp();
  AlignedBuffer<std::uint64_t> buf(packed_panel_words(m.snps(), kc, r, ku) + 1);
  // One word past a 64-byte boundary is 8-byte aligned but not 64.
  EXPECT_THROW(
      (void)pack_panel_view(m.view(), 0, m.snps(), 0, kc, r, ku,
                            buf.data() + 1),
      ContractViolation);
}

using ContractDeathTest = ::testing::Test;

TEST(ContractDeathTest, AlignedBufferIndexOutOfRangeTerminates) {
  LDLA_REQUIRE_CHECKED_BUILD();
  // operator[] is noexcept, so the ContractViolation thrown by the bounds
  // check cannot unwind: std::terminate fires. That is the intended
  // behavior for the hottest accessor — no exception-path code in kernels.
  AlignedBuffer<std::uint32_t> buf(8);
  EXPECT_DEATH((void)buf[8], "buffer index out of range");
}

TEST(ContractDeathTest, ConstAlignedBufferIndexOutOfRangeTerminates) {
  LDLA_REQUIRE_CHECKED_BUILD();
  const AlignedBuffer<std::uint64_t> buf(4);
  EXPECT_DEATH((void)buf[100], "buffer index out of range");
}

TEST(Contracts, ExpectIsActiveInEveryBuild) {
  // LDLA_EXPECT does not depend on LDLA_CHECKED_BUILD — it guards public
  // API boundaries unconditionally.
  BitMatrix m(2, 10);
  EXPECT_THROW(m.set(2, 0, true), ContractViolation);
  EXPECT_THROW((void)m.get(0, 10), ContractViolation);
}

TEST(Contracts, ViolationMessageNamesTheRequirement) {
  LDLA_REQUIRE_CHECKED_BUILD();
  BitMatrix m(2, 10);
  try {
    (void)m.row_data(7);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("row index out of range"), std::string::npos) << what;
    EXPECT_NE(what.find("bit_matrix.hpp"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace ldla
