// Sanity tests for the hardware-introspection utilities (cpu_info, timer,
// peak calibration) and the contract machinery.
#include <thread>

#include <gtest/gtest.h>

#include "util/contract.hpp"
#include "util/cpu_info.hpp"
#include "util/peak.hpp"
#include "util/timer.hpp"

namespace ldla {
namespace {

TEST(Contract, ExpectThrowsWithContext) {
  try {
    LDLA_EXPECT(false, "the message");
    FAIL() << "must throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("test_util_misc"), std::string::npos)
        << "should carry the source location";
  }
}

TEST(Contract, ExpectPassesSilently) {
  LDLA_EXPECT(1 + 1 == 2, "never fires");
}

TEST(CpuInfo, ReportsSaneValues) {
  const CpuInfo& info = cpu_info();
  EXPECT_GE(info.logical_cores, 1u);
  EXPECT_GT(info.cache.l1d, 4u * 1024);
  EXPECT_GE(info.cache.l2, info.cache.l1d);
  EXPECT_FALSE(info.brand.empty());
#if defined(__x86_64__)
  // Every x86-64 CPU this library targets has SSE4.2 POPCNT.
  EXPECT_TRUE(info.features.popcnt);
#endif
}

TEST(CpuInfo, DetectionIsStable) {
  const CpuInfo& a = cpu_info();
  const CpuInfo& b = cpu_info();
  EXPECT_EQ(&a, &b) << "detection must run once and be cached";
}

TEST(CpuInfo, SummaryMentionsFeatures) {
  const std::string s = cpu_summary();
  EXPECT_NE(s.find("cores="), std::string::npos);
  EXPECT_NE(s.find("L1d="), std::string::npos);
}

TEST(Timer, MeasuresSleepsApproximately) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const double s = t.seconds();
  EXPECT_GE(s, 0.025);
  EXPECT_LT(s, 3.0);  // generous upper bound for loaded CI machines
  t.reset();
  EXPECT_LT(t.seconds(), 0.025);
}

TEST(Timer, TscIsMonotonicAndCalibrated) {
  const std::uint64_t a = rdtsc_serialized();
  const std::uint64_t b = rdtsc_serialized();
  EXPECT_GE(b, a);
  const double hz = tsc_hz();
  EXPECT_GT(hz, 1e8);   // > 100 MHz
  EXPECT_LT(hz, 1e11);  // < 100 GHz
}

TEST(Peak, CalibrationIsPlausibleAndCached) {
  const PeakEstimate& p = peak_estimate();
  EXPECT_GT(p.core_hz, 1e8);
  EXPECT_LT(p.core_hz, 2e10);
  EXPECT_GT(p.scalar_triples_per_sec, 0.0);
  // The measured attainable rate should be near the frequency-derived
  // peak (1 triple/cycle): allow a wide band for virtualized hosts.
  // Sanitizer instrumentation slows the measured loop by an unbounded
  // factor, so the magnitude bounds only hold in uninstrumented builds.
#if !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
  EXPECT_GT(p.scalar_triples_per_sec, 1e8);
  EXPECT_GT(p.scalar_triples_per_sec, 0.3 * p.core_hz);
#endif
  EXPECT_LT(p.scalar_triples_per_sec, 3.0 * p.core_hz);
  const PeakEstimate& again = peak_estimate();
  EXPECT_EQ(&p, &again);
}

TEST(Peak, VectorPeakPresentWhenHardwareSupportsIt) {
  const PeakEstimate& p = peak_estimate();
  if (cpu_info().features.avx512vpopcntdq) {
    EXPECT_GT(p.vector_triples_per_sec, p.scalar_triples_per_sec)
        << "VPOPCNTDQ must beat scalar POPCNT on L1-resident data";
  } else {
    EXPECT_EQ(p.vector_triples_per_sec, 0.0);
  }
}

}  // namespace
}  // namespace ldla
