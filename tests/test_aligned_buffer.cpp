#include "util/aligned_buffer.hpp"

#include <cstdint>
#include <utility>

#include <gtest/gtest.h>

#include "util/contract.hpp"

namespace ldla {
namespace {

TEST(AlignedBuffer, DefaultConstructedIsEmpty) {
  AlignedBuffer<std::uint64_t> buf;
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.data(), nullptr);
}

TEST(AlignedBuffer, AllocatesRequestedCount) {
  AlignedBuffer<std::uint64_t> buf(1000);
  EXPECT_EQ(buf.size(), 1000u);
  EXPECT_FALSE(buf.empty());
  ASSERT_NE(buf.data(), nullptr);
}

TEST(AlignedBuffer, DefaultAlignmentIsCacheLine) {
  for (std::size_t n : {1u, 7u, 64u, 1000u}) {
    AlignedBuffer<std::uint32_t> buf(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 64, 0u)
        << "allocation of " << n << " elements not 64-byte aligned";
  }
}

TEST(AlignedBuffer, HonorsCustomAlignment) {
  AlignedBuffer<std::uint8_t> buf(10, 4096);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 4096, 0u);
}

TEST(AlignedBuffer, RejectsNonPowerOfTwoAlignment) {
  EXPECT_THROW(AlignedBuffer<std::uint8_t>(16, 48), ContractViolation);
  EXPECT_THROW(AlignedBuffer<std::uint8_t>(16, 0), ContractViolation);
}

TEST(AlignedBuffer, ZeroFillsEveryByte) {
  AlignedBuffer<std::uint64_t> buf(257);
  for (auto& w : buf) w = ~std::uint64_t{0};
  buf.zero();
  for (const auto& w : buf) EXPECT_EQ(w, 0u);
}

TEST(AlignedBuffer, ElementAccessRoundTrips) {
  AlignedBuffer<std::uint32_t> buf(100);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::uint32_t>(i * 3 + 1);
  }
  for (std::size_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(buf[i], static_cast<std::uint32_t>(i * 3 + 1));
  }
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<std::uint64_t> a(10);
  a[0] = 42;
  std::uint64_t* p = a.data();
  AlignedBuffer<std::uint64_t> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b[0], 42u);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.size(), 0u);
}

TEST(AlignedBuffer, MoveAssignReleasesOldAllocation) {
  AlignedBuffer<std::uint64_t> a(10);
  AlignedBuffer<std::uint64_t> b(20);
  b = std::move(a);
  EXPECT_EQ(b.size(), 10u);
}

TEST(AlignedBuffer, SpanCoversWholeBuffer) {
  AlignedBuffer<std::uint64_t> buf(33);
  EXPECT_EQ(buf.span().size(), 33u);
  EXPECT_EQ(buf.span().data(), buf.data());
}

TEST(AlignedBuffer, ZeroSizedBufferIsSafe) {
  AlignedBuffer<std::uint64_t> buf(0);
  EXPECT_TRUE(buf.empty());
  buf.zero();  // must not crash
}

}  // namespace
}  // namespace ldla
