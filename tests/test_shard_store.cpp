// Shard-store round-trip, residency accounting and forged-input rejection,
// plus the tile-store codec round trip.
//
// The store's contract is byte-exactness: a shard mmap'd back must alias
// payloads bit-identical to what an in-memory pack of the same row window
// under the same plan produces — slivers, sparse metadata, transpose and
// prescaled gather lists alike. The forgery tests drive parse_shard_index
// directly (the same entry point the fuzzer owns) with targeted single-field
// corruptions of a genuine file, so every validation branch is known to be
// reachable from real bytes.
#include "io/shard_store.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include <gtest/gtest.h>

#include "core/gemm/packed_bit_matrix.hpp"
#include "io/tile_store.hpp"
#include "sim/rng.hpp"
#include "util/contract.hpp"

namespace ldla {
namespace {

BitMatrix random_matrix(std::size_t snps, std::size_t samples,
                        std::uint64_t seed, double density = 0.4) {
  Rng rng(seed);
  BitMatrix m(snps, samples);
  for (std::size_t s = 0; s < snps; ++s) {
    for (std::size_t b = 0; b < samples; ++b) {
      if (rng.next_bool(density)) m.set(s, b, true);
    }
  }
  return m;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

// Header layout: 8-byte magic then u64 fields (see shard_store.cpp).
constexpr std::size_t kHdr = 8;
enum HeaderField : std::size_t {
  kFSnps = 0, kFWords, kFSamples, kFArch, kFMr, kFNr, kFKu, kFKc, kFMc, kFNc,
  kFSparse, kFShardCount, kFFileBytes, kFDirOff,
};
constexpr std::size_t kRecordU64s = 16;

std::uint64_t get_field(const std::vector<std::uint8_t>& f, std::size_t i) {
  std::uint64_t v;
  std::memcpy(&v, f.data() + kHdr + i * 8, 8);
  return v;
}

void set_field(std::vector<std::uint8_t>& f, std::size_t i, std::uint64_t v) {
  std::memcpy(f.data() + kHdr + i * 8, &v, 8);
}

std::uint64_t get_rec(const std::vector<std::uint8_t>& f, std::size_t shard,
                      std::size_t field) {
  const std::size_t off =
      get_field(f, kFDirOff) + (shard * kRecordU64s + field) * 8;
  std::uint64_t v;
  std::memcpy(&v, f.data() + off, 8);
  return v;
}

void set_rec(std::vector<std::uint8_t>& f, std::size_t shard,
             std::size_t field, std::uint64_t v) {
  const std::size_t off =
      get_field(f, kFDirOff) + (shard * kRecordU64s + field) * 8;
  std::memcpy(f.data() + off, &v, 8);
}

// ShardRecord field indices within a directory record.
enum RecField : std::size_t {
  kRRowBegin = 0, kRRowEnd, kRAOff, kRAWords, kRBOff, kRBWords, kRPopOff,
  kRKindOff, kRCsrOff, kRIndexOff, kRIndexCount, kRScaledOff, kRSmOff,
  kRSmStride, kRAFlagsOff, kRBFlagsOff,
};

TEST(ShardStore, RoundTripAliasesPackIdenticalPayloads) {
  // Sparse threshold forced on so index lists, transpose and prescaled
  // sections are all exercised; ragged shard split (3 shards of 40/40/23).
  const BitMatrix g = random_matrix(103, 530, 99, 0.05);
  GemmConfig cfg;
  cfg.arch = KernelArch::kScalar;
  cfg.kc_words = 4;

  const std::string path = temp_path("roundtrip.ldshard");
  write_shard_store(path, g.view(), cfg, /*rows_per_shard=*/40);
  ShardStore store = ShardStore::open(path);
  ASSERT_EQ(store.shards(), 3u);
  ASSERT_EQ(store.snps(), g.snps());
  ASSERT_EQ(store.samples(), g.samples());
  ASSERT_EQ(store.words_per_snp(), g.words_per_snp());

  for (std::size_t i = 0; i < store.shards(); ++i) {
    const std::size_t r0 = store.shard_row_begin(i);
    const std::size_t rows = store.shard_rows(i);
    const BitMatrixView sub{g.row_data(r0), rows, g.words_per_snp(),
                            g.stride_words(), g.samples()};
    const PackedBitMatrix expect(sub, store.plan(), PackSides::kBoth);
    const PackedBitMatrix& got = store.shard(i);

    ASSERT_EQ(got.a_data_words(), expect.a_data_words());
    EXPECT_EQ(std::memcmp(got.a_data(), expect.a_data(),
                          expect.a_data_words() * 8), 0);
    ASSERT_EQ(got.b_data_words(), expect.b_data_words());
    if (expect.b_data_words() != 0) {
      EXPECT_EQ(std::memcmp(got.b_data(), expect.b_data(),
                            expect.b_data_words() * 8), 0);
    }
    const SparseColumns& se = expect.sparse_columns();
    const SparseColumns& sg = got.sparse_columns();
    EXPECT_EQ(sg.threshold, se.threshold);
    EXPECT_EQ(sg.popcount, se.popcount);
    EXPECT_EQ(sg.kind, se.kind);
    EXPECT_EQ(sg.offset, se.offset);
    EXPECT_EQ(sg.index, se.index);
    EXPECT_EQ(sg.sparse_count, se.sparse_count);
    EXPECT_EQ(got.a_sliver_flags(), expect.a_sliver_flags());
    EXPECT_EQ(got.b_sliver_flags(), expect.b_sliver_flags());
    ASSERT_EQ(got.has_sample_major(), expect.has_sample_major());
    if (expect.has_sample_major()) {
      ASSERT_EQ(got.sample_major_stride(), expect.sample_major_stride());
      EXPECT_EQ(std::memcmp(got.sample_major(), expect.sample_major(),
                            g.samples() * expect.sample_major_stride() * 8),
                0);
    }
  }

  // Persisted popcounts reproduce the matrix's derived counts globally.
  const std::vector<std::uint64_t> counts = store.allele_counts();
  ASSERT_EQ(counts.size(), g.snps());
  for (std::size_t s = 0; s < g.snps(); ++s) {
    EXPECT_EQ(counts[s], g.derived_count(s)) << "snp " << s;
  }
}

TEST(ShardStore, ResidencyAccountingTracksMaterializeAndRelease) {
  const BitMatrix g = random_matrix(64, 300, 5);
  const std::string path = temp_path("residency.ldshard");
  GemmConfig cfg;
  cfg.arch = KernelArch::kScalar;
  write_shard_store(path, g.view(), cfg, /*rows_per_shard=*/20);
  ShardStore store = open_shard_store(path);
  ASSERT_EQ(store.shards(), 4u);

  EXPECT_EQ(store.resident_bytes(), 0u);
  std::size_t sum = 0;
  for (std::size_t i = 0; i < store.shards(); ++i) {
    EXPECT_FALSE(store.is_materialized(i));
    store.shard(i);
    EXPECT_TRUE(store.is_materialized(i));
    sum += store.shard_bytes(i);
    EXPECT_EQ(store.resident_bytes(), sum);
  }
  EXPECT_EQ(sum, store.total_payload_bytes());
  EXPECT_GE(store.max_shard_bytes(), store.shard_bytes(3));

  // The mapping really is resident once materialized (page-cache probe).
  EXPECT_GT(store.probe_resident_bytes(), 0u);

  store.release(1);
  EXPECT_FALSE(store.is_materialized(1));
  EXPECT_EQ(store.resident_bytes(), sum - store.shard_bytes(1));
  store.release(1);  // idempotent
  EXPECT_EQ(store.resident_bytes(), sum - store.shard_bytes(1));

  // A released shard comes back bit-identical (stable re-materialization).
  const PackedBitMatrix& back = store.shard(1);
  EXPECT_EQ(back.snps(), store.shard_rows(1));
  EXPECT_EQ(store.resident_bytes(), sum);

  // prefetch is a pure hint: no materialization, no accounting change.
  store.release(2);
  store.prefetch(2);
  EXPECT_FALSE(store.is_materialized(2));
}

TEST(ShardStore, OpenRejectsMissingAndForeignFiles) {
  EXPECT_THROW(ShardStore::open(temp_path("nope.ldshard")), Error);
  const std::string bogus = temp_path("bogus.ldshard");
  std::ofstream(bogus, std::ios::binary) << "definitely not a shard store";
  EXPECT_THROW(ShardStore::open(bogus), ParseError);
}

TEST(ShardStore, GeometryGuardDetectsTunedPlanDrift) {
  const BitMatrix g = random_matrix(90, 400, 21, 0.08);
  GemmConfig cfg;
  cfg.arch = KernelArch::kScalar;  // stored under the scalar default (4x4)
  cfg.kc_words = 4;
  const std::string path = temp_path("guard.ldshard");
  write_shard_store(path, g.view(), cfg, /*rows_per_shard=*/40);

  // The plan a re-tuned session would resolve: same family, different
  // register tile — exactly the drift the guard exists to catch.
  GemmConfig tuned_cfg = cfg;
  tuned_cfg.mr = 2;
  tuned_cfg.nr = 8;
  tuned_cfg.ku = 1;
  const GemmPlan tuned = resolve_plan(tuned_cfg, g.words_per_snp());

  {
    // A matching expectation opens clean and does not repack.
    const GemmPlan same = resolve_plan(cfg, g.words_per_snp());
    ShardOpenOptions opts;
    opts.expect_plan = &same;
    ShardStore s = open_shard_store(path, opts);
    EXPECT_FALSE(s.repacks_on_materialize());
  }

  // Mismatch without the repack opt-in: an Error naming both geometries
  // and the remedies, not a deep contract trip.
  try {
    ShardOpenOptions opts;
    opts.expect_plan = &tuned;
    open_shard_store(path, opts);
    FAIL() << "geometry mismatch must throw";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("re-ingest"), std::string::npos) << msg;
    EXPECT_NE(msg.find("repack_on_mismatch"), std::string::npos) << msg;
    EXPECT_NE(msg.find("mr=4"), std::string::npos) << msg;
    EXPECT_NE(msg.find("mr=2"), std::string::npos) << msg;
  }

  // Repack fallback: every shard materializes under the expected plan,
  // byte-identical to packing the same rows fresh.
  ShardOpenOptions opts;
  opts.expect_plan = &tuned;
  opts.repack_on_mismatch = true;
  ShardStore s = open_shard_store(path, opts);
  EXPECT_TRUE(s.repacks_on_materialize());
  EXPECT_EQ(s.plan().mr, 2u);
  EXPECT_EQ(s.plan().nr, 8u);
  EXPECT_EQ(s.stored_plan().mr, 4u);
  for (std::size_t i = 0; i < s.shards(); ++i) {
    const std::size_t r0 = s.shard_row_begin(i);
    const BitMatrixView sub{g.row_data(r0), s.shard_rows(i),
                            g.words_per_snp(), g.stride_words(), g.samples()};
    const PackedBitMatrix expect(sub, tuned, PackSides::kBoth);
    const PackedBitMatrix& got = s.shard(i);
    EXPECT_EQ(got.plan().mr, tuned.mr);
    ASSERT_EQ(got.a_data_words(), expect.a_data_words());
    EXPECT_EQ(std::memcmp(got.a_data(), expect.a_data(),
                          expect.a_data_words() * 8),
              0)
        << "shard " << i;
    EXPECT_EQ(got.sparse_columns().popcount,
              expect.sparse_columns().popcount);
  }
}

TEST(ShardStore, VerifyShardPopcountsCatchesCorruption) {
  // Sparse store (has a transpose: the positional-strip path) and a dense
  // one (no transpose: the unpack path).
  for (const double density : {0.05, 0.5}) {
    const BitMatrix g = random_matrix(80, 333, 31, density);
    GemmConfig cfg;
    cfg.arch = KernelArch::kScalar;
    cfg.kc_words = 4;
    if (density > 0.1) cfg.sparse_threshold = 0;  // keep the dense store dense
    const std::string path = temp_path("verify.ldshard");
    write_shard_store(path, g.view(), cfg, /*rows_per_shard=*/30);
    {
      ShardStore s = open_shard_store(path);
      for (std::size_t i = 0; i < s.shards(); ++i) {
        EXPECT_TRUE(s.verify_shard_popcounts(i))
            << "density " << density << " shard " << i;
      }
    }

    // Nudge one persisted popcount (staying within n_samples so the
    // materialize-time range check cannot be the thing that fires).
    std::vector<std::uint8_t> bytes = read_file(path);
    const std::uint64_t pop_off = get_rec(bytes, 1, 6);
    std::uint32_t pop0;
    std::memcpy(&pop0, bytes.data() + pop_off, 4);
    pop0 = pop0 > 0 ? pop0 - 1 : 1;
    std::memcpy(bytes.data() + pop_off, &pop0, 4);
    std::ofstream(path, std::ios::binary | std::ios::trunc)
        .write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));

    ShardStore s = open_shard_store(path);
    EXPECT_TRUE(s.verify_shard_popcounts(0)) << "untouched shard";
    EXPECT_FALSE(s.verify_shard_popcounts(1)) << "corrupt shard";
  }
}

class ShardParseForgery : public ::testing::Test {
 protected:
  void SetUp() override {
    const BitMatrix g = random_matrix(50, 200, 7, 0.05);
    GemmConfig cfg;
    cfg.arch = KernelArch::kScalar;
    cfg.kc_words = 4;
    path_ = temp_path("forgery.ldshard");
    write_shard_store(path_, g.view(), cfg, /*rows_per_shard=*/20);
    bytes_ = read_file(path_);
    ASSERT_GE(bytes_.size(), 120u);
    // The pristine file parses.
    const ShardIndex idx = parse_shard_index(bytes_.data(), bytes_.size());
    ASSERT_EQ(idx.shards.size(), 3u);
    ASSERT_EQ(idx.n_snps, 50u);
  }

  void expect_reject(const char* why) {
    EXPECT_THROW(parse_shard_index(bytes_.data(), bytes_.size()), ParseError)
        << why;
  }

  std::string path_;
  std::vector<std::uint8_t> bytes_;
};

TEST_F(ShardParseForgery, BadMagic) {
  bytes_[0] ^= 0xFF;
  expect_reject("magic");
}

TEST_F(ShardParseForgery, TruncatedMap) {
  for (const std::size_t keep : {std::size_t{0}, std::size_t{7},
                                 std::size_t{119}, bytes_.size() - 1}) {
    EXPECT_THROW(parse_shard_index(bytes_.data(), keep), ParseError)
        << "kept " << keep;
  }
}

TEST_F(ShardParseForgery, FileBytesMismatch) {
  set_field(bytes_, kFFileBytes, bytes_.size() + 64);
  expect_reject("file_bytes");
}

TEST_F(ShardParseForgery, AbsurdSnpAndSampleCounts) {
  auto fresh = bytes_;
  set_field(bytes_, kFSnps, std::uint64_t{1} << 60);
  expect_reject("absurd SNP count");
  bytes_ = fresh;
  set_field(bytes_, kFSamples, std::uint64_t{1} << 40);
  expect_reject("absurd sample count");
  bytes_ = fresh;
  set_field(bytes_, kFShardCount, 0);
  expect_reject("zero shards");
  bytes_ = fresh;
  set_field(bytes_, kFShardCount, get_field(bytes_, kFSnps) + 1);
  expect_reject("more shards than rows");
}

TEST_F(ShardParseForgery, PlanGeometryOutOfRange) {
  auto fresh = bytes_;
  set_field(bytes_, kFArch, 0);  // kAuto is not a persistable arch
  expect_reject("arch auto");
  bytes_ = fresh;
  set_field(bytes_, kFArch, 99);
  expect_reject("arch unknown");
  bytes_ = fresh;
  set_field(bytes_, kFMr, 0);
  expect_reject("mr zero");
  bytes_ = fresh;
  set_field(bytes_, kFKc, std::uint64_t{1} << 40);
  expect_reject("absurd kc");
  bytes_ = fresh;
  set_field(bytes_, kFWords, get_field(bytes_, kFWords) + 1);
  expect_reject("words inconsistent with samples");
}

TEST_F(ShardParseForgery, BrokenRowPartition) {
  auto fresh = bytes_;
  set_rec(bytes_, 1, kRRowBegin, get_rec(bytes_, 1, kRRowBegin) + 1);
  expect_reject("gap in the partition");
  bytes_ = fresh;
  set_rec(bytes_, 2, kRRowEnd, get_rec(bytes_, 2, kRRowEnd) - 1);
  expect_reject("partition does not cover the matrix");
  bytes_ = fresh;
  set_rec(bytes_, 0, kRRowEnd, get_rec(bytes_, 0, kRRowBegin));
  expect_reject("empty shard");
}

TEST_F(ShardParseForgery, ExtentViolations) {
  auto fresh = bytes_;
  // Overlap: point shard 1's slivers at shard 0's.
  set_rec(bytes_, 1, kRAOff, get_rec(bytes_, 0, kRAOff));
  expect_reject("overlapping extents");
  bytes_ = fresh;
  set_rec(bytes_, 0, kRAOff, 8);  // inside the header
  expect_reject("extent inside the header");
  bytes_ = fresh;
  set_rec(bytes_, 0, kRAOff, get_rec(bytes_, 0, kRAOff) + 8);
  expect_reject("misaligned extent (and overlap)");
  bytes_ = fresh;
  set_rec(bytes_, 2, kRPopOff, bytes_.size() + (std::uint64_t{1} << 30));
  expect_reject("extent beyond the file");
  bytes_ = fresh;
  set_rec(bytes_, 0, kRPopOff, 0);
  expect_reject("popcounts are mandatory");
}

TEST_F(ShardParseForgery, SliverGeometryMismatch) {
  auto fresh = bytes_;
  set_rec(bytes_, 0, kRAWords, get_rec(bytes_, 0, kRAWords) + 8);
  expect_reject("a_words off the plan-implied size");
  bytes_ = fresh;
  // mr == nr stores share B with A: forging a B extent must be rejected.
  ASSERT_EQ(get_rec(bytes_, 0, kRBWords), 0u);
  set_rec(bytes_, 0, kRBWords, get_rec(bytes_, 0, kRAWords));
  expect_reject("B words on a shared-side store");
}

TEST_F(ShardParseForgery, SparseSectionConsistency) {
  auto fresh = bytes_;
  // index_count without an index extent.
  set_rec(bytes_, 0, kRIndexOff, 0);
  if (get_rec(bytes_, 0, kRIndexCount) != 0) {
    expect_reject("count without list data");
  }
  bytes_ = fresh;
  set_rec(bytes_, 0, kRIndexCount,
          get_rec(bytes_, 0, kRIndexCount) +
              (std::uint64_t{1} << 40));
  expect_reject("absurd index count");
  bytes_ = fresh;
  if (get_rec(bytes_, 0, kRSmOff) != 0) {
    set_rec(bytes_, 0, kRSmStride, get_rec(bytes_, 0, kRSmStride) + 1);
    expect_reject("transpose stride off words_for_bits(rows)");
  }
}

TEST(TileStore, RoundTripBothCodecsAndRandomLookup) {
  // Values with shared high bytes (the XOR codec's favorable case) plus
  // NaN and exact-zero runs; strided tiles exercise the ld != cols path.
  const std::size_t n = 37;
  std::vector<double> matrix(n * n);
  Rng rng(11);
  double prev = 0.25;
  for (double& v : matrix) {
    const double r = rng.next_double();
    // Run-heavy like a real LD matrix: saturated blocks repeat the previous
    // value, monomorphic stretches are NaN, the rest is fresh entropy.
    if (r < 0.5) {
      v = prev;
    } else if (r < 0.6) {
      v = std::nan("");
    } else {
      v = rng.next_double();
    }
    prev = v;
  }
  for (const TileCodec codec : {TileCodec::kRaw, TileCodec::kXor}) {
    const std::string path = temp_path("tiles.ldtile");
    {
      TileStoreWriter w(path, LdStatistic::kD, n, n, codec);
      // Cover the matrix with 16-row/13-col tiles through a stride-n view.
      for (std::size_t i = 0; i < n; i += 16) {
        for (std::size_t j = 0; j < n; j += 13) {
          LdTile t;
          t.row_begin = i;
          t.col_begin = j;
          t.rows = std::min<std::size_t>(16, n - i);
          t.cols = std::min<std::size_t>(13, n - j);
          t.values = matrix.data() + i * n + j;
          t.ld = n;
          w.add(t);
        }
      }
      w.close();
      if (codec == TileCodec::kXor) {
        EXPECT_LT(w.payload_bytes(), w.raw_bytes());  // zeros/NaN runs pack
      } else {
        EXPECT_EQ(w.payload_bytes(), w.raw_bytes());
      }
    }

    TileStoreReader r(path);
    EXPECT_EQ(r.stat(), LdStatistic::kD);
    EXPECT_EQ(r.codec(), codec);
    EXPECT_EQ(r.matrix_rows(), n);
    EXPECT_EQ(r.matrix_cols(), n);
    std::size_t cells = 0;
    for (std::size_t t = 0; t < r.tiles(); ++t) {
      const TileData td = r.read_tile(t);
      for (std::size_t i = 0; i < td.rec.rows; ++i) {
        for (std::size_t j = 0; j < td.rec.cols; ++j) {
          const double want =
              matrix[(td.rec.row_begin + i) * n + td.rec.col_begin + j];
          const double have = td.at(i, j);
          EXPECT_EQ(std::memcmp(&want, &have, 8), 0);
          ++cells;
        }
      }
    }
    EXPECT_EQ(cells, n * n);

    double v = 0.0;
    ASSERT_TRUE(r.find(19, 33, &v));
    EXPECT_EQ(std::memcmp(&v, &matrix[19 * n + 33], 8), 0);
  }
}

TEST(TileStore, ReaderRejectsTruncationAndCorruptPayload) {
  const std::string path = temp_path("tile_forge.ldtile");
  std::vector<double> vals(24, 0.5);
  {
    TileStoreWriter w(path, LdStatistic::kRSquared, 6, 4, TileCodec::kXor);
    LdTile t;
    t.rows = 6;
    t.cols = 4;
    t.values = vals.data();
    t.ld = 4;
    w.add(t);
    w.close();
  }
  std::vector<std::uint8_t> bytes = read_file(path);

  // Missing footer = writer died mid-stream.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size() - 8));
  }
  EXPECT_THROW(TileStoreReader{path}, ParseError);

  // Corrupt XOR control byte in the payload.
  auto forged = bytes;
  forged[40] = 0xFF;  // first payload byte (header is 40 bytes)
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(forged.data()),
              static_cast<std::streamsize>(forged.size()));
  }
  TileStoreReader r(path);
  EXPECT_THROW(r.read_tile(0), ParseError);
}

}  // namespace
}  // namespace ldla
