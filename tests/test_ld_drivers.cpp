#include "core/ld.hpp"

#include <cmath>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "baselines/naive.hpp"
#include "sim/rng.hpp"
#include "sim/wright_fisher.hpp"
#include "util/contract.hpp"

namespace ldla {
namespace {

BitMatrix test_matrix(std::size_t snps, std::size_t samples,
                      std::uint64_t seed) {
  WrightFisherParams p;
  p.n_snps = snps;
  p.n_samples = samples;
  p.seed = seed;
  p.founders = 16;
  return simulate_genotypes(p);
}

void expect_matrices_near(const LdMatrix& got, const LdMatrix& want,
                          double tol = 1e-12) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (std::size_t i = 0; i < got.rows(); ++i) {
    for (std::size_t j = 0; j < got.cols(); ++j) {
      if (std::isnan(want(i, j))) {
        EXPECT_TRUE(std::isnan(got(i, j))) << "at (" << i << ", " << j << ")";
      } else {
        EXPECT_NEAR(got(i, j), want(i, j), tol)
            << "at (" << i << ", " << j << ")";
      }
    }
  }
}

class LdDriverStat : public ::testing::TestWithParam<LdStatistic> {};

TEST_P(LdDriverStat, MatrixMatchesNaive) {
  const BitMatrix g = test_matrix(31, 200, 1);
  LdOptions opts;
  opts.stat = GetParam();
  expect_matrices_near(ld_matrix(g, opts), naive_ld_matrix(g, GetParam()));
}

TEST_P(LdDriverStat, MatrixMatchesFloatingPointOracle) {
  const BitMatrix g = test_matrix(17, 150, 2);
  LdOptions opts;
  opts.stat = GetParam();
  expect_matrices_near(ld_matrix(g, opts), dgemm_ld_matrix(g, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllStatistics, LdDriverStat,
                         ::testing::Values(LdStatistic::kD,
                                           LdStatistic::kDPrime,
                                           LdStatistic::kRSquared),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case LdStatistic::kD: return "D";
                             case LdStatistic::kDPrime: return "DPrime";
                             default: return "RSquared";
                           }
                         });

TEST(LdMatrixDriver, DiagonalOfPolymorphicSnpsIsOne) {
  const BitMatrix g = test_matrix(20, 100, 3);
  const LdMatrix r2 = ld_matrix(g);
  for (std::size_t i = 0; i < g.snps(); ++i) {
    const std::uint64_t c = g.derived_count(i);
    if (c > 0 && c < g.samples()) {
      EXPECT_DOUBLE_EQ(r2(i, i), 1.0);
    }
  }
}

TEST(LdMatrixDriver, SymmetricResult) {
  const BitMatrix g = test_matrix(25, 130, 4);
  const LdMatrix r2 = ld_matrix(g);
  for (std::size_t i = 0; i < 25; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (!std::isnan(r2(i, j))) {
        EXPECT_DOUBLE_EQ(r2(i, j), r2(j, i));
      }
    }
  }
}

TEST(LdCrossMatrix, MatchesNaivePairCounts) {
  const BitMatrix a = test_matrix(12, 96, 5);
  const BitMatrix b = test_matrix(9, 96, 6);
  const LdMatrix got = ld_cross_matrix(a, b);
  for (std::size_t i = 0; i < a.snps(); ++i) {
    for (std::size_t j = 0; j < b.snps(); ++j) {
      const double want =
          ld_r_squared(a.derived_count(i), b.derived_count(j),
                       naive_pair_count(a, i, b, j), a.samples());
      if (std::isnan(want)) {
        EXPECT_TRUE(std::isnan(got(i, j)));
      } else {
        EXPECT_NEAR(got(i, j), want, 1e-12);
      }
    }
  }
}

TEST(LdCrossMatrix, RejectsMismatchedSamples) {
  const BitMatrix a = test_matrix(4, 64, 7);
  const BitMatrix b = test_matrix(4, 128, 8);
  EXPECT_THROW((void)ld_cross_matrix(a, b), ContractViolation);
}

TEST(LdScan, CoversEveryLowerPairExactlyOnce) {
  const BitMatrix g = test_matrix(47, 80, 9);
  LdOptions opts;
  opts.slab_rows = 10;  // forces several slabs with ragged tail
  std::map<std::pair<std::size_t, std::size_t>, int> seen;
  ld_scan(g, [&](const LdTile& tile) {
    for (std::size_t i = 0; i < tile.rows; ++i) {
      for (std::size_t j = 0; j < tile.cols; ++j) {
        seen[{tile.row_begin + i, tile.col_begin + j}] += 1;
      }
    }
  }, opts);
  for (std::size_t i = 0; i < g.snps(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const auto key = std::make_pair(i, j);
      EXPECT_EQ(seen.count(key), 1u) << i << "," << j;
      EXPECT_EQ(seen[key], 1) << i << "," << j;
    }
  }
}

TEST(LdScan, ValuesMatchDenseDriver) {
  const BitMatrix g = test_matrix(33, 120, 10);
  const LdMatrix dense = ld_matrix(g);
  LdOptions opts;
  opts.slab_rows = 7;
  ld_scan(g, [&](const LdTile& tile) {
    for (std::size_t i = 0; i < tile.rows; ++i) {
      for (std::size_t j = 0; j < tile.cols; ++j) {
        const double want = dense(tile.row_begin + i, tile.col_begin + j);
        const double got = tile.at(i, j);
        if (std::isnan(want)) {
          EXPECT_TRUE(std::isnan(got));
        } else {
          EXPECT_NEAR(got, want, 1e-12);
        }
      }
    }
  }, opts);
}

TEST(LdCrossScan, ValuesMatchDenseDriver) {
  const BitMatrix a = test_matrix(21, 70, 11);
  const BitMatrix b = test_matrix(13, 70, 12);
  const LdMatrix dense = ld_cross_matrix(a, b);
  LdOptions opts;
  opts.slab_rows = 4;
  std::size_t rows_seen = 0;
  ld_cross_scan(a, b, [&](const LdTile& tile) {
    rows_seen += tile.rows;
    EXPECT_EQ(tile.cols, b.snps());
    for (std::size_t i = 0; i < tile.rows; ++i) {
      for (std::size_t j = 0; j < tile.cols; ++j) {
        const double want = dense(tile.row_begin + i, j);
        if (std::isnan(want)) {
          EXPECT_TRUE(std::isnan(tile.at(i, j)));
        } else {
          EXPECT_NEAR(tile.at(i, j), want, 1e-12);
        }
      }
    }
  }, opts);
  EXPECT_EQ(rows_seen, a.snps());
}

TEST(LdInvariants, SamplePermutationDoesNotChangeLd) {
  // LD is a per-pair statistic over unordered samples: any consistent
  // permutation of the sample axis leaves every value untouched.
  const BitMatrix g = test_matrix(20, 90, 20);
  Rng rng(99);
  std::vector<std::size_t> perm(g.samples());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.next_below(i)]);
  }
  BitMatrix shuffled(g.snps(), g.samples());
  for (std::size_t s = 0; s < g.snps(); ++s) {
    for (std::size_t i = 0; i < g.samples(); ++i) {
      if (g.get(s, i)) shuffled.set(s, perm[i], true);
    }
  }
  const LdMatrix a = ld_matrix(g);
  const LdMatrix b = ld_matrix(shuffled);
  for (std::size_t i = 0; i < g.snps(); ++i) {
    for (std::size_t j = 0; j < g.snps(); ++j) {
      if (std::isnan(a(i, j))) {
        EXPECT_TRUE(std::isnan(b(i, j)));
      } else {
        EXPECT_DOUBLE_EQ(a(i, j), b(i, j)) << i << "," << j;
      }
    }
  }
}

TEST(LdInvariants, DuplicatingTheCohortDoesNotChangeLd) {
  // Every count and Nseq double, so all frequencies — and therefore D and
  // r^2 — are unchanged.
  const BitMatrix g = test_matrix(15, 70, 21);
  BitMatrix doubled(g.snps(), 2 * g.samples());
  for (std::size_t s = 0; s < g.snps(); ++s) {
    for (std::size_t i = 0; i < g.samples(); ++i) {
      if (g.get(s, i)) {
        doubled.set(s, i, true);
        doubled.set(s, g.samples() + i, true);
      }
    }
  }
  for (LdStatistic stat :
       {LdStatistic::kD, LdStatistic::kRSquared, LdStatistic::kDPrime}) {
    LdOptions opts;
    opts.stat = stat;
    const LdMatrix a = ld_matrix(g, opts);
    const LdMatrix b = ld_matrix(doubled, opts);
    for (std::size_t i = 0; i < g.snps(); ++i) {
      for (std::size_t j = 0; j < g.snps(); ++j) {
        if (std::isnan(a(i, j))) {
          EXPECT_TRUE(std::isnan(b(i, j)));
        } else {
          EXPECT_NEAR(a(i, j), b(i, j), 1e-12) << i << "," << j;
        }
      }
    }
  }
}

TEST(LdScan, RejectsZeroSlab) {
  const BitMatrix g = test_matrix(4, 64, 13);
  LdOptions opts;
  opts.slab_rows = 0;
  EXPECT_THROW(ld_scan(g, [](const LdTile&) {}, opts), ContractViolation);
}

TEST(LdScan, EmptyMatrixEmitsNothing) {
  BitMatrix empty;
  ld_scan(empty, [](const LdTile&) { FAIL() << "no tiles expected"; });
}

}  // namespace
}  // namespace ldla
