#include "core/missing.hpp"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/rng.hpp"
#include "util/contract.hpp"

namespace ldla {
namespace {

// Scalar oracle directly from the Section VII formulas, per sample.
double oracle_pair(const MaskedBitMatrix& g, std::size_t i, std::size_t j,
                   LdStatistic stat) {
  std::uint64_t ci = 0, cj = 0, cij = 0, nv = 0;
  for (std::size_t s = 0; s < g.samples(); ++s) {
    const bool vi = g.valid().get(i, s);
    const bool vj = g.valid().get(j, s);
    if (!vi || !vj) continue;
    ++nv;
    const bool si = g.states().get(i, s);
    const bool sj = g.states().get(j, s);
    ci += si;
    cj += sj;
    cij += si && sj;
  }
  return ld_value_missing(stat, ci, cj, cij, nv);
}

MaskedBitMatrix random_masked(std::size_t snps, std::size_t samples,
                              double missing_rate, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> rows(snps);
  for (auto& row : rows) {
    row.resize(samples);
    for (auto& c : row) {
      if (rng.next_bool(missing_rate)) {
        c = '-';
      } else {
        c = rng.next_bool(0.4) ? '1' : '0';
      }
    }
  }
  return MaskedBitMatrix::from_snp_strings(rows);
}

TEST(MaskedBitMatrix, FromStringsParsesAllSymbols) {
  const std::vector<std::string> rows = {"01-N", "1100"};
  const MaskedBitMatrix m = MaskedBitMatrix::from_snp_strings(rows);
  EXPECT_EQ(m.snps(), 2u);
  EXPECT_EQ(m.samples(), 4u);
  EXPECT_FALSE(m.states().get(0, 0));
  EXPECT_TRUE(m.states().get(0, 1));
  EXPECT_TRUE(m.valid().get(0, 0));
  EXPECT_TRUE(m.valid().get(0, 1));
  EXPECT_FALSE(m.valid().get(0, 2));  // '-'
  EXPECT_FALSE(m.valid().get(0, 3));  // 'N'
  EXPECT_EQ(m.valid_count(0), 2u);
  EXPECT_EQ(m.valid_count(1), 4u);
}

TEST(MaskedBitMatrix, RejectsBadSymbols) {
  const std::vector<std::string> rows = {"01?0"};
  EXPECT_THROW(MaskedBitMatrix::from_snp_strings(rows), ParseError);
}

TEST(MaskedBitMatrix, ConstructorEnforcesStateMaskInvariant) {
  BitMatrix states(1, 4);
  BitMatrix valid(1, 4);
  states.set(0, 0, true);  // state set but invalid
  states.set(0, 1, true);
  valid.set(0, 1, true);
  const MaskedBitMatrix m(std::move(states), std::move(valid));
  EXPECT_FALSE(m.states().get(0, 0)) << "invalid state bit must be cleared";
  EXPECT_TRUE(m.states().get(0, 1));
}

TEST(MaskedBitMatrix, RejectsDimensionMismatch) {
  EXPECT_THROW(MaskedBitMatrix(BitMatrix(2, 4), BitMatrix(2, 5)),
               ContractViolation);
  EXPECT_THROW(MaskedBitMatrix(BitMatrix(2, 4), BitMatrix(3, 4)),
               ContractViolation);
}

class MissingStat : public ::testing::TestWithParam<LdStatistic> {};

TEST_P(MissingStat, GemmFormulationMatchesPerSampleOracle) {
  const MaskedBitMatrix g = random_masked(23, 150, 0.15, 42);
  LdOptions opts;
  opts.stat = GetParam();
  const LdMatrix got = ld_matrix_missing(g, opts);
  for (std::size_t i = 0; i < g.snps(); ++i) {
    for (std::size_t j = 0; j < g.snps(); ++j) {
      const double want = oracle_pair(g, i, j, GetParam());
      if (std::isnan(want)) {
        EXPECT_TRUE(std::isnan(got(i, j))) << i << "," << j;
      } else {
        EXPECT_NEAR(got(i, j), want, 1e-12) << i << "," << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllStatistics, MissingStat,
                         ::testing::Values(LdStatistic::kD,
                                           LdStatistic::kDPrime,
                                           LdStatistic::kRSquared),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case LdStatistic::kD: return "D";
                             case LdStatistic::kDPrime: return "DPrime";
                             default: return "RSquared";
                           }
                         });

TEST(Missing, AllValidReducesToPlainLd) {
  // With no gaps, the masked computation must equal the ISM path exactly.
  const MaskedBitMatrix masked = random_masked(19, 120, 0.0, 7);
  const LdMatrix got = ld_matrix_missing(masked);
  const LdMatrix want = ld_matrix(masked.states().clone());
  for (std::size_t i = 0; i < 19; ++i) {
    for (std::size_t j = 0; j < 19; ++j) {
      if (std::isnan(want(i, j))) {
        EXPECT_TRUE(std::isnan(got(i, j)));
      } else {
        EXPECT_DOUBLE_EQ(got(i, j), want(i, j));
      }
    }
  }
}

TEST(Missing, FullyMissingPairIsNaN) {
  const std::vector<std::string> rows = {"--11", "11--"};
  const MaskedBitMatrix g = MaskedBitMatrix::from_snp_strings(rows);
  const LdMatrix r2 = ld_matrix_missing(g);
  EXPECT_TRUE(std::isnan(r2(0, 1)));
  EXPECT_TRUE(std::isnan(r2(1, 0)));
}

TEST(Missing, CrossMatrixMatchesOracle) {
  const MaskedBitMatrix a = random_masked(11, 100, 0.2, 8);
  const MaskedBitMatrix b = random_masked(7, 100, 0.1, 9);
  const LdMatrix got = ld_cross_matrix_missing(a, b);
  for (std::size_t i = 0; i < a.snps(); ++i) {
    for (std::size_t j = 0; j < b.snps(); ++j) {
      std::uint64_t ci = 0, cj = 0, cij = 0, nv = 0;
      for (std::size_t s = 0; s < a.samples(); ++s) {
        if (!a.valid().get(i, s) || !b.valid().get(j, s)) continue;
        ++nv;
        ci += a.states().get(i, s);
        cj += b.states().get(j, s);
        cij += a.states().get(i, s) && b.states().get(j, s);
      }
      const double want = ld_value_missing(LdStatistic::kRSquared, ci, cj,
                                           cij, nv);
      if (std::isnan(want)) {
        EXPECT_TRUE(std::isnan(got(i, j)));
      } else {
        EXPECT_NEAR(got(i, j), want, 1e-12);
      }
    }
  }
}

TEST(Missing, ScanMatchesDenseDriver) {
  const MaskedBitMatrix g = random_masked(41, 90, 0.2, 10);
  const LdMatrix dense = ld_matrix_missing(g);
  LdOptions opts;
  opts.slab_rows = 7;
  std::size_t covered = 0;
  ld_scan_missing(g, [&](const LdTile& tile) {
    for (std::size_t i = 0; i < tile.rows; ++i) {
      for (std::size_t j = 0; j < tile.cols; ++j) {
        const double want = dense(tile.row_begin + i, tile.col_begin + j);
        const double got = tile.at(i, j);
        if (std::isnan(want)) {
          EXPECT_TRUE(std::isnan(got));
        } else {
          EXPECT_NEAR(got, want, 1e-12);
        }
        if (tile.col_begin + j <= tile.row_begin + i) ++covered;
      }
    }
  }, opts);
  EXPECT_EQ(covered, ld_pair_count(g.snps()));
}

TEST(Missing, ScanRejectsZeroSlab) {
  const MaskedBitMatrix g = random_masked(5, 32, 0.1, 11);
  LdOptions opts;
  opts.slab_rows = 0;
  EXPECT_THROW(ld_scan_missing(g, [](const LdTile&) {}, opts),
               ContractViolation);
}

TEST(Missing, ValueMissingWithZeroValidIsNaN) {
  EXPECT_TRUE(
      std::isnan(ld_value_missing(LdStatistic::kRSquared, 0, 0, 0, 0)));
}

}  // namespace
}  // namespace ldla
