// Property sweep for the persistent packed operand (PackedBitMatrix): the
// packed-sliver drivers must be bit-identical to the fresh-pack path across
// kernel arch x blocking params x non-multiple-of-tile shapes x padding,
// including ranged (sliver-boundary-crossing) windows.
#include "core/gemm/packed_bit_matrix.hpp"

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/naive.hpp"
#include "core/band.hpp"
#include "core/gemm/kernel.hpp"
#include "core/gemm/macro.hpp"
#include "core/gemm/syrk.hpp"
#include "core/ld.hpp"
#include "omega/sweep_scan.hpp"
#include "sim/rng.hpp"
#include "util/contract.hpp"

namespace ldla {
namespace {

BitMatrix random_matrix(std::size_t snps, std::size_t samples,
                        std::uint64_t seed) {
  Rng rng(seed);
  BitMatrix m(snps, samples);
  for (std::size_t s = 0; s < snps; ++s) {
    for (std::size_t b = 0; b < samples; ++b) {
      if (rng.next_bool(0.4)) m.set(s, b, true);
    }
  }
  return m;
}

// Ragged shapes: none a multiple of any register tile, sample counts off
// word boundaries (padding words in play) and spanning 1..16 words.
const std::vector<std::pair<std::size_t, std::size_t>> kShapes = {
    {5, 100}, {33, 323}, {70, 129}, {128, 1000}};

// Blocking sweeps: auto, tiny blocks (many panels and edge tiles), kc that
// forces several k panels on multi-word samples, and the no-blocking
// ablation (single giant block).
std::vector<GemmConfig> blocking_configs(KernelArch arch) {
  std::vector<GemmConfig> cfgs(4);
  cfgs[1].kc_words = 2;
  cfgs[1].mc = 8;
  cfgs[1].nc = 8;
  cfgs[2].kc_words = 3;
  cfgs[2].mc = 24;
  cfgs[2].nc = 16;
  cfgs[3].blocking = false;
  for (GemmConfig& cfg : cfgs) cfg.arch = arch;
  return cfgs;
}

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

class PackReuse : public ::testing::TestWithParam<KernelArch> {};

TEST_P(PackReuse, PackedGemmMatchesFreshAndNaive) {
  for (const auto& [n, k] : kShapes) {
    const BitMatrix a = random_matrix(n, k, n * 57 + k);
    const BitMatrix b = random_matrix((n * 2) / 3 + 1, k, n * 91 + k);
    const CountMatrix expected = naive_count_matrix(a, b);
    for (const GemmConfig& cfg : blocking_configs(GetParam())) {
      GemmConfig fresh_cfg = cfg;
      fresh_cfg.pack_once = false;
      CountMatrix fresh(n, b.snps());
      gemm_count(a.view(), b.view(), fresh.ref(), fresh_cfg);

      const PackedBitMatrix pa =
          PackedBitMatrix::pack(a.view(), cfg, PackSides::kA);
      const PackedBitMatrix pb =
          PackedBitMatrix::pack(b.view(), cfg, PackSides::kB);
      CountMatrix packed(n, b.snps());
      gemm_count_packed(pa, 0, n, pb, 0, b.snps(), packed.ref());

      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < b.snps(); ++j) {
          ASSERT_EQ(packed(i, j), expected(i, j))
              << "n=" << n << " k=" << k << " at (" << i << "," << j << ")";
          ASSERT_EQ(fresh(i, j), expected(i, j));
        }
      }
    }
  }
}

TEST_P(PackReuse, RangedPackedGemmMatchesSubmatrix) {
  const std::size_t n = 70, k = 129;
  const BitMatrix g = random_matrix(n, k, 11);
  const CountMatrix expected = naive_count_matrix(g, g);
  for (const GemmConfig& cfg : blocking_configs(GetParam())) {
    const PackedBitMatrix p = PackedBitMatrix::pack(g.view(), cfg);
    // Ranges chosen to start/end off every register-tile boundary.
    for (const auto& [a0, a1, b0, b1] :
         std::vector<std::array<std::size_t, 4>>{
             {0, n, 0, n}, {3, 11, 1, 70}, {17, 42, 29, 30},
             {63, 70, 5, 64}}) {
      CountMatrix c(a1 - a0, b1 - b0);
      gemm_count_packed(p, a0, a1, p, b0, b1, c.ref());
      for (std::size_t i = a0; i < a1; ++i) {
        for (std::size_t j = b0; j < b1; ++j) {
          ASSERT_EQ(c(i - a0, j - b0), expected(i, j))
              << "range [" << a0 << "," << a1 << ")x[" << b0 << "," << b1
              << ") at (" << i << "," << j << ")";
        }
      }
    }
  }
}

TEST_P(PackReuse, RangedPackedSyrkMatchesWindow) {
  const std::size_t n = 67, k = 200;
  const BitMatrix g = random_matrix(n, k, 23);
  const CountMatrix expected = naive_count_matrix(g, g);
  for (const GemmConfig& cfg : blocking_configs(GetParam())) {
    const PackedBitMatrix p = PackedBitMatrix::pack(g.view(), cfg);
    for (const auto& [r0, r1] : std::vector<std::pair<std::size_t,
                                                      std::size_t>>{
             {0, n}, {5, 37}, {30, 31}, {62, 67}}) {
      const std::size_t w = r1 - r0;
      CountMatrix full(w, w);
      syrk_count_packed(p, r0, r1, full.ref());
      for (std::size_t i = 0; i < w; ++i) {
        for (std::size_t j = 0; j < w; ++j) {
          ASSERT_EQ(full(i, j), expected(r0 + i, r0 + j))
              << "window [" << r0 << "," << r1 << ") at (" << i << "," << j
              << ")";
        }
      }

      // triangular_only: valid lower triangle, upper unspecified (must not
      // pay the mirror) — seed with a sentinel and check only j <= i.
      CountMatrix tri(w, w);
      for (std::size_t i = 0; i < w; ++i) {
        for (std::size_t j = 0; j < w; ++j) tri(i, j) = 0xdeadbeef;
      }
      syrk_count_packed(p, r0, r1, tri.ref(), /*triangular_only=*/true);
      for (std::size_t i = 0; i < w; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
          ASSERT_EQ(tri(i, j), expected(r0 + i, r0 + j));
        }
      }
    }
  }
}

TEST_P(PackReuse, ParallelGemmMatchesSerialAcrossPackModes) {
  const std::size_t n = 61, k = 323;
  const BitMatrix a = random_matrix(n, k, 31);
  const BitMatrix b = random_matrix(45, k, 37);
  const CountMatrix expected = naive_count_matrix(a, b);
  for (const GemmConfig& base : blocking_configs(GetParam())) {
    for (const bool pack_once : {true, false}) {
      GemmConfig cfg = base;
      cfg.pack_once = pack_once;
      for (const unsigned threads : {1u, 3u}) {
        CountMatrix c(n, b.snps());
        gemm_count_parallel(a.view(), b.view(), c.ref(), cfg, threads);
        for (std::size_t i = 0; i < n; ++i) {
          for (std::size_t j = 0; j < b.snps(); ++j) {
            ASSERT_EQ(c(i, j), expected(i, j))
                << "threads=" << threads << " pack_once=" << pack_once;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, PackReuse, ::testing::ValuesIn(available_kernels()),
    [](const ::testing::TestParamInfo<KernelArch>& param_info) {
      std::string name = kernel_arch_name(param_info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---- driver-level equivalence: pack-once vs fresh must be bit-identical --

std::vector<double> collect_scan(const BitMatrix& g, const LdOptions& opts) {
  std::vector<double> out;
  ld_scan(g, [&](const LdTile& tile) {
    for (std::size_t i = 0; i < tile.rows; ++i) {
      const std::size_t gi = tile.row_begin + i;
      for (std::size_t j = 0; j < tile.cols; ++j) {
        if (tile.col_begin + j > gi) continue;
        out.push_back(tile.at(i, j));
      }
    }
  }, opts);
  return out;
}

std::vector<double> collect_band(const BitMatrix& g, std::size_t w,
                                 const BandOptions& opts) {
  std::vector<double> out;
  ld_band_scan(g, w, [&](const LdTile& tile) {
    for (std::size_t i = 0; i < tile.rows; ++i) {
      const std::size_t gi = tile.row_begin + i;
      for (std::size_t j = 0; j < tile.cols; ++j) {
        const std::size_t gj = tile.col_begin + j;
        if (gj > gi || gi - gj > w) continue;
        out.push_back(tile.at(i, j));
      }
    }
  }, opts);
  return out;
}

TEST(PackReuseDrivers, LdScanBitIdenticalToFreshPath) {
  const BitMatrix g = random_matrix(93, 323, 41);
  LdOptions fresh;
  fresh.slab_rows = 17;
  fresh.gemm.pack_once = false;
  LdOptions packed = fresh;
  packed.gemm.pack_once = true;
  const std::vector<double> a = collect_scan(g, fresh);
  const std::vector<double> b = collect_scan(g, packed);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(same_bits(a[i], b[i])) << "pair " << i;
  }
}

TEST(PackReuseDrivers, BandScanBitIdenticalToFreshPath) {
  const BitMatrix g = random_matrix(90, 129, 43);
  BandOptions fresh;
  fresh.slab_rows = 13;
  fresh.gemm.pack_once = false;
  BandOptions packed = fresh;
  packed.gemm.pack_once = true;
  const std::vector<double> a = collect_band(g, 11, fresh);
  const std::vector<double> b = collect_band(g, 11, packed);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(same_bits(a[i], b[i])) << "pair " << i;
  }
}

TEST(PackReuseDrivers, OmegaScanBitIdenticalToFreshPath) {
  const BitMatrix g = random_matrix(160, 100, 47);
  std::vector<double> positions(g.snps());
  for (std::size_t s = 0; s < g.snps(); ++s) {
    positions[s] =
        (static_cast<double>(s) + 0.5) / static_cast<double>(g.snps());
  }
  SweepScanParams fresh;
  fresh.grid_points = 12;
  fresh.window_snps = 14;
  fresh.window_candidates = {7, 25};
  fresh.gemm.pack_once = false;
  SweepScanParams packed = fresh;
  packed.gemm.pack_once = true;

  const std::vector<OmegaPoint> a = omega_scan(g, positions, fresh);
  const std::vector<OmegaPoint> b = omega_scan(g, positions, packed);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(same_bits(a[i].omega, b[i].omega)) << "point " << i;
    EXPECT_EQ(a[i].window_begin, b[i].window_begin);
    EXPECT_EQ(a[i].window_end, b[i].window_end);
    EXPECT_EQ(a[i].best_split, b[i].best_split);
  }
}

TEST(PackReuseDrivers, CallerSuppliedPackAcceptedAndShapeChecked) {
  const BitMatrix g = random_matrix(40, 200, 53);
  const LdOptions base;
  const LdMatrix want = ld_matrix(g, base);

  LdOptions opts;
  const PackedBitMatrix p = PackedBitMatrix::pack(g.view(), opts.gemm);
  opts.packed = &p;
  const LdMatrix got = ld_matrix(g, opts);
  ASSERT_EQ(got.rows(), want.rows());
  for (std::size_t i = 0; i < want.rows(); ++i) {
    for (std::size_t j = 0; j < want.cols(); ++j) {
      ASSERT_TRUE(same_bits(got(i, j), want(i, j))) << i << "," << j;
    }
  }

  // A pack of a different matrix shape must be rejected up front.
  const BitMatrix other = random_matrix(41, 200, 59);
  EXPECT_THROW((void)ld_matrix(other, opts), ContractViolation);
}

TEST(PackReuseDrivers, PackRequiresAPackingPlan) {
  const BitMatrix g = random_matrix(8, 64, 61);
  GemmConfig cfg;
  cfg.packing = false;
  EXPECT_THROW((void)PackedBitMatrix::pack(g.view(), cfg), ContractViolation);
}

}  // namespace
}  // namespace ldla
