#include "core/ld.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "sim/rng.hpp"
#include "util/contract.hpp"

namespace ldla {
namespace {

// Hand-computed example: 8 haplotypes.
//   SNP i: 1 1 1 1 0 0 0 0   (ci = 4, Pi = 0.5)
//   SNP j: 1 1 0 0 1 0 0 0   (cj = 3, Pj = 0.375)
//   AB:    1 1 0 0 0 0 0 0   (cij = 2, Pij = 0.25)
// D = 0.25 - 0.5*0.375 = 0.0625
// r^2 = D^2 / (0.5*0.375*0.5*0.625) = 0.00390625 / 0.05859375 = 1/15
// D > 0: Dmax = min(Pi(1-Pj), (1-Pi)Pj) = min(0.3125, 0.1875) = 0.1875
// D' = 0.0625 / 0.1875 = 1/3
TEST(LdFormulas, HandComputedExample) {
  EXPECT_DOUBLE_EQ(ld_d(4, 3, 2, 8), 0.0625);
  EXPECT_DOUBLE_EQ(ld_r_squared(4, 3, 2, 8), 1.0 / 15.0);
  EXPECT_DOUBLE_EQ(ld_d_prime(4, 3, 2, 8), 1.0 / 3.0);
}

TEST(LdFormulas, PerfectPositiveLd) {
  // Identical SNPs: D = p - p^2, r^2 = 1, D' = 1.
  EXPECT_DOUBLE_EQ(ld_r_squared(4, 4, 4, 8), 1.0);
  EXPECT_DOUBLE_EQ(ld_d_prime(4, 4, 4, 8), 1.0);
  EXPECT_DOUBLE_EQ(ld_d(4, 4, 4, 8), 0.25);
}

TEST(LdFormulas, PerfectNegativeAssociation) {
  // Complementary SNPs (never co-occur): cij = 0.
  EXPECT_DOUBLE_EQ(ld_d(4, 4, 0, 8), -0.25);
  EXPECT_DOUBLE_EQ(ld_r_squared(4, 4, 0, 8), 1.0);
  EXPECT_DOUBLE_EQ(ld_d_prime(4, 4, 0, 8), -1.0);
}

TEST(LdFormulas, IndependenceGivesZero) {
  // Pi = Pj = 0.5, Pij = 0.25 exactly.
  EXPECT_DOUBLE_EQ(ld_d(4, 4, 2, 8), 0.0);
  EXPECT_DOUBLE_EQ(ld_r_squared(4, 4, 2, 8), 0.0);
  EXPECT_DOUBLE_EQ(ld_d_prime(4, 4, 2, 8), 0.0);
}

TEST(LdFormulas, MonomorphicSnpIsNaN) {
  EXPECT_TRUE(std::isnan(ld_r_squared(0, 4, 0, 8)));
  EXPECT_TRUE(std::isnan(ld_r_squared(8, 4, 4, 8)));
  EXPECT_TRUE(std::isnan(ld_d_prime(0, 4, 0, 8)));
  // D itself is still defined (zero) for monomorphic SNPs.
  EXPECT_DOUBLE_EQ(ld_d(0, 4, 0, 8), 0.0);
}

TEST(LdFormulas, RejectsZeroSampleSize) {
  EXPECT_THROW(ld_d(0, 0, 0, 0), ContractViolation);
  EXPECT_THROW(ld_r_squared(0, 0, 0, 0), ContractViolation);
  EXPECT_THROW(ld_d_prime(0, 0, 0, 0), ContractViolation);
}

TEST(LdFormulas, DispatchMatchesDirectCalls) {
  EXPECT_DOUBLE_EQ(ld_value(LdStatistic::kD, 4, 3, 2, 8), ld_d(4, 3, 2, 8));
  EXPECT_DOUBLE_EQ(ld_value(LdStatistic::kRSquared, 4, 3, 2, 8),
                   ld_r_squared(4, 3, 2, 8));
  EXPECT_DOUBLE_EQ(ld_value(LdStatistic::kDPrime, 4, 3, 2, 8),
                   ld_d_prime(4, 3, 2, 8));
}

TEST(LdFormulas, StatisticNames) {
  EXPECT_EQ(ld_statistic_name(LdStatistic::kD), "D");
  EXPECT_EQ(ld_statistic_name(LdStatistic::kDPrime), "D'");
  EXPECT_EQ(ld_statistic_name(LdStatistic::kRSquared), "r^2");
}

// Property sweep over random count tables: range invariants.
TEST(LdFormulasProperty, RangesHoldOnRandomCounts) {
  Rng rng(123);
  for (int trial = 0; trial < 20'000; ++trial) {
    const std::uint64_t n = 2 + rng.next_below(1000);
    const std::uint64_t ci = rng.next_below(n + 1);
    const std::uint64_t cj = rng.next_below(n + 1);
    // cij is constrained: max(0, ci+cj-n) <= cij <= min(ci, cj).
    const std::uint64_t lo = ci + cj > n ? ci + cj - n : 0;
    const std::uint64_t hi = std::min(ci, cj);
    const std::uint64_t cij = lo + rng.next_below(hi - lo + 1);

    const double d = ld_d(ci, cj, cij, n);
    EXPECT_GE(d, -0.25 - 1e-12);
    EXPECT_LE(d, 0.25 + 1e-12);

    const double r2 = ld_r_squared(ci, cj, cij, n);
    if (!std::isnan(r2)) {
      EXPECT_GE(r2, 0.0);
      EXPECT_LE(r2, 1.0);
    }

    const double dp = ld_d_prime(ci, cj, cij, n);
    if (!std::isnan(dp)) {
      EXPECT_GE(dp, -1.0);
      EXPECT_LE(dp, 1.0);
      // D and D' share a sign.
      if (d > 1e-15) {
        EXPECT_GE(dp, 0.0);
      }
      if (d < -1e-15) {
        EXPECT_LE(dp, 0.0);
      }
    }
  }
}

TEST(LdFormulasProperty, SymmetryInArguments) {
  Rng rng(456);
  for (int trial = 0; trial < 5'000; ++trial) {
    const std::uint64_t n = 2 + rng.next_below(500);
    const std::uint64_t ci = rng.next_below(n + 1);
    const std::uint64_t cj = rng.next_below(n + 1);
    const std::uint64_t lo = ci + cj > n ? ci + cj - n : 0;
    const std::uint64_t hi = std::min(ci, cj);
    const std::uint64_t cij = lo + rng.next_below(hi - lo + 1);

    EXPECT_DOUBLE_EQ(ld_d(ci, cj, cij, n), ld_d(cj, ci, cij, n));
    const double a = ld_r_squared(ci, cj, cij, n);
    const double b = ld_r_squared(cj, ci, cij, n);
    if (!std::isnan(a)) {
      EXPECT_DOUBLE_EQ(a, b);
    }
  }
}

TEST(LdPairCount, MatchesFormula) {
  EXPECT_EQ(ld_pair_count(0), 0u);
  EXPECT_EQ(ld_pair_count(1), 1u);
  EXPECT_EQ(ld_pair_count(10'000), 50'005'000u);  // the paper's ~50M
}

}  // namespace
}  // namespace ldla
