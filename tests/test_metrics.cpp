// Tests for the always-on metrics layer (util/metrics.hpp): striped
// counter aggregation, the runtime enable switch, analytic histogram
// bucket layout and quantile math, exporter output shape, the background
// health sampler's lifecycle and probes, and agreement with the trace
// layer's counters when both are compiled in.
//
// The registry is process-global find-or-create storage, so tests reuse
// fixed names freely — re-registering a name returns the same object.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace ldla {
namespace {

using metrics::Histogram;

TEST(Metrics, CounterAggregatesAcrossStripesExactly) {
  metrics::set_enabled(true);
  metrics::Counter& c =
      metrics::counter("test_counter_total", "test counter");
  const std::uint64_t before = c.value();

  // Drive increments from many pool threads so multiple stripes are hit;
  // the scrape-side sum must still be exact.
  ThreadPool pool(4);
  constexpr std::uint64_t kPerTask = 10000;
  constexpr std::size_t kTasks = 16;
  pool.run_tasks(kTasks, [&](std::size_t) {
    for (std::uint64_t i = 0; i < kPerTask; ++i) c.inc();
  });
  EXPECT_EQ(c.value() - before, kPerTask * kTasks);
}

TEST(Metrics, RegistrationIsFindOrCreateByName) {
  metrics::Counter& a = metrics::counter("test_identity_total", "first");
  metrics::Counter& b = metrics::counter("test_identity_total", "second");
  EXPECT_EQ(&a, &b);
  EXPECT_STREQ(a.name(), "test_identity_total");
  // The first registration's help wins; re-registration does not clobber.
  EXPECT_STREQ(a.help(), "first");
}

TEST(Metrics, DisabledSwitchFreezesEverySinkKind) {
  metrics::set_enabled(true);
  metrics::Counter& c = metrics::counter("test_frozen_total", "t");
  metrics::Gauge& g = metrics::gauge("test_frozen_gauge", "t");
  Histogram& h = metrics::histogram("test_frozen_seconds", "t");
  g.set(7.5);
  const std::uint64_t c0 = c.value();
  const std::uint64_t h0 = h.count();

  metrics::set_enabled(false);
  EXPECT_FALSE(metrics::enabled());
  c.add(100);
  g.set(99.0);
  h.record_ns(1234);
  { metrics::ScopedLatency lat(h); }
  metrics::set_enabled(true);

  EXPECT_EQ(c.value(), c0);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
  EXPECT_EQ(h.count(), h0);
}

TEST(Metrics, GaugeIsLastWriterWins) {
  metrics::set_enabled(true);
  metrics::Gauge& g = metrics::gauge("test_gauge", "t");
  g.set(std::uint64_t{42});
  EXPECT_DOUBLE_EQ(g.value(), 42.0);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST(Metrics, HistogramBucketLayoutMatchesTheAnalyticScheme) {
  // Sub-32 values map exactly.
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(31), 31u);
  EXPECT_EQ(Histogram::bucket_lower(17), 17u);
  EXPECT_EQ(Histogram::bucket_upper(17), 18u);

  // First octave [32, 64): 16 sub-buckets of width 2.
  EXPECT_EQ(Histogram::bucket_index(32), 32u);
  EXPECT_EQ(Histogram::bucket_index(33), 32u);
  EXPECT_EQ(Histogram::bucket_index(34), 33u);
  EXPECT_EQ(Histogram::bucket_index(63), 47u);
  EXPECT_EQ(Histogram::bucket_lower(32), 32u);
  EXPECT_EQ(Histogram::bucket_upper(32), 34u);
  EXPECT_EQ(Histogram::bucket_lower(47), 62u);
  EXPECT_EQ(Histogram::bucket_upper(47), 64u);

  // Octave boundary: 64 starts the next 16-bucket group (width 4).
  EXPECT_EQ(Histogram::bucket_index(64), 48u);
  EXPECT_EQ(Histogram::bucket_index(67), 48u);
  EXPECT_EQ(Histogram::bucket_index(68), 49u);

  // Every bucket boundary round-trips through index/lower/upper, and the
  // quantization error bound (upper/lower <= 1 + 2^-4) holds.
  for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
    const std::uint64_t lo = Histogram::bucket_lower(i);
    const std::uint64_t hi = Histogram::bucket_upper(i);
    ASSERT_LT(lo, hi);
    ASSERT_EQ(Histogram::bucket_index(lo), i);
    ASSERT_EQ(Histogram::bucket_index(hi - 1), i);
    if (lo >= Histogram::kFirstBuckets && i + 1 < Histogram::kBucketCount) {
      ASSERT_LE(static_cast<double>(hi) / static_cast<double>(lo), 1.0625);
    }
  }

  // Clamp: anything at/above the tracked range lands in the last bucket.
  EXPECT_EQ(Histogram::bucket_index(Histogram::kMaxTracked),
            Histogram::kBucketCount - 1);
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}),
            Histogram::kBucketCount - 1);
}

TEST(Metrics, HistogramQuantilesTrackAUniformDistribution) {
  metrics::set_enabled(true);
  Histogram& h = metrics::histogram("test_uniform_seconds", "t");
  ASSERT_EQ(h.count(), 0u) << "test requires a fresh histogram name";

  // 1000 samples uniform on [1us, 1ms]: quantile(q) ~= q * 1ms.
  constexpr std::uint64_t kN = 1000;
  constexpr std::uint64_t kStep = 1000;  // ns
  for (std::uint64_t i = 1; i <= kN; ++i) h.record_ns(i * kStep);
  EXPECT_EQ(h.count(), kN);
  EXPECT_NEAR(h.sum_seconds(), 5.005e-4 * static_cast<double>(kN), 1e-6);

  for (const double q : {0.50, 0.90, 0.99}) {
    const double expected = q * static_cast<double>(kN * kStep) * 1e-9;
    // Bucket quantization is <= 6.25% relative; interpolation keeps the
    // realized error well inside 8%.
    EXPECT_NEAR(h.quantile(q), expected, 0.08 * expected) << "q=" << q;
  }
  // Quantiles are monotone in q.
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.quantile(0.99));
  EXPECT_LE(h.quantile(0.99), h.quantile(0.999));
}

TEST(Metrics, HistogramConcurrentWritersLoseNoSamples) {
  metrics::set_enabled(true);
  Histogram& h = metrics::histogram("test_stress_seconds", "t");
  const std::uint64_t before = h.count();
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 8;
  constexpr std::uint64_t kPerTask = 20000;
  pool.run_tasks(kTasks, [&](std::size_t t) {
    for (std::uint64_t i = 0; i < kPerTask; ++i) {
      h.record_ns(t * 1000 + i % 257);
    }
  });
  EXPECT_EQ(h.count() - before, kTasks * kPerTask);
}

TEST(Metrics, RenderPrometheusHasTheExpositionShape) {
  metrics::set_enabled(true);
  metrics::counter("test_render_total", "render help text").inc();
  metrics::gauge("test_render_gauge", "g").set(3.5);
  metrics::histogram("test_render_seconds", "h").record_ns(1500);
  const std::string out = metrics::render_prometheus();

  EXPECT_NE(out.find("# HELP test_render_total render help text"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE test_render_total counter"), std::string::npos);
  EXPECT_NE(out.find("# TYPE test_render_gauge gauge"), std::string::npos);
  EXPECT_NE(out.find("test_render_gauge 3.5"), std::string::npos);
  EXPECT_NE(out.find("# TYPE test_render_seconds histogram"),
            std::string::npos);
  EXPECT_NE(out.find("test_render_seconds_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(out.find("test_render_seconds_sum"), std::string::npos);
  EXPECT_NE(out.find("test_render_seconds_count"), std::string::npos);
}

TEST(Metrics, RenderJsonHasTheSchemaEnvelope) {
  metrics::set_enabled(true);
  metrics::counter("test_json_total", "j").add(3);
  const std::string out = metrics::render_json();
  EXPECT_EQ(out.find('{'), 0u);
  EXPECT_EQ(out.rfind('}'), out.size() - 1);
  EXPECT_NE(out.find("\"schema\": \"ldla-metrics-v1\""), std::string::npos);
  EXPECT_NE(out.find("\"counters\""), std::string::npos);
  EXPECT_NE(out.find("\"gauges\""), std::string::npos);
  EXPECT_NE(out.find("\"histograms\""), std::string::npos);
  EXPECT_NE(out.find("\"test_json_total\""), std::string::npos);
}

TEST(Metrics, SamplerLifecycleStartsTicksStopsAndRestarts) {
  metrics::set_enabled(true);
  ASSERT_FALSE(metrics::Sampler::running());
  const std::uint64_t t0 = metrics::Sampler::ticks();

  metrics::Sampler::start(5);
  EXPECT_TRUE(metrics::Sampler::running());
  // Wait (bounded) for at least two periodic ticks.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (metrics::Sampler::ticks() < t0 + 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(metrics::Sampler::ticks(), t0 + 2);

  metrics::Sampler::stop();
  EXPECT_FALSE(metrics::Sampler::running());
  const std::uint64_t t1 = metrics::Sampler::ticks();

  // Restart must work after a stop; stop is idempotent.
  metrics::Sampler::start(5);
  EXPECT_TRUE(metrics::Sampler::running());
  metrics::Sampler::stop();
  metrics::Sampler::stop();
  EXPECT_FALSE(metrics::Sampler::running());
  EXPECT_GE(metrics::Sampler::ticks(), t1);
}

TEST(Metrics, SampleNowSetsProcessHealthGaugesSynchronously) {
  metrics::set_enabled(true);
  ASSERT_FALSE(metrics::Sampler::running());
  metrics::Sampler::sample_now();
  // A live Linux process has a nonzero RSS and has minor-faulted.
  EXPECT_GT(metrics::gauge("ldla_process_rss_bytes", "").value(), 0.0);
  EXPECT_GT(metrics::gauge("ldla_process_minor_faults", "").value(), 0.0);
  EXPECT_GT(metrics::counter("ldla_sampler_ticks_total", "").value(), 0u);
}

TEST(Metrics, ProbesFeedTheirGaugeEachSample) {
  metrics::set_enabled(true);
  static std::uint64_t probe_value = 0;
  probe_value = 12345;
  const int id = metrics::Sampler::add_probe(
      "test_probe_gauge",
      [](void* ctx) { return *static_cast<std::uint64_t*>(ctx); },
      &probe_value);
  ASSERT_GE(id, 0);
  metrics::Sampler::sample_now();
  EXPECT_DOUBLE_EQ(metrics::gauge("test_probe_gauge", "").value(), 12345.0);
  probe_value = 54321;
  metrics::Sampler::sample_now();
  EXPECT_DOUBLE_EQ(metrics::gauge("test_probe_gauge", "").value(), 54321.0);
  metrics::Sampler::clear_probes();
  metrics::Sampler::sample_now();  // must not touch the cleared probe
  EXPECT_DOUBLE_EQ(metrics::gauge("test_probe_gauge", "").value(), 54321.0);
}

TEST(Metrics, ScopedLatencyRecordsOneSample) {
  metrics::set_enabled(true);
  Histogram& h = metrics::histogram("test_scoped_seconds", "t");
  const std::uint64_t before = h.count();
  {
    metrics::ScopedLatency lat(h);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(h.count(), before + 1);
  EXPECT_GE(h.sum_seconds(), 0.0005);
}

// When both observability layers are compiled, the pool instruments the
// same event (a task execution) into both — the deltas must agree, and the
// scrape-time bridge must republish trace totals as ldla_trace_* gauges.
TEST(Metrics, TraceBridgeAgreesWithPoolCounters) {
  if (!metrics::compiled() || !trace::compiled()) {
    GTEST_SKIP() << "needs LDLA_METRICS=ON and LDLA_TRACE=ON";
  }
  metrics::set_enabled(true);
  metrics::Counter& tasks =
      metrics::counter("ldla_pool_tasks_total", "thread-pool tasks executed");
  const std::uint64_t m0 = tasks.value();
  const std::uint64_t t0 = trace::snapshot().counters.task_runs;

  ThreadPool pool(3);
  pool.run_tasks(32, [](std::size_t) {});

  const std::uint64_t m_delta = tasks.value() - m0;
  const std::uint64_t t_delta = trace::snapshot().counters.task_runs - t0;
  EXPECT_EQ(m_delta, 32u);
  EXPECT_EQ(t_delta, m_delta);

  // The bridge runs at scrape time: after a render, the gauge mirrors the
  // trace layer's lifetime total.
  (void)metrics::render_prometheus();
  EXPECT_DOUBLE_EQ(
      metrics::gauge("ldla_trace_task_runs", "").value(),
      static_cast<double>(trace::snapshot().counters.task_runs));
}

}  // namespace
}  // namespace ldla
