// Property sweep for the MAF-adaptive sparse/hybrid dispatch: with any
// sparse threshold — disabled, 1, auto, all-sparse — every driver must
// produce bit-identical D/D'/r² to the dense-only control, across stat x
// kernel arch x blocking x ragged shapes x unaligned band/omega windows x
// sequential/nest-parallel drivers, plus the pack-time classification
// boundaries (popcount == threshold, complement columns, mixed slivers)
// and exactly-once tile coverage under hybrid dispatch.
//
// The bit-identity argument is structural — counts are exact integers, so
// list merges and dense popcounts agree term by term — which means any
// mismatch here points at the sparse kernels or the dispatch plumbing, not
// at floating-point noise.
#include "core/gemm/sparse.hpp"

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/band.hpp"
#include "core/gemm/kernel.hpp"
#include "core/gemm/packed_bit_matrix.hpp"
#include "core/gemm/sparse_kernel.hpp"
#include "core/ld.hpp"
#include "core/parallel.hpp"
#include "omega/sweep_scan.hpp"
#include "sim/maf_spectrum.hpp"
#include "sim/rng.hpp"
#include "util/trace.hpp"

namespace ldla {
namespace {

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

void expect_same_matrix(const LdMatrix& got, const LdMatrix& want,
                        const char* what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (std::size_t i = 0; i < want.rows(); ++i) {
    for (std::size_t j = 0; j < want.cols(); ++j) {
      ASSERT_TRUE(same_bits(got(i, j), want(i, j)))
          << what << " at (" << i << "," << j << ")";
    }
  }
}

/// Rare-variant-dominated panel: most columns under the auto threshold,
/// the rest common — every sliver mix (all-sparse, all-dense, hybrid)
/// occurs with high probability.
BitMatrix rare_panel(std::size_t snps, std::size_t samples,
                     std::uint64_t seed) {
  MafSpectrumParams p;
  p.n_snps = snps;
  p.n_samples = samples;
  p.rare_fraction = 0.8;
  p.rare_max_maf = 0.01;
  p.seed = seed;
  return simulate_maf_spectrum(p);
}

/// Hand-built classification extremes: all-zero, single-bit, all-ones,
/// all-but-one, exactly-at-threshold, one-past-threshold, complement at
/// threshold, and a dense half-ones row — cycled so sparse and dense rows
/// interleave within slivers (mixed-sliver fallback) and, with 8 patterns,
/// also align into uniform slivers for mr in {2, 4, 8}.
BitMatrix extreme_matrix(std::size_t snps, std::size_t samples,
                         std::size_t threshold, std::uint64_t seed) {
  Rng rng(seed);
  BitMatrix m(snps, samples);
  const std::size_t thr = std::min(threshold, samples - 1);
  for (std::size_t s = 0; s < snps; ++s) {
    const auto set_first = [&](std::size_t count) {
      for (std::size_t b = 0; b < count && b < samples; ++b) {
        m.set(s, b, true);
      }
    };
    switch (s % 8) {
      case 0: break;                      // all-zero: empty list
      case 1: set_first(1); break;        // single carrier
      case 2: set_first(samples); break;  // fixed: empty complement list
      case 3: set_first(samples - 1); break;  // one-away complement
      case 4: set_first(thr); break;          // popcount == threshold
      case 5: set_first(thr + 1); break;      // one past (dense unless comp)
      case 6: set_first(samples - thr); break;  // zeros == threshold
      default:                                  // dense random half-ones
        for (std::size_t b = 0; b < samples; ++b) {
          if (rng.next_bool(0.5)) m.set(s, b, true);
        }
    }
  }
  return m;
}

// Ragged shapes off every register-tile and word boundary.
const std::vector<std::pair<std::size_t, std::size_t>> kShapes = {
    {1, 70}, {5, 100}, {33, 323}, {70, 129}};

constexpr std::array<LdStatistic, 3> kStats = {
    LdStatistic::kD, LdStatistic::kDPrime, LdStatistic::kRSquared};

/// Blocking variants: derived, tiny multi-panel (kc=2 words forces the
/// panel-cursor logic of the list×dense gather), and a mid-size config.
std::vector<GemmConfig> blocking_configs(KernelArch arch) {
  std::vector<GemmConfig> cfgs(3);
  cfgs[1].kc_words = 2;
  cfgs[1].mc = 8;
  cfgs[1].nc = 8;
  cfgs[2].kc_words = 3;
  cfgs[2].mc = 24;
  cfgs[2].nc = 16;
  for (GemmConfig& cfg : cfgs) cfg.arch = arch;
  return cfgs;
}

/// Threshold arms swept against the dense-only control: off, boundary 1,
/// the auto crossover, and larger-than-n (every column list-classified).
std::vector<std::size_t> threshold_arms(std::size_t samples) {
  return {1, kSparseThresholdAuto, samples + 1};
}

// ---- pack-time classification ------------------------------------------

TEST(SparseColumns, ClassifiesAtThresholdBoundaries) {
  const std::size_t samples = 130;  // two words + 2 bits of tail
  const std::size_t thr = 9;
  const BitMatrix m = extreme_matrix(16, samples, thr, 7);
  const SparseColumns sc = build_sparse_columns(m.view(), thr);
  ASSERT_EQ(sc.kind.size(), 16u);
  for (std::size_t s = 0; s < 16; ++s) {
    ASSERT_EQ(sc.popcount[s], m.derived_count(s)) << "row " << s;
  }
  EXPECT_EQ(sc.kind[0], ColumnKind::kList);        // all-zero
  EXPECT_EQ(sc.list_size(0), 0u);
  EXPECT_EQ(sc.kind[1], ColumnKind::kList);        // single bit
  ASSERT_EQ(sc.list_size(1), 1u);
  EXPECT_EQ(sc.list(1)[0], 0u);
  EXPECT_EQ(sc.kind[2], ColumnKind::kComplement);  // fixed
  EXPECT_EQ(sc.list_size(2), 0u);
  EXPECT_EQ(sc.kind[3], ColumnKind::kComplement);  // all-but-one
  ASSERT_EQ(sc.list_size(3), 1u);
  EXPECT_EQ(sc.list(3)[0], static_cast<std::uint32_t>(samples - 1));
  EXPECT_EQ(sc.kind[4], ColumnKind::kList);        // popcount == thr
  EXPECT_EQ(sc.list_size(4), thr);
  EXPECT_EQ(sc.kind[5], ColumnKind::kDense);       // popcount == thr + 1
  EXPECT_EQ(sc.list_size(5), 0u);
  EXPECT_EQ(sc.kind[6], ColumnKind::kComplement);  // zeros == thr
  EXPECT_EQ(sc.list_size(6), thr);
  EXPECT_EQ(sc.kind[7], ColumnKind::kDense);       // half-ones
  // Complement lists index ZERO bits and never include row padding.
  for (std::size_t e = 0; e < sc.list_size(6); ++e) {
    const std::uint32_t idx = sc.list(6)[e];
    EXPECT_LT(idx, samples);
    EXPECT_FALSE(m.get(6, idx));
  }
}

TEST(SparseColumns, ThresholdZeroDisablesListsButKeepsPopcounts) {
  const BitMatrix m = rare_panel(40, 200, 11);
  const SparseColumns sc = build_sparse_columns(m.view(), 0);
  EXPECT_FALSE(sc.enabled());
  EXPECT_EQ(sc.sparse_count, 0u);
  EXPECT_TRUE(sc.index.empty());
  for (std::size_t s = 0; s < m.snps(); ++s) {
    EXPECT_EQ(sc.kind[s], ColumnKind::kDense);
    EXPECT_EQ(sc.popcount[s], m.derived_count(s));
  }
}

TEST(SparseColumns, ListsReproduceTheRow) {
  const BitMatrix m = rare_panel(60, 323, 13);
  const SparseColumns sc = build_sparse_columns(m.view(), 323);  // all sparse
  for (std::size_t s = 0; s < m.snps(); ++s) {
    ASSERT_NE(sc.kind[s], ColumnKind::kDense);
    std::vector<bool> bits(m.samples(), sc.kind[s] == ColumnKind::kComplement);
    for (std::size_t e = 0; e < sc.list_size(s); ++e) {
      const std::uint32_t idx = sc.list(s)[e];
      if (e > 0) {
        ASSERT_LT(sc.list(s)[e - 1], idx) << "list not sorted";
      }
      bits[idx] = sc.kind[s] == ColumnKind::kList;
    }
    for (std::size_t b = 0; b < m.samples(); ++b) {
      ASSERT_EQ(bits[b], m.get(s, b)) << "row " << s << " bit " << b;
    }
  }
}

TEST(SparseColumns, PackRecordsSliverFlags) {
  // 8 rows/pattern-cycle: rows 0..6 sparse-classified at thr, row 7 dense,
  // so every full sliver containing a row ≡ 7 (mod 8) must be a fallback.
  const std::size_t thr = 5;
  const BitMatrix m = extreme_matrix(64, 190, thr, 17);
  GemmConfig cfg;
  cfg.sparse_threshold = thr;
  const PackedBitMatrix pack = PackedBitMatrix::pack(m.view(), cfg);
  ASSERT_TRUE(pack.hybrid_dispatch());
  const std::size_t mr = pack.plan().mr;
  for (std::size_t s = 0; s * mr < m.snps(); ++s) {
    bool all_sparse = true;
    for (std::size_t i = s * mr; i < std::min((s + 1) * mr, m.snps()); ++i) {
      all_sparse &= pack.sparse_columns().kind[i] != ColumnKind::kDense;
    }
    EXPECT_EQ(pack.a_sliver_sparse(s), all_sparse) << "sliver " << s;
  }
  GemmConfig off = cfg;
  off.sparse_threshold = 0;
  EXPECT_FALSE(PackedBitMatrix::pack(m.view(), off).hybrid_dispatch());
}

// ---- kernel-level identities -------------------------------------------

TEST(SparseKernel, ListIntersectCountMatchesPopcountAnd) {
  Rng rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t samples = 64 + rng.next_below(300);
    BitMatrix m(2, samples);
    const double pa = 0.02 + 0.3 * rng.next_double();
    for (std::size_t s = 0; s < 2; ++s) {
      for (std::size_t b = 0; b < samples; ++b) {
        if (rng.next_bool(pa)) m.set(s, b, true);
      }
    }
    const SparseColumns sc = build_sparse_columns(m.view(), samples);
    std::uint32_t want = 0;
    for (std::size_t b = 0; b < samples; ++b) {
      want += static_cast<std::uint32_t>(m.get(0, b) && m.get(1, b));
    }
    EXPECT_EQ(detail::list_intersect_count(sc.list(0), sc.list_size(0),
                                           sc.list(1), sc.list_size(1)),
              want);
  }
}

// ---- driver sweeps vs the dense-only control ---------------------------

class SparseDispatch : public ::testing::TestWithParam<KernelArch> {};

TEST_P(SparseDispatch, LdMatrixBitIdenticalAcrossThresholds) {
  for (const auto& [n, k] : kShapes) {
    const BitMatrix g = rare_panel(n, k, n * 57 + k);
    for (const GemmConfig& base : blocking_configs(GetParam())) {
      for (const LdStatistic stat : kStats) {
        LdOptions dense;
        dense.gemm = base;
        dense.gemm.sparse_threshold = 0;
        dense.stat = stat;
        const LdMatrix want = ld_matrix(g, dense);
        for (const std::size_t thr : threshold_arms(k)) {
          LdOptions sparse = dense;
          sparse.gemm.sparse_threshold = thr;
          expect_same_matrix(ld_matrix(g, sparse), want,
                             ld_statistic_name(stat).c_str());
        }
      }
    }
  }
}

TEST_P(SparseDispatch, ExtremeColumnsBitIdenticalAcrossThresholds) {
  for (const std::size_t thr : {std::size_t{1}, std::size_t{9}}) {
    // Sample counts with full tail words and 1-bit / 62-bit tails, so the
    // complement mask runs at every alignment.
    for (const std::size_t samples : {128ul, 129ul, 190ul}) {
      const BitMatrix g = extreme_matrix(35, samples, thr, samples + thr);
      for (const GemmConfig& base : blocking_configs(GetParam())) {
        LdOptions dense;
        dense.gemm = base;
        dense.gemm.sparse_threshold = 0;
        const LdMatrix want = ld_matrix(g, dense);
        LdOptions sparse = dense;
        sparse.gemm.sparse_threshold = thr;
        expect_same_matrix(ld_matrix(g, sparse), want, "extreme columns");
        LdOptions all = dense;
        all.gemm.sparse_threshold = samples + 1;
        expect_same_matrix(ld_matrix(g, all), want, "all-sparse");
      }
    }
  }
}

TEST_P(SparseDispatch, CrossMatrixMixedPacksBitIdentical) {
  const BitMatrix a = rare_panel(33, 323, 67);
  const BitMatrix b = rare_panel(23, 323, 71);
  for (const GemmConfig& base : blocking_configs(GetParam())) {
    for (const LdStatistic stat : kStats) {
      LdOptions dense;
      dense.gemm = base;
      dense.gemm.sparse_threshold = 0;
      dense.stat = stat;
      const LdMatrix want = ld_cross_matrix(a, b, dense);
      for (const std::size_t thr : threshold_arms(323)) {
        LdOptions sparse = dense;
        sparse.gemm.sparse_threshold = thr;
        expect_same_matrix(ld_cross_matrix(a, b, sparse), want,
                           ld_statistic_name(stat).c_str());
      }
    }
  }
}

TEST_P(SparseDispatch, StatScanCoversCanonicalPairsExactlyOnceHybrid) {
  const BitMatrix g = rare_panel(70, 129, 73);
  for (const GemmConfig& base : blocking_configs(GetParam())) {
    LdOptions dense;
    dense.gemm = base;
    dense.gemm.sparse_threshold = 0;
    const LdMatrix want = ld_matrix(g, dense);
    LdOptions sparse = dense;
    sparse.gemm.sparse_threshold = kSparseThresholdAuto;
    std::map<std::pair<std::size_t, std::size_t>, double> seen;
    ld_stat_scan(g, [&](const LdTile& tile) {
      for (std::size_t i = 0; i < tile.rows; ++i) {
        for (std::size_t j = 0; j < tile.cols; ++j) {
          const auto key = std::pair(tile.row_begin + i, tile.col_begin + j);
          ASSERT_LE(key.second, key.first) << "non-canonical entry emitted";
          ASSERT_EQ(seen.count(key), 0u) << "duplicate pair";
          seen[key] = tile.at(i, j);
        }
      }
    }, sparse);
    ASSERT_EQ(seen.size(), g.snps() * (g.snps() + 1) / 2);
    for (const auto& [key, v] : seen) {
      ASSERT_TRUE(same_bits(v, want(key.first, key.second)))
          << "(" << key.first << "," << key.second << ")";
    }
  }
}

TEST_P(SparseDispatch, BandScanBitIdenticalAtUnalignedWindows) {
  const BitMatrix g = rare_panel(90, 129, 79);
  for (const GemmConfig& base : blocking_configs(GetParam())) {
    for (const std::size_t bandwidth : {1ul, 11ul, 37ul}) {
      BandOptions dense;
      dense.gemm = base;
      dense.gemm.sparse_threshold = 0;
      dense.slab_rows = 13;
      BandOptions sparse = dense;
      sparse.gemm.sparse_threshold = kSparseThresholdAuto;

      // The band tiles carry extra valid entries outside the band; index
      // maps keep the comparison to exactly the promised coverage.
      const auto collect = [&](const BandOptions& o) {
        std::map<std::pair<std::size_t, std::size_t>, double> vals;
        ld_band_scan(g, bandwidth, [&](const LdTile& t) {
          for (std::size_t i = 0; i < t.rows; ++i) {
            for (std::size_t j = 0; j < t.cols; ++j) {
              const std::size_t gi = t.row_begin + i;
              const std::size_t gj = t.col_begin + j;
              if (gj <= gi && gi - gj <= bandwidth) {
                vals[{gi, gj}] = t.at(i, j);
              }
            }
          }
        }, o);
        return vals;
      };
      const auto want = collect(dense);
      const auto got = collect(sparse);
      ASSERT_EQ(got.size(), want.size());
      for (const auto& [key, v] : want) {
        const auto it = got.find(key);
        ASSERT_NE(it, got.end());
        ASSERT_TRUE(same_bits(it->second, v))
            << "(" << key.first << "," << key.second << ") bw " << bandwidth;
      }
    }
  }
}

TEST_P(SparseDispatch, OmegaScanBitIdenticalOnRarePanel) {
  const BitMatrix g = rare_panel(120, 190, 83);
  std::vector<double> positions(g.snps());
  Rng rng(89);
  for (double& p : positions) p = rng.next_double();
  std::sort(positions.begin(), positions.end());
  SweepScanParams dense;
  dense.gemm.arch = GetParam();
  dense.gemm.sparse_threshold = 0;
  dense.grid_points = 9;
  dense.window_snps = 17;  // off every sliver boundary
  SweepScanParams sparse = dense;
  sparse.gemm.sparse_threshold = kSparseThresholdAuto;
  const auto want = omega_scan(g, positions, dense);
  const auto got = omega_scan(g, positions, sparse);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_TRUE(same_bits(got[i].omega, want[i].omega)) << "point " << i;
  }
}

TEST_P(SparseDispatch, NestParallelMatchesSequentialHybrid) {
  const BitMatrix g = rare_panel(96, 258, 97);
  for (const LdStatistic stat : kStats) {
    LdOptions dense;
    dense.gemm.arch = GetParam();
    dense.gemm.sparse_threshold = 0;
    dense.stat = stat;
    const LdMatrix want = ld_matrix(g, dense);
    LdOptions sparse = dense;
    sparse.gemm.sparse_threshold = kSparseThresholdAuto;
    expect_same_matrix(ld_matrix(g, sparse), want, "sequential hybrid");
    for (const ParallelMode mode : {ParallelMode::kNest, ParallelMode::kCoarse}) {
      LdOptions par = sparse;
      par.parallel = mode;
      expect_same_matrix(ld_matrix_parallel(g, par, 4), want,
                         parallel_mode_name(mode).c_str());
    }
  }
}

TEST_P(SparseDispatch, TraceCountersAttributeHybridWork) {
  if (!trace::compiled()) GTEST_SKIP() << "built with LDLA_TRACE=OFF";
  const BitMatrix g = rare_panel(64, 190, 101);
  LdOptions sparse;
  sparse.gemm.arch = GetParam();
  sparse.gemm.sparse_threshold = kSparseThresholdAuto;
  const trace::TraceSnapshot before = trace::snapshot();
  (void)ld_matrix(g, sparse);
  const trace::TraceSnapshot mid = trace::snapshot().since(before);
  // An 80%-rare panel must dispatch sparse tiles and fall back on the
  // mixed remainder; both routes show up in the attribution counters.
  EXPECT_GT(mid.counters.sparse_ll_tiles + mid.counters.sparse_ld_tiles, 0u);
  EXPECT_GT(mid.counters.list_intersections, 0u);

  LdOptions dense = sparse;
  dense.gemm.sparse_threshold = 0;
  const trace::TraceSnapshot before2 = trace::snapshot();
  (void)ld_matrix(g, dense);
  const trace::TraceSnapshot after = trace::snapshot().since(before2);
  EXPECT_EQ(after.counters.sparse_ll_tiles, 0u);
  EXPECT_EQ(after.counters.sparse_ld_tiles, 0u);
  EXPECT_EQ(after.counters.list_intersections, 0u);
  EXPECT_EQ(after.counters.dense_fallback_tiles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, SparseDispatch, ::testing::ValuesIn(available_kernels()),
    [](const ::testing::TestParamInfo<KernelArch>& param) {
      std::string name = kernel_arch_name(param.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace ldla
