// End-to-end pipeline tests: simulate -> serialize -> parse -> analyze,
// crossing every subsystem boundary the CLI and examples use.
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "ldla.hpp"

namespace ldla {
namespace {

TEST(Integration, SimulateSerializeAnalyzeRoundTrip) {
  // 1. Simulate a region with a planted sweep.
  SweepParams sp;
  sp.base.n_snps = 500;
  sp.base.n_samples = 120;
  sp.base.switch_rate = 0.05;
  sp.base.founders = 32;
  sp.base.seed = 321;
  sp.sweep_center = 0.35;
  sp.sweep_width = 0.12;
  sp.sweep_intensity = 0.95;
  const SimulatedDataset original = simulate_sweep(sp);

  // 2. Round-trip through the ms text format.
  MsReplicate rep;
  rep.genotypes = original.genotypes.clone();
  rep.positions = original.positions;
  std::stringstream ms_io;
  write_ms(ms_io, rep);
  const auto parsed = parse_ms(ms_io);
  ASSERT_EQ(parsed.size(), 1u);
  const BitMatrix& g = parsed[0].genotypes;
  ASSERT_EQ(g.snps(), original.genotypes.snps());
  ASSERT_EQ(g.samples(), original.genotypes.samples());

  // 3. Round-trip through the binary snapshot and compare payloads.
  std::stringstream ldm_io(std::ios::in | std::ios::out | std::ios::binary);
  write_ldm(ldm_io, g);
  const BitMatrix g2 = read_ldm(ldm_io);
  for (std::size_t s = 0; s < g.snps(); s += 37) {
    ASSERT_EQ(g2.snp_string(s), g.snp_string(s));
    ASSERT_EQ(g.snp_string(s), original.genotypes.snp_string(s));
  }

  // 4. LD through every driver agrees.
  const LdMatrix dense = ld_matrix(g);
  const LdMatrix parallel = ld_matrix_parallel(g, {}, 3);
  double max_diff = 0.0;
  for (std::size_t i = 0; i < g.snps(); i += 11) {
    for (std::size_t j = 0; j < g.snps(); j += 13) {
      const double a = dense(i, j);
      const double b = parallel(i, j);
      if (std::isnan(a)) {
        ASSERT_TRUE(std::isnan(b));
      } else {
        max_diff = std::max(max_diff, std::abs(a - b));
      }
    }
  }
  EXPECT_EQ(max_diff, 0.0);

  // 5. The omega scan localizes the planted sweep from the parsed data.
  SweepScanParams scan_params;
  scan_params.grid_points = 20;
  scan_params.window_snps = 25;
  const auto scan =
      omega_scan_parallel(g, parsed[0].positions, scan_params, 2);
  ASSERT_FALSE(scan.empty());
  const OmegaPoint peak = omega_scan_peak(scan);
  EXPECT_NEAR(peak.position, sp.sweep_center, 0.15);

  // 6. Decay profile from the same matrix shows decaying LD.
  const DecayProfile decay = ld_decay_profile(g, 100, 4);
  ASSERT_GT(decay.count[0], 0u);
  EXPECT_GT(decay.mean[0], decay.mean[3]);

  // 7. Ranked report is consistent with the dense matrix.
  const auto top = top_pairs(dense, 5);
  ASSERT_EQ(top.size(), 5u);
  for (const auto& pair : top) {
    EXPECT_DOUBLE_EQ(pair.value, dense(pair.i, pair.j));
  }
}

TEST(Integration, VcfToLdPipeline) {
  // Build a VCF in memory from simulated haplotypes, parse it, and verify
  // the LD matrix matches the direct computation.
  WrightFisherParams p;
  p.n_snps = 40;
  p.n_samples = 30;  // 15 diploid individuals
  p.seed = 11;
  const BitMatrix g = simulate_genotypes(p);

  std::ostringstream vcf;
  vcf << "##fileformat=VCFv4.2\n#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\t"
         "INFO\tFORMAT";
  for (std::size_t i = 0; i < 15; ++i) vcf << "\tS" << i;
  vcf << "\n";
  for (std::size_t s = 0; s < g.snps(); ++s) {
    vcf << "1\t" << (1000 + s) << "\trs" << s << "\tA\tC\t.\tPASS\t.\tGT";
    for (std::size_t ind = 0; ind < 15; ++ind) {
      vcf << '\t' << (g.get(s, 2 * ind) ? '1' : '0') << '|'
          << (g.get(s, 2 * ind + 1) ? '1' : '0');
    }
    vcf << "\n";
  }

  std::istringstream in(vcf.str());
  const VcfData data = parse_vcf(in);
  ASSERT_EQ(data.genotypes.snps(), g.snps());
  ASSERT_EQ(data.genotypes.samples(), g.samples());

  const LdMatrix from_vcf = ld_matrix(data.genotypes);
  const LdMatrix direct = ld_matrix(g);
  for (std::size_t i = 0; i < g.snps(); ++i) {
    for (std::size_t j = 0; j < g.snps(); ++j) {
      if (std::isnan(direct(i, j))) {
        EXPECT_TRUE(std::isnan(from_vcf(i, j)));
      } else {
        EXPECT_DOUBLE_EQ(from_vcf(i, j), direct(i, j));
      }
    }
  }
}

TEST(Integration, FingerprintPipelineFindsPlantedNeighbor) {
  FingerprintParams fp;
  fp.count = 400;
  fp.bits = 1024;
  fp.clusters = 8;
  fp.seed = 99;
  const BitMatrix db = simulate_fingerprints(fp);

  // Query = a database entry with a little extra noise.
  std::vector<std::size_t> base_row = {123};
  BitMatrix query = db.gather_rows(base_row);
  query.set(0, 5, !query.get(0, 5));
  query.set(0, 700, !query.get(0, 700));

  const auto hits = tanimoto_top_k_parallel(query, db, 3, {}, 2);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0][0].index, 123u)
      << "the perturbed source fingerprint must be the nearest neighbor";
  EXPECT_GT(hits[0][0].similarity, 0.9);
}

}  // namespace
}  // namespace ldla
