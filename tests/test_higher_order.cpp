#include "core/higher_order.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "sim/wright_fisher.hpp"
#include "util/contract.hpp"

namespace ldla {
namespace {

BitMatrix test_matrix(std::size_t snps, std::size_t samples,
                      std::uint64_t seed) {
  WrightFisherParams p;
  p.n_snps = snps;
  p.n_samples = samples;
  p.seed = seed;
  p.founders = 16;
  return simulate_genotypes(p);
}

TEST(ThirdOrder, GemmMatchesPerSampleReference) {
  const BitMatrix g = test_matrix(12, 90, 1);
  const ThirdOrderTensor d3 = third_order_d(g, 0, g.snps());
  for (std::size_t i = 0; i < g.snps(); ++i) {
    for (std::size_t j = 0; j < g.snps(); ++j) {
      for (std::size_t k = 0; k < g.snps(); ++k) {
        EXPECT_NEAR(d3(i, j, k), third_order_d_reference(g, i, j, k), 1e-12)
            << i << "," << j << "," << k;
      }
    }
  }
}

TEST(ThirdOrder, SymmetricInAllIndices) {
  const BitMatrix g = test_matrix(8, 120, 2);
  const ThirdOrderTensor d3 = third_order_d(g, 0, g.snps());
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      for (std::size_t k = 0; k < 8; ++k) {
        const double v = d3(i, j, k);
        EXPECT_NEAR(v, d3(i, k, j), 1e-12);
        EXPECT_NEAR(v, d3(j, i, k), 1e-12);
        EXPECT_NEAR(v, d3(k, j, i), 1e-12);
      }
    }
  }
}

TEST(ThirdOrder, WindowOffsetsSelectSubRegion) {
  const BitMatrix g = test_matrix(20, 80, 3);
  const ThirdOrderTensor window = third_order_d(g, 5, 11);
  EXPECT_EQ(window.window(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      for (std::size_t k = 0; k < 6; ++k) {
        EXPECT_NEAR(window(i, j, k),
                    third_order_d_reference(g, 5 + i, 5 + j, 5 + k), 1e-12);
      }
    }
  }
}

TEST(ThirdOrder, IndependentLociGiveNearZero) {
  // Random unlinked SNPs: D_ijk concentrates near 0.
  WrightFisherParams p;
  p.n_snps = 9;
  p.n_samples = 4000;
  p.switch_rate = 1.0;  // every SNP an independent founder draw
  p.seed = 4;
  const BitMatrix g = simulate_genotypes(p);
  const ThirdOrderTensor d3 = third_order_d(g, 0, g.snps());
  for (std::size_t i = 0; i < 9; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      for (std::size_t k = 0; k < j; ++k) {
        EXPECT_LT(std::abs(d3(i, j, k)), 0.05)
            << i << "," << j << "," << k;
      }
    }
  }
}

TEST(ThirdOrder, PerfectlyLinkedTripleHasKnownValue) {
  // All three SNPs identical with frequency p: counts collapse and
  // D_iii = p - 3p*D - p^3 with D = p - p^2, i.e. p(1-p)(1-2p).
  const std::size_t n = 100;
  BitMatrix g(3, n);
  for (std::size_t s = 0; s < 3; ++s) {
    for (std::size_t i = 0; i < 25; ++i) g.set(s, i, true);  // p = 0.25
  }
  const ThirdOrderTensor d3 = third_order_d(g, 0, 3);
  const double p = 0.25;
  const double expected = p * (1 - p) * (1 - 2 * p);
  EXPECT_NEAR(d3(0, 1, 2), expected, 1e-12);
  EXPECT_NEAR(third_order_d_reference(g, 0, 1, 2), expected, 1e-12);
}

TEST(ThirdOrder, RejectsBadArguments) {
  const BitMatrix g = test_matrix(10, 64, 5);
  EXPECT_THROW((void)third_order_d(g, 5, 3), ContractViolation);
  EXPECT_THROW((void)third_order_d(g, 0, 11), ContractViolation);
  EXPECT_THROW((void)third_order_d_reference(g, 10, 0, 0),
               ContractViolation);
}

TEST(ThirdOrder, EmptyWindowIsSafe) {
  const BitMatrix g = test_matrix(5, 64, 6);
  const ThirdOrderTensor d3 = third_order_d(g, 2, 2);
  EXPECT_EQ(d3.window(), 0u);
}

}  // namespace
}  // namespace ldla
