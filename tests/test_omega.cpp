#include "omega/omega_stat.hpp"
#include "omega/sweep_scan.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "sim/sweep_sim.hpp"
#include "sim/wright_fisher.hpp"
#include "util/contract.hpp"

namespace ldla {
namespace {

// Brute-force omega for one split, straight from the definition.
double omega_reference(const LdMatrix& r2, std::size_t l) {
  const std::size_t w = r2.rows();
  auto val = [&](std::size_t i, std::size_t j) {
    const double v = r2(i, j);
    return std::isfinite(v) ? v : 0.0;
  };
  double sum_l = 0, sum_r = 0, cross = 0;
  for (std::size_t i = 0; i < w; ++i) {
    for (std::size_t j = i + 1; j < w; ++j) {
      if (j < l) {
        sum_l += val(i, j);
      } else if (i >= l) {
        sum_r += val(i, j);
      } else {
        cross += val(i, j);
      }
    }
  }
  const double ld = static_cast<double>(l);
  const double rd = static_cast<double>(w - l);
  const double n_within = ld * (ld - 1) / 2 + rd * (rd - 1) / 2;
  const double n_cross = ld * rd;
  if (n_within <= 0 || n_cross <= 0) return 0.0;
  const double denom = cross / n_cross;
  if (denom <= 0) {
    return (sum_l + sum_r) > 0 ? std::numeric_limits<double>::infinity() : 0.0;
  }
  return ((sum_l + sum_r) / n_within) / denom;
}

LdMatrix random_r2(std::size_t w, std::uint64_t seed) {
  WrightFisherParams p;
  p.n_snps = w;
  p.n_samples = 100;
  p.seed = seed;
  const BitMatrix g = simulate_genotypes(p);
  return window_r2(g, 0, w);
}

TEST(OmegaStat, SplitMatchesBruteForce) {
  const LdMatrix r2 = random_r2(20, 1);
  for (std::size_t l = 1; l < 20; ++l) {
    EXPECT_NEAR(omega_at_split(r2, l), omega_reference(r2, l), 1e-9)
        << "split " << l;
  }
}

TEST(OmegaStat, MaxFindsBestSplit) {
  const LdMatrix r2 = random_r2(25, 2);
  const OmegaMax best = omega_max(r2);
  double want = 0.0;
  std::size_t want_split = 0;
  for (std::size_t l = 1; l < 25; ++l) {
    const double o = omega_reference(r2, l);
    if (o > want) {
      want = o;
      want_split = l;
    }
  }
  EXPECT_NEAR(best.omega, want, 1e-9);
  EXPECT_EQ(best.split, want_split);
}

TEST(OmegaStat, RejectsDegenerateSplits) {
  const LdMatrix r2 = random_r2(6, 3);
  EXPECT_THROW((void)omega_at_split(r2, 0), ContractViolation);
  EXPECT_THROW((void)omega_at_split(r2, 6), ContractViolation);
}

TEST(OmegaStat, TinyWindowsAreSafe) {
  LdMatrix r2(1, 1);
  EXPECT_EQ(omega_max(r2).omega, 0.0);
  LdMatrix r2b(2, 2);
  r2b(0, 1) = r2b(1, 0) = 0.5;
  // One pair, no within-group pairs on either side: omega defined as 0.
  EXPECT_EQ(omega_max(r2b).omega, 0.0);
}

TEST(OmegaStat, BlockStructureProducesHighOmega) {
  // Two perfectly correlated blocks with no cross correlation.
  const std::size_t w = 10;
  LdMatrix r2(w, w);
  for (std::size_t i = 0; i < w; ++i) {
    for (std::size_t j = 0; j < w; ++j) {
      const bool same_block = (i < 5) == (j < 5);
      r2(i, j) = same_block ? 0.9 : 0.01;
    }
  }
  const OmegaMax best = omega_max(r2);
  EXPECT_EQ(best.split, 5u);
  EXPECT_GT(best.omega, 10.0);
}

TEST(WindowR2, MatchesFullLdMatrix) {
  WrightFisherParams p;
  p.n_snps = 30;
  p.n_samples = 80;
  p.seed = 4;
  const BitMatrix g = simulate_genotypes(p);
  const LdMatrix full = ld_matrix(g);
  const LdMatrix win = window_r2(g, 10, 22);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 12; ++j) {
      const double want = full(10 + i, 10 + j);
      if (std::isnan(want)) {
        EXPECT_TRUE(std::isnan(win(i, j)));
      } else {
        EXPECT_DOUBLE_EQ(win(i, j), want);
      }
    }
  }
}

TEST(SweepScan, FindsPlantedSweep) {
  SweepParams sp;
  sp.base.n_snps = 600;
  sp.base.n_samples = 200;
  sp.base.switch_rate = 0.05;
  sp.base.founders = 32;
  sp.base.seed = 99;
  sp.sweep_center = 0.5;
  sp.sweep_width = 0.12;
  sp.sweep_intensity = 0.95;
  const SimulatedDataset data = simulate_sweep(sp);

  SweepScanParams scan_params;
  scan_params.grid_points = 25;
  scan_params.window_snps = 30;
  const auto scan = omega_scan(data.genotypes, data.positions, scan_params);
  ASSERT_FALSE(scan.empty());
  const OmegaPoint peak = omega_scan_peak(scan);
  EXPECT_NEAR(peak.position, sp.sweep_center, 0.15)
      << "omega peak should localize the sweep";
}

TEST(SweepScan, NeutralDataHasLowerPeakThanSweptData) {
  WrightFisherParams neutral;
  neutral.n_snps = 600;
  neutral.n_samples = 200;
  neutral.switch_rate = 0.05;
  neutral.founders = 32;
  neutral.seed = 99;
  const SimulatedDataset nd = simulate_wright_fisher(neutral);

  SweepParams sp;
  sp.base = neutral;
  sp.sweep_center = 0.5;
  sp.sweep_width = 0.12;
  sp.sweep_intensity = 0.95;
  const SimulatedDataset sd = simulate_sweep(sp);

  SweepScanParams scan_params;
  scan_params.grid_points = 25;
  scan_params.window_snps = 30;
  const auto neutral_scan = omega_scan(nd.genotypes, nd.positions, scan_params);
  const auto sweep_scan_r = omega_scan(sd.genotypes, sd.positions, scan_params);
  const double neutral_peak = omega_scan_peak(neutral_scan).omega;
  const double sweep_peak = omega_scan_peak(sweep_scan_r).omega;
  EXPECT_GT(sweep_peak, neutral_peak)
      << "sweep signature must raise omega above the neutral background";
}

TEST(SweepScan, WindowSearchNeverLosesToFixedWindow) {
  SweepParams sp;
  sp.base.n_snps = 400;
  sp.base.n_samples = 120;
  sp.base.seed = 55;
  const SimulatedDataset d = simulate_sweep(sp);

  SweepScanParams fixed;
  fixed.grid_points = 12;
  fixed.window_snps = 20;
  const auto base_scan = omega_scan(d.genotypes, d.positions, fixed);

  SweepScanParams searched = fixed;
  searched.window_candidates = {10, 30, 40};
  const auto search_scan = omega_scan(d.genotypes, d.positions, searched);

  ASSERT_EQ(search_scan.size(), base_scan.size());
  for (std::size_t i = 0; i < base_scan.size(); ++i) {
    EXPECT_GE(search_scan[i].omega, base_scan[i].omega)
        << "window search must dominate the fixed window at point " << i;
  }
}

TEST(SweepScan, ParallelMatchesSequential) {
  SweepParams sp;
  sp.base.n_snps = 400;
  sp.base.n_samples = 150;
  sp.base.seed = 77;
  const SimulatedDataset d = simulate_sweep(sp);
  SweepScanParams params;
  params.grid_points = 16;
  params.window_snps = 20;
  const auto seq = omega_scan(d.genotypes, d.positions, params);
  for (unsigned t : {1u, 2u, 4u}) {
    const auto par = omega_scan_parallel(d.genotypes, d.positions, params, t);
    ASSERT_EQ(par.size(), seq.size()) << t << " threads";
    for (std::size_t i = 0; i < seq.size(); ++i) {
      EXPECT_DOUBLE_EQ(par[i].omega, seq[i].omega);
      EXPECT_DOUBLE_EQ(par[i].position, seq[i].position);
      EXPECT_EQ(par[i].best_split, seq[i].best_split);
    }
  }
}

TEST(SweepScan, RejectsBadInputs) {
  WrightFisherParams p;
  p.n_snps = 20;
  p.n_samples = 50;
  const SimulatedDataset d = simulate_wright_fisher(p);
  std::vector<double> wrong_positions(5, 0.5);
  EXPECT_THROW((void)omega_scan(d.genotypes, wrong_positions, {}),
               ContractViolation);
  SweepScanParams bad;
  bad.grid_points = 0;
  EXPECT_THROW((void)omega_scan(d.genotypes, d.positions, bad),
               ContractViolation);
}

}  // namespace
}  // namespace ldla
