#include "core/gemm/packing.hpp"

#include <cstring>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/gemm/packed_bit_matrix.hpp"
#include "sim/rng.hpp"
#include "util/aligned_buffer.hpp"
#include "util/contract.hpp"

namespace ldla {
namespace {

BitMatrix random_matrix(std::size_t snps, std::size_t samples,
                        std::uint64_t seed) {
  Rng rng(seed);
  BitMatrix m(snps, samples);
  for (std::size_t s = 0; s < snps; ++s) {
    for (std::size_t b = 0; b < samples; ++b) {
      if (rng.next_bool(0.5)) m.set(s, b, true);
    }
  }
  return m;
}

// Reference: word k of row r, or zero beyond the payload.
std::uint64_t source_word(const BitMatrix& m, std::size_t row, std::size_t k) {
  if (row >= m.snps() || k >= m.words_per_snp()) return 0;
  return m.row_data(row)[k];
}

// Verify the documented layout: out[sliver][ (kchunk*r + i)*ku + kk ].
void check_packed(const BitMatrix& m, std::size_t row_begin, std::size_t rows,
                  std::size_t k_begin, std::size_t kc, std::size_t r,
                  std::size_t ku) {
  const std::size_t size = packed_panel_words(rows, kc, r, ku);
  AlignedBuffer<std::uint64_t> out(size);
  for (auto& w : out) w = 0xdeadbeefcafef00dull;  // detect unwritten slots
  pack_panel(m.view(), row_begin, rows, k_begin, kc, r, ku, out.data());

  const std::size_t slivers = (rows + r - 1) / r;
  const std::size_t kc_padded = (kc + ku - 1) / ku * ku;
  for (std::size_t s = 0; s < slivers; ++s) {
    const std::uint64_t* sliver = out.data() + s * r * kc_padded;
    for (std::size_t kchunk = 0; kchunk < kc_padded / ku; ++kchunk) {
      for (std::size_t i = 0; i < r; ++i) {
        for (std::size_t kk = 0; kk < ku; ++kk) {
          const std::size_t k = kchunk * ku + kk;
          const std::size_t row_local = s * r + i;
          std::uint64_t expected = 0;
          if (row_local < rows && k < kc) {
            expected = source_word(m, row_begin + row_local, k_begin + k);
          }
          EXPECT_EQ(sliver[(kchunk * r + i) * ku + kk], expected)
              << "sliver=" << s << " kchunk=" << kchunk << " i=" << i
              << " kk=" << kk;
        }
      }
    }
  }
}

TEST(Packing, PanelWordsAccountsForRounding) {
  EXPECT_EQ(packed_panel_words(4, 8, 4, 1), 32u);
  EXPECT_EQ(packed_panel_words(5, 8, 4, 1), 64u);   // 2 slivers
  EXPECT_EQ(packed_panel_words(4, 7, 4, 4), 32u);   // kc pads 7 -> 8
  EXPECT_EQ(packed_panel_words(1, 1, 2, 8), 16u);
}

TEST(Packing, ExactFitScalarLayout) {
  const BitMatrix m = random_matrix(8, 256, 1);
  check_packed(m, 0, 8, 0, 4, 4, 1);
}

TEST(Packing, EdgeRowsZeroPadded) {
  const BitMatrix m = random_matrix(10, 256, 2);
  check_packed(m, 8, 2, 0, 4, 4, 1);   // only 2 of 4 sliver rows exist
  check_packed(m, 0, 10, 0, 4, 4, 1);  // 3 slivers, last partial
}

TEST(Packing, KTailZeroPadded) {
  const BitMatrix m = random_matrix(4, 100, 3);  // 2 payload words
  check_packed(m, 0, 4, 0, 5, 4, 1);             // kc beyond payload
  check_packed(m, 0, 4, 1, 4, 4, 1);             // offset k range
}

TEST(Packing, VectorKernelChunking) {
  const BitMatrix m = random_matrix(6, 64 * 20, 4);
  check_packed(m, 0, 6, 0, 20, 2, 4);   // AVX2-style r=2, ku=4
  check_packed(m, 0, 6, 0, 20, 4, 8);   // AVX512-style r=4, ku=8
  check_packed(m, 0, 6, 4, 13, 4, 8);   // ragged kc with ku=8
}

TEST(Packing, MidMatrixBlock) {
  const BitMatrix m = random_matrix(64, 64 * 6, 5);
  check_packed(m, 17, 31, 2, 3, 4, 1);
}

TEST(Packing, RejectsOutOfRangeStart) {
  const BitMatrix m = random_matrix(4, 64, 6);
  AlignedBuffer<std::uint64_t> out(packed_panel_words(4, 1, 4, 1));
  EXPECT_THROW(pack_panel(m.view(), 5, 1, 0, 1, 4, 1, out.data()),
               ContractViolation);
  EXPECT_THROW(pack_panel(m.view(), 0, 1, 2, 1, 4, 1, out.data()),
               ContractViolation);
  EXPECT_THROW(pack_panel(m.view(), 0, 1, 0, 1, 0, 1, out.data()),
               ContractViolation);
}

// unpack_packed is the exact inverse of the persistent pack, across ragged
// row/word edges, multiple k panels, and ku interleaves — the shard
// store's repack fallback depends on this round trip being lossless.
TEST(Packing, UnpackPackedRoundTripsEveryGeometry) {
  const BitMatrix m = random_matrix(37, 64 * 5 + 29, 11);
  for (const auto& [mr, nr, ku] :
       {std::tuple<std::size_t, std::size_t, std::size_t>{4, 4, 1},
        {2, 8, 1},
        {4, 4, 4},
        {8, 4, 1}}) {
    GemmPlan plan;
    plan.arch = KernelArch::kScalar;
    plan.mr = mr;
    plan.nr = nr;
    plan.ku = ku;
    plan.kc_words = 3;  // forces several panels with a ragged tail
    for (const PackSides sides :
         {PackSides::kBoth, PackSides::kA, PackSides::kB}) {
      const PackedBitMatrix packed(m.view(), plan, sides);
      const BitMatrix back = unpack_packed(packed);
      ASSERT_EQ(back.snps(), m.snps());
      ASSERT_EQ(back.samples(), m.samples());
      for (std::size_t s = 0; s < m.snps(); ++s) {
        ASSERT_EQ(std::memcmp(back.row_data(s), m.row_data(s),
                              m.words_per_snp() * 8),
                  0)
            << "mr=" << mr << " nr=" << nr << " ku=" << ku << " row " << s;
      }
      EXPECT_TRUE(back.padding_is_clean());
    }
  }
}

}  // namespace
}  // namespace ldla
