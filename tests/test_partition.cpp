#include "util/partition.hpp"

#include <numeric>

#include <gtest/gtest.h>

#include "util/contract.hpp"

namespace ldla {
namespace {

void expect_contiguous_cover(const std::vector<Range>& ranges, std::size_t n) {
  ASSERT_FALSE(ranges.empty());
  EXPECT_EQ(ranges.front().begin, 0u);
  EXPECT_EQ(ranges.back().end, n);
  for (std::size_t i = 0; i + 1 < ranges.size(); ++i) {
    EXPECT_EQ(ranges[i].end, ranges[i + 1].begin);
    EXPECT_FALSE(ranges[i].empty());
  }
  EXPECT_FALSE(ranges.back().empty());
}

TEST(SplitUniform, CoversRangeExactly) {
  for (std::size_t n : {1u, 5u, 64u, 1000u, 1001u}) {
    for (std::size_t p : {1u, 2u, 3u, 7u, 16u}) {
      expect_contiguous_cover(split_uniform(n, p), n);
    }
  }
}

TEST(SplitUniform, SizesDifferByAtMostOne) {
  const auto ranges = split_uniform(1000, 7);
  std::size_t lo = 1000, hi = 0;
  for (const auto& r : ranges) {
    lo = std::min(lo, r.size());
    hi = std::max(hi, r.size());
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(SplitUniform, MorePartsThanItemsShrinks) {
  const auto ranges = split_uniform(3, 10);
  EXPECT_EQ(ranges.size(), 3u);
  expect_contiguous_cover(ranges, 3);
}

TEST(SplitUniform, EmptyRangeYieldsNothing) {
  EXPECT_TRUE(split_uniform(0, 4).empty());
}

TEST(SplitUniform, RejectsZeroParts) {
  EXPECT_THROW(split_uniform(10, 0), ContractViolation);
}

TEST(SplitTriangle, CoversRangeExactly) {
  for (std::size_t n : {1u, 2u, 10u, 257u, 1000u}) {
    for (std::size_t p : {1u, 2u, 4u, 12u}) {
      expect_contiguous_cover(split_triangle(n, p), n);
    }
  }
}

TEST(SplitTriangle, BalancesColumnWork) {
  const std::size_t n = 10'000;
  const auto ranges = split_triangle(n, 8);
  const std::size_t total = n * (n + 1) / 2;
  const std::size_t ideal = total / ranges.size();
  for (const auto& r : ranges) {
    const std::size_t w = triangle_work(n, r);
    EXPECT_GT(w, ideal / 2) << "range too light";
    EXPECT_LT(w, ideal * 2) << "range too heavy";
  }
}

TEST(SplitTriangle, EarlierRangesAreNarrower) {
  // Early columns own more pairs, so balanced column ranges must widen.
  const auto ranges = split_triangle(10'000, 4);
  ASSERT_EQ(ranges.size(), 4u);
  EXPECT_LT(ranges.front().size(), ranges.back().size());
}

TEST(SplitTriangleRows, CoversRangeExactly) {
  for (std::size_t n : {1u, 2u, 10u, 999u}) {
    for (std::size_t p : {1u, 3u, 8u}) {
      expect_contiguous_cover(split_triangle_rows(n, p), n);
    }
  }
}

TEST(SplitTriangleRows, MorePartsThanRowsNeverOverAssigns) {
  // Regression guard for the parallel drivers' n < threads corner: a tiny
  // matrix scanned with a big team (e.g. n=3, threads=16) must yield at
  // most n ranges, all non-empty — never empty ranges or rows assigned to
  // more than one worker.
  const auto ranges = split_triangle_rows(3, 16);
  EXPECT_LE(ranges.size(), 3u);
  expect_contiguous_cover(ranges, 3);

  for (std::size_t n = 1; n <= 64; ++n) {
    for (std::size_t p : {1u, 2u, 3u, 7u, 15u, 16u, 32u}) {
      const auto rs = split_triangle_rows(n, p);
      EXPECT_LE(rs.size(), std::min(p, n)) << "n=" << n << " p=" << p;
      expect_contiguous_cover(rs, n);
    }
  }
}

TEST(SplitTriangleRows, BalancesRowWork) {
  const std::size_t n = 10'000;
  const auto ranges = split_triangle_rows(n, 8);
  const std::size_t total = n * (n + 1) / 2;
  const std::size_t ideal = total / ranges.size();
  for (const auto& r : ranges) {
    const std::size_t w = triangle_row_work(r);
    EXPECT_GT(w, ideal / 2);
    EXPECT_LT(w, ideal * 2);
  }
}

TEST(SplitTriangleRows, LaterRangesAreNarrower) {
  // Later rows own more pairs, so balanced row ranges must narrow.
  const auto ranges = split_triangle_rows(10'000, 4);
  ASSERT_EQ(ranges.size(), 4u);
  EXPECT_GT(ranges.front().size(), ranges.back().size());
}

TEST(TriangleWork, MatchesBruteForce) {
  const std::size_t n = 57;
  for (std::size_t b = 0; b < n; b += 7) {
    for (std::size_t e = b; e <= n; e += 11) {
      std::size_t expected = 0;
      for (std::size_t j = b; j < e; ++j) expected += n - j;
      EXPECT_EQ(triangle_work(n, {b, e}), expected);
    }
  }
}

TEST(TriangleRowWork, MatchesBruteForce) {
  for (std::size_t b = 0; b < 40; b += 3) {
    for (std::size_t e = b; e <= 40; e += 5) {
      std::size_t expected = 0;
      for (std::size_t i = b; i < e; ++i) expected += i + 1;
      EXPECT_EQ(triangle_row_work({b, e}), expected);
    }
  }
}

TEST(TriangleWork, SumOverPartitionIsTotal) {
  const std::size_t n = 1234;
  const auto ranges = split_triangle(n, 5);
  std::size_t sum = 0;
  for (const auto& r : ranges) sum += triangle_work(n, r);
  EXPECT_EQ(sum, n * (n + 1) / 2);
}

}  // namespace
}  // namespace ldla
