#include "core/ld_blocks.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"
#include "sim/wright_fisher.hpp"
#include "util/contract.hpp"

namespace ldla {
namespace {

// Build a matrix with planted blocks: SNPs within a block are noisy copies
// of a shared template; templates are independent across blocks.
BitMatrix planted_blocks(const std::vector<std::size_t>& block_sizes,
                         std::size_t samples, double noise,
                         std::uint64_t seed) {
  Rng rng(seed);
  std::size_t total = 0;
  for (const auto b : block_sizes) total += b;
  BitMatrix g(total, samples);
  std::size_t row = 0;
  for (const auto b : block_sizes) {
    std::vector<bool> tmpl(samples);
    for (std::size_t i = 0; i < samples; ++i) tmpl[i] = rng.next_bool(0.5);
    for (std::size_t s = 0; s < b; ++s, ++row) {
      for (std::size_t i = 0; i < samples; ++i) {
        const bool bit = rng.next_bool(noise) ? !tmpl[i] : tmpl[i];
        if (bit) g.set(row, i, true);
      }
    }
  }
  return g;
}

void expect_partition(const std::vector<LdBlock>& blocks, std::size_t n) {
  ASSERT_FALSE(blocks.empty());
  EXPECT_EQ(blocks.front().begin, 0u);
  EXPECT_EQ(blocks.back().end, n);
  for (std::size_t b = 0; b + 1 < blocks.size(); ++b) {
    EXPECT_EQ(blocks[b].end, blocks[b + 1].begin);
    EXPECT_GT(blocks[b].size(), 0u);
  }
}

TEST(LdBlocks, RecoversPlantedBlockBoundaries) {
  const std::vector<std::size_t> sizes = {12, 8, 15, 5};
  const BitMatrix g = planted_blocks(sizes, 400, 0.02, 1);
  LdBlockParams params;
  params.threshold = 0.5;
  const auto blocks = find_ld_blocks(g, params);
  expect_partition(blocks, g.snps());
  ASSERT_EQ(blocks.size(), sizes.size());
  std::size_t begin = 0;
  for (std::size_t b = 0; b < sizes.size(); ++b) {
    EXPECT_EQ(blocks[b].begin, begin);
    EXPECT_EQ(blocks[b].size(), sizes[b]);
    EXPECT_GT(blocks[b].mean_r2, 0.8);
    begin += sizes[b];
  }
}

TEST(LdBlocks, UnlinkedDataYieldsSingletons) {
  WrightFisherParams p;
  p.n_snps = 40;
  p.n_samples = 500;
  p.switch_rate = 1.0;  // independent SNPs
  p.seed = 2;
  const BitMatrix g = simulate_genotypes(p);
  LdBlockParams params;
  params.threshold = 0.6;
  const auto blocks = find_ld_blocks(g, params);
  expect_partition(blocks, g.snps());
  // Nearly every SNP should stand alone.
  std::size_t singletons = 0;
  for (const auto& b : blocks) {
    if (b.size() == 1) ++singletons;
  }
  EXPECT_GT(singletons, blocks.size() * 3 / 4);
}

TEST(LdBlocks, ThresholdOneMakesOnlyPerfectBlocks) {
  // Identical SNPs form one block even at threshold 1.0.
  std::vector<std::string> rows(6, "1100110010");
  rows.emplace_back("0101010101");  // unrelated tail SNP
  const BitMatrix g = BitMatrix::from_snp_strings(rows);
  LdBlockParams params;
  params.threshold = 1.0;
  const auto blocks = find_ld_blocks(g, params);
  expect_partition(blocks, g.snps());
  ASSERT_GE(blocks.size(), 2u);
  EXPECT_EQ(blocks.front().size(), 6u);
  EXPECT_DOUBLE_EQ(blocks.front().mean_r2, 1.0);
}

TEST(LdBlocks, SpanLimitsPairEvaluation) {
  const BitMatrix g = planted_blocks({30}, 200, 0.02, 3);
  LdBlockParams params;
  params.threshold = 0.5;
  params.max_span = 4;  // links only reach 4 SNPs back
  const auto blocks = find_ld_blocks(g, params);
  expect_partition(blocks, g.snps());
  // With a strong single block, the span limit must not split it.
  EXPECT_EQ(blocks.size(), 1u);
}

TEST(LdBlocks, RejectsBadParameters) {
  const BitMatrix g = planted_blocks({4}, 64, 0.1, 4);
  LdBlockParams params;
  params.threshold = 1.5;
  EXPECT_THROW((void)find_ld_blocks(g, params), ContractViolation);
  params.threshold = 0.5;
  params.max_span = 0;
  EXPECT_THROW((void)find_ld_blocks(g, params), ContractViolation);
}

TEST(LdBlocks, EmptyMatrixGivesNoBlocks) {
  BitMatrix empty;
  EXPECT_TRUE(find_ld_blocks(empty).empty());
}

}  // namespace
}  // namespace ldla
