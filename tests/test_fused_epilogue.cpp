// Property sweep for the fused statistics epilogue: the single-pass
// pipeline (stats written straight from hot count tiles, no intermediate
// CountMatrix) must be bit-identical to the two-pass ablation across
// stat x kernel arch x blocking params x ragged shapes x unaligned band
// and omega windows x sequential/parallel drivers.
#include "core/ld.hpp"

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/band.hpp"
#include "core/gemm/kernel.hpp"
#include "core/gemm/macro.hpp"
#include "core/gemm/syrk.hpp"
#include "core/parallel.hpp"
#include "omega/sweep_scan.hpp"
#include "sim/rng.hpp"

namespace ldla {
namespace {

BitMatrix random_matrix(std::size_t snps, std::size_t samples,
                        std::uint64_t seed) {
  Rng rng(seed);
  BitMatrix m(snps, samples);
  for (std::size_t s = 0; s < snps; ++s) {
    for (std::size_t b = 0; b < samples; ++b) {
      if (rng.next_bool(0.4)) m.set(s, b, true);
    }
  }
  return m;
}

// Ragged shapes, none a multiple of any register tile; sample counts off
// word boundaries so padding words are always in play.
const std::vector<std::pair<std::size_t, std::size_t>> kShapes = {
    {5, 100}, {33, 323}, {70, 129}, {128, 1000}};

constexpr std::array<LdStatistic, 3> kStats = {
    LdStatistic::kD, LdStatistic::kDPrime, LdStatistic::kRSquared};

std::vector<GemmConfig> blocking_configs(KernelArch arch) {
  std::vector<GemmConfig> cfgs(3);
  cfgs[1].kc_words = 2;
  cfgs[1].mc = 8;
  cfgs[1].nc = 8;
  cfgs[2].kc_words = 3;
  cfgs[2].mc = 24;
  cfgs[2].nc = 16;
  for (GemmConfig& cfg : cfgs) cfg.arch = arch;
  return cfgs;
}

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

void expect_same_matrix(const LdMatrix& got, const LdMatrix& want,
                        const char* what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (std::size_t i = 0; i < want.rows(); ++i) {
    for (std::size_t j = 0; j < want.cols(); ++j) {
      ASSERT_TRUE(same_bits(got(i, j), want(i, j)))
          << what << " at (" << i << "," << j << ")";
    }
  }
}

// Full tile capture (geometry + payload): the fused scans promise not just
// the same values but the same tile stream as the two-pass path.
struct TileRecord {
  std::size_t row_begin, col_begin, rows, cols;
  std::vector<double> values;
};

std::vector<TileRecord> record_tiles(const LdTile& tile,
                                     std::vector<TileRecord>&& acc) {
  TileRecord r{tile.row_begin, tile.col_begin, tile.rows, tile.cols, {}};
  r.values.reserve(tile.rows * tile.cols);
  for (std::size_t i = 0; i < tile.rows; ++i) {
    for (std::size_t j = 0; j < tile.cols; ++j) {
      r.values.push_back(tile.at(i, j));
    }
  }
  acc.push_back(std::move(r));
  return std::move(acc);
}

void expect_same_tiles(const std::vector<TileRecord>& got,
                       const std::vector<TileRecord>& want,
                       const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t t = 0; t < want.size(); ++t) {
    EXPECT_EQ(got[t].row_begin, want[t].row_begin) << what << " tile " << t;
    EXPECT_EQ(got[t].col_begin, want[t].col_begin) << what << " tile " << t;
    EXPECT_EQ(got[t].rows, want[t].rows) << what << " tile " << t;
    EXPECT_EQ(got[t].cols, want[t].cols) << what << " tile " << t;
    ASSERT_EQ(got[t].values.size(), want[t].values.size()) << what;
    for (std::size_t v = 0; v < want[t].values.size(); ++v) {
      ASSERT_TRUE(same_bits(got[t].values[v], want[t].values[v]))
          << what << " tile " << t << " value " << v;
    }
  }
}

class FusedEpilogue : public ::testing::TestWithParam<KernelArch> {};

TEST_P(FusedEpilogue, LdMatrixBitIdenticalToTwoPass) {
  for (const auto& [n, k] : kShapes) {
    const BitMatrix g = random_matrix(n, k, n * 57 + k);
    for (const GemmConfig& cfg : blocking_configs(GetParam())) {
      for (const LdStatistic stat : kStats) {
        LdOptions fused;
        fused.gemm = cfg;
        fused.stat = stat;
        LdOptions two_pass = fused;
        two_pass.fused = false;
        expect_same_matrix(ld_matrix(g, fused), ld_matrix(g, two_pass),
                           ld_statistic_name(stat).c_str());
      }
    }
  }
}

TEST_P(FusedEpilogue, CrossMatrixBitIdenticalToTwoPass) {
  for (const auto& [n, k] : kShapes) {
    const BitMatrix a = random_matrix(n, k, n * 77 + k);
    const BitMatrix b = random_matrix((n * 2) / 3 + 1, k, n * 131 + k);
    for (const GemmConfig& cfg : blocking_configs(GetParam())) {
      for (const LdStatistic stat : kStats) {
        LdOptions fused;
        fused.gemm = cfg;
        fused.stat = stat;
        LdOptions two_pass = fused;
        two_pass.fused = false;
        expect_same_matrix(ld_cross_matrix(a, b, fused),
                           ld_cross_matrix(a, b, two_pass),
                           ld_statistic_name(stat).c_str());
      }
    }
  }
}

TEST_P(FusedEpilogue, ScansEmitIdenticalTileStreams) {
  const BitMatrix g = random_matrix(93, 323, 41);
  const BitMatrix b = random_matrix(45, 323, 43);
  for (const GemmConfig& cfg : blocking_configs(GetParam())) {
    for (const LdStatistic stat : kStats) {
      LdOptions fused;
      fused.gemm = cfg;
      fused.stat = stat;
      fused.slab_rows = 17;  // off every tile boundary
      LdOptions two_pass = fused;
      two_pass.fused = false;

      std::vector<TileRecord> ft, tt;
      ld_scan(g, [&](const LdTile& t) { ft = record_tiles(t, std::move(ft)); },
              fused);
      ld_scan(g, [&](const LdTile& t) { tt = record_tiles(t, std::move(tt)); },
              two_pass);
      expect_same_tiles(ft, tt, "ld_scan");

      std::vector<TileRecord> fc, tc;
      ld_cross_scan(
          g, b, [&](const LdTile& t) { fc = record_tiles(t, std::move(fc)); },
          fused);
      ld_cross_scan(
          g, b, [&](const LdTile& t) { tc = record_tiles(t, std::move(tc)); },
          two_pass);
      expect_same_tiles(fc, tc, "ld_cross_scan");
    }
  }
}

TEST_P(FusedEpilogue, BandScanBitIdenticalAtUnalignedWindows) {
  const BitMatrix g = random_matrix(90, 129, 47);
  for (const GemmConfig& cfg : blocking_configs(GetParam())) {
    // Bandwidths and slabs chosen so column windows start/end off every
    // sliver and cache-tile boundary.
    for (const std::size_t bandwidth : {1ul, 11ul, 37ul}) {
      BandOptions fused;
      fused.gemm = cfg;
      fused.slab_rows = 13;
      BandOptions two_pass = fused;
      two_pass.fused = false;

      std::vector<TileRecord> ft, tt;
      ld_band_scan(
          g, bandwidth,
          [&](const LdTile& t) { ft = record_tiles(t, std::move(ft)); },
          fused);
      ld_band_scan(
          g, bandwidth,
          [&](const LdTile& t) { tt = record_tiles(t, std::move(tt)); },
          two_pass);
      expect_same_tiles(ft, tt, "ld_band_scan");
    }
  }
}

TEST_P(FusedEpilogue, StatScanCoversCanonicalPairsExactlyOnce) {
  const BitMatrix g = random_matrix(70, 129, 53);
  const std::size_t n = g.snps();
  for (const GemmConfig& cfg : blocking_configs(GetParam())) {
    LdOptions opts;
    opts.gemm = cfg;
    const LdMatrix want = ld_matrix(g, opts);

    // Packed fused path and the two-pass fallback (no packing plan) must
    // both deliver every canonical pair exactly once and nothing else.
    for (const bool pack_once : {true, false}) {
      LdOptions scan_opts = opts;
      scan_opts.gemm.pack_once = pack_once;
      std::map<std::pair<std::size_t, std::size_t>, double> seen;
      ld_stat_scan(g, [&](const LdTile& tile) {
        for (std::size_t i = 0; i < tile.rows; ++i) {
          for (std::size_t j = 0; j < tile.cols; ++j) {
            const auto key = std::pair(tile.row_begin + i, tile.col_begin + j);
            ASSERT_LE(key.second, key.first) << "non-canonical entry emitted";
            ASSERT_EQ(seen.count(key), 0u) << "duplicate pair";
            seen[key] = tile.at(i, j);
          }
        }
      }, scan_opts);
      ASSERT_EQ(seen.size(), ld_pair_count(n));
      for (const auto& [key, v] : seen) {
        ASSERT_TRUE(same_bits(v, want(key.first, key.second)))
            << "(" << key.first << "," << key.second
            << ") pack_once=" << pack_once;
      }
    }
  }
}

TEST_P(FusedEpilogue, CrossStatScanCoversEveryPairExactlyOnce) {
  const BitMatrix a = random_matrix(33, 323, 59);
  const BitMatrix b = random_matrix(23, 323, 61);
  for (const GemmConfig& cfg : blocking_configs(GetParam())) {
    LdOptions opts;
    opts.gemm = cfg;
    const LdMatrix want = ld_cross_matrix(a, b, opts);

    for (const bool pack_once : {true, false}) {
      LdOptions scan_opts = opts;
      scan_opts.gemm.pack_once = pack_once;
      std::map<std::pair<std::size_t, std::size_t>, double> seen;
      ld_cross_stat_scan(a, b, [&](const LdTile& tile) {
        for (std::size_t i = 0; i < tile.rows; ++i) {
          for (std::size_t j = 0; j < tile.cols; ++j) {
            const auto key = std::pair(tile.row_begin + i, tile.col_begin + j);
            ASSERT_EQ(seen.count(key), 0u) << "duplicate pair";
            seen[key] = tile.at(i, j);
          }
        }
      }, scan_opts);
      ASSERT_EQ(seen.size(), a.snps() * b.snps());
      for (const auto& [key, v] : seen) {
        ASSERT_TRUE(same_bits(v, want(key.first, key.second)));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, FusedEpilogue, ::testing::ValuesIn(available_kernels()),
    [](const ::testing::TestParamInfo<KernelArch>& param_info) {
      std::string name = kernel_arch_name(param_info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---- parallel drivers and omega windows ---------------------------------

TEST(FusedEpilogueParallel, ParallelScanBitIdenticalToTwoPass) {
  const BitMatrix g = random_matrix(93, 200, 67);
  for (const LdStatistic stat : kStats) {
    LdOptions fused;
    fused.stat = stat;
    fused.slab_rows = 17;
    LdOptions two_pass = fused;
    two_pass.fused = false;

    // Tile arrival order is nondeterministic across workers, and the
    // above-diagonal slack a trapezoid tile carries depends on the work
    // partition (nest slabs span [0, n), coarse slabs stop at each range
    // boundary): compare the canonical (j <= i) per-pair value maps — the
    // scan contract — and require each canonical pair exactly once.
    const auto collect = [&](const LdOptions& opts) {
      std::map<std::pair<std::size_t, std::size_t>, double> seen;
      std::mutex mu;
      ld_scan_parallel(
          g,
          [&](const LdTile& tile) {
            const std::lock_guard<std::mutex> lock(mu);
            for (std::size_t i = 0; i < tile.rows; ++i) {
              const std::size_t gi = tile.row_begin + i;
              for (std::size_t j = 0; j < tile.cols; ++j) {
                const std::size_t gj = tile.col_begin + j;
                if (gj > gi) continue;
                const bool fresh =
                    seen.emplace(std::make_pair(gi, gj), tile.at(i, j))
                        .second;
                EXPECT_TRUE(fresh) << "duplicate pair (" << gi << "," << gj
                                   << ")";
              }
            }
          },
          opts, 3);
      return seen;
    };
    const auto a = collect(fused);
    const auto b = collect(two_pass);
    ASSERT_EQ(a.size(), b.size());
    for (const auto& [key, v] : a) {
      const auto it = b.find(key);
      ASSERT_NE(it, b.end());
      ASSERT_TRUE(same_bits(v, it->second))
          << "(" << key.first << "," << key.second << ")";
    }
  }
}

TEST(FusedEpilogueParallel, ParallelMatricesBitIdenticalToTwoPass) {
  const BitMatrix g = random_matrix(70, 129, 71);
  const BitMatrix b = random_matrix(33, 129, 73);
  for (const LdStatistic stat : kStats) {
    LdOptions fused;
    fused.stat = stat;
    fused.slab_rows = 17;
    LdOptions two_pass = fused;
    two_pass.fused = false;
    expect_same_matrix(ld_matrix_parallel(g, fused, 3),
                       ld_matrix_parallel(g, two_pass, 3), "ld_matrix_parallel");
    expect_same_matrix(ld_cross_matrix_parallel(g, b, fused, 3),
                       ld_cross_matrix_parallel(g, b, two_pass, 3),
                       "ld_cross_matrix_parallel");
  }
}

TEST(FusedEpilogueOmega, OmegaScanBitIdenticalAtUnalignedWindows) {
  const BitMatrix g = random_matrix(160, 100, 79);
  std::vector<double> positions(g.snps());
  for (std::size_t s = 0; s < g.snps(); ++s) {
    positions[s] =
        (static_cast<double>(s) + 0.5) / static_cast<double>(g.snps());
  }
  // Window extents chosen so [begin, end) lands off every register-tile
  // and cache-tile boundary across the grid.
  SweepScanParams fused;
  fused.grid_points = 12;
  fused.window_snps = 14;
  fused.window_candidates = {7, 25};
  SweepScanParams two_pass = fused;
  two_pass.fused = false;

  for (const unsigned threads : {0u, 3u}) {
    const std::vector<OmegaPoint> a =
        threads == 0 ? omega_scan(g, positions, fused)
                     : omega_scan_parallel(g, positions, fused, threads);
    const std::vector<OmegaPoint> b =
        threads == 0 ? omega_scan(g, positions, two_pass)
                     : omega_scan_parallel(g, positions, two_pass, threads);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_TRUE(same_bits(a[i].omega, b[i].omega)) << "point " << i;
      EXPECT_EQ(a[i].window_begin, b[i].window_begin);
      EXPECT_EQ(a[i].window_end, b[i].window_end);
      EXPECT_EQ(a[i].best_split, b[i].best_split);
    }
  }
}

// ---- driver-level: fused tile streams reassemble to the packed result ----

TEST(FusedEpilogueDrivers, GemmFusedTilesReassembleExactly) {
  const BitMatrix a = random_matrix(70, 129, 83);
  const BitMatrix b = random_matrix(33, 129, 89);
  for (const GemmConfig& cfg : blocking_configs(KernelArch::kAuto)) {
    const PackedBitMatrix pa =
        PackedBitMatrix::pack(a.view(), cfg, PackSides::kA);
    const PackedBitMatrix pb =
        PackedBitMatrix::pack(b.view(), cfg, PackSides::kB);
    // Ranges start/end off every register-tile boundary.
    for (const auto& [a0, a1, b0, b1] :
         std::vector<std::array<std::size_t, 4>>{
             {0, 70, 0, 33}, {3, 11, 1, 30}, {17, 42, 29, 30}}) {
      CountMatrix want(a1 - a0, b1 - b0);
      gemm_count_packed(pa, a0, a1, pb, b0, b1, want.ref());
      CountMatrix got(a1 - a0, b1 - b0);
      got.zero();
      std::size_t covered = 0;
      gemm_count_fused(pa, a0, a1, pb, b0, b1, [&](const CountTile& t) {
        for (std::size_t i = 0; i < t.rows; ++i) {
          for (std::size_t j = 0; j < t.cols; ++j) {
            got(t.row_begin + i - a0, t.col_begin + j - b0) = t.row(i)[j];
            ++covered;
          }
        }
      });
      ASSERT_EQ(covered, (a1 - a0) * (b1 - b0)) << "tiles must partition";
      for (std::size_t i = 0; i < a1 - a0; ++i) {
        for (std::size_t j = 0; j < b1 - b0; ++j) {
          ASSERT_EQ(got(i, j), want(i, j)) << i << "," << j;
        }
      }
    }
  }
}

TEST(FusedEpilogueDrivers, SyrkFusedTilesCoverLowerTriangleExactly) {
  const BitMatrix g = random_matrix(67, 200, 97);
  for (const GemmConfig& cfg : blocking_configs(KernelArch::kAuto)) {
    const PackedBitMatrix p = PackedBitMatrix::pack(g.view(), cfg);
    for (const auto& [r0, r1] :
         std::vector<std::pair<std::size_t, std::size_t>>{
             {0, 67}, {5, 37}, {30, 31}, {62, 67}}) {
      const std::size_t w = r1 - r0;
      CountMatrix want(w, w);
      syrk_count_packed(p, r0, r1, want.ref(), /*triangular_only=*/true);
      CountMatrix got(w, w);
      got.zero();
      std::vector<std::uint8_t> hits(w * w, 0);
      syrk_count_fused(p, r0, r1, [&](const CountTile& t) {
        for (std::size_t i = 0; i < t.rows; ++i) {
          const std::size_t gi = t.row_begin + i;
          for (std::size_t j = 0; j < t.cols; ++j) {
            const std::size_t gj = t.col_begin + j;
            if (gj > gi) continue;  // above-diagonal entries unspecified
            got(gi - r0, gj - r0) = t.row(i)[j];
            ++hits[(gi - r0) * w + (gj - r0)];
          }
        }
      });
      for (std::size_t i = 0; i < w; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
          ASSERT_EQ(hits[i * w + j], 1u)
              << "pair (" << i << "," << j << ") seen " << int{hits[i * w + j]}
              << " times";
          ASSERT_EQ(got(i, j), want(i, j)) << i << "," << j;
        }
      }
    }
  }
}

}  // namespace
}  // namespace ldla
