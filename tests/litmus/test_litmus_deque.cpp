// Litmus gate for the weak-memory Chase–Lev deque (util/work_steal.hpp).
//
// Two complementary layers:
//
//  1. Exhaustive bounded-schedule interleaving at *operation* granularity:
//     every merge of an owner script (push/pop) with thief scripts (steal)
//     is replayed on a fresh deque and checked for the protocol invariants
//     (exactly-once delivery, FIFO steal order, no loss through growth).
//     This proves the index arithmetic and the growth/copy logic over the
//     full schedule space, including every bottom == top boundary the
//     scripts can reach. It deliberately does not model intra-operation
//     interleavings, so it says nothing about the memory orderings.
//
//  2. Racing-thread stress that exists to run under ThreadSanitizer (the
//     tsan preset builds this binary too): 16 stealers race the owner
//     through repeated capacity doublings and through the single-item
//     pop-vs-steal CAS. TSan models the C++11 memory orderings exactly
//     (which is why the deque is written fence-free), so a too-weak
//     ordering shows up here as a data-race report.
//
// Any change to the orderings in work_steal.hpp must keep this suite green
// under both the release and tsan presets.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/work_steal.hpp"

namespace ldla {
namespace {

// ---------------------------------------------------------------------------
// Layer 1: exhaustive operation-granularity interleaving.
// ---------------------------------------------------------------------------

enum class Op { kPush, kPop, kSteal };

// Thread scripts: index 0 is the owner (push/pop only), the rest are
// thieves (steal only).
using Scripts = std::vector<std::vector<Op>>;

struct Outcome {
  std::vector<std::int64_t> taken;   ///< all successful pops+steals, in order
  std::vector<std::int64_t> steals;  ///< successful steals only, in order
  std::size_t final_capacity = 0;
};

std::string describe(const std::vector<std::size_t>& schedule) {
  std::ostringstream os;
  os << "schedule:";
  for (std::size_t who : schedule) os << ' ' << who;
  return os.str();
}

// Replay one complete interleaving on a fresh deque, then drain what is
// left from the owner side so the exactly-once check covers every value.
Outcome replay(const Scripts& scripts,
               const std::vector<std::size_t>& schedule,
               std::size_t initial_capacity) {
  WorkStealDeque<std::int64_t> deque(initial_capacity);
  std::vector<std::size_t> pc(scripts.size(), 0);
  Outcome out;
  std::int64_t next_push = 0;
  for (std::size_t who : schedule) {
    const Op op = scripts[who][pc[who]++];
    std::int64_t v = -1;
    switch (op) {
      case Op::kPush:
        deque.push(next_push++);
        break;
      case Op::kPop:
        if (deque.pop(v)) out.taken.push_back(v);
        break;
      case Op::kSteal:
        if (deque.steal(v)) {
          out.taken.push_back(v);
          out.steals.push_back(v);
        }
        break;
    }
  }
  std::int64_t v = -1;
  while (deque.pop(v)) out.taken.push_back(v);
  out.final_capacity = deque.capacity();
  return out;
}

// Validate one schedule; returns an empty string on success so the
// enumerator can report the first failing schedule and stop.
std::string check_schedule(const Scripts& scripts,
                           const std::vector<std::size_t>& schedule,
                           std::size_t initial_capacity,
                           std::size_t pushes) {
  const Outcome out = replay(scripts, schedule, initial_capacity);
  if (out.taken.size() != pushes) {
    return describe(schedule) + ": took " + std::to_string(out.taken.size()) +
           " values, pushed " + std::to_string(pushes);
  }
  // Exactly-once: the taken multiset is a permutation of [0, pushes).
  std::vector<std::int64_t> sorted = out.taken;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] != static_cast<std::int64_t>(i)) {
      return describe(schedule) + ": value " + std::to_string(i) +
             " lost or duplicated";
    }
  }
  // At op granularity top advances monotonically, so successful steals must
  // observe values in strictly increasing (FIFO) order across all thieves.
  for (std::size_t i = 1; i < out.steals.size(); ++i) {
    if (out.steals[i] <= out.steals[i - 1]) {
      return describe(schedule) + ": steals out of FIFO order";
    }
  }
  return {};
}

// Depth-first enumeration of every merge of the scripts. Stops at the first
// failing schedule (its description comes back through `error`).
void enumerate(const Scripts& scripts, std::size_t initial_capacity,
               std::size_t pushes, std::vector<std::size_t>& pc,
               std::vector<std::size_t>& schedule, std::size_t& count,
               std::string& error) {
  if (!error.empty()) return;
  bool leaf = true;
  for (std::size_t i = 0; i < scripts.size(); ++i) {
    if (pc[i] < scripts[i].size()) {
      leaf = false;
      ++pc[i];
      schedule.push_back(i);
      enumerate(scripts, initial_capacity, pushes, pc, schedule, count, error);
      schedule.pop_back();
      --pc[i];
      if (!error.empty()) return;
    }
  }
  if (leaf) {
    ++count;
    error = check_schedule(scripts, schedule, initial_capacity, pushes);
  }
}

// Run the exhaustive sweep for one script set and report the first failure.
void exhaustive(const Scripts& scripts, std::size_t initial_capacity) {
  std::size_t pushes = 0;
  for (Op op : scripts[0]) pushes += op == Op::kPush ? 1 : 0;
  std::vector<std::size_t> pc(scripts.size(), 0);
  std::vector<std::size_t> schedule;
  std::size_t count = 0;
  std::string error;
  enumerate(scripts, initial_capacity, pushes, pc, schedule, count, error);
  EXPECT_TRUE(error.empty()) << error;
  // Sanity: the sweep really enumerated a non-trivial schedule space.
  EXPECT_GT(count, 100u);
}

constexpr Op P = Op::kPush;
constexpr Op O = Op::kPop;
constexpr Op S = Op::kSteal;

TEST(LitmusDequeExhaustive, MixedPushPopWithTwoThieves) {
  // 12!/(8!·2!·2!) = 2970 schedules; push/pop interleaved so the
  // bottom == top single-item race point is crossed many times.
  exhaustive({{P, P, O, P, O, O, P, O}, {S, S}, {S, S}}, 8);
}

TEST(LitmusDequeExhaustive, ThreeThievesOutnumberItems) {
  // 6 steal attempts against 3 pushes: most schedules hit empty/raced
  // steals; 12!/(6!·2!·2!·2!) = 83160 schedules.
  exhaustive({{P, O, P, O, P, O}, {S, S}, {S, S}, {S, S}}, 8);
}

TEST(LitmusDequeExhaustive, GrowthUnderInterleavedSteals) {
  // Initial capacity 2, six pushes: every schedule crosses at least one
  // doubling (2 -> 4 -> 8 depending on how many steals land first), so the
  // grow-copy window is checked against every steal interleaving.
  exhaustive({{P, P, P, P, P, P, O, O}, {S, S}, {S, S}}, 2);
}

// ---------------------------------------------------------------------------
// Deterministic single-thread boundary cases (bottom == top paths).
// ---------------------------------------------------------------------------

TEST(LitmusDequeBoundary, PopOnEmptyRestoresBottom) {
  WorkStealDeque<std::int64_t> deque(4);
  std::int64_t v = -1;
  EXPECT_FALSE(deque.pop(v));
  // The failed pop decremented and restored bottom; the deque must still
  // accept and return items.
  deque.push(7);
  ASSERT_TRUE(deque.pop(v));
  EXPECT_EQ(v, 7);
  EXPECT_FALSE(deque.pop(v));
}

TEST(LitmusDequeBoundary, LastItemPopWinsCasAgainstNobody) {
  // bottom == top + 1: pop takes the CAS branch even with no thief racing;
  // the item must come back exactly once and the deque end empty.
  WorkStealDeque<std::int64_t> deque(4);
  deque.push(42);
  std::int64_t v = -1;
  ASSERT_TRUE(deque.pop(v));
  EXPECT_EQ(v, 42);
  EXPECT_FALSE(deque.steal(v));
  EXPECT_FALSE(deque.pop(v));
  EXPECT_TRUE(deque.empty_hint());
}

TEST(LitmusDequeBoundary, StealToEmptyThenReuse) {
  WorkStealDeque<std::int64_t> deque(4);
  deque.push(1);
  std::int64_t v = -1;
  ASSERT_TRUE(deque.steal(v));
  EXPECT_EQ(v, 1);
  EXPECT_FALSE(deque.pop(v));
  EXPECT_FALSE(deque.steal(v));
  deque.push(2);
  ASSERT_TRUE(deque.pop(v));
  EXPECT_EQ(v, 2);
}

TEST(LitmusDequeBoundary, LifoPopFifoStealAcrossGrowth) {
  WorkStealDeque<std::int64_t> deque(2);
  for (std::int64_t i = 0; i < 9; ++i) deque.push(i);
  EXPECT_EQ(deque.capacity(), 16u);  // 2 -> 4 -> 8 -> 16
  std::int64_t v = -1;
  ASSERT_TRUE(deque.steal(v));
  EXPECT_EQ(v, 0);  // FIFO from the top
  ASSERT_TRUE(deque.pop(v));
  EXPECT_EQ(v, 8);  // LIFO from the bottom
  for (std::int64_t expect = 7; expect >= 1; --expect) {
    ASSERT_TRUE(deque.pop(v));
    EXPECT_EQ(v, expect);
  }
  EXPECT_FALSE(deque.pop(v));
}

TEST(LitmusDequeBoundary, IndexWraparound) {
  // Push/pop far past the capacity so bottom/top wrap the ring mask many
  // times while the live window stays small.
  WorkStealDeque<std::int64_t> deque(4);
  std::int64_t v = -1;
  for (std::int64_t i = 0; i < 64; ++i) {
    deque.push(i);
    deque.push(i + 1000);
    ASSERT_TRUE(deque.steal(v));
    EXPECT_EQ(v, i);
    ASSERT_TRUE(deque.pop(v));
    EXPECT_EQ(v, i + 1000);
  }
  EXPECT_FALSE(deque.pop(v));
  EXPECT_EQ(deque.capacity(), 4u);  // never grew
}

// ---------------------------------------------------------------------------
// Layer 2: racing-thread stress (the TSan target).
// ---------------------------------------------------------------------------

TEST(LitmusDequeStress, SixteenStealersThroughRepeatedGrowth) {
  constexpr int kStealers = 16;
  constexpr std::int64_t kItems = 20000;
  // Start at the minimum capacity so the first pushes already double it
  // while the thieves below are live: growth happens mid-steal, not in a
  // quiet single-threaded warm-up.
  WorkStealDeque<std::int64_t> deque(2);
  std::atomic<bool> done{false};
  std::vector<std::vector<std::int64_t>> stolen(kStealers);
  std::vector<std::thread> thieves;
  thieves.reserve(kStealers);
  for (int s = 0; s < kStealers; ++s) {
    thieves.emplace_back([&deque, &done, &stolen, s] {
      std::int64_t v = -1;
      while (!done.load(std::memory_order_acquire)) {
        if (deque.steal(v)) stolen[static_cast<std::size_t>(s)].push_back(v);
      }
      while (deque.steal(v)) stolen[static_cast<std::size_t>(s)].push_back(v);
    });
  }

  std::vector<std::int64_t> popped;
  std::int64_t next = 0;
  while (next < kItems) {
    // Bursts much larger than the current capacity force doublings while
    // the 16 thieves are actively stealing from the ring being retired.
    const std::int64_t burst = std::min<std::int64_t>(
        kItems - next, static_cast<std::int64_t>(2 * deque.capacity() + 17));
    for (std::int64_t i = 0; i < burst; ++i) deque.push(next++);
    std::int64_t v = -1;
    if (deque.pop(v)) popped.push_back(v);
  }
  std::int64_t v = -1;
  while (deque.pop(v)) popped.push_back(v);
  done.store(true, std::memory_order_release);
  for (std::thread& t : thieves) t.join();

  // The owner pushes in tight loops, so the live window outruns any
  // realistic steal rate at least once and the ring must have doubled.
  EXPECT_GT(deque.capacity(), 2u);

  // Exactly-once across owner and all 16 thieves.
  std::vector<std::int64_t> all = popped;
  for (const auto& s : stolen) all.insert(all.end(), s.begin(), s.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kItems));
  std::sort(all.begin(), all.end());
  for (std::int64_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(all[static_cast<std::size_t>(i)], i) << "value lost or duplicated";
  }
  // Each thief's private view must also be FIFO (top is monotonic).
  for (const auto& s : stolen) {
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  }
}

TEST(LitmusDequeStress, SingleItemPopVersusSteal) {
  // The bottom == top race: one item at a time, owner pop racing thief
  // steals. Every item must be taken exactly once, by exactly one side.
  constexpr int kThieves = 4;
  constexpr std::int64_t kRounds = 20000;
  WorkStealDeque<std::int64_t> deque(2);
  std::atomic<bool> done{false};
  std::vector<std::int64_t> counts(kThieves, 0);
  std::vector<std::vector<std::int64_t>> stolen(kThieves);
  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int s = 0; s < kThieves; ++s) {
    thieves.emplace_back([&deque, &done, &stolen, s] {
      std::int64_t v = -1;
      while (!done.load(std::memory_order_acquire)) {
        if (deque.steal(v)) stolen[static_cast<std::size_t>(s)].push_back(v);
      }
      while (deque.steal(v)) stolen[static_cast<std::size_t>(s)].push_back(v);
    });
  }

  std::vector<std::int64_t> popped;
  for (std::int64_t i = 0; i < kRounds; ++i) {
    deque.push(i);
    std::int64_t v = -1;
    if (deque.pop(v)) popped.push_back(v);
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : thieves) t.join();

  std::vector<std::int64_t> all = popped;
  for (const auto& s : stolen) all.insert(all.end(), s.begin(), s.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kRounds));
  std::sort(all.begin(), all.end());
  for (std::int64_t i = 0; i < kRounds; ++i) {
    ASSERT_EQ(all[static_cast<std::size_t>(i)], i) << "double-take at " << i;
  }
}

}  // namespace
}  // namespace ldla
