#include "core/gemm/dgemm.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "baselines/naive.hpp"
#include "core/gemm/count_matrix.hpp"
#include "core/gemm/macro.hpp"
#include "sim/rng.hpp"
#include "sim/wright_fisher.hpp"
#include "util/contract.hpp"

namespace ldla {
namespace {

std::vector<double> random_doubles(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(count);
  for (auto& v : out) v = rng.next_double() * 2.0 - 1.0;
  return out;
}

void reference_nt(std::size_t m, std::size_t n, std::size_t k,
                  const double* a, const double* b, double* c) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += a[i * k + kk] * b[j * k + kk];
      }
      c[i * n + j] += acc;
    }
  }
}

TEST(Dgemm, MatchesTripleLoopAcrossShapes) {
  for (const auto& [m, n, k] :
       std::vector<std::tuple<std::size_t, std::size_t, std::size_t>>{
           {1, 1, 1}, {4, 8, 16}, {5, 9, 7}, {17, 23, 65}, {33, 40, 300},
           {12, 100, 4}}) {
    const auto a = random_doubles(m * k, m + k);
    const auto b = random_doubles(n * k, n + k + 1);
    std::vector<double> c(m * n, 0.0), want(m * n, 0.0);
    dgemm_nt(m, n, k, a.data(), k, b.data(), k, c.data(), n);
    reference_nt(m, n, k, a.data(), b.data(), want.data());
    for (std::size_t i = 0; i < m * n; ++i) {
      ASSERT_NEAR(c[i], want[i], 1e-9 * static_cast<double>(k))
          << m << "x" << n << "x" << k << " at " << i;
    }
  }
}

TEST(Dgemm, AccumulatesIntoC) {
  const std::size_t m = 6, n = 10, k = 20;
  const auto a = random_doubles(m * k, 1);
  const auto b = random_doubles(n * k, 2);
  std::vector<double> c(m * n, 0.0);
  dgemm_nt(m, n, k, a.data(), k, b.data(), k, c.data(), n);
  const std::vector<double> once = c;
  dgemm_nt(m, n, k, a.data(), k, b.data(), k, c.data(), n);
  for (std::size_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(c[i], 2.0 * once[i], 1e-12);
  }
}

TEST(Dgemm, BlockingParametersDoNotChangeResult) {
  const std::size_t m = 30, n = 26, k = 120;
  const auto a = random_doubles(m * k, 3);
  const auto b = random_doubles(n * k, 4);
  std::vector<double> want(m * n, 0.0);
  reference_nt(m, n, k, a.data(), b.data(), want.data());

  for (const auto& [kc, mc, nc] :
       std::vector<std::tuple<std::size_t, std::size_t, std::size_t>>{
           {1, 4, 8}, {7, 12, 16}, {1000, 1000, 1000}}) {
    DgemmPlan plan;
    plan.kc = kc;
    plan.mc = mc;
    plan.nc = nc;
    std::vector<double> c(m * n, 0.0);
    dgemm_nt(m, n, k, a.data(), k, b.data(), k, c.data(), n, plan);
    for (std::size_t i = 0; i < m * n; ++i) {
      ASSERT_NEAR(c[i], want[i], 1e-9 * static_cast<double>(k));
    }
  }
}

TEST(Dgemm, ExpandedBinaryMatrixReproducesPopcountCounts) {
  // The "LD is DLA in disguise" identity: dgemm on the 0.0/1.0 expansion
  // of G computes exactly the popcount-GEMM count matrix.
  WrightFisherParams p;
  p.n_snps = 25;
  p.n_samples = 130;
  p.seed = 5;
  const BitMatrix g = simulate_genotypes(p);
  const std::size_t n = g.snps();
  const std::size_t k = g.samples();

  std::vector<double> dense(n * k);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t i = 0; i < k; ++i) {
      dense[s * k + i] = g.get(s, i) ? 1.0 : 0.0;
    }
  }
  std::vector<double> h(n * n, 0.0);
  dgemm_nt(n, n, k, dense.data(), k, dense.data(), k, h.data(), n);

  CountMatrix counts(n, n);
  gemm_count(g.view(), g.view(), counts.ref());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_EQ(static_cast<std::uint32_t>(h[i * n + j] + 0.5),
                counts(i, j))
          << i << "," << j;
    }
  }
}

TEST(Dgemm, RejectsBadLeadingDimensions) {
  std::vector<double> a(4), b(4), c(4);
  EXPECT_THROW(dgemm_nt(2, 2, 2, a.data(), 1, b.data(), 2, c.data(), 2),
               ContractViolation);
  EXPECT_THROW(dgemm_nt(2, 2, 2, a.data(), 2, b.data(), 2, c.data(), 1),
               ContractViolation);
}

TEST(Dgemm, EmptyDimensionsAreNoops) {
  std::vector<double> c(4, 7.0);
  dgemm_nt(0, 2, 2, nullptr, 2, nullptr, 2, c.data(), 2);
  dgemm_nt(2, 0, 2, nullptr, 2, nullptr, 2, c.data(), 2);
  dgemm_nt(2, 2, 0, nullptr, 2, nullptr, 2, c.data(), 2);
  for (const double v : c) EXPECT_EQ(v, 7.0);
}

}  // namespace
}  // namespace ldla
