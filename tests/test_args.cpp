#include "util/args.hpp"

#include <array>

#include <gtest/gtest.h>

#include "util/contract.hpp"

namespace ldla {
namespace {

ArgParser make_parser() {
  ArgParser p("prog", "test program");
  p.add_flag("verbose", "print more");
  p.add_option("snps", "number of SNPs", "100");
  p.add_option("rate", "mutation rate", "0.5");
  p.add_option("name", "dataset name", "");
  return p;
}

TEST(ArgParser, DefaultsApplyWithoutArguments) {
  ArgParser p = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_FALSE(p.flag("verbose"));
  EXPECT_EQ(p.integer("snps"), 100);
  EXPECT_DOUBLE_EQ(p.real("rate"), 0.5);
  EXPECT_EQ(p.str("name"), "");
}

TEST(ArgParser, ParsesSeparateValueForm) {
  ArgParser p = make_parser();
  const char* argv[] = {"prog", "--snps", "42", "--verbose"};
  ASSERT_TRUE(p.parse(4, argv));
  EXPECT_EQ(p.integer("snps"), 42);
  EXPECT_TRUE(p.flag("verbose"));
}

TEST(ArgParser, ParsesEqualsForm) {
  ArgParser p = make_parser();
  const char* argv[] = {"prog", "--rate=0.125", "--name=foo"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_DOUBLE_EQ(p.real("rate"), 0.125);
  EXPECT_EQ(p.str("name"), "foo");
}

TEST(ArgParser, CollectsPositionals) {
  ArgParser p = make_parser();
  const char* argv[] = {"prog", "input.ms", "--snps", "5", "out.csv"};
  ASSERT_TRUE(p.parse(5, argv));
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "input.ms");
  EXPECT_EQ(p.positional()[1], "out.csv");
}

TEST(ArgParser, RejectsUnknownOption) {
  ArgParser p = make_parser();
  const char* argv[] = {"prog", "--bogus"};
  EXPECT_THROW(p.parse(2, argv), Error);
}

TEST(ArgParser, RejectsMissingValue) {
  ArgParser p = make_parser();
  const char* argv[] = {"prog", "--snps"};
  EXPECT_THROW(p.parse(2, argv), Error);
}

TEST(ArgParser, RejectsValueOnFlag) {
  ArgParser p = make_parser();
  const char* argv[] = {"prog", "--verbose=yes"};
  EXPECT_THROW(p.parse(2, argv), Error);
}

TEST(ArgParser, RejectsNonNumericInteger) {
  ArgParser p = make_parser();
  const char* argv[] = {"prog", "--snps", "12abc"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_THROW((void)p.integer("snps"), Error);
}

TEST(ArgParser, HelpShortCircuits) {
  ArgParser p = make_parser();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(ArgParser, UsageListsOptions) {
  ArgParser p = make_parser();
  const std::string u = p.usage();
  EXPECT_NE(u.find("--snps"), std::string::npos);
  EXPECT_NE(u.find("--verbose"), std::string::npos);
  EXPECT_NE(u.find("default: 100"), std::string::npos);
}

TEST(ArgParser, RejectsDuplicateRegistration) {
  ArgParser p("prog", "x");
  p.add_flag("a", "first");
  EXPECT_THROW(p.add_flag("a", "again"), ContractViolation);
  EXPECT_THROW(p.add_option("a", "again", "1"), ContractViolation);
}

TEST(ArgParser, LookupOfUnregisteredNameThrows) {
  ArgParser p = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_THROW((void)p.flag("nope"), ContractViolation);
  EXPECT_THROW((void)p.str("nope"), ContractViolation);
}

}  // namespace
}  // namespace ldla
