// Kernel registry + generated-variant correctness + tuning-cache tests.
//
// The registry (dispatch.cpp) concatenates the per-TU variant tables that
// kernels_*.cpp instantiate from the kernel_gen.hpp templates; every
// variant must be bit-identical to the scalar semiring definition over the
// adversarial panel shapes (ragged kc, unaligned ldc, saturated/empty
// operands), or the tuner could silently select a wrong kernel.

#include "core/gemm/kernel.hpp"

#include <bit>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/naive.hpp"
#include "core/gemm/macro.hpp"
#include "core/gemm/packing.hpp"
#include "core/gemm/tune_cache.hpp"
#include "sim/rng.hpp"
#include "util/aligned_buffer.hpp"
#include "util/contract.hpp"

namespace ldla {
namespace {

BitMatrix random_matrix(std::size_t snps, std::size_t samples,
                        std::uint64_t seed, double density = 0.4) {
  Rng rng(seed);
  BitMatrix m(snps, samples);
  for (std::size_t s = 0; s < snps; ++s) {
    for (std::size_t b = 0; b < samples; ++b) {
      if (rng.next_bool(density)) m.set(s, b, true);
    }
  }
  return m;
}

BitMatrix constant_matrix(std::size_t snps, std::size_t samples, bool value) {
  BitMatrix m(snps, samples);
  if (value) {
    for (std::size_t s = 0; s < snps; ++s) {
      for (std::size_t b = 0; b < samples; ++b) m.set(s, b, true);
    }
  }
  return m;
}

TEST(KernelRegistry, GeometryInvariants) {
  std::set<std::tuple<KernelArch, std::size_t, std::size_t, std::size_t>> ids;
  std::set<std::string> names;
  std::set<KernelArch> defaults;
  for (const KernelInfo& k : kernel_registry()) {
    EXPECT_NE(k.fn, nullptr) << k.name;
    EXPECT_NE(k.ku, 0u) << k.name;
    EXPECT_EQ(64 % k.mr, 0u) << k.name;  // sparse transpose gather contract
    EXPECT_EQ(64 % k.nr, 0u) << k.name;
    EXPECT_LE(k.mr * k.nr, 256u) << k.name;  // drivers' edge-tile scratch
    EXPECT_TRUE(ids.emplace(k.arch, k.mr, k.nr, k.ku).second)
        << "duplicate identity: " << k.name;
    EXPECT_TRUE(names.emplace(k.name).second) << "duplicate name: " << k.name;
    if (k.family_default) {
      EXPECT_TRUE(defaults.insert(k.arch).second)
          << "two family defaults for one arch: " << k.name;
    }
  }
  // Every family in the registry carries exactly one default geometry.
  for (const KernelInfo& k : kernel_registry()) {
    EXPECT_EQ(defaults.count(k.arch), 1u) << kernel_arch_name(k.arch);
  }
}

TEST(KernelRegistry, GridBreadthOnThisMachine) {
  const std::size_t n = available_kernel_variants().size();
  if (kernel_available(KernelArch::kAvx512)) {
    EXPECT_GE(n, 12u);
  } else if (kernel_available(KernelArch::kAvx2)) {
    EXPECT_GE(n, 8u);
  } else {
    EXPECT_GE(n, 5u);  // scalar grid + swar are always available
  }
}

TEST(KernelRegistry, LookupsRoundTrip) {
  for (const KernelInfo* k : available_kernel_variants()) {
    const KernelInfo* by_geo = find_kernel(k->arch, k->mr, k->nr, k->ku);
    ASSERT_NE(by_geo, nullptr);
    EXPECT_EQ(by_geo, k);
    const KernelInfo* by_name = find_kernel(std::string_view(k->name));
    ASSERT_NE(by_name, nullptr);
    EXPECT_EQ(by_name, k);
  }
  EXPECT_EQ(find_kernel(KernelArch::kScalar, 3, 5, 7), nullptr);
  EXPECT_EQ(find_kernel("no-such-variant"), nullptr);
  const KernelInfo& def = kernel_info(KernelArch::kScalar);
  EXPECT_TRUE(def.family_default);
}

TEST(KernelRegistry, KernelForPlanRejectsUnknownGeometry) {
  GemmPlan plan;  // defaults name the scalar family default
  const KernelInfo& k = kernel_for_plan(plan);
  EXPECT_EQ(k.arch, KernelArch::kScalar);
  plan.mr = 3;
  EXPECT_THROW(kernel_for_plan(plan), ContractViolation);
}

// Direct micro-kernel invocation against the semiring definition, per
// variant, over ragged kc (padded to each variant's ku), unaligned ldc,
// and saturated / empty operands.
class VariantOracle : public ::testing::TestWithParam<const KernelInfo*> {};

void run_direct_oracle(const KernelInfo& k, const BitMatrix& a,
                       const BitMatrix& b, std::size_t ldc_extra) {
  const std::size_t n_words = a.words_per_snp();
  const std::size_t kcp = (n_words + k.ku - 1) / k.ku * k.ku;
  AlignedBuffer<std::uint64_t> ap(packed_panel_words(k.mr, n_words, k.mr,
                                                     k.ku));
  AlignedBuffer<std::uint64_t> bp(packed_panel_words(k.nr, n_words, k.nr,
                                                     k.ku));
  pack_panel(a.view(), 0, k.mr, 0, n_words, k.mr, k.ku, ap.data());
  pack_panel(b.view(), 0, k.nr, 0, n_words, k.nr, k.ku, bp.data());

  const std::size_t ldc = k.nr + ldc_extra;
  std::vector<std::uint32_t> c(k.mr * ldc, 7);  // nonzero: beta=1 semantics
  k.fn(kcp, ap.data(), bp.data(), c.data(), ldc);

  for (std::size_t i = 0; i < k.mr; ++i) {
    for (std::size_t j = 0; j < k.nr; ++j) {
      std::uint64_t want = 0;
      if (i < a.snps() && j < b.snps()) {
        for (std::size_t w = 0; w < n_words; ++w) {
          want += static_cast<std::uint64_t>(
              std::popcount(a.row_data(i)[w] & b.row_data(j)[w]));
        }
      }
      ASSERT_EQ(c[i * ldc + j], want + 7)
          << k.name << " at (" << i << ", " << j << ") kc=" << kcp
          << " ldc=" << ldc;
    }
  }
  // Columns beyond nr must be untouched (the ldc contract).
  for (std::size_t i = 0; i < k.mr; ++i) {
    for (std::size_t j = k.nr; j < ldc; ++j) {
      ASSERT_EQ(c[i * ldc + j], 7u) << k.name << " wrote past nr";
    }
  }
}

TEST_P(VariantOracle, BitIdenticalToScalarSemiring) {
  const KernelInfo& k = *GetParam();
  // Ragged kc sweep: 1, a non-power shape, and a multi-chunk extent, each
  // padded up to the variant's ku by the packer.
  for (const std::size_t words : {std::size_t{1}, std::size_t{3} * k.ku,
                                  std::size_t{8} * k.ku + 1}) {
    const std::size_t samples = words * 64 - 17;  // ragged last word
    for (const std::size_t ldc_extra : {std::size_t{0}, std::size_t{3}}) {
      run_direct_oracle(k, random_matrix(k.mr, samples, 1000 + words),
                        random_matrix(k.nr, samples, 2000 + words),
                        ldc_extra);
    }
  }
  // Saturated and empty panels: the positional accumulators of the wider
  // kernels must survive all-ones rows without lane overflow.
  const std::size_t samples = 5 * 64 * k.ku;
  run_direct_oracle(k, constant_matrix(k.mr, samples, true),
                    constant_matrix(k.nr, samples, true), 0);
  run_direct_oracle(k, constant_matrix(k.mr, samples, false),
                    constant_matrix(k.nr, samples, false), 0);
  run_direct_oracle(k, constant_matrix(k.mr, samples, true),
                    random_matrix(k.nr, samples, 77), 0);
}

// The same variants driven through the full macro loop (packing, blocking,
// edge tiles) with the registry geometry forced via GemmConfig.
TEST_P(VariantOracle, GemmCountMatchesNaive) {
  const KernelInfo& k = *GetParam();
  const BitMatrix a = random_matrix(2 * k.mr + 3, 700, 5);
  const BitMatrix b = random_matrix(2 * k.nr + 5, 700, 6);
  GemmConfig cfg;
  cfg.arch = k.arch;
  cfg.mr = k.mr;
  cfg.nr = k.nr;
  cfg.ku = k.ku;
  cfg.kc_words = 4;  // force multiple k panels
  CountMatrix c(a.snps(), b.snps());
  gemm_count(a.view(), b.view(), c.ref(), cfg);
  const CountMatrix expected = naive_count_matrix(a, b);
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = 0; j < c.cols(); ++j) {
      ASSERT_EQ(c(i, j), expected(i, j))
          << k.name << " at (" << i << ", " << j << ")";
    }
  }
}

std::string variant_test_name(
    const ::testing::TestParamInfo<const KernelInfo*>& info) {
  std::string name = info.param->name;
  for (char& ch : name) {
    if (std::isalnum(static_cast<unsigned char>(ch)) == 0) ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllAvailable, VariantOracle,
                         ::testing::ValuesIn(available_kernel_variants()),
                         variant_test_name);

// --------------------------------------------------------------------------
// Tuning cache (explicit-path seams; the env-selected path is the same code
// behind a memo).

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(TuneCache, RoundTripAndByteIdentity) {
  const std::string path = ::testing::TempDir() + "/ldla_tune_rt.json";
  std::remove(path.c_str());

  TuneCacheEntry e;
  e.variant = kernel_info(KernelArch::kScalar).name;
  e.kc_words = 128;
  e.mc = 64;
  ASSERT_TRUE(tune_cache_store_at(path, 100, e));

  const auto hit = tune_cache_lookup_at(path, 100);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->variant, e.variant);
  EXPECT_EQ(hit->kc_words, e.kc_words);
  EXPECT_EQ(hit->mc, e.mc);

  // Same shape bucket (ceil-log2): 100 and 127 share a decision; 1000 does
  // not and must miss.
  EXPECT_EQ(tune_shape_bucket(100), tune_shape_bucket(127));
  EXPECT_TRUE(tune_cache_lookup_at(path, 127).has_value());
  EXPECT_FALSE(tune_cache_lookup_at(path, 1000).has_value());

  // Re-storing the identical entry must not rewrite the file (the CI
  // byte-identity gate relies on this).
  const std::string before = slurp(path);
  ASSERT_FALSE(before.empty());
  ASSERT_TRUE(tune_cache_store_at(path, 100, e));
  EXPECT_EQ(slurp(path), before);

  // A second bucket coexists with the first.
  TuneCacheEntry e2 = e;
  e2.kc_words = 256;
  ASSERT_TRUE(tune_cache_store_at(path, 1000, e2));
  ASSERT_TRUE(tune_cache_lookup_at(path, 100).has_value());
  const auto hit2 = tune_cache_lookup_at(path, 1000);
  ASSERT_TRUE(hit2.has_value());
  EXPECT_EQ(hit2->kc_words, 256u);
  std::remove(path.c_str());
}

TEST(TuneCache, CorruptFileIsAnEmptyCache) {
  const std::string path = ::testing::TempDir() + "/ldla_tune_bad.json";
  for (const char* junk :
       {"", "not json at all", "{\"schema\": \"wrong\", \"entries\": {}}",
        "{\"schema\": \"ldla-tune-cache-v1\", \"cpu\": \"x\", \"entries\":",
        "{\"schema\": \"ldla-tune-cache-v1\"}trailing"}) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << junk;
    }
    EXPECT_FALSE(tune_cache_lookup_at(path, 100).has_value()) << junk;
    // A store over the corrupt file recovers it (re-tune, then persist).
    TuneCacheEntry e;
    e.variant = "scalar-4x4";
    e.kc_words = 64;
    e.mc = 32;
    ASSERT_TRUE(tune_cache_store_at(path, 100, e)) << junk;
    EXPECT_TRUE(tune_cache_lookup_at(path, 100).has_value()) << junk;
  }
  std::remove(path.c_str());
}

TEST(TuneCache, ForeignCpuSignatureIsIgnored) {
  const std::string path = ::testing::TempDir() + "/ldla_tune_cpu.json";
  TuneCacheEntry e;
  e.variant = "scalar-4x4";
  e.kc_words = 64;
  e.mc = 32;
  ASSERT_TRUE(tune_cache_store_at(path, 100, e));
  std::string text = slurp(path);
  // Swap the recorded signature for another machine's.
  const std::string sig = tune_cache_cpu_signature();
  const std::size_t at = text.find(sig.substr(0, 8));
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 8, "other-pc");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
  }
  EXPECT_FALSE(tune_cache_lookup_at(path, 100).has_value());
  std::remove(path.c_str());
}

TEST(TuneCache, ShapeBucketIsCeilLog2) {
  EXPECT_EQ(tune_shape_bucket(0), 0u);
  EXPECT_EQ(tune_shape_bucket(1), 0u);
  EXPECT_EQ(tune_shape_bucket(2), 1u);
  EXPECT_EQ(tune_shape_bucket(3), 2u);
  EXPECT_EQ(tune_shape_bucket(256), 8u);
  EXPECT_EQ(tune_shape_bucket(257), 9u);
}

// resolve_plan honors an explicit registry geometry and rejects one the
// build never compiled.
TEST(ResolvePlan, ExplicitGeometrySelectsVariant) {
  GemmConfig cfg;
  cfg.arch = KernelArch::kScalar;
  cfg.mr = 2;
  cfg.nr = 8;
  cfg.ku = 1;
  const GemmPlan plan = resolve_plan(cfg, 64);
  EXPECT_EQ(plan.mr, 2u);
  EXPECT_EQ(plan.nr, 8u);
  EXPECT_EQ(plan.ku, 1u);
  EXPECT_EQ(&kernel_for_plan(plan), find_kernel(KernelArch::kScalar, 2, 8, 1));
}

TEST(ResolvePlan, UnknownGeometryThrows) {
  GemmConfig cfg;
  cfg.arch = KernelArch::kScalar;
  cfg.mr = 3;
  cfg.nr = 4;
  cfg.ku = 1;
  EXPECT_THROW(resolve_plan(cfg, 64), ContractViolation);
  GemmConfig partial;
  partial.mr = 4;  // nr/ku unset: all-or-nothing contract
  EXPECT_THROW(resolve_plan(partial, 64), ContractViolation);
}

}  // namespace
}  // namespace ldla
