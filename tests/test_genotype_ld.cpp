#include "core/genotype_ld.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "sim/wright_fisher.hpp"
#include "util/contract.hpp"

namespace ldla {
namespace {

GenotypeMatrix test_genotypes(std::size_t snps, std::size_t haplotypes,
                              std::uint64_t seed) {
  WrightFisherParams p;
  p.n_snps = snps;
  p.n_samples = haplotypes;
  p.seed = seed;
  return GenotypeMatrix::from_haplotypes(simulate_genotypes(p));
}

TEST(GenotypeLd, MatchesPairwiseBaselineExactly) {
  const GenotypeMatrix g = test_genotypes(35, 200, 1);
  const LdMatrix gemm = genotype_ld_matrix(g);
  for (std::size_t i = 0; i < g.snps(); ++i) {
    for (std::size_t j = 0; j < g.snps(); ++j) {
      const double want = plink_like_r2_pair(g, i, j);
      const double got = gemm(i, j);
      if (std::isnan(want)) {
        EXPECT_TRUE(std::isnan(got)) << i << "," << j;
      } else {
        EXPECT_DOUBLE_EQ(got, want) << i << "," << j;
      }
    }
  }
}

TEST(GenotypeLd, ScanMatchesDense) {
  const GenotypeMatrix g = test_genotypes(41, 150, 2);
  const LdMatrix dense = genotype_ld_matrix(g);
  std::size_t covered = 0;
  genotype_ld_scan(
      g,
      [&](const LdTile& tile) {
        for (std::size_t i = 0; i < tile.rows; ++i) {
          for (std::size_t j = 0; j < tile.cols; ++j) {
            const double want = dense(tile.row_begin + i, j);
            const double got = tile.at(i, j);
            if (std::isnan(want)) {
              EXPECT_TRUE(std::isnan(got));
            } else {
              EXPECT_DOUBLE_EQ(got, want);
            }
            if (j <= tile.row_begin + i) ++covered;
          }
        }
      },
      {}, /*slab_rows=*/9);
  EXPECT_EQ(covered, ld_pair_count(g.snps()));
}

TEST(GenotypeLd, DiagonalIsOneForVariableSnps) {
  const GenotypeMatrix g = test_genotypes(20, 120, 3);
  const LdMatrix m = genotype_ld_matrix(g);
  for (std::size_t s = 0; s < g.snps(); ++s) {
    if (!std::isnan(m(s, s))) {
      EXPECT_DOUBLE_EQ(m(s, s), 1.0);
    }
  }
}

TEST(GenotypeLd, PlanesRoundTripDosages) {
  const GenotypeMatrix g = test_genotypes(10, 60, 4);
  const DosagePlanes planes = extract_dosage_planes(g);
  for (std::size_t s = 0; s < g.snps(); ++s) {
    for (std::size_t ind = 0; ind < g.individuals(); ++ind) {
      const unsigned d = g.dosage(s, ind);
      EXPECT_EQ(planes.lo.get(s, ind), d == 1);
      EXPECT_EQ(planes.hi.get(s, ind), d == 2);
    }
  }
}

TEST(GenotypeLd, RejectsMissingData) {
  GenotypeMatrix g(3, 10);
  for (std::size_t s = 0; s < 3; ++s) {
    for (std::size_t i = 0; i < 10; ++i) {
      g.set_dosage(s, i, static_cast<unsigned>((s + i) % 3));
    }
  }
  g.set_missing(1, 4);
  EXPECT_THROW((void)genotype_ld_matrix(g), ContractViolation);
  EXPECT_THROW((void)extract_dosage_planes(g), ContractViolation);
}

TEST(GenotypeLd, MonomorphicGenotypeIsNaN) {
  GenotypeMatrix g(2, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    g.set_dosage(0, i, 1);            // zero variance
    g.set_dosage(1, i, i % 2 ? 2 : 0);
  }
  const LdMatrix m = genotype_ld_matrix(g);
  EXPECT_TRUE(std::isnan(m(0, 1)));
  EXPECT_TRUE(std::isnan(m(0, 0)));
  EXPECT_DOUBLE_EQ(m(1, 1), 1.0);
}

TEST(GenotypeLd, EmptyMatrixIsSafe) {
  GenotypeMatrix g;
  const LdMatrix m = genotype_ld_matrix(g);
  EXPECT_EQ(m.rows(), 0u);
}

}  // namespace
}  // namespace ldla
