// Randomized GEMM differential fuzz: random shapes, densities, kernels and
// blocking parameters must always match the per-bit oracle.
//
// Parser robustness fuzzing lives in tests/fuzz/ (libFuzzer harnesses with
// a corpus-replay driver), registered with ctest as fuzz_*_replay.
#include <gtest/gtest.h>

#include "baselines/naive.hpp"
#include "core/gemm/macro.hpp"
#include "core/gemm/syrk.hpp"
#include "sim/rng.hpp"
#include "util/contract.hpp"

namespace ldla {
namespace {

BitMatrix random_matrix(Rng& rng, std::size_t snps, std::size_t samples,
                        double density) {
  BitMatrix m(snps, samples);
  for (std::size_t s = 0; s < snps; ++s) {
    for (std::size_t b = 0; b < samples; ++b) {
      if (rng.next_bool(density)) m.set(s, b, true);
    }
  }
  return m;
}

TEST(GemmFuzz, RandomShapesMatchOracle) {
  Rng rng(0xF00D);
  const auto kernels = available_kernels();
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t m = 1 + rng.next_below(40);
    const std::size_t n = 1 + rng.next_below(40);
    const std::size_t k = 1 + rng.next_below(700);
    const double density = 0.05 + 0.9 * rng.next_double();
    const BitMatrix a = random_matrix(rng, m, k, density);
    const BitMatrix b = random_matrix(rng, n, k, density);
    const CountMatrix expected = naive_count_matrix(a, b);

    GemmConfig cfg;
    cfg.arch = kernels[rng.next_below(kernels.size())];
    cfg.kc_words = 1 + rng.next_below(64);
    cfg.mc = 1 + rng.next_below(48);
    cfg.nc = 1 + rng.next_below(48);
    cfg.packing = rng.next_bool(0.9);

    CountMatrix c(m, n);
    gemm_count(a.view(), b.view(), c.ref(), cfg);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        ASSERT_EQ(c(i, j), expected(i, j))
            << "trial " << trial << " kernel "
            << kernel_arch_name(cfg.arch) << " m=" << m << " n=" << n
            << " k=" << k << " kc=" << cfg.kc_words << " mc=" << cfg.mc
            << " nc=" << cfg.nc << " at (" << i << "," << j << ")";
      }
    }
  }
}

TEST(GemmFuzz, RandomSymmetricShapesMatchOracle) {
  Rng rng(0xBEEF);
  const auto kernels = available_kernels();
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 1 + rng.next_below(48);
    const std::size_t k = 1 + rng.next_below(500);
    const BitMatrix g =
        random_matrix(rng, n, k, 0.05 + 0.9 * rng.next_double());
    const CountMatrix expected = naive_count_matrix(g, g);

    GemmConfig cfg;
    cfg.arch = kernels[rng.next_below(kernels.size())];
    cfg.kc_words = 1 + rng.next_below(48);
    cfg.mc = 1 + rng.next_below(32);
    cfg.nc = 1 + rng.next_below(32);

    CountMatrix c(n, n);
    syrk_count(g.view(), c.ref(), cfg);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        ASSERT_EQ(c(i, j), expected(i, j))
            << "trial " << trial << " n=" << n << " k=" << k << " at (" << i
            << "," << j << ")";
      }
    }
  }
}

}  // namespace
}  // namespace ldla
