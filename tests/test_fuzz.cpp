// Randomized differential and robustness ("fuzz") suites.
//
// 1. GEMM differential fuzz: random shapes, densities, kernels and blocking
//    parameters must always match the per-bit oracle.
// 2. Parser robustness: randomly mutated inputs either parse or throw
//    ParseError/Error — never crash, never return corrupt matrices.
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "baselines/naive.hpp"
#include "core/gemm/macro.hpp"
#include "core/gemm/syrk.hpp"
#include "io/ms_format.hpp"
#include "io/vcf_lite.hpp"
#include "sim/rng.hpp"
#include "util/contract.hpp"

namespace ldla {
namespace {

BitMatrix random_matrix(Rng& rng, std::size_t snps, std::size_t samples,
                        double density) {
  BitMatrix m(snps, samples);
  for (std::size_t s = 0; s < snps; ++s) {
    for (std::size_t b = 0; b < samples; ++b) {
      if (rng.next_bool(density)) m.set(s, b, true);
    }
  }
  return m;
}

TEST(GemmFuzz, RandomShapesMatchOracle) {
  Rng rng(0xF00D);
  const auto kernels = available_kernels();
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t m = 1 + rng.next_below(40);
    const std::size_t n = 1 + rng.next_below(40);
    const std::size_t k = 1 + rng.next_below(700);
    const double density = 0.05 + 0.9 * rng.next_double();
    const BitMatrix a = random_matrix(rng, m, k, density);
    const BitMatrix b = random_matrix(rng, n, k, density);
    const CountMatrix expected = naive_count_matrix(a, b);

    GemmConfig cfg;
    cfg.arch = kernels[rng.next_below(kernels.size())];
    cfg.kc_words = 1 + rng.next_below(64);
    cfg.mc = 1 + rng.next_below(48);
    cfg.nc = 1 + rng.next_below(48);
    cfg.packing = rng.next_bool(0.9);

    CountMatrix c(m, n);
    gemm_count(a.view(), b.view(), c.ref(), cfg);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        ASSERT_EQ(c(i, j), expected(i, j))
            << "trial " << trial << " kernel "
            << kernel_arch_name(cfg.arch) << " m=" << m << " n=" << n
            << " k=" << k << " kc=" << cfg.kc_words << " mc=" << cfg.mc
            << " nc=" << cfg.nc << " at (" << i << "," << j << ")";
      }
    }
  }
}

TEST(GemmFuzz, RandomSymmetricShapesMatchOracle) {
  Rng rng(0xBEEF);
  const auto kernels = available_kernels();
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 1 + rng.next_below(48);
    const std::size_t k = 1 + rng.next_below(500);
    const BitMatrix g =
        random_matrix(rng, n, k, 0.05 + 0.9 * rng.next_double());
    const CountMatrix expected = naive_count_matrix(g, g);

    GemmConfig cfg;
    cfg.arch = kernels[rng.next_below(kernels.size())];
    cfg.kc_words = 1 + rng.next_below(48);
    cfg.mc = 1 + rng.next_below(32);
    cfg.nc = 1 + rng.next_below(32);

    CountMatrix c(n, n);
    syrk_count(g.view(), c.ref(), cfg);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        ASSERT_EQ(c(i, j), expected(i, j))
            << "trial " << trial << " n=" << n << " k=" << k << " at (" << i
            << "," << j << ")";
      }
    }
  }
}

// --- parser robustness -------------------------------------------------------

std::string valid_ms_text(Rng& rng) {
  const std::size_t segsites = 1 + rng.next_below(20);
  const std::size_t samples = 1 + rng.next_below(10);
  std::ostringstream out;
  out << "ms " << samples << " 1\n1 2 3\n\n//\nsegsites: " << segsites
      << "\npositions:";
  for (std::size_t s = 0; s < segsites; ++s) {
    out << " " << static_cast<double>(s) / static_cast<double>(segsites);
  }
  out << "\n";
  for (std::size_t h = 0; h < samples; ++h) {
    for (std::size_t s = 0; s < segsites; ++s) {
      out << (rng.next_bool(0.5) ? '1' : '0');
    }
    out << "\n";
  }
  out << "\n";
  return out.str();
}

TEST(ParserFuzz, MutatedMsNeverCrashes) {
  Rng rng(0xABCD);
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::string text = valid_ms_text(rng);
    // Apply a handful of random byte mutations.
    const std::size_t mutations = 1 + rng.next_below(4);
    for (std::size_t m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.next_below(text.size());
      const char c = static_cast<char>(32 + rng.next_below(95));
      text[pos] = c;
    }
    std::istringstream in(text);
    try {
      const auto reps = parse_ms(in);
      for (const auto& rep : reps) {
        // Any accepted matrix must satisfy the packing invariant.
        EXPECT_TRUE(rep.genotypes.padding_is_clean());
        EXPECT_EQ(rep.positions.size(), rep.genotypes.snps());
      }
      ++parsed;
    } catch (const Error&) {
      ++rejected;
    }
  }
  // Sanity: mutations must actually trigger both outcomes.
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

std::string valid_vcf_text(Rng& rng) {
  const std::size_t snps = 1 + rng.next_below(10);
  const std::size_t inds = 1 + rng.next_below(6);
  std::ostringstream out;
  out << "##fileformat=VCFv4.2\n#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\t"
         "INFO\tFORMAT";
  for (std::size_t i = 0; i < inds; ++i) out << "\tS" << i;
  out << "\n";
  for (std::size_t s = 0; s < snps; ++s) {
    out << "1\t" << (100 + s * 10) << "\trs" << s << "\tA\tG\t.\tPASS\t.\tGT";
    for (std::size_t i = 0; i < inds; ++i) {
      out << '\t' << (rng.next_bool(0.5) ? '1' : '0') << '|'
          << (rng.next_bool(0.5) ? '1' : '0');
    }
    out << "\n";
  }
  return out.str();
}

TEST(ParserFuzz, MutatedVcfNeverCrashes) {
  Rng rng(0x1234);
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::string text = valid_vcf_text(rng);
    const std::size_t mutations = 1 + rng.next_below(4);
    for (std::size_t m = 0; m < mutations; ++m) {
      text[rng.next_below(text.size())] =
          static_cast<char>(32 + rng.next_below(95));
    }
    std::istringstream in(text);
    try {
      const VcfData d = parse_vcf(in, /*skip_invalid=*/rng.next_bool(0.5));
      EXPECT_TRUE(d.genotypes.padding_is_clean());
      EXPECT_EQ(d.positions.size(), d.genotypes.snps());
      ++parsed;
    } catch (const Error&) {
      ++rejected;
    }
  }
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(ParserFuzz, RandomGarbageIsRejectedOrEmpty) {
  Rng rng(0x9999);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text(rng.next_below(300), ' ');
    for (auto& c : text) c = static_cast<char>(rng.next_below(256));
    {
      std::istringstream in(text);
      try {
        (void)parse_ms(in);
      } catch (const Error&) {
      }
    }
    {
      std::istringstream in(text);
      try {
        (void)parse_vcf(in, true);
      } catch (const Error&) {
      }
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace ldla
