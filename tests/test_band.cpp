#include "core/band.hpp"

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "sim/wright_fisher.hpp"
#include "util/contract.hpp"

namespace ldla {
namespace {

BitMatrix test_matrix(std::size_t snps, std::size_t samples,
                      std::uint64_t seed, double switch_rate = 0.02) {
  WrightFisherParams p;
  p.n_snps = snps;
  p.n_samples = samples;
  p.seed = seed;
  p.switch_rate = switch_rate;
  return simulate_genotypes(p);
}

TEST(BandScan, CoversEveryBandPairExactlyOnce) {
  const BitMatrix g = test_matrix(83, 70, 1);
  const std::size_t w = 9;
  BandOptions opts;
  opts.slab_rows = 7;
  std::map<std::pair<std::size_t, std::size_t>, int> seen;
  ld_band_scan(g, w, [&](const LdTile& tile) {
    for (std::size_t i = 0; i < tile.rows; ++i) {
      for (std::size_t j = 0; j < tile.cols; ++j) {
        seen[{tile.row_begin + i, tile.col_begin + j}] += 1;
      }
    }
  }, opts);

  for (std::size_t i = 0; i < g.snps(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const auto key = std::make_pair(i, j);
      if (i - j <= w) {
        ASSERT_TRUE(seen.contains(key)) << i << "," << j;
        EXPECT_EQ(seen[key], 1) << i << "," << j;
      }
    }
  }
}

TEST(BandScan, ValuesMatchFullMatrix) {
  const BitMatrix g = test_matrix(50, 120, 2);
  const LdMatrix full = ld_matrix(g);
  BandOptions opts;
  opts.slab_rows = 8;
  ld_band_scan(g, 12, [&](const LdTile& tile) {
    for (std::size_t i = 0; i < tile.rows; ++i) {
      for (std::size_t j = 0; j < tile.cols; ++j) {
        const double want = full(tile.row_begin + i, tile.col_begin + j);
        const double got = tile.at(i, j);
        if (std::isnan(want)) {
          EXPECT_TRUE(std::isnan(got));
        } else {
          EXPECT_DOUBLE_EQ(got, want);
        }
      }
    }
  }, opts);
}

TEST(BandScan, WideBandEqualsFullScan) {
  const BitMatrix g = test_matrix(30, 64, 3);
  std::size_t band_pairs = 0;
  ld_band_scan(g, g.snps(), [&](const LdTile& tile) {
    for (std::size_t i = 0; i < tile.rows; ++i) {
      const std::size_t gi = tile.row_begin + i;
      for (std::size_t j = 0; j < tile.cols; ++j) {
        if (tile.col_begin + j <= gi) ++band_pairs;
      }
    }
  });
  EXPECT_EQ(band_pairs, ld_pair_count(g.snps()));
}

TEST(BandScan, RejectsBadArguments) {
  const BitMatrix g = test_matrix(10, 64, 4);
  EXPECT_THROW(ld_band_scan(g, 0, [](const LdTile&) {}), ContractViolation);
  BandOptions opts;
  opts.slab_rows = 0;
  EXPECT_THROW(ld_band_scan(g, 2, [](const LdTile&) {}, opts),
               ContractViolation);
}

TEST(BandScan, EmptyMatrixEmitsNothing) {
  BitMatrix empty;
  ld_band_scan(empty, 5, [](const LdTile&) { FAIL(); });
}

TEST(DecayProfile, MatchesBruteForceBinning) {
  const BitMatrix g = test_matrix(60, 100, 5);
  const std::size_t max_dist = 15;
  const std::size_t bins = 5;
  const DecayProfile prof = ld_decay_profile(g, max_dist, bins);
  ASSERT_EQ(prof.mean.size(), bins);
  ASSERT_EQ(prof.bin_upper.size(), bins);

  const LdMatrix full = ld_matrix(g);
  std::vector<double> sum(bins, 0.0);
  std::vector<std::uint64_t> count(bins, 0);
  const double width = static_cast<double>(max_dist) / bins;
  for (std::size_t i = 0; i < g.snps(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const std::size_t dist = i - j;
      if (dist > max_dist) continue;
      const double v = full(i, j);
      if (!std::isfinite(v)) continue;
      auto b = static_cast<std::size_t>(static_cast<double>(dist - 1) / width);
      b = std::min(b, bins - 1);
      sum[b] += v;
      ++count[b];
    }
  }
  for (std::size_t b = 0; b < bins; ++b) {
    EXPECT_EQ(prof.count[b], count[b]) << "bin " << b;
    if (count[b] > 0) {
      EXPECT_NEAR(prof.mean[b], sum[b] / static_cast<double>(count[b]), 1e-12);
    }
  }
}

TEST(DecayProfile, DecaysOnLinkedData) {
  const BitMatrix g = test_matrix(500, 200, 6, /*switch_rate=*/0.02);
  const DecayProfile prof = ld_decay_profile(g, 100, 4);
  ASSERT_GT(prof.count[0], 0u);
  ASSERT_GT(prof.count[3], 0u);
  EXPECT_GT(prof.mean[0], prof.mean[3])
      << "nearby SNPs must show more LD than distant ones";
}

TEST(DecayProfile, ByPositionMatchesBruteForce) {
  WrightFisherParams p;
  p.n_snps = 80;
  p.n_samples = 90;
  p.seed = 7;
  const SimulatedDataset d = simulate_wright_fisher(p);
  const std::size_t bandwidth = 80;  // cover everything
  const double max_dist = 0.2;
  const std::size_t bins = 4;
  const DecayProfile prof = ld_decay_by_position(
      d.genotypes, d.positions, bandwidth, max_dist, bins);

  const LdMatrix full = ld_matrix(d.genotypes);
  std::vector<double> sum(bins, 0.0);
  std::vector<std::uint64_t> count(bins, 0);
  for (std::size_t i = 0; i < d.genotypes.snps(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const double dist = d.positions[i] - d.positions[j];
      if (dist > max_dist || dist <= 0.0) continue;
      const double v = full(i, j);
      if (!std::isfinite(v)) continue;
      auto b = static_cast<std::size_t>(dist / (max_dist / bins));
      b = std::min(b, bins - 1);
      sum[b] += v;
      ++count[b];
    }
  }
  for (std::size_t b = 0; b < bins; ++b) {
    EXPECT_EQ(prof.count[b], count[b]) << "bin " << b;
    if (count[b] > 0) {
      EXPECT_NEAR(prof.mean[b], sum[b] / static_cast<double>(count[b]), 1e-12);
    }
  }
}

TEST(DecayProfile, RejectsBadArguments) {
  const BitMatrix g = test_matrix(10, 64, 8);
  EXPECT_THROW((void)ld_decay_profile(g, 0, 4), ContractViolation);
  EXPECT_THROW((void)ld_decay_profile(g, 5, 0), ContractViolation);
  std::vector<double> pos(5, 0.1);
  EXPECT_THROW((void)ld_decay_by_position(g, pos, 5, 0.1, 2),
               ContractViolation);
}

}  // namespace
}  // namespace ldla
