#include "baselines/omegaplus_like.hpp"
#include "baselines/plink_like.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/naive.hpp"
#include "core/parallel.hpp"
#include "sim/wright_fisher.hpp"
#include "util/contract.hpp"

namespace ldla {
namespace {

BitMatrix test_matrix(std::size_t snps, std::size_t samples,
                      std::uint64_t seed) {
  WrightFisherParams p;
  p.n_snps = snps;
  p.n_samples = samples;
  p.seed = seed;
  p.founders = 16;
  return simulate_genotypes(p);
}

// --- OmegaPlus-like baseline --------------------------------------------

TEST(OmegaPlusLike, AgreesWithGemmEngineExactly) {
  // Allele-based r^2: same statistic as the GEMM engine, different engine.
  const BitMatrix g = test_matrix(30, 180, 1);
  const LdMatrix gemm = ld_matrix(g);
  const LdMatrix base = omegaplus_like_matrix(g);
  for (std::size_t i = 0; i < g.snps(); ++i) {
    for (std::size_t j = 0; j < g.snps(); ++j) {
      if (std::isnan(gemm(i, j))) {
        EXPECT_TRUE(std::isnan(base(i, j)));
      } else {
        EXPECT_DOUBLE_EQ(base(i, j), gemm(i, j)) << i << "," << j;
      }
    }
  }
}

TEST(OmegaPlusLike, ScanCountsAllLowerPairs) {
  const BitMatrix g = test_matrix(40, 100, 2);
  const BaselineScanResult r = omegaplus_like_scan(g, 1);
  EXPECT_EQ(r.pairs, ld_pair_count(g.snps()));
  EXPECT_GT(r.finite, 0u);
  EXPECT_LE(r.finite, r.pairs);
}

TEST(OmegaPlusLike, ScanResultIndependentOfThreads) {
  const BitMatrix g = test_matrix(50, 120, 3);
  const BaselineScanResult one = omegaplus_like_scan(g, 1);
  for (unsigned t : {2u, 4u, 7u}) {
    const BaselineScanResult r = omegaplus_like_scan(g, t);
    EXPECT_EQ(r.pairs, one.pairs) << t << " threads";
    EXPECT_EQ(r.finite, one.finite);
    EXPECT_NEAR(r.sum, one.sum, 1e-9);
  }
}

TEST(OmegaPlusLike, ScanSumMatchesGemmAggregate) {
  const BitMatrix g = test_matrix(35, 90, 4);
  const BaselineScanResult base = omegaplus_like_scan(g, 1);
  const LdMatrix gemm = ld_matrix(g);
  double sum = 0.0;
  for (std::size_t i = 0; i < g.snps(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      if (std::isfinite(gemm(i, j))) sum += gemm(i, j);
    }
  }
  EXPECT_NEAR(base.sum, sum, 1e-9);
}

// --- PLINK-like baseline --------------------------------------------------

TEST(GenotypeMatrix, DosageRoundTrip) {
  GenotypeMatrix g(2, 5);
  g.set_dosage(0, 0, 0);
  g.set_dosage(0, 1, 1);
  g.set_dosage(0, 2, 2);
  EXPECT_EQ(g.dosage(0, 0), 0u);
  EXPECT_EQ(g.dosage(0, 1), 1u);
  EXPECT_EQ(g.dosage(0, 2), 2u);
  g.set_dosage(0, 2, 1);
  EXPECT_EQ(g.dosage(0, 2), 1u);
  EXPECT_THROW(g.set_dosage(0, 0, 3), ContractViolation);
}

TEST(GenotypeMatrix, FromHaplotypesPairsColumns) {
  // haplotypes: sample0=1, sample1=1 -> individual0 dosage 2, etc.
  const BitMatrix haps = BitMatrix::from_snp_strings(
      std::vector<std::string>{"110100"});
  const GenotypeMatrix g = GenotypeMatrix::from_haplotypes(haps);
  EXPECT_EQ(g.individuals(), 3u);
  EXPECT_EQ(g.dosage(0, 0), 2u);
  EXPECT_EQ(g.dosage(0, 1), 1u);
  EXPECT_EQ(g.dosage(0, 2), 0u);
}

TEST(GenotypeMatrix, FromHaplotypesRejectsOddSamples) {
  const BitMatrix haps = BitMatrix::from_snp_strings(
      std::vector<std::string>{"101"});
  EXPECT_THROW((void)GenotypeMatrix::from_haplotypes(haps), ContractViolation);
}

// Dosage-vector Pearson r^2 reference computed in plain floating point.
double pearson_r2_reference(const GenotypeMatrix& g, std::size_t i,
                            std::size_t j) {
  const double n = static_cast<double>(g.individuals());
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (std::size_t ind = 0; ind < g.individuals(); ++ind) {
    const double x = g.dosage(i, ind);
    const double y = g.dosage(j, ind);
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
  }
  const double cov = n * sxy - sx * sy;
  const double vx = n * sxx - sx * sx;
  const double vy = n * syy - sy * sy;
  if (vx <= 0 || vy <= 0) return std::numeric_limits<double>::quiet_NaN();
  return (cov * cov) / (vx * vy);
}

TEST(PlinkLike, PopcountCountingMatchesFloatingPointPearson) {
  const BitMatrix haps = test_matrix(20, 160, 5);
  const GenotypeMatrix g = GenotypeMatrix::from_haplotypes(haps);
  for (std::size_t i = 0; i < g.snps(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double want = pearson_r2_reference(g, i, j);
      const double got = plink_like_r2_pair(g, i, j);
      if (std::isnan(want)) {
        EXPECT_TRUE(std::isnan(got)) << i << "," << j;
      } else {
        EXPECT_NEAR(got, want, 1e-9) << i << "," << j;
      }
    }
  }
}

TEST(PlinkLike, PerfectLdDetected) {
  // Two identical SNPs have genotype correlation 1.
  const BitMatrix haps = BitMatrix::from_snp_strings(
      std::vector<std::string>{"11010010", "11010010"});
  const GenotypeMatrix g = GenotypeMatrix::from_haplotypes(haps);
  EXPECT_NEAR(plink_like_r2_pair(g, 0, 1), 1.0, 1e-12);
}

TEST(PlinkLike, ScanCountsAllLowerPairsAndIsThreadInvariant) {
  const BitMatrix haps = test_matrix(30, 200, 6);
  const GenotypeMatrix g = GenotypeMatrix::from_haplotypes(haps);
  const BaselineScanResult one = plink_like_scan(g, 1);
  EXPECT_EQ(one.pairs, ld_pair_count(g.snps()));
  for (unsigned t : {2u, 4u}) {
    const BaselineScanResult r = plink_like_scan(g, t);
    EXPECT_EQ(r.pairs, one.pairs);
    EXPECT_EQ(r.finite, one.finite);
    EXPECT_NEAR(r.sum, one.sum, 1e-9);
  }
}

TEST(PlinkLike, MatrixMatchesPairFunction) {
  const BitMatrix haps = test_matrix(10, 60, 7);
  const GenotypeMatrix g = GenotypeMatrix::from_haplotypes(haps);
  const LdMatrix m = plink_like_matrix(g);
  for (std::size_t i = 0; i < g.snps(); ++i) {
    for (std::size_t j = 0; j < g.snps(); ++j) {
      const double want = plink_like_r2_pair(g, i, j);
      if (std::isnan(want)) {
        EXPECT_TRUE(std::isnan(m(i, j)));
      } else {
        EXPECT_DOUBLE_EQ(m(i, j), want);
      }
    }
  }
}

// Cross-engine sanity: on haplotype data collapsed to genotypes, the
// genotype r^2 tracks the allele r^2 closely for strongly linked SNPs.
TEST(Baselines, GenotypeAndAlleleR2CorrelateOnLinkedData) {
  WrightFisherParams p;
  p.n_snps = 40;
  p.n_samples = 300;
  p.switch_rate = 0.002;  // strong LD
  p.seed = 8;
  const BitMatrix haps = simulate_genotypes(p);
  const GenotypeMatrix geno = GenotypeMatrix::from_haplotypes(haps);
  const LdMatrix allele = ld_matrix(haps);

  double diff_sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < haps.snps(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const double a = allele(i, j);
      const double g = plink_like_r2_pair(geno, i, j);
      if (std::isfinite(a) && std::isfinite(g)) {
        diff_sum += std::abs(a - g);
        ++count;
      }
    }
  }
  ASSERT_GT(count, 0u);
  EXPECT_LT(diff_sum / static_cast<double>(count), 0.15)
      << "genotype r^2 should track allele r^2 on phased data";
}

}  // namespace
}  // namespace ldla
