// Fuzz harness for the .ldm binary snapshot reader, with a write/reread
// round-trip oracle on accepted inputs.
#include <sstream>
#include <string>

#include "core/bit_matrix.hpp"
#include "fuzz_target.hpp"
#include "io/ldm_binary.hpp"
#include "util/contract.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::string bytes(reinterpret_cast<const char*>(data), size);
  std::istringstream in(bytes, std::ios::binary);
  try {
    const ldla::BitMatrix m = ldla::read_ldm(in);
    ldla::fuzz::require(m.padding_is_clean(),
                        "ldm: accepted matrix has dirty padding");
    std::ostringstream out(std::ios::binary);
    ldla::write_ldm(out, m);
    std::istringstream back(out.str(), std::ios::binary);
    const ldla::BitMatrix again = ldla::read_ldm(back);
    ldla::fuzz::require(again.snps() == m.snps(), "ldm: round-trip SNP count");
    ldla::fuzz::require(again.samples() == m.samples(),
                        "ldm: round-trip sample count");
  } catch (const ldla::Error&) {
  }
  return 0;
}
