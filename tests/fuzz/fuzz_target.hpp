// Shared entry point for the ldla fuzz harnesses.
//
// Each harness defines LLVMFuzzerTestOneInput over one parser. With clang,
// build with -DLDLA_LIBFUZZER=ON to link libFuzzer and fuzz for real; with
// any toolchain, the default build links driver_main.cpp, which replays the
// checked-in seed corpus plus deterministic mutations of it (a regression
// and smoke harness that needs no special compiler support).
//
// Harness contract: for arbitrary input bytes the parser either succeeds —
// in which case the parsed object must satisfy its structural invariants —
// or throws ldla::Error. Any other exception, trap, or sanitizer report is
// a finding.
#pragma once

#include <cstddef>
#include <cstdint>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace ldla::fuzz {

/// Abort loudly when a parsed object violates an invariant; used instead of
/// assert so the check survives NDEBUG builds.
[[noreturn]] void invariant_failure(const char* what);

inline void require(bool ok, const char* what) {
  if (!ok) invariant_failure(what);
}

}  // namespace ldla::fuzz
