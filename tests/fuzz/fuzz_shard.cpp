// Fuzz harness for the shard-store header/directory parser.
//
// parse_shard_index consumes an attacker-controlled byte span (the mmap'd
// file) and its output drives pointer arithmetic into the mapping, so the
// invariants checked here on ACCEPTED inputs are exactly the ones the
// ShardStore relies on for memory safety: every extent in-bounds and
// aligned, extents pairwise disjoint, the row partition contiguous over
// [0, n_snps), and the sliver word counts equal to what the plan implies.
#include <algorithm>
#include <utility>
#include <vector>

#include "core/bit_matrix.hpp"
#include "fuzz_target.hpp"
#include "io/shard_store.hpp"
#include "util/contract.hpp"

namespace {

void check_extent(std::vector<std::pair<std::uint64_t, std::uint64_t>>& spans,
                  std::uint64_t off, std::uint64_t bytes,
                  std::uint64_t file_bytes) {
  if (off == 0) {
    ldla::fuzz::require(bytes == 0, "shard: absent section with bytes");
    return;
  }
  ldla::fuzz::require(off % 64 == 0, "shard: misaligned extent");
  ldla::fuzz::require(off <= file_bytes && bytes <= file_bytes - off,
                      "shard: extent outside the file");
  spans.emplace_back(off, bytes);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  try {
    const ldla::ShardIndex idx = ldla::parse_shard_index(data, size);

    ldla::fuzz::require(idx.file_bytes == size, "shard: file size mismatch");
    ldla::fuzz::require(!idx.shards.empty(), "shard: accepted empty store");
    ldla::fuzz::require(idx.n_words == ldla::words_for_bits(idx.n_samples),
                        "shard: words inconsistent with samples");

    std::uint64_t next_row = 0;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> spans;
    for (const ldla::ShardRecord& rec : idx.shards) {
      ldla::fuzz::require(rec.row_begin == next_row && rec.row_end > next_row,
                          "shard: broken row partition");
      next_row = rec.row_end;
      check_extent(spans, rec.a_off, rec.a_words * 8, idx.file_bytes);
      check_extent(spans, rec.b_off, rec.b_words * 8, idx.file_bytes);
      check_extent(spans, rec.pop_off, rec.rows() * 4, idx.file_bytes);
      check_extent(spans, rec.kind_off, rec.rows(), idx.file_bytes);
      check_extent(spans, rec.csr_off, (rec.rows() + 1) * 8, idx.file_bytes);
      check_extent(spans, rec.index_off, rec.index_count * 4, idx.file_bytes);
      check_extent(spans, rec.scaled_off,
                   rec.scaled_off != 0 ? rec.index_count * 4 : 0,
                   idx.file_bytes);
      check_extent(spans, rec.sm_off, idx.n_samples * rec.sm_stride * 8,
                   idx.file_bytes);
      ldla::fuzz::require(rec.pop_off != 0 && rec.kind_off != 0 &&
                              rec.csr_off != 0,
                          "shard: mandatory section missing");
      ldla::fuzz::require(rec.a_off != 0 && rec.a_words != 0,
                          "shard: A slivers missing");
      if (rec.b_off == 0) {
        ldla::fuzz::require(idx.plan.mr == idx.plan.nr && rec.b_words == 0,
                            "shard: shared B on asymmetric tile");
      }
    }
    ldla::fuzz::require(next_row == idx.n_snps,
                        "shard: partition does not cover the matrix");

    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      ldla::fuzz::require(spans[i - 1].first + spans[i - 1].second <=
                              spans[i].first,
                          "shard: overlapping extents");
    }
  } catch (const ldla::Error&) {
  }
  return 0;
}
