// Fuzz harness for the Hudson `ms` parser, with a write/reparse round-trip
// oracle on accepted inputs.
#include <sstream>
#include <string>
#include <vector>

#include "fuzz_target.hpp"
#include "io/ms_format.hpp"
#include "util/contract.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::string text(reinterpret_cast<const char*>(data), size);
  std::istringstream in(text);
  try {
    const std::vector<ldla::MsReplicate> reps = ldla::parse_ms(in);
    for (const ldla::MsReplicate& rep : reps) {
      ldla::fuzz::require(rep.genotypes.padding_is_clean(),
                          "ms: accepted matrix has dirty padding");
      ldla::fuzz::require(rep.positions.size() == rep.genotypes.snps(),
                          "ms: positions out of sync with SNP count");
      // Round-trip: what we serialize must reparse to the same shape.
      std::ostringstream out;
      ldla::write_ms(out, rep);
      std::istringstream back(out.str());
      const std::vector<ldla::MsReplicate> again = ldla::parse_ms(back);
      ldla::fuzz::require(again.size() == 1, "ms: round-trip replicate count");
      ldla::fuzz::require(again[0].genotypes.snps() == rep.genotypes.snps(),
                          "ms: round-trip SNP count");
      ldla::fuzz::require(
          again[0].genotypes.samples() == rep.genotypes.samples(),
          "ms: round-trip sample count");
    }
  } catch (const ldla::Error&) {
  }
  return 0;
}
