#include "fuzz_target.hpp"

#include <cstdio>
#include <cstdlib>

namespace ldla::fuzz {

void invariant_failure(const char* what) {
  std::fprintf(stderr, "fuzz invariant violated: %s\n", what);
  std::abort();
}

}  // namespace ldla::fuzz
