// Fuzz harness for the VCF-lite parser.
#include <sstream>
#include <string>

#include "fuzz_target.hpp"
#include "io/vcf_lite.hpp"
#include "util/contract.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::string text(reinterpret_cast<const char*>(data), size);
  // The first byte steers skip_invalid so both modes stay covered.
  const bool skip_invalid = !text.empty() && (text[0] & 1) != 0;
  std::istringstream in(text);
  try {
    const ldla::VcfData d = ldla::parse_vcf(in, skip_invalid);
    ldla::fuzz::require(d.genotypes.padding_is_clean(),
                        "vcf: accepted matrix has dirty padding");
    ldla::fuzz::require(d.positions.size() == d.genotypes.snps(),
                        "vcf: positions out of sync with SNP count");
    ldla::fuzz::require(d.ids.size() == d.genotypes.snps(),
                        "vcf: ids out of sync with SNP count");
  } catch (const ldla::Error&) {
    // Rejection with the library's error type is the expected outcome for
    // malformed input; anything else escapes and counts as a crash.
  }
  return 0;
}
