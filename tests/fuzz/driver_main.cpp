// Standalone driver for the fuzz harnesses, used when the toolchain lacks
// libFuzzer (e.g. GCC builds). Two phases:
//
//   1. Replay: every file in the given corpus files/directories is fed to
//      LLVMFuzzerTestOneInput verbatim — a deterministic regression gate.
//   2. Mutation smoke: a fixed-seed PRNG applies byte-level mutations
//      (replace / insert / erase / truncate / duplicate) to corpus inputs
//      for a bounded number of rounds, approximating a short fuzz session
//      reproducibly.
//
// Usage: fuzz_<target> [--rounds N] [--seed S] <corpus file or dir>...
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "fuzz_target.hpp"

namespace {

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open corpus input: %s\n",
                 path.string().c_str());
    std::exit(2);
  }
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void collect_inputs(const std::filesystem::path& path,
                    std::vector<std::filesystem::path>& out) {
  if (std::filesystem::is_directory(path)) {
    std::vector<std::filesystem::path> entries;
    for (const auto& e : std::filesystem::directory_iterator(path)) {
      if (e.is_regular_file()) entries.push_back(e.path());
    }
    // Directory iteration order is unspecified; sort for reproducibility.
    std::sort(entries.begin(), entries.end());
    out.insert(out.end(), entries.begin(), entries.end());
  } else {
    out.push_back(path);
  }
}

void mutate(std::vector<std::uint8_t>& bytes, std::mt19937_64& rng) {
  const std::size_t edits = 1 + rng() % 8;
  for (std::size_t e = 0; e < edits; ++e) {
    const std::uint64_t op = bytes.empty() ? 1 : rng() % 5;
    switch (op) {
      case 0:  // replace one byte
        bytes[rng() % bytes.size()] = static_cast<std::uint8_t>(rng());
        break;
      case 1:  // insert one byte
        bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(
                                         rng() % (bytes.size() + 1)),
                     static_cast<std::uint8_t>(rng()));
        break;
      case 2:  // erase one byte
        bytes.erase(bytes.begin() +
                    static_cast<std::ptrdiff_t>(rng() % bytes.size()));
        break;
      case 3:  // truncate
        bytes.resize(rng() % (bytes.size() + 1));
        break;
      default: {  // duplicate a slice
        const std::size_t from = rng() % bytes.size();
        const std::size_t len =
            std::min<std::size_t>(1 + rng() % 16, bytes.size() - from);
        bytes.insert(bytes.end(), bytes.begin() + static_cast<std::ptrdiff_t>(from),
                     bytes.begin() + static_cast<std::ptrdiff_t>(from + len));
        break;
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t rounds = 256;
  std::uint64_t seed = 0x1d1aF022ULL;
  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      rounds = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      collect_inputs(argv[i], inputs);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "usage: %s [--rounds N] [--seed S] <corpus>...\n",
                 argv[0]);
    return 2;
  }

  std::vector<std::vector<std::uint8_t>> corpus;
  corpus.reserve(inputs.size());
  for (const auto& path : inputs) {
    corpus.push_back(read_file(path));
    LLVMFuzzerTestOneInput(corpus.back().data(), corpus.back().size());
  }
  std::printf("replayed %zu corpus inputs\n", corpus.size());

  std::mt19937_64 rng(seed);
  for (std::size_t r = 0; r < rounds; ++r) {
    std::vector<std::uint8_t> bytes = corpus[rng() % corpus.size()];
    mutate(bytes, rng);
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  }
  std::printf("ran %zu mutation rounds (seed %llu)\n", rounds,
              static_cast<unsigned long long>(seed));
  return 0;
}
