#include "core/gemm/syrk.hpp"

#include <gtest/gtest.h>

#include "baselines/naive.hpp"
#include "core/gemm/kernel.hpp"
#include "sim/rng.hpp"
#include "util/contract.hpp"

namespace ldla {
namespace {

BitMatrix random_matrix(std::size_t snps, std::size_t samples,
                        std::uint64_t seed) {
  Rng rng(seed);
  BitMatrix m(snps, samples);
  for (std::size_t s = 0; s < snps; ++s) {
    for (std::size_t b = 0; b < samples; ++b) {
      if (rng.next_bool(0.4)) m.set(s, b, true);
    }
  }
  return m;
}

class SyrkKernel : public ::testing::TestWithParam<KernelArch> {};

TEST_P(SyrkKernel, MatchesNaiveOnRaggedShapes) {
  GemmConfig cfg;
  cfg.arch = GetParam();
  for (const auto& [n, k] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 1}, {2, 64}, {5, 100}, {16, 64}, {33, 64 * 5 + 3},
           {70, 129}}) {
    const BitMatrix g = random_matrix(n, k, n * 31 + k);
    const CountMatrix expected = naive_count_matrix(g, g);
    CountMatrix c(n, n);
    syrk_count(g.view(), c.ref(), cfg);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        ASSERT_EQ(c(i, j), expected(i, j))
            << "n=" << n << " k=" << k << " at (" << i << ", " << j << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, SyrkKernel, ::testing::ValuesIn(available_kernels()),
    [](const ::testing::TestParamInfo<KernelArch>& param_info) {
      std::string name = kernel_arch_name(param_info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Syrk, OutputIsSymmetricWithDiagonalCounts) {
  const BitMatrix g = random_matrix(40, 500, 3);
  CountMatrix c(40, 40);
  syrk_count(g.view(), c.ref());
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(c(i, i), g.derived_count(i));
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_EQ(c(i, j), c(j, i));
    }
  }
}

TEST(Syrk, SmallBlockingStillCorrect) {
  // Tiny mc/nc/kc force many diagonal-crossing and edge tiles.
  const BitMatrix g = random_matrix(23, 300, 4);
  const CountMatrix expected = naive_count_matrix(g, g);
  GemmConfig cfg;
  cfg.kc_words = 2;
  cfg.mc = 8;
  cfg.nc = 8;
  CountMatrix c(23, 23);
  syrk_count(g.view(), c.ref(), cfg);
  for (std::size_t i = 0; i < 23; ++i) {
    for (std::size_t j = 0; j < 23; ++j) {
      ASSERT_EQ(c(i, j), expected(i, j)) << i << "," << j;
    }
  }
}

TEST(Syrk, OverwritesPreviousContents) {
  const BitMatrix g = random_matrix(10, 64, 5);
  CountMatrix c(10, 10);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 10; ++j) c(i, j) = 777;
  }
  syrk_count(g.view(), c.ref());
  const CountMatrix expected = naive_count_matrix(g, g);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 10; ++j) {
      ASSERT_EQ(c(i, j), expected(i, j));
    }
  }
}

TEST(Syrk, PackingAblationMatches) {
  const BitMatrix g = random_matrix(17, 200, 6);
  const CountMatrix expected = naive_count_matrix(g, g);
  GemmConfig cfg;
  cfg.packing = false;
  CountMatrix c(17, 17);
  syrk_count(g.view(), c.ref(), cfg);
  for (std::size_t i = 0; i < 17; ++i) {
    for (std::size_t j = 0; j < 17; ++j) {
      ASSERT_EQ(c(i, j), expected(i, j));
    }
  }
}

TEST(Syrk, RejectsTooSmallOutput) {
  const BitMatrix g = random_matrix(5, 64, 7);
  CountMatrix c(4, 5);
  EXPECT_THROW(syrk_count(g.view(), c.ref()), ContractViolation);
}

TEST(Syrk, EmptyMatrixIsANoop) {
  BitMatrix empty;
  CountMatrix c(0, 0);
  syrk_count(empty.view(), c.ref());
}

}  // namespace
}  // namespace ldla
