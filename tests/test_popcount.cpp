#include "core/popcount.hpp"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sim/rng.hpp"
#include "util/contract.hpp"

namespace ldla {
namespace {

std::vector<std::uint64_t> random_words(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> out(n);
  for (auto& w : out) w = rng.next_u64();
  return out;
}

std::uint64_t reference_count(const std::vector<std::uint64_t>& w) {
  std::uint64_t acc = 0;
  for (const auto x : w) acc += popcount_u64_swar(x);
  return acc;
}

TEST(PopcountSwar, SingleWordMatchesBuiltin) {
  Rng rng(1);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t x = rng.next_u64();
    EXPECT_EQ(popcount_u64_swar(x),
              static_cast<std::uint64_t>(__builtin_popcountll(x)));
  }
  EXPECT_EQ(popcount_u64_swar(0), 0u);
  EXPECT_EQ(popcount_u64_swar(~std::uint64_t{0}), 64u);
  EXPECT_EQ(popcount_u64_swar(1), 1u);
}

TEST(PopcountMethods, NamesAreUnique) {
  std::vector<std::string> names;
  for (PopcountMethod m :
       {PopcountMethod::kAuto, PopcountMethod::kHardware, PopcountMethod::kSwar,
        PopcountMethod::kLut16, PopcountMethod::kPshufbSse,
        PopcountMethod::kHarleySealAvx2, PopcountMethod::kSimdExtract,
        PopcountMethod::kAvx512Vpopcnt}) {
    names.push_back(popcount_method_name(m));
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

TEST(PopcountMethods, AvailableListIsConsistent) {
  for (PopcountMethod m : available_popcount_methods()) {
    EXPECT_TRUE(popcount_method_available(m))
        << popcount_method_name(m);
  }
  // Portable backends are always available.
  EXPECT_TRUE(popcount_method_available(PopcountMethod::kSwar));
  EXPECT_TRUE(popcount_method_available(PopcountMethod::kLut16));
}

// Property sweep: every available backend must agree with the SWAR oracle
// on every buffer size, including sizes that stress vector tails.
class PopcountBackend : public ::testing::TestWithParam<PopcountMethod> {};

TEST_P(PopcountBackend, CountMatchesOracleAcrossSizes) {
  const PopcountMethod m = GetParam();
  for (std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 15u, 16u, 17u,
                        31u, 63u, 64u, 65u, 100u, 256u, 1000u}) {
    const auto words = random_words(n, 0xabc + n);
    EXPECT_EQ(popcount_words(words, m), reference_count(words))
        << popcount_method_name(m) << " n=" << n;
  }
}

TEST_P(PopcountBackend, AndMatchesOracleAcrossSizes) {
  const PopcountMethod m = GetParam();
  for (std::size_t n : {0u, 1u, 3u, 4u, 7u, 8u, 16u, 17u, 33u, 64u, 127u,
                        129u, 500u}) {
    const auto a = random_words(n, 0x111 + n);
    const auto b = random_words(n, 0x222 + n);
    std::uint64_t expected = 0;
    for (std::size_t i = 0; i < n; ++i) {
      expected += popcount_u64_swar(a[i] & b[i]);
    }
    EXPECT_EQ(popcount_and(a, b, m), expected)
        << popcount_method_name(m) << " n=" << n;
  }
}

TEST_P(PopcountBackend, And3MatchesOracleAcrossSizes) {
  const PopcountMethod m = GetParam();
  for (std::size_t n : {0u, 1u, 5u, 8u, 9u, 16u, 40u, 64u, 200u}) {
    const auto a = random_words(n, 0x333 + n);
    const auto b = random_words(n, 0x444 + n);
    const auto mask = random_words(n, 0x555 + n);
    std::uint64_t expected = 0;
    for (std::size_t i = 0; i < n; ++i) {
      expected += popcount_u64_swar(a[i] & b[i] & mask[i]);
    }
    EXPECT_EQ(popcount_and3(a, b, mask, m), expected)
        << popcount_method_name(m) << " n=" << n;
  }
}

TEST_P(PopcountBackend, AllZerosAndAllOnes) {
  const PopcountMethod m = GetParam();
  const std::vector<std::uint64_t> zeros(100, 0);
  const std::vector<std::uint64_t> ones(100, ~std::uint64_t{0});
  EXPECT_EQ(popcount_words(zeros, m), 0u);
  EXPECT_EQ(popcount_words(ones, m), 6400u);
  EXPECT_EQ(popcount_and(ones, zeros, m), 0u);
  EXPECT_EQ(popcount_and(ones, ones, m), 6400u);
}

INSTANTIATE_TEST_SUITE_P(
    AllAvailable, PopcountBackend,
    ::testing::ValuesIn(available_popcount_methods()),
    [](const ::testing::TestParamInfo<PopcountMethod>& param_info) {
      std::string name = popcount_method_name(param_info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Popcount, MismatchedSpansThrow) {
  const auto a = random_words(4, 1);
  const auto b = random_words(5, 2);
  EXPECT_THROW(popcount_and(a, b), ContractViolation);
  EXPECT_THROW(popcount_and3(a, a, b), ContractViolation);
}

TEST(Popcount, AutoPicksAnAvailableBackend) {
  const auto w = random_words(64, 9);
  EXPECT_EQ(popcount_words(w, PopcountMethod::kAuto), reference_count(w));
}

TEST(Popcount, ResolveMethodIsConcreteAndStable) {
  const PopcountMethod resolved = resolve_popcount_method();
  EXPECT_NE(resolved, PopcountMethod::kAuto);
  EXPECT_TRUE(popcount_method_available(resolved));
  EXPECT_EQ(resolve_popcount_method(resolved), resolved);
  EXPECT_EQ(resolve_popcount_method(PopcountMethod::kSwar),
            PopcountMethod::kSwar);
}

// ---------------------------------------------------------------------------
// Positional popcount (per-bit-lane column sums).

/// Bit-by-bit reference: counts[w*64+b] = rows with bit b of word w set.
std::vector<std::uint32_t> positional_reference(
    const std::vector<std::uint64_t>& rows, std::size_t n, std::size_t stride,
    std::size_t width) {
  std::vector<std::uint32_t> counts(width * 64, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t w = 0; w < width; ++w) {
      const std::uint64_t word = rows[i * stride + w];
      for (std::size_t b = 0; b < 64; ++b) {
        counts[w * 64 + b] +=
            static_cast<std::uint32_t>((word >> b) & 1u);
      }
    }
  }
  return counts;
}

std::vector<PopcountMethod> positional_methods() {
  std::vector<PopcountMethod> ms = {PopcountMethod::kHardware,
                                    PopcountMethod::kSwar};
  if (popcount_method_available(PopcountMethod::kHarleySealAvx2)) {
    ms.push_back(PopcountMethod::kHarleySealAvx2);
  }
  return ms;
}

TEST(PositionalPopcount, MatchesReferenceAcrossShapes) {
  // Row counts straddle the backends' drain boundaries (15-row bit-slice
  // groups, 255-row u8 lanes, 256-drain u16 lanes => 65025-row u32 drain).
  const std::size_t shapes[][2] = {{0, 1},  {1, 1},   {14, 1},  {15, 2},
                                   {16, 3}, {254, 4}, {255, 8}, {256, 9},
                                   {511, 12}, {1000, 17}};
  for (const auto& s : shapes) {
    const std::size_t n = s[0];
    const std::size_t width = s[1];
    const std::size_t stride = width + 2;  // rows longer than the strip
    const auto rows = random_words(n * stride + stride, 0x777 + n);
    const auto want = positional_reference(rows, n, stride, width);
    for (const PopcountMethod m : positional_methods()) {
      std::vector<std::uint32_t> got(width * 64, 0xdead);
      positional_popcount_strip(rows.data(), n, stride, width, got.data(), m);
      ASSERT_EQ(got, want) << popcount_method_name(m) << " n=" << n
                           << " width=" << width;
    }
  }
}

TEST(PositionalPopcount, AllOnesSaturatesLanesCorrectly) {
  // 70000 all-ones rows: every u8 lane and every u16 lane must drain
  // before overflow (u16 holds 65535 < 70000).
  const std::size_t n = 70000;
  const std::size_t width = 2;
  const std::vector<std::uint64_t> rows(n * width, ~std::uint64_t{0});
  for (const PopcountMethod m : positional_methods()) {
    std::vector<std::uint32_t> got(width * 64, 0);
    positional_popcount_strip(rows.data(), n, width, width, got.data(), m);
    for (const std::uint32_t c : got) {
      ASSERT_EQ(c, n) << popcount_method_name(m);
    }
  }
}

TEST(PositionalPopcount, SingleWordWrapperAndAutoAgree) {
  const std::size_t n = 300;
  const auto rows = random_words(n, 0x999);
  const auto want = positional_reference(rows, n, 1, 1);
  std::uint32_t got[64];
  positional_popcount(rows.data(), n, 1, got);
  for (std::size_t b = 0; b < 64; ++b) {
    ASSERT_EQ(got[b], want[b]) << "bit " << b;
  }
}

TEST(PositionalPopcount, RejectsNonPositionalMethods) {
  std::uint64_t word = 5;
  std::uint32_t counts[64];
  EXPECT_THROW(
      positional_popcount(&word, 1, 1, counts, PopcountMethod::kLut16),
      ContractViolation);
}

}  // namespace
}  // namespace ldla
