#include "sim/fingerprint_sim.hpp"
#include "sim/rng.hpp"
#include "sim/sweep_sim.hpp"
#include "sim/wright_fisher.hpp"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/ld.hpp"
#include "util/contract.hpp"

namespace ldla {
namespace {

// --- Rng --------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BoundedValuesInRange) {
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.next_below(7), 7u);
  }
  EXPECT_EQ(rng.next_below(1), 0u);
  EXPECT_THROW(rng.next_below(0), ContractViolation);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(4);
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliFrequencyTracksProbability) {
  Rng rng(5);
  int hits = 0;
  constexpr int kTrials = 100'000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.next_bool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.01);
}

TEST(Rng, GeometricMeanMatchesTheory) {
  Rng rng(6);
  const double p = 0.1;
  double sum = 0;
  constexpr int kTrials = 50'000;
  for (int i = 0; i < kTrials; ++i) {
    sum += static_cast<double>(rng.next_geometric(p));
  }
  // Mean of failures before success = (1-p)/p = 9.
  EXPECT_NEAR(sum / kTrials, 9.0, 0.3);
  EXPECT_THROW(rng.next_geometric(0.0), ContractViolation);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(7);
  double sum = 0;
  constexpr int kTrials = 50'000;
  for (int i = 0; i < kTrials; ++i) sum += rng.next_exponential(2.0);
  EXPECT_NEAR(sum / kTrials, 0.5, 0.02);
}

// --- Wright-Fisher simulator -------------------------------------------------

TEST(WrightFisher, ProducesRequestedDimensions) {
  WrightFisherParams p;
  p.n_snps = 123;
  p.n_samples = 77;
  const SimulatedDataset d = simulate_wright_fisher(p);
  EXPECT_EQ(d.genotypes.snps(), 123u);
  EXPECT_EQ(d.genotypes.samples(), 77u);
  EXPECT_EQ(d.positions.size(), 123u);
  EXPECT_TRUE(std::is_sorted(d.positions.begin(), d.positions.end()));
  EXPECT_TRUE(d.genotypes.padding_is_clean());
}

TEST(WrightFisher, DeterministicForSeed) {
  WrightFisherParams p;
  p.n_snps = 40;
  p.n_samples = 50;
  p.seed = 11;
  const BitMatrix a = simulate_genotypes(p);
  const BitMatrix b = simulate_genotypes(p);
  for (std::size_t s = 0; s < 40; ++s) {
    EXPECT_EQ(a.snp_string(s), b.snp_string(s));
  }
}

TEST(WrightFisher, MostSnpsArePolymorphic) {
  WrightFisherParams p;
  p.n_snps = 300;
  p.n_samples = 200;
  p.seed = 12;
  const BitMatrix g = simulate_genotypes(p);
  std::size_t polymorphic = 0;
  for (std::size_t s = 0; s < g.snps(); ++s) {
    const auto c = g.derived_count(s);
    if (c > 0 && c < g.samples()) ++polymorphic;
  }
  EXPECT_GT(polymorphic, 250u);
}

TEST(WrightFisher, LdDecaysWithSnpDistance) {
  WrightFisherParams p;
  p.n_snps = 400;
  p.n_samples = 300;
  p.switch_rate = 0.02;
  p.seed = 13;
  const BitMatrix g = simulate_genotypes(p);
  const LdMatrix r2 = ld_matrix(g);

  auto mean_r2_at_lag = [&](std::size_t lag) {
    double sum = 0;
    std::size_t count = 0;
    for (std::size_t i = lag; i < g.snps(); ++i) {
      const double v = r2(i, i - lag);
      if (std::isfinite(v)) {
        sum += v;
        ++count;
      }
    }
    return sum / static_cast<double>(count);
  };
  const double near = mean_r2_at_lag(1);
  const double mid = mean_r2_at_lag(20);
  const double far = mean_r2_at_lag(200);
  EXPECT_GT(near, mid) << "LD must decay with distance";
  EXPECT_GT(mid, far) << "LD must keep decaying";
  EXPECT_GT(near, 0.25) << "adjacent SNPs should be strongly linked";
  EXPECT_LT(far, 0.15) << "distant SNPs should be nearly unlinked";
}

TEST(WrightFisher, SwitchRateControlsLdStrength) {
  auto mean_adjacent_r2 = [](double switch_rate) {
    WrightFisherParams p;
    p.n_snps = 200;
    p.n_samples = 200;
    p.switch_rate = switch_rate;
    p.seed = 14;
    const BitMatrix g = simulate_genotypes(p);
    const LdMatrix r2 = ld_matrix(g);
    double sum = 0;
    std::size_t count = 0;
    for (std::size_t i = 1; i < g.snps(); ++i) {
      if (std::isfinite(r2(i, i - 1))) {
        sum += r2(i, i - 1);
        ++count;
      }
    }
    return sum / static_cast<double>(count);
  };
  EXPECT_GT(mean_adjacent_r2(0.005), mean_adjacent_r2(0.3));
}

TEST(WrightFisher, RejectsInvalidParameters) {
  WrightFisherParams p;
  p.n_snps = 0;
  EXPECT_THROW(simulate_wright_fisher(p), ContractViolation);
  p.n_snps = 10;
  p.founders = 1;
  EXPECT_THROW(simulate_wright_fisher(p), ContractViolation);
  p.founders = 65;
  EXPECT_THROW(simulate_wright_fisher(p), ContractViolation);
  p.founders = 16;
  p.switch_rate = 1.5;
  EXPECT_THROW(simulate_wright_fisher(p), ContractViolation);
  p.switch_rate = 0.1;
  p.min_freq = 0.0;
  EXPECT_THROW(simulate_wright_fisher(p), ContractViolation);
}

TEST(WrightFisher, WordBoundarySampleCounts) {
  for (std::size_t samples : {63u, 64u, 65u, 127u, 128u, 129u}) {
    WrightFisherParams p;
    p.n_snps = 10;
    p.n_samples = samples;
    p.seed = samples;
    const BitMatrix g = simulate_genotypes(p);
    EXPECT_EQ(g.samples(), samples);
    EXPECT_TRUE(g.padding_is_clean()) << samples << " samples";
  }
}

// --- sweep simulator ----------------------------------------------------------

TEST(SweepSim, ProducesRequestedDimensions) {
  SweepParams sp;
  sp.base.n_snps = 100;
  sp.base.n_samples = 60;
  const SimulatedDataset d = simulate_sweep(sp);
  EXPECT_EQ(d.genotypes.snps(), 100u);
  EXPECT_EQ(d.genotypes.samples(), 60u);
  EXPECT_TRUE(d.genotypes.padding_is_clean());
}

TEST(SweepSim, FlankLdExceedsNeutralBackground) {
  SweepParams sp;
  sp.base.n_snps = 500;
  sp.base.n_samples = 200;
  sp.base.switch_rate = 0.05;
  sp.base.seed = 21;
  sp.sweep_center = 0.5;
  sp.sweep_width = 0.15;
  sp.sweep_intensity = 0.95;
  const SimulatedDataset d = simulate_sweep(sp);
  const LdMatrix r2 = ld_matrix(d.genotypes);

  // Mean adjacent r^2 inside the sweep flanks vs far outside.
  double in_sum = 0, out_sum = 0;
  std::size_t in_n = 0, out_n = 0;
  for (std::size_t i = 1; i < d.genotypes.snps(); ++i) {
    const double v = r2(i, i - 1);
    if (!std::isfinite(v)) continue;
    const double pos = d.positions[i];
    const double dist = std::abs(pos - sp.sweep_center);
    if (dist < sp.sweep_width * 0.9) {
      in_sum += v;
      ++in_n;
    } else if (dist > sp.sweep_width * 1.5) {
      out_sum += v;
      ++out_n;
    }
  }
  ASSERT_GT(in_n, 10u);
  ASSERT_GT(out_n, 10u);
  EXPECT_GT(in_sum / static_cast<double>(in_n),
            out_sum / static_cast<double>(out_n));
}

TEST(SweepSim, RejectsInvalidParameters) {
  SweepParams sp;
  sp.sweep_center = 1.5;
  EXPECT_THROW(simulate_sweep(sp), ContractViolation);
  sp.sweep_center = 0.5;
  sp.sweep_width = 0.0;
  EXPECT_THROW(simulate_sweep(sp), ContractViolation);
  sp.sweep_width = 0.1;
  sp.sweep_intensity = 2.0;
  EXPECT_THROW(simulate_sweep(sp), ContractViolation);
}

// --- fingerprint simulator -----------------------------------------------------

TEST(FingerprintSim, ProducesRequestedDimensions) {
  FingerprintParams p;
  p.count = 50;
  p.bits = 300;
  const BitMatrix fps = simulate_fingerprints(p);
  EXPECT_EQ(fps.snps(), 50u);
  EXPECT_EQ(fps.samples(), 300u);
  EXPECT_TRUE(fps.padding_is_clean());
}

TEST(FingerprintSim, DensityRoughlyMatchesParameter) {
  FingerprintParams p;
  p.count = 100;
  p.bits = 2048;
  p.bit_density = 0.08;
  p.noise = 0.0;
  const BitMatrix fps = simulate_fingerprints(p);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < fps.snps(); ++i) total += fps.derived_count(i);
  const double density = static_cast<double>(total) /
                         (static_cast<double>(p.count) *
                          static_cast<double>(p.bits));
  EXPECT_NEAR(density, 0.08, 0.02);
}

TEST(FingerprintSim, RejectsInvalidParameters) {
  FingerprintParams p;
  p.count = 0;
  EXPECT_THROW(simulate_fingerprints(p), ContractViolation);
  p.count = 10;
  p.clusters = 0;
  EXPECT_THROW(simulate_fingerprints(p), ContractViolation);
  p.clusters = 2;
  p.bit_density = 1.0;
  EXPECT_THROW(simulate_fingerprints(p), ContractViolation);
}

}  // namespace
}  // namespace ldla
