#include "core/tanimoto.hpp"

#include <gtest/gtest.h>

#include "sim/fingerprint_sim.hpp"
#include "sim/rng.hpp"
#include "util/contract.hpp"

namespace ldla {
namespace {

BitMatrix random_fps(std::size_t count, std::size_t bits, std::uint64_t seed,
                     double density = 0.3) {
  Rng rng(seed);
  BitMatrix m(count, bits);
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t b = 0; b < bits; ++b) {
      if (rng.next_bool(density)) m.set(i, b, true);
    }
  }
  return m;
}

TEST(TanimotoPair, HandComputedExamples) {
  // A = 1100, B = 1010: p=2, q=2, x=1 -> 1/(2+2-1) = 1/3.
  const BitMatrix m = BitMatrix::from_snp_strings(
      std::vector<std::string>{"1100", "1010", "0000", "1100"});
  EXPECT_DOUBLE_EQ(tanimoto_pair(m, 0, m, 1), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(tanimoto_pair(m, 0, m, 3), 1.0);   // identical
  EXPECT_DOUBLE_EQ(tanimoto_pair(m, 0, m, 2), 0.0);   // vs empty
  EXPECT_DOUBLE_EQ(tanimoto_pair(m, 2, m, 2), 0.0);   // empty vs empty
}

TEST(TanimotoMatrix, MatchesPairwiseReference) {
  const BitMatrix fps = random_fps(25, 300, 1);
  const LdMatrix sim = tanimoto_matrix(fps);
  for (std::size_t i = 0; i < fps.snps(); ++i) {
    for (std::size_t j = 0; j < fps.snps(); ++j) {
      EXPECT_NEAR(sim(i, j), tanimoto_pair(fps, i, fps, j), 1e-12);
    }
  }
}

TEST(TanimotoMatrix, DiagonalIsOneForNonEmpty) {
  const BitMatrix fps = random_fps(10, 128, 2, 0.5);
  const LdMatrix sim = tanimoto_matrix(fps);
  for (std::size_t i = 0; i < fps.snps(); ++i) {
    if (fps.derived_count(i) > 0) {
      EXPECT_DOUBLE_EQ(sim(i, i), 1.0);
    }
  }
}

TEST(TanimotoMatrix, ValuesInUnitInterval) {
  const BitMatrix fps = random_fps(30, 200, 3, 0.1);
  const LdMatrix sim = tanimoto_matrix(fps);
  for (std::size_t i = 0; i < fps.snps(); ++i) {
    for (std::size_t j = 0; j < fps.snps(); ++j) {
      EXPECT_GE(sim(i, j), 0.0);
      EXPECT_LE(sim(i, j), 1.0);
    }
  }
}

TEST(TanimotoCross, MatchesPairwiseReference) {
  const BitMatrix a = random_fps(9, 256, 4);
  const BitMatrix b = random_fps(13, 256, 5);
  const LdMatrix sim = tanimoto_cross_matrix(a, b);
  for (std::size_t i = 0; i < a.snps(); ++i) {
    for (std::size_t j = 0; j < b.snps(); ++j) {
      EXPECT_NEAR(sim(i, j), tanimoto_pair(a, i, b, j), 1e-12);
    }
  }
}

TEST(TanimotoCross, RejectsMismatchedWidths) {
  const BitMatrix a = random_fps(4, 128, 6);
  const BitMatrix b = random_fps(4, 256, 7);
  EXPECT_THROW((void)tanimoto_cross_matrix(a, b), ContractViolation);
  EXPECT_THROW((void)tanimoto_pair(a, 0, b, 0), ContractViolation);
}

TEST(TanimotoTopK, FindsExactNeighbors) {
  const BitMatrix db = random_fps(200, 512, 8);
  const BitMatrix queries = random_fps(5, 512, 9);
  const auto results = tanimoto_top_k(queries, db, 10);
  ASSERT_EQ(results.size(), queries.snps());

  const LdMatrix full = tanimoto_cross_matrix(queries, db);
  for (std::size_t q = 0; q < queries.snps(); ++q) {
    ASSERT_EQ(results[q].size(), 10u);
    // Results sorted descending.
    for (std::size_t r = 1; r < results[q].size(); ++r) {
      EXPECT_GE(results[q][r - 1].similarity, results[q][r].similarity);
    }
    // Top hit really is the argmax of the dense row.
    double best = -1.0;
    for (std::size_t j = 0; j < db.snps(); ++j) {
      best = std::max(best, full(q, j));
    }
    EXPECT_DOUBLE_EQ(results[q][0].similarity, best);
  }
}

TEST(TanimotoTopK, SlabBoundariesDoNotLoseHits) {
  // More database entries than the internal slab, with k spanning slabs.
  const BitMatrix db = random_fps(2100, 64, 10);
  const BitMatrix queries = random_fps(2, 64, 11);
  const auto results = tanimoto_top_k(queries, db, 50);
  const LdMatrix full = tanimoto_cross_matrix(queries, db);
  for (std::size_t q = 0; q < 2; ++q) {
    std::vector<double> row(db.snps());
    for (std::size_t j = 0; j < db.snps(); ++j) row[j] = full(q, j);
    std::sort(row.rbegin(), row.rend());
    for (std::size_t r = 0; r < 50; ++r) {
      EXPECT_DOUBLE_EQ(results[q][r].similarity, row[r]) << "rank " << r;
    }
  }
}

TEST(TanimotoTopK, ParallelMatchesSequential) {
  const BitMatrix db = random_fps(300, 256, 14);
  const BitMatrix queries = random_fps(11, 256, 15);
  const auto seq = tanimoto_top_k(queries, db, 7);
  for (unsigned t : {1u, 2u, 4u}) {
    const auto par = tanimoto_top_k_parallel(queries, db, 7, {}, t);
    ASSERT_EQ(par.size(), seq.size());
    for (std::size_t q = 0; q < seq.size(); ++q) {
      ASSERT_EQ(par[q].size(), seq[q].size());
      for (std::size_t r = 0; r < seq[q].size(); ++r) {
        EXPECT_EQ(par[q][r].index, seq[q][r].index) << q << "," << r;
        EXPECT_DOUBLE_EQ(par[q][r].similarity, seq[q][r].similarity);
      }
    }
  }
}

TEST(TanimotoTopK, RejectsZeroK) {
  const BitMatrix db = random_fps(4, 64, 12);
  EXPECT_THROW((void)tanimoto_top_k(db, db, 0), ContractViolation);
}

TEST(TanimotoClusters, SimulatedClustersAreTighterWithinThanAcross) {
  FingerprintParams p;
  p.count = 64;
  p.bits = 512;
  p.clusters = 4;
  p.seed = 13;
  const BitMatrix fps = simulate_fingerprints(p);
  const LdMatrix sim = tanimoto_matrix(fps);

  double within = 0.0, across = 0.0;
  std::size_t n_within = 0, n_across = 0;
  for (std::size_t i = 0; i < fps.snps(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (i % p.clusters == j % p.clusters) {
        within += sim(i, j);
        ++n_within;
      } else {
        across += sim(i, j);
        ++n_across;
      }
    }
  }
  EXPECT_GT(within / static_cast<double>(n_within),
            across / static_cast<double>(n_across) + 0.2);
}

}  // namespace
}  // namespace ldla
