#include "core/parallel.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "core/detail/ld_stats_row.hpp"
#include "core/gemm/count_matrix.hpp"
#include "core/gemm/macro.hpp"
#include "core/gemm/nest.hpp"
#include "core/gemm/syrk.hpp"
#include "util/contract.hpp"
#include "util/metrics.hpp"
#include "util/partition.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace ldla {

namespace {

unsigned resolve_threads(unsigned threads) {
  if (threads == 0) {
    threads = default_thread_count();
  }
  return threads;
}

// Sequential trapezoid scan over rows [range.begin, range.end): each slab of
// rows [r0, r1) pairs with columns [0, r1). Used as the per-worker body.
// When `packed` is non-null all workers read the one shared immutable pack;
// otherwise each call re-packs privately (the fresh-pack ablation).
void scan_row_range(const BitMatrix& g, const Range& range,
                    const detail::StatTables& tables,
                    const LdTileVisitor& visit, const LdOptions& opts,
                    const PackedBitMatrix* packed) {
  const std::size_t slab = opts.slab_rows;
  const std::size_t max_rows = std::min(slab, range.size());
  const std::size_t max_cols = range.end;

  AlignedBuffer<double> values(max_rows * max_cols);

  if (opts.fused && packed != nullptr) {
    // Fused epilogue: per-worker slab counts never touch memory — only
    // the values slab (the tile payload) is resident. Bit-identical to
    // the two-pass path below.
    for (std::size_t r0 = range.begin; r0 < range.end; r0 += slab) {
      const std::size_t rows = std::min(slab, range.end - r0);
      const std::size_t cols = r0 + rows;
      gemm_count_fused(*packed, r0, r0 + rows, *packed, 0, cols,
                       [&](const CountTile& t) {
                         LDLA_TRACE_SPAN(kEpilogue);
                         for (std::size_t i = 0; i < t.rows; ++i) {
                           const std::size_t gi = t.row_begin + i;
                           detail::stat_row_shifted(
                               opts.stat, tables, gi, t.col_begin, t.row(i),
                               t.cols,
                               &values[(gi - r0) * cols + t.col_begin]);
                         }
                         LDLA_TRACE_ADD_EPILOGUE_ROWS(
                             static_cast<std::uint64_t>(t.rows));
                       });
      visit(LdTile{r0, 0, rows, cols, values.data(), cols});
    }
    return;
  }

  CountMatrix counts(max_rows, max_cols);

  for (std::size_t r0 = range.begin; r0 < range.end; r0 += slab) {
    const std::size_t rows = std::min(slab, range.end - r0);
    const std::size_t cols = r0 + rows;
    CountMatrixRef cref{counts.ref().data, rows, cols, max_cols};
    for (std::size_t i = 0; i < rows; ++i) {
      std::fill_n(&cref.at(i, 0), cols, 0u);
    }
    if (packed != nullptr) {
      gemm_count_packed(*packed, r0, r0 + rows, *packed, 0, cols, cref);
    } else {
      gemm_count(g.view(r0, r0 + rows), g.view(0, cols), cref, opts.gemm);
    }

    {
      LDLA_TRACE_SPAN(kEpilogue);
      for (std::size_t i = 0; i < rows; ++i) {
        detail::stat_row(opts.stat, tables, r0 + i, &cref.at(i, 0), cols,
                         &values[i * cols]);
      }
    }
    visit(LdTile{r0, 0, rows, cols, values.data(), cols});
  }
}

}  // namespace

void ld_scan_parallel(const BitMatrix& g, const LdTileVisitor& visit,
                      const LdOptions& opts, unsigned threads) {
  LDLA_METRICS_ONLY(
      static metrics::Histogram& h_call = metrics::histogram(
          "ldla_ld_scan_parallel_seconds",
          "ld_scan_parallel driver call latency");
      metrics::ScopedLatency metrics_lat(h_call);)
  const std::size_t n = g.snps();
  if (n == 0) return;
  LDLA_EXPECT(g.samples() > 0, "matrix has no samples");
  threads = resolve_threads(threads);

  const detail::StatTables tables = detail::make_stat_tables(g);

  // One pack shared (read-only) by every worker; the fresh-pack path had
  // each worker re-pack the full column range privately. The pack itself
  // runs as a team (one sliver range per worker, one barrier per side).
  std::optional<PackedBitMatrix> own;
  const PackedBitMatrix* packed = resolve_packed(
      g.view(), opts.gemm, opts.packed, PackSides::kBoth, own, threads);

  if (opts.parallel == ParallelMode::kNest && opts.fused &&
      packed != nullptr) {
    // In-nest: the caller walks the trapezoid slabs sequentially and the
    // whole team cooperates inside each slab's nest, stealing macro-tile
    // chunks. Tiles land in disjoint regions of the values slab, so the
    // concurrent sink needs no locking, and `visit` fires from this thread
    // after the slab's join — slab coverage is identical to ld_scan.
    const std::size_t slab = opts.slab_rows;
    AlignedBuffer<double> values(std::min(slab, n) * n);
    for (std::size_t r0 = 0; r0 < n; r0 += slab) {
      const std::size_t rows = std::min(slab, n - r0);
      const std::size_t cols = r0 + rows;
      gemm_count_parallel_nest(
          *packed, r0, r0 + rows, *packed, 0, cols,
          [&](const CountTile& t) {
            LDLA_TRACE_SPAN(kEpilogue);
            for (std::size_t i = 0; i < t.rows; ++i) {
              const std::size_t gi = t.row_begin + i;
              detail::stat_row_shifted(opts.stat, tables, gi, t.col_begin,
                                       t.row(i), t.cols,
                                       &values[(gi - r0) * cols + t.col_begin]);
            }
            LDLA_TRACE_ADD_EPILOGUE_ROWS(static_cast<std::uint64_t>(t.rows));
          },
          threads);
      visit(LdTile{r0, 0, rows, cols, values.data(), cols});
    }
    return;
  }

  const std::vector<Range> ranges = split_triangle_rows(n, threads);
  global_pool().run_tasks(ranges.size(), [&](std::size_t t) {
    scan_row_range(g, ranges[t], tables, visit, opts, packed);
  });
}

void ld_cross_scan_parallel(const BitMatrix& a, const BitMatrix& b,
                            const LdTileVisitor& visit, const LdOptions& opts,
                            unsigned threads) {
  LDLA_EXPECT(a.samples() == b.samples(),
              "cross-matrix LD needs matching sample sets");
  const std::size_t m = a.snps();
  const std::size_t n = b.snps();
  if (m == 0 || n == 0) return;
  threads = resolve_threads(threads);

  const detail::StatTables ta = detail::make_stat_tables(a);
  const detail::StatTables tb = detail::make_stat_tables(b);

  std::optional<PackedBitMatrix> own_a;
  std::optional<PackedBitMatrix> own_b;
  const PackedBitMatrix* pa = resolve_packed(a.view(), opts.gemm, opts.packed,
                                             PackSides::kA, own_a, threads);
  const PackedBitMatrix* pb = resolve_packed(b.view(), opts.gemm,
                                             opts.packed_b, PackSides::kB,
                                             own_b, threads);
  const bool use_packed = pa != nullptr && pb != nullptr;

  if (opts.parallel == ParallelMode::kNest && opts.fused && use_packed) {
    // In-nest: sequential slab walk, team-parallel nest per slab (see
    // ld_scan_parallel); `visit` fires sequentially from this thread.
    const std::size_t slab = opts.slab_rows;
    AlignedBuffer<double> values(std::min(slab, m) * n);
    for (std::size_t r0 = 0; r0 < m; r0 += slab) {
      const std::size_t rows = std::min(slab, m - r0);
      gemm_count_parallel_nest(
          *pa, r0, r0 + rows, *pb, 0, n,
          [&](const CountTile& tile) {
            LDLA_TRACE_SPAN(kEpilogue);
            for (std::size_t i = 0; i < tile.rows; ++i) {
              const std::size_t gi = tile.row_begin + i;
              detail::stat_row_cross_shifted(
                  opts.stat, ta, gi, tb, tile.col_begin, tile.row(i),
                  tile.cols, &values[(gi - r0) * n + tile.col_begin]);
            }
            LDLA_TRACE_ADD_EPILOGUE_ROWS(
                static_cast<std::uint64_t>(tile.rows));
          },
          threads);
      visit(LdTile{r0, 0, rows, n, values.data(), n});
    }
    return;
  }

  const std::vector<Range> ranges = split_uniform(m, threads);
  global_pool().run_tasks(ranges.size(), [&](std::size_t t) {
    const Range range = ranges[t];
    const std::size_t slab = opts.slab_rows;
    const std::size_t max_rows = std::min(slab, range.size());
    AlignedBuffer<double> values(max_rows * n);
    if (opts.fused && use_packed) {
      // Fused epilogue: no per-worker slab CountMatrix.
      for (std::size_t r0 = range.begin; r0 < range.end; r0 += slab) {
        const std::size_t rows = std::min(slab, range.end - r0);
        gemm_count_fused(*pa, r0, r0 + rows, *pb, 0, n,
                         [&](const CountTile& tile) {
                           LDLA_TRACE_SPAN(kEpilogue);
                           for (std::size_t i = 0; i < tile.rows; ++i) {
                             const std::size_t gi = tile.row_begin + i;
                             detail::stat_row_cross_shifted(
                                 opts.stat, ta, gi, tb, tile.col_begin,
                                 tile.row(i), tile.cols,
                                 &values[(gi - r0) * n + tile.col_begin]);
                           }
                           LDLA_TRACE_ADD_EPILOGUE_ROWS(
                               static_cast<std::uint64_t>(tile.rows));
                         });
        visit(LdTile{r0, 0, rows, n, values.data(), n});
      }
      return;
    }
    CountMatrix counts(max_rows, n);
    for (std::size_t r0 = range.begin; r0 < range.end; r0 += slab) {
      const std::size_t rows = std::min(slab, range.end - r0);
      counts.zero();
      CountMatrixRef cref{counts.ref().data, rows, n, n};
      if (use_packed) {
        gemm_count_packed(*pa, r0, r0 + rows, *pb, 0, n, cref);
      } else {
        gemm_count(a.view(r0, r0 + rows), b.view(), cref, opts.gemm);
      }
      {
        LDLA_TRACE_SPAN(kEpilogue);
        for (std::size_t i = 0; i < rows; ++i) {
          detail::stat_row_cross(opts.stat, ta, r0 + i, tb, &cref.at(i, 0), n,
                                 &values[i * n]);
        }
      }
      visit(LdTile{r0, 0, rows, n, values.data(), n});
    }
  });
}

LdMatrix ld_matrix_parallel(const BitMatrix& g, const LdOptions& opts,
                            unsigned threads) {
  LDLA_METRICS_ONLY(
      static metrics::Histogram& h_call = metrics::histogram(
          "ldla_ld_matrix_parallel_seconds",
          "ld_matrix_parallel driver call latency");
      metrics::ScopedLatency metrics_lat(h_call);)
  const std::size_t n = g.snps();
  LdMatrix out(n, n);
  if (n == 0) return out;
  LDLA_EXPECT(g.samples() > 0, "matrix has no samples");
  threads = resolve_threads(threads);

  if (opts.parallel == ParallelMode::kNest && opts.fused) {
    std::optional<PackedBitMatrix> own;
    const PackedBitMatrix* packed = resolve_packed(
        g.view(), opts.gemm, opts.packed, PackSides::kBoth, own, threads);
    if (packed != nullptr) {
      // Triangular in-nest SYRK over the whole matrix: the team steals
      // diagonal-and-below macro-tile chunks, each tile writes only
      // canonical (j <= i) entries of its disjoint window of `out`, then
      // one mirror pass fills the upper triangle — the same epilogue and
      // bit-identical values as the sequential fused ld_matrix.
      const detail::StatTables tables = detail::make_stat_tables(g);
      syrk_count_parallel_nest(
          *packed, 0, n,
          [&](const CountTile& t) {
            LDLA_TRACE_SPAN(kEpilogue);
            std::uint64_t rows_converted = 0;
            for (std::size_t i = 0; i < t.rows; ++i) {
              const std::size_t gi = t.row_begin + i;
              if (gi < t.col_begin) continue;
              const std::size_t hi = std::min(t.col_begin + t.cols, gi + 1);
              detail::stat_row_shifted(opts.stat, tables, gi, t.col_begin,
                                       t.row(i), hi - t.col_begin,
                                       &out(gi, t.col_begin));
              ++rows_converted;
            }
            LDLA_TRACE_ADD_EPILOGUE_ROWS(rows_converted);
          },
          threads);
      mirror_ld_lower_to_upper(out);
      return out;
    }
  }

  // Tiles cover disjoint rows, so concurrent writes never alias.
  ld_scan_parallel(
      g,
      [&out](const LdTile& tile) {
        for (std::size_t i = 0; i < tile.rows; ++i) {
          for (std::size_t j = 0; j < tile.cols; ++j) {
            out(tile.row_begin + i, tile.col_begin + j) = tile.at(i, j);
          }
        }
      },
      opts, threads);

  // Mirror the computed lower trapezoids into the upper triangle.
  mirror_ld_lower_to_upper(out);
  return out;
}

LdMatrix ld_cross_matrix_parallel(const BitMatrix& a, const BitMatrix& b,
                                  const LdOptions& opts, unsigned threads) {
  LDLA_EXPECT(a.samples() == b.samples(),
              "cross-matrix LD needs matching sample sets");
  const std::size_t m = a.snps();
  const std::size_t n = b.snps();
  LdMatrix out(m, n);
  if (m == 0 || n == 0) return out;
  threads = resolve_threads(threads);

  if (opts.parallel == ParallelMode::kNest && opts.fused) {
    std::optional<PackedBitMatrix> own_a;
    std::optional<PackedBitMatrix> own_b;
    const PackedBitMatrix* pa = resolve_packed(
        a.view(), opts.gemm, opts.packed, PackSides::kA, own_a, threads);
    const PackedBitMatrix* pb = resolve_packed(
        b.view(), opts.gemm, opts.packed_b, PackSides::kB, own_b, threads);
    if (pa != nullptr && pb != nullptr) {
      // One in-nest GEMM over the whole m x n problem: stats land straight
      // in `out` from hot tiles (disjoint windows), no slab staging.
      const detail::StatTables ta = detail::make_stat_tables(a);
      const detail::StatTables tb = detail::make_stat_tables(b);
      gemm_count_parallel_nest(
          *pa, 0, m, *pb, 0, n,
          [&](const CountTile& t) {
            LDLA_TRACE_SPAN(kEpilogue);
            for (std::size_t i = 0; i < t.rows; ++i) {
              const std::size_t gi = t.row_begin + i;
              detail::stat_row_cross_shifted(opts.stat, ta, gi, tb,
                                             t.col_begin, t.row(i), t.cols,
                                             &out(gi, t.col_begin));
            }
            LDLA_TRACE_ADD_EPILOGUE_ROWS(static_cast<std::uint64_t>(t.rows));
          },
          threads);
      return out;
    }
  }

  ld_cross_scan_parallel(
      a, b,
      [&out](const LdTile& tile) {
        for (std::size_t i = 0; i < tile.rows; ++i) {
          for (std::size_t j = 0; j < tile.cols; ++j) {
            out(tile.row_begin + i, tile.col_begin + j) = tile.at(i, j);
          }
        }
      },
      opts, threads);
  return out;
}

}  // namespace ldla
