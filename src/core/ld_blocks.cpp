#include "core/ld_blocks.hpp"

#include <cmath>

#include "core/band.hpp"
#include "util/contract.hpp"

namespace ldla {

std::vector<LdBlock> find_ld_blocks(const BitMatrix& g,
                                    const LdBlockParams& params) {
  LDLA_EXPECT(params.threshold >= 0.0 && params.threshold <= 1.0,
              "threshold must lie in [0, 1]");
  LDLA_EXPECT(params.max_span > 0, "max span must be positive");
  std::vector<LdBlock> blocks;
  const std::size_t n = g.snps();
  if (n == 0) return blocks;

  // Collect the banded r^2 values: band[i * max_span + (d-1)] = r^2 of
  // (i, i-d) for 1 <= d <= min(i, max_span).
  const std::size_t span = params.max_span;
  std::vector<double> band(n * span, 0.0);
  BandOptions opts;
  opts.gemm = params.gemm;
  ld_band_scan(g, span, [&](const LdTile& tile) {
    for (std::size_t i = 0; i < tile.rows; ++i) {
      const std::size_t gi = tile.row_begin + i;
      for (std::size_t j = 0; j < tile.cols; ++j) {
        const std::size_t gj = tile.col_begin + j;
        if (gj >= gi) break;
        const std::size_t d = gi - gj;
        if (d > span) continue;
        const double v = tile.at(i, j);
        band[gi * span + (d - 1)] = std::isfinite(v) ? v : 0.0;
      }
    }
  }, opts);

  auto r2_at = [&](std::size_t i, std::size_t j) {
    // i > j, i - j <= span
    return band[i * span + (i - j - 1)];
  };

  // Greedy extension.
  std::size_t begin = 0;
  double pair_sum = 0.0;   // sum of r^2 over pairs inside the current block
  std::size_t pairs = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    bool extend = false;
    double link_sum = 0.0;
    std::size_t link_count = 0;
    if (i < n) {
      for (std::size_t j = begin; j < i; ++j) {
        if (i - j > span) continue;
        link_sum += r2_at(i, j);
        ++link_count;
      }
      extend = link_count > 0 &&
               link_sum / static_cast<double>(link_count) >= params.threshold;
    }
    if (extend) {
      pair_sum += link_sum;
      pairs += link_count;
    } else {
      blocks.push_back(
          {begin, i,
           pairs > 0 ? pair_sum / static_cast<double>(pairs) : 0.0});
      begin = i;
      pair_sum = 0.0;
      pairs = 0;
    }
  }
  return blocks;
}

}  // namespace ldla
