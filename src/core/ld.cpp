#include "core/ld.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "core/detail/ld_stats_row.hpp"
#include "core/gemm/count_matrix.hpp"
#include "core/gemm/macro.hpp"
#include "core/gemm/syrk.hpp"
#include "util/contract.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace ldla {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}

std::string ld_statistic_name(LdStatistic s) {
  switch (s) {
    case LdStatistic::kD: return "D";
    case LdStatistic::kDPrime: return "D'";
    case LdStatistic::kRSquared: return "r^2";
  }
  return "unknown";
}

double ld_d(std::uint64_t ci, std::uint64_t cj, std::uint64_t cij,
            std::uint64_t nseq) {
  LDLA_EXPECT(nseq > 0, "sample size must be positive");
  const double n = static_cast<double>(nseq);
  const double pij = static_cast<double>(cij) / n;
  const double pi = static_cast<double>(ci) / n;
  const double pj = static_cast<double>(cj) / n;
  return pij - pi * pj;
}

double ld_r_squared(std::uint64_t ci, std::uint64_t cj, std::uint64_t cij,
                    std::uint64_t nseq) {
  LDLA_EXPECT(nseq > 0, "sample size must be positive");
  const double n = static_cast<double>(nseq);
  const double pi = static_cast<double>(ci) / n;
  const double pj = static_cast<double>(cj) / n;
  if (pi <= 0.0 || pi >= 1.0 || pj <= 0.0 || pj >= 1.0) {
    return kNaN;  // monomorphic SNP: r^2 undefined
  }
  // The operation order matches detail::stat_row exactly so the scalar and
  // vectorized row paths agree bit-for-bit.
  const double inv_i = 1.0 / (pi * (1.0 - pi));
  const double inv_j = 1.0 / (pj * (1.0 - pj));
  const double pij = static_cast<double>(cij) / n;
  const double d = pij - pi * pj;
  const double r = (d * d) * (inv_i * inv_j);
  // Clamp tiny floating-point excursions so the documented r^2 in [0, 1]
  // invariant holds exactly.
  return r > 1.0 ? 1.0 : r;
}

double ld_d_prime(std::uint64_t ci, std::uint64_t cj, std::uint64_t cij,
                  std::uint64_t nseq) {
  LDLA_EXPECT(nseq > 0, "sample size must be positive");
  const double n = static_cast<double>(nseq);
  const double pi = static_cast<double>(ci) / n;
  const double pj = static_cast<double>(cj) / n;
  if (pi <= 0.0 || pi >= 1.0 || pj <= 0.0 || pj >= 1.0) return kNaN;
  const double d = static_cast<double>(cij) / n - pi * pj;
  double dmax;
  if (d >= 0.0) {
    dmax = std::min(pi * (1.0 - pj), (1.0 - pi) * pj);
  } else {
    dmax = std::min(pi * pj, (1.0 - pi) * (1.0 - pj));
  }
  if (dmax <= 0.0) return kNaN;
  return std::clamp(d / dmax, -1.0, 1.0);
}

double ld_value(LdStatistic stat, std::uint64_t ci, std::uint64_t cj,
                std::uint64_t cij, std::uint64_t nseq) {
  switch (stat) {
    case LdStatistic::kD: return ld_d(ci, cj, cij, nseq);
    case LdStatistic::kDPrime: return ld_d_prime(ci, cj, cij, nseq);
    case LdStatistic::kRSquared: return ld_r_squared(ci, cj, cij, nseq);
  }
  return kNaN;
}

void mirror_ld_lower_to_upper(LdMatrix& m) {
  const std::size_t n = m.rows();
  LDLA_EXPECT(m.cols() == n, "mirror needs a square matrix");
  LDLA_TRACE_SPAN(kMirror);
  // Cache-blocked transpose copy (same shape as mirror_lower_to_upper for
  // counts): 64 x 64 x 8 B destination blocks stay resident.
  constexpr std::size_t kBlock = 64;
  for (std::size_t jb = 0; jb < n; jb += kBlock) {
    const std::size_t j_end = std::min(jb + kBlock, n);
    for (std::size_t i = jb; i < j_end; ++i) {
      for (std::size_t j = i + 1; j < j_end; ++j) {
        m(i, j) = m(j, i);
      }
    }
    for (std::size_t ib = j_end; ib < n; ib += kBlock) {
      const std::size_t i_end = std::min(ib + kBlock, n);
      for (std::size_t i = ib; i < i_end; ++i) {
        for (std::size_t j = jb; j < j_end; ++j) {
          m(j, i) = m(i, j);
        }
      }
    }
  }
}

LdMatrix ld_matrix(const BitMatrix& g, const LdOptions& opts) {
  LDLA_METRICS_ONLY(
      static metrics::Histogram& h_call = metrics::histogram(
          "ldla_ld_matrix_seconds", "ld_matrix driver call latency");
      metrics::ScopedLatency metrics_lat(h_call);)
  const std::size_t n = g.snps();
  LdMatrix out(n, n);
  if (n == 0) return out;
  LDLA_EXPECT(g.samples() > 0, "matrix has no samples");

  if (opts.fused) {
    std::optional<PackedBitMatrix> own;
    const PackedBitMatrix* packed = resolve_packed(
        g.view(), opts.gemm, opts.packed, PackSides::kBoth, own);
    if (packed != nullptr) {
      // Fused epilogue: convert each finalized count tile to statistics
      // while hot, write the lower triangle, mirror the stats. All three
      // statistics are bitwise symmetric in (i, j) (their formulas only
      // combine the operands through commutative products and min), so
      // this equals the two-pass count-mirror result bit-for-bit.
      const detail::StatTables tables = detail::make_stat_tables(g);
      syrk_count_fused(*packed, 0, n, [&](const CountTile& t) {
        LDLA_TRACE_SPAN(kEpilogue);
        std::uint64_t rows_converted = 0;
        for (std::size_t i = 0; i < t.rows; ++i) {
          const std::size_t gi = t.row_begin + i;
          if (gi < t.col_begin) continue;
          const std::size_t hi = std::min(t.col_begin + t.cols, gi + 1);
          detail::stat_row_shifted(opts.stat, tables, gi, t.col_begin,
                                   t.row(i), hi - t.col_begin,
                                   &out(gi, t.col_begin));
          ++rows_converted;
        }
        LDLA_TRACE_ADD_EPILOGUE_ROWS(rows_converted);
      });
      mirror_ld_lower_to_upper(out);
      return out;
    }
  }

  CountMatrix counts(n, n);
  if (opts.packed != nullptr) {
    expect_packed_matches(*opts.packed, g.view());
    syrk_count_packed(*opts.packed, 0, n, counts.ref());
  } else {
    syrk_count(g.view(), counts.ref(), opts.gemm);
  }

  const detail::StatTables tables = detail::make_stat_tables(g);
  LDLA_TRACE_SPAN(kEpilogue);
  for (std::size_t i = 0; i < n; ++i) {
    detail::stat_row(opts.stat, tables, i, &counts(i, 0), n, &out(i, 0));
  }
  return out;
}

LdMatrix ld_cross_matrix(const BitMatrix& a, const BitMatrix& b,
                         const LdOptions& opts) {
  LDLA_METRICS_ONLY(
      static metrics::Histogram& h_call = metrics::histogram(
          "ldla_ld_cross_matrix_seconds",
          "ld_cross_matrix driver call latency");
      metrics::ScopedLatency metrics_lat(h_call);)
  LDLA_EXPECT(a.samples() == b.samples(),
              "cross-matrix LD needs matching sample sets");
  const std::size_t m = a.snps();
  const std::size_t n = b.snps();
  LdMatrix out(m, n);
  if (m == 0 || n == 0) return out;

  std::optional<PackedBitMatrix> own_a;
  std::optional<PackedBitMatrix> own_b;
  const PackedBitMatrix* pa = resolve_packed(a.view(), opts.gemm, opts.packed,
                                             PackSides::kA, own_a);
  const PackedBitMatrix* pb = resolve_packed(b.view(), opts.gemm,
                                             opts.packed_b, PackSides::kB,
                                             own_b);
  const detail::StatTables ta = detail::make_stat_tables(a);
  const detail::StatTables tb = detail::make_stat_tables(b);

  if (opts.fused && pa != nullptr && pb != nullptr) {
    // Fused epilogue: stats written straight from hot count tiles; no
    // m x n CountMatrix is ever allocated.
    gemm_count_fused(*pa, 0, m, *pb, 0, n, [&](const CountTile& t) {
      LDLA_TRACE_SPAN(kEpilogue);
      for (std::size_t i = 0; i < t.rows; ++i) {
        const std::size_t gi = t.row_begin + i;
        detail::stat_row_cross_shifted(opts.stat, ta, gi, tb, t.col_begin,
                                       t.row(i), t.cols,
                                       &out(gi, t.col_begin));
      }
      LDLA_TRACE_ADD_EPILOGUE_ROWS(static_cast<std::uint64_t>(t.rows));
    });
    return out;
  }

  CountMatrix counts(m, n);
  if (pa != nullptr && pb != nullptr) {
    gemm_count_packed(*pa, 0, m, *pb, 0, n, counts.ref());
  } else {
    gemm_count(a.view(), b.view(), counts.ref(), opts.gemm);
  }

  LDLA_TRACE_SPAN(kEpilogue);
  for (std::size_t i = 0; i < m; ++i) {
    detail::stat_row_cross(opts.stat, ta, i, tb, &counts(i, 0), n,
                           &out(i, 0));
  }
  return out;
}

void ld_scan(const BitMatrix& g, const LdTileVisitor& visit,
             const LdOptions& opts) {
  LDLA_METRICS_ONLY(
      static metrics::Histogram& h_call = metrics::histogram(
          "ldla_ld_scan_seconds", "ld_scan driver call latency");
      metrics::ScopedLatency metrics_lat(h_call);)
  const std::size_t n = g.snps();
  if (n == 0) return;
  LDLA_EXPECT(g.samples() > 0, "matrix has no samples");
  LDLA_EXPECT(opts.slab_rows > 0, "slab height must be positive");

  const detail::StatTables tables = detail::make_stat_tables(g);
  const std::size_t slab = opts.slab_rows;

  // Pack once for the whole trapezoid: every slab re-reads the same
  // column stripe [0, r1), which the fresh path re-packed per slab.
  std::optional<PackedBitMatrix> own;
  const PackedBitMatrix* packed =
      resolve_packed(g.view(), opts.gemm, opts.packed, PackSides::kBoth, own);

  AlignedBuffer<double> values(std::min(slab, n) * n);

  if (opts.fused && packed != nullptr) {
    // Fused epilogue: the slab's count tiles are converted to statistics
    // while hot and never stored — only the values slab (the tile payload
    // itself) is materialized, so per-slab memory drops from 12·slab·n to
    // 8·slab·n bytes. Tile geometry and values are bit-identical to the
    // two-pass path.
    for (std::size_t r0 = 0; r0 < n; r0 += slab) {
      const std::size_t rows = std::min(slab, n - r0);
      const std::size_t cols = r0 + rows;  // lower-trapezoid: j < slab end
      gemm_count_fused(*packed, r0, r0 + rows, *packed, 0, cols,
                       [&](const CountTile& t) {
                         LDLA_TRACE_SPAN(kEpilogue);
                         for (std::size_t i = 0; i < t.rows; ++i) {
                           const std::size_t gi = t.row_begin + i;
                           detail::stat_row_shifted(
                               opts.stat, tables, gi, t.col_begin, t.row(i),
                               t.cols,
                               &values[(gi - r0) * cols + t.col_begin]);
                         }
                         LDLA_TRACE_ADD_EPILOGUE_ROWS(
                             static_cast<std::uint64_t>(t.rows));
                       });
      visit(LdTile{r0, 0, rows, cols, values.data(), cols});
    }
    return;
  }

  CountMatrix counts(std::min(slab, n), n);

  for (std::size_t r0 = 0; r0 < n; r0 += slab) {
    const std::size_t rows = std::min(slab, n - r0);
    const std::size_t cols = r0 + rows;  // lower-trapezoid: j < slab end
    CountMatrixRef cref{counts.ref().data, rows, cols, n};
    for (std::size_t i = 0; i < rows; ++i) {
      std::fill_n(&cref.at(i, 0), cols, 0u);
    }
    if (packed != nullptr) {
      gemm_count_packed(*packed, r0, r0 + rows, *packed, 0, cols, cref);
    } else {
      gemm_count(g.view(r0, r0 + rows), g.view(0, cols), cref, opts.gemm);
    }

    {
      LDLA_TRACE_SPAN(kEpilogue);
      for (std::size_t i = 0; i < rows; ++i) {
        detail::stat_row(opts.stat, tables, r0 + i, &cref.at(i, 0), cols,
                         &values[i * cols]);
      }
    }
    visit(LdTile{r0, 0, rows, cols, values.data(), cols});
  }
}

void ld_cross_scan(const BitMatrix& a, const BitMatrix& b,
                   const LdTileVisitor& visit, const LdOptions& opts) {
  LDLA_METRICS_ONLY(
      static metrics::Histogram& h_call = metrics::histogram(
          "ldla_ld_cross_scan_seconds", "ld_cross_scan driver call latency");
      metrics::ScopedLatency metrics_lat(h_call);)
  LDLA_EXPECT(a.samples() == b.samples(),
              "cross-matrix LD needs matching sample sets");
  const std::size_t m = a.snps();
  const std::size_t n = b.snps();
  if (m == 0 || n == 0) return;
  LDLA_EXPECT(opts.slab_rows > 0, "slab height must be positive");

  const detail::StatTables ta = detail::make_stat_tables(a);
  const detail::StatTables tb = detail::make_stat_tables(b);
  const std::size_t slab = opts.slab_rows;

  // Pack once across slabs — the fresh path re-packed all of B per slab.
  std::optional<PackedBitMatrix> own_a;
  std::optional<PackedBitMatrix> own_b;
  const PackedBitMatrix* pa = resolve_packed(a.view(), opts.gemm, opts.packed,
                                             PackSides::kA, own_a);
  const PackedBitMatrix* pb = resolve_packed(b.view(), opts.gemm,
                                             opts.packed_b, PackSides::kB,
                                             own_b);
  const bool use_packed = pa != nullptr && pb != nullptr;

  AlignedBuffer<double> values(std::min(slab, m) * n);

  if (opts.fused && use_packed) {
    // Fused epilogue: no slab CountMatrix; stats land in the values slab
    // straight from hot tiles (geometry and values unchanged).
    for (std::size_t r0 = 0; r0 < m; r0 += slab) {
      const std::size_t rows = std::min(slab, m - r0);
      gemm_count_fused(*pa, r0, r0 + rows, *pb, 0, n,
                       [&](const CountTile& t) {
                         LDLA_TRACE_SPAN(kEpilogue);
                         for (std::size_t i = 0; i < t.rows; ++i) {
                           const std::size_t gi = t.row_begin + i;
                           detail::stat_row_cross_shifted(
                               opts.stat, ta, gi, tb, t.col_begin, t.row(i),
                               t.cols,
                               &values[(gi - r0) * n + t.col_begin]);
                         }
                         LDLA_TRACE_ADD_EPILOGUE_ROWS(
                             static_cast<std::uint64_t>(t.rows));
                       });
      visit(LdTile{r0, 0, rows, n, values.data(), n});
    }
    return;
  }

  CountMatrix counts(std::min(slab, m), n);

  for (std::size_t r0 = 0; r0 < m; r0 += slab) {
    const std::size_t rows = std::min(slab, m - r0);
    counts.zero();
    CountMatrixRef cref{counts.ref().data, rows, n, n};
    if (use_packed) {
      gemm_count_packed(*pa, r0, r0 + rows, *pb, 0, n, cref);
    } else {
      gemm_count(a.view(r0, r0 + rows), b.view(), cref, opts.gemm);
    }

    {
      LDLA_TRACE_SPAN(kEpilogue);
      for (std::size_t i = 0; i < rows; ++i) {
        detail::stat_row_cross(opts.stat, ta, r0 + i, tb, &cref.at(i, 0), n,
                               &values[i * n]);
      }
    }
    visit(LdTile{r0, 0, rows, n, values.data(), n});
  }
}

void ld_stat_scan(const BitMatrix& g, const LdStatTileVisitor& visit,
                  const LdOptions& opts) {
  LDLA_METRICS_ONLY(
      static metrics::Histogram& h_call = metrics::histogram(
          "ldla_ld_stat_scan_seconds", "ld_stat_scan driver call latency");
      metrics::ScopedLatency metrics_lat(h_call);)
  const std::size_t n = g.snps();
  if (n == 0) return;
  LDLA_EXPECT(g.samples() > 0, "matrix has no samples");
  LDLA_EXPECT(visit != nullptr, "stat-tile scan needs a visitor");
  const detail::StatTables tables = detail::make_stat_tables(g);

  std::optional<PackedBitMatrix> own;
  const PackedBitMatrix* packed =
      resolve_packed(g.view(), opts.gemm, opts.packed, PackSides::kBoth, own);

  if (packed != nullptr) {
    const GemmPlan& plan = packed->plan();
    AlignedBuffer<double> values(plan.mc * plan.nc);
    syrk_count_fused(*packed, 0, n, [&](const CountTile& t) {
      if (t.col_begin + t.cols <= t.row_begin + 1) {
        // Tile entirely on/below the diagonal: every entry is canonical.
        {
          LDLA_TRACE_SPAN(kEpilogue);
          for (std::size_t i = 0; i < t.rows; ++i) {
            detail::stat_row_shifted(opts.stat, tables, t.row_begin + i,
                                     t.col_begin, t.row(i), t.cols,
                                     &values[i * t.cols]);
          }
          LDLA_TRACE_ADD_EPILOGUE_ROWS(static_cast<std::uint64_t>(t.rows));
        }
        visit(LdTile{t.row_begin, t.col_begin, t.rows, t.cols,
                     values.data(), t.cols});
      } else {
        // Diagonal-crossing tile: emit the valid prefix of each row as a
        // one-row fragment so no above-diagonal entry ever escapes. The
        // span covers the interleaved visits too — fragment rows are tiny.
        LDLA_TRACE_SPAN(kEpilogue);
        std::uint64_t rows_converted = 0;
        for (std::size_t i = 0; i < t.rows; ++i) {
          const std::size_t gi = t.row_begin + i;
          if (gi < t.col_begin) continue;
          const std::size_t width =
              std::min(t.col_begin + t.cols, gi + 1) - t.col_begin;
          detail::stat_row_shifted(opts.stat, tables, gi, t.col_begin,
                                   t.row(i), width, values.data());
          ++rows_converted;
          visit(LdTile{gi, t.col_begin, 1, width, values.data(), width});
        }
        LDLA_TRACE_ADD_EPILOGUE_ROWS(rows_converted);
      }
    });
    return;
  }

  // Two-pass fallback (no packed operand): slab counts, per-row canonical
  // emission — same every-pair-once contract, O(slab·n) resident.
  const std::size_t slab = std::min(opts.slab_rows, n);
  LDLA_EXPECT(slab > 0, "slab height must be positive");
  CountMatrix counts(slab, n);
  AlignedBuffer<double> values(n);
  for (std::size_t r0 = 0; r0 < n; r0 += slab) {
    const std::size_t rows = std::min(slab, n - r0);
    const std::size_t cols = r0 + rows;
    CountMatrixRef cref{counts.ref().data, rows, cols, n};
    for (std::size_t i = 0; i < rows; ++i) {
      std::fill_n(&cref.at(i, 0), cols, 0u);
    }
    gemm_count(g.view(r0, r0 + rows), g.view(0, cols), cref, opts.gemm);
    LDLA_TRACE_SPAN(kEpilogue);
    for (std::size_t i = 0; i < rows; ++i) {
      const std::size_t gi = r0 + i;
      detail::stat_row(opts.stat, tables, gi, &cref.at(i, 0), gi + 1,
                       values.data());
      visit(LdTile{gi, 0, 1, gi + 1, values.data(), gi + 1});
    }
  }
}

void ld_cross_stat_scan(const BitMatrix& a, const BitMatrix& b,
                        const LdStatTileVisitor& visit,
                        const LdOptions& opts) {
  LDLA_METRICS_ONLY(
      static metrics::Histogram& h_call = metrics::histogram(
          "ldla_ld_cross_stat_scan_seconds",
          "ld_cross_stat_scan driver call latency");
      metrics::ScopedLatency metrics_lat(h_call);)
  LDLA_EXPECT(a.samples() == b.samples(),
              "cross-matrix LD needs matching sample sets");
  const std::size_t m = a.snps();
  const std::size_t n = b.snps();
  if (m == 0 || n == 0) return;
  LDLA_EXPECT(visit != nullptr, "stat-tile scan needs a visitor");
  const detail::StatTables ta = detail::make_stat_tables(a);
  const detail::StatTables tb = detail::make_stat_tables(b);

  std::optional<PackedBitMatrix> own_a;
  std::optional<PackedBitMatrix> own_b;
  const PackedBitMatrix* pa = resolve_packed(a.view(), opts.gemm, opts.packed,
                                             PackSides::kA, own_a);
  const PackedBitMatrix* pb = resolve_packed(b.view(), opts.gemm,
                                             opts.packed_b, PackSides::kB,
                                             own_b);
  if (pa != nullptr && pb != nullptr) {
    const GemmPlan& plan = pa->plan();
    AlignedBuffer<double> values(plan.mc * plan.nc);
    gemm_count_fused(*pa, 0, m, *pb, 0, n, [&](const CountTile& t) {
      {
        LDLA_TRACE_SPAN(kEpilogue);
        for (std::size_t i = 0; i < t.rows; ++i) {
          detail::stat_row_cross_shifted(opts.stat, ta, t.row_begin + i, tb,
                                         t.col_begin, t.row(i), t.cols,
                                         &values[i * t.cols]);
        }
        LDLA_TRACE_ADD_EPILOGUE_ROWS(static_cast<std::uint64_t>(t.rows));
      }
      visit(LdTile{t.row_begin, t.col_begin, t.rows, t.cols, values.data(),
                   t.cols});
    });
    return;
  }

  // Two-pass fallback: slab counts, one tile per slab.
  const std::size_t slab = std::min(opts.slab_rows, m);
  LDLA_EXPECT(slab > 0, "slab height must be positive");
  CountMatrix counts(slab, n);
  AlignedBuffer<double> values(slab * n);
  for (std::size_t r0 = 0; r0 < m; r0 += slab) {
    const std::size_t rows = std::min(slab, m - r0);
    counts.zero();
    CountMatrixRef cref{counts.ref().data, rows, n, n};
    gemm_count(a.view(r0, r0 + rows), b.view(), cref, opts.gemm);
    {
      LDLA_TRACE_SPAN(kEpilogue);
      for (std::size_t i = 0; i < rows; ++i) {
        detail::stat_row_cross(opts.stat, ta, r0 + i, tb, &cref.at(i, 0), n,
                               &values[i * n]);
      }
    }
    visit(LdTile{r0, 0, rows, n, values.data(), n});
  }
}

}  // namespace ldla
