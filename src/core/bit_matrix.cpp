#include "core/bit_matrix.hpp"

#include <cstring>

#include "core/popcount.hpp"
#include "util/contract.hpp"

namespace ldla {

namespace {
std::size_t aligned_stride(std::size_t n_words) {
  const std::size_t a = BitMatrix::kRowAlignWords;
  return (n_words + a - 1) / a * a;
}
}  // namespace

BitMatrix::BitMatrix(std::size_t n_snps, std::size_t n_samples)
    : n_snps_(n_snps),
      n_samples_(n_samples),
      n_words_(words_for_bits(n_samples)),
      stride_(aligned_stride(n_words_)),
      words_(n_snps * stride_) {
  LDLA_EXPECT(n_samples < (std::uint64_t{1} << 32),
              "sample counts beyond 2^32 overflow the count accumulators");
  words_.zero();
}

BitMatrix BitMatrix::clone() const {
  BitMatrix out(n_snps_, n_samples_);
  if (!words_.empty()) {
    std::memcpy(out.words_.data(), words_.data(),
                words_.size() * sizeof(std::uint64_t));
  }
  return out;
}

BitMatrix BitMatrix::from_snp_strings(std::span<const std::string> snps) {
  if (snps.empty()) return {};
  const std::size_t samples = snps.front().size();
  BitMatrix out(snps.size(), samples);
  for (std::size_t s = 0; s < snps.size(); ++s) {
    const std::string& str = snps[s];
    if (str.size() != samples) {
      throw ParseError("SNP " + std::to_string(s) + " has " +
                       std::to_string(str.size()) + " states, expected " +
                       std::to_string(samples));
    }
    for (std::size_t i = 0; i < samples; ++i) {
      if (str[i] == '1') {
        out.set(s, i, true);
      } else if (str[i] != '0') {
        throw ParseError(std::string("invalid allelic state '") + str[i] +
                         "' in SNP " + std::to_string(s));
      }
    }
  }
  return out;
}

void BitMatrix::set(std::size_t snp, std::size_t sample, bool derived) {
  LDLA_EXPECT(snp < n_snps_ && sample < n_samples_, "index out of range");
  std::uint64_t& w = row_data(snp)[sample / 64];
  const std::uint64_t bit = std::uint64_t{1} << (sample % 64);
  if (derived) {
    w |= bit;
  } else {
    w &= ~bit;
  }
}

bool BitMatrix::get(std::size_t snp, std::size_t sample) const {
  LDLA_EXPECT(snp < n_snps_ && sample < n_samples_, "index out of range");
  return (row_data(snp)[sample / 64] >> (sample % 64)) & 1u;
}

std::uint64_t BitMatrix::derived_count(std::size_t snp) const {
  LDLA_EXPECT(snp < n_snps_, "SNP index out of range");
  return popcount_words({row_data(snp), n_words_});
}

double BitMatrix::allele_frequency(std::size_t snp) const {
  LDLA_EXPECT(n_samples_ > 0, "empty matrix has no frequencies");
  return static_cast<double>(derived_count(snp)) /
         static_cast<double>(n_samples_);
}

std::vector<double> BitMatrix::allele_frequencies() const {
  std::vector<double> p(n_snps_);
  for (std::size_t s = 0; s < n_snps_; ++s) p[s] = allele_frequency(s);
  return p;
}

BitMatrixView BitMatrix::view() const noexcept {
  return {words_.data(), n_snps_, n_words_, stride_, n_samples_};
}

BitMatrixView BitMatrix::view(std::size_t snp_begin, std::size_t snp_end) const {
  LDLA_EXPECT(snp_begin <= snp_end && snp_end <= n_snps_,
              "SNP range out of bounds");
  return {words_.data() + snp_begin * stride_, snp_end - snp_begin, n_words_,
          stride_, n_samples_};
}

std::string BitMatrix::snp_string(std::size_t snp) const {
  std::string s(n_samples_, '0');
  for (std::size_t i = 0; i < n_samples_; ++i) {
    if (get(snp, i)) s[i] = '1';
  }
  return s;
}

BitMatrix BitMatrix::gather_rows(std::span<const std::size_t> rows) const {
  BitMatrix out(rows.size(), n_samples_);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    LDLA_EXPECT(rows[r] < n_snps_, "gathered row out of range");
    std::memcpy(out.row_data(r), row_data(rows[r]),
                n_words_ * sizeof(std::uint64_t));
  }
  return out;
}

bool BitMatrix::is_polymorphic(std::size_t snp) const {
  const std::uint64_t c = derived_count(snp);
  return c > 0 && c < n_samples_;
}

bool BitMatrix::padding_is_clean() const {
  const std::size_t tail_bits = n_samples_ % 64;
  for (std::size_t s = 0; s < n_snps_; ++s) {
    const std::uint64_t* r = row_data(s);
    if (tail_bits != 0) {
      const std::uint64_t mask = ~((std::uint64_t{1} << tail_bits) - 1);
      if ((r[n_words_ - 1] & mask) != 0) return false;
    }
    for (std::size_t w = n_words_; w < stride_; ++w) {
      if (r[w] != 0) return false;
    }
  }
  return true;
}

}  // namespace ldla
