#include "core/missing.hpp"

#include <limits>

#include "core/gemm/count_matrix.hpp"
#include "core/gemm/macro.hpp"
#include "core/gemm/syrk.hpp"
#include "util/contract.hpp"

namespace ldla {

MaskedBitMatrix::MaskedBitMatrix(BitMatrix states, BitMatrix valid)
    : states_(std::move(states)), valid_(std::move(valid)) {
  LDLA_EXPECT(states_.snps() == valid_.snps() &&
                  states_.samples() == valid_.samples(),
              "state and validity matrices must have identical dimensions");
  // Enforce X = S & C so the GEMM reformulation holds.
  for (std::size_t s = 0; s < states_.snps(); ++s) {
    std::uint64_t* x = states_.row_data(s);
    const std::uint64_t* c = valid_.row_data(s);
    for (std::size_t w = 0; w < states_.words_per_snp(); ++w) {
      x[w] &= c[w];
    }
  }
}

MaskedBitMatrix MaskedBitMatrix::from_snp_strings(
    std::span<const std::string> snps) {
  if (snps.empty()) return {};
  const std::size_t samples = snps.front().size();
  BitMatrix states(snps.size(), samples);
  BitMatrix valid(snps.size(), samples);
  for (std::size_t s = 0; s < snps.size(); ++s) {
    const std::string& str = snps[s];
    if (str.size() != samples) {
      throw ParseError("SNP " + std::to_string(s) +
                       " length mismatch in masked matrix");
    }
    for (std::size_t i = 0; i < samples; ++i) {
      switch (str[i]) {
        case '1':
          states.set(s, i, true);
          valid.set(s, i, true);
          break;
        case '0':
          valid.set(s, i, true);
          break;
        case '-':
        case 'N':
          break;  // missing: invalid, state stays 0
        default:
          throw ParseError(std::string("invalid state '") + str[i] +
                           "' in masked SNP " + std::to_string(s));
      }
    }
  }
  return MaskedBitMatrix(std::move(states), std::move(valid));
}

double ld_value_missing(LdStatistic stat, std::uint64_t ci_masked,
                        std::uint64_t cj_masked, std::uint64_t cij_masked,
                        std::uint64_t n_valid) {
  if (n_valid == 0) return std::numeric_limits<double>::quiet_NaN();
  return ld_value(stat, ci_masked, cj_masked, cij_masked, n_valid);
}

LdMatrix ld_matrix_missing(const MaskedBitMatrix& g, const LdOptions& opts) {
  const std::size_t n = g.snps();
  LdMatrix out(n, n);
  if (n == 0) return out;
  LDLA_EXPECT(g.samples() > 0, "matrix has no samples");

  const BitMatrixView x = g.states().view();
  const BitMatrixView c = g.valid().view();

  // Three GEMMs (DESIGN.md): haplotype counts, masked marginals, valid pairs.
  CountMatrix hap(n, n);
  syrk_count(x, hap.ref(), opts.gemm);

  CountMatrix marg(n, n);  // marg(i, j) = POPCNT(x_i & c_j)
  gemm_count(x, c, marg.ref(), opts.gemm);

  CountMatrix nv(n, n);  // nv(i, j) = POPCNT(c_i & c_j)
  syrk_count(c, nv.ref(), opts.gemm);

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      out(i, j) = ld_value_missing(opts.stat, marg(i, j), marg(j, i),
                                   hap(i, j), nv(i, j));
    }
  }
  return out;
}

void ld_scan_missing(const MaskedBitMatrix& g, const LdTileVisitor& visit,
                     const LdOptions& opts) {
  const std::size_t n = g.snps();
  if (n == 0) return;
  LDLA_EXPECT(g.samples() > 0, "matrix has no samples");
  LDLA_EXPECT(opts.slab_rows > 0, "slab height must be positive");

  const BitMatrixView x = g.states().view();
  const BitMatrixView c = g.valid().view();
  const std::size_t slab = opts.slab_rows;
  const std::size_t max_rows = std::min(slab, n);

  CountMatrix hap(max_rows, n);   // POPCNT(x_i & x_j)
  CountMatrix mi(max_rows, n);    // POPCNT(x_i & c_j)
  CountMatrix mj(max_rows, n);    // POPCNT(c_i & x_j)
  CountMatrix nv(max_rows, n);    // POPCNT(c_i & c_j)
  AlignedBuffer<double> values(max_rows * n);

  for (std::size_t r0 = 0; r0 < n; r0 += slab) {
    const std::size_t rows = std::min(slab, n - r0);
    const std::size_t cols = r0 + rows;
    auto slab_ref = [&](CountMatrix& m) {
      CountMatrixRef ref{m.ref().data, rows, cols, n};
      for (std::size_t i = 0; i < rows; ++i) {
        std::fill_n(&ref.at(i, 0), cols, 0u);
      }
      return ref;
    };
    CountMatrixRef hap_ref = slab_ref(hap);
    CountMatrixRef mi_ref = slab_ref(mi);
    CountMatrixRef mj_ref = slab_ref(mj);
    CountMatrixRef nv_ref = slab_ref(nv);

    auto rows_of = [&](const BitMatrixView& v) {
      BitMatrixView out = v;
      out.data = v.data + r0 * v.stride_words;
      out.n_snps = rows;
      return out;
    };
    auto cols_of = [&](const BitMatrixView& v) {
      BitMatrixView out = v;
      out.n_snps = cols;
      return out;
    };
    gemm_count(rows_of(x), cols_of(x), hap_ref, opts.gemm);
    gemm_count(rows_of(x), cols_of(c), mi_ref, opts.gemm);
    gemm_count(rows_of(c), cols_of(x), mj_ref, opts.gemm);
    gemm_count(rows_of(c), cols_of(c), nv_ref, opts.gemm);

    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) {
        values[i * cols + j] =
            ld_value_missing(opts.stat, mi_ref.at(i, j), mj_ref.at(i, j),
                             hap_ref.at(i, j), nv_ref.at(i, j));
      }
    }
    visit(LdTile{r0, 0, rows, cols, values.data(), cols});
  }
}

LdMatrix ld_cross_matrix_missing(const MaskedBitMatrix& a,
                                 const MaskedBitMatrix& b,
                                 const LdOptions& opts) {
  LDLA_EXPECT(a.samples() == b.samples(),
              "cross-matrix LD needs matching sample sets");
  const std::size_t m = a.snps();
  const std::size_t n = b.snps();
  LdMatrix out(m, n);
  if (m == 0 || n == 0) return out;

  const BitMatrixView xa = a.states().view();
  const BitMatrixView ca = a.valid().view();
  const BitMatrixView xb = b.states().view();
  const BitMatrixView cb = b.valid().view();

  CountMatrix hap(m, n);   // POPCNT(x_i & x_j)
  CountMatrix mi(m, n);    // POPCNT(x_i & c_j)
  CountMatrix mj(m, n);    // POPCNT(c_i & x_j)
  CountMatrix nv(m, n);    // POPCNT(c_i & c_j)
  gemm_count(xa, xb, hap.ref(), opts.gemm);
  gemm_count(xa, cb, mi.ref(), opts.gemm);
  gemm_count(ca, xb, mj.ref(), opts.gemm);
  gemm_count(ca, cb, nv.ref(), opts.gemm);

  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      out(i, j) = ld_value_missing(opts.stat, mi(i, j), mj(i, j), hap(i, j),
                                   nv(i, j));
    }
  }
  return out;
}

}  // namespace ldla
