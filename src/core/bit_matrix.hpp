// Bit-packed genomic matrix — the storage layout of Fig. 2 in the paper.
//
// Each SNP is a vector of Nseq binary allelic states (0 = ancestral,
// 1 = derived under the infinite-sites model), packed 64 states per
// unsigned 64-bit word and zero-padded so the word count is a whole number.
// We store SNPs as *rows* (the paper's Fig. 2 shows SNPs as columns of G;
// rows of this structure are exactly those columns), so the haplotype-count
// GEMM  H = G^T G  becomes  C = A * B^T  with unit-stride access on both
// operands.
//
// The row stride is additionally rounded up to 8 words (64 bytes) so every
// row starts cache-line aligned and AVX-512 kernels can use aligned loads.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/aligned_buffer.hpp"
#include "util/contract.hpp"

namespace ldla {

/// Non-owning view of a range of packed SNP rows; the GEMM operand type.
struct BitMatrixView {
  const std::uint64_t* data = nullptr;
  std::size_t n_snps = 0;        ///< number of rows (SNPs)
  std::size_t n_words = 0;       ///< payload words per row (⌈samples/64⌉)
  std::size_t stride_words = 0;  ///< allocated words per row (>= n_words)
  std::size_t n_samples = 0;     ///< logical bits per row

  /// Row pointer; bounds-checked in debug / checked builds.
  [[nodiscard]] const std::uint64_t* row(std::size_t snp) const {
    LDLA_BOUNDS_CHECK(snp < n_snps, "view row index out of range");
    return data + snp * stride_words;
  }
  [[nodiscard]] bool empty() const noexcept { return n_snps == 0; }
};

class BitMatrix {
 public:
  /// Words per 64-byte alignment unit.
  static constexpr std::size_t kRowAlignWords = 8;

  BitMatrix() = default;

  /// All states initialized to zero (ancestral).
  BitMatrix(std::size_t n_snps, std::size_t n_samples);

  BitMatrix(BitMatrix&&) noexcept = default;
  BitMatrix& operator=(BitMatrix&&) noexcept = default;
  BitMatrix(const BitMatrix&) = delete;
  BitMatrix& operator=(const BitMatrix&) = delete;

  /// Deep copy (explicit, because rows can be hundreds of MB).
  [[nodiscard]] BitMatrix clone() const;

  /// Build from per-SNP state strings of '0'/'1' characters; every string
  /// must have the same length (= sample count). Throws ParseError on any
  /// other character.
  static BitMatrix from_snp_strings(std::span<const std::string> snps);

  [[nodiscard]] std::size_t snps() const noexcept { return n_snps_; }
  [[nodiscard]] std::size_t samples() const noexcept { return n_samples_; }
  [[nodiscard]] std::size_t words_per_snp() const noexcept { return n_words_; }
  [[nodiscard]] std::size_t stride_words() const noexcept { return stride_; }

  void set(std::size_t snp, std::size_t sample, bool derived);
  [[nodiscard]] bool get(std::size_t snp, std::size_t sample) const;

  /// Raw row pointers; bounds-checked in debug / checked builds.
  [[nodiscard]] std::uint64_t* row_data(std::size_t snp) {
    LDLA_BOUNDS_CHECK(snp < n_snps_, "SNP row index out of range");
    return words_.data() + snp * stride_;
  }
  [[nodiscard]] const std::uint64_t* row_data(std::size_t snp) const {
    LDLA_BOUNDS_CHECK(snp < n_snps_, "SNP row index out of range");
    return words_.data() + snp * stride_;
  }
  [[nodiscard]] std::span<const std::uint64_t> row(std::size_t snp) const {
    return {row_data(snp), n_words_};
  }

  /// Number of derived alleles in a SNP (the s_i^T s_i of Eq. 3).
  [[nodiscard]] std::uint64_t derived_count(std::size_t snp) const;

  /// Allele frequency P_i = derived_count / samples (Eq. 3).
  [[nodiscard]] double allele_frequency(std::size_t snp) const;

  /// All allele frequencies as the paper's vector p.
  [[nodiscard]] std::vector<double> allele_frequencies() const;

  /// View over the whole matrix, or over a contiguous SNP range.
  [[nodiscard]] BitMatrixView view() const noexcept;
  [[nodiscard]] BitMatrixView view(std::size_t snp_begin,
                                   std::size_t snp_end) const;

  /// '0'/'1' string of one SNP (tests / debugging).
  [[nodiscard]] std::string snp_string(std::size_t snp) const;

  /// New matrix holding the given SNP rows (in the given order). Used to
  /// compact windows after filtering (e.g. dropping monomorphic SNPs).
  [[nodiscard]] BitMatrix gather_rows(std::span<const std::size_t> rows) const;

  /// True when SNP has at least one ancestral and one derived state.
  [[nodiscard]] bool is_polymorphic(std::size_t snp) const;

  /// True when every padding bit beyond `samples()` is zero — an invariant
  /// every mutator must maintain (checked by tests and the I/O layer).
  [[nodiscard]] bool padding_is_clean() const;

 private:
  std::size_t n_snps_ = 0;
  std::size_t n_samples_ = 0;
  std::size_t n_words_ = 0;
  std::size_t stride_ = 0;
  AlignedBuffer<std::uint64_t> words_;
};

/// Words needed for `bits` packed samples.
[[nodiscard]] constexpr std::size_t words_for_bits(std::size_t bits) {
  return (bits + 63) / 64;
}

}  // namespace ldla
