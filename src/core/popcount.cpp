#include "core/popcount.hpp"

#include <array>

#include "core/detail/popcount_simd.hpp"
#include "util/contract.hpp"
#include "util/cpu_info.hpp"

namespace ldla {

namespace {

// ---------------------------------------------------------------------------
// Scalar backends
// ---------------------------------------------------------------------------

std::uint64_t count_hw(const std::uint64_t* p, std::size_t n) {
  std::uint64_t a0 = 0, a1 = 0, a2 = 0, a3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 += static_cast<std::uint64_t>(__builtin_popcountll(p[i]));
    a1 += static_cast<std::uint64_t>(__builtin_popcountll(p[i + 1]));
    a2 += static_cast<std::uint64_t>(__builtin_popcountll(p[i + 2]));
    a3 += static_cast<std::uint64_t>(__builtin_popcountll(p[i + 3]));
  }
  for (; i < n; ++i) {
    a0 += static_cast<std::uint64_t>(__builtin_popcountll(p[i]));
  }
  return a0 + a1 + a2 + a3;
}

std::uint64_t count_swar(const std::uint64_t* p, std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += popcount_u64_swar(p[i]);
  return acc;
}

const std::array<std::uint8_t, 65536>& lut16() {
  static const auto table = [] {
    std::array<std::uint8_t, 65536> t{};
    for (std::size_t i = 0; i < t.size(); ++i) {
      t[i] = static_cast<std::uint8_t>(popcount_u64_swar(i));
    }
    return t;
  }();
  return table;
}

std::uint64_t count_lut16(const std::uint64_t* p, std::size_t n) {
  const auto& t = lut16();
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t w = p[i];
    acc += t[w & 0xffffu];
    acc += t[(w >> 16) & 0xffffu];
    acc += t[(w >> 32) & 0xffffu];
    acc += t[(w >> 48) & 0xffffu];
  }
  return acc;
}

// ---------------------------------------------------------------------------
// Positional (per-bit-lane) backends
// ---------------------------------------------------------------------------

// Set-bit iteration: cost scales with the popcount, which at genomic
// minor-allele densities is far below 64 per word.
void positional_setbits(const std::uint64_t* rows, std::size_t n,
                        std::size_t stride, std::size_t width,
                        std::uint32_t* counts) {
  for (std::size_t w = 0; w < width; ++w) {
    std::uint32_t* cw = counts + w * 64;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t x = rows[i * stride + w];
      while (x != 0) {
        cw[static_cast<std::size_t>(__builtin_ctzll(x))] += 1;
        x &= x - 1;
      }
    }
  }
}

// Bit-sliced carry-save adder: four 64-wide bit planes hold a 4-bit
// vertical counter per column; planes drain into the u32 counts every 15
// rows. Density-independent and free of per-bit branches.
void positional_bitsliced(const std::uint64_t* rows, std::size_t n,
                          std::size_t stride, std::size_t width,
                          std::uint32_t* counts) {
  for (std::size_t w = 0; w < width; ++w) {
    std::uint32_t* cw = counts + w * 64;
    std::uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
    std::size_t in_group = 0;
    const auto drain = [&] {
      const std::uint64_t planes[4] = {c0, c1, c2, c3};
      for (std::size_t j = 0; j < 4; ++j) {
        std::uint64_t p = planes[j];
        const std::uint32_t weight = 1u << j;
        while (p != 0) {
          cw[static_cast<std::size_t>(__builtin_ctzll(p))] += weight;
          p &= p - 1;
        }
      }
      c0 = c1 = c2 = c3 = 0;
      in_group = 0;
    };
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t x = rows[i * stride + w];
      std::uint64_t carry = c0 & x;
      c0 ^= x;
      x = carry;
      carry = c1 & x;
      c1 ^= x;
      x = carry;
      carry = c2 & x;
      c2 ^= x;
      // 15 rows per group keep the vertical counter within 4 bits, so the
      // top plane never carries out.
      c3 ^= carry;
      if (++in_group == 15) drain();
    }
    if (in_group != 0) drain();
  }
}

PopcountMethod resolve_auto() {
  const CpuFeatures& f = cpu_info().features;
#if LDLA_HAVE_AVX512_TU
  if (f.avx512vpopcntdq && f.avx512f) return PopcountMethod::kAvx512Vpopcnt;
#endif
#if LDLA_HAVE_AVX2_TU
  if (f.avx2) return PopcountMethod::kHarleySealAvx2;
#endif
  if (f.popcnt) return PopcountMethod::kHardware;
  return PopcountMethod::kSwar;
}

[[noreturn]] void unavailable(PopcountMethod m) {
  throw ContractViolation("popcount backend '" + popcount_method_name(m) +
                          "' is unavailable on this CPU/build");
}

PopcountMethod resolve_positional(PopcountMethod m) {
  if (m == PopcountMethod::kAuto) {
    const CpuFeatures& f = cpu_info().features;
#if LDLA_HAVE_AVX2_TU
    if (f.avx2) return PopcountMethod::kHarleySealAvx2;
#endif
    if (f.popcnt) return PopcountMethod::kHardware;
    return PopcountMethod::kSwar;
  }
  LDLA_EXPECT(m == PopcountMethod::kHardware || m == PopcountMethod::kSwar ||
                  m == PopcountMethod::kHarleySealAvx2,
              "positional popcount supports kHardware, kSwar, and "
              "kHarleySealAvx2 only");
  if (!popcount_method_available(m)) unavailable(m);
  return m;
}

}  // namespace

std::string popcount_method_name(PopcountMethod m) {
  switch (m) {
    case PopcountMethod::kAuto: return "auto";
    case PopcountMethod::kHardware: return "scalar-popcnt";
    case PopcountMethod::kSwar: return "swar";
    case PopcountMethod::kLut16: return "lut16";
    case PopcountMethod::kPshufbSse: return "sse-pshufb";
    case PopcountMethod::kHarleySealAvx2: return "avx2-harley-seal";
    case PopcountMethod::kSimdExtract: return "simd-extract-strawman";
    case PopcountMethod::kAvx512Vpopcnt: return "avx512-vpopcntdq";
  }
  return "unknown";
}

bool popcount_method_available(PopcountMethod m) {
  const CpuFeatures& f = cpu_info().features;
  switch (m) {
    case PopcountMethod::kAuto:
    case PopcountMethod::kSwar:
    case PopcountMethod::kLut16:
      return true;
    case PopcountMethod::kHardware:
      return f.popcnt;
    case PopcountMethod::kPshufbSse:
#if LDLA_HAVE_SSE_TU
      return f.ssse3;
#else
      return false;
#endif
    case PopcountMethod::kHarleySealAvx2:
    case PopcountMethod::kSimdExtract:
#if LDLA_HAVE_AVX2_TU
      return f.avx2;
#else
      return false;
#endif
    case PopcountMethod::kAvx512Vpopcnt:
#if LDLA_HAVE_AVX512_TU
      return f.avx512f && f.avx512vpopcntdq;
#else
      return false;
#endif
  }
  return false;
}

PopcountMethod resolve_popcount_method(PopcountMethod m) {
  if (m == PopcountMethod::kAuto) return resolve_auto();
  if (!popcount_method_available(m)) unavailable(m);
  return m;
}

std::vector<PopcountMethod> available_popcount_methods() {
  std::vector<PopcountMethod> out;
  for (PopcountMethod m :
       {PopcountMethod::kHardware, PopcountMethod::kSwar,
        PopcountMethod::kLut16, PopcountMethod::kPshufbSse,
        PopcountMethod::kHarleySealAvx2, PopcountMethod::kSimdExtract,
        PopcountMethod::kAvx512Vpopcnt}) {
    if (popcount_method_available(m)) out.push_back(m);
  }
  return out;
}

std::uint64_t popcount_words(std::span<const std::uint64_t> words,
                             PopcountMethod m) {
  if (m == PopcountMethod::kAuto) m = resolve_auto();
  if (!popcount_method_available(m)) unavailable(m);
  const std::uint64_t* p = words.data();
  const std::size_t n = words.size();
  switch (m) {
    case PopcountMethod::kHardware: return count_hw(p, n);
    case PopcountMethod::kSwar: return count_swar(p, n);
    case PopcountMethod::kLut16: return count_lut16(p, n);
#if LDLA_HAVE_SSE_TU
    case PopcountMethod::kPshufbSse: return detail::sse_count(p, n);
#endif
#if LDLA_HAVE_AVX2_TU
    case PopcountMethod::kHarleySealAvx2: return detail::avx2_count(p, n);
    case PopcountMethod::kSimdExtract: return detail::avx2_count_extract(p, n);
#endif
#if LDLA_HAVE_AVX512_TU
    case PopcountMethod::kAvx512Vpopcnt: return detail::avx512_count(p, n);
#endif
    default: return count_swar(p, n);
  }
}

std::uint64_t popcount_and(std::span<const std::uint64_t> a,
                           std::span<const std::uint64_t> b,
                           PopcountMethod m) {
  LDLA_EXPECT(a.size() == b.size(), "operand word counts differ");
  if (m == PopcountMethod::kAuto) m = resolve_auto();
  if (!popcount_method_available(m)) unavailable(m);
  const std::size_t n = a.size();
  switch (m) {
    case PopcountMethod::kHardware: {
      std::uint64_t a0 = 0, a1 = 0;
      std::size_t i = 0;
      for (; i + 2 <= n; i += 2) {
        a0 += static_cast<std::uint64_t>(__builtin_popcountll(a[i] & b[i]));
        a1 += static_cast<std::uint64_t>(
            __builtin_popcountll(a[i + 1] & b[i + 1]));
      }
      if (i < n) {
        a0 += static_cast<std::uint64_t>(__builtin_popcountll(a[i] & b[i]));
      }
      return a0 + a1;
    }
    case PopcountMethod::kSwar: {
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < n; ++i) acc += popcount_u64_swar(a[i] & b[i]);
      return acc;
    }
    case PopcountMethod::kLut16: {
      const auto& t = lut16();
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t w = a[i] & b[i];
        acc += t[w & 0xffffu];
        acc += t[(w >> 16) & 0xffffu];
        acc += t[(w >> 32) & 0xffffu];
        acc += t[(w >> 48) & 0xffffu];
      }
      return acc;
    }
#if LDLA_HAVE_SSE_TU
    case PopcountMethod::kPshufbSse:
      return detail::sse_count_and(a.data(), b.data(), n);
#endif
#if LDLA_HAVE_AVX2_TU
    case PopcountMethod::kHarleySealAvx2:
      return detail::avx2_count_and(a.data(), b.data(), n);
    case PopcountMethod::kSimdExtract:
      return detail::avx2_count_and_extract(a.data(), b.data(), n);
#endif
#if LDLA_HAVE_AVX512_TU
    case PopcountMethod::kAvx512Vpopcnt:
      return detail::avx512_count_and(a.data(), b.data(), n);
#endif
    default: {
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < n; ++i) acc += popcount_u64_swar(a[i] & b[i]);
      return acc;
    }
  }
}

std::uint64_t popcount_and3(std::span<const std::uint64_t> a,
                            std::span<const std::uint64_t> b,
                            std::span<const std::uint64_t> mask,
                            PopcountMethod m) {
  LDLA_EXPECT(a.size() == b.size() && b.size() == mask.size(),
              "operand word counts differ");
  if (m == PopcountMethod::kAuto) m = resolve_auto();
  if (!popcount_method_available(m)) unavailable(m);
  const std::size_t n = a.size();
  switch (m) {
#if LDLA_HAVE_AVX2_TU
    case PopcountMethod::kHarleySealAvx2:
      return detail::avx2_count_and3(a.data(), b.data(), mask.data(), n);
#endif
#if LDLA_HAVE_AVX512_TU
    case PopcountMethod::kAvx512Vpopcnt:
      return detail::avx512_count_and3(a.data(), b.data(), mask.data(), n);
#endif
    case PopcountMethod::kSwar: {
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < n; ++i) {
        acc += popcount_u64_swar(a[i] & b[i] & mask[i]);
      }
      return acc;
    }
    default: {
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < n; ++i) {
        acc += static_cast<std::uint64_t>(
            __builtin_popcountll(a[i] & b[i] & mask[i]));
      }
      return acc;
    }
  }
}

void positional_popcount_strip(const std::uint64_t* rows, std::size_t n,
                               std::size_t stride, std::size_t width,
                               std::uint32_t* counts, PopcountMethod m) {
  if (width == 0) return;
  LDLA_EXPECT(counts != nullptr, "positional popcount needs a counts buffer");
  LDLA_EXPECT(n == 0 || rows != nullptr,
              "positional popcount needs row data");
  LDLA_EXPECT(n == 0 || stride >= width,
              "row stride shorter than the strip width");
  for (std::size_t i = 0; i < width * 64; ++i) counts[i] = 0;
  if (n == 0) return;
  m = resolve_positional(m);
  switch (m) {
    case PopcountMethod::kHardware:
      positional_setbits(rows, n, stride, width, counts);
      return;
    case PopcountMethod::kSwar:
      positional_bitsliced(rows, n, stride, width, counts);
      return;
#if LDLA_HAVE_AVX2_TU
    case PopcountMethod::kHarleySealAvx2:
      detail::avx2_positional_strip(rows, n, stride, width, counts);
      return;
#endif
    default:
      positional_bitsliced(rows, n, stride, width, counts);
      return;
  }
}

void positional_popcount(const std::uint64_t* words, std::size_t n,
                         std::size_t stride, std::uint32_t* counts,
                         PopcountMethod m) {
  LDLA_EXPECT(stride != 0 || n <= 1,
              "zero stride re-reads one word; pass n <= 1");
  positional_popcount_strip(words, n, stride == 0 ? 1 : stride, 1, counts, m);
}

}  // namespace ldla
