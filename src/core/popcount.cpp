#include "core/popcount.hpp"

#include <array>

#include "core/detail/popcount_simd.hpp"
#include "util/contract.hpp"
#include "util/cpu_info.hpp"

namespace ldla {

namespace {

// ---------------------------------------------------------------------------
// Scalar backends
// ---------------------------------------------------------------------------

std::uint64_t count_hw(const std::uint64_t* p, std::size_t n) {
  std::uint64_t a0 = 0, a1 = 0, a2 = 0, a3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 += static_cast<std::uint64_t>(__builtin_popcountll(p[i]));
    a1 += static_cast<std::uint64_t>(__builtin_popcountll(p[i + 1]));
    a2 += static_cast<std::uint64_t>(__builtin_popcountll(p[i + 2]));
    a3 += static_cast<std::uint64_t>(__builtin_popcountll(p[i + 3]));
  }
  for (; i < n; ++i) {
    a0 += static_cast<std::uint64_t>(__builtin_popcountll(p[i]));
  }
  return a0 + a1 + a2 + a3;
}

std::uint64_t count_swar(const std::uint64_t* p, std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += popcount_u64_swar(p[i]);
  return acc;
}

const std::array<std::uint8_t, 65536>& lut16() {
  static const auto table = [] {
    std::array<std::uint8_t, 65536> t{};
    for (std::size_t i = 0; i < t.size(); ++i) {
      t[i] = static_cast<std::uint8_t>(popcount_u64_swar(i));
    }
    return t;
  }();
  return table;
}

std::uint64_t count_lut16(const std::uint64_t* p, std::size_t n) {
  const auto& t = lut16();
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t w = p[i];
    acc += t[w & 0xffffu];
    acc += t[(w >> 16) & 0xffffu];
    acc += t[(w >> 32) & 0xffffu];
    acc += t[(w >> 48) & 0xffffu];
  }
  return acc;
}

PopcountMethod resolve_auto() {
  const CpuFeatures& f = cpu_info().features;
#if LDLA_HAVE_AVX512_TU
  if (f.avx512vpopcntdq && f.avx512f) return PopcountMethod::kAvx512Vpopcnt;
#endif
#if LDLA_HAVE_AVX2_TU
  if (f.avx2) return PopcountMethod::kHarleySealAvx2;
#endif
  if (f.popcnt) return PopcountMethod::kHardware;
  return PopcountMethod::kSwar;
}

[[noreturn]] void unavailable(PopcountMethod m) {
  throw ContractViolation("popcount backend '" + popcount_method_name(m) +
                          "' is unavailable on this CPU/build");
}

}  // namespace

std::string popcount_method_name(PopcountMethod m) {
  switch (m) {
    case PopcountMethod::kAuto: return "auto";
    case PopcountMethod::kHardware: return "scalar-popcnt";
    case PopcountMethod::kSwar: return "swar";
    case PopcountMethod::kLut16: return "lut16";
    case PopcountMethod::kPshufbSse: return "sse-pshufb";
    case PopcountMethod::kHarleySealAvx2: return "avx2-harley-seal";
    case PopcountMethod::kSimdExtract: return "simd-extract-strawman";
    case PopcountMethod::kAvx512Vpopcnt: return "avx512-vpopcntdq";
  }
  return "unknown";
}

bool popcount_method_available(PopcountMethod m) {
  const CpuFeatures& f = cpu_info().features;
  switch (m) {
    case PopcountMethod::kAuto:
    case PopcountMethod::kSwar:
    case PopcountMethod::kLut16:
      return true;
    case PopcountMethod::kHardware:
      return f.popcnt;
    case PopcountMethod::kPshufbSse:
#if LDLA_HAVE_SSE_TU
      return f.ssse3;
#else
      return false;
#endif
    case PopcountMethod::kHarleySealAvx2:
    case PopcountMethod::kSimdExtract:
#if LDLA_HAVE_AVX2_TU
      return f.avx2;
#else
      return false;
#endif
    case PopcountMethod::kAvx512Vpopcnt:
#if LDLA_HAVE_AVX512_TU
      return f.avx512f && f.avx512vpopcntdq;
#else
      return false;
#endif
  }
  return false;
}

std::vector<PopcountMethod> available_popcount_methods() {
  std::vector<PopcountMethod> out;
  for (PopcountMethod m :
       {PopcountMethod::kHardware, PopcountMethod::kSwar,
        PopcountMethod::kLut16, PopcountMethod::kPshufbSse,
        PopcountMethod::kHarleySealAvx2, PopcountMethod::kSimdExtract,
        PopcountMethod::kAvx512Vpopcnt}) {
    if (popcount_method_available(m)) out.push_back(m);
  }
  return out;
}

std::uint64_t popcount_words(std::span<const std::uint64_t> words,
                             PopcountMethod m) {
  if (m == PopcountMethod::kAuto) m = resolve_auto();
  if (!popcount_method_available(m)) unavailable(m);
  const std::uint64_t* p = words.data();
  const std::size_t n = words.size();
  switch (m) {
    case PopcountMethod::kHardware: return count_hw(p, n);
    case PopcountMethod::kSwar: return count_swar(p, n);
    case PopcountMethod::kLut16: return count_lut16(p, n);
#if LDLA_HAVE_SSE_TU
    case PopcountMethod::kPshufbSse: return detail::sse_count(p, n);
#endif
#if LDLA_HAVE_AVX2_TU
    case PopcountMethod::kHarleySealAvx2: return detail::avx2_count(p, n);
    case PopcountMethod::kSimdExtract: return detail::avx2_count_extract(p, n);
#endif
#if LDLA_HAVE_AVX512_TU
    case PopcountMethod::kAvx512Vpopcnt: return detail::avx512_count(p, n);
#endif
    default: return count_swar(p, n);
  }
}

std::uint64_t popcount_and(std::span<const std::uint64_t> a,
                           std::span<const std::uint64_t> b,
                           PopcountMethod m) {
  LDLA_EXPECT(a.size() == b.size(), "operand word counts differ");
  if (m == PopcountMethod::kAuto) m = resolve_auto();
  if (!popcount_method_available(m)) unavailable(m);
  const std::size_t n = a.size();
  switch (m) {
    case PopcountMethod::kHardware: {
      std::uint64_t a0 = 0, a1 = 0;
      std::size_t i = 0;
      for (; i + 2 <= n; i += 2) {
        a0 += static_cast<std::uint64_t>(__builtin_popcountll(a[i] & b[i]));
        a1 += static_cast<std::uint64_t>(
            __builtin_popcountll(a[i + 1] & b[i + 1]));
      }
      if (i < n) {
        a0 += static_cast<std::uint64_t>(__builtin_popcountll(a[i] & b[i]));
      }
      return a0 + a1;
    }
    case PopcountMethod::kSwar: {
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < n; ++i) acc += popcount_u64_swar(a[i] & b[i]);
      return acc;
    }
    case PopcountMethod::kLut16: {
      const auto& t = lut16();
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t w = a[i] & b[i];
        acc += t[w & 0xffffu];
        acc += t[(w >> 16) & 0xffffu];
        acc += t[(w >> 32) & 0xffffu];
        acc += t[(w >> 48) & 0xffffu];
      }
      return acc;
    }
#if LDLA_HAVE_SSE_TU
    case PopcountMethod::kPshufbSse:
      return detail::sse_count_and(a.data(), b.data(), n);
#endif
#if LDLA_HAVE_AVX2_TU
    case PopcountMethod::kHarleySealAvx2:
      return detail::avx2_count_and(a.data(), b.data(), n);
    case PopcountMethod::kSimdExtract:
      return detail::avx2_count_and_extract(a.data(), b.data(), n);
#endif
#if LDLA_HAVE_AVX512_TU
    case PopcountMethod::kAvx512Vpopcnt:
      return detail::avx512_count_and(a.data(), b.data(), n);
#endif
    default: {
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < n; ++i) acc += popcount_u64_swar(a[i] & b[i]);
      return acc;
    }
  }
}

std::uint64_t popcount_and3(std::span<const std::uint64_t> a,
                            std::span<const std::uint64_t> b,
                            std::span<const std::uint64_t> mask,
                            PopcountMethod m) {
  LDLA_EXPECT(a.size() == b.size() && b.size() == mask.size(),
              "operand word counts differ");
  if (m == PopcountMethod::kAuto) m = resolve_auto();
  if (!popcount_method_available(m)) unavailable(m);
  const std::size_t n = a.size();
  switch (m) {
#if LDLA_HAVE_AVX2_TU
    case PopcountMethod::kHarleySealAvx2:
      return detail::avx2_count_and3(a.data(), b.data(), mask.data(), n);
#endif
#if LDLA_HAVE_AVX512_TU
    case PopcountMethod::kAvx512Vpopcnt:
      return detail::avx512_count_and3(a.data(), b.data(), mask.data(), n);
#endif
    case PopcountMethod::kSwar: {
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < n; ++i) {
        acc += popcount_u64_swar(a[i] & b[i] & mask[i]);
      }
      return acc;
    }
    default: {
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < n; ++i) {
        acc += static_cast<std::uint64_t>(
            __builtin_popcountll(a[i] & b[i] & mask[i]));
      }
      return acc;
    }
  }
}

}  // namespace ldla
