#include "core/tanimoto.hpp"

#include <algorithm>
#include <thread>

#include "core/gemm/count_matrix.hpp"
#include "core/gemm/macro.hpp"
#include "core/gemm/syrk.hpp"
#include "core/popcount.hpp"
#include "util/contract.hpp"
#include "util/thread_pool.hpp"

namespace ldla {

namespace {

double tanimoto_from_counts(std::uint64_t p, std::uint64_t q,
                            std::uint64_t x) {
  const std::uint64_t denom = p + q - x;
  if (denom == 0) return 0.0;  // two empty fingerprints
  return static_cast<double>(x) / static_cast<double>(denom);
}

std::vector<std::uint64_t> row_counts(const BitMatrix& m) {
  std::vector<std::uint64_t> c(m.snps());
  for (std::size_t i = 0; i < m.snps(); ++i) c[i] = m.derived_count(i);
  return c;
}

}  // namespace

std::vector<std::vector<TanimotoHit>> tanimoto_top_k_parallel(
    const BitMatrix& queries, const BitMatrix& database, std::size_t k,
    const GemmConfig& cfg, unsigned threads) {
  LDLA_EXPECT(queries.samples() == database.samples(),
              "fingerprint widths differ");
  LDLA_EXPECT(k > 0, "k must be positive");
  const std::size_t nq = queries.snps();
  std::vector<std::vector<TanimotoHit>> results(nq);
  if (nq == 0 || database.snps() == 0) return results;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }

  ThreadPool pool(threads);
  pool.parallel_for(0, nq, [&](std::size_t lo, std::size_t hi) {
    std::vector<std::size_t> rows(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) rows[i - lo] = i;
    const BitMatrix chunk = queries.gather_rows(rows);
    auto chunk_results = tanimoto_top_k(chunk, database, k, cfg);
    for (std::size_t i = lo; i < hi; ++i) {
      results[i] = std::move(chunk_results[i - lo]);
    }
  });
  return results;
}

double tanimoto_pair(const BitMatrix& a, std::size_t i, const BitMatrix& b,
                     std::size_t j) {
  LDLA_EXPECT(a.samples() == b.samples(), "fingerprint widths differ");
  const std::uint64_t p = a.derived_count(i);
  const std::uint64_t q = b.derived_count(j);
  const std::uint64_t x =
      popcount_and(a.row(i), b.row(j), PopcountMethod::kAuto);
  return tanimoto_from_counts(p, q, x);
}

LdMatrix tanimoto_matrix(const BitMatrix& fps, const GemmConfig& cfg) {
  const std::size_t n = fps.snps();
  LdMatrix out(n, n);
  if (n == 0) return out;

  CountMatrix x(n, n);
  syrk_count(fps.view(), x.ref(), cfg);
  const std::vector<std::uint64_t> counts = row_counts(fps);

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      out(i, j) = tanimoto_from_counts(counts[i], counts[j], x(i, j));
    }
  }
  return out;
}

LdMatrix tanimoto_cross_matrix(const BitMatrix& a, const BitMatrix& b,
                               const GemmConfig& cfg) {
  LDLA_EXPECT(a.samples() == b.samples(), "fingerprint widths differ");
  const std::size_t m = a.snps();
  const std::size_t n = b.snps();
  LdMatrix out(m, n);
  if (m == 0 || n == 0) return out;

  CountMatrix x(m, n);
  gemm_count(a.view(), b.view(), x.ref(), cfg);
  const std::vector<std::uint64_t> ca = row_counts(a);
  const std::vector<std::uint64_t> cb = row_counts(b);

  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      out(i, j) = tanimoto_from_counts(ca[i], cb[j], x(i, j));
    }
  }
  return out;
}

std::vector<std::vector<TanimotoHit>> tanimoto_top_k(
    const BitMatrix& queries, const BitMatrix& database, std::size_t k,
    const GemmConfig& cfg) {
  LDLA_EXPECT(queries.samples() == database.samples(),
              "fingerprint widths differ");
  LDLA_EXPECT(k > 0, "k must be positive");
  const std::size_t nq = queries.snps();
  const std::size_t nd = database.snps();
  std::vector<std::vector<TanimotoHit>> results(nq);
  if (nq == 0 || nd == 0) return results;

  const std::vector<std::uint64_t> cq = row_counts(queries);
  const std::vector<std::uint64_t> cd = row_counts(database);

  // Stream the database in slabs to bound memory.
  constexpr std::size_t kSlab = 1024;
  CountMatrix x(nq, std::min(kSlab, nd));
  for (std::size_t d0 = 0; d0 < nd; d0 += kSlab) {
    const std::size_t cols = std::min(kSlab, nd - d0);
    x.zero();
    CountMatrixRef xref{x.ref().data, nq, cols, x.ld()};
    gemm_count(queries.view(), database.view(d0, d0 + cols), xref, cfg);
    for (std::size_t qi = 0; qi < nq; ++qi) {
      auto& hits = results[qi];
      for (std::size_t j = 0; j < cols; ++j) {
        const double sim =
            tanimoto_from_counts(cq[qi], cd[d0 + j], xref.at(qi, j));
        hits.push_back({d0 + j, sim});
      }
      // Keep only the current top-k to bound memory across slabs.
      const auto by_sim = [](const TanimotoHit& a, const TanimotoHit& b) {
        if (a.similarity != b.similarity) return a.similarity > b.similarity;
        return a.index < b.index;
      };
      if (hits.size() > k) {
        std::partial_sort(hits.begin(),
                          hits.begin() + static_cast<std::ptrdiff_t>(k),
                          hits.end(), by_sim);
        hits.resize(k);
      }
    }
  }
  for (auto& hits : results) {
    std::sort(hits.begin(), hits.end(),
              [](const TanimotoHit& a, const TanimotoHit& b) {
                if (a.similarity != b.similarity) {
                  return a.similarity > b.similarity;
                }
                return a.index < b.index;
              });
  }
  return results;
}

}  // namespace ldla
