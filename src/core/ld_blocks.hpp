// Haplotype-block partitioning — a standard application of the pairwise
// r^2 matrix (Gabriel-style blocks, simplified to an r^2 criterion),
// built on the banded GEMM scan so cost is O(n · max_span) pairs.
//
// A block is a maximal run of consecutive SNPs in which every SNP's mean
// r^2 against the block's existing members stays at or above a threshold.
// Greedy left-to-right construction; deterministic.
#pragma once

#include <cstddef>
#include <vector>

#include "core/bit_matrix.hpp"
#include "core/gemm/config.hpp"

namespace ldla {

struct LdBlock {
  std::size_t begin = 0;  ///< first SNP of the block
  std::size_t end = 0;    ///< one past the last SNP
  double mean_r2 = 0.0;   ///< mean pairwise r^2 inside the block

  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
  friend bool operator==(const LdBlock&, const LdBlock&) = default;
};

struct LdBlockParams {
  double threshold = 0.5;     ///< minimum mean r^2 to join a block
  std::size_t max_span = 200; ///< pairs farther apart are never evaluated
  GemmConfig gemm;
};

/// Partition [0, n) into blocks; every SNP belongs to exactly one block
/// (singleton blocks have mean_r2 = 0). NaN r^2 (monomorphic partners)
/// counts as 0 toward the mean.
std::vector<LdBlock> find_ld_blocks(const BitMatrix& g,
                                    const LdBlockParams& params = {});

}  // namespace ldla
