// Higher-order (three-locus) linkage disequilibrium — the "more specialized
// use case" the paper's Related Work points at (Slatkin 2008, ref [28]).
//
// Bennett's third-order disequilibrium coefficient for loci i, j, k:
//
//   D_ijk = P_ijk − P_i·D_jk − P_j·D_ik − P_k·D_ij − P_i·P_j·P_k
//
// where D_xy are the pairwise coefficients (Eq. 1) and P_ijk is the
// three-way haplotype frequency. The DLA formulation extends naturally:
// for a fixed conditioning SNP k, the counts
//
//   c_ijk = POPCNT(s_i & s_j & s_k)  =  POPCNT((s_i & s_k) & s_j)
//
// for all (i, j) are one popcount-GEMM between the k-masked matrix
// X_k = S & s_k and S itself — so a w-SNP window costs w GEMMs, every one
// of them going through the same packed micro-kernels.
#pragma once

#include <cstdint>

#include "core/bit_matrix.hpp"
#include "core/gemm/config.hpp"
#include "util/aligned_buffer.hpp"
#include "util/contract.hpp"

namespace ldla {

/// Dense w x w x w tensor of third-order values for a SNP window.
class ThirdOrderTensor {
 public:
  ThirdOrderTensor() = default;
  explicit ThirdOrderTensor(std::size_t w) : w_(w), buf_(w * w * w) {
    buf_.zero();
  }

  [[nodiscard]] std::size_t window() const noexcept { return w_; }
  [[nodiscard]] double operator()(std::size_t i, std::size_t j,
                                  std::size_t k) const {
    LDLA_ASSERT(i < w_ && j < w_ && k < w_);
    return buf_[(i * w_ + j) * w_ + k];
  }
  [[nodiscard]] double& operator()(std::size_t i, std::size_t j,
                                   std::size_t k) {
    LDLA_ASSERT(i < w_ && j < w_ && k < w_);
    return buf_[(i * w_ + j) * w_ + k];
  }

 private:
  std::size_t w_ = 0;
  AlignedBuffer<double> buf_;
};

/// All D_ijk for the SNP window [snp_begin, snp_end) via w popcount-GEMMs.
/// The result is symmetric in all three indices; entries with repeated
/// indices reduce to lower-order quantities and are computed consistently.
/// Window width is capped (the tensor is O(w^3) doubles).
ThirdOrderTensor third_order_d(const BitMatrix& g, std::size_t snp_begin,
                               std::size_t snp_end,
                               const GemmConfig& cfg = {});

/// Scalar reference for one triple straight from the per-sample definition
/// (the oracle the GEMM version is tested against).
double third_order_d_reference(const BitMatrix& g, std::size_t i,
                               std::size_t j, std::size_t k);

/// Maximum supported window width for third_order_d.
inline constexpr std::size_t kMaxThirdOrderWindow = 256;

}  // namespace ldla
