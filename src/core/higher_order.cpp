#include "core/higher_order.hpp"

#include <vector>

#include "core/gemm/count_matrix.hpp"
#include "core/gemm/macro.hpp"
#include "core/gemm/syrk.hpp"

namespace ldla {

namespace {

double d3_from_counts(double n, double ci, double cj, double ck, double cij,
                      double cik, double cjk, double cijk) {
  const double pi = ci / n;
  const double pj = cj / n;
  const double pk = ck / n;
  const double dij = cij / n - pi * pj;
  const double dik = cik / n - pi * pk;
  const double djk = cjk / n - pj * pk;
  const double pijk = cijk / n;
  return pijk - pi * djk - pj * dik - pk * dij - pi * pj * pk;
}

}  // namespace

double third_order_d_reference(const BitMatrix& g, std::size_t i,
                               std::size_t j, std::size_t k) {
  LDLA_EXPECT(i < g.snps() && j < g.snps() && k < g.snps(),
              "SNP index out of range");
  double ci = 0, cj = 0, ck = 0, cij = 0, cik = 0, cjk = 0, cijk = 0;
  for (std::size_t s = 0; s < g.samples(); ++s) {
    const bool a = g.get(i, s);
    const bool b = g.get(j, s);
    const bool c = g.get(k, s);
    ci += a;
    cj += b;
    ck += c;
    cij += a && b;
    cik += a && c;
    cjk += b && c;
    cijk += a && b && c;
  }
  return d3_from_counts(static_cast<double>(g.samples()), ci, cj, ck, cij,
                        cik, cjk, cijk);
}

ThirdOrderTensor third_order_d(const BitMatrix& g, std::size_t snp_begin,
                               std::size_t snp_end, const GemmConfig& cfg) {
  LDLA_EXPECT(snp_begin <= snp_end && snp_end <= g.snps(),
              "window out of range");
  const std::size_t w = snp_end - snp_begin;
  LDLA_EXPECT(w <= kMaxThirdOrderWindow,
              "third-order window exceeds the supported width");
  ThirdOrderTensor out(w);
  if (w == 0) return out;
  LDLA_EXPECT(g.samples() > 0, "matrix has no samples");

  const BitMatrixView window = g.view(snp_begin, snp_end);
  const double n = static_cast<double>(g.samples());

  // Pairwise counts: one symmetric GEMM.
  CountMatrix pair(w, w);
  syrk_count(window, pair.ref(), cfg);

  // Three-way counts: one GEMM per conditioning SNP k over the k-masked
  // window X_k = S & s_k.
  BitMatrix masked(w, g.samples());
  CountMatrix triple(w, w);
  for (std::size_t k = 0; k < w; ++k) {
    const std::uint64_t* sk = window.row(k);
    for (std::size_t r = 0; r < w; ++r) {
      const std::uint64_t* src = window.row(r);
      std::uint64_t* dst = masked.row_data(r);
      for (std::size_t word = 0; word < window.n_words; ++word) {
        dst[word] = src[word] & sk[word];
      }
    }
    triple.zero();
    gemm_count(masked.view(), window, triple.ref(), cfg);

    for (std::size_t i = 0; i < w; ++i) {
      for (std::size_t j = 0; j < w; ++j) {
        out(i, j, k) = d3_from_counts(
            n, pair(i, i), pair(j, j), pair(k, k), pair(i, j), pair(i, k),
            pair(j, k), triple(i, j));
      }
    }
  }
  return out;
}

}  // namespace ldla
