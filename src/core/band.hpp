// Banded LD: only pairs within a SNP-index bandwidth.
//
// Real scans rarely need all N(N+1)/2 pairs — LD decays with distance, and
// tools bound the pair set (PLINK's --ld-window, OmegaPlus's per-window
// evaluation; the paper notes OmegaPlus computes "only the LD values
// required"). The banded driver keeps the GEMM formulation: each row slab
// multiplies against just the column range its band intersects, so work is
// O(n · W) instead of O(n²) while every tile still goes through the packed
// micro-kernels.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ld.hpp"

namespace ldla {

struct BandOptions {
  LdStatistic stat = LdStatistic::kRSquared;
  GemmConfig gemm;
  std::size_t slab_rows = 256;
  /// Optional persistent packed operand for `g` (see LdOptions::packed).
  /// The banded scan re-reads overlapping column stripes — each SNP is
  /// packed ~(slab + 2·bandwidth)/slab times by the fresh path — so a
  /// shared pack pays off even within a single call.
  const PackedBitMatrix* packed = nullptr;
  /// Fused statistics epilogue (see LdOptions::fused): stripe counts are
  /// converted to statistics tile-by-tile while hot, so the slab
  /// CountMatrix disappears. Bit-identical to the two-pass path.
  bool fused = true;
  /// Team size for in-nest parallel stripes: 1 (default) runs the stripes
  /// sequentially, 0 means default_thread_count(). The team cooperates
  /// *inside* each stripe's nest (work-stealing macro-tile chunks), so the
  /// visitor still fires sequentially from the calling thread — decay
  /// accumulators need no locking. Requires `fused` and a packed operand
  /// plus ParallelMode::kNest; otherwise stripes stay sequential.
  unsigned threads = 1;
  /// kNest (default) enables the stripe teams above; kCoarse disables them
  /// (a static row split cannot preserve the sequential-visitor contract,
  /// so the banded driver's coarse mode is simply the sequential scan).
  ParallelMode parallel = ParallelMode::kNest;
};

/// Streaming banded scan: emits tiles covering every pair (i, j) with
/// j <= i and i - j <= bandwidth exactly once (tiles may also carry values
/// outside the band — consumers filter by index, the values are valid LD).
/// Tile columns start at col_begin (not 0), unlike the full scan.
void ld_band_scan(const BitMatrix& g, std::size_t bandwidth,
                  const LdTileVisitor& visit, const BandOptions& opts = {});

/// Mean finite LD per distance bin, computed with one banded scan.
struct DecayProfile {
  /// Upper edge of each bin; bin b covers distances (bin_upper[b-1],
  /// bin_upper[b]] (first bin starts just above 0 — self-pairs excluded).
  std::vector<double> bin_upper;
  std::vector<double> mean;          ///< mean finite statistic per bin
  std::vector<std::uint64_t> count;  ///< finite pairs per bin
};

/// LD decay as a function of SNP-index distance, up to max_distance.
DecayProfile ld_decay_profile(const BitMatrix& g, std::size_t max_distance,
                              std::size_t bins, const BandOptions& opts = {});

/// LD decay as a function of *genetic position* distance: pairs within
/// `snp_bandwidth` indices are binned by |pos_i - pos_j| up to max_dist.
DecayProfile ld_decay_by_position(const BitMatrix& g,
                                  const std::vector<double>& positions,
                                  std::size_t snp_bandwidth, double max_dist,
                                  std::size_t bins,
                                  const BandOptions& opts = {});

}  // namespace ldla
