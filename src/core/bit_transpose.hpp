// Bit-matrix transposition: converts between SNP-major and sample-major
// packed layouts in 64x64 blocks (Hacker's Delight recursive swap), so
// sample-major inputs (ms files store one haplotype per line) can be packed
// line-at-a-time and flipped wholesale instead of bit-by-bit.
#pragma once

#include <array>
#include <cstdint>

#include "core/bit_matrix.hpp"

namespace ldla {

/// In-place transpose of a 64x64 bit block (rows[i] bit j  <->  rows[j]
/// bit i).
void transpose_64x64(std::array<std::uint64_t, 64>& block);

/// Full matrix transpose: result has one row per input *column*.
/// m.snps() rows x m.samples() bits  ->  m.samples() rows x m.snps() bits.
BitMatrix transpose_bits(const BitMatrix& m);

}  // namespace ldla
