#include "core/fsm.hpp"

#include <cctype>
#include <cmath>
#include <limits>

#include "core/gemm/count_matrix.hpp"
#include "core/gemm/macro.hpp"
#include "core/gemm/syrk.hpp"
#include "util/contract.hpp"

namespace ldla {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

int nucleotide_from_char(char c) {
  switch (std::toupper(static_cast<unsigned char>(c))) {
    case 'A': return kA;
    case 'C': return kC;
    case 'G': return kG;
    case 'T': return kT;
    case '-':
    case 'N': return -1;
    default: return -2;
  }
}
}  // namespace

FsmMatrix::FsmMatrix(std::size_t n_snps, std::size_t n_samples)
    : planes_{BitMatrix(n_snps, n_samples), BitMatrix(n_snps, n_samples),
              BitMatrix(n_snps, n_samples), BitMatrix(n_snps, n_samples)} {}

FsmMatrix FsmMatrix::from_snp_strings(std::span<const std::string> snps) {
  if (snps.empty()) return {};
  const std::size_t samples = snps.front().size();
  FsmMatrix out(snps.size(), samples);
  for (std::size_t s = 0; s < snps.size(); ++s) {
    const std::string& str = snps[s];
    if (str.size() != samples) {
      throw ParseError("FSM SNP " + std::to_string(s) + " length mismatch");
    }
    for (std::size_t i = 0; i < samples; ++i) {
      const int nuc = nucleotide_from_char(str[i]);
      if (nuc == -2) {
        throw ParseError(std::string("invalid nucleotide '") + str[i] +
                         "' in FSM SNP " + std::to_string(s));
      }
      if (nuc >= 0) {
        out.set_state(s, i, static_cast<Nucleotide>(nuc));
      }
    }
  }
  return out;
}

void FsmMatrix::set_state(std::size_t snp, std::size_t sample,
                          Nucleotide nuc) {
  for (std::size_t p = 0; p < 4; ++p) {
    planes_[p].set(snp, sample, p == nuc);
  }
}

void FsmMatrix::set_gap(std::size_t snp, std::size_t sample) {
  for (auto& plane : planes_) plane.set(snp, sample, false);
}

int FsmMatrix::state(std::size_t snp, std::size_t sample) const {
  for (std::size_t p = 0; p < 4; ++p) {
    if (planes_[p].get(snp, sample)) return static_cast<int>(p);
  }
  return -1;
}

unsigned FsmMatrix::states_present(std::size_t snp) const {
  unsigned v = 0;
  for (const auto& plane : planes_) {
    if (plane.derived_count(snp) > 0) ++v;
  }
  return v;
}

BitMatrix FsmMatrix::validity() const {
  BitMatrix out(snps(), samples());
  for (std::size_t s = 0; s < snps(); ++s) {
    std::uint64_t* dst = out.row_data(s);
    for (std::size_t p = 0; p < 4; ++p) {
      const std::uint64_t* src = planes_[p].row_data(s);
      for (std::size_t w = 0; w < out.words_per_snp(); ++w) {
        dst[w] |= src[w];
      }
    }
  }
  return out;
}

double fsm_t_pair_reference(const FsmMatrix& g, std::size_t i, std::size_t j) {
  const std::size_t samples = g.samples();
  // Joint contingency counts over jointly valid samples.
  std::uint64_t pair_count[4][4] = {};
  std::uint64_t margin_i[4] = {};
  std::uint64_t margin_j[4] = {};
  std::uint64_t vij = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    const int a = g.state(i, s);
    const int b = g.state(j, s);
    if (a < 0 || b < 0) continue;
    ++vij;
    ++pair_count[a][b];
    ++margin_i[a];
    ++margin_j[b];
  }
  unsigned vi = 0, vj = 0;
  for (int a = 0; a < 4; ++a) {
    if (g.plane(static_cast<Nucleotide>(a)).derived_count(i) > 0) ++vi;
    if (g.plane(static_cast<Nucleotide>(a)).derived_count(j) > 0) ++vj;
  }
  if (vij == 0 || vi < 2 || vj < 2) return kNaN;

  double sum_r2 = 0.0;
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      const double r2 =
          ld_r_squared(margin_i[a], margin_j[b], pair_count[a][b], vij);
      if (std::isfinite(r2)) sum_r2 += r2;
    }
  }
  const double factor =
      (static_cast<double>(vi) - 1.0) * (static_cast<double>(vj) - 1.0) *
      static_cast<double>(vij) /
      (static_cast<double>(vi) * static_cast<double>(vj));
  return factor * sum_r2;
}

LdMatrix fsm_t_matrix(const FsmMatrix& g, const LdOptions& opts) {
  const std::size_t n = g.snps();
  LdMatrix out(n, n);
  if (n == 0) return out;
  LDLA_EXPECT(g.samples() > 0, "matrix has no samples");

  const BitMatrix valid = g.validity();
  const BitMatrixView v = valid.view();

  // 1 GEMM: jointly valid sample counts v_ij.
  CountMatrix nv(n, n);
  syrk_count(v, nv.ref(), opts.gemm);

  // 4 GEMMs: masked marginals M_a(i, j) = POPCNT(plane_a_i & valid_j).
  // (The reverse marginal POPCNT(plane_b_j & valid_i) is M_b(j, i).)
  std::array<CountMatrix, 4> marg;
  for (std::size_t a = 0; a < 4; ++a) {
    marg[a] = CountMatrix(n, n);
    gemm_count(g.plane(static_cast<Nucleotide>(a)).view(), v, marg[a].ref(),
               opts.gemm);
  }

  // 16 GEMMs: state-pair counts P_ab(i, j) = POPCNT(plane_a_i & plane_b_j).
  std::array<std::array<CountMatrix, 4>, 4> pair;
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = 0; b < 4; ++b) {
      pair[a][b] = CountMatrix(n, n);
      gemm_count(g.plane(static_cast<Nucleotide>(a)).view(),
                 g.plane(static_cast<Nucleotide>(b)).view(),
                 pair[a][b].ref(), opts.gemm);
    }
  }

  std::vector<unsigned> v_states(n);
  for (std::size_t s = 0; s < n; ++s) v_states[s] = g.states_present(s);

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t vij = nv(i, j);
      const unsigned vi = v_states[i];
      const unsigned vj = v_states[j];
      if (vij == 0 || vi < 2 || vj < 2) {
        out(i, j) = kNaN;
        continue;
      }
      double sum_r2 = 0.0;
      for (std::size_t a = 0; a < 4; ++a) {
        for (std::size_t b = 0; b < 4; ++b) {
          const double r2 = ld_r_squared(marg[a](i, j), marg[b](j, i),
                                         pair[a][b](i, j), vij);
          if (std::isfinite(r2)) sum_r2 += r2;
        }
      }
      const double factor =
          (static_cast<double>(vi) - 1.0) * (static_cast<double>(vj) - 1.0) *
          static_cast<double>(vij) /
          (static_cast<double>(vi) * static_cast<double>(vj));
      out(i, j) = factor * sum_r2;
    }
  }
  return out;
}

}  // namespace ldla
