// Shared per-tile bodies of the fused count drivers.
//
// One cache-resident count tile — rows [ic, ic_end) × cols [jc, jc_end) of
// the (sliver-padded) iteration space — is zeroed, accumulated over every
// kc panel, clamped to the caller's in-range window, and handed to the
// CountTileSink. The sequential fused drivers (gemm_count_fused /
// syrk_count_fused) call these with whole mc×nc cache tiles; the in-nest
// parallel drivers (core/gemm/nest.hpp) call them with mc×(q·nr) chunks so
// stolen work keeps the exact same per-element arithmetic — results are
// bit-identical by construction, only the tile granularity differs.
//
// Contract (callers are the drivers, which validate their public inputs):
//  - ic is mr-aligned relative to the packed sliver grid, jc is nr-aligned;
//    ic_end / jc_end are sliver-aligned or equal to the padded range end.
//  - scratch holds at least (ic_end - ic) rows × scratch_ld cols, with
//    scratch_ld >= jc_end - jc.
//  - The clamp window [a_begin, a_end) × [b_begin, b_end) intersects the
//    tile (the drivers only enumerate intersecting tiles).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "core/gemm/kernel.hpp"
#include "core/gemm/macro.hpp"
#include "core/gemm/packed_bit_matrix.hpp"
#include "core/gemm/sparse_kernel.hpp"
#include "util/contract.hpp"
#include "util/trace.hpp"

namespace ldla::detail {

/// A register tile may leave the dense walk for the list kernels only when
/// the gather's dense side carries the sample-major transpose. Same-matrix
/// calls always qualify (a sparse sliver implies the pack classified
/// columns, which builds the transpose); in a cross-matrix call a partner
/// packed from an all-dense matrix lacks it, and the pair stays on the
/// dense micro-kernel. The dense walk and the sparse pass must agree on
/// this predicate — every pair is computed exactly once.
inline bool sparse_pair_ok(const PackedBitMatrix& a, const PackedBitMatrix& b,
                           bool a_sp, bool b_sp) {
  if (a_sp && b_sp) return true;  // both packs built their transposes
  if (a_sp) return b.has_sample_major();
  if (b_sp) return a.has_sample_major();
  return false;
}

inline void fused_gemm_tile(const PackedBitMatrix& a, const PackedBitMatrix& b,
                            const KernelInfo& kern, std::size_t mr,
                            std::size_t nr, std::size_t ic, std::size_t ic_end,
                            std::size_t jc, std::size_t jc_end,
                            std::size_t a_begin, std::size_t a_end,
                            std::size_t b_begin, std::size_t b_end,
                            std::uint32_t* scratch, std::size_t scratch_ld,
                            const CountTileSink& sink) {
  const std::size_t tile_rows = ic_end - ic;
  const std::size_t tile_cols = jc_end - jc;
  for (std::size_t i = 0; i < tile_rows; ++i) {
    std::memset(&scratch[i * scratch_ld], 0,
                tile_cols * sizeof(std::uint32_t));
  }

  // All rank-kc updates for this tile before moving on: the tile is final
  // when the panel loop ends. When either pack carries sparse-classified
  // slivers the register tiles split two ways: pairs with at least one
  // all-sparse side are handed to the list kernels below (once, whole-k),
  // the rest keep the dense micro-kernel panel walk — same scratch, same
  // integer counts, so the emitted CountTile is bit-identical either way.
  const bool hybrid = a.hybrid_dispatch() || b.hybrid_dispatch();
  {
    LDLA_TRACE_SPAN(kKernel);
    std::uint64_t tile_calls = 0;
    std::uint64_t tile_words = 0;
    for (std::size_t p = 0; p < a.panels(); ++p) {
      const std::size_t kcp = a.panel_kc_padded(p);
      const PackedPanelView b_panel = b.b_panel(p, jc / nr, tile_cols / nr);
      const PackedPanelView a_panel = a.a_panel(p, ic / mr, tile_rows / mr);
      for (std::size_t jr = 0; jr < tile_cols; jr += nr) {
        const std::uint64_t* bp = b_panel.sliver(jr / nr);
        const bool b_sp = hybrid && b.b_sliver_sparse((jc + jr) / nr);
        for (std::size_t ir = 0; ir < tile_rows; ir += mr) {
          if (hybrid &&
              sparse_pair_ok(a, b, a.a_sliver_sparse((ic + ir) / mr), b_sp)) {
            continue;
          }
          const std::uint64_t* ap = a_panel.sliver(ir / mr);
          LDLA_ASSERT_ALIGNED(ap, 8);
          LDLA_ASSERT_ALIGNED(bp, 8);
          kern.fn(kcp, ap, bp, &scratch[ir * scratch_ld + jr], scratch_ld);
          ++tile_calls;
          tile_words += static_cast<std::uint64_t>(mr * nr) * kcp;
        }
      }
    }
    LDLA_TRACE_ADD_KERNEL(tile_calls, tile_words);
    if (hybrid) {
      SparseTileCounters tc;
      std::uint64_t fallback_tiles = 0;
      // Two passes, split by which side the gather's list comes from. Pass
      // 1 (jr outer) takes every pair with a sparse B sliver — those
      // gather the jr lists, which stay hot across the whole ir sweep.
      // Pass 2 (ir outer) takes the a-sparse × b-dense remainder — those
      // gather the ir lists against B's transpose, and with jr innermost
      // each gathered sample's transpose row lines cover every dense jr
      // word column of the tile, so only the first jr tile misses. The
      // passes partition the sparse pairs, so every pair still runs once.
      for (std::size_t jr = 0; jr < tile_cols; jr += nr) {
        if (!b.b_sliver_sparse((jc + jr) / nr)) continue;
        for (std::size_t ir = 0; ir < tile_rows; ir += mr) {
          const bool a_sp = a.a_sliver_sparse((ic + ir) / mr);
          if (!sparse_pair_ok(a, b, a_sp, true)) {
            ++fallback_tiles;
            continue;
          }
          sparse_register_tile(a, b, a_sp, true, ic + ir, jc + jr, mr, nr,
                               &scratch[ir * scratch_ld + jr], scratch_ld, tc);
        }
      }
      for (std::size_t ir = 0; ir < tile_rows; ir += mr) {
        if (!a.a_sliver_sparse((ic + ir) / mr)) continue;
        for (std::size_t jr = 0; jr < tile_cols; jr += nr) {
          if (b.b_sliver_sparse((jc + jr) / nr)) continue;
          if (!sparse_pair_ok(a, b, true, false)) {
            ++fallback_tiles;
            continue;
          }
          sparse_register_tile(a, b, true, false, ic + ir, jc + jr, mr, nr,
                               &scratch[ir * scratch_ld + jr], scratch_ld, tc);
        }
      }
      LDLA_TRACE_ADD_SPARSE(tc.ll_tiles, tc.ld_tiles, tc.intersections,
                            fallback_tiles);
    }
  }

  const std::size_t i_lo = std::max(ic, a_begin);
  const std::size_t i_hi = std::min(ic_end, a_end);
  const std::size_t j_lo = std::max(jc, b_begin);
  const std::size_t j_hi = std::min(jc_end, b_end);
  LDLA_TRACE_ADD_TILE();
  sink(CountTile{i_lo, j_lo, i_hi - i_lo, j_hi - j_lo,
                 &scratch[(i_lo - ic) * scratch_ld + (j_lo - jc)],
                 scratch_ld});
}

// Symmetric variant: register tiles strictly above the diagonal are skipped
// (the zeroed scratch makes them read as deterministic zeros inside the
// emitted tile), and the clamp window is [row_begin, row_end) on both axes.
inline void fused_syrk_tile(const PackedBitMatrix& a, const KernelInfo& kern,
                            std::size_t mr, std::size_t nr, std::size_t ic,
                            std::size_t ic_end, std::size_t jc,
                            std::size_t jc_end, std::size_t row_begin,
                            std::size_t row_end, std::uint32_t* scratch,
                            std::size_t scratch_ld, const CountTileSink& sink) {
  const std::size_t tile_rows = ic_end - ic;
  const std::size_t tile_cols = jc_end - jc;
  for (std::size_t i = 0; i < tile_rows; ++i) {
    std::memset(&scratch[i * scratch_ld], 0,
                tile_cols * sizeof(std::uint32_t));
  }

  const bool hybrid = a.hybrid_dispatch();
  {
    LDLA_TRACE_SPAN(kKernel);
    std::uint64_t tile_calls = 0;
    std::uint64_t tile_words = 0;
    for (std::size_t p = 0; p < a.panels(); ++p) {
      const std::size_t kcp = a.panel_kc_padded(p);
      const PackedPanelView b_panel = a.b_panel(p, jc / nr, tile_cols / nr);
      const PackedPanelView a_panel = a.a_panel(p, ic / mr, tile_rows / mr);
      std::uint64_t panel_calls = 0;
      for (std::size_t jr = jc; jr < jc_end; jr += nr) {
        const std::uint64_t* bp = b_panel.sliver((jr - jc) / nr);
        const bool b_sp = hybrid && a.b_sliver_sparse(jr / nr);
        for (std::size_t ir = ic; ir < ic_end; ir += mr) {
          // Skip tiles strictly above the diagonal band.
          if (ir + mr <= jr) continue;
          if (hybrid && sparse_pair_ok(a, a, a.a_sliver_sparse(ir / mr), b_sp)) {
            continue;
          }
          ++panel_calls;
          const std::uint64_t* ap = a_panel.sliver((ir - ic) / mr);
          LDLA_ASSERT_ALIGNED(ap, 8);
          LDLA_ASSERT_ALIGNED(bp, 8);
          kern.fn(kcp, ap, bp,
                  &scratch[(ir - ic) * scratch_ld + (jr - jc)], scratch_ld);
        }
      }
      tile_calls += panel_calls;
      tile_words += panel_calls * static_cast<std::uint64_t>(mr * nr * kcp);
    }
    LDLA_TRACE_ADD_KERNEL(tile_calls, tile_words);
    if (hybrid) {
      SparseTileCounters tc;
      std::uint64_t fallback_tiles = 0;
      // Same list-side split as the gemm body (see the comment there),
      // with the dense walk's diagonal skip applied in both passes.
      for (std::size_t jr = jc; jr < jc_end; jr += nr) {
        if (!a.b_sliver_sparse(jr / nr)) continue;
        for (std::size_t ir = ic; ir < ic_end; ir += mr) {
          if (ir + mr <= jr) continue;  // same diagonal skip as the dense walk
          const bool a_sp = a.a_sliver_sparse(ir / mr);
          if (!sparse_pair_ok(a, a, a_sp, true)) {
            ++fallback_tiles;
            continue;
          }
          sparse_register_tile(a, a, a_sp, true, ir, jr, mr, nr,
                               &scratch[(ir - ic) * scratch_ld + (jr - jc)],
                               scratch_ld, tc);
        }
      }
      for (std::size_t ir = ic; ir < ic_end; ir += mr) {
        if (!a.a_sliver_sparse(ir / mr)) continue;
        for (std::size_t jr = jc; jr < jc_end; jr += nr) {
          if (ir + mr <= jr) continue;  // same diagonal skip as the dense walk
          if (a.b_sliver_sparse(jr / nr)) continue;
          if (!sparse_pair_ok(a, a, true, false)) {
            ++fallback_tiles;
            continue;
          }
          sparse_register_tile(a, a, true, false, ir, jr, mr, nr,
                               &scratch[(ir - ic) * scratch_ld + (jr - jc)],
                               scratch_ld, tc);
        }
      }
      LDLA_TRACE_ADD_SPARSE(tc.ll_tiles, tc.ld_tiles, tc.intersections,
                            fallback_tiles);
    }
  }

  const std::size_t i_lo = std::max(ic, row_begin);
  const std::size_t i_hi = std::min(ic_end, row_end);
  const std::size_t j_lo = std::max(jc, row_begin);
  const std::size_t j_hi = std::min(jc_end, row_end);
  LDLA_TRACE_ADD_TILE();
  sink(CountTile{i_lo, j_lo, i_hi - i_lo, j_hi - j_lo,
                 &scratch[(i_lo - ic) * scratch_ld + (j_lo - jc)],
                 scratch_ld});
}

}  // namespace ldla::detail
