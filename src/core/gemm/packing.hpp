// Packing of bit-matrix panels into the micro-kernel's interleaved layout.
//
// The GotoBLAS approach copies each cache block of A and B into contiguous
// memory ordered exactly as the micro-kernel consumes it, so the innermost
// loop performs only unit-stride, aligned loads. For the popcount semiring,
// rows beyond the matrix edge and words beyond kc are padded with zeros,
// which are identity elements — edge handling costs nothing in the kernel.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/bit_matrix.hpp"
#include "util/contract.hpp"

namespace ldla {

/// Words required to pack `rows` rows of `kc` words with register blocking
/// `r` and k-unroll `ku` (rows rounds up to a multiple of r, kc to ku).
std::size_t packed_panel_words(std::size_t rows, std::size_t kc, std::size_t r,
                               std::size_t ku);

/// Non-owning view of a packed operand panel: `slivers` groups of `r` rows,
/// each `kc_padded` words long in the interleaved layout the micro-kernels
/// consume (see kernel.hpp). Sliver lookup is bounds-checked in debug /
/// checked builds, so macro-kernel indexing bugs fault loudly instead of
/// reading past the packing buffer.
struct PackedPanelView {
  const std::uint64_t* data = nullptr;
  std::size_t slivers = 0;    ///< number of r-row groups
  std::size_t r = 0;          ///< register blocking (rows per sliver)
  std::size_t kc_padded = 0;  ///< words per row, padded to the k-unroll

  [[nodiscard]] const std::uint64_t* sliver(std::size_t s) const {
    LDLA_BOUNDS_CHECK(s < slivers, "packed panel sliver out of range");
    return data + s * r * kc_padded;
  }
  [[nodiscard]] std::size_t words() const noexcept {
    return slivers * r * kc_padded;
  }
};

/// Pack rows [row_begin, row_begin+rows) and words [k_begin, k_begin+kc)
/// of `m` into `out` using the layout documented in kernel.hpp:
///
///   out[((kchunk * slivers + s) * r + i) * ku + kk]  -- wait, see .cpp; the
/// layout is sliver-major: for each sliver of r rows, all kc words of that
/// sliver are contiguous, grouped ku words at a time per row.
///
/// Rows past the end of the matrix and words past the row payload are
/// zero-filled. `out` must hold packed_panel_words(...) words.
void pack_panel(const BitMatrixView& m, std::size_t row_begin,
                std::size_t rows, std::size_t k_begin, std::size_t kc,
                std::size_t r, std::size_t ku, std::uint64_t* out);

/// pack_panel + a bounds-checked view over the packed result. `out` must be
/// 64-byte aligned (the packing buffers are AlignedBuffer-backed).
PackedPanelView pack_panel_view(const BitMatrixView& m, std::size_t row_begin,
                                std::size_t rows, std::size_t k_begin,
                                std::size_t kc, std::size_t r, std::size_t ku,
                                std::uint64_t* out);

}  // namespace ldla
