// Packing of bit-matrix panels into the micro-kernel's interleaved layout.
//
// The GotoBLAS approach copies each cache block of A and B into contiguous
// memory ordered exactly as the micro-kernel consumes it, so the innermost
// loop performs only unit-stride, aligned loads. For the popcount semiring,
// rows beyond the matrix edge and words beyond kc are padded with zeros,
// which are identity elements — edge handling costs nothing in the kernel.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/bit_matrix.hpp"

namespace ldla {

/// Words required to pack `rows` rows of `kc` words with register blocking
/// `r` and k-unroll `ku` (rows rounds up to a multiple of r, kc to ku).
std::size_t packed_panel_words(std::size_t rows, std::size_t kc, std::size_t r,
                               std::size_t ku);

/// Pack rows [row_begin, row_begin+rows) and words [k_begin, k_begin+kc)
/// of `m` into `out` using the layout documented in kernel.hpp:
///
///   out[((kchunk * slivers + s) * r + i) * ku + kk]  -- wait, see .cpp; the
/// layout is sliver-major: for each sliver of r rows, all kc words of that
/// sliver are contiguous, grouped ku words at a time per row.
///
/// Rows past the end of the matrix and words past the row payload are
/// zero-filled. `out` must hold packed_panel_words(...) words.
void pack_panel(const BitMatrixView& m, std::size_t row_begin,
                std::size_t rows, std::size_t k_begin, std::size_t kc,
                std::size_t r, std::size_t ku, std::uint64_t* out);

}  // namespace ldla
