#include "core/gemm/syrk.hpp"

#include <algorithm>
#include <cstring>

#include "core/gemm/kernel.hpp"
#include "core/gemm/macro.hpp"
#include "core/gemm/packing.hpp"
#include "util/aligned_buffer.hpp"
#include "util/contract.hpp"

namespace ldla {

void syrk_count(const BitMatrixView& a, CountMatrixRef c,
                const GemmConfig& cfg) {
  const std::size_t n = a.n_snps;
  LDLA_EXPECT(c.rows >= n && c.cols >= n, "output matrix is too small");
  if (n == 0) return;

  // Zero the lower triangle (the part we accumulate into).
  for (std::size_t i = 0; i < n; ++i) {
    std::memset(&c.at(i, 0), 0, (i + 1) * sizeof(std::uint32_t));
  }

  const GemmPlan plan = resolve_plan(cfg, a.n_words);
  if (!plan.packing) {
    // Ablation path: reuse the rectangular driver on the full matrix
    // (no triangle savings without tiles), then fall through to mirroring.
    for (std::size_t i = 0; i < n; ++i) {
      std::memset(&c.at(i, 0), 0, c.cols * sizeof(std::uint32_t));
    }
    gemm_count(a, a, c, cfg);
    return;
  }

  const KernelInfo& kern = kernel_info(plan.arch);
  const std::size_t mr = plan.mr;
  const std::size_t nr = plan.nr;
  const std::size_t ku = plan.ku;
  const std::size_t k = a.n_words;

  const std::size_t mc = std::min(plan.mc, (n + mr - 1) / mr * mr);
  const std::size_t nc = std::min(plan.nc, (n + nr - 1) / nr * nr);
  const std::size_t kc = std::min(plan.kc_words, (k + ku - 1) / ku * ku);

  AlignedBuffer<std::uint64_t> a_pack(packed_panel_words(mc, kc, mr, ku));
  AlignedBuffer<std::uint64_t> b_pack(packed_panel_words(nc, kc, nr, ku));

  for (std::size_t jc = 0; jc < n; jc += nc) {
    const std::size_t ncb = std::min(nc, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kc) {
      const std::size_t kcb = std::min(kc, k - pc);
      const std::size_t kcb_padded = (kcb + ku - 1) / ku * ku;
      const PackedPanelView b_panel =
          pack_panel_view(a, jc, ncb, pc, kcb, nr, ku, b_pack.data());

      // Only row blocks that intersect the lower triangle of this column
      // panel: rows >= jc (snapped down to an mc boundary).
      const std::size_t ic_start = (jc / mc) * mc;
      for (std::size_t ic = ic_start; ic < n; ic += mc) {
        const std::size_t mcb = std::min(mc, n - ic);
        const PackedPanelView a_panel =
            pack_panel_view(a, ic, mcb, pc, kcb, mr, ku, a_pack.data());

        for (std::size_t jr = 0; jr < ncb; jr += nr) {
          const std::uint64_t* bp = b_panel.sliver(jr / nr);
          const std::size_t nrb = std::min(nr, ncb - jr);
          const std::size_t j_global = jc + jr;
          for (std::size_t ir = 0; ir < mcb; ir += mr) {
            const std::size_t i_global = ic + ir;
            // Skip tiles strictly above the diagonal band.
            if (i_global + mr <= j_global) continue;
            const std::uint64_t* ap = a_panel.sliver(ir / mr);
            const std::size_t mrb = std::min(mr, mcb - ir);
            LDLA_ASSERT_ALIGNED(ap, 8);
            LDLA_ASSERT_ALIGNED(bp, 8);
            if (mrb == mr && nrb == nr && i_global >= j_global + nr - 1) {
              // Tile entirely on/below the diagonal: write straight to C.
              kern.fn(kcb_padded, ap, bp, &c.at(i_global, j_global), c.ld);
            } else {
              // Diagonal-crossing or edge tile: temporary, then copy only
              // the lower-triangle entries.
              std::uint32_t tile[16 * 16];
              std::memset(tile, 0, mr * nr * sizeof(std::uint32_t));
              kern.fn(kcb_padded, ap, bp, tile, nr);
              for (std::size_t i = 0; i < mrb; ++i) {
                for (std::size_t j = 0; j < nrb; ++j) {
                  if (i_global + i >= j_global + j) {
                    c.at(i_global + i, j_global + j) += tile[i * nr + j];
                  }
                }
              }
            }
          }
        }
      }
    }
  }

  // Mirror the lower triangle into the upper one.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      c.at(i, j) = c.at(j, i);
    }
  }
}

}  // namespace ldla
