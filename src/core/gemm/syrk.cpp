#include "core/gemm/syrk.hpp"

#include <algorithm>
#include <cstring>

#include "core/gemm/fused_tile.hpp"
#include "core/gemm/kernel.hpp"
#include "core/gemm/macro.hpp"
#include "core/gemm/packing.hpp"
#include "util/aligned_buffer.hpp"
#include "util/contract.hpp"
#include "util/trace.hpp"

namespace ldla {

void mirror_lower_to_upper(CountMatrixRef c, std::size_t n) {
  LDLA_EXPECT(c.rows >= n && c.cols >= n, "matrix is too small to mirror");
  LDLA_TRACE_SPAN(kMirror);
  // Block so the source rows (unit stride) and destination rows (the
  // transposed block) both stay cache-resident: 64 x 64 x 4 B = 16 KiB of
  // destination lines, far under L1+L2 even with the source streaming.
  constexpr std::size_t kBlock = 64;
  for (std::size_t jb = 0; jb < n; jb += kBlock) {
    const std::size_t j_end = std::min(jb + kBlock, n);
    // Diagonal block: the triangle within the block.
    for (std::size_t i = jb; i < j_end; ++i) {
      for (std::size_t j = i + 1; j < j_end; ++j) {
        c.at(i, j) = c.at(j, i);
      }
    }
    // Full blocks below the diagonal block mirror to above it.
    for (std::size_t ib = j_end; ib < n; ib += kBlock) {
      const std::size_t i_end = std::min(ib + kBlock, n);
      for (std::size_t i = ib; i < i_end; ++i) {
        for (std::size_t j = jb; j < j_end; ++j) {
          c.at(j, i) = c.at(i, j);
        }
      }
    }
  }
}

void syrk_count_packed(const PackedBitMatrix& a, std::size_t row_begin,
                       std::size_t row_end, CountMatrixRef c,
                       bool triangular_only) {
  LDLA_EXPECT(row_begin <= row_end && row_end <= a.snps(),
              "row range out of range");
  const std::size_t n = row_end - row_begin;
  if (n == 0) return;
  LDLA_EXPECT(c.rows >= n && c.cols >= n, "output matrix is too small");
  LDLA_EXPECT(c.ld >= c.cols, "output leading dimension too small");
  LDLA_EXPECT(a.has_a_side() && a.has_b_side(),
              "symmetric driver needs both operand sides packed");

  // Zero the lower triangle (the part we accumulate into).
  for (std::size_t i = 0; i < n; ++i) {
    std::memset(&c.at(i, 0), 0, (i + 1) * sizeof(std::uint32_t));
  }

  const GemmPlan& plan = a.plan();
  const KernelInfo& kern = kernel_for_plan(plan);
  const std::size_t mr = plan.mr;
  const std::size_t nr = plan.nr;
  const std::size_t mc = plan.mc;
  const std::size_t nc = plan.nc;

  const std::size_t ic0 = row_begin / mr * mr;
  const std::size_t jc0 = row_begin / nr * nr;
  const std::size_t i_pad_end = (row_end + mr - 1) / mr * mr;
  const std::size_t j_pad_end = (row_end + nr - 1) / nr * nr;

  for (std::size_t jc = jc0; jc < row_end; jc += nc) {
    const std::size_t jc_end = std::min(jc + nc, j_pad_end);
    for (std::size_t p = 0; p < a.panels(); ++p) {
      const std::size_t kcp = a.panel_kc_padded(p);
      const PackedPanelView b_panel =
          a.b_panel(p, jc / nr, (jc_end - jc) / nr);

      // Only row blocks that intersect the lower triangle of this column
      // panel: global rows >= jc, snapped down to an mc boundary (the
      // per-tile skip below handles the slack exactly).
      std::size_t ic_start = ic0;
      if (jc > ic0) ic_start = ic0 + (jc - ic0) / mc * mc;
      for (std::size_t ic = ic_start; ic < row_end; ic += mc) {
        const std::size_t ic_end = std::min(ic + mc, i_pad_end);
        const PackedPanelView a_panel =
            a.a_panel(p, ic / mr, (ic_end - ic) / mr);

        LDLA_TRACE_SPAN(kKernel);
        // The diagonal skip makes the call count data-dependent on the tile
        // grid, so count actual invocations instead of deriving from shape.
        std::uint64_t block_calls = 0;
        for (std::size_t jr = jc; jr < jc_end; jr += nr) {
          const std::uint64_t* bp = b_panel.sliver((jr - jc) / nr);
          const std::size_t j_lo = std::max(jr, row_begin);
          const std::size_t j_hi = std::min(jr + nr, row_end);
          for (std::size_t ir = ic; ir < ic_end; ir += mr) {
            // Skip tiles strictly above the diagonal band.
            if (ir + mr <= jr) continue;
            ++block_calls;
            const std::uint64_t* ap = a_panel.sliver((ir - ic) / mr);
            const std::size_t i_lo = std::max(ir, row_begin);
            const std::size_t i_hi = std::min(ir + mr, row_end);
            LDLA_ASSERT_ALIGNED(ap, 8);
            LDLA_ASSERT_ALIGNED(bp, 8);
            const bool interior = i_lo == ir && i_hi == ir + mr &&
                                  j_lo == jr && j_hi == jr + nr;
            if (interior && ir >= jr + nr - 1) {
              // Tile entirely on/below the diagonal: write straight to C.
              kern.fn(kcp, ap, bp, &c.at(ir - row_begin, jr - row_begin),
                      c.ld);
            } else {
              // Diagonal-crossing or range-boundary tile: temporary, then
              // copy only the in-range lower-triangle entries.
              std::uint32_t tile[16 * 16];
              LDLA_ASSERT(mr * nr <= 256);
              std::memset(tile, 0, mr * nr * sizeof(std::uint32_t));
              kern.fn(kcp, ap, bp, tile, nr);
              for (std::size_t i = i_lo; i < i_hi; ++i) {
                const std::size_t j_stop = std::min(j_hi, i + 1);
                for (std::size_t j = j_lo; j < j_stop; ++j) {
                  c.at(i - row_begin, j - row_begin) +=
                      tile[(i - ir) * nr + (j - jr)];
                }
              }
            }
          }
        }
        LDLA_TRACE_ADD_KERNEL(
            block_calls,
            block_calls * static_cast<std::uint64_t>(mr * nr * kcp));
      }
    }
  }

  if (!triangular_only) mirror_lower_to_upper(c, n);
}

void syrk_count_fused(const PackedBitMatrix& a, std::size_t row_begin,
                      std::size_t row_end, const CountTileSink& sink) {
  LDLA_EXPECT(row_begin <= row_end && row_end <= a.snps(),
              "row range out of range");
  LDLA_EXPECT(sink != nullptr, "fused driver needs a tile sink");
  if (row_begin == row_end) return;
  LDLA_EXPECT(a.has_a_side() && a.has_b_side(),
              "symmetric driver needs both operand sides packed");

  const GemmPlan& plan = a.plan();
  const KernelInfo& kern = kernel_for_plan(plan);
  const std::size_t mr = plan.mr;
  const std::size_t nr = plan.nr;
  const std::size_t mc = plan.mc;
  const std::size_t nc = plan.nc;

  const std::size_t ic0 = row_begin / mr * mr;
  const std::size_t jc0 = row_begin / nr * nr;
  const std::size_t i_pad_end = (row_end + mr - 1) / mr * mr;
  const std::size_t j_pad_end = (row_end + nr - 1) / nr * nr;

  // Tile-local count scratch (see gemm_count_fused). Zeroing the used
  // window also makes skipped above-diagonal register tiles read as
  // deterministic zeros.
  const std::size_t scratch_ld = std::min(nc, j_pad_end - jc0);
  AlignedBuffer<std::uint32_t> scratch(std::min(mc, i_pad_end - ic0) *
                                       scratch_ld);

  for (std::size_t jc = jc0; jc < row_end; jc += nc) {
    const std::size_t jc_end = std::min(jc + nc, j_pad_end);

    // Only row blocks that intersect the lower triangle of this column
    // panel: global rows >= jc, snapped down to an mc boundary (the
    // per-tile skip inside the tile body handles the slack exactly).
    std::size_t ic_start = ic0;
    if (jc > ic0) ic_start = ic0 + (jc - ic0) / mc * mc;
    for (std::size_t ic = ic_start; ic < row_end; ic += mc) {
      const std::size_t ic_end = std::min(ic + mc, i_pad_end);
      detail::fused_syrk_tile(a, kern, mr, nr, ic, ic_end, jc, jc_end,
                              row_begin, row_end, scratch.data(), scratch_ld,
                              sink);
    }
  }
}

void syrk_count(const BitMatrixView& a, CountMatrixRef c,
                const GemmConfig& cfg, bool triangular_only) {
  const std::size_t n = a.n_snps;
  LDLA_EXPECT(c.rows >= n && c.cols >= n, "output matrix is too small");
  if (n == 0) return;

  const GemmPlan plan = resolve_plan(cfg, a.n_words);
  if (!plan.packing) {
    // Ablation path: reuse the rectangular driver on the full matrix (no
    // triangle savings without tiles); both triangles come out valid, so
    // triangular_only needs no extra work.
    for (std::size_t i = 0; i < n; ++i) {
      std::memset(&c.at(i, 0), 0, c.cols * sizeof(std::uint32_t));
    }
    gemm_count(a, a, c, cfg);
    return;
  }
  if (cfg.pack_once) {
    const PackedBitMatrix pa(a, plan, PackSides::kBoth);
    syrk_count_packed(pa, 0, n, c, triangular_only);
    return;
  }

  // Fresh-pack ablation control: the original per-block packing nest.
  // Zero the lower triangle (the part we accumulate into).
  for (std::size_t i = 0; i < n; ++i) {
    std::memset(&c.at(i, 0), 0, (i + 1) * sizeof(std::uint32_t));
  }

  const KernelInfo& kern = kernel_for_plan(plan);
  const std::size_t mr = plan.mr;
  const std::size_t nr = plan.nr;
  const std::size_t ku = plan.ku;
  const std::size_t k = a.n_words;

  const std::size_t mc = std::min(plan.mc, (n + mr - 1) / mr * mr);
  const std::size_t nc = std::min(plan.nc, (n + nr - 1) / nr * nr);
  const std::size_t kc = std::min(plan.kc_words, (k + ku - 1) / ku * ku);

  AlignedBuffer<std::uint64_t> a_pack(packed_panel_words(mc, kc, mr, ku));
  AlignedBuffer<std::uint64_t> b_pack(packed_panel_words(nc, kc, nr, ku));

  for (std::size_t jc = 0; jc < n; jc += nc) {
    const std::size_t ncb = std::min(nc, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kc) {
      const std::size_t kcb = std::min(kc, k - pc);
      const std::size_t kcb_padded = (kcb + ku - 1) / ku * ku;
      const PackedPanelView b_panel = [&] {
        LDLA_TRACE_SPAN(kPackB);
        return pack_panel_view(a, jc, ncb, pc, kcb, nr, ku, b_pack.data());
      }();

      // Only row blocks that intersect the lower triangle of this column
      // panel: rows >= jc (snapped down to an mc boundary).
      const std::size_t ic_start = (jc / mc) * mc;
      for (std::size_t ic = ic_start; ic < n; ic += mc) {
        const std::size_t mcb = std::min(mc, n - ic);
        const PackedPanelView a_panel = [&] {
          LDLA_TRACE_SPAN(kPackA);
          return pack_panel_view(a, ic, mcb, pc, kcb, mr, ku, a_pack.data());
        }();

        LDLA_TRACE_SPAN(kKernel);
        std::uint64_t block_calls = 0;
        for (std::size_t jr = 0; jr < ncb; jr += nr) {
          const std::uint64_t* bp = b_panel.sliver(jr / nr);
          const std::size_t nrb = std::min(nr, ncb - jr);
          const std::size_t j_global = jc + jr;
          for (std::size_t ir = 0; ir < mcb; ir += mr) {
            const std::size_t i_global = ic + ir;
            // Skip tiles strictly above the diagonal band.
            if (i_global + mr <= j_global) continue;
            ++block_calls;
            const std::uint64_t* ap = a_panel.sliver(ir / mr);
            const std::size_t mrb = std::min(mr, mcb - ir);
            LDLA_ASSERT_ALIGNED(ap, 8);
            LDLA_ASSERT_ALIGNED(bp, 8);
            if (mrb == mr && nrb == nr && i_global >= j_global + nr - 1) {
              // Tile entirely on/below the diagonal: write straight to C.
              kern.fn(kcb_padded, ap, bp, &c.at(i_global, j_global), c.ld);
            } else {
              // Diagonal-crossing or edge tile: temporary, then copy only
              // the lower-triangle entries.
              std::uint32_t tile[16 * 16];
              std::memset(tile, 0, mr * nr * sizeof(std::uint32_t));
              kern.fn(kcb_padded, ap, bp, tile, nr);
              for (std::size_t i = 0; i < mrb; ++i) {
                for (std::size_t j = 0; j < nrb; ++j) {
                  if (i_global + i >= j_global + j) {
                    c.at(i_global + i, j_global + j) += tile[i * nr + j];
                  }
                }
              }
            }
          }
        }
        LDLA_TRACE_ADD_KERNEL(
            block_calls,
            block_calls * static_cast<std::uint64_t>(mr * nr * kcb_padded));
      }
    }
  }

  if (!triangular_only) mirror_lower_to_upper(c, n);
}

}  // namespace ldla
