#include "core/gemm/packed_bit_matrix.hpp"

#include <algorithm>
#include <array>

#include "core/bit_transpose.hpp"
#include "util/contract.hpp"
#include "util/partition.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace ldla {

PackedBitMatrix::PackedBitMatrix(const BitMatrixView& m, const GemmPlan& plan,
                                 PackSides sides, unsigned threads)
    : plan_(plan),
      n_snps_(m.n_snps),
      n_words_(m.n_words),
      n_samples_(m.n_samples) {
  LDLA_EXPECT(plan.packing,
              "PackedBitMatrix requires a plan with packing enabled (the "
              "unpacked ablation has no packed representation)");
  LDLA_EXPECT(plan.mr != 0 && plan.nr != 0 && plan.ku != 0 &&
                  plan.kc_words != 0,
              "PackedBitMatrix requires a fully resolved plan");
  if (m.n_snps == 0 || m.n_words == 0) {
    return;
  }
  const std::size_t k_padded =
      (n_words_ + plan.ku - 1) / plan.ku * plan.ku;
  kc_ = plan.kc_words < k_padded ? plan.kc_words : k_padded;
  panels_ = (n_words_ + kc_ - 1) / kc_;

  const bool want_a = sides != PackSides::kB;
  const bool want_b = sides != PackSides::kA;
  if (want_a) {
    pack_side(m, a_, plan.mr, threads);
  }
  if (want_b) {
    if (want_a && plan.nr == plan.mr) {
      b_shares_a_ = true;  // one copy serves both operand sides
    } else {
      pack_side(m, b_, plan.nr, threads);
    }
  }

  // MAF-adaptive sparse columns: classify every row from the same matrix
  // the slivers were packed from. Rides the pack phase for attribution.
  {
    LDLA_TRACE_SPAN(kPackA);
    sparse_ = build_sparse_columns(m, plan.sparse_threshold);
  }
  if (sparse_.sparse_count != 0) {
    if (a_.r != 0) {
      a_sliver_sparse_ = sliver_flags(plan.mr);
    }
    if (b_.r != 0) {
      b_sliver_sparse_ = sliver_flags(plan.nr);
    }
    const auto any = [](const std::vector<std::uint8_t>& v) {
      return std::find(v.begin(), v.end(), std::uint8_t{1}) != v.end();
    };
    hybrid_ = any(a_sliver_sparse_) || any(b_sliver_sparse_);
    // Any sparse column may become the list side of a gather — even from a
    // partner pack in a cross-matrix call — so the transpose is built
    // whenever classification found anything. Dense packs skip it.
    build_sample_major(m);
  }
}

void PackedBitMatrix::build_sample_major(const BitMatrixView& m) {
  LDLA_TRACE_SPAN(kPackA);
  sm_stride_ = (n_snps_ + 63) / 64;
  sample_major_ = AlignedBuffer<std::uint64_t>(n_samples_ * sm_stride_);
  // 64×64 block transpose straight off the view (transpose_bits wants an
  // owning BitMatrix). Every word of every real sample row is written:
  // input rows past n_snps_ read as zero, input padding bits past
  // n_samples_ land in output rows that are never emitted.
  // Sample blocks outer: each cb iteration writes one contiguous 64-row
  // output region (hot across all rb), and the reads walk the source rows
  // at a constant stride the hardware prefetcher tracks.
  std::array<std::uint64_t, 64> block;
  for (std::size_t cb = 0; cb < m.n_words; ++cb) {
    const std::size_t out_rows =
        std::min<std::size_t>(64, n_samples_ - cb * 64);
    for (std::size_t rb = 0; rb < sm_stride_; ++rb) {
      const std::size_t rows = std::min<std::size_t>(64, n_snps_ - rb * 64);
      for (std::size_t i = 0; i < 64; ++i) {
        block[i] = i < rows ? m.row(rb * 64 + i)[cb] : 0;
      }
      transpose_64x64(block);
      for (std::size_t i = 0; i < out_rows; ++i) {
        sample_major_[(cb * 64 + i) * sm_stride_ + rb] = block[i];
      }
    }
  }
  // Prescale the index lists once: the gather's address chain is
  // entry-load → scale → word-load, and baking sample × stride in here
  // removes the multiply latency from every gathered address (the lists
  // are read orders of magnitude more often than they are built).
  LDLA_EXPECT(n_samples_ * sm_stride_ <= UINT32_MAX,
              "sample-major transpose exceeds 32-bit word addressing");
  const std::uint32_t stride32 = static_cast<std::uint32_t>(sm_stride_);
  scaled_index_ = AlignedBuffer<std::uint32_t>(sparse_.index.size());
  for (std::size_t i = 0; i < sparse_.index.size(); ++i) {
    scaled_index_[i] = sparse_.index[i] * stride32;
  }
  sm_ptr_ = sample_major_.data();
  scaled_ptr_ = scaled_index_.data();
}

std::vector<std::uint8_t> PackedBitMatrix::sliver_flags(std::size_t r) const {
  std::vector<std::uint8_t> flags((n_snps_ + r - 1) / r, std::uint8_t{1});
  for (std::size_t s = 0; s < flags.size(); ++s) {
    const std::size_t end = std::min(n_snps_, (s + 1) * r);
    for (std::size_t i = s * r; i < end; ++i) {
      if (sparse_.kind[i] == ColumnKind::kDense) {
        flags[s] = 0;
        break;
      }
    }
  }
  return flags;
}

PackedBitMatrix PackedBitMatrix::pack(const BitMatrixView& m,
                                      const GemmConfig& cfg, PackSides sides,
                                      unsigned threads) {
  return PackedBitMatrix(m, resolve_plan(cfg, m.n_words), sides, threads);
}

namespace {

void expect_payload_aligned(const void* p, const char* what) {
  LDLA_EXPECT(reinterpret_cast<std::uintptr_t>(p) % 64 == 0, what);
}

}  // namespace

PackedBitMatrix PackedBitMatrix::from_external(ExternalPack ext) {
  LDLA_EXPECT(ext.plan.packing,
              "external pack requires a plan with packing enabled");
  LDLA_EXPECT(ext.plan.mr != 0 && ext.plan.nr != 0 && ext.plan.ku != 0 &&
                  ext.plan.kc_words != 0,
              "external pack requires a fully resolved plan");
  LDLA_EXPECT(ext.n_snps != 0 && ext.n_words != 0 && ext.n_samples != 0,
              "external pack must describe a non-empty matrix");
  LDLA_EXPECT(ext.a_data != nullptr, "external pack must carry an A payload");
  expect_payload_aligned(ext.a_data, "external A payload must be 64B aligned");

  PackedBitMatrix out;
  out.plan_ = ext.plan;
  out.n_snps_ = ext.n_snps;
  out.n_words_ = ext.n_words;
  out.n_samples_ = ext.n_samples;
  const std::size_t k_padded =
      (ext.n_words + ext.plan.ku - 1) / ext.plan.ku * ext.plan.ku;
  out.kc_ = ext.plan.kc_words < k_padded ? ext.plan.kc_words : k_padded;
  out.panels_ = (ext.n_words + out.kc_ - 1) / out.kc_;

  out.init_side_layout(out.a_, ext.plan.mr);
  out.a_.ptr = ext.a_data;
  if (ext.b_data != nullptr) {
    expect_payload_aligned(ext.b_data,
                           "external B payload must be 64B aligned");
    out.init_side_layout(out.b_, ext.plan.nr);
    out.b_.ptr = ext.b_data;
  } else {
    LDLA_EXPECT(ext.plan.nr == ext.plan.mr,
                "external pack without a B payload requires mr == nr");
    out.b_shares_a_ = true;
  }

  LDLA_EXPECT(ext.sparse.popcount.size() == ext.n_snps &&
                  ext.sparse.kind.size() == ext.n_snps,
              "external sparse metadata does not cover every column");
  LDLA_EXPECT(ext.sparse.offset.empty() ||
                  (ext.sparse.offset.size() == ext.n_snps + 1 &&
                   ext.sparse.offset.back() == ext.sparse.index.size()),
              "external sparse CSR offsets are inconsistent");
  out.sparse_ = std::move(ext.sparse);

  const auto check_flags = [](const std::vector<std::uint8_t>& v,
                              std::size_t slivers) {
    LDLA_EXPECT(v.empty() || v.size() == slivers,
                "external sliver-sparse flags do not match the sliver grid");
  };
  check_flags(ext.a_sliver_sparse, out.a_.slivers);
  check_flags(ext.b_sliver_sparse,
              out.b_shares_a_ ? out.a_.slivers : out.b_.slivers);
  out.a_sliver_sparse_ = std::move(ext.a_sliver_sparse);
  out.b_sliver_sparse_ = std::move(ext.b_sliver_sparse);
  const auto any = [](const std::vector<std::uint8_t>& v) {
    return std::find(v.begin(), v.end(), std::uint8_t{1}) != v.end();
  };
  out.hybrid_ = any(out.a_sliver_sparse_) || any(out.b_sliver_sparse_);

  if (ext.sample_major != nullptr) {
    expect_payload_aligned(ext.sample_major,
                           "external sample-major payload must be aligned");
    LDLA_EXPECT(ext.sm_stride == (ext.n_snps + 63) / 64,
                "external sample-major stride does not match the SNP count");
    LDLA_EXPECT(ext.scaled_index != nullptr || out.sparse_.index.empty(),
                "external pack with a transpose must carry prescaled lists");
    out.sm_stride_ = ext.sm_stride;
    out.sm_ptr_ = ext.sample_major;
    out.scaled_ptr_ = ext.scaled_index;
  }
  return out;
}

std::size_t PackedBitMatrix::init_side_layout(Side& side, std::size_t r) const {
  side.r = r;
  side.slivers = (n_snps_ + r - 1) / r;
  side.panel_offset.resize(panels_ + 1);
  std::size_t words = 0;
  for (std::size_t p = 0; p < panels_; ++p) {
    side.panel_offset[p] = words;
    words += side.slivers * r * panel_kc_padded(p);
  }
  side.panel_offset[panels_] = words;
  side.words = words;
  return words;
}

void PackedBitMatrix::pack_side(const BitMatrixView& m, Side& side,
                                std::size_t r, unsigned threads) {
  const std::size_t words = init_side_layout(side, r);
  side.data = AlignedBuffer<std::uint64_t>(words);
  side.ptr = side.data.data();
  const std::size_t team = std::max<std::size_t>(
      1, std::min<std::size_t>(threads, side.slivers));
  if (team <= 1) {
    LDLA_TRACE_SPAN_EXPR(r == plan_.mr ? trace::Phase::kPackA
                                       : trace::Phase::kPackB);
    for (std::size_t p = 0; p < panels_; ++p) {
      pack_panel(m, 0, n_snps_, panel_k_begin(p), panel_kc(p), r, plan_.ku,
                 side.data.data() + side.panel_offset[p]);
    }
    return;
  }
  // Team pack: each member owns a disjoint sliver range of every k panel.
  // pack_panel writes only its slivers' words and self-accounts the pack
  // counters, so the result (and the counter totals) are identical to the
  // sequential pack; one run_tasks barrier joins the side.
  const std::vector<Range> ranges = split_uniform(side.slivers, team);
  global_pool().run_tasks(ranges.size(), [&](std::size_t t) {
    LDLA_TRACE_SPAN_EXPR(r == plan_.mr ? trace::Phase::kPackA
                                       : trace::Phase::kPackB);
    const Range range = ranges[t];
    const std::size_t row_begin = range.begin * r;
    const std::size_t rows =
        std::min(range.size() * r, n_snps_ - row_begin);
    for (std::size_t p = 0; p < panels_; ++p) {
      const std::size_t kcp = panel_kc_padded(p);
      pack_panel(m, row_begin, rows, panel_k_begin(p), panel_kc(p), r,
                 plan_.ku,
                 side.data.data() + side.panel_offset[p] +
                     range.begin * r * kcp);
    }
  });
}

PackedPanelView PackedBitMatrix::side_panel(const Side& side, std::size_t p,
                                            std::size_t sliver_begin,
                                            std::size_t slivers) const {
  LDLA_BOUNDS_CHECK(p < panels_, "k panel index out of range");
  LDLA_BOUNDS_CHECK(sliver_begin <= side.slivers &&
                        slivers <= side.slivers - sliver_begin,
                    "packed sliver range out of range");
  const std::size_t kcp = panel_kc_padded(p);
  LDLA_TRACE_ADD_REUSE(static_cast<std::uint64_t>(slivers));
  return PackedPanelView{
      side.ptr + side.panel_offset[p] + sliver_begin * side.r * kcp,
      slivers, side.r, kcp};
}

PackedPanelView PackedBitMatrix::a_panel(std::size_t p,
                                         std::size_t sliver_begin,
                                         std::size_t slivers) const {
  LDLA_EXPECT(has_a_side(), "PackedBitMatrix was packed without an A side");
  return side_panel(a_, p, sliver_begin, slivers);
}

PackedPanelView PackedBitMatrix::b_panel(std::size_t p,
                                         std::size_t sliver_begin,
                                         std::size_t slivers) const {
  LDLA_EXPECT(has_b_side(), "PackedBitMatrix was packed without a B side");
  return side_panel(b_shares_a_ ? a_ : b_, p, sliver_begin, slivers);
}

BitMatrix unpack_packed(const PackedBitMatrix& p) {
  LDLA_EXPECT(p.has_a_side() || p.has_b_side(),
              "cannot unpack a PackedBitMatrix with no materialized side");
  BitMatrix m(p.snps(), p.samples());
  if (p.empty() || p.words_per_snp() == 0) return m;
  LDLA_EXPECT(m.words_per_snp() == p.words_per_snp(),
              "packed word count inconsistent with the sample count");
  const std::size_t ku = p.plan().ku;
  const bool use_a = p.has_a_side();
  const std::size_t r = use_a ? p.plan().mr : p.plan().nr;
  const std::size_t slivers = (p.snps() + r - 1) / r;
  for (std::size_t panel = 0; panel < p.panels(); ++panel) {
    const std::size_t k_begin = p.panel_k_begin(panel);
    const std::size_t kc = p.panel_kc(panel);
    const PackedPanelView v = use_a ? p.a_panel(panel, 0, slivers)
                                    : p.b_panel(panel, 0, slivers);
    for (std::size_t s = 0; s < slivers; ++s) {
      const std::uint64_t* sp = v.sliver(s);
      const std::size_t row_lo = s * r;
      const std::size_t rows = std::min(r, p.snps() - row_lo);
      // Sliver layout (kernel.hpp): within a ku chunk, row i's words sit at
      // sp[i*ku + kk]; each chunk advances sp by r*ku. Words past kc are
      // pack padding (zero) and are skipped rather than copied out.
      for (std::size_t chunk = 0; chunk * ku < kc; ++chunk) {
        for (std::size_t i = 0; i < rows; ++i) {
          std::uint64_t* dst = m.row_data(row_lo + i);
          for (std::size_t kk = 0; kk < ku; ++kk) {
            const std::size_t kidx = chunk * ku + kk;
            if (kidx < kc) {
              dst[k_begin + kidx] = sp[(chunk * r + i) * ku + kk];
            }
          }
        }
      }
    }
  }
  return m;
}

void expect_packed_matches(const PackedBitMatrix& p, const BitMatrixView& m) {
  LDLA_EXPECT(p.snps() == m.n_snps && p.words_per_snp() == m.n_words &&
                  p.samples() == m.n_samples,
              "packed operand shape does not match the bit matrix");
}

const PackedBitMatrix* resolve_packed(const BitMatrixView& m,
                                      const GemmConfig& cfg,
                                      const PackedBitMatrix* supplied,
                                      PackSides sides,
                                      std::optional<PackedBitMatrix>& own,
                                      unsigned threads) {
  if (supplied != nullptr) {
    expect_packed_matches(*supplied, m);
    return supplied;
  }
  if (!cfg.pack_once || m.n_snps == 0 || m.n_words == 0) return nullptr;
  const GemmPlan plan = resolve_plan(cfg, m.n_words);
  if (!plan.packing) return nullptr;
  own.emplace(m, plan, sides, threads);
  return &*own;
}

}  // namespace ldla
