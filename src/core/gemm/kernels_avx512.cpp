// AVX-512 VPOPCNTDQ micro-kernels, compiled with -mavx512f/bw/vpopcntdq.
//
// This is the "hardware support" arm of the paper's Section V-B: with a
// vectorized popcount instruction all three LD operations (AND, POPCNT,
// ADD) vectorize, restoring the v-fold speedup SIMD promises. All shapes
// instantiate the kernel_gen.hpp template: 8 words (512 bits) per packed
// chunk (16 for the u16 deep-unroll variant), one zmm accumulator per tile
// entry. The 4x4 default is the historical hand-written shape; 2x8 under
// kAvx512Wide is the tile-geometry ablation (fewer accumulators, wider B
// reuse per A load — the trade-off every GotoBLAS port settles
// empirically), and the remaining grid points feed the joint tuner.
#include <immintrin.h>

#include "core/gemm/kernel.hpp"
#include "core/gemm/kernel_gen.hpp"

namespace ldla::kernels {

namespace {
namespace gen = ldla::kernels::gen;

template <std::size_t MR, std::size_t NR, std::size_t CH = 1>
constexpr MicroKernelFn avx512_fn = &gen::ugemm_avx512<MR, NR, CH>;

const KernelInfo kTable[] = {
    {KernelArch::kAvx512, "avx512-vpopcntdq-4x4", 4, 4, 8, avx512_fn<4, 4>,
     true},
    {KernelArch::kAvx512, "avx512-vpopcntdq-4x8", 4, 8, 8, avx512_fn<4, 8>},
    {KernelArch::kAvx512, "avx512-vpopcntdq-8x4", 8, 4, 8, avx512_fn<8, 4>},
    {KernelArch::kAvx512, "avx512-vpopcntdq-1x8", 1, 8, 8, avx512_fn<1, 8>},
    {KernelArch::kAvx512, "avx512-vpopcntdq-4x4u16", 4, 4, 16,
     avx512_fn<4, 4, 2>},
    {KernelArch::kAvx512Wide, "avx512-vpopcntdq-2x8", 2, 8, 8,
     avx512_fn<2, 8>, true},
};

}  // namespace

std::span<const KernelInfo> avx512_variants() { return kTable; }

}  // namespace ldla::kernels
