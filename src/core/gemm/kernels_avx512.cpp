// AVX-512 VPOPCNTDQ micro-kernel, compiled with -mavx512f/bw/vpopcntdq.
//
// This is the "hardware support" arm of the paper's Section V-B: with a
// vectorized popcount instruction all three LD operations (AND, POPCNT, ADD)
// vectorize, restoring the v-fold speedup SIMD promises. 4x4 register tile,
// 8 words (512 bits) per packed chunk, 16 zmm accumulators.
#include <immintrin.h>

#include "core/gemm/kernel.hpp"

namespace ldla::kernels {

void avx512_4x4(std::size_t kc, const std::uint64_t* ap,
                const std::uint64_t* bp, std::uint32_t* c, std::size_t ldc) {
  __m512i c00 = _mm512_setzero_si512();
  __m512i c01 = _mm512_setzero_si512();
  __m512i c02 = _mm512_setzero_si512();
  __m512i c03 = _mm512_setzero_si512();
  __m512i c10 = _mm512_setzero_si512();
  __m512i c11 = _mm512_setzero_si512();
  __m512i c12 = _mm512_setzero_si512();
  __m512i c13 = _mm512_setzero_si512();
  __m512i c20 = _mm512_setzero_si512();
  __m512i c21 = _mm512_setzero_si512();
  __m512i c22 = _mm512_setzero_si512();
  __m512i c23 = _mm512_setzero_si512();
  __m512i c30 = _mm512_setzero_si512();
  __m512i c31 = _mm512_setzero_si512();
  __m512i c32 = _mm512_setzero_si512();
  __m512i c33 = _mm512_setzero_si512();

  const std::size_t chunks = kc / 8;
  for (std::size_t k = 0; k < chunks; ++k) {
    const __m512i a0 = _mm512_loadu_si512(ap);
    const __m512i a1 = _mm512_loadu_si512(ap + 8);
    const __m512i a2 = _mm512_loadu_si512(ap + 16);
    const __m512i a3 = _mm512_loadu_si512(ap + 24);
    ap += 32;
    const __m512i b0 = _mm512_loadu_si512(bp);
    const __m512i b1 = _mm512_loadu_si512(bp + 8);
    const __m512i b2 = _mm512_loadu_si512(bp + 16);
    const __m512i b3 = _mm512_loadu_si512(bp + 24);
    bp += 32;

    c00 = _mm512_add_epi64(c00, _mm512_popcnt_epi64(_mm512_and_si512(a0, b0)));
    c01 = _mm512_add_epi64(c01, _mm512_popcnt_epi64(_mm512_and_si512(a0, b1)));
    c02 = _mm512_add_epi64(c02, _mm512_popcnt_epi64(_mm512_and_si512(a0, b2)));
    c03 = _mm512_add_epi64(c03, _mm512_popcnt_epi64(_mm512_and_si512(a0, b3)));
    c10 = _mm512_add_epi64(c10, _mm512_popcnt_epi64(_mm512_and_si512(a1, b0)));
    c11 = _mm512_add_epi64(c11, _mm512_popcnt_epi64(_mm512_and_si512(a1, b1)));
    c12 = _mm512_add_epi64(c12, _mm512_popcnt_epi64(_mm512_and_si512(a1, b2)));
    c13 = _mm512_add_epi64(c13, _mm512_popcnt_epi64(_mm512_and_si512(a1, b3)));
    c20 = _mm512_add_epi64(c20, _mm512_popcnt_epi64(_mm512_and_si512(a2, b0)));
    c21 = _mm512_add_epi64(c21, _mm512_popcnt_epi64(_mm512_and_si512(a2, b1)));
    c22 = _mm512_add_epi64(c22, _mm512_popcnt_epi64(_mm512_and_si512(a2, b2)));
    c23 = _mm512_add_epi64(c23, _mm512_popcnt_epi64(_mm512_and_si512(a2, b3)));
    c30 = _mm512_add_epi64(c30, _mm512_popcnt_epi64(_mm512_and_si512(a3, b0)));
    c31 = _mm512_add_epi64(c31, _mm512_popcnt_epi64(_mm512_and_si512(a3, b1)));
    c32 = _mm512_add_epi64(c32, _mm512_popcnt_epi64(_mm512_and_si512(a3, b2)));
    c33 = _mm512_add_epi64(c33, _mm512_popcnt_epi64(_mm512_and_si512(a3, b3)));
  }

  c[0 * ldc + 0] += static_cast<std::uint32_t>(_mm512_reduce_add_epi64(c00));
  c[0 * ldc + 1] += static_cast<std::uint32_t>(_mm512_reduce_add_epi64(c01));
  c[0 * ldc + 2] += static_cast<std::uint32_t>(_mm512_reduce_add_epi64(c02));
  c[0 * ldc + 3] += static_cast<std::uint32_t>(_mm512_reduce_add_epi64(c03));
  c[1 * ldc + 0] += static_cast<std::uint32_t>(_mm512_reduce_add_epi64(c10));
  c[1 * ldc + 1] += static_cast<std::uint32_t>(_mm512_reduce_add_epi64(c11));
  c[1 * ldc + 2] += static_cast<std::uint32_t>(_mm512_reduce_add_epi64(c12));
  c[1 * ldc + 3] += static_cast<std::uint32_t>(_mm512_reduce_add_epi64(c13));
  c[2 * ldc + 0] += static_cast<std::uint32_t>(_mm512_reduce_add_epi64(c20));
  c[2 * ldc + 1] += static_cast<std::uint32_t>(_mm512_reduce_add_epi64(c21));
  c[2 * ldc + 2] += static_cast<std::uint32_t>(_mm512_reduce_add_epi64(c22));
  c[2 * ldc + 3] += static_cast<std::uint32_t>(_mm512_reduce_add_epi64(c23));
  c[3 * ldc + 0] += static_cast<std::uint32_t>(_mm512_reduce_add_epi64(c30));
  c[3 * ldc + 1] += static_cast<std::uint32_t>(_mm512_reduce_add_epi64(c31));
  c[3 * ldc + 2] += static_cast<std::uint32_t>(_mm512_reduce_add_epi64(c32));
  c[3 * ldc + 3] += static_cast<std::uint32_t>(_mm512_reduce_add_epi64(c33));
}

}  // namespace ldla::kernels

// Alternative register-tile geometry: 2x8. Fewer accumulators (16 zmm) but
// wider B reuse per A load — the tile-shape trade-off every GotoBLAS port
// must settle empirically (bench_blocking_ablation prints both).
namespace ldla::kernels {

void avx512_2x8(std::size_t kc, const std::uint64_t* ap,
                const std::uint64_t* bp, std::uint32_t* c, std::size_t ldc) {
  __m512i acc[2][8];
  for (auto& row : acc) {
    for (auto& v : row) v = _mm512_setzero_si512();
  }

  const std::size_t chunks = kc / 8;
  for (std::size_t k = 0; k < chunks; ++k) {
    const __m512i a0 = _mm512_loadu_si512(ap);
    const __m512i a1 = _mm512_loadu_si512(ap + 8);
    ap += 16;
    for (int j = 0; j < 8; ++j) {
      const __m512i b = _mm512_loadu_si512(bp + 8 * j);
      acc[0][j] = _mm512_add_epi64(acc[0][j],
                                   _mm512_popcnt_epi64(_mm512_and_si512(a0, b)));
      acc[1][j] = _mm512_add_epi64(acc[1][j],
                                   _mm512_popcnt_epi64(_mm512_and_si512(a1, b)));
    }
    bp += 64;
  }

  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      c[i * ldc + j] +=
          static_cast<std::uint32_t>(_mm512_reduce_add_epi64(acc[i][j]));
    }
  }
}

}  // namespace ldla::kernels
