#include "core/gemm/packing.hpp"

#include <algorithm>
#include <cstring>

#include "util/contract.hpp"
#include "util/trace.hpp"

namespace ldla {

std::size_t packed_panel_words(std::size_t rows, std::size_t kc, std::size_t r,
                               std::size_t ku) {
  const std::size_t slivers = (rows + r - 1) / r;
  const std::size_t kc_padded = (kc + ku - 1) / ku * ku;
  return slivers * r * kc_padded;
}

void pack_panel(const BitMatrixView& m, std::size_t row_begin,
                std::size_t rows, std::size_t k_begin, std::size_t kc,
                std::size_t r, std::size_t ku, std::uint64_t* out) {
  LDLA_EXPECT(r > 0 && ku > 0, "register blocking must be positive");
  LDLA_EXPECT(row_begin <= m.n_snps, "row range starts past the matrix");
  LDLA_EXPECT(k_begin <= m.n_words, "k range starts past the row payload");
  LDLA_ASSERT_ALIGNED(out, 8);

  const std::size_t slivers = (rows + r - 1) / r;
  const std::size_t kc_padded = (kc + ku - 1) / ku * ku;
  const std::size_t k_avail = std::min(kc, m.n_words - k_begin);

  // Every packing path (persistent pack_side and the fresh-pack drivers)
  // funnels through here, making this the sliver/byte accounting choke point.
  LDLA_TRACE_ADD_PACK(static_cast<std::uint64_t>(slivers),
                      static_cast<std::uint64_t>(slivers * r * kc_padded * 8));

  for (std::size_t s = 0; s < slivers; ++s) {
    std::uint64_t* dst = out + s * r * kc_padded;
    const std::size_t sliver_row = row_begin + s * r;
    // Layout within a sliver: k-chunk major, then row, then the ku words of
    // that row's chunk — i.e. dst[(kchunk * r + i) * ku + kk].
    for (std::size_t kchunk = 0; kchunk < kc_padded / ku; ++kchunk) {
      for (std::size_t i = 0; i < r; ++i) {
        const std::size_t row = sliver_row + i;
        std::uint64_t* cell = dst + (kchunk * r + i) * ku;
        if (row >= row_begin + rows || row >= m.n_snps) {
          std::memset(cell, 0, ku * sizeof(std::uint64_t));
          continue;
        }
        const std::uint64_t* src = m.row(row) + k_begin + kchunk * ku;
        const std::size_t k0 = kchunk * ku;
        if (k0 + ku <= k_avail) {
          std::memcpy(cell, src, ku * sizeof(std::uint64_t));
        } else {
          const std::size_t have = k_avail > k0 ? k_avail - k0 : 0;
          if (have > 0) std::memcpy(cell, src, have * sizeof(std::uint64_t));
          std::memset(cell + have, 0, (ku - have) * sizeof(std::uint64_t));
        }
      }
    }
  }
}

PackedPanelView pack_panel_view(const BitMatrixView& m, std::size_t row_begin,
                                std::size_t rows, std::size_t k_begin,
                                std::size_t kc, std::size_t r, std::size_t ku,
                                std::uint64_t* out) {
  LDLA_ASSERT_ALIGNED(out, 64);
  pack_panel(m, row_begin, rows, k_begin, kc, r, ku, out);
  const std::size_t kc_padded = (kc + ku - 1) / ku * ku;
  return PackedPanelView{out, (rows + r - 1) / r, r, kc_padded};
}

}  // namespace ldla
