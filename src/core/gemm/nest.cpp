#include "core/gemm/nest.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "core/gemm/fused_tile.hpp"
#include "core/gemm/kernel.hpp"
#include "core/gemm/syrk.hpp"
#include "util/aligned_buffer.hpp"
#include "util/contract.hpp"
#include "util/partition.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"
#include "util/work_steal.hpp"

namespace ldla {

namespace {

/// One unit of stealable work: an mc-aligned row block crossed with a
/// q-column slice of one jc panel. Boundaries are register-tile aligned
/// (c0/c1 absolute multiples of nr or the padded range end; ic/ic_end the
/// same for mr/mc), so chunks compose the identical register-tile grid the
/// sequential fused drivers sweep. The MAF-adaptive sparse dispatch lives
/// inside the shared fused tile bodies, so sparse macro-tile chunks
/// schedule on these same deques with no extra chunk kinds: a stolen chunk
/// decides list-vs-dense per register tile exactly like the sequential
/// nest would, and dispatch depends only on the (sliver, sliver) pair —
/// never on chunk geometry — keeping counters chunking-invariant.
struct TileChunk {
  std::size_t ic = 0;
  std::size_t ic_end = 0;
  std::size_t c0 = 0;
  std::size_t c1 = 0;
};

/// Column quantum for chunking a jc panel: wide enough to amortize the
/// deque traffic and keep B slivers streaming, narrow enough that every
/// panel yields ~8 chunks per team member to steal from. Always a multiple
/// of nr so chunk boundaries stay on the packed sliver grid.
std::size_t chunk_quantum(std::size_t total_cols, std::size_t nr,
                          std::size_t nc, std::size_t team) {
  const std::size_t target =
      total_cols / std::max<std::size_t>(1, team * 8);
  std::size_t q = std::max(nr, (target + nr - 1) / nr * nr);
  q = std::min(q, std::min(nc, (total_cols + nr - 1) / nr * nr));
  return std::max<std::size_t>(q, nr);
}

/// Drain the team's chunk deques from member `t`'s seat: LIFO-pop the own
/// block (ascending chunk order — the seed pushed it reversed), then sweep
/// the other members FIFO-stealing from the far end of their blocks until a
/// full pass over every deque finds nothing left. Chunks are never
/// re-enqueued, so an all-empty sweep is a sound termination proof.
template <typename RunChunk>
void drain_chunks(std::deque<WorkStealDeque<std::int64_t>>& deques,
                  std::size_t t, const RunChunk& run) {
  std::int64_t idx = 0;
  while (deques[t].pop(idx)) {
    run(idx);
  }
  const std::size_t team = deques.size();
  for (;;) {
    for (std::size_t s = 1; s < team; ++s) {
      WorkStealDeque<std::int64_t>& victim = deques[(t + s) % team];
      while (!victim.empty_hint()) {
        if (victim.steal(idx)) {
          LDLA_TRACE_ADD_STEAL();
          run(idx);
        } else {
          // Lost the CAS race (or the owner drained it under us): someone
          // else made progress, so spinning here cannot livelock.
          LDLA_TRACE_ADD_FAILED_STEAL();
        }
      }
    }
    bool all_empty = true;
    for (std::size_t s = 1; s < team && all_empty; ++s) {
      all_empty = deques[(t + s) % team].empty_hint();
    }
    if (all_empty) break;
  }
}

/// Seed per-member deques with contiguous blocks of [0, chunks) and run the
/// team on global_pool(). Blocks are pushed in reverse so the owner pops in
/// ascending order (jc-major locality) while thieves bite off the far end.
template <typename RunChunk>
void run_chunk_team(std::size_t chunks, std::size_t team,
                    const RunChunk& make_run) {
  const std::vector<Range> blocks = split_uniform(chunks, team);
  std::size_t max_block = 0;
  for (const Range& r : blocks) max_block = std::max(max_block, r.size());
  std::deque<WorkStealDeque<std::int64_t>> deques;
  for (std::size_t t = 0; t < blocks.size(); ++t) {
    deques.emplace_back(max_block);
    for (std::size_t i = blocks[t].end; i > blocks[t].begin; --i) {
      deques.back().push(static_cast<std::int64_t>(i - 1));
    }
  }
  // The pre-launch pushes happen-before every task body: run_tasks
  // publishes through the pool's own release/acquire deque+cv protocol.
  global_pool().run_tasks(blocks.size(), [&](std::size_t t) {
    make_run(t, [&](const auto& run) { drain_chunks(deques, t, run); });
  });
}

}  // namespace

void gemm_count_parallel_nest(const PackedBitMatrix& a, std::size_t a_begin,
                              std::size_t a_end, const PackedBitMatrix& b,
                              std::size_t b_begin, std::size_t b_end,
                              const CountTileSink& sink, unsigned threads) {
  LDLA_EXPECT(a_begin <= a_end && a_end <= a.snps(),
              "A row range out of range");
  LDLA_EXPECT(b_begin <= b_end && b_end <= b.snps(),
              "B row range out of range");
  LDLA_EXPECT(sink != nullptr, "fused driver needs a tile sink");
  if (a_begin == a_end || b_begin == b_end) return;
  LDLA_EXPECT(a.has_a_side(), "A operand was packed without an A side");
  LDLA_EXPECT(b.has_b_side(), "B operand was packed without a B side");
  const GemmPlan& plan = a.plan();
  const GemmPlan& bplan = b.plan();
  LDLA_EXPECT(plan.arch == bplan.arch && plan.mr == bplan.mr &&
                  plan.nr == bplan.nr && plan.ku == bplan.ku &&
                  a.kc_words() == b.kc_words() &&
                  a.words_per_snp() == b.words_per_snp(),
              "packed operands were built for incompatible plans");

  if (threads == 0) threads = default_thread_count();

  const KernelInfo& kern = kernel_for_plan(plan);
  const std::size_t mr = plan.mr;
  const std::size_t nr = plan.nr;
  const std::size_t mc = plan.mc;
  const std::size_t nc = plan.nc;

  const std::size_t ic0 = a_begin / mr * mr;
  const std::size_t jc0 = b_begin / nr * nr;
  const std::size_t a_pad_end = (a_end + mr - 1) / mr * mr;
  const std::size_t b_pad_end = (b_end + nr - 1) / nr * nr;

  const std::size_t q =
      chunk_quantum(b_pad_end - jc0, nr, nc, std::max(1u, threads));
  std::vector<TileChunk> chunks;
  for (std::size_t jc = jc0; jc < b_end; jc += nc) {
    const std::size_t jc_end = std::min(jc + nc, b_pad_end);
    for (std::size_t ic = ic0; ic < a_end; ic += mc) {
      const std::size_t ic_end = std::min(ic + mc, a_pad_end);
      for (std::size_t c0 = jc; c0 < jc_end; c0 += q) {
        chunks.push_back(
            TileChunk{ic, ic_end, c0, std::min(c0 + q, jc_end)});
      }
    }
  }

  const std::size_t team =
      std::min<std::size_t>(std::max(1u, threads), chunks.size());
  if (team <= 1) {
    gemm_count_fused(a, a_begin, a_end, b, b_begin, b_end, sink);
    return;
  }

  const std::size_t scratch_rows = std::min(mc, a_pad_end - ic0);
  run_chunk_team(chunks.size(), team, [&](std::size_t, const auto& drain) {
    AlignedBuffer<std::uint32_t> scratch(scratch_rows * q);
    drain([&](std::int64_t idx) {
      const TileChunk& ch = chunks[static_cast<std::size_t>(idx)];
      detail::fused_gemm_tile(a, b, kern, mr, nr, ch.ic, ch.ic_end, ch.c0,
                              ch.c1, a_begin, a_end, b_begin, b_end,
                              scratch.data(), q, sink);
    });
  });
}

void syrk_count_parallel_nest(const PackedBitMatrix& a, std::size_t row_begin,
                              std::size_t row_end, const CountTileSink& sink,
                              unsigned threads) {
  LDLA_EXPECT(row_begin <= row_end && row_end <= a.snps(),
              "row range out of range");
  LDLA_EXPECT(sink != nullptr, "fused driver needs a tile sink");
  if (row_begin == row_end) return;
  LDLA_EXPECT(a.has_a_side() && a.has_b_side(),
              "symmetric driver needs both operand sides packed");

  if (threads == 0) threads = default_thread_count();

  const GemmPlan& plan = a.plan();
  const KernelInfo& kern = kernel_for_plan(plan);
  const std::size_t mr = plan.mr;
  const std::size_t nr = plan.nr;
  const std::size_t mc = plan.mc;
  const std::size_t nc = plan.nc;

  const std::size_t ic0 = row_begin / mr * mr;
  const std::size_t jc0 = row_begin / nr * nr;
  const std::size_t i_pad_end = (row_end + mr - 1) / mr * mr;
  const std::size_t j_pad_end = (row_end + nr - 1) / nr * nr;

  const std::size_t q =
      chunk_quantum(j_pad_end - jc0, nr, nc, std::max(1u, threads));
  std::vector<TileChunk> chunks;
  for (std::size_t jc = jc0; jc < row_end; jc += nc) {
    const std::size_t jc_end = std::min(jc + nc, j_pad_end);
    std::size_t ic_start = ic0;
    if (jc > ic0) ic_start = ic0 + (jc - ic0) / mc * mc;
    for (std::size_t ic = ic_start; ic < row_end; ic += mc) {
      const std::size_t ic_end = std::min(ic + mc, i_pad_end);
      for (std::size_t c0 = jc; c0 < jc_end; c0 += q) {
        // A chunk wholly above the diagonal band holds only register tiles
        // the SYRK body would skip (ir + mr <= ic_end <= c0 <= jr): drop it
        // here so the triangle saving survives the finer chunk grid.
        if (ic_end <= c0) continue;
        chunks.push_back(
            TileChunk{ic, ic_end, c0, std::min(c0 + q, jc_end)});
      }
    }
  }

  const std::size_t team =
      std::min<std::size_t>(std::max(1u, threads), chunks.size());
  if (team <= 1) {
    syrk_count_fused(a, row_begin, row_end, sink);
    return;
  }

  const std::size_t scratch_rows = std::min(mc, i_pad_end - ic0);
  run_chunk_team(chunks.size(), team, [&](std::size_t, const auto& drain) {
    AlignedBuffer<std::uint32_t> scratch(scratch_rows * q);
    drain([&](std::int64_t idx) {
      const TileChunk& ch = chunks[static_cast<std::size_t>(idx)];
      detail::fused_syrk_tile(a, kern, mr, nr, ch.ic, ch.ic_end, ch.c0,
                              ch.c1, row_begin, row_end, scratch.data(), q,
                              sink);
    });
  });
}

}  // namespace ldla
