// The paper's LD micro-kernel: scalar 64-bit POPCNT, 4x4 register tile.
//
// Per k step: 4 A words and 4 B words are loaded, and all 16 (AND, POPCNT,
// ADD) triples issue — the instruction mix whose theoretical peak is 3 ops
// per cycle (Section IV-B). Accumulators live in registers for the whole
// kc panel.
#include "core/gemm/kernel.hpp"

namespace ldla::kernels {

void scalar_4x4(std::size_t kc, const std::uint64_t* ap,
                const std::uint64_t* bp, std::uint32_t* c, std::size_t ldc) {
  std::uint32_t c00 = 0, c01 = 0, c02 = 0, c03 = 0;
  std::uint32_t c10 = 0, c11 = 0, c12 = 0, c13 = 0;
  std::uint32_t c20 = 0, c21 = 0, c22 = 0, c23 = 0;
  std::uint32_t c30 = 0, c31 = 0, c32 = 0, c33 = 0;

  for (std::size_t k = 0; k < kc; ++k) {
    const std::uint64_t a0 = ap[0];
    const std::uint64_t a1 = ap[1];
    const std::uint64_t a2 = ap[2];
    const std::uint64_t a3 = ap[3];
    ap += 4;
    const std::uint64_t b0 = bp[0];
    const std::uint64_t b1 = bp[1];
    const std::uint64_t b2 = bp[2];
    const std::uint64_t b3 = bp[3];
    bp += 4;

    c00 += static_cast<std::uint32_t>(__builtin_popcountll(a0 & b0));
    c01 += static_cast<std::uint32_t>(__builtin_popcountll(a0 & b1));
    c02 += static_cast<std::uint32_t>(__builtin_popcountll(a0 & b2));
    c03 += static_cast<std::uint32_t>(__builtin_popcountll(a0 & b3));
    c10 += static_cast<std::uint32_t>(__builtin_popcountll(a1 & b0));
    c11 += static_cast<std::uint32_t>(__builtin_popcountll(a1 & b1));
    c12 += static_cast<std::uint32_t>(__builtin_popcountll(a1 & b2));
    c13 += static_cast<std::uint32_t>(__builtin_popcountll(a1 & b3));
    c20 += static_cast<std::uint32_t>(__builtin_popcountll(a2 & b0));
    c21 += static_cast<std::uint32_t>(__builtin_popcountll(a2 & b1));
    c22 += static_cast<std::uint32_t>(__builtin_popcountll(a2 & b2));
    c23 += static_cast<std::uint32_t>(__builtin_popcountll(a2 & b3));
    c30 += static_cast<std::uint32_t>(__builtin_popcountll(a3 & b0));
    c31 += static_cast<std::uint32_t>(__builtin_popcountll(a3 & b1));
    c32 += static_cast<std::uint32_t>(__builtin_popcountll(a3 & b2));
    c33 += static_cast<std::uint32_t>(__builtin_popcountll(a3 & b3));
  }

  c[0 * ldc + 0] += c00;
  c[0 * ldc + 1] += c01;
  c[0 * ldc + 2] += c02;
  c[0 * ldc + 3] += c03;
  c[1 * ldc + 0] += c10;
  c[1 * ldc + 1] += c11;
  c[1 * ldc + 2] += c12;
  c[1 * ldc + 3] += c13;
  c[2 * ldc + 0] += c20;
  c[2 * ldc + 1] += c21;
  c[2 * ldc + 2] += c22;
  c[2 * ldc + 3] += c23;
  c[3 * ldc + 0] += c30;
  c[3 * ldc + 1] += c31;
  c[3 * ldc + 2] += c32;
  c[3 * ldc + 3] += c33;
}

}  // namespace ldla::kernels
