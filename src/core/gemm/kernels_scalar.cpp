// The paper's LD micro-kernel family: scalar 64-bit POPCNT.
//
// Per k step, mr A words and nr B words are loaded and all mr*nr (AND,
// POPCNT, ADD) triples issue — the instruction mix whose theoretical peak
// is 3 ops per cycle (Section IV-B). Accumulators live in registers for
// the whole kc panel. The 4x4 default is the shape the paper analyzes;
// the other grid points exist for the joint kernel×blocking tuner, and
// the ku=4 variant deepens the manifest unroll without changing the
// accumulator set.
//
// This TU is compiled with -fno-tree-vectorize so GCC cannot silently turn
// the scalar loop into VPOPCNTDQ and fake the Section V comparison.
#include "core/gemm/kernel.hpp"
#include "core/gemm/kernel_gen.hpp"

namespace ldla::kernels {

namespace {
namespace gen = ldla::kernels::gen;

template <std::size_t MR, std::size_t NR, std::size_t KU = 1>
constexpr MicroKernelFn scalar_fn =
    &gen::ugemm_word<MR, NR, KU, gen::PopHardware>;

const KernelInfo kTable[] = {
    {KernelArch::kScalar, "scalar-popcnt-4x4", 4, 4, 1, scalar_fn<4, 4>, true},
    {KernelArch::kScalar, "scalar-popcnt-2x8", 2, 8, 1, scalar_fn<2, 8>},
    {KernelArch::kScalar, "scalar-popcnt-8x4", 8, 4, 1, scalar_fn<8, 4>},
    {KernelArch::kScalar, "scalar-popcnt-4x4u4", 4, 4, 4, scalar_fn<4, 4, 4>},
};

}  // namespace

std::span<const KernelInfo> scalar_variants() { return kTable; }

}  // namespace ldla::kernels
