#include "core/gemm/sparse.hpp"

#include <bit>
#include <span>

#include "core/popcount.hpp"
#include "util/contract.hpp"

namespace ldla {
namespace {

/// Append the indices of the set bits of `w` (offset by `base`) to `out`,
/// ascending — clearing the lowest set bit walks the word in order.
void extract_set_bits(std::uint64_t w, std::uint32_t base,
                      std::vector<std::uint32_t>& out) {
  while (w != 0) {
    out.push_back(base + static_cast<std::uint32_t>(std::countr_zero(w)));
    w &= w - 1;
  }
}

}  // namespace

SparseColumns build_sparse_columns(const BitMatrixView& m,
                                   std::size_t threshold) {
  SparseColumns sc;
  sc.threshold = threshold;
  sc.n_samples = m.n_samples;
  const std::size_t n = m.n_snps;
  sc.popcount.resize(n);
  sc.kind.assign(n, ColumnKind::kDense);
  sc.offset.assign(n + 1, 0);
  if (n == 0 || m.n_words == 0) {
    return sc;
  }
  // Resolve the backend once — per-row kAuto re-resolution was measurable
  // across the million-row packs the shard ingester feeds through here.
  const PopcountMethod pm = resolve_popcount_method();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t* row = m.row(i);
    const std::uint64_t pc =
        popcount_words(std::span<const std::uint64_t>(row, m.n_words), pm);
    LDLA_EXPECT(pc <= m.n_samples,
                "column popcount exceeds n_samples (dirty row padding?)");
    sc.popcount[i] = static_cast<std::uint32_t>(pc);
    if (threshold != 0) {
      if (pc <= threshold) {
        sc.kind[i] = ColumnKind::kList;
      } else if (m.n_samples - pc <= threshold) {
        sc.kind[i] = ColumnKind::kComplement;
      }
    }
    if (sc.kind[i] != ColumnKind::kDense) {
      ++sc.sparse_count;
      const bool comp = sc.kind[i] == ColumnKind::kComplement;
      for (std::size_t w = 0; w < m.n_words; ++w) {
        std::uint64_t bits = comp ? ~row[w] : row[w];
        if (comp) {
          const std::size_t remaining = m.n_samples - w * 64;
          if (remaining < 64) {
            bits &= (std::uint64_t{1} << remaining) - 1;
          }
        }
        extract_set_bits(bits, static_cast<std::uint32_t>(w * 64), sc.index);
      }
    }
    sc.offset[i + 1] = sc.index.size();
  }
  return sc;
}

}  // namespace ldla
