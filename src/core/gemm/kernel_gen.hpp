// Micro-kernel generator: one C++ template family per SIMD body, each
// instantiated over an (mr, nr, ku) grid by the kernels_*.cpp translation
// units ("Automating the Last-Mile for High Performance Dense Linear
// Algebra" — generate the register-tile family, select empirically).
//
// Every instantiation computes the same register tile
//
//     C[i][j] += sum_{k < kc} POPCNT(Ap[k][i] & Bp[k][j])
//
// over the packed sliver layout of core/gemm/kernel.hpp: within one
// k-chunk, row i's ku words sit at ap[i*ku + kk], and a chunk advances the
// panel pointers by mr*ku (A) / nr*ku (B) words. MR/NR/unroll are template
// parameters, so the compiler fully unrolls the tile body and keeps the
// MR×NR accumulators in registers — exactly what the hand-written kernels
// did, minus the hand-writing.
//
// Grid constraints (checked again at registry construction in dispatch.cpp):
//   * mr, nr must divide 64 — the sparse transpose gather (PR 7,
//     sparse_kernel.hpp) pre-shifts a register tile's d0 within one word
//     and relies on tiles never straddling a word boundary;
//   * mr * nr <= 256 — the drivers' edge-tile scratch is uint32_t[16*16];
//   * ku is the packing interleave: kc is always a multiple of ku.
//
// SIMD bodies are guarded by compiler predefines (__AVX2__ / __AVX512*__),
// not LDLA_HAVE_*_TU: this header is included from TUs compiled with
// per-file -m flags, and the predefine is exactly "this TU may emit that
// ISA". Intrinsics confinement: this header is on the lint allowlist and
// is only included from the kernel TUs.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

#include "core/popcount.hpp"

namespace ldla::kernels::gen {

// ---------------------------------------------------------------------------
// Word-at-a-time bodies (scalar POPCNT / SWAR), ku = unroll depth.
// ---------------------------------------------------------------------------

/// Popcount policy for the word-at-a-time template: the scalar POPCNT
/// instruction (the paper's kernel)...
struct PopHardware {
  static std::uint32_t count(std::uint64_t w) {
    return static_cast<std::uint32_t>(__builtin_popcountll(w));
  }
};

/// ...or the branch-free SWAR fallback for machines without one.
struct PopSwar {
  static std::uint32_t count(std::uint64_t w) {
    return static_cast<std::uint32_t>(popcount_u64_swar(w));
  }
};

/// Scalar MR×NR micro-kernel, KU-deep k-unroll. KU > 1 only changes the
/// packed interleave granularity and the manifest unroll depth — the
/// accumulator set is identical — so it is purely a scheduling knob for
/// the tuner.
template <std::size_t MR, std::size_t NR, std::size_t KU, class Pop>
void ugemm_word(std::size_t kc, const std::uint64_t* ap,
                const std::uint64_t* bp, std::uint32_t* c, std::size_t ldc) {
  std::uint32_t acc[MR][NR] = {};
  const std::size_t chunks = kc / KU;
  for (std::size_t ch = 0; ch < chunks; ++ch) {
    for (std::size_t kk = 0; kk < KU; ++kk) {
      std::uint64_t a[MR];
      for (std::size_t i = 0; i < MR; ++i) a[i] = ap[i * KU + kk];
      for (std::size_t j = 0; j < NR; ++j) {
        const std::uint64_t b = bp[j * KU + kk];
        for (std::size_t i = 0; i < MR; ++i) {
          acc[i][j] += Pop::count(a[i] & b);
        }
      }
    }
    ap += MR * KU;
    bp += NR * KU;
  }
  for (std::size_t i = 0; i < MR; ++i) {
    for (std::size_t j = 0; j < NR; ++j) c[i * ldc + j] += acc[i][j];
  }
}

// ---------------------------------------------------------------------------
// AVX2 bodies
// ---------------------------------------------------------------------------
#if defined(__AVX2__)

namespace detail2 {

inline __m256i popcount_epi64_pshufb(__m256i v) {
  const __m256i lookup = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                      _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

inline std::uint32_t hsum_epi64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return static_cast<std::uint32_t>(_mm_cvtsi128_si64(s) +
                                    _mm_extract_epi64(s, 1));
}

/// Carry-save adder: (hi, lo) such that a + b + cin = 2*hi + lo, bitwise.
inline void csa(__m256i& hi, __m256i& lo, __m256i a, __m256i b, __m256i cin) {
  const __m256i u = _mm256_xor_si256(a, b);
  hi = _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, cin));
  lo = _mm256_xor_si256(u, cin);
}

}  // namespace detail2

/// AVX2 PSHUFB micro-kernel: AND in SIMD, nibble-lookup popcount, SAD
/// reduction — the best software SIMD pre-VPOPCNT. ku = 4*CHUNKS: each
/// k-chunk is CHUNKS 256-bit vectors per row (CHUNKS > 1 deepens the
/// unroll so more independent popcount chains are in flight).
template <std::size_t MR, std::size_t NR, std::size_t CHUNKS>
void ugemm_avx2_pshufb(std::size_t kc, const std::uint64_t* ap,
                       const std::uint64_t* bp, std::uint32_t* c,
                       std::size_t ldc) {
  constexpr std::size_t kKu = 4 * CHUNKS;
  __m256i acc[MR][NR];
  for (auto& row : acc) {
    for (auto& v : row) v = _mm256_setzero_si256();
  }
  const std::size_t chunks = kc / kKu;
  for (std::size_t k = 0; k < chunks; ++k) {
    __m256i a[MR][CHUNKS];
    for (std::size_t i = 0; i < MR; ++i) {
      for (std::size_t h = 0; h < CHUNKS; ++h) {
        a[i][h] = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(ap + i * kKu + 4 * h));
      }
    }
    ap += MR * kKu;
    for (std::size_t j = 0; j < NR; ++j) {
      for (std::size_t h = 0; h < CHUNKS; ++h) {
        const __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(bp + j * kKu + 4 * h));
        for (std::size_t i = 0; i < MR; ++i) {
          acc[i][j] = _mm256_add_epi64(
              acc[i][j],
              detail2::popcount_epi64_pshufb(_mm256_and_si256(a[i][h], b)));
        }
      }
    }
    bp += NR * kKu;
  }
  for (std::size_t i = 0; i < MR; ++i) {
    for (std::size_t j = 0; j < NR; ++j) {
      c[i * ldc + j] += detail2::hsum_epi64(acc[i][j]);
    }
  }
}

/// AVX2 Harley–Seal micro-kernel, ku = 16 (4 vectors per row per chunk).
/// Each accumulator stream keeps a 2-deep carry-save counter (ones, twos):
/// per chunk the four AND results compress through three CSAs and only the
/// weight-4 carry is PSHUFB-popcounted — one nibble lookup per 4 vectors
/// where the plain PSHUFB kernel pays 4, at the cost of 3 register-resident
/// counters per stream. Small tiles only: MR*NR <= 8 keeps the counter set
/// within the 16 ymm registers.
template <std::size_t MR, std::size_t NR>
void ugemm_avx2_harley_seal(std::size_t kc, const std::uint64_t* ap,
                            const std::uint64_t* bp, std::uint32_t* c,
                            std::size_t ldc) {
  static_assert(MR * NR <= 8, "Harley-Seal counters exceed the register file");
  constexpr std::size_t kKu = 16;
  __m256i ones[MR][NR];
  __m256i twos[MR][NR];
  __m256i acc[MR][NR];
  for (std::size_t i = 0; i < MR; ++i) {
    for (std::size_t j = 0; j < NR; ++j) {
      ones[i][j] = _mm256_setzero_si256();
      twos[i][j] = _mm256_setzero_si256();
      acc[i][j] = _mm256_setzero_si256();
    }
  }
  const std::size_t chunks = kc / kKu;
  for (std::size_t k = 0; k < chunks; ++k) {
    for (std::size_t i = 0; i < MR; ++i) {
      const __m256i a0 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(ap + i * kKu));
      const __m256i a1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(ap + i * kKu + 4));
      const __m256i a2 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(ap + i * kKu + 8));
      const __m256i a3 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(ap + i * kKu + 12));
      for (std::size_t j = 0; j < NR; ++j) {
        const __m256i v0 = _mm256_and_si256(
            a0, _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(bp + j * kKu)));
        const __m256i v1 = _mm256_and_si256(
            a1, _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(bp + j * kKu + 4)));
        const __m256i v2 = _mm256_and_si256(
            a2, _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(bp + j * kKu + 8)));
        const __m256i v3 = _mm256_and_si256(
            a3, _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(bp + j * kKu + 12)));
        __m256i twos_a;
        __m256i twos_b;
        __m256i fours;
        detail2::csa(twos_a, ones[i][j], v0, v1, ones[i][j]);
        detail2::csa(twos_b, ones[i][j], v2, v3, ones[i][j]);
        detail2::csa(fours, twos[i][j], twos_a, twos_b, twos[i][j]);
        acc[i][j] = _mm256_add_epi64(acc[i][j],
                                     detail2::popcount_epi64_pshufb(fours));
      }
    }
    ap += MR * kKu;
    bp += NR * kKu;
  }
  for (std::size_t i = 0; i < MR; ++i) {
    for (std::size_t j = 0; j < NR; ++j) {
      const std::uint32_t total =
          4 * detail2::hsum_epi64(acc[i][j]) +
          2 * detail2::hsum_epi64(detail2::popcount_epi64_pshufb(twos[i][j])) +
          detail2::hsum_epi64(detail2::popcount_epi64_pshufb(ones[i][j]));
      c[i * ldc + j] += total;
    }
  }
}

#endif  // __AVX2__

// ---------------------------------------------------------------------------
// AVX-512 VPOPCNTDQ body
// ---------------------------------------------------------------------------
#if defined(__AVX512F__) && defined(__AVX512VPOPCNTDQ__)

/// AVX-512 VPOPCNTDQ micro-kernel — the "hardware support" arm of Section
/// V-B: all three LD ops vectorize. ku = 8*CHUNKS (CHUNKS 512-bit vectors
/// per row per k-chunk).
template <std::size_t MR, std::size_t NR, std::size_t CHUNKS>
void ugemm_avx512(std::size_t kc, const std::uint64_t* ap,
                  const std::uint64_t* bp, std::uint32_t* c,
                  std::size_t ldc) {
  constexpr std::size_t kKu = 8 * CHUNKS;
  __m512i acc[MR][NR];
  for (auto& row : acc) {
    for (auto& v : row) v = _mm512_setzero_si512();
  }
  const std::size_t chunks = kc / kKu;
  for (std::size_t k = 0; k < chunks; ++k) {
    __m512i a[MR][CHUNKS];
    for (std::size_t i = 0; i < MR; ++i) {
      for (std::size_t h = 0; h < CHUNKS; ++h) {
        a[i][h] = _mm512_loadu_si512(ap + i * kKu + 8 * h);
      }
    }
    ap += MR * kKu;
    for (std::size_t j = 0; j < NR; ++j) {
      for (std::size_t h = 0; h < CHUNKS; ++h) {
        const __m512i b = _mm512_loadu_si512(bp + j * kKu + 8 * h);
        for (std::size_t i = 0; i < MR; ++i) {
          acc[i][j] = _mm512_add_epi64(
              acc[i][j], _mm512_popcnt_epi64(_mm512_and_si512(a[i][h], b)));
        }
      }
    }
    bp += NR * kKu;
  }
  for (std::size_t i = 0; i < MR; ++i) {
    for (std::size_t j = 0; j < NR; ++j) {
      c[i * ldc + j] +=
          static_cast<std::uint32_t>(_mm512_reduce_add_epi64(acc[i][j]));
    }
  }
}

#endif  // __AVX512F__ && __AVX512VPOPCNTDQ__

}  // namespace ldla::kernels::gen
