// Kernel variant registry and CPUID-based dispatch.
//
// The kernels_*.cpp translation units each export the slice of the
// generated (mr, nr, ku) grid they compiled; this TU concatenates them
// into the registry, validates the geometry invariants the rest of the
// system relies on, and answers every lookup (family default, exact plan
// geometry, name, availability) from that single table — adding a variant
// is one line in its TU's table.
#include "core/gemm/kernel.hpp"

#include <string>

#include "util/contract.hpp"
#include "util/cpu_info.hpp"
#include "util/metrics.hpp"

namespace ldla {

namespace {

/// One CPU-feature predicate per family — the only other fact a variant
/// needs beyond its table row.
bool family_runs_here(KernelArch arch) {
  const CpuFeatures& f = cpu_info().features;
  switch (arch) {
    case KernelArch::kAuto:
    case KernelArch::kSwar:
      return true;
    case KernelArch::kScalar:
      return f.popcnt;
    case KernelArch::kStrawman:
    case KernelArch::kAvx2:
      return f.avx2;
    case KernelArch::kAvx512:
    case KernelArch::kAvx512Wide:
      return f.avx512f && f.avx512bw && f.avx512vpopcntdq;
  }
  return false;
}

std::vector<KernelInfo> build_registry() {
  std::vector<KernelInfo> reg;
  const auto append = [&reg](std::span<const KernelInfo> table) {
    reg.insert(reg.end(), table.begin(), table.end());
  };
  append(kernels::scalar_variants());
  append(kernels::swar_variants());
#if LDLA_HAVE_AVX2_TU
  append(kernels::avx2_variants());
#endif
#if LDLA_HAVE_AVX512_TU
  append(kernels::avx512_variants());
#endif

  for (std::size_t v = 0; v < reg.size(); ++v) {
    const KernelInfo& k = reg[v];
    // The sparse transpose gather pre-shifts a tile's base column within
    // one 64-bit word, so register tiles must never straddle a word; the
    // drivers' edge-tile scratch is uint32_t[16*16].
    LDLA_EXPECT(k.mr != 0 && 64 % k.mr == 0,
                "kernel registry: mr must divide 64");
    LDLA_EXPECT(k.nr != 0 && 64 % k.nr == 0,
                "kernel registry: nr must divide 64");
    LDLA_EXPECT(k.mr * k.nr <= 256,
                "kernel registry: tile exceeds the drivers' edge scratch");
    LDLA_EXPECT(k.ku != 0 && k.fn != nullptr && k.name[0] != '\0',
                "kernel registry: incomplete variant row");
    for (std::size_t w = 0; w < v; ++w) {
      // (arch, mr, nr, ku) is the variant's identity — a GemmPlan (or an
      // LDLASH01 header) must name exactly one kernel — and names key the
      // tuning cache.
      LDLA_EXPECT(reg[w].arch != k.arch || reg[w].mr != k.mr ||
                      reg[w].nr != k.nr || reg[w].ku != k.ku,
                  "kernel registry: duplicate (arch, mr, nr, ku) identity");
      LDLA_EXPECT(std::string_view(reg[w].name) != k.name,
                  "kernel registry: duplicate variant name");
    }
  }
  return reg;
}

}  // namespace

std::span<const KernelInfo> kernel_registry() {
  static const std::vector<KernelInfo> reg = build_registry();
  return reg;
}

std::vector<const KernelInfo*> available_kernel_variants() {
  std::vector<const KernelInfo*> out;
  for (const KernelInfo& k : kernel_registry()) {
    if (family_runs_here(k.arch)) out.push_back(&k);
  }
  return out;
}

bool kernel_available(KernelArch a) {
  if (a == KernelArch::kAuto) return true;
  if (!family_runs_here(a)) return false;
  for (const KernelInfo& k : kernel_registry()) {
    if (k.arch == a) return true;
  }
  return false;
}

const KernelInfo* find_kernel(KernelArch arch, std::size_t mr, std::size_t nr,
                              std::size_t ku) {
  for (const KernelInfo& k : kernel_registry()) {
    if (k.arch == arch && k.mr == mr && k.nr == nr && k.ku == ku) return &k;
  }
  return nullptr;
}

const KernelInfo* find_kernel(std::string_view name) {
  for (const KernelInfo& k : kernel_registry()) {
    if (name == k.name) return &k;
  }
  return nullptr;
}

const KernelInfo& kernel_info(KernelArch arch) {
  LDLA_EXPECT(arch != KernelArch::kAuto,
              "resolve kAuto via resolve_plan before kernel lookup");
  LDLA_EXPECT(kernel_available(arch), "kernel unavailable on this CPU/build");
  for (const KernelInfo& k : kernel_registry()) {
    if (k.arch == arch && k.family_default) return k;
  }
  throw ContractViolation("kernel family has no default variant registered");
}

const KernelInfo& kernel_for_plan(const GemmPlan& plan) {
  LDLA_EXPECT(kernel_available(plan.arch),
              "plan names a kernel family this CPU/build cannot run");
  const KernelInfo* k = find_kernel(plan.arch, plan.mr, plan.nr, plan.ku);
  if (k == nullptr) {
    throw ContractViolation(
        "plan names a register-tile geometry (" + kernel_arch_name(plan.arch) +
        " " + std::to_string(plan.mr) + "x" + std::to_string(plan.nr) + "u" +
        std::to_string(plan.ku) +
        ") this build never compiled; re-resolve the plan");
  }
  // The variant actually dispatched, for server dashboards; variant names
  // are static literals, so the info gauge stores the pointer directly.
  LDLA_METRICS_ONLY(metrics::info("ldla_kernel_variant", "variant",
                                  "micro-kernel variant dispatched by "
                                  "kernel_for_plan")
                        .set(k->name));
  return *k;
}

}  // namespace ldla
