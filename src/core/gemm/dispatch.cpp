// Micro-kernel registry and CPUID-based dispatch.
#include "core/gemm/kernel.hpp"

#include "util/contract.hpp"

namespace ldla {

const KernelInfo& kernel_info(KernelArch arch) {
  static const KernelInfo scalar{KernelArch::kScalar, "scalar-popcnt-4x4",
                                 4, 4, 1, &kernels::scalar_4x4};
  static const KernelInfo swar{KernelArch::kSwar, "swar-4x4", 4, 4, 1,
                               &kernels::swar_4x4};
#if LDLA_HAVE_AVX2_TU
  static const KernelInfo avx2{KernelArch::kAvx2, "avx2-pshufb-2x4", 2, 4, 4,
                               &kernels::avx2_2x4};
  static const KernelInfo strawman{KernelArch::kStrawman,
                                   "simd-extract-strawman-2x4", 2, 4, 4,
                                   &kernels::strawman_2x4};
#endif
#if LDLA_HAVE_AVX512_TU
  static const KernelInfo avx512{KernelArch::kAvx512, "avx512-vpopcntdq-4x4",
                                 4, 4, 8, &kernels::avx512_4x4};
  static const KernelInfo avx512_wide{KernelArch::kAvx512Wide,
                                      "avx512-vpopcntdq-2x8", 2, 8, 8,
                                      &kernels::avx512_2x8};
#endif

  LDLA_EXPECT(arch != KernelArch::kAuto,
              "resolve kAuto via resolve_plan before kernel lookup");
  LDLA_EXPECT(kernel_available(arch), "kernel unavailable on this CPU/build");
  switch (arch) {
    case KernelArch::kScalar: return scalar;
    case KernelArch::kSwar: return swar;
#if LDLA_HAVE_AVX2_TU
    case KernelArch::kAvx2: return avx2;
    case KernelArch::kStrawman: return strawman;
#endif
#if LDLA_HAVE_AVX512_TU
    case KernelArch::kAvx512: return avx512;
    case KernelArch::kAvx512Wide: return avx512_wide;
#endif
    default: break;
  }
  throw ContractViolation("no kernel registered for architecture");
}

}  // namespace ldla
