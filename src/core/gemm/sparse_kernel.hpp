// List×list and list×dense count kernels for sparse-classified columns.
//
// Both kernels produce the exact integer |Ai ∧ Bj| the dense micro-kernels
// compute, just by a cheaper route: counts are sums of {0,1} indicators, so
// any evaluation order — merge of two sorted lists, gather over one list,
// or the dense AND+POPCNT panel walk — yields bit-identical results, and
// the fused D/D′/r² epilogue downstream never knows which kernel ran.
//
// Complement algebra (n = samples, pi/pj = recorded popcounts, `inter` the
// raw intersection of the two STORED lists):
//   list, list : |Ai∧Bj| = inter
//   list, comp : |Ai∧Bj| = pi − inter          (inter = |Ai ∧ ¬Bj|)
//   comp, list : |Ai∧Bj| = pj − inter          (inter = |¬Ai ∧ Bj|)
//   comp, comp : |Ai∧Bj| = pi + pj + inter − n (inter = |¬Ai ∧ ¬Bj|)
// All quantities are exact and non-negative; the identities are plain
// inclusion–exclusion and rely only on the clean-padding invariant (bits
// beyond n_samples are zero, enforced when the lists were built).
//
// These kernels are deliberately portable scalar code: the gather's work
// per entry is ONE word load from the pack's sample-major transpose — the
// word holding that sample's bits for all nr opposing rows at once — plus
// a shift/mask/add per row, with no loop-carried dependency beyond the
// accumulators, so it runs at load-issue throughput on any core. SIMD buys
// little and would drag this header into the intrinsics-confinement set.
// Gathering from the ku-interleaved slivers instead would cost nr strided
// loads spanning nr cache lines per entry; the sorted-merge intersection
// is kept as the reference implementation (and the oracle the unit tests
// cross-check), but the tile dispatcher always prefers the gather because
// the merge's two-pointer advance is a loop-carried dependency that costs
// ~5 cycles per element against the gather's ~1.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "core/gemm/packed_bit_matrix.hpp"
#include "core/gemm/sparse.hpp"
#include "util/contract.hpp"

namespace ldla::detail {

/// Work done by the sparse dispatch inside one fused tile; the tile bodies
/// fold these into the trace counters under the kernel span.
struct SparseTileCounters {
  std::uint64_t ll_tiles = 0;       ///< list×list register tiles
  std::uint64_t ld_tiles = 0;       ///< list×dense register tiles
  std::uint64_t intersections = 0;  ///< row-pair intersections computed
};

/// Sorted-list intersection size (branch-light two-pointer merge).
inline std::uint32_t list_intersect_count(const std::uint32_t* a,
                                          std::size_t na,
                                          const std::uint32_t* b,
                                          std::size_t nb) {
  std::uint32_t hits = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < na && j < nb) {
    const std::uint32_t x = a[i];
    const std::uint32_t y = b[j];
    hits += static_cast<std::uint32_t>(x == y);
    i += static_cast<std::size_t>(x <= y);
    j += static_cast<std::size_t>(y <= x);
  }
  return hits;
}

/// The complement-algebra table above, as code.
inline std::uint32_t sparse_corrected_count(ColumnKind ki, ColumnKind kj,
                                            std::uint32_t pi, std::uint32_t pj,
                                            std::uint32_t n,
                                            std::uint32_t inter) {
  if (ki == ColumnKind::kList) {
    return kj == ColumnKind::kList ? inter : pi - inter;
  }
  return kj == ColumnKind::kList ? pj - inter : pi + pj + inter - n;
}

/// Gather-accumulate one row's list entries against DR opposing rows via
/// the sample-major transpose: `col` points at the word column holding the
/// DR rows' bits (pre-shifted by `shift` within the word), `stride` is
/// words per sample row. One load per entry serves all DR rows, and the
/// per-entry update is SWAR, not a per-row loop: spreading the DR gathered
/// bits into 16-bit lanes of a 64-bit accumulator costs one multiply and
/// one mask regardless of DR (two for DR > 4), where per-row shift+mask+
/// adds cost ~3 µops each. The spread multiplier puts bit t at lane
/// boundary 16t (2^0 + 2^15 + 2^30 + 2^45): partial products land at
/// t + 15s, which collides only when t − t′ = 15(s′ − s), impossible for
/// t < 4, so no carries cross lanes before the mask. Lanes saturate at
/// 2^16 − 1 entries; the outer chunk loop re-drains every 2^15 so
/// arbitrarily long lists (large thresholds) stay exact.
///
/// Prescaled: when true, entries are pack-time pre-multiplied word offsets
/// (sample × stride) and the load is col[*e] directly. The distinction is
/// the gather's critical path, not its µop count: each address is
/// entry-load → scale → word-load, and with the runtime multiply on that
/// chain every miss resolves ~3 cycles later, which at the limited
/// miss-level parallelism of a pointer-chase costs ~1.8× wall time (the
/// value-side spread multiply is off the chain and free). The tile
/// dispatcher uses prescaled lists whenever the list side's own transpose
/// stride matches the dense side's — always, for same-matrix SYRK — and
/// falls back to the runtime scale for cross-matrix pairs of unequal
/// stride.
template <std::size_t DR, bool Prescaled>
inline void gather_entries(const std::uint32_t* lo, const std::uint32_t* hi,
                           const std::uint64_t* col, std::size_t stride,
                           unsigned shift, std::uint32_t* acc_s) {
  static_assert(DR <= 8, "register tiles gather at most 8 opposing rows");
  constexpr std::uint64_t kSpread = 0x0000200040008001ull;
  constexpr std::uint64_t kLanes = 0x0001000100010001ull;
  std::uint32_t total[DR] = {};
  while (lo != hi) {
    const std::uint32_t* stop = hi - lo > 0x8000 ? lo + 0x8000 : hi;
    std::uint64_t lanes_lo = 0;
    std::uint64_t lanes_hi = 0;
    for (const std::uint32_t* e = lo; e != stop; ++e) {
      const std::uint64_t v =
          (Prescaled ? col[*e] : col[*e * stride]) >> shift;
      lanes_lo += ((v & 0xFu) * kSpread) & kLanes;
      if constexpr (DR > 4) {
        lanes_hi += (((v >> 4) & 0xFu) * kSpread) & kLanes;
      }
    }
    for (std::size_t t = 0; t < DR; ++t) {
      const std::uint64_t lanes = t < 4 ? lanes_lo : lanes_hi;
      total[t] += static_cast<std::uint32_t>((lanes >> ((t & 3) * 16)) &
                                             0xFFFFu);
    }
    lo = stop;
  }
  // Assign, not accumulate: the caller's scratch slot is written exactly
  // once per (s, t), so the accumulator block needs no zero-init pass.
  for (std::size_t t = 0; t < DR; ++t) acc_s[t] = total[t];
}

/// Compute one register tile — rows [i0, i0+mr) × cols [j0, j0+nr) in
/// global indices of `a`/`b` — where at least one side's sliver group is
/// all-sparse, writing finished counts into the zeroed scratch block `c`
/// (ldc-strided). Only real rows are written; padding entries stay zero,
/// which is also what the dense micro-kernel produces for packed zero
/// rows, so the emitted CountTile is bit-identical either way. `a` and `b`
/// may be the same pack (SYRK) or different packs sharing a plan (cross).
inline void sparse_register_tile(const PackedBitMatrix& a,
                                 const PackedBitMatrix& b, bool a_sparse,
                                 bool b_sparse, std::size_t i0, std::size_t j0,
                                 std::size_t mr, std::size_t nr,
                                 std::uint32_t* c, std::size_t ldc,
                                 SparseTileCounters& tc) {
  const SparseColumns& sa = a.sparse_columns();
  const SparseColumns& sb = b.sparse_columns();
  const std::size_t rows = std::min(mr, a.snps() - i0);
  const std::size_t cols = std::min(nr, b.snps() - j0);

  // Both paths below gather-test list entries of ONE side against the
  // other pack's sample-major transpose. A per-pair sorted merge touches
  // na + nb entries through a loop-carried two-pointer dependency (~5
  // cycles/step, latency-bound); the gather walks only the list side's na
  // entries with fully independent iterations AND covers ALL opposing rows
  // per entry, so it is strictly cheaper — list×list tiles differ from
  // mixed tiles only in getting to CHOOSE the cheaper gather orientation.
  // Orientation: when both sides are sparse, gather the B (j) side's lists
  // against the A side's transpose column. The tile bodies enumerate the
  // sparse pass jr-outer / ir-inner, so the j sliver's list — and the
  // handful of transpose cache lines its samples touch — stays resident
  // across the whole ir sweep, while the A-side word column advances only
  // once every 64/mr tiles. Choosing by list size instead (the smaller
  // side) saves a few entries per tile but makes every tile's gather a
  // cold scatter into the transpose, which costs far more than it saves.
  bool sparse_is_a;
  if (a_sparse && b_sparse) {
    ++tc.ll_tiles;
    sparse_is_a = false;
  } else {
    ++tc.ld_tiles;
    sparse_is_a = a_sparse;
  }

  // Gather-test every list entry of the chosen side's rows against the
  // other pack's sample-major transpose: each entry is one word load whose
  // low bits (after the d0 shift) are that sample's states for ALL the
  // tile's dense-side rows. d0 is mr/nr-aligned and mr, nr ∈ {2, 4, 8}
  // divide 64, so the rows' bits never straddle a word. `acc` holds the
  // raw intersections |stored-list ∧ dense-row| until the complement
  // correction at the end.
  const SparseColumns& ss = sparse_is_a ? sa : sb;
  const SparseColumns& sd = sparse_is_a ? sb : sa;
  const std::size_t s0 = sparse_is_a ? i0 : j0;
  const std::size_t d0 = sparse_is_a ? j0 : i0;
  const std::size_t s_rows = sparse_is_a ? rows : cols;
  const std::size_t d_rows = sparse_is_a ? cols : rows;
  // Uninitialized on purpose: every (s, t) slot is assigned by exactly one
  // gather_entries call below before the correction loop reads it.
  std::array<std::uint32_t, 64> acc;
  LDLA_BOUNDS_CHECK(s_rows * d_rows <= acc.size(),
                    "register tile exceeds sparse accumulator capacity");
  const PackedBitMatrix& dpk = sparse_is_a ? b : a;
  const PackedBitMatrix& lpk = sparse_is_a ? a : b;
  // The tile bodies only route pairs here when the dense side's pack built
  // its transpose (sparse_pair_ok in fused_tile.hpp).
  LDLA_ASSERT(dpk.has_sample_major());
  const std::size_t stride = dpk.sample_major_stride();
  const std::uint64_t* col = dpk.sample_major() + (d0 >> 6);
  const unsigned shift = static_cast<unsigned>(d0 & 63u);
  // The list side's prescaled entries were scaled by ITS pack's transpose
  // stride; they address the dense side's transpose only when the strides
  // agree (trivially true for same-matrix SYRK, and for cross-matrix packs
  // of equal SNP count).
  const std::uint32_t* scaled =
      lpk.sample_major_stride() == stride ? lpk.scaled_index() : nullptr;
  const auto gather_all = [&](auto prescaled, const std::uint32_t* entries) {
    constexpr bool P = decltype(prescaled)::value;
    for (std::size_t s = 0; s < s_rows; ++s) {
      const std::uint32_t* lo = entries + ss.offset[s0 + s];
      const std::uint32_t* hi = entries + ss.offset[s0 + s + 1];
      std::uint32_t* const acc_s = &acc[s * d_rows];
      // Registered kernels use nr/mr in {2, 4, 8}; the other widths only
      // occur on the ragged last sliver.
      switch (d_rows) {
        case 8: gather_entries<8, P>(lo, hi, col, stride, shift, acc_s); break;
        case 4: gather_entries<4, P>(lo, hi, col, stride, shift, acc_s); break;
        case 2: gather_entries<2, P>(lo, hi, col, stride, shift, acc_s); break;
        case 1: gather_entries<1, P>(lo, hi, col, stride, shift, acc_s); break;
        case 3: gather_entries<3, P>(lo, hi, col, stride, shift, acc_s); break;
        case 5: gather_entries<5, P>(lo, hi, col, stride, shift, acc_s); break;
        case 6: gather_entries<6, P>(lo, hi, col, stride, shift, acc_s); break;
        case 7: gather_entries<7, P>(lo, hi, col, stride, shift, acc_s); break;
        default:
          LDLA_BOUNDS_CHECK(false, "d_rows is min(mr|nr, remainder) <= 8");
          break;
      }
    }
  };
  if (scaled != nullptr) {
    gather_all(std::true_type{}, scaled);
  } else {
    gather_all(std::false_type{}, ss.index.data());
  }
  tc.intersections += static_cast<std::uint64_t>(s_rows) * d_rows;
  for (std::size_t s = 0; s < s_rows; ++s) {
    const ColumnKind ks = ss.kind[s0 + s];
    for (std::size_t t = 0; t < d_rows; ++t) {
      const std::uint32_t inter = acc[s * d_rows + t];
      // kList: the gather already counted |As ∧ Dd|. kComplement: it
      // counted |¬As ∧ Dd|, so subtract from the dense side's popcount.
      const std::uint32_t cnt =
          ks == ColumnKind::kList ? inter : sd.popcount[d0 + t] - inter;
      if (sparse_is_a) {
        c[s * ldc + t] = cnt;
      } else {
        c[t * ldc + s] = cnt;
      }
    }
  }
}

}  // namespace ldla::detail
