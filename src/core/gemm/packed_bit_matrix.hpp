// Persistent packed operand: the whole SNP matrix pre-packed once into the
// micro-panel layout the kernels consume, keyed to a GemmPlan.
//
// The GotoBLAS drivers amortize packing inside ONE call: gemm_count re-packs
// every A row block per (jc, pc) panel, syrk_count packs the same rows twice
// (once per operand side), the banded/decay drivers re-pack overlapping
// column stripes on every slab, and the parallel driver duplicates the B
// panel per worker. For the paper's rank-k genomic shapes and for windowed
// workloads (decay profiles, omega scans, haplotype blocks) those packs
// repeat over the *same matrix*, so PackedBitMatrix moves them out of the
// call: pack once per dataset, then every driver reads immutable slivers.
//
// Layout: the k dimension is split into the plan's kc-word panels. Within a
// panel every sliver (group of r rows, r = mr for the A side, nr for the B
// side) is stored contiguously in exactly the pack_panel layout, so a
// PackedPanelView over any contiguous sliver range aliases the persistent
// buffer with zero copying. When mr == nr one copy serves both operand
// sides. Memory cost: ceil(n_snps/r)*r * ceil(k/ku)*ku words per side
// (~ the bit matrix itself per side).
//
// Storage can be owned (packed here from a BitMatrixView) or adopted from
// caller-managed memory via from_external(): the shard store (io/
// shard_store.hpp) persists exactly this layout on disk and memory-maps it
// back, so a mapped shard is consumed by every packed/fused/nest driver
// with zero copy. The large payloads (slivers, sample-major transpose,
// prescaled index lists) alias the external memory; the small sparse
// metadata (CSR offsets, kinds, popcounts, sliver flags) is copied in.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/bit_matrix.hpp"
#include "core/gemm/config.hpp"
#include "core/gemm/packing.hpp"
#include "core/gemm/sparse.hpp"
#include "util/aligned_buffer.hpp"
#include "util/contract.hpp"

namespace ldla {

/// Which operand sides to materialize. Same-matrix drivers need both (and
/// share storage when mr == nr); cross-matrix drivers pack A-only / B-only.
enum class PackSides { kBoth, kA, kB };

/// Descriptor for adopting an externally materialized pack (the mmap'd
/// shard store). Payload pointers must be 64-byte aligned, immutable, and
/// outlive the PackedBitMatrix; metadata members are moved in. A null
/// b_data with mr == nr shares the A payload between both operand sides.
struct ExternalPack {
  GemmPlan plan;
  std::size_t n_snps = 0;
  std::size_t n_words = 0;
  std::size_t n_samples = 0;
  const std::uint64_t* a_data = nullptr;
  const std::uint64_t* b_data = nullptr;
  SparseColumns sparse;
  std::vector<std::uint8_t> a_sliver_sparse;
  std::vector<std::uint8_t> b_sliver_sparse;
  const std::uint64_t* sample_major = nullptr;  ///< null = transpose absent
  std::size_t sm_stride = 0;
  const std::uint32_t* scaled_index = nullptr;  ///< null = transpose absent
};

class PackedBitMatrix {
 public:
  PackedBitMatrix() = default;

  /// Pack all rows of `m` for `plan`. The plan must have packing enabled
  /// (the unpacked ablation has no packed representation by definition).
  /// `threads` > 1 packs each side as a parallel team on global_pool():
  /// every worker packs a disjoint sliver range of every k panel, joined by
  /// one barrier per side; the result is byte-identical to a sequential
  /// pack and the pack counters stay exact (pack_panel self-accounts).
  PackedBitMatrix(const BitMatrixView& m, const GemmPlan& plan,
                  PackSides sides = PackSides::kBoth, unsigned threads = 1);

  /// Resolve `cfg` against the machine and pack (convenience).
  static PackedBitMatrix pack(const BitMatrixView& m,
                              const GemmConfig& cfg = {},
                              PackSides sides = PackSides::kBoth,
                              unsigned threads = 1);

  /// Adopt a pack whose payloads live in caller-managed memory (see
  /// ExternalPack). Byte-for-byte the layout an owning pack of the same
  /// matrix and plan would hold, so the drivers cannot tell the difference.
  /// Contract-checks plan resolution, payload alignment, and that the
  /// metadata sizes are consistent with the plan-implied sliver geometry.
  static PackedBitMatrix from_external(ExternalPack ext);

  PackedBitMatrix(PackedBitMatrix&&) noexcept = default;
  PackedBitMatrix& operator=(PackedBitMatrix&&) noexcept = default;
  PackedBitMatrix(const PackedBitMatrix&) = delete;
  PackedBitMatrix& operator=(const PackedBitMatrix&) = delete;

  [[nodiscard]] bool empty() const noexcept { return n_snps_ == 0; }
  [[nodiscard]] std::size_t snps() const noexcept { return n_snps_; }
  [[nodiscard]] std::size_t words_per_snp() const noexcept { return n_words_; }
  [[nodiscard]] std::size_t samples() const noexcept { return n_samples_; }
  [[nodiscard]] const GemmPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] bool has_a_side() const noexcept { return a_.r != 0; }
  [[nodiscard]] bool has_b_side() const noexcept {
    return b_shares_a_ || b_.r != 0;
  }

  /// Effective kc in words (the plan's kc clamped to the padded k extent);
  /// panel p covers source words [p*kc, min((p+1)*kc, k)).
  [[nodiscard]] std::size_t kc_words() const noexcept { return kc_; }
  [[nodiscard]] std::size_t panels() const noexcept { return panels_; }
  [[nodiscard]] std::size_t panel_k_begin(std::size_t p) const {
    LDLA_BOUNDS_CHECK(p < panels_, "k panel index out of range");
    return p * kc_;
  }
  [[nodiscard]] std::size_t panel_kc(std::size_t p) const {
    LDLA_BOUNDS_CHECK(p < panels_, "k panel index out of range");
    const std::size_t begin = p * kc_;
    return n_words_ - begin < kc_ ? n_words_ - begin : kc_;
  }
  [[nodiscard]] std::size_t panel_kc_padded(std::size_t p) const {
    const std::size_t ku = plan_.ku;
    return (panel_kc(p) + ku - 1) / ku * ku;
  }

  /// Total words held across both sides (memory footprint; external
  /// payloads count the words they alias).
  [[nodiscard]] std::size_t packed_words() const noexcept {
    return a_.words + b_.words;
  }

  // Raw payload access for the shard-store writer (io/shard_store.cpp):
  // the serialized sections are exactly these spans. b_data() is null when
  // the B side shares A's storage or was not materialized.
  [[nodiscard]] const std::uint64_t* a_data() const noexcept { return a_.ptr; }
  [[nodiscard]] std::size_t a_data_words() const noexcept { return a_.words; }
  [[nodiscard]] const std::uint64_t* b_data() const noexcept { return b_.ptr; }
  [[nodiscard]] std::size_t b_data_words() const noexcept { return b_.words; }
  [[nodiscard]] const std::vector<std::uint8_t>& a_sliver_flags()
      const noexcept {
    return a_sliver_sparse_;
  }
  [[nodiscard]] const std::vector<std::uint8_t>& b_sliver_flags()
      const noexcept {
    return b_sliver_sparse_;
  }

  /// View of `slivers` consecutive A-side (r = mr) groups of k-panel `p`,
  /// starting at group `sliver_begin` (rows [sliver_begin*mr, ...)).
  [[nodiscard]] PackedPanelView a_panel(std::size_t p, std::size_t sliver_begin,
                                        std::size_t slivers) const;

  /// Same for the B side (r = nr). Shares A-side storage when mr == nr.
  [[nodiscard]] PackedPanelView b_panel(std::size_t p, std::size_t sliver_begin,
                                        std::size_t slivers) const;

  /// Per-column popcounts (always recorded) plus the sorted index lists the
  /// plan's sparse_threshold classified at pack time (DESIGN.md §4.6).
  [[nodiscard]] const SparseColumns& sparse_columns() const noexcept {
    return sparse_;
  }

  /// True when any sliver on any materialized side is all-sparse — the
  /// fused tile bodies take the hybrid dispatch path iff this holds, so
  /// fully dense packs keep the exact original kernel loop.
  [[nodiscard]] bool hybrid_dispatch() const noexcept { return hybrid_; }

  /// A sliver group is "sparse" when every real row in it is list- or
  /// complement-classified; register tiles whose sides are both sparse (or
  /// one sparse, one dense) dispatch to the list kernels. Padding rows in
  /// the last group are all-zero and never consulted, so a partial group
  /// is classified by its real rows alone. Returns false for sliver grids
  /// the pack did not materialize or when the threshold is 0.
  [[nodiscard]] bool a_sliver_sparse(std::size_t s) const noexcept {
    return s < a_sliver_sparse_.size() && a_sliver_sparse_[s] != 0;
  }
  [[nodiscard]] bool b_sliver_sparse(std::size_t s) const noexcept {
    const std::vector<std::uint8_t>& v =
        b_shares_a_ ? a_sliver_sparse_ : b_sliver_sparse_;
    return s < v.size() && v[s] != 0;
  }

  /// Sample-major transpose of the source matrix — one row per sample,
  /// ceil(snps/64) words per row — built at pack time whenever any column
  /// classified sparse. The list kernels gather against it: one word load
  /// per list entry tests that sample against ALL nr rows of a register
  /// tile at once, where the ku-interleaved slivers would cost nr strided
  /// loads spanning nr cache lines. Fully dense packs never build it
  /// (stride 0), so the dense path pays nothing.
  [[nodiscard]] bool has_sample_major() const noexcept {
    return sm_stride_ != 0;
  }
  [[nodiscard]] const std::uint64_t* sample_major() const noexcept {
    return sm_ptr_;
  }
  /// Words per sample-major row (0 when the transpose was not built).
  [[nodiscard]] std::size_t sample_major_stride() const noexcept {
    return sm_stride_;
  }

  /// The sparse columns' index lists with every entry pre-multiplied by
  /// sample_major_stride() (same CSR offsets as sparse_columns().offset).
  /// The gather's critical path is entry-load → scale → word-load; baking
  /// the scale in at pack time takes the multiply latency off every
  /// address. Valid against THIS pack's transpose stride only — the tile
  /// dispatcher falls back to the unscaled lists for cross-matrix partners
  /// of a different stride. Null when the transpose was not built.
  [[nodiscard]] const std::uint32_t* scaled_index() const noexcept {
    return scaled_ptr_;
  }

 private:
  struct Side {
    std::size_t r = 0;        ///< register blocking (0 = side not packed)
    std::size_t slivers = 0;  ///< ceil(n_snps / r)
    std::vector<std::size_t> panel_offset;  ///< word offset of each k panel
    AlignedBuffer<std::uint64_t> data;      ///< empty for external payloads
    const std::uint64_t* ptr = nullptr;     ///< payload (owned or external)
    std::size_t words = 0;                  ///< payload extent in words
  };

  void pack_side(const BitMatrixView& m, Side& side, std::size_t r,
                 unsigned threads);
  /// Fill the plan-implied sliver/panel geometry of a side; returns the
  /// total payload words (identical for owned and external storage).
  std::size_t init_side_layout(Side& side, std::size_t r) const;
  void build_sample_major(const BitMatrixView& m);
  [[nodiscard]] std::vector<std::uint8_t> sliver_flags(std::size_t r) const;
  [[nodiscard]] PackedPanelView side_panel(const Side& side, std::size_t p,
                                           std::size_t sliver_begin,
                                           std::size_t slivers) const;

  GemmPlan plan_;
  std::size_t n_snps_ = 0;
  std::size_t n_words_ = 0;
  std::size_t n_samples_ = 0;
  std::size_t kc_ = 0;
  std::size_t panels_ = 0;
  bool b_shares_a_ = false;
  Side a_;
  Side b_;
  SparseColumns sparse_;
  std::vector<std::uint8_t> a_sliver_sparse_;  ///< mr-grid, empty when none
  std::vector<std::uint8_t> b_sliver_sparse_;  ///< nr-grid (A's when shared)
  bool hybrid_ = false;
  AlignedBuffer<std::uint64_t> sample_major_;  ///< samples × sm_stride_ words
  std::size_t sm_stride_ = 0;                  ///< 0 = transpose not built
  AlignedBuffer<std::uint32_t> scaled_index_;  ///< index × sm_stride_
  const std::uint64_t* sm_ptr_ = nullptr;      ///< transpose (owned/external)
  const std::uint32_t* scaled_ptr_ = nullptr;  ///< prescaled lists (ditto)
};

/// Reconstruct the row-major bit matrix from a pack's slivers — the exact
/// inverse of pack_panel over every k panel (reading the A side when
/// materialized, else the B side; padding rows and words are dropped).
/// The shard store's repack fallback uses this to re-pack a mapped shard
/// under a different register-tile geometry without the original source.
[[nodiscard]] BitMatrix unpack_packed(const PackedBitMatrix& p);

/// Guard helper for drivers accepting a caller-supplied packed operand:
/// the packed copy must describe a matrix of the same shape as `m` (the
/// caller is responsible for it actually being packed from the same data).
void expect_packed_matches(const PackedBitMatrix& p, const BitMatrixView& m);

/// Driver helper: pick the packed operand for a call site. A caller-
/// supplied pack wins (shape-checked against `m`; the caller must have
/// built it from the same data with the same GemmConfig). Otherwise, when
/// `cfg` resolves to a packing plan and cfg.pack_once is on, `m` is packed
/// into `own` and that pack is returned. Returns nullptr when the call
/// should take the fresh-pack (or unpacked-ablation) path instead.
const PackedBitMatrix* resolve_packed(const BitMatrixView& m,
                                      const GemmConfig& cfg,
                                      const PackedBitMatrix* supplied,
                                      PackSides sides,
                                      std::optional<PackedBitMatrix>& own,
                                      unsigned threads = 1);

}  // namespace ldla
