// Dense row-major matrix of pair counts (the integer H·Nseq of Section II).
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/aligned_buffer.hpp"
#include "util/contract.hpp"

namespace ldla {

/// Non-owning reference to a row-major uint32 matrix with leading dimension.
struct CountMatrixRef {
  std::uint32_t* data = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t ld = 0;  ///< elements between consecutive rows (>= cols)

  /// Element reference; bounds-checked in debug / checked builds.
  [[nodiscard]] std::uint32_t& at(std::size_t i, std::size_t j) const {
    LDLA_BOUNDS_CHECK(i < rows && j < cols, "count matrix index out of range");
    return data[i * ld + j];
  }
};

/// Owning count matrix.
class CountMatrix {
 public:
  CountMatrix() = default;
  CountMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), ld_(cols), buf_(rows * cols) {
    buf_.zero();
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t ld() const noexcept { return ld_; }

  [[nodiscard]] std::uint32_t operator()(std::size_t i, std::size_t j) const {
    LDLA_ASSERT(i < rows_ && j < cols_);
    return buf_[i * ld_ + j];
  }
  [[nodiscard]] std::uint32_t& operator()(std::size_t i, std::size_t j) {
    LDLA_ASSERT(i < rows_ && j < cols_);
    return buf_[i * ld_ + j];
  }

  [[nodiscard]] CountMatrixRef ref() noexcept {
    return {buf_.data(), rows_, cols_, ld_};
  }

  void zero() noexcept { buf_.zero(); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t ld_ = 0;
  AlignedBuffer<std::uint32_t> buf_;
};

}  // namespace ldla
