// Portable micro-kernel for machines without a POPCNT instruction: the
// same word-at-a-time template as the scalar family with a branch-free
// SWAR popcount body. Serves as the "software popcount" arm of the
// Section IV-A comparison and as the always-available fallback, so one
// geometry suffices.
//
// Compiled with -fno-tree-vectorize (see kernels_scalar.cpp).
#include "core/gemm/kernel.hpp"
#include "core/gemm/kernel_gen.hpp"

namespace ldla::kernels {

namespace {
namespace gen = ldla::kernels::gen;

const KernelInfo kTable[] = {
    {KernelArch::kSwar, "swar-4x4", 4, 4, 1,
     &gen::ugemm_word<4, 4, 1, gen::PopSwar>, true},
};

}  // namespace

std::span<const KernelInfo> swar_variants() { return kTable; }

}  // namespace ldla::kernels
