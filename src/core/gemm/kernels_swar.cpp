// Portable micro-kernel for machines without a POPCNT instruction: the same
// 4x4 tile as the scalar kernel with a branch-free SWAR popcount. Serves as
// the "software popcount" arm of the Section IV-A comparison and as the
// always-available fallback.
#include "core/gemm/kernel.hpp"
#include "core/popcount.hpp"

namespace ldla::kernels {

void swar_4x4(std::size_t kc, const std::uint64_t* ap, const std::uint64_t* bp,
              std::uint32_t* c, std::size_t ldc) {
  std::uint32_t acc[4][4] = {};
  for (std::size_t k = 0; k < kc; ++k) {
    const std::uint64_t a[4] = {ap[0], ap[1], ap[2], ap[3]};
    const std::uint64_t b[4] = {bp[0], bp[1], bp[2], bp[3]};
    ap += 4;
    bp += 4;
    for (std::size_t i = 0; i < 4; ++i) {
      for (std::size_t j = 0; j < 4; ++j) {
        acc[i][j] += static_cast<std::uint32_t>(popcount_u64_swar(a[i] & b[j]));
      }
    }
  }
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      c[i * ldc + j] += acc[i][j];
    }
  }
}

}  // namespace ldla::kernels
