#include "core/gemm/dgemm.hpp"

#include <algorithm>
#include <cstring>

#include "util/aligned_buffer.hpp"
#include "util/contract.hpp"

namespace ldla {

namespace {

// Pack rows [row_begin, row_begin+rows) x columns [k_begin, k_begin+kc) of
// src (row-major, leading dimension ld) into r-interleaved slivers:
// out[(sliver * kc + k) * r + i]. Edge rows zero-padded.
void pack_rows(const double* src, std::size_t ld, std::size_t row_begin,
               std::size_t rows, std::size_t total_rows, std::size_t k_begin,
               std::size_t kc, std::size_t r, double* out) {
  const std::size_t slivers = (rows + r - 1) / r;
  for (std::size_t s = 0; s < slivers; ++s) {
    double* dst = out + s * r * kc;
    for (std::size_t k = 0; k < kc; ++k) {
      for (std::size_t i = 0; i < r; ++i) {
        const std::size_t row = row_begin + s * r + i;
        dst[k * r + i] = (row < row_begin + rows && row < total_rows)
                             ? src[row * ld + k_begin + k]
                             : 0.0;
      }
    }
  }
}

// Scalar 4x8 micro-kernel; with -O3 the compiler turns the inner loop into
// FMA vector code, which is exactly what we want for the control arm.
void kernel_4x8(std::size_t kc, const double* ap, const double* bp, double* c,
                std::size_t ldc) {
  double acc[4][8] = {};
  for (std::size_t k = 0; k < kc; ++k) {
    const double* a = ap + k * 4;
    const double* b = bp + k * 8;
    for (std::size_t i = 0; i < 4; ++i) {
      for (std::size_t j = 0; j < 8; ++j) {
        acc[i][j] += a[i] * b[j];
      }
    }
  }
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      c[i * ldc + j] += acc[i][j];
    }
  }
}

}  // namespace

void dgemm_nt(std::size_t m, std::size_t n, std::size_t k, const double* a,
              std::size_t lda, const double* b, std::size_t ldb, double* c,
              std::size_t ldc, const DgemmPlan& plan) {
  LDLA_EXPECT(lda >= k && ldb >= k && ldc >= n, "leading dimensions too small");
  if (m == 0 || n == 0 || k == 0) return;
  const std::size_t mr = plan.mr;
  const std::size_t nr = plan.nr;
  LDLA_EXPECT(mr == 4 && nr == 8, "only the 4x8 kernel is registered");

  const std::size_t kc = std::max<std::size_t>(1, plan.kc);
  const std::size_t mc = (std::max<std::size_t>(mr, plan.mc) + mr - 1) / mr * mr;
  const std::size_t nc = (std::max<std::size_t>(nr, plan.nc) + nr - 1) / nr * nr;

  AlignedBuffer<double> a_pack(((mc + mr - 1) / mr) * mr * kc);
  AlignedBuffer<double> b_pack(((nc + nr - 1) / nr) * nr * kc);

  for (std::size_t jc = 0; jc < n; jc += nc) {
    const std::size_t ncb = std::min(nc, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kc) {
      const std::size_t kcb = std::min(kc, k - pc);
      pack_rows(b, ldb, jc, ncb, n, pc, kcb, nr, b_pack.data());
      for (std::size_t ic = 0; ic < m; ic += mc) {
        const std::size_t mcb = std::min(mc, m - ic);
        pack_rows(a, lda, ic, mcb, m, pc, kcb, mr, a_pack.data());

        for (std::size_t jr = 0; jr < ncb; jr += nr) {
          const double* bp = b_pack.data() + (jr / nr) * nr * kcb;
          const std::size_t nrb = std::min(nr, ncb - jr);
          for (std::size_t ir = 0; ir < mcb; ir += mr) {
            const double* ap = a_pack.data() + (ir / mr) * mr * kcb;
            const std::size_t mrb = std::min(mr, mcb - ir);
            if (mrb == mr && nrb == nr) {
              kernel_4x8(kcb, ap, bp, &c[(ic + ir) * ldc + jc + jr], ldc);
            } else {
              double tile[4 * 8] = {};
              kernel_4x8(kcb, ap, bp, tile, nr);
              for (std::size_t i = 0; i < mrb; ++i) {
                for (std::size_t j = 0; j < nrb; ++j) {
                  c[(ic + ir + i) * ldc + jc + jr + j] += tile[i * nr + j];
                }
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace ldla
