// The popcount-GEMM driver: GotoBLAS 5-loop structure over the
// (AND, POPCNT, +) semiring.
//
//     C[i][j] += sum_k POPCNT(a.row(i)[k] & b.row(j)[k])
//
// a supplies m rows, b supplies n rows (C = A · Bᵀ in row terms; with
// a == b this is the paper's  H·Nseq = Gᵀ G  haplotype-count matrix).
// Callers zero C first for assignment semantics; the driver accumulates.
#pragma once

#include "core/bit_matrix.hpp"
#include "core/gemm/config.hpp"
#include "core/gemm/count_matrix.hpp"

namespace ldla {

/// Full rectangular count GEMM. C must be at least a.n_snps x b.n_snps.
/// Both operands must have the same word count (same sample universe).
void gemm_count(const BitMatrixView& a, const BitMatrixView& b,
                CountMatrixRef c, const GemmConfig& cfg = {});

/// Statistics of the most recent plan resolution (for bench reporting).
GemmPlan gemm_plan_for(const BitMatrixView& a, const GemmConfig& cfg = {});

/// Threaded variant of gemm_count: the m dimension is split into row
/// blocks, each worker running the sequential driver on its slice with its
/// own packing buffers (BLIS-style ic-loop parallelism; C row slices are
/// disjoint so no synchronization is needed). threads = 0 means hardware
/// concurrency. Results identical to gemm_count.
void gemm_count_parallel(const BitMatrixView& a, const BitMatrixView& b,
                         CountMatrixRef c, const GemmConfig& cfg = {},
                         unsigned threads = 0);

/// Empirically pick blocking parameters: runs short trials of candidate
/// (kc, mc) pairs on a problem-shaped sample and returns cfg with the
/// fastest combination filled in. Intended for long-running pipelines
/// where a few hundred milliseconds of tuning amortizes.
GemmConfig tune_gemm_config(const BitMatrixView& sample,
                            const GemmConfig& base = {});

}  // namespace ldla
