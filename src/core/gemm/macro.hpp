// The popcount-GEMM driver: GotoBLAS 5-loop structure over the
// (AND, POPCNT, +) semiring.
//
//     C[i][j] += sum_k POPCNT(a.row(i)[k] & b.row(j)[k])
//
// a supplies m rows, b supplies n rows (C = A · Bᵀ in row terms; with
// a == b this is the paper's  H·Nseq = Gᵀ G  haplotype-count matrix).
// Callers zero C first for assignment semantics; the driver accumulates.
#pragma once

#include <cstdint>
#include <functional>

#include "core/bit_matrix.hpp"
#include "core/gemm/config.hpp"
#include "core/gemm/count_matrix.hpp"
#include "core/gemm/packed_bit_matrix.hpp"

namespace ldla {

/// One finalized cache tile of haplotype counts, delivered by the fused
/// drivers while it is still hot. Indices are global operand row numbers
/// (row_begin in A space, col_begin in B space); `counts` points at the
/// in-range corner of a tile-local scratch buffer with leading dimension
/// `ld`, valid only for the duration of the sink call.
struct CountTile {
  std::size_t row_begin = 0;
  std::size_t col_begin = 0;
  std::size_t rows = 0;
  std::size_t cols = 0;
  const std::uint32_t* counts = nullptr;
  std::size_t ld = 0;

  const std::uint32_t* row(std::size_t i) const { return counts + i * ld; }
};

/// Consumer of finalized count tiles (the fused statistics epilogue).
using CountTileSink = std::function<void(const CountTile&)>;

/// Full rectangular count GEMM. C must be at least a.n_snps x b.n_snps.
/// Both operands must have the same word count (same sample universe).
/// With cfg.pack_once (the default) the operands are packed whole and the
/// persistent-sliver macro-kernel runs; pack_once = false is the original
/// per-block fresh-pack path (the bench_pack_reuse ablation control).
void gemm_count(const BitMatrixView& a, const BitMatrixView& b,
                CountMatrixRef c, const GemmConfig& cfg = {});

/// Count GEMM over pre-packed operands: rows [a_begin, a_end) of `a`
/// against rows [b_begin, b_end) of `b`, accumulating into C at local
/// indices (i - a_begin, j - b_begin). Callers zero C for assignment
/// semantics. The ranges may start/end anywhere — sliver-boundary
/// crossings are handled like edge tiles — so windowed drivers (banded
/// scans, ω windows) slice one persistent packed copy instead of
/// re-packing per slab. `a` needs an A side, `b` a B side, and both must
/// be packed for compatible plans (same kernel, register tile, kc, ku).
void gemm_count_packed(const PackedBitMatrix& a, std::size_t a_begin,
                       std::size_t a_end, const PackedBitMatrix& b,
                       std::size_t b_begin, std::size_t b_end,
                       CountMatrixRef c);

/// Fused variant of gemm_count_packed: the k (panel) loop runs innermost
/// per (ic, jc) cache tile — legal and cheap over persistently packed
/// slivers — so every mc x nc tile of C is final exactly once, accumulated
/// in a tile-local scratch buffer and handed to `sink` while still hot.
/// No count matrix is ever materialized: peak intermediate storage is
/// O(mc·nc). Tiles partition [a_begin, a_end) x [b_begin, b_end) on the
/// cache-tile grid; each in-range element appears in exactly one tile.
void gemm_count_fused(const PackedBitMatrix& a, std::size_t a_begin,
                      std::size_t a_end, const PackedBitMatrix& b,
                      std::size_t b_begin, std::size_t b_end,
                      const CountTileSink& sink);

/// Statistics of the most recent plan resolution (for bench reporting).
GemmPlan gemm_plan_for(const BitMatrixView& a, const GemmConfig& cfg = {});

/// Threaded variant of gemm_count: the m dimension is split into `threads`
/// row blocks executed on the process-wide global_pool() (execution
/// parallelism is additionally capped by that pool's size). With
/// cfg.pack_once the operands are packed exactly once and every worker
/// reads the shared immutable slivers; the fresh-pack ablation gives each
/// worker private packing buffers (the historical per-thread duplicate
/// B-pack). threads = 0 means hardware concurrency. Results identical to
/// gemm_count.
void gemm_count_parallel(const BitMatrixView& a, const BitMatrixView& b,
                         CountMatrixRef c, const GemmConfig& cfg = {},
                         unsigned threads = 0);

/// Empirically pick blocking parameters: runs short trials of candidate
/// (kc, mc) pairs on a problem-shaped sample and returns cfg with the
/// fastest combination filled in. Intended for long-running pipelines
/// where a few hundred milliseconds of tuning amortizes.
GemmConfig tune_gemm_config(const BitMatrixView& sample,
                            const GemmConfig& base = {});

}  // namespace ldla
