// Micro-kernel ABI for the popcount-GEMM.
//
// A micro-kernel computes the register tile
//
//     C[i][j] += sum_{k=0}^{kc-1} POPCNT(Ap[k][i] & Bp[k][j])
//
// for i < mr, j < nr, over *packed* operand panels:
//
//   Ap: kc words of each of mr rows, interleaved in groups of ku words:
//       Ap[(kchunk*mr + i)*ku + kk]  holds word  k = kchunk*ku + kk  of row i
//   Bp: same layout with nr in place of mr.
//
// kc is always a multiple of ku (the packer zero-pads; zero words are
// identity elements of the (AND, POPCNT, +) semiring so padding is free).
// C is row-major with leading dimension ldc, accumulated into (beta = 1);
// callers zero C first for beta = 0 semantics.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/gemm/config.hpp"

namespace ldla {

using MicroKernelFn = void (*)(std::size_t kc, const std::uint64_t* ap,
                               const std::uint64_t* bp, std::uint32_t* c,
                               std::size_t ldc);

struct KernelInfo {
  KernelArch arch = KernelArch::kScalar;
  const char* name = "";
  std::size_t mr = 0;
  std::size_t nr = 0;
  std::size_t ku = 0;
  MicroKernelFn fn = nullptr;
};

/// Registry lookup; `arch` must not be kAuto and must be available.
const KernelInfo& kernel_info(KernelArch arch);

// Kernel entry points (defined in the kernels_*.cpp translation units).
namespace kernels {
void scalar_4x4(std::size_t kc, const std::uint64_t* ap,
                const std::uint64_t* bp, std::uint32_t* c, std::size_t ldc);
void swar_4x4(std::size_t kc, const std::uint64_t* ap, const std::uint64_t* bp,
              std::uint32_t* c, std::size_t ldc);
#if LDLA_HAVE_AVX2_TU
void avx2_2x4(std::size_t kc, const std::uint64_t* ap, const std::uint64_t* bp,
              std::uint32_t* c, std::size_t ldc);
void strawman_2x4(std::size_t kc, const std::uint64_t* ap,
                  const std::uint64_t* bp, std::uint32_t* c, std::size_t ldc);
#endif
#if LDLA_HAVE_AVX512_TU
void avx512_4x4(std::size_t kc, const std::uint64_t* ap,
                const std::uint64_t* bp, std::uint32_t* c, std::size_t ldc);
void avx512_2x8(std::size_t kc, const std::uint64_t* ap,
                const std::uint64_t* bp, std::uint32_t* c, std::size_t ldc);
#endif
}  // namespace kernels

}  // namespace ldla
