// Micro-kernel ABI and variant registry for the popcount-GEMM.
//
// A micro-kernel computes the register tile
//
//     C[i][j] += sum_{k=0}^{kc-1} POPCNT(Ap[k][i] & Bp[k][j])
//
// for i < mr, j < nr, over *packed* operand panels:
//
//   Ap: kc words of each of mr rows, interleaved in groups of ku words:
//       Ap[(kchunk*mr + i)*ku + kk]  holds word  k = kchunk*ku + kk  of row i
//   Bp: same layout with nr in place of mr.
//
// kc is always a multiple of ku (the packer zero-pads; zero words are
// identity elements of the (AND, POPCNT, +) semiring so padding is free).
// C is row-major with leading dimension ldc, accumulated into (beta = 1);
// callers zero C first for beta = 0 semantics.
//
// Kernels are generated from the template bodies in kernel_gen.hpp and
// instantiated over an (mr, nr, ku) grid by the kernels_*.cpp translation
// units; each TU exports its slice of the grid as a variant table, and the
// registry (dispatch.cpp) concatenates them. (arch, mr, nr, ku) uniquely
// identifies a variant, so a GemmPlan — including one read back from an
// LDLASH01 shard header — pins its kernel with no extra state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/gemm/config.hpp"

namespace ldla {

using MicroKernelFn = void (*)(std::size_t kc, const std::uint64_t* ap,
                               const std::uint64_t* bp, std::uint32_t* c,
                               std::size_t ldc);

struct KernelInfo {
  KernelArch arch = KernelArch::kScalar;
  const char* name = "";
  std::size_t mr = 0;
  std::size_t nr = 0;
  std::size_t ku = 0;
  MicroKernelFn fn = nullptr;
  /// The family's default geometry — what kernel_info(arch) and an untuned
  /// resolve_plan select (kept equal to the historical hand-written shapes
  /// so existing shard stores and baselines are unchanged).
  bool family_default = false;
};

/// Every kernel variant compiled into this build, all families — including
/// families the running CPU cannot execute (pair with kernel_available()).
/// Geometry invariants (mr,nr | 64, mr*nr <= 256, (arch,mr,nr,ku) unique)
/// are contract-checked once at first use.
std::span<const KernelInfo> kernel_registry();

/// The registry filtered to families available on the running CPU.
std::vector<const KernelInfo*> available_kernel_variants();

/// Exact-geometry lookup; nullptr when no such variant is compiled.
const KernelInfo* find_kernel(KernelArch arch, std::size_t mr, std::size_t nr,
                              std::size_t ku);

/// Lookup by unique variant name (the tuning cache's key); nullptr when
/// the name is unknown to this build.
const KernelInfo* find_kernel(std::string_view name);

/// Family-default lookup; `arch` must not be kAuto and must be available.
const KernelInfo& kernel_info(KernelArch arch);

/// The variant a resolved plan names: exact (arch, mr, nr, ku) match.
/// Throws when the geometry was never compiled or the family cannot run on
/// this CPU — a plan from resolve_plan or a validated shard header always
/// succeeds.
const KernelInfo& kernel_for_plan(const GemmPlan& plan);

// Per-TU variant tables (defined in the kernels_*.cpp translation units,
// which instantiate the kernel_gen.hpp templates under their ISA flags).
namespace kernels {
std::span<const KernelInfo> scalar_variants();
std::span<const KernelInfo> swar_variants();
#if LDLA_HAVE_AVX2_TU
std::span<const KernelInfo> avx2_variants();
#endif
#if LDLA_HAVE_AVX512_TU
std::span<const KernelInfo> avx512_variants();
#endif
}  // namespace kernels

}  // namespace ldla
