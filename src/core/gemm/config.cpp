#include "core/gemm/config.hpp"

#include <algorithm>
#include <limits>

#include "core/gemm/kernel.hpp"
#include "core/gemm/tune_cache.hpp"
#include "util/contract.hpp"
#include "util/cpu_info.hpp"

namespace ldla {

std::string kernel_arch_name(KernelArch a) {
  switch (a) {
    case KernelArch::kAuto: return "auto";
    case KernelArch::kScalar: return "scalar-popcnt";
    case KernelArch::kSwar: return "swar";
    case KernelArch::kStrawman: return "simd-extract-strawman";
    case KernelArch::kAvx2: return "avx2-pshufb";
    case KernelArch::kAvx512: return "avx512-vpopcntdq";
    case KernelArch::kAvx512Wide: return "avx512-vpopcntdq-2x8";
  }
  return "unknown";
}

std::string parallel_mode_name(ParallelMode m) {
  switch (m) {
    case ParallelMode::kNest: return "nest";
    case ParallelMode::kCoarse: return "coarse";
  }
  return "unknown";
}

// kernel_available lives in dispatch.cpp now: availability is a registry
// question (family feature-gate AND at least one compiled variant).

std::vector<KernelArch> available_kernels() {
  std::vector<KernelArch> out;
  for (KernelArch a : {KernelArch::kScalar, KernelArch::kSwar,
                       KernelArch::kStrawman, KernelArch::kAvx2,
                       KernelArch::kAvx512, KernelArch::kAvx512Wide}) {
    if (kernel_available(a)) out.push_back(a);
  }
  return out;
}

namespace {

KernelArch resolve_auto_arch() {
  if (kernel_available(KernelArch::kAvx512)) return KernelArch::kAvx512;
  // Note: the paper's Section V analysis holds — without a vectorized
  // popcount, the *scalar* POPCNT kernel is the honest default; the AVX2
  // PSHUFB kernel is available explicitly for the SIMD study.
  if (kernel_available(KernelArch::kScalar)) return KernelArch::kScalar;
  return KernelArch::kSwar;
}

}  // namespace

GemmPlan resolve_plan(const GemmConfig& cfg, std::size_t k_words) {
  KernelArch arch = cfg.arch;
  if (arch == KernelArch::kAuto) arch = resolve_auto_arch();
  LDLA_EXPECT(kernel_available(arch),
              "requested GEMM kernel is unavailable on this CPU/build");

  // Select the micro-kernel variant: an explicit (mr, nr, ku) override
  // wins; a fully-auto config consults the persistent tuning cache; the
  // family's default variant is the fallback either way.
  std::size_t want_kc = cfg.kc_words;
  std::size_t want_mc = cfg.mc;
  const KernelInfo* info = nullptr;
  if (cfg.mr != 0 || cfg.nr != 0 || cfg.ku != 0) {
    LDLA_EXPECT(cfg.mr != 0 && cfg.nr != 0 && cfg.ku != 0,
                "GemmConfig variant override requires all of mr, nr, ku");
    info = find_kernel(arch, cfg.mr, cfg.nr, cfg.ku);
    if (info == nullptr) {
      throw ContractViolation("GemmConfig names a register-tile geometry (" +
                              kernel_arch_name(arch) + " " +
                              std::to_string(cfg.mr) + "x" +
                              std::to_string(cfg.nr) + "u" +
                              std::to_string(cfg.ku) +
                              ") with no registered kernel variant");
    }
  } else if (cfg.arch == KernelArch::kAuto && cfg.kc_words == 0 &&
             cfg.mc == 0 && cfg.nc == 0 && cfg.blocking && cfg.packing) {
    // Only untouched configs take cached decisions: any explicit knob means
    // the caller (a bench ablation, the tuner itself) wants exactly what it
    // asked for.
    if (const auto hit = tune_cache_lookup(k_words)) {
      const KernelInfo* k = find_kernel(hit->variant);
      if (k != nullptr && kernel_available(k->arch)) {
        info = k;
        arch = k->arch;
        want_kc = hit->kc_words;
        want_mc = hit->mc;
      }
    }
  }
  if (info == nullptr) info = &kernel_info(arch);

  GemmPlan plan;
  plan.arch = arch;
  plan.mr = info->mr;
  plan.nr = info->nr;
  plan.ku = info->ku;
  plan.packing = cfg.packing;

  const CacheInfo& cache = cpu_info().cache;

  // kc: one mr-sliver of A (mr*kc words) plus one nr-sliver of B should sit
  // comfortably in L1 alongside the C tile; a third of L1d measures best
  // (bench_blocking_ablation) — it leaves headroom for the streaming B
  // panel lines.
  if (want_kc != 0) {
    plan.kc_words = want_kc;
  } else {
    const std::size_t bytes_per_k = (plan.mr + plan.nr) * sizeof(std::uint64_t);
    plan.kc_words = std::max<std::size_t>(
        plan.ku, (cache.l1d / 3) / std::max<std::size_t>(1, bytes_per_k));
    plan.kc_words = std::min<std::size_t>(plan.kc_words, 256);
  }
  // Round kc to the kernel's k-unroll so packed panels stay uniform.
  plan.kc_words = (plan.kc_words + plan.ku - 1) / plan.ku * plan.ku;

  // mc: packed A block (mc * kc words) should fit in ~half of L2.
  if (want_mc != 0) {
    plan.mc = want_mc;
  } else {
    const std::size_t a_block_budget = cache.l2 / 2;
    plan.mc = std::max<std::size_t>(
        plan.mr, a_block_budget / (plan.kc_words * sizeof(std::uint64_t)));
    plan.mc = std::min<std::size_t>(plan.mc, 512);
  }
  plan.mc = (plan.mc + plan.mr - 1) / plan.mr * plan.mr;

  // nc: packed B panel (nc * kc words) targets L3 (or a fixed budget when
  // L3 is undetected).
  if (cfg.nc != 0) {
    plan.nc = cfg.nc;
  } else {
    const std::size_t l3 = cache.l3 != 0 ? cache.l3 : 8 * 1024 * 1024;
    plan.nc = std::max<std::size_t>(
        plan.nr, (l3 / 2) / (plan.kc_words * sizeof(std::uint64_t)));
    plan.nc = std::min<std::size_t>(plan.nc, 8192);
  }
  plan.nc = (plan.nc + plan.nr - 1) / plan.nr * plan.nr;

  // Sparse-column threshold: auto resolves to the crossover allele count.
  // A dense register-tile row pair costs ~k_words AND+POPCNT word ops per
  // panel sweep; a list×dense pair costs one gather+test per list entry, so
  // lists shorter than the row's word count win. The complement trick uses
  // the same bound on the zero count.
  plan.sparse_threshold = cfg.sparse_threshold == kSparseThresholdAuto
                              ? k_words
                              : cfg.sparse_threshold;

  if (!cfg.blocking) {
    // Ablation: single unblocked pass — kc spans all of k, one giant block.
    plan.kc_words = std::max<std::size_t>(
        plan.ku, (k_words + plan.ku - 1) / plan.ku * plan.ku);
    plan.mc = std::numeric_limits<std::size_t>::max() / 2;
    plan.nc = std::numeric_limits<std::size_t>::max() / 2;
  }
  return plan;
}

}  // namespace ldla
