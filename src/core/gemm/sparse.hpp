// MAF-adaptive sparse columns: pack-time classification of SNP rows into
// dense / index-list / complement-list representations (DESIGN.md §4.6).
//
// Real cohorts are dominated by rare variants, so most rows of the bit
// matrix are nearly all-zero and the dense popcount-GEMM spends almost
// every AND+POPCNT on zero words. Following the low-allele-count dispatch
// proven in tomahawk and PLINK 2, the packer records every column's set-bit
// count (it already touches every word) and, for columns whose allele
// count — or zero count, for the near-all-ones complement trick — falls
// within GemmConfig::sparse_threshold, extracts a sorted sample-index list.
// The dense slivers are always kept alongside the lists: the lists are a
// faster *route* to the same integer counts, never a replacement
// representation, so every windowed/ablation path can fall back freely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/bit_matrix.hpp"
#include "util/contract.hpp"

namespace ldla {

/// Pack-time classification of one SNP row (a "column" of the cohort).
enum class ColumnKind : std::uint8_t {
  kDense = 0,       ///< dense sliver only (allele count above threshold)
  kList = 1,        ///< sorted indices of the SET bits (rare allele)
  kComplement = 2,  ///< sorted indices of the ZERO bits (near-fixed allele)
};

/// Per-column popcounts plus sorted index lists for the columns the
/// threshold classifies as sparse. Popcounts are recorded for every column
/// unconditionally — the complement algebra of the mixed list×dense kernel
/// needs the dense side's allele count too. Lists are CSR-concatenated:
/// column i owns index[offset[i], offset[i+1]).
struct SparseColumns {
  std::size_t threshold = 0;  ///< resolved allele-count threshold (0 = off)
  std::size_t n_samples = 0;
  std::vector<std::uint32_t> popcount;  ///< set bits per column (always)
  std::vector<ColumnKind> kind;         ///< per-column representation
  std::vector<std::uint64_t> offset;    ///< CSR offsets into `index`
  std::vector<std::uint32_t> index;     ///< concatenated sorted lists
  std::size_t sparse_count = 0;         ///< columns not kDense

  [[nodiscard]] bool enabled() const noexcept { return threshold != 0; }
  [[nodiscard]] const std::uint32_t* list(std::size_t i) const {
    LDLA_BOUNDS_CHECK(i + 1 < offset.size(), "sparse column out of range");
    return index.data() + offset[i];
  }
  [[nodiscard]] std::size_t list_size(std::size_t i) const {
    LDLA_BOUNDS_CHECK(i + 1 < offset.size(), "sparse column out of range");
    return static_cast<std::size_t>(offset[i + 1] - offset[i]);
  }
};

/// One pass over `m`: record every column's popcount and extract sorted
/// set-bit (kList) or zero-bit (kComplement) index lists for columns within
/// `threshold`. A column qualifying both ways (threshold >= n_samples/2)
/// is stored as kList. Complement extraction relies on BitMatrix's
/// clean-padding invariant — bits beyond n_samples in the last word are
/// zero — and masks the tail word so padding never enters a list.
SparseColumns build_sparse_columns(const BitMatrixView& m,
                                   std::size_t threshold);

}  // namespace ldla
