// Persistent tuning cache for the joint kernel × blocking search.
//
// tune_gemm_config's empirical sweep costs real time (it times every
// candidate micro-kernel variant and a kc × mc grid on the survivors), so
// its winner is persisted to a small JSON file and reused by later
// processes on the same machine. Entries are keyed by a CPU signature
// (brand + ISA features + cache sizes — anything that changes which
// variant wins) and a problem-shape bucket (ceil-log2 of the k extent in
// words, the dimension the blocking derivation actually depends on). A
// file written on one machine is silently ignored on another, and a
// corrupt or truncated file is treated as empty — both fall back to
// re-tuning, never to an error.
//
// The file path comes from the LDLA_TUNE_CACHE environment variable; when
// it is unset the cache is disabled and every call is a no-op miss. The
// *_at entry points take an explicit path (and skip the process-wide
// memo) so tests can exercise round-trips without touching the
// environment.
//
// Lookups/stores count into ldla_tune_cache_hits_total /
// ldla_tune_cache_misses_total. A store that finds the identical entry
// already present leaves the file untouched, so two back-to-back tuned
// runs produce byte-identical cache files (asserted in CI).
#pragma once

#include <cstddef>
#include <optional>
#include <string>

namespace ldla {

/// One cached tuning decision: the winning registry variant (by name — the
/// name is the stable identity across builds) plus the blocking pair the
/// joint search settled on.
struct TuneCacheEntry {
  std::string variant;
  std::size_t kc_words = 0;
  std::size_t mc = 0;
};

/// Signature of the machine the cache was tuned on. Any difference —
/// brand, ISA feature set, cache hierarchy — invalidates the whole file.
std::string tune_cache_cpu_signature();

/// Shape bucket for a problem with `k_words` packed words per row:
/// ceil(log2(k_words)), so problems within a factor of two share a tuning
/// decision. k_words == 0 buckets as 0.
std::size_t tune_shape_bucket(std::size_t k_words);

/// Cache file path from $LDLA_TUNE_CACHE; empty when the cache is
/// disabled.
std::string tune_cache_path();

/// Look up / persist the decision for a problem shape via the env-selected
/// file. Misses (disabled, absent file, foreign CPU, corrupt file, bucket
/// not present) return nullopt; stores on a disabled cache are no-ops.
std::optional<TuneCacheEntry> tune_cache_lookup(std::size_t k_words);
void tune_cache_store(std::size_t k_words, const TuneCacheEntry& entry);

/// Explicit-path seams for tests: same semantics, no environment variable
/// and no memoization. store_at returns false on I/O failure.
std::optional<TuneCacheEntry> tune_cache_lookup_at(const std::string& path,
                                                   std::size_t k_words);
bool tune_cache_store_at(const std::string& path, std::size_t k_words,
                         const TuneCacheEntry& entry);

}  // namespace ldla
