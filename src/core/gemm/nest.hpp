// In-nest parallel fused count drivers (BLIS-style jr/ic parallelism).
//
// The coarse parallel drivers split the *problem* into per-worker row slabs,
// each running a full sequential 5-loop nest. These drivers instead put the
// team *inside* one nest: the operands are packed once (shared, immutable),
// the (ic, jr) macro-tile grid of every jc panel is cut into mc x (q·nr)
// chunks, and the team drains those chunks through per-member Chase–Lev
// deques — LIFO locally for cache locality, FIFO steals from the far end of
// a victim's contiguous block when a member runs dry. Load imbalance from
// ragged edges or the SYRK triangle is absorbed by stealing instead of by a
// static triangle-balancing split.
//
// Every chunk runs the exact per-tile body of the sequential fused drivers
// (core/gemm/fused_tile.hpp), so results are bit-identical to
// gemm_count_fused / syrk_count_fused by construction, and the kernel-call /
// kernel-word trace totals are preserved exactly.
//
// The sink is called concurrently from team members; it must be thread-safe.
// Tiles still partition the in-range window — each output element appears in
// exactly one sink call (SYRK: each element of the diagonal-and-below band;
// strictly-upper slack of diagonal-straddling tiles carries whatever the
// straddling register tiles computed, exactly as in syrk_count_fused, and
// consumers must read the canonical band only; fully-above-diagonal chunks
// are never enumerated).
//
// Teams run on global_pool(); do not call these drivers from inside a task
// already running on that pool (the pool forbids nested run_tasks).
#pragma once

#include "core/gemm/macro.hpp"
#include "core/gemm/packed_bit_matrix.hpp"

namespace ldla {

/// In-nest parallel gemm_count_fused: rows [a_begin, a_end) of `a` against
/// rows [b_begin, b_end) of `b`, tiles delivered to `sink` (thread-safe).
/// threads = 0 means default_thread_count(); a team of <= 1 (or a problem
/// with a single chunk) degrades to the sequential fused driver.
void gemm_count_parallel_nest(const PackedBitMatrix& a, std::size_t a_begin,
                              std::size_t a_end, const PackedBitMatrix& b,
                              std::size_t b_begin, std::size_t b_end,
                              const CountTileSink& sink, unsigned threads = 0);

/// In-nest parallel syrk_count_fused over rows [row_begin, row_end) of `a`:
/// only chunks intersecting the diagonal-and-below band are enumerated.
void syrk_count_parallel_nest(const PackedBitMatrix& a, std::size_t row_begin,
                              std::size_t row_end, const CountTileSink& sink,
                              unsigned threads = 0);

}  // namespace ldla
