// Blocking configuration for the popcount-GEMM (the GotoBLAS parameters).
//
// Names follow the GotoBLAS/BLIS convention: the k dimension is split into
// kc-word panels (packed to fit L1/L2), m into mc-row blocks (packed A block
// resident in L2), n into nc-column panels (packed B panel resident in L3),
// and the macro-kernel sweeps mr x nr register tiles.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ldla {

/// Which micro-kernel implementation the GEMM uses.
enum class KernelArch {
  kAuto,      ///< widest available (runtime CPUID dispatch)
  kScalar,    ///< scalar 64-bit POPCNT micro-kernel (the paper's kernel)
  kSwar,      ///< portable bit-twiddling popcount (no POPCNT instruction)
  kStrawman,  ///< Section V strawman: AVX2 AND + lane extract + scalar POPCNT
  kAvx2,      ///< AVX2 PSHUFB-popcount micro-kernel (best pre-VPOPCNT SIMD)
  kAvx512,    ///< AVX-512 VPOPCNTDQ micro-kernel, 4x4 register tile
  kAvx512Wide,///< AVX-512 VPOPCNTDQ, 2x8 tile (tile-geometry ablation)
};

std::string kernel_arch_name(KernelArch a);

/// How the multi-threaded LD drivers distribute work (DESIGN.md §4.4).
enum class ParallelMode {
  kNest,    ///< in-nest: one team cooperates inside each loop nest, draining
            ///< a work-stealing queue of macro-tile chunks over shared packs
  kCoarse,  ///< coarse: static row-range split, each worker runs a full
            ///< sequential nest on its slab (the pre-nest ablation control)
};

std::string parallel_mode_name(ParallelMode m);

/// Sentinel for GemmConfig::sparse_threshold: resolve the threshold from
/// the crossover model at pack time (see resolve_plan).
inline constexpr std::size_t kSparseThresholdAuto =
    static_cast<std::size_t>(-1);

struct GemmConfig {
  KernelArch arch = KernelArch::kAuto;

  /// Register-tile geometry override selecting one variant from the kernel
  /// registry (kernel.hpp). Zero means "the family's default variant"; when
  /// any of the three is set, all three must be, and (arch, mr, nr, ku)
  /// must name a registered variant or resolve_plan throws. Written by
  /// tune_gemm_config and the tuning cache; rarely set by hand.
  std::size_t mr = 0;
  std::size_t nr = 0;
  std::size_t ku = 0;

  /// Cache-blocking parameters in *words* (kc) and rows/columns (mc, nc).
  /// Zero means "derive from the detected cache hierarchy".
  std::size_t kc_words = 0;
  std::size_t mc = 0;
  std::size_t nc = 0;

  /// Ablation switches (bench_blocking_ablation): disable the packed
  /// micro-tile layout and/or cache blocking to quantify their value.
  bool packing = true;
  bool blocking = true;

  /// When packing is on, drivers pre-pack whole operands once into a
  /// PackedBitMatrix and run the packed macro-kernel over persistent
  /// slivers. Off = the original fresh-pack path (per-block packing
  /// buffers inside the 5-loop nest), kept as the bench_pack_reuse
  /// ablation control.
  bool pack_once = true;

  /// MAF-adaptive sparse columns (DESIGN.md §4.6). Columns (SNP rows) whose
  /// allele count — or zero count, for the near-all-ones complement trick —
  /// is <= this threshold are additionally stored as sorted sample-index
  /// lists at pack time, and the fused drivers dispatch register tiles made
  /// entirely of such columns to list×list / list×dense kernels instead of
  /// the dense micro-kernel. Counts are integers, so results stay
  /// bit-identical to the dense path regardless of dispatch.
  /// kSparseThresholdAuto resolves to the list-vs-dense crossover
  /// (= words per SNP: a list shorter than the row's word count does
  /// strictly less work than the dense AND+POPCNT row walk); 0 disables
  /// the sparse representation entirely (the dense-only control).
  /// Reaches every driver through the GemmConfig member of LdOptions,
  /// BandOptions, and SweepScanParams.
  std::size_t sparse_threshold = kSparseThresholdAuto;
};

/// Fully-resolved blocking plan for a concrete problem.
struct GemmPlan {
  KernelArch arch = KernelArch::kScalar;
  std::size_t mr = 4;
  std::size_t nr = 4;
  std::size_t ku = 1;  ///< k-dimension unroll granularity of the kernel
  std::size_t kc_words = 256;
  std::size_t mc = 64;
  std::size_t nc = 4096;
  bool packing = true;
  /// Resolved allele-count threshold for sparse columns (0 = disabled).
  std::size_t sparse_threshold = 0;
};

/// Resolve `cfg` against the machine (kernel availability, cache sizes) and
/// the problem's k extent. Throws when a forced kernel is unavailable.
GemmPlan resolve_plan(const GemmConfig& cfg, std::size_t k_words);

/// Kernel usable on this CPU/build?
bool kernel_available(KernelArch a);

/// All kernels usable on this CPU/build (excluding kAuto).
std::vector<KernelArch> available_kernels();

}  // namespace ldla
