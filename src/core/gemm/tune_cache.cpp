// Persistent tuning-cache file: hand-rolled JSON (one fixed shape, no
// dependency), a process-wide memo of the parsed env-selected file, and
// deterministic rendering so unchanged stores can skip the write.
#include "core/gemm/tune_cache.hpp"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "util/cpu_info.hpp"
#include "util/metrics.hpp"
#include "util/sync.hpp"

namespace ldla {

namespace {

struct ParsedCache {
  std::string cpu;
  std::map<std::string, TuneCacheEntry> entries;  // bucket key -> decision
};

// ---------------------------------------------------------------------------
// Tolerant scanner for the one JSON shape this file ever holds. Any
// deviation — unknown key, truncation, trailing garbage, wrong schema —
// fails the whole parse, and callers treat a failed parse as an empty
// cache.
// ---------------------------------------------------------------------------

struct Cursor {
  const char* p;
  const char* end;
};

void skip_ws(Cursor& c) {
  while (c.p < c.end &&
         (*c.p == ' ' || *c.p == '\n' || *c.p == '\t' || *c.p == '\r')) {
    ++c.p;
  }
}

bool eat(Cursor& c, char ch) {
  skip_ws(c);
  if (c.p < c.end && *c.p == ch) {
    ++c.p;
    return true;
  }
  return false;
}

bool parse_string(Cursor& c, std::string& out) {
  skip_ws(c);
  if (c.p >= c.end || *c.p != '"') return false;
  ++c.p;
  out.clear();
  while (c.p < c.end && *c.p != '"') {
    char ch = *c.p;
    if (ch == '\\') {
      ++c.p;
      if (c.p >= c.end) return false;
      switch (*c.p) {
        case '"': ch = '"'; break;
        case '\\': ch = '\\'; break;
        case 'n': ch = '\n'; break;
        case 't': ch = '\t'; break;
        default: return false;
      }
    }
    out += ch;
    ++c.p;
  }
  if (c.p >= c.end) return false;
  ++c.p;  // closing quote
  return true;
}

bool parse_u64(Cursor& c, std::size_t& out) {
  skip_ws(c);
  if (c.p >= c.end || *c.p < '0' || *c.p > '9') return false;
  std::size_t v = 0;
  while (c.p < c.end && *c.p >= '0' && *c.p <= '9') {
    v = v * 10 + static_cast<std::size_t>(*c.p - '0');
    ++c.p;
  }
  out = v;
  return true;
}

bool parse_entry(Cursor& c, TuneCacheEntry& e) {
  if (!eat(c, '{')) return false;
  bool first = true;
  for (;;) {
    if (eat(c, '}')) return true;
    if (!first && !eat(c, ',')) return false;
    first = false;
    std::string key;
    if (!parse_string(c, key) || !eat(c, ':')) return false;
    if (key == "variant") {
      if (!parse_string(c, e.variant)) return false;
    } else if (key == "kc_words") {
      if (!parse_u64(c, e.kc_words)) return false;
    } else if (key == "mc") {
      if (!parse_u64(c, e.mc)) return false;
    } else {
      return false;
    }
  }
}

bool parse_cache(const std::string& body, ParsedCache& out) {
  Cursor c{body.data(), body.data() + body.size()};
  if (!eat(c, '{')) return false;
  bool first = true;
  for (;;) {
    if (eat(c, '}')) break;
    if (!first && !eat(c, ',')) return false;
    first = false;
    std::string key;
    if (!parse_string(c, key) || !eat(c, ':')) return false;
    if (key == "schema") {
      std::string schema;
      if (!parse_string(c, schema) || schema != "ldla-tune-cache-v1") {
        return false;
      }
    } else if (key == "cpu") {
      if (!parse_string(c, out.cpu)) return false;
    } else if (key == "entries") {
      if (!eat(c, '{')) return false;
      bool efirst = true;
      for (;;) {
        if (eat(c, '}')) break;
        if (!efirst && !eat(c, ',')) return false;
        efirst = false;
        std::string bucket;
        TuneCacheEntry e;
        if (!parse_string(c, bucket) || !eat(c, ':') || !parse_entry(c, e)) {
          return false;
        }
        if (e.variant.empty() || e.kc_words == 0 || e.mc == 0) return false;
        out.entries[bucket] = e;
      }
    } else {
      return false;
    }
  }
  skip_ws(c);
  return c.p == c.end;
}

void append_escaped(std::string& out, const std::string& s) {
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += ch;
    }
  }
}

/// Deterministic rendering: fixed key order, entries sorted by bucket key
/// (std::map order). Byte-identical input state => byte-identical file.
std::string render_cache(const ParsedCache& pc) {
  std::string out = "{\n  \"schema\": \"ldla-tune-cache-v1\",\n  \"cpu\": \"";
  append_escaped(out, pc.cpu);
  out += "\",\n  \"entries\": {";
  bool first = true;
  for (const auto& [bucket, e] : pc.entries) {
    if (!first) out += ',';
    first = false;
    out += "\n    \"";
    append_escaped(out, bucket);
    out += "\": {\"variant\": \"";
    append_escaped(out, e.variant);
    out += "\", \"kc_words\": ";
    out += std::to_string(e.kc_words);
    out += ", \"mc\": ";
    out += std::to_string(e.mc);
    out += '}';
  }
  out += "\n  }\n}\n";
  return out;
}

bool read_whole_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out.clear();
  char buf[4096];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    out.append(buf, n);
    if (n < sizeof(buf)) break;
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool write_whole_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return (std::fclose(f) == 0) && ok;
}

std::string bucket_key(std::size_t k_words) {
  std::string key = "b";
  key += std::to_string(tune_shape_bucket(k_words));
  return key;
}

/// Load + parse `path`; false when absent/unreadable/corrupt/foreign-CPU
/// (out is then an empty cache for the current CPU, ready to store into).
bool load_for_this_cpu(const std::string& path, ParsedCache& out) {
  out.cpu = tune_cache_cpu_signature();
  out.entries.clear();
  std::string body;
  if (!read_whole_file(path, body)) return false;
  ParsedCache pc;
  if (!parse_cache(body, pc) || pc.cpu != out.cpu) return false;
  out.entries = std::move(pc.entries);
  return true;
}

struct Memo {
  bool loaded = false;
  std::string path;
  ParsedCache pc;
};

Mutex g_memo_mu;
Memo g_memo LDLA_GUARDED_BY(g_memo_mu);

void count_hit() {
  LDLA_METRICS_ONLY(
      static metrics::Counter& c = metrics::counter(
          "ldla_tune_cache_hits_total",
          "tuning-cache lookups answered from the persistent file");
      c.inc();)
}

void count_miss() {
  LDLA_METRICS_ONLY(
      static metrics::Counter& c = metrics::counter(
          "ldla_tune_cache_misses_total",
          "tuning-cache lookups that fell through to re-tuning");
      c.inc();)
}

}  // namespace

std::string tune_cache_cpu_signature() {
  const CpuInfo& ci = cpu_info();
  const CpuFeatures& f = ci.features;
  std::string sig = ci.brand;
  sig += "|feat=";
  const bool flags[] = {f.popcnt, f.sse42,    f.ssse3,          f.avx2,
                        f.avx512f, f.avx512bw, f.avx512vpopcntdq};
  for (bool b : flags) sig += b ? '1' : '0';
  char buf[128];
  std::snprintf(buf, sizeof(buf), "|l1d=%zu,l2=%zu,l3=%zu,line=%zu",
                ci.cache.l1d, ci.cache.l2, ci.cache.l3, ci.cache.line);
  sig += buf;
  return sig;
}

std::size_t tune_shape_bucket(std::size_t k_words) {
  if (k_words == 0) return 0;
  return static_cast<std::size_t>(std::bit_width(k_words - 1));
}

std::string tune_cache_path() {
  const char* env = std::getenv("LDLA_TUNE_CACHE");
  return env != nullptr ? std::string(env) : std::string();
}

std::optional<TuneCacheEntry> tune_cache_lookup_at(const std::string& path,
                                                   std::size_t k_words) {
  ParsedCache pc;
  if (!load_for_this_cpu(path, pc)) return std::nullopt;
  const auto it = pc.entries.find(bucket_key(k_words));
  if (it == pc.entries.end()) return std::nullopt;
  return it->second;
}

bool tune_cache_store_at(const std::string& path, std::size_t k_words,
                         const TuneCacheEntry& entry) {
  ParsedCache pc;
  load_for_this_cpu(path, pc);  // corrupt/foreign files are overwritten
  const std::string key = bucket_key(k_words);
  const auto it = pc.entries.find(key);
  if (it != pc.entries.end() && it->second.variant == entry.variant &&
      it->second.kc_words == entry.kc_words && it->second.mc == entry.mc) {
    return true;  // identical decision already persisted: keep bytes stable
  }
  pc.entries[key] = entry;
  return write_whole_file(path, render_cache(pc));
}

std::optional<TuneCacheEntry> tune_cache_lookup(std::size_t k_words) {
  const std::string path = tune_cache_path();
  if (path.empty()) return std::nullopt;
  MutexLock lock(g_memo_mu);
  if (!g_memo.loaded || g_memo.path != path) {
    load_for_this_cpu(path, g_memo.pc);
    g_memo.path = path;
    g_memo.loaded = true;
  }
  const auto it = g_memo.pc.entries.find(bucket_key(k_words));
  if (it == g_memo.pc.entries.end()) {
    count_miss();
    return std::nullopt;
  }
  count_hit();
  return it->second;
}

void tune_cache_store(std::size_t k_words, const TuneCacheEntry& entry) {
  const std::string path = tune_cache_path();
  if (path.empty()) return;
  MutexLock lock(g_memo_mu);
  tune_cache_store_at(path, k_words, entry);
  // Refresh the memo from the just-written state.
  load_for_this_cpu(path, g_memo.pc);
  g_memo.path = path;
  g_memo.loaded = true;
}

}  // namespace ldla
