// Double-precision GEMM with the same GotoBLAS structure as the popcount
// engine — the "LD is DLA in disguise" control experiment.
//
// The naive DLA route to LD expands the binary matrix G to doubles and
// computes H·Nseq = G·Gᵀ with a conventional dgemm. That is numerically
// identical to the popcount formulation but stores 64x more bits per
// allele and replaces the 1-cycle (AND, POPCNT, ADD) word triple with 64
// FMA lanes' worth of arithmetic. bench_dgemm_comparison measures exactly
// how much the paper's bit-packed semiring buys over this route.
//
// Same operand convention as gemm_count: A is m x k row-major, B is n x k
// row-major, and C[i][j] += sum_k A[i][k] * B[j][k] (an "NT" product).
#pragma once

#include <cstddef>

namespace ldla {

struct DgemmPlan {
  std::size_t mr = 4;
  std::size_t nr = 8;
  std::size_t kc = 256;
  std::size_t mc = 128;
  std::size_t nc = 4096;
};

/// C (m x n, row-major, leading dimension ldc) += A · Bᵀ.
void dgemm_nt(std::size_t m, std::size_t n, std::size_t k, const double* a,
              std::size_t lda, const double* b, std::size_t ldb, double* c,
              std::size_t ldc, const DgemmPlan& plan = {});

}  // namespace ldla
