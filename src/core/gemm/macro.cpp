#include "core/gemm/macro.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <optional>
#include <thread>

#include "core/gemm/fused_tile.hpp"
#include "core/gemm/kernel.hpp"
#include "core/gemm/packing.hpp"
#include "core/gemm/tune_cache.hpp"
#include "core/popcount.hpp"
#include "util/aligned_buffer.hpp"
#include "util/contract.hpp"
#include "util/partition.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace ldla {

namespace {

// Unpacked fallback for the packing ablation: same cache blocking, but the
// inner loops read operand rows in place via strided spans.
void gemm_count_unpacked(const BitMatrixView& a, const BitMatrixView& b,
                         CountMatrixRef c, const GemmPlan& plan) {
  const std::size_t m = a.n_snps;
  const std::size_t n = b.n_snps;
  const std::size_t k = a.n_words;
  const PopcountMethod pm = plan.arch == KernelArch::kSwar
                                ? PopcountMethod::kSwar
                                : PopcountMethod::kHardware;
  for (std::size_t jc = 0; jc < n; jc += plan.nc) {
    const std::size_t ncb = std::min(plan.nc, n - jc);
    for (std::size_t pc = 0; pc < k; pc += plan.kc_words) {
      const std::size_t kcb = std::min(plan.kc_words, k - pc);
      for (std::size_t ic = 0; ic < m; ic += plan.mc) {
        const std::size_t mcb = std::min(plan.mc, m - ic);
        LDLA_TRACE_SPAN(kKernel);
        // No micro-kernel here: the ablation streams row pairs in place.
        LDLA_TRACE_ADD_KERNEL(0, static_cast<std::uint64_t>(mcb * ncb * kcb));
        for (std::size_t j = 0; j < ncb; ++j) {
          const std::uint64_t* rb = b.row(jc + j) + pc;
          for (std::size_t i = 0; i < mcb; ++i) {
            const std::uint64_t* ra = a.row(ic + i) + pc;
            c.at(ic + i, jc + j) += static_cast<std::uint32_t>(
                popcount_and({ra, kcb}, {rb, kcb}, pm));
          }
        }
      }
    }
  }
}

// Do the two views alias the same packed rows? (One PackedBitMatrix can
// then serve both operand sides.)
bool same_operand(const BitMatrixView& a, const BitMatrixView& b) {
  return a.data == b.data && a.n_snps == b.n_snps &&
         a.stride_words == b.stride_words;
}

}  // namespace

GemmPlan gemm_plan_for(const BitMatrixView& a, const GemmConfig& cfg) {
  return resolve_plan(cfg, a.n_words);
}

void gemm_count(const BitMatrixView& a, const BitMatrixView& b,
                CountMatrixRef c, const GemmConfig& cfg) {
  if (a.empty() || b.empty()) return;
  LDLA_EXPECT(a.n_words == b.n_words,
              "operands disagree on words per SNP (different sample sets?)");
  LDLA_EXPECT(c.rows >= a.n_snps && c.cols >= b.n_snps,
              "output matrix is too small");
  LDLA_EXPECT(c.ld >= c.cols, "output leading dimension too small");

  const GemmPlan plan = resolve_plan(cfg, a.n_words);
  if (!plan.packing) {
    gemm_count_unpacked(a, b, c, plan);
    return;
  }
  if (cfg.pack_once) {
    const bool same = same_operand(a, b);
    const PackedBitMatrix pa(a, plan,
                             same ? PackSides::kBoth : PackSides::kA);
    std::optional<PackedBitMatrix> pb;
    if (!same) pb.emplace(b, plan, PackSides::kB);
    gemm_count_packed(pa, 0, a.n_snps, same ? pa : *pb, 0, b.n_snps, c);
    return;
  }

  const KernelInfo& kern = kernel_for_plan(plan);
  const std::size_t mr = plan.mr;
  const std::size_t nr = plan.nr;
  const std::size_t ku = plan.ku;
  const std::size_t m = a.n_snps;
  const std::size_t n = b.n_snps;
  const std::size_t k = a.n_words;

  const std::size_t mc = std::min(plan.mc, (m + mr - 1) / mr * mr);
  const std::size_t nc = std::min(plan.nc, (n + nr - 1) / nr * nr);
  const std::size_t kc = std::min(plan.kc_words, (k + ku - 1) / ku * ku);

  AlignedBuffer<std::uint64_t> a_pack(packed_panel_words(mc, kc, mr, ku));
  AlignedBuffer<std::uint64_t> b_pack(packed_panel_words(nc, kc, nr, ku));

  // Loop 5 (jc): B column panels, packed once per (jc, pc) and reused
  // across every A block — the L3-resident operand.
  for (std::size_t jc = 0; jc < n; jc += nc) {
    const std::size_t ncb = std::min(nc, n - jc);
    // Loop 4 (pc): rank-kc updates. For genomic matrices k is small, so
    // this usually runs a handful of iterations (the paper's rank-k shape).
    for (std::size_t pc = 0; pc < k; pc += kc) {
      const std::size_t kcb = std::min(kc, k - pc);
      const std::size_t kcb_padded = (kcb + ku - 1) / ku * ku;
      const PackedPanelView b_panel = [&] {
        LDLA_TRACE_SPAN(kPackB);
        return pack_panel_view(b, jc, ncb, pc, kcb, nr, ku, b_pack.data());
      }();

      // Loop 3 (ic): A row blocks — the L2-resident packed operand.
      for (std::size_t ic = 0; ic < m; ic += mc) {
        const std::size_t mcb = std::min(mc, m - ic);
        const PackedPanelView a_panel = [&] {
          LDLA_TRACE_SPAN(kPackA);
          return pack_panel_view(a, ic, mcb, pc, kcb, mr, ku, a_pack.data());
        }();

        LDLA_TRACE_SPAN(kKernel);
        const std::uint64_t block_calls = static_cast<std::uint64_t>(
            ((ncb + nr - 1) / nr) * ((mcb + mr - 1) / mr));
        LDLA_TRACE_ADD_KERNEL(
            block_calls,
            block_calls * static_cast<std::uint64_t>(mr * nr * kcb_padded));
        // Macro-kernel: loops 2 and 1 over register tiles.
        for (std::size_t jr = 0; jr < ncb; jr += nr) {
          const std::uint64_t* bp = b_panel.sliver(jr / nr);
          const std::size_t nrb = std::min(nr, ncb - jr);
          for (std::size_t ir = 0; ir < mcb; ir += mr) {
            const std::uint64_t* ap = a_panel.sliver(ir / mr);
            const std::size_t mrb = std::min(mr, mcb - ir);
            LDLA_ASSERT_ALIGNED(ap, 8);
            LDLA_ASSERT_ALIGNED(bp, 8);
            if (mrb == mr && nrb == nr) {
              kern.fn(kcb_padded, ap, bp, &c.at(ic + ir, jc + jr), c.ld);
            } else {
              // Edge tile: compute into a zeroed temporary, copy the valid
              // region out (padded rows are zero so the extra work is nil).
              std::uint32_t tile[16 * 16];
              LDLA_ASSERT(mr * nr <= 256);
              std::memset(tile, 0, mr * nr * sizeof(std::uint32_t));
              kern.fn(kcb_padded, ap, bp, tile, nr);
              for (std::size_t i = 0; i < mrb; ++i) {
                for (std::size_t j = 0; j < nrb; ++j) {
                  c.at(ic + ir + i, jc + jr + j) += tile[i * nr + j];
                }
              }
            }
          }
        }
      }
    }
  }
}


void gemm_count_packed(const PackedBitMatrix& a, std::size_t a_begin,
                       std::size_t a_end, const PackedBitMatrix& b,
                       std::size_t b_begin, std::size_t b_end,
                       CountMatrixRef c) {
  LDLA_EXPECT(a_begin <= a_end && a_end <= a.snps(),
              "A row range out of range");
  LDLA_EXPECT(b_begin <= b_end && b_end <= b.snps(),
              "B row range out of range");
  const std::size_t m = a_end - a_begin;
  const std::size_t n = b_end - b_begin;
  if (m == 0 || n == 0) return;
  LDLA_EXPECT(a.has_a_side(), "A operand was packed without an A side");
  LDLA_EXPECT(b.has_b_side(), "B operand was packed without a B side");
  const GemmPlan& plan = a.plan();
  const GemmPlan& bplan = b.plan();
  LDLA_EXPECT(plan.arch == bplan.arch && plan.mr == bplan.mr &&
                  plan.nr == bplan.nr && plan.ku == bplan.ku &&
                  a.kc_words() == b.kc_words() &&
                  a.words_per_snp() == b.words_per_snp(),
              "packed operands were built for incompatible plans");
  LDLA_EXPECT(c.rows >= m && c.cols >= n, "output matrix is too small");
  LDLA_EXPECT(c.ld >= c.cols, "output leading dimension too small");

  const KernelInfo& kern = kernel_for_plan(plan);
  const std::size_t mr = plan.mr;
  const std::size_t nr = plan.nr;
  // resolve_plan rounds mc/nc to register-tile multiples, so cache-block
  // boundaries stay sliver-aligned when walked from a sliver-aligned start.
  const std::size_t mc = plan.mc;
  const std::size_t nc = plan.nc;

  // Snap the range starts down to sliver boundaries: the leading partial
  // tiles are handled exactly like trailing edge tiles (compute the whole
  // sliver, copy out only the in-range rows/columns).
  const std::size_t ic0 = a_begin / mr * mr;
  const std::size_t jc0 = b_begin / nr * nr;
  const std::size_t a_pad_end = (a_end + mr - 1) / mr * mr;
  const std::size_t b_pad_end = (b_end + nr - 1) / nr * nr;

  for (std::size_t jc = jc0; jc < b_end; jc += nc) {
    const std::size_t jc_end = std::min(jc + nc, b_pad_end);
    for (std::size_t p = 0; p < a.panels(); ++p) {
      const std::size_t kcp = a.panel_kc_padded(p);
      const PackedPanelView b_panel =
          b.b_panel(p, jc / nr, (jc_end - jc) / nr);
      for (std::size_t ic = ic0; ic < a_end; ic += mc) {
        const std::size_t ic_end = std::min(ic + mc, a_pad_end);
        const PackedPanelView a_panel =
            a.a_panel(p, ic / mr, (ic_end - ic) / mr);

        LDLA_TRACE_SPAN(kKernel);
        const std::uint64_t block_calls = static_cast<std::uint64_t>(
            ((jc_end - jc) / nr) * ((ic_end - ic) / mr));
        LDLA_TRACE_ADD_KERNEL(
            block_calls, block_calls * static_cast<std::uint64_t>(mr * nr * kcp));
        for (std::size_t jr = jc; jr < jc_end; jr += nr) {
          const std::uint64_t* bp = b_panel.sliver((jr - jc) / nr);
          const std::size_t j_lo = std::max(jr, b_begin);
          const std::size_t j_hi = std::min(jr + nr, b_end);
          for (std::size_t ir = ic; ir < ic_end; ir += mr) {
            const std::uint64_t* ap = a_panel.sliver((ir - ic) / mr);
            const std::size_t i_lo = std::max(ir, a_begin);
            const std::size_t i_hi = std::min(ir + mr, a_end);
            LDLA_ASSERT_ALIGNED(ap, 8);
            LDLA_ASSERT_ALIGNED(bp, 8);
            if (i_lo == ir && i_hi == ir + mr && j_lo == jr &&
                j_hi == jr + nr) {
              kern.fn(kcp, ap, bp, &c.at(ir - a_begin, jr - b_begin), c.ld);
            } else {
              // Range-boundary tile: compute whole sliver pair into a
              // temporary, copy out only the intersection with the range.
              std::uint32_t tile[16 * 16];
              LDLA_ASSERT(mr * nr <= 256);
              std::memset(tile, 0, mr * nr * sizeof(std::uint32_t));
              kern.fn(kcp, ap, bp, tile, nr);
              for (std::size_t i = i_lo; i < i_hi; ++i) {
                for (std::size_t j = j_lo; j < j_hi; ++j) {
                  c.at(i - a_begin, j - b_begin) +=
                      tile[(i - ir) * nr + (j - jr)];
                }
              }
            }
          }
        }
      }
    }
  }
}

void gemm_count_fused(const PackedBitMatrix& a, std::size_t a_begin,
                      std::size_t a_end, const PackedBitMatrix& b,
                      std::size_t b_begin, std::size_t b_end,
                      const CountTileSink& sink) {
  LDLA_EXPECT(a_begin <= a_end && a_end <= a.snps(),
              "A row range out of range");
  LDLA_EXPECT(b_begin <= b_end && b_end <= b.snps(),
              "B row range out of range");
  LDLA_EXPECT(sink != nullptr, "fused driver needs a tile sink");
  if (a_begin == a_end || b_begin == b_end) return;
  LDLA_EXPECT(a.has_a_side(), "A operand was packed without an A side");
  LDLA_EXPECT(b.has_b_side(), "B operand was packed without a B side");
  const GemmPlan& plan = a.plan();
  const GemmPlan& bplan = b.plan();
  LDLA_EXPECT(plan.arch == bplan.arch && plan.mr == bplan.mr &&
                  plan.nr == bplan.nr && plan.ku == bplan.ku &&
                  a.kc_words() == b.kc_words() &&
                  a.words_per_snp() == b.words_per_snp(),
              "packed operands were built for incompatible plans");

  const KernelInfo& kern = kernel_for_plan(plan);
  const std::size_t mr = plan.mr;
  const std::size_t nr = plan.nr;
  const std::size_t mc = plan.mc;
  const std::size_t nc = plan.nc;

  const std::size_t ic0 = a_begin / mr * mr;
  const std::size_t jc0 = b_begin / nr * nr;
  const std::size_t a_pad_end = (a_end + mr - 1) / mr * mr;
  const std::size_t b_pad_end = (b_end + nr - 1) / nr * nr;

  // Tile-local count scratch: the whole (sliver-rounded) cache tile lives
  // here, so every micro-kernel writes full slivers and no edge temporary
  // is needed; the in-range window is sliced out for the sink.
  AlignedBuffer<std::uint32_t> scratch(
      std::min(mc, a_pad_end - ic0) * std::min(nc, b_pad_end - jc0));

  for (std::size_t jc = jc0; jc < b_end; jc += nc) {
    const std::size_t jc_end = std::min(jc + nc, b_pad_end);
    for (std::size_t ic = ic0; ic < a_end; ic += mc) {
      const std::size_t ic_end = std::min(ic + mc, a_pad_end);
      detail::fused_gemm_tile(a, b, kern, mr, nr, ic, ic_end, jc, jc_end,
                              a_begin, a_end, b_begin, b_end, scratch.data(),
                              std::min(nc, b_pad_end - jc0), sink);
    }
  }
}

void gemm_count_parallel(const BitMatrixView& a, const BitMatrixView& b,
                         CountMatrixRef c, const GemmConfig& cfg,
                         unsigned threads) {
  if (a.empty() || b.empty()) return;
  LDLA_EXPECT(a.n_words == b.n_words,
              "operands disagree on words per SNP (different sample sets?)");
  LDLA_EXPECT(c.rows >= a.n_snps && c.cols >= b.n_snps,
              "output matrix is too small");
  if (threads == 0) {
    threads = default_thread_count();
  }
  if (threads == 1 || a.n_snps < 2) {
    gemm_count(a, b, c, cfg);
    return;
  }

  const std::vector<Range> ranges = split_uniform(a.n_snps, threads);
  const GemmPlan plan = resolve_plan(cfg, a.n_words);
  if (plan.packing && cfg.pack_once) {
    // Pack once (as a team), share the immutable slivers across every
    // worker — this removes the historical per-thread duplicate B pack.
    const bool same = same_operand(a, b);
    const PackedBitMatrix pa(a, plan, same ? PackSides::kBoth : PackSides::kA,
                             threads);
    std::optional<PackedBitMatrix> pb_store;
    if (!same) pb_store.emplace(b, plan, PackSides::kB, threads);
    const PackedBitMatrix& pb = same ? pa : *pb_store;
    global_pool().run_tasks(ranges.size(), [&](std::size_t t) {
      const Range r = ranges[t];
      CountMatrixRef out{c.data + r.begin * c.ld, r.size(), c.cols, c.ld};
      gemm_count_packed(pa, r.begin, r.end, pb, 0, b.n_snps, out);
    });
  } else {
    global_pool().run_tasks(ranges.size(), [&](std::size_t t) {
      const Range r = ranges[t];
      BitMatrixView slice = a;
      slice.data = a.data + r.begin * a.stride_words;
      slice.n_snps = r.size();
      CountMatrixRef out{c.data + r.begin * c.ld, r.size(), c.cols, c.ld};
      gemm_count(slice, b, out, cfg);
    });
  }
}

namespace {

/// Candidate variants for the joint tuner. A forced family restricts the
/// search to its own grid; kAuto searches every runnable variant except
/// the ablation-artifact families (strawman, swar), which exist to be
/// measured against, not to win.
std::vector<const KernelInfo*> tuner_candidates(const GemmConfig& base) {
  std::vector<const KernelInfo*> out;
  for (const KernelInfo* k : available_kernel_variants()) {
    if (base.arch != KernelArch::kAuto) {
      if (k->arch != base.arch) continue;
    } else if (k->arch == KernelArch::kStrawman ||
               k->arch == KernelArch::kSwar) {
      continue;
    }
    out.push_back(k);
  }
  return out;
}

}  // namespace

GemmConfig tune_gemm_config(const BitMatrixView& sample,
                            const GemmConfig& base) {
  GemmConfig best = base;
  if (sample.n_snps == 0 || sample.n_words == 0) return best;

  // A cached decision short-circuits the whole sweep — and, because a hit
  // writes nothing, back-to-back tuned runs leave the cache file
  // byte-identical. Only re-tunable configs participate: the tuner varies
  // exactly {variant, kc, mc}, so any of those forced means the caller
  // wants what it asked for.
  const bool cacheable = base.arch == KernelArch::kAuto && base.mr == 0 &&
                         base.nr == 0 && base.ku == 0 && base.kc_words == 0 &&
                         base.mc == 0 && base.blocking && base.packing;
  if (cacheable) {
    if (const auto hit = tune_cache_lookup(sample.n_words)) {
      const KernelInfo* k = find_kernel(hit->variant);
      if (k != nullptr && kernel_available(k->arch)) {
        best.arch = k->arch;
        best.mr = k->mr;
        best.nr = k->nr;
        best.ku = k->ku;
        best.kc_words = hit->kc_words;
        best.mc = hit->mc;
        return best;
      }
    }
  }

  // A problem-shaped probe: up to 128 rows of the sample against itself.
  BitMatrixView probe = sample;
  probe.n_snps = std::min<std::size_t>(probe.n_snps, 128);
  CountMatrix c(probe.n_snps, probe.n_snps);

  const auto time_cfg = [&](const GemmConfig& cfg) {
    double fastest = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 2; ++rep) {
      c.zero();
      Timer t;
      gemm_count(probe, probe, c.ref(), cfg);
      fastest = std::min(fastest, t.seconds());
    }
    return fastest;
  };

  const auto variant_cfg = [&](const KernelInfo* k) {
    GemmConfig cfg = base;
    cfg.arch = k->arch;
    cfg.mr = k->mr;
    cfg.nr = k->nr;
    cfg.ku = k->ku;
    return cfg;
  };

  // Stage 1: rank every candidate variant at its default blocking and keep
  // the top few — blocking moves times by tens of percent, variant choice
  // by integer factors, so the survivors always contain the joint winner.
  struct Scored {
    const KernelInfo* k;
    double t;
  };
  std::vector<Scored> scored;
  for (const KernelInfo* k : tuner_candidates(base)) {
    scored.push_back({k, time_cfg(variant_cfg(k))});
  }
  if (scored.empty()) return best;
  std::sort(scored.begin(), scored.end(),
            [](const Scored& x, const Scored& y) { return x.t < y.t; });
  if (scored.size() > 4) scored.resize(4);

  // Stage 2: joint (variant × kc × mc) grid on the survivors.
  double best_time = std::numeric_limits<double>::infinity();
  for (const Scored& s : scored) {
    for (const std::size_t kc : {64u, 128u, 256u, 512u}) {
      for (const std::size_t mc : {32u, 64u, 128u, 256u}) {
        GemmConfig cfg = variant_cfg(s.k);
        cfg.kc_words = kc;
        cfg.mc = mc;
        const double t = time_cfg(cfg);
        if (t < best_time) {
          best_time = t;
          best = cfg;
        }
      }
    }
  }

  if (cacheable) {
    const KernelInfo* k = find_kernel(best.arch, best.mr, best.nr, best.ku);
    if (k != nullptr) {
      tune_cache_store(sample.n_words,
                       TuneCacheEntry{k->name, best.kc_words, best.mc});
    }
  }
  return best;
}

}  // namespace ldla
