#include "core/gemm/macro.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <thread>

#include "core/gemm/kernel.hpp"
#include "core/gemm/packing.hpp"
#include "core/popcount.hpp"
#include "util/aligned_buffer.hpp"
#include "util/contract.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace ldla {

namespace {

// Unpacked fallback for the packing ablation: same cache blocking, but the
// inner loops read operand rows in place via strided spans.
void gemm_count_unpacked(const BitMatrixView& a, const BitMatrixView& b,
                         CountMatrixRef c, const GemmPlan& plan) {
  const std::size_t m = a.n_snps;
  const std::size_t n = b.n_snps;
  const std::size_t k = a.n_words;
  const PopcountMethod pm = plan.arch == KernelArch::kSwar
                                ? PopcountMethod::kSwar
                                : PopcountMethod::kHardware;
  for (std::size_t jc = 0; jc < n; jc += plan.nc) {
    const std::size_t ncb = std::min(plan.nc, n - jc);
    for (std::size_t pc = 0; pc < k; pc += plan.kc_words) {
      const std::size_t kcb = std::min(plan.kc_words, k - pc);
      for (std::size_t ic = 0; ic < m; ic += plan.mc) {
        const std::size_t mcb = std::min(plan.mc, m - ic);
        for (std::size_t j = 0; j < ncb; ++j) {
          const std::uint64_t* rb = b.row(jc + j) + pc;
          for (std::size_t i = 0; i < mcb; ++i) {
            const std::uint64_t* ra = a.row(ic + i) + pc;
            c.at(ic + i, jc + j) += static_cast<std::uint32_t>(
                popcount_and({ra, kcb}, {rb, kcb}, pm));
          }
        }
      }
    }
  }
}

}  // namespace

GemmPlan gemm_plan_for(const BitMatrixView& a, const GemmConfig& cfg) {
  return resolve_plan(cfg, a.n_words);
}

void gemm_count(const BitMatrixView& a, const BitMatrixView& b,
                CountMatrixRef c, const GemmConfig& cfg) {
  if (a.empty() || b.empty()) return;
  LDLA_EXPECT(a.n_words == b.n_words,
              "operands disagree on words per SNP (different sample sets?)");
  LDLA_EXPECT(c.rows >= a.n_snps && c.cols >= b.n_snps,
              "output matrix is too small");
  LDLA_EXPECT(c.ld >= c.cols, "output leading dimension too small");

  const GemmPlan plan = resolve_plan(cfg, a.n_words);
  if (!plan.packing) {
    gemm_count_unpacked(a, b, c, plan);
    return;
  }

  const KernelInfo& kern = kernel_info(plan.arch);
  const std::size_t mr = plan.mr;
  const std::size_t nr = plan.nr;
  const std::size_t ku = plan.ku;
  const std::size_t m = a.n_snps;
  const std::size_t n = b.n_snps;
  const std::size_t k = a.n_words;

  const std::size_t mc = std::min(plan.mc, (m + mr - 1) / mr * mr);
  const std::size_t nc = std::min(plan.nc, (n + nr - 1) / nr * nr);
  const std::size_t kc = std::min(plan.kc_words, (k + ku - 1) / ku * ku);

  AlignedBuffer<std::uint64_t> a_pack(packed_panel_words(mc, kc, mr, ku));
  AlignedBuffer<std::uint64_t> b_pack(packed_panel_words(nc, kc, nr, ku));

  // Loop 5 (jc): B column panels, packed once per (jc, pc) and reused
  // across every A block — the L3-resident operand.
  for (std::size_t jc = 0; jc < n; jc += nc) {
    const std::size_t ncb = std::min(nc, n - jc);
    // Loop 4 (pc): rank-kc updates. For genomic matrices k is small, so
    // this usually runs a handful of iterations (the paper's rank-k shape).
    for (std::size_t pc = 0; pc < k; pc += kc) {
      const std::size_t kcb = std::min(kc, k - pc);
      const std::size_t kcb_padded = (kcb + ku - 1) / ku * ku;
      const PackedPanelView b_panel =
          pack_panel_view(b, jc, ncb, pc, kcb, nr, ku, b_pack.data());

      // Loop 3 (ic): A row blocks — the L2-resident packed operand.
      for (std::size_t ic = 0; ic < m; ic += mc) {
        const std::size_t mcb = std::min(mc, m - ic);
        const PackedPanelView a_panel =
            pack_panel_view(a, ic, mcb, pc, kcb, mr, ku, a_pack.data());

        // Macro-kernel: loops 2 and 1 over register tiles.
        for (std::size_t jr = 0; jr < ncb; jr += nr) {
          const std::uint64_t* bp = b_panel.sliver(jr / nr);
          const std::size_t nrb = std::min(nr, ncb - jr);
          for (std::size_t ir = 0; ir < mcb; ir += mr) {
            const std::uint64_t* ap = a_panel.sliver(ir / mr);
            const std::size_t mrb = std::min(mr, mcb - ir);
            LDLA_ASSERT_ALIGNED(ap, 8);
            LDLA_ASSERT_ALIGNED(bp, 8);
            if (mrb == mr && nrb == nr) {
              kern.fn(kcb_padded, ap, bp, &c.at(ic + ir, jc + jr), c.ld);
            } else {
              // Edge tile: compute into a zeroed temporary, copy the valid
              // region out (padded rows are zero so the extra work is nil).
              std::uint32_t tile[16 * 16];
              LDLA_ASSERT(mr * nr <= 256);
              std::memset(tile, 0, mr * nr * sizeof(std::uint32_t));
              kern.fn(kcb_padded, ap, bp, tile, nr);
              for (std::size_t i = 0; i < mrb; ++i) {
                for (std::size_t j = 0; j < nrb; ++j) {
                  c.at(ic + ir + i, jc + jr + j) += tile[i * nr + j];
                }
              }
            }
          }
        }
      }
    }
  }
}


void gemm_count_parallel(const BitMatrixView& a, const BitMatrixView& b,
                         CountMatrixRef c, const GemmConfig& cfg,
                         unsigned threads) {
  if (a.empty() || b.empty()) return;
  LDLA_EXPECT(c.rows >= a.n_snps && c.cols >= b.n_snps,
              "output matrix is too small");
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  if (threads == 1 || a.n_snps < 2) {
    gemm_count(a, b, c, cfg);
    return;
  }

  ThreadPool pool(threads);
  pool.parallel_for(0, a.n_snps, [&](std::size_t lo, std::size_t hi) {
    BitMatrixView slice = a;
    slice.data = a.data + lo * a.stride_words;
    slice.n_snps = hi - lo;
    CountMatrixRef out{c.data + lo * c.ld, hi - lo, c.cols, c.ld};
    gemm_count(slice, b, out, cfg);
  });
}

GemmConfig tune_gemm_config(const BitMatrixView& sample,
                            const GemmConfig& base) {
  GemmConfig best = base;
  if (sample.n_snps == 0 || sample.n_words == 0) return best;

  // A problem-shaped probe: up to 128 rows of the sample against itself.
  BitMatrixView probe = sample;
  probe.n_snps = std::min<std::size_t>(probe.n_snps, 128);
  CountMatrix c(probe.n_snps, probe.n_snps);

  double best_time = std::numeric_limits<double>::infinity();
  for (const std::size_t kc : {64u, 128u, 256u, 512u}) {
    for (const std::size_t mc : {32u, 64u, 128u, 256u}) {
      GemmConfig cfg = base;
      cfg.kc_words = kc;
      cfg.mc = mc;
      double fastest = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < 2; ++rep) {
        c.zero();
        Timer t;
        gemm_count(probe, probe, c.ref(), cfg);
        fastest = std::min(fastest, t.seconds());
      }
      if (fastest < best_time) {
        best_time = fastest;
        best = cfg;
      }
    }
  }
  return best;
}

}  // namespace ldla
