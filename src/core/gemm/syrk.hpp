// Symmetric (SYRK-like) count driver: H·Nseq = GᵀG for a single genomic
// matrix, exploiting  POPCNT(s_i & s_j) = POPCNT(s_j & s_i)  to compute only
// register tiles that touch the lower triangle, then mirroring.
#pragma once

#include "core/bit_matrix.hpp"
#include "core/gemm/config.hpp"
#include "core/gemm/count_matrix.hpp"

namespace ldla {

/// Fill the full symmetric count matrix (both triangles and the diagonal;
/// C[i][i] is the derived-allele count of SNP i). C must be n x n where
/// n = a.n_snps, and is overwritten (not accumulated).
void syrk_count(const BitMatrixView& a, CountMatrixRef c,
                const GemmConfig& cfg = {});

}  // namespace ldla
