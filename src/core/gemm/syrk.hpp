// Symmetric (SYRK-like) count driver: H·Nseq = GᵀG for a single genomic
// matrix, exploiting  POPCNT(s_i & s_j) = POPCNT(s_j & s_i)  to compute only
// register tiles that touch the lower triangle, then mirroring.
#pragma once

#include "core/bit_matrix.hpp"
#include "core/gemm/config.hpp"
#include "core/gemm/count_matrix.hpp"
#include "core/gemm/macro.hpp"
#include "core/gemm/packed_bit_matrix.hpp"

namespace ldla {

/// Fill the symmetric count matrix (C[i][i] is the derived-allele count of
/// SNP i). C must be n x n where n = a.n_snps, and is overwritten (not
/// accumulated). With triangular_only only the lower triangle and diagonal
/// are guaranteed valid (the upper triangle is unspecified) — consumers
/// that read C(i, j) with i >= j only skip the mirror pass entirely.
/// cfg.pack_once (default) packs the operand whole — once for both sides
/// when mr == nr — and runs the packed driver; pack_once = false is the
/// original per-block fresh-pack path.
void syrk_count(const BitMatrixView& a, CountMatrixRef c,
                const GemmConfig& cfg = {}, bool triangular_only = false);

/// Symmetric count over rows [row_begin, row_end) of a pre-packed operand
/// (needs both A and B sides). C is local: entry (i - row_begin,
/// j - row_begin), overwritten. The range may start anywhere; windowed
/// consumers (ω windows, haplotype blocks) slice one persistent packed
/// copy instead of gathering and re-packing each window.
void syrk_count_packed(const PackedBitMatrix& a, std::size_t row_begin,
                       std::size_t row_end, CountMatrixRef c,
                       bool triangular_only = false);

/// Fused variant of syrk_count_packed: the panel loop runs innermost per
/// cache tile, and each finalized tile is handed to `sink` from tile-local
/// scratch — no count matrix is materialized (peak intermediate storage is
/// O(mc·nc)). Tiles cover the cache-tile grid over [row_begin, row_end)²
/// restricted to tiles touching the lower triangle; within a delivered
/// tile only entries with global col <= row are specified (register tiles
/// strictly above the diagonal are skipped and read as zero). Each
/// lower-triangle element appears in exactly one tile.
void syrk_count_fused(const PackedBitMatrix& a, std::size_t row_begin,
                      std::size_t row_end, const CountTileSink& sink);

/// Mirror the lower triangle of the leading n x n block of `c` into the
/// upper triangle, cache-blocked so the column-strided writes of the naive
/// row-major transpose loop stay resident.
void mirror_lower_to_upper(CountMatrixRef c, std::size_t n);

}  // namespace ldla
