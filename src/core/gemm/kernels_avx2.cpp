// AVX2 micro-kernels, compiled with -mavx2.
//
// avx2_2x4   — the best software-SIMD kernel available before a hardware
//              vectorized popcount existed: AND in SIMD, PSHUFB nibble
//              popcount, SAD reduction. Shuffle-port bound; the paper's
//              Section V analysis predicts (and our benches confirm) only a
//              modest gain over scalar despite 4x wider data paths.
// strawman_2x4 — the exact instruction sequence Section V analyzes: SIMD
//              AND, then *extract* each 64-bit lane, scalar POPCNT it, and
//              re-insert for a SIMD add. Extraction serializes on the same
//              ports, so this is no faster than scalar — kept as a
//              measurable artifact of the paper's argument.
#include <immintrin.h>

#include "core/gemm/kernel.hpp"

namespace ldla::kernels {

namespace {

inline __m256i popcount_epi64_pshufb(__m256i v) {
  const __m256i lookup = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                      _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

inline std::uint32_t hsum_epi64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return static_cast<std::uint32_t>(_mm_cvtsi128_si64(s) +
                                    _mm_extract_epi64(s, 1));
}

}  // namespace

void avx2_2x4(std::size_t kc, const std::uint64_t* ap, const std::uint64_t* bp,
              std::uint32_t* c, std::size_t ldc) {
  // ku = 4: each packed entry is a 256-bit chunk (4 words) of one row.
  __m256i c00 = _mm256_setzero_si256();
  __m256i c01 = _mm256_setzero_si256();
  __m256i c02 = _mm256_setzero_si256();
  __m256i c03 = _mm256_setzero_si256();
  __m256i c10 = _mm256_setzero_si256();
  __m256i c11 = _mm256_setzero_si256();
  __m256i c12 = _mm256_setzero_si256();
  __m256i c13 = _mm256_setzero_si256();

  const std::size_t chunks = kc / 4;
  for (std::size_t k = 0; k < chunks; ++k) {
    const __m256i a0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ap));
    const __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ap + 4));
    ap += 8;
    const __m256i b0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + 4));
    const __m256i b2 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + 8));
    const __m256i b3 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + 12));
    bp += 16;

    c00 = _mm256_add_epi64(c00,
                           popcount_epi64_pshufb(_mm256_and_si256(a0, b0)));
    c01 = _mm256_add_epi64(c01,
                           popcount_epi64_pshufb(_mm256_and_si256(a0, b1)));
    c02 = _mm256_add_epi64(c02,
                           popcount_epi64_pshufb(_mm256_and_si256(a0, b2)));
    c03 = _mm256_add_epi64(c03,
                           popcount_epi64_pshufb(_mm256_and_si256(a0, b3)));
    c10 = _mm256_add_epi64(c10,
                           popcount_epi64_pshufb(_mm256_and_si256(a1, b0)));
    c11 = _mm256_add_epi64(c11,
                           popcount_epi64_pshufb(_mm256_and_si256(a1, b1)));
    c12 = _mm256_add_epi64(c12,
                           popcount_epi64_pshufb(_mm256_and_si256(a1, b2)));
    c13 = _mm256_add_epi64(c13,
                           popcount_epi64_pshufb(_mm256_and_si256(a1, b3)));
  }

  c[0 * ldc + 0] += hsum_epi64(c00);
  c[0 * ldc + 1] += hsum_epi64(c01);
  c[0 * ldc + 2] += hsum_epi64(c02);
  c[0 * ldc + 3] += hsum_epi64(c03);
  c[1 * ldc + 0] += hsum_epi64(c10);
  c[1 * ldc + 1] += hsum_epi64(c11);
  c[1 * ldc + 2] += hsum_epi64(c12);
  c[1 * ldc + 3] += hsum_epi64(c13);
}

void strawman_2x4(std::size_t kc, const std::uint64_t* ap,
                  const std::uint64_t* bp, std::uint32_t* c, std::size_t ldc) {
  __m256i acc[2][4];
  for (auto& row : acc) {
    for (auto& v : row) v = _mm256_setzero_si256();
  }

  const std::size_t chunks = kc / 4;
  for (std::size_t k = 0; k < chunks; ++k) {
    const __m256i a[2] = {
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ap)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ap + 4))};
    ap += 8;
    const __m256i b[4] = {
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + 4)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + 8)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + 12))};
    bp += 16;

    for (int i = 0; i < 2; ++i) {
      for (int j = 0; j < 4; ++j) {
        const __m256i v = _mm256_and_si256(a[i], b[j]);
        // The Section V sequence: extract every lane, scalar POPCNT,
        // re-insert, SIMD add.
        const long long p0 = __builtin_popcountll(
            static_cast<unsigned long long>(_mm256_extract_epi64(v, 0)));
        const long long p1 = __builtin_popcountll(
            static_cast<unsigned long long>(_mm256_extract_epi64(v, 1)));
        const long long p2 = __builtin_popcountll(
            static_cast<unsigned long long>(_mm256_extract_epi64(v, 2)));
        const long long p3 = __builtin_popcountll(
            static_cast<unsigned long long>(_mm256_extract_epi64(v, 3)));
        acc[i][j] =
            _mm256_add_epi64(acc[i][j], _mm256_set_epi64x(p3, p2, p1, p0));
      }
    }
  }

  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 4; ++j) {
      c[static_cast<std::size_t>(i) * ldc + static_cast<std::size_t>(j)] +=
          hsum_epi64(acc[i][j]);
    }
  }
}

}  // namespace ldla::kernels
