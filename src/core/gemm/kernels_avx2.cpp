// AVX2 micro-kernels, compiled with -mavx2.
//
// avx2-pshufb-*  — the best software-SIMD family available before a
//              hardware vectorized popcount existed: AND in SIMD, PSHUFB
//              nibble popcount, SAD reduction (kernel_gen.hpp templates,
//              instantiated over the tile grid; the u8 variant doubles the
//              k-unroll). Shuffle-port bound; the paper's Section V
//              analysis predicts (and our benches confirm) only a modest
//              gain over scalar despite 4x wider data paths.
// avx2-harley-seal-* — carry-save-adder compression ahead of the nibble
//              popcount: 4 AND results per stream compress to one PSHUFB
//              lookup, trading shuffle pressure for logic ops. Small tiles
//              only (the 3 counters per stream eat the register file).
// strawman_2x4 — the exact instruction sequence Section V analyzes: SIMD
//              AND, then *extract* each 64-bit lane, scalar POPCNT it, and
//              re-insert for a SIMD add. Extraction serializes on the same
//              ports, so this is no faster than scalar — kept hand-written
//              as a measurable artifact of the paper's argument, not part
//              of the generated family.
#include <immintrin.h>

#include "core/gemm/kernel.hpp"
#include "core/gemm/kernel_gen.hpp"

namespace ldla::kernels {

namespace {

inline std::uint32_t hsum_epi64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return static_cast<std::uint32_t>(_mm_cvtsi128_si64(s) +
                                    _mm_extract_epi64(s, 1));
}

void strawman_2x4(std::size_t kc, const std::uint64_t* ap,
                  const std::uint64_t* bp, std::uint32_t* c, std::size_t ldc) {
  __m256i acc[2][4];
  for (auto& row : acc) {
    for (auto& v : row) v = _mm256_setzero_si256();
  }

  const std::size_t chunks = kc / 4;
  for (std::size_t k = 0; k < chunks; ++k) {
    const __m256i a[2] = {
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ap)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ap + 4))};
    ap += 8;
    const __m256i b[4] = {
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + 4)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + 8)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + 12))};
    bp += 16;

    for (int i = 0; i < 2; ++i) {
      for (int j = 0; j < 4; ++j) {
        const __m256i v = _mm256_and_si256(a[i], b[j]);
        // The Section V sequence: extract every lane, scalar POPCNT,
        // re-insert, SIMD add.
        const long long p0 = __builtin_popcountll(
            static_cast<unsigned long long>(_mm256_extract_epi64(v, 0)));
        const long long p1 = __builtin_popcountll(
            static_cast<unsigned long long>(_mm256_extract_epi64(v, 1)));
        const long long p2 = __builtin_popcountll(
            static_cast<unsigned long long>(_mm256_extract_epi64(v, 2)));
        const long long p3 = __builtin_popcountll(
            static_cast<unsigned long long>(_mm256_extract_epi64(v, 3)));
        acc[i][j] =
            _mm256_add_epi64(acc[i][j], _mm256_set_epi64x(p3, p2, p1, p0));
      }
    }
  }

  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 4; ++j) {
      c[static_cast<std::size_t>(i) * ldc + static_cast<std::size_t>(j)] +=
          hsum_epi64(acc[i][j]);
    }
  }
}

namespace gen = ldla::kernels::gen;

template <std::size_t MR, std::size_t NR, std::size_t CH = 1>
constexpr MicroKernelFn pshufb_fn = &gen::ugemm_avx2_pshufb<MR, NR, CH>;

const KernelInfo kTable[] = {
    {KernelArch::kAvx2, "avx2-pshufb-2x4", 2, 4, 4, pshufb_fn<2, 4>, true},
    {KernelArch::kAvx2, "avx2-pshufb-4x4", 4, 4, 4, pshufb_fn<4, 4>},
    {KernelArch::kAvx2, "avx2-pshufb-2x8", 2, 8, 4, pshufb_fn<2, 8>},
    {KernelArch::kAvx2, "avx2-pshufb-1x8", 1, 8, 4, pshufb_fn<1, 8>},
    {KernelArch::kAvx2, "avx2-pshufb-4x2", 4, 2, 4, pshufb_fn<4, 2>},
    {KernelArch::kAvx2, "avx2-pshufb-2x4u8", 2, 4, 8, pshufb_fn<2, 4, 2>},
    {KernelArch::kAvx2, "avx2-harley-seal-2x2", 2, 2, 16,
     &gen::ugemm_avx2_harley_seal<2, 2>},
    {KernelArch::kAvx2, "avx2-harley-seal-1x4", 1, 4, 16,
     &gen::ugemm_avx2_harley_seal<1, 4>},
    {KernelArch::kStrawman, "simd-extract-strawman-2x4", 2, 4, 4,
     &strawman_2x4, true},
};

}  // namespace

std::span<const KernelInfo> avx2_variants() { return kTable; }

}  // namespace ldla::kernels
