// Streaming LD drivers: pair-grid walk + double-buffered prefetch over a
// ShardStore, fused-epilogue emission identical to core/ld.cpp.

#include "core/ld_stream.hpp"

#include <algorithm>
#include <vector>

#include "core/detail/ld_stats_row.hpp"
#include "core/gemm/macro.hpp"
#include "core/gemm/nest.hpp"
#include "core/gemm/syrk.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace ldla {
namespace {

/// Per-thread epilogue scratch for the nest-mode sinks: tiles arrive
/// concurrently, each thread converts into its own buffer (grown once to
/// the mc·nc bound, then reused for the whole stream).
AlignedBuffer<double>& tile_scratch(std::size_t n) {
  thread_local AlignedBuffer<double> buf;
  if (buf.size() < n) {
    buf = AlignedBuffer<double>(n);
  }
  return buf;
}

/// One shard-pair of the walk: row-side shard r, column-side shard c
/// (r == c with a single store = the diagonal SYRK pair).
struct StreamPair {
  std::size_t r = 0;
  std::size_t c = 0;
};

/// A shard of a specific store (the two-store cross walk mixes them).
using ShardKey = std::pair<ShardStore*, std::size_t>;

/// The residency/overlap engine shared by both drivers. Owns the LRU
/// eviction state and the hit/stall/issued accounting; the caller supplies
/// the pair list and the compute body.
class PairWalker {
 public:
  PairWalker(ShardStore* rs, ShardStore* cs, const StreamOptions& opts)
      : rs_(rs), cs_(cs), opts_(opts) {
    if (opts_.cache_bytes != 0) {
      // Two shards in flight per pair, times two pairs when the double
      // buffer holds the next pair alongside the current one. A budget
      // below this floor could not honor the pin set, so the residency
      // bound would silently degrade to best-effort; reject instead.
      const std::size_t pair_ws =
          rs_->max_shard_bytes() +
          (cs_ == rs_ ? rs_->max_shard_bytes() : cs_->max_shard_bytes());
      const std::size_t floor = (opts_.prefetch ? 2 : 1) * pair_ws;
      LDLA_EXPECT(opts_.cache_bytes >= floor,
                  "stream cache budget below the working set (needs two "
                  "pairs of shards with prefetch, one without)");
      // A warm store (earlier stream, caller-materialized shards) starts
      // with residency this walk did not create; adopt those shards as
      // coldest LRU entries so the budget invariant holds from pair 0.
      for (std::size_t i = 0; i < rs_->shards(); ++i) {
        if (rs_->is_materialized(i)) note_use({rs_, i});
      }
      if (cs_ != rs_) {
        for (std::size_t i = 0; i < cs_->shards(); ++i) {
          if (cs_->is_materialized(i)) note_use({cs_, i});
        }
      }
    }
  }

  void run(const std::vector<StreamPair>& pairs,
           const std::function<void(const StreamPair&, const PackedBitMatrix&,
                                    const PackedBitMatrix&)>& compute) {
    const bool overlap = opts_.threads == 1 && opts_.prefetch;
    for (std::size_t k = 0; k < pairs.size(); ++k) {
      const StreamPair& cur = pairs[k];
      const ShardKey rkey{rs_, cur.r};
      const ShardKey ckey{cs_, cur.c};

      // Pin set for this iteration: the current pair plus — when prefetch
      // will touch them before the next make_room — the next pair. Every
      // shard this iteration materializes (current stalls, overlap
      // prefetches) is pinned, so make_room can reserve exact headroom and
      // the budget holds at every instant, not just between pairs.
      std::vector<ShardKey> pinned{rkey};
      if (ckey != rkey) pinned.push_back(ckey);
      std::vector<ShardKey> next;
      if (opts_.prefetch && k + 1 < pairs.size()) {
        next.push_back({rs_, pairs[k + 1].r});
        const ShardKey nc{cs_, pairs[k + 1].c};
        if (nc != next.front()) next.push_back(nc);
        for (const ShardKey& key : next) {
          if (std::find(pinned.begin(), pinned.end(), key) == pinned.end()) {
            pinned.push_back(key);
          }
        }
      }
      make_room(pinned);

      const PackedBitMatrix& pr = acquire(rkey);
      const PackedBitMatrix& pc = ckey == rkey ? pr : acquire(ckey);

      // Which of the next pair's shards are still cold?
      std::vector<ShardKey> targets;
      for (const ShardKey& key : next) {
        if (!key.first->is_materialized(key.second)) {
          key.first->prefetch(key.second);  // async readahead hint
          LDLA_TRACE_ADD_PREFETCH_ISSUED();
          LDLA_METRICS_ONLY(
              static metrics::Counter& c_issued = metrics::counter(
                  "ldla_stream_prefetch_issued_total",
                  "shard prefetches initiated ahead of need");
              c_issued.inc();)
          targets.push_back(key);
        }
      }

      if (overlap && !targets.empty()) {
        // The double buffer: compute this pair as task 0 while task 1
        // materializes (explicitly faults, under the io phase) the next
        // pair's cold shards on the work-stealing pool. The join makes
        // every prefetched shard a guaranteed hit at the next acquire.
        // The fused compute is sequential here, so the two tasks are the
        // only users of the pool slot pair — safe against the no-nested-
        // run_tasks rule.
        global_pool().run_tasks(2, [&](std::size_t task) {
          if (task == 0) {
            LDLA_METRICS_ONLY(
                static metrics::Histogram& h_compute = metrics::histogram(
                    "ldla_stream_pair_compute_seconds",
                    "per-shard-pair fused compute latency");
                metrics::ScopedLatency metrics_lat(h_compute);)
            compute(cur, pr, pc);
          } else {
            LDLA_METRICS_ONLY(
                static metrics::Histogram& h_mat = metrics::histogram(
                    "ldla_stream_pair_materialize_seconds",
                    "overlapped materialization latency for a pair's cold "
                    "shards");
                metrics::ScopedLatency metrics_lat(h_mat);)
            for (const ShardKey& key : targets) {
              key.first->shard(key.second);
              note_use(key);
            }
          }
        });
      } else {
        // Nest mode (threads != 1): the parallel drivers own the pool, so
        // the madvise hint above is all the lookahead we get; the next
        // acquire will honestly count a stall.
        LDLA_METRICS_ONLY(
            static metrics::Histogram& h_compute = metrics::histogram(
                "ldla_stream_pair_compute_seconds",
                "per-shard-pair fused compute latency");
            metrics::ScopedLatency metrics_lat(h_compute);)
        compute(cur, pr, pc);
      }
    }
  }

 private:
  const PackedBitMatrix& acquire(const ShardKey& key) {
    if (key.first->is_materialized(key.second)) {
      LDLA_TRACE_ADD_PREFETCH_HIT();
      LDLA_METRICS_ONLY(
          static metrics::Counter& c_hits = metrics::counter(
              "ldla_stream_prefetch_hits_total",
              "shard acquisitions served already-materialized");
          c_hits.inc();)
    } else {
      LDLA_TRACE_ADD_PREFETCH_STALL();
      LDLA_METRICS_ONLY(
          static metrics::Counter& c_stalls = metrics::counter(
              "ldla_stream_prefetch_stalls_total",
              "shard acquisitions materialized on the critical path");
          c_stalls.inc();)
    }
    const PackedBitMatrix& pk = key.first->shard(key.second);
    note_use(key);
    return pk;
  }

  void note_use(const ShardKey& key) {
    const auto it = std::find(lru_.begin(), lru_.end(), key);
    if (it != lru_.end()) lru_.erase(it);
    lru_.push_back(key);
  }

  /// Evict cold LRU shards until the budget has room for every pinned
  /// shard that is about to be materialized. The constructor's floor check
  /// guarantees the target is reachable (everything non-pinned is
  /// evictable and the pin set itself fits the budget), which is what
  /// upgrades the residency bound from best-effort to an invariant:
  /// resident_bytes never exceeds cache_bytes at ANY instant of the walk.
  void make_room(const std::vector<ShardKey>& pinned) {
    if (opts_.cache_bytes == 0) return;
    std::size_t reserve = 0;
    for (const ShardKey& key : pinned) {
      if (!key.first->is_materialized(key.second)) {
        reserve += key.first->shard_bytes(key.second);
      }
    }
    const std::size_t target =
        opts_.cache_bytes >= reserve ? opts_.cache_bytes - reserve : 0;
    std::size_t resident = rs_->resident_bytes();
    if (cs_ != rs_) resident += cs_->resident_bytes();
    for (auto it = lru_.begin(); it != lru_.end() && resident > target;) {
      if (std::find(pinned.begin(), pinned.end(), *it) != pinned.end()) {
        ++it;
        continue;
      }
      resident -= it->first->shard_bytes(it->second);
      it->first->release(it->second);
      it = lru_.erase(it);
      LDLA_METRICS_ONLY(
          static metrics::Counter& c_evict = metrics::counter(
              "ldla_stream_evictions_total",
              "LRU shard evictions by the residency budget");
          c_evict.inc();)
    }
    LDLA_METRICS_ONLY(
        static metrics::Gauge& g_resident = metrics::gauge(
            "ldla_stream_resident_bytes",
            "bookkept shard-store residency after make_room");
        g_resident.set(static_cast<std::uint64_t>(resident));)
  }

  ShardStore* rs_;
  ShardStore* cs_;
  const StreamOptions& opts_;
  std::vector<ShardKey> lru_;  ///< front = coldest; mutated on the walk
                               ///< thread and the joined prefetch task only
};

}  // namespace

void ld_matrix_stream(ShardStore& store, const LdStatTileVisitor& visit,
                      const StreamOptions& opts) {
  LDLA_METRICS_ONLY(
      static metrics::Histogram& h_call = metrics::histogram(
          "ldla_stream_seconds",
          "ld_matrix_stream / ld_cross_stream driver call latency");
      metrics::ScopedLatency metrics_lat(h_call);)
  LDLA_EXPECT(visit != nullptr, "stat-tile stream needs a visitor");
  const std::size_t S = store.shards();
  if (S == 0) return;
  const detail::StatTables tables = detail::make_stat_tables_from_counts(
      store.allele_counts(), store.samples());
  const GemmPlan& plan = store.plan();
  const std::size_t scratch_n = plan.mc * plan.nc;
  const bool sequential = opts.threads == 1;
  AlignedBuffer<double> seq_values(sequential ? scratch_n : 0);
  const auto scratch = [&]() -> double* {
    return sequential ? seq_values.data() : tile_scratch(scratch_n).data();
  };

  // Identical arithmetic and trace accounting to ld_stat_scan's fused
  // epilogue, with the tile rebased from shard-local to global indices.
  const auto emit_syrk = [&](std::size_t base, const CountTile& t) {
    double* values = scratch();
    if (t.col_begin + t.cols <= t.row_begin + 1) {
      {
        LDLA_TRACE_SPAN(kEpilogue);
        for (std::size_t i = 0; i < t.rows; ++i) {
          detail::stat_row_shifted(opts.stat, tables, base + t.row_begin + i,
                                   base + t.col_begin, t.row(i), t.cols,
                                   &values[i * t.cols]);
        }
        LDLA_TRACE_ADD_EPILOGUE_ROWS(static_cast<std::uint64_t>(t.rows));
      }
      visit(LdTile{base + t.row_begin, base + t.col_begin, t.rows, t.cols,
                   values, t.cols});
    } else {
      // Diagonal-crossing tile: canonical per-row fragments, as in ld.cpp.
      LDLA_TRACE_SPAN(kEpilogue);
      std::uint64_t rows_converted = 0;
      for (std::size_t i = 0; i < t.rows; ++i) {
        const std::size_t li = t.row_begin + i;
        if (li < t.col_begin) continue;
        const std::size_t width =
            std::min(t.col_begin + t.cols, li + 1) - t.col_begin;
        detail::stat_row_shifted(opts.stat, tables, base + li,
                                 base + t.col_begin, t.row(i), width, values);
        ++rows_converted;
        visit(LdTile{base + li, base + t.col_begin, 1, width, values, width});
      }
      LDLA_TRACE_ADD_EPILOGUE_ROWS(rows_converted);
    }
  };
  const auto emit_gemm = [&](std::size_t rbase, std::size_t cbase,
                             const CountTile& t) {
    double* values = scratch();
    {
      LDLA_TRACE_SPAN(kEpilogue);
      for (std::size_t i = 0; i < t.rows; ++i) {
        detail::stat_row_shifted(opts.stat, tables, rbase + t.row_begin + i,
                                 cbase + t.col_begin, t.row(i), t.cols,
                                 &values[i * t.cols]);
      }
      LDLA_TRACE_ADD_EPILOGUE_ROWS(static_cast<std::uint64_t>(t.rows));
    }
    visit(LdTile{rbase + t.row_begin, cbase + t.col_begin, t.rows, t.cols,
                 values, t.cols});
  };

  // Row-major over the lower triangle: consecutive pairs share the row
  // shard, so with any budget >= the floor, each row shard stalls at most
  // once per grid row and every jc revisit within the row is a hit.
  std::vector<StreamPair> pairs;
  pairs.reserve(S * (S + 1) / 2);
  for (std::size_t ic = 0; ic < S; ++ic) {
    for (std::size_t jc = 0; jc <= ic; ++jc) {
      pairs.push_back({ic, jc});
    }
  }

  PairWalker walker(&store, &store, opts);
  walker.run(pairs, [&](const StreamPair& p, const PackedBitMatrix& pr,
                        const PackedBitMatrix& pc) {
    const std::size_t rbase = store.shard_row_begin(p.r);
    const std::size_t rows = store.shard_rows(p.r);
    if (p.r == p.c) {
      const CountTileSink sink = [&](const CountTile& t) {
        emit_syrk(rbase, t);
      };
      if (sequential) {
        syrk_count_fused(pr, 0, rows, sink);
      } else {
        syrk_count_parallel_nest(pr, 0, rows, sink, opts.threads);
      }
    } else {
      // jc < ic: the whole cross block lies strictly below the diagonal
      // (every column index < every row index), so all entries are
      // canonical whole-tile emissions.
      const std::size_t cbase = store.shard_row_begin(p.c);
      const std::size_t cols = store.shard_rows(p.c);
      const CountTileSink sink = [&](const CountTile& t) {
        emit_gemm(rbase, cbase, t);
      };
      if (sequential) {
        gemm_count_fused(pr, 0, rows, pc, 0, cols, sink);
      } else {
        gemm_count_parallel_nest(pr, 0, rows, pc, 0, cols, sink,
                                 opts.threads);
      }
    }
  });
}

void ld_cross_stream(ShardStore& a, ShardStore& b,
                     const LdStatTileVisitor& visit,
                     const StreamOptions& opts) {
  LDLA_METRICS_ONLY(
      static metrics::Histogram& h_call = metrics::histogram(
          "ldla_stream_seconds",
          "ld_matrix_stream / ld_cross_stream driver call latency");
      metrics::ScopedLatency metrics_lat(h_call);)
  LDLA_EXPECT(visit != nullptr, "stat-tile stream needs a visitor");
  LDLA_EXPECT(a.samples() == b.samples(),
              "cross-matrix LD needs matching sample sets");
  const GemmPlan& pa = a.plan();
  const GemmPlan& pb = b.plan();
  LDLA_EXPECT(pa.arch == pb.arch && pa.mr == pb.mr && pa.nr == pb.nr &&
                  pa.ku == pb.ku && pa.kc_words == pb.kc_words,
              "cross-stream stores must be ingested with the same plan "
              "geometry (same config)");
  const std::size_t sa = a.shards();
  const std::size_t sb = b.shards();
  if (sa == 0 || sb == 0) return;
  const detail::StatTables ta = detail::make_stat_tables_from_counts(
      a.allele_counts(), a.samples());
  const detail::StatTables tb = detail::make_stat_tables_from_counts(
      b.allele_counts(), b.samples());
  const std::size_t scratch_n = pa.mc * pa.nc;
  const bool sequential = opts.threads == 1;
  AlignedBuffer<double> seq_values(sequential ? scratch_n : 0);

  std::vector<StreamPair> pairs;
  pairs.reserve(sa * sb);
  for (std::size_t ia = 0; ia < sa; ++ia) {
    for (std::size_t jb = 0; jb < sb; ++jb) {
      pairs.push_back({ia, jb});
    }
  }

  PairWalker walker(&a, &b, opts);
  walker.run(pairs, [&](const StreamPair& p, const PackedBitMatrix& pr,
                        const PackedBitMatrix& pc) {
    const std::size_t rbase = a.shard_row_begin(p.r);
    const std::size_t rows = a.shard_rows(p.r);
    const std::size_t cbase = b.shard_row_begin(p.c);
    const std::size_t cols = b.shard_rows(p.c);
    const CountTileSink sink = [&](const CountTile& t) {
      double* values =
          sequential ? seq_values.data() : tile_scratch(scratch_n).data();
      {
        LDLA_TRACE_SPAN(kEpilogue);
        for (std::size_t i = 0; i < t.rows; ++i) {
          detail::stat_row_cross_shifted(opts.stat, ta, rbase + t.row_begin + i,
                                         tb, cbase + t.col_begin, t.row(i),
                                         t.cols, &values[i * t.cols]);
        }
        LDLA_TRACE_ADD_EPILOGUE_ROWS(static_cast<std::uint64_t>(t.rows));
      }
      visit(LdTile{rbase + t.row_begin, cbase + t.col_begin, t.rows, t.cols,
                   values, t.cols});
    };
    if (sequential) {
      gemm_count_fused(pr, 0, rows, pc, 0, cols, sink);
    } else {
      gemm_count_parallel_nest(pr, 0, rows, pc, 0, cols, sink, opts.threads);
    }
  });
}

}  // namespace ldla
