// Population-count backends (Section IV-A / Section V of the paper).
//
// The LD inner product is  sum_k POPCNT(a_k & b_k).  The paper's argument:
//  * the scalar POPCNT instruction beats all software popcounts (refs 17,18);
//  * SIMD *without* a vectorized popcount (extract each lane, scalar POPCNT,
//    re-insert) is no faster than scalar — the extraction serializes;
//  * a hardware vectorized popcount (now real: AVX-512 VPOPCNTDQ) restores
//    the v-fold SIMD speedup.
// Every one of those arms is implemented here so the claims can be measured.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ldla {

enum class PopcountMethod {
  kAuto,          ///< best available (runtime dispatch)
  kHardware,      ///< scalar 64-bit POPCNT instruction
  kSwar,          ///< branch-free bit-twiddling (portable fallback)
  kLut16,         ///< 16-bit lookup table
  kPshufbSse,     ///< 128-bit SSSE3 PSHUFB nibble counts (Section V's "SSE")
  kHarleySealAvx2,///< AVX2 carry-save-adder + PSHUFB nibble counts
  kSimdExtract,   ///< the paper's strawman: SIMD AND, per-lane extract+POPCNT
  kAvx512Vpopcnt, ///< AVX-512 VPOPCNTDQ — the hardware support the paper asks for
};

/// Human-readable backend name.
std::string popcount_method_name(PopcountMethod m);

/// Backends usable on this CPU (always includes the portable ones).
std::vector<PopcountMethod> available_popcount_methods();

/// True when `m` can run on this CPU.
bool popcount_method_available(PopcountMethod m);

/// Resolve kAuto to the concrete backend the dispatch would pick (and
/// validate availability of an explicit choice). Callers looping over many
/// rows hoist this out of the loop and pass the result down, so the
/// per-row calls skip the CPUID-based re-resolution.
PopcountMethod resolve_popcount_method(PopcountMethod m = PopcountMethod::kAuto);

/// Total set bits in `words`.
std::uint64_t popcount_words(std::span<const std::uint64_t> words,
                             PopcountMethod m = PopcountMethod::kAuto);

/// The LD inner product: sum_k POPCNT(a[k] & b[k]). Spans must be equal size.
std::uint64_t popcount_and(std::span<const std::uint64_t> a,
                           std::span<const std::uint64_t> b,
                           PopcountMethod m = PopcountMethod::kAuto);

/// Three-way variant for the missing-data extension (Section VII):
/// sum_k POPCNT(a[k] & b[k] & mask[k]).
std::uint64_t popcount_and3(std::span<const std::uint64_t> a,
                            std::span<const std::uint64_t> b,
                            std::span<const std::uint64_t> mask,
                            PopcountMethod m = PopcountMethod::kAuto);

/// Positional popcount (per-bit-lane column sums): counts[b] = number of
/// rows i in [0, n) whose word `words[i * stride]` has bit b set. This is
/// the pack-time allele-frequency primitive: one word of the sample-major
/// transpose covers 64 SNP columns, so a single pass over the samples
/// yields 64 per-SNP allele counts at once. `counts` (64 entries) is
/// overwritten, not accumulated into.
///
/// Methods: kHardware iterates set bits (fast at genomic minor-allele
/// densities), kSwar runs a bit-sliced carry-save adder (portable,
/// density-independent), kHarleySealAvx2 expands bits into byte lanes and
/// accumulates in 8-bit then 16-bit SIMD lanes (the positional-popcount
/// strip engine). kAuto resolves among those three; other methods throw.
void positional_popcount(const std::uint64_t* words, std::size_t n,
                         std::size_t stride, std::uint32_t* counts,
                         PopcountMethod m = PopcountMethod::kAuto);

/// Strip variant over `width` consecutive words per row: counts[w*64 + b]
/// = number of rows i with bit b of `rows[i * stride + w]` set, for w in
/// [0, width). The AVX2 backend walks rows once per 8-word strip, so one
/// transpose-row load feeds 512 column counters — the amortization that
/// makes whole-matrix allele counting bandwidth-bound rather than
/// instruction-bound. `counts` (width * 64 entries) is overwritten.
void positional_popcount_strip(const std::uint64_t* rows, std::size_t n,
                               std::size_t stride, std::size_t width,
                               std::uint32_t* counts,
                               PopcountMethod m = PopcountMethod::kAuto);

/// Single-word portable popcount used by the SWAR backend (exposed for tests).
constexpr std::uint64_t popcount_u64_swar(std::uint64_t x) {
  x -= (x >> 1) & 0x5555555555555555ull;
  x = (x & 0x3333333333333333ull) + ((x >> 2) & 0x3333333333333333ull);
  x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0full;
  return (x * 0x0101010101010101ull) >> 56;
}

}  // namespace ldla
