// Missing-data / alignment-gap extension (Section VII, "Considering
// alignment gaps").
//
// Each SNP carries a validity bit-vector c alongside its state vector s.
// For a pair (i, j) the joint validity mask is c_ij = c_i & c_j, and the
// paper gives the masked inner products
//
//   allele counts:    POPCNT(c_ij & s_i),  POPCNT(c_ij & s_j)
//   haplotype count:  POPCNT(c_ij & s_i & s_j)
//   valid samples:    POPCNT(c_ij)
//
// Key reformulation (DESIGN.md): with the *cleaned* state matrix
// X = S & C (state bits zeroed where invalid, an invariant enforced at
// construction),
//
//   POPCNT(c_ij & s_i & s_j) = POPCNT(x_i & x_j)      -> GEMM(X, X)
//   POPCNT(c_ij & s_i)       = POPCNT(x_i & c_j)      -> GEMM(X, C)
//   POPCNT(c_ij)             = POPCNT(c_i & c_j)      -> GEMM(C, C)
//
// so missing-data LD is three popcount-GEMMs — still pure dense linear
// algebra, inheriting all kernel/blocking machinery.
#pragma once

#include "core/bit_matrix.hpp"
#include "core/ld.hpp"

namespace ldla {

/// A genomic matrix with per-sample validity masks.
class MaskedBitMatrix {
 public:
  MaskedBitMatrix() = default;

  /// Takes ownership of states and masks; both must have identical
  /// dimensions. State bits at invalid positions are cleared (the X = S & C
  /// invariant).
  MaskedBitMatrix(BitMatrix states, BitMatrix valid);

  /// Build from per-SNP strings over {'0', '1', '-', 'N'} ('-' and 'N' mark
  /// missing data).
  static MaskedBitMatrix from_snp_strings(std::span<const std::string> snps);

  [[nodiscard]] const BitMatrix& states() const noexcept { return states_; }
  [[nodiscard]] const BitMatrix& valid() const noexcept { return valid_; }
  [[nodiscard]] std::size_t snps() const noexcept { return states_.snps(); }
  [[nodiscard]] std::size_t samples() const noexcept {
    return states_.samples();
  }

  /// Number of valid (non-missing) samples at a SNP.
  [[nodiscard]] std::uint64_t valid_count(std::size_t snp) const {
    return valid_.derived_count(snp);
  }

 private:
  BitMatrix states_;
  BitMatrix valid_;
};

/// All-pairs LD under missing data. Pairs whose joint valid-sample count is
/// zero (or whose conditional frequencies are degenerate) yield NaN.
LdMatrix ld_matrix_missing(const MaskedBitMatrix& g,
                           const LdOptions& opts = {});

/// Cross-matrix variant (four GEMMs: XA·XBᵀ, XA·CBᵀ, CA·XBᵀ, CA·CBᵀ).
LdMatrix ld_cross_matrix_missing(const MaskedBitMatrix& a,
                                 const MaskedBitMatrix& b,
                                 const LdOptions& opts = {});

/// Scalar reference for one pair (used by tests and the oracle): counts are
/// the masked counts defined above.
double ld_value_missing(LdStatistic stat, std::uint64_t ci_masked,
                        std::uint64_t cj_masked, std::uint64_t cij_masked,
                        std::uint64_t n_valid);

/// Streaming all-pairs scan under missing data: emits lower-trapezoidal row
/// slabs exactly like ld_scan (every pair (i, j) with j <= i appears in one
/// tile), computing four rectangular GEMMs per slab. Memory stays
/// O(slab_rows * n) regardless of pair count.
void ld_scan_missing(const MaskedBitMatrix& g, const LdTileVisitor& visit,
                     const LdOptions& opts = {});

}  // namespace ldla
