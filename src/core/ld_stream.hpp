// Out-of-core LD drivers over mmap'd shard stores (DESIGN.md §4.7).
//
// ld_matrix_stream walks the lower-triangular grid of shard pairs
// (ic, jc <= ic): the diagonal pair runs the fused SYRK over the shard's
// pack, off-diagonal pairs run the fused GEMM between the two packs, and
// every count tile is converted to the requested statistic with the SAME
// epilogue arithmetic as core/ld.cpp over GLOBAL StatTables built from the
// shards' persisted popcounts — so the streamed tiles are bit-identical to
// an all-in-RAM ld_stat_scan of the same matrix, config and arch; only the
// tile geometry differs.
//
// Overlap: with threads == 1 (default) each pair's compute runs as one of
// two tasks on the work-stealing global_pool() while the second task
// materializes the NEXT pair's shards (explicit page faults under the
// traced io phase) — compute of pair k hides the fetch of pair k+1, the
// classic double buffer. With threads > 1 the in-nest parallel drivers own
// the pool (nested run_tasks is forbidden), so prefetch degrades to an
// madvise(WILLNEED) hint: the kernel reads ahead but materialization lands
// on the critical path and is honestly counted as a prefetch_stall.
//
// Residency: peak store residency is bounded by StreamOptions::cache_bytes
// (shard payload bytes, the store's own accounting) via LRU eviction that
// pins the in-flight and next pairs; the scratch on top is O(mc·nc)
// doubles. cache_bytes must cover two pair working sets (4 shards with
// prefetch, 2 without); larger budgets keep shards cached across the grid
// walk and turn repeat visits into prefetch_hits.
#pragma once

#include "core/ld.hpp"
#include "io/shard_store.hpp"

namespace ldla {

/// Options for the streaming drivers.
struct StreamOptions {
  LdStatistic stat = LdStatistic::kRSquared;

  /// Residency budget in payload bytes (ShardStore accounting); 0 means
  /// unlimited (every shard stays materialized once touched). When set, it
  /// must cover the floor documented above, which makes the peak-residency
  /// bound provable rather than best-effort.
  std::size_t cache_bytes = 0;

  /// Prefetch the next pair's shards while the current pair computes.
  bool prefetch = true;

  /// 1 = sequential fused compute with the overlapped-io double buffer;
  /// > 1 (or 0 = default_thread_count()) = in-nest parallel drivers, with
  /// the visitor called CONCURRENTLY (tiles stay disjoint — a visitor
  /// writing disjoint output ranges needs no lock).
  unsigned threads = 1;
};

/// Stream the lower triangle (diagonal included) of the LD matrix of the
/// store's SNP panel to `visit`. Tiles partition the triangle; coordinates
/// are global SNP indices. Bit-identical to ld_stat_scan (see above).
void ld_matrix_stream(ShardStore& store, const LdStatTileVisitor& visit,
                      const StreamOptions& opts = {});

/// Stream the full rows(a) × rows(b) cross-LD rectangle between two stores
/// (same sample universe, same plan geometry — in practice: ingested with
/// the same config). Bit-identical to ld_cross_stat_scan.
void ld_cross_stream(ShardStore& a, ShardStore& b,
                     const LdStatTileVisitor& visit,
                     const StreamOptions& opts = {});

}  // namespace ldla
