// SSSE3 (128-bit) PSHUFB popcount backend — the "128-bit-wide SSE" arm of
// the paper's Section V discussion. Compiled with -mssse3 and reached only
// behind the CPUID dispatch in popcount.cpp.
#include <tmmintrin.h>

#include "core/detail/popcount_simd.hpp"

namespace ldla::detail {
namespace {

inline __m128i popcount_bytes(__m128i v) {
  const __m128i lookup =
      _mm_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m128i low_mask = _mm_set1_epi8(0x0f);
  const __m128i lo = _mm_and_si128(v, low_mask);
  const __m128i hi = _mm_and_si128(_mm_srli_epi32(v, 4), low_mask);
  return _mm_add_epi8(_mm_shuffle_epi8(lookup, lo),
                      _mm_shuffle_epi8(lookup, hi));
}

inline __m128i popcount_epi64(__m128i v) {
  return _mm_sad_epu8(popcount_bytes(v), _mm_setzero_si128());
}

inline std::uint64_t hsum(__m128i acc) {
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(acc)) +
         static_cast<std::uint64_t>(
             _mm_cvtsi128_si64(_mm_unpackhi_epi64(acc, acc)));
}

}  // namespace

std::uint64_t sse_count(const std::uint64_t* p, std::size_t n) {
  __m128i acc = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    acc = _mm_add_epi64(acc, popcount_epi64(v));
  }
  std::uint64_t out = hsum(acc);
  for (; i < n; ++i) {
    // SWAR tail: this TU must not assume the POPCNT instruction exists.
    std::uint64_t x = p[i];
    x -= (x >> 1) & 0x5555555555555555ull;
    x = (x & 0x3333333333333333ull) + ((x >> 2) & 0x3333333333333333ull);
    x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0full;
    out += (x * 0x0101010101010101ull) >> 56;
  }
  return out;
}

std::uint64_t sse_count_and(const std::uint64_t* a, const std::uint64_t* b,
                            std::size_t n) {
  __m128i acc = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i v = _mm_and_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    acc = _mm_add_epi64(acc, popcount_epi64(v));
  }
  std::uint64_t out = hsum(acc);
  for (; i < n; ++i) {
    std::uint64_t x = a[i] & b[i];
    x -= (x >> 1) & 0x5555555555555555ull;
    x = (x & 0x3333333333333333ull) + ((x >> 2) & 0x3333333333333333ull);
    x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0full;
    out += (x * 0x0101010101010101ull) >> 56;
  }
  return out;
}

}  // namespace ldla::detail
