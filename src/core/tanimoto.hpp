// Tanimoto 2-D fingerprint similarity (Section VII, "Adapting for other
// domains", Eq. 7).
//
// With p = POPCNT(A), q = POPCNT(B), x = POPCNT(A & B):
//
//     Tanimoto(A, B) = x / (p + q - x)
//
// Computationally identical to ISM LD: one popcount-GEMM for all pairwise
// x values plus per-row counts, so chemical-similarity matrices inherit the
// whole blocking/kernel machinery.
#pragma once

#include <utility>
#include <vector>

#include "core/bit_matrix.hpp"
#include "core/ld.hpp"

namespace ldla {

/// All-pairs Tanimoto similarity over a fingerprint database (rows of
/// `fps` are fingerprints). Diagonal is 1 for non-empty fingerprints;
/// pairs of two all-zero fingerprints are defined as 0.
LdMatrix tanimoto_matrix(const BitMatrix& fps, const GemmConfig& cfg = {});

/// Similarities between every row of `a` and every row of `b`.
LdMatrix tanimoto_cross_matrix(const BitMatrix& a, const BitMatrix& b,
                               const GemmConfig& cfg = {});

struct TanimotoHit {
  std::size_t index = 0;    ///< row in the database
  double similarity = 0.0;
};

/// Top-k most similar database fingerprints for every query row; results
/// are sorted by descending similarity (ties by index). Streams the GEMM in
/// row slabs so the database can be large.
std::vector<std::vector<TanimotoHit>> tanimoto_top_k(
    const BitMatrix& queries, const BitMatrix& database, std::size_t k,
    const GemmConfig& cfg = {});

/// Top-k search with the query set partitioned over `threads` workers
/// (0 = hardware concurrency); results identical to tanimoto_top_k.
std::vector<std::vector<TanimotoHit>> tanimoto_top_k_parallel(
    const BitMatrix& queries, const BitMatrix& database, std::size_t k,
    const GemmConfig& cfg = {}, unsigned threads = 0);

/// Scalar reference for one pair (tests).
double tanimoto_pair(const BitMatrix& a, std::size_t i, const BitMatrix& b,
                     std::size_t j);

}  // namespace ldla
