// Multi-threaded LD drivers.
//
// Parallelization strategy (DESIGN.md §4.4): each worker runs the complete
// sequential slabbed scan over a disjoint row range — zero shared mutable
// state, so scaling is limited only by memory bandwidth. With pack-once
// (the default) the operands are packed exactly once and every worker reads
// the shared immutable PackedBitMatrix; the fresh-pack ablation reverts to
// private per-worker packing buffers. Symmetric scans balance the triangle
// workload with split_triangle_rows (later rows own more pairs).
//
// `threads` controls the work partition (0 = hardware concurrency); tasks
// execute on the process-wide global_pool(), so execution parallelism is
// additionally capped by that pool's size and repeated calls pay no thread
// spawn/join cost.
#pragma once

#include "core/ld.hpp"

namespace ldla {

/// All-pairs LD with `threads` workers (0 = hardware concurrency).
/// Semantically identical to ld_matrix.
LdMatrix ld_matrix_parallel(const BitMatrix& g, const LdOptions& opts = {},
                            unsigned threads = 0);

/// Cross-matrix LD with `threads` workers; identical to ld_cross_matrix.
LdMatrix ld_cross_matrix_parallel(const BitMatrix& a, const BitMatrix& b,
                                  const LdOptions& opts = {},
                                  unsigned threads = 0);

/// Streaming all-pairs scan; `visit` is invoked CONCURRENTLY from worker
/// threads and must be thread-safe. Tile coverage is identical to ld_scan:
/// every pair (i, j) with j <= i appears in exactly one tile.
void ld_scan_parallel(const BitMatrix& g, const LdTileVisitor& visit,
                      const LdOptions& opts = {}, unsigned threads = 0);

/// Streaming cross-matrix scan; same thread-safety contract as above.
void ld_cross_scan_parallel(const BitMatrix& a, const BitMatrix& b,
                            const LdTileVisitor& visit,
                            const LdOptions& opts = {}, unsigned threads = 0);

}  // namespace ldla
