// Multi-threaded LD drivers.
//
// Parallelization strategy (DESIGN.md §4.4) is selected by
// LdOptions::parallel:
//
//  - ParallelMode::kNest (default): the team works *inside* one loop nest —
//    the operand is packed once as a team (one sliver range per worker, one
//    barrier per side), then per-member Chase–Lev deques drain a queue of
//    (ic, jr) macro-tile chunks over the shared immutable pack, stealing
//    from each other when their block runs dry. The symmetric drivers
//    enqueue only diagonal-and-below chunks, so the SYRK triangle saving
//    survives parallelization without a static triangle-balancing split.
//    Requires the fused epilogue and a packed operand (drivers fall back to
//    kCoarse otherwise). Scan visitors fire sequentially from the calling
//    thread in this mode.
//  - ParallelMode::kCoarse: each worker runs the complete sequential
//    slabbed scan over a disjoint static row range (split_triangle_rows
//    for symmetric scans). Kept as the ablation control; scan visitors are
//    invoked concurrently.
//
// Results are bit-identical across modes and to the sequential drivers.
//
// `threads` controls the work partition (0 = default_thread_count(): the
// LDLA_THREADS environment variable, else hardware concurrency); tasks
// execute on the process-wide global_pool(), so execution parallelism is
// additionally capped by that pool's size and repeated calls pay no thread
// spawn/join cost.
#pragma once

#include "core/ld.hpp"

namespace ldla {

/// All-pairs LD with `threads` workers (0 = hardware concurrency).
/// Semantically identical to ld_matrix.
LdMatrix ld_matrix_parallel(const BitMatrix& g, const LdOptions& opts = {},
                            unsigned threads = 0);

/// Cross-matrix LD with `threads` workers; identical to ld_cross_matrix.
LdMatrix ld_cross_matrix_parallel(const BitMatrix& a, const BitMatrix& b,
                                  const LdOptions& opts = {},
                                  unsigned threads = 0);

/// Streaming all-pairs scan. Under ParallelMode::kCoarse `visit` is invoked
/// CONCURRENTLY from worker threads and must be thread-safe; under kNest it
/// fires sequentially from the calling thread (the team parallelism lives
/// inside each slab's nest). Tile coverage is identical to ld_scan: every
/// pair (i, j) with j <= i appears in exactly one tile.
void ld_scan_parallel(const BitMatrix& g, const LdTileVisitor& visit,
                      const LdOptions& opts = {}, unsigned threads = 0);

/// Streaming cross-matrix scan; same thread-safety contract as above.
void ld_cross_scan_parallel(const BitMatrix& a, const BitMatrix& b,
                            const LdTileVisitor& visit,
                            const LdOptions& opts = {}, unsigned threads = 0);

}  // namespace ldla
