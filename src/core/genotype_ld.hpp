// Genotype-dosage LD as dense linear algebra — PLINK's statistic at GEMM
// speed.
//
// The paper contrasts its allele-based GEMM with PLINK's genotype-centric
// pairwise kernel, but the framework adapts (Section VII's argument) to
// genotypes too: with dosage planes L (dosage==1) and H (dosage==2) over
// complete data, every moment of the Pearson correlation of dosage vectors
// decomposes into popcount-GEMMs:
//
//   sum_xy(i,j) = LL(i,j) + 2·LH(i,j) + 2·LH(j,i) + 4·HH(i,j)
//
// where LL = L·Lᵀ and HH = H·Hᵀ are symmetric counts (SYRK) and LH = L·Hᵀ
// one rectangular GEMM; per-SNP sums come from plane row counts. Three
// GEMMs replace the baseline's per-pair nine-sweep loop, which is exactly
// the transformation the paper performs for allele LD.
//
// Limitation (documented): this fast path assumes complete data (no
// missing genotypes) — with per-pair missingness the moments stop being
// pair-separable and the pairwise kernel in baselines/plink_like.* is the
// correct tool.
#pragma once

#include "baselines/plink_like.hpp"
#include "core/bit_matrix.hpp"
#include "core/ld.hpp"

namespace ldla {

/// All-pairs genotype r^2 (squared Pearson correlation of dosage vectors)
/// via three popcount-GEMMs. Requires complete data: throws if any
/// genotype is missing. Matches plink_like_r2_pair bit-for-bit in the
/// counts (verified by tests; the final floating-point normalization is
/// evaluated identically).
LdMatrix genotype_ld_matrix(const GenotypeMatrix& g,
                            const GemmConfig& cfg = {});

/// Streaming row-slab variant covering pairs (i, j), j <= i, exactly once
/// (same tile contract as ld_scan).
void genotype_ld_scan(const GenotypeMatrix& g, const LdTileVisitor& visit,
                      const GemmConfig& cfg = {},
                      std::size_t slab_rows = 256);

/// Extract the dosage bit-planes of a complete-data genotype matrix
/// (exposed for tests and for building custom pipelines). Throws if any
/// genotype is missing.
struct DosagePlanes {
  BitMatrix lo;  ///< dosage == 1
  BitMatrix hi;  ///< dosage == 2
};
DosagePlanes extract_dosage_planes(const GenotypeMatrix& g);

}  // namespace ldla
