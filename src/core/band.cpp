#include "core/band.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "core/detail/ld_stats_row.hpp"
#include "core/gemm/count_matrix.hpp"
#include "core/gemm/macro.hpp"
#include "core/gemm/nest.hpp"
#include "util/contract.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace ldla {

void ld_band_scan(const BitMatrix& g, std::size_t bandwidth,
                  const LdTileVisitor& visit, const BandOptions& opts) {
  const std::size_t n = g.snps();
  if (n == 0) return;
  LDLA_EXPECT(g.samples() > 0, "matrix has no samples");
  LDLA_EXPECT(bandwidth > 0, "bandwidth must be positive");
  LDLA_EXPECT(opts.slab_rows > 0, "slab height must be positive");

  const detail::StatTables tables = detail::make_stat_tables(g);
  const std::size_t slab = opts.slab_rows;
  const std::size_t max_rows = std::min(slab, n);
  // A slab of rows [r0, r1) needs columns [max(0, r0 - W), r1).
  const std::size_t max_cols = std::min(n, max_rows + bandwidth);

  // Team size for the in-nest parallel stripes (1 = sequential nests).
  const unsigned team =
      opts.threads == 0 ? default_thread_count() : opts.threads;
  const bool nest = opts.parallel == ParallelMode::kNest && team > 1;

  // Pack once for the whole band: consecutive slabs read overlapping
  // column stripes, which the fresh path re-packed on every slab.
  std::optional<PackedBitMatrix> own;
  const PackedBitMatrix* packed =
      resolve_packed(g.view(), opts.gemm, opts.packed, PackSides::kBoth, own,
                     nest ? team : 1);

  AlignedBuffer<double> values(max_rows * max_cols);

  if (opts.fused && packed != nullptr) {
    // Fused epilogue: the stripe's count tiles never touch memory — stats
    // land in the values slab straight from tile scratch. Geometry and
    // values are bit-identical to the two-pass path. With a team, the nest
    // driver steals chunks inside each stripe; tiles write disjoint values
    // windows and `visit` still fires sequentially from this thread.
    for (std::size_t r0 = 0; r0 < n; r0 += slab) {
      const std::size_t rows = std::min(slab, n - r0);
      const std::size_t col_begin = r0 > bandwidth ? r0 - bandwidth : 0;
      const std::size_t col_end = r0 + rows;
      const std::size_t cols = col_end - col_begin;
      const auto sink = [&](const CountTile& t) {
        LDLA_TRACE_SPAN(kEpilogue);
        for (std::size_t i = 0; i < t.rows; ++i) {
          const std::size_t gi = t.row_begin + i;
          detail::stat_row_shifted(
              opts.stat, tables, gi, t.col_begin, t.row(i), t.cols,
              &values[(gi - r0) * cols + (t.col_begin - col_begin)]);
        }
        LDLA_TRACE_ADD_EPILOGUE_ROWS(static_cast<std::uint64_t>(t.rows));
      };
      if (nest) {
        gemm_count_parallel_nest(*packed, r0, r0 + rows, *packed, col_begin,
                                 col_end, sink, team);
      } else {
        gemm_count_fused(*packed, r0, r0 + rows, *packed, col_begin, col_end,
                         sink);
      }
      visit(LdTile{r0, col_begin, rows, cols, values.data(), cols});
    }
    return;
  }

  CountMatrix counts(max_rows, max_cols);

  for (std::size_t r0 = 0; r0 < n; r0 += slab) {
    const std::size_t rows = std::min(slab, n - r0);
    const std::size_t col_begin = r0 > bandwidth ? r0 - bandwidth : 0;
    const std::size_t col_end = r0 + rows;
    const std::size_t cols = col_end - col_begin;
    LDLA_ASSERT(rows <= max_rows && cols <= max_cols);

    CountMatrixRef cref{counts.ref().data, rows, cols, max_cols};
    for (std::size_t i = 0; i < rows; ++i) {
      std::fill_n(&cref.at(i, 0), cols, 0u);
    }
    if (packed != nullptr) {
      gemm_count_packed(*packed, r0, r0 + rows, *packed, col_begin, col_end,
                        cref);
    } else {
      gemm_count(g.view(r0, r0 + rows), g.view(col_begin, col_end), cref,
                 opts.gemm);
    }

    {
      LDLA_TRACE_SPAN(kEpilogue);
      for (std::size_t i = 0; i < rows; ++i) {
        // Row r0+i pairs with global columns [col_begin, col_end); compute
        // statistics for the whole stripe (values outside the band are still
        // valid LD values; consumers filter by index).
        detail::stat_row_shifted(opts.stat, tables, r0 + i, col_begin,
                                 &cref.at(i, 0), cols, &values[i * cols]);
      }
    }
    visit(LdTile{r0, col_begin, rows, cols, values.data(), cols});
  }
}

namespace {

DecayProfile finalize(std::vector<double> bin_upper, std::vector<double> sum,
                      std::vector<std::uint64_t> count) {
  DecayProfile out;
  out.bin_upper = std::move(bin_upper);
  out.count = std::move(count);
  out.mean.resize(sum.size(), 0.0);
  for (std::size_t b = 0; b < sum.size(); ++b) {
    if (out.count[b] > 0) {
      out.mean[b] = sum[b] / static_cast<double>(out.count[b]);
    }
  }
  return out;
}

}  // namespace

DecayProfile ld_decay_profile(const BitMatrix& g, std::size_t max_distance,
                              std::size_t bins, const BandOptions& opts) {
  LDLA_EXPECT(max_distance > 0, "max distance must be positive");
  LDLA_EXPECT(bins > 0, "need at least one bin");

  const double bin_width =
      static_cast<double>(max_distance) / static_cast<double>(bins);
  std::vector<double> bin_upper(bins);
  for (std::size_t b = 0; b < bins; ++b) {
    bin_upper[b] = bin_width * static_cast<double>(b + 1);
  }
  std::vector<double> sum(bins, 0.0);
  std::vector<std::uint64_t> count(bins, 0);

  ld_band_scan(
      g, max_distance,
      [&](const LdTile& tile) {
        for (std::size_t i = 0; i < tile.rows; ++i) {
          const std::size_t gi = tile.row_begin + i;
          for (std::size_t j = 0; j < tile.cols; ++j) {
            const std::size_t gj = tile.col_begin + j;
            if (gj >= gi) break;  // canonical j < i only
            const std::size_t dist = gi - gj;
            if (dist > max_distance) continue;
            const double v = tile.at(i, j);
            if (!std::isfinite(v)) continue;
            auto b = static_cast<std::size_t>(
                static_cast<double>(dist - 1) / bin_width);
            b = std::min(b, bins - 1);
            sum[b] += v;
            ++count[b];
          }
        }
      },
      opts);
  return finalize(std::move(bin_upper), std::move(sum), std::move(count));
}

DecayProfile ld_decay_by_position(const BitMatrix& g,
                                  const std::vector<double>& positions,
                                  std::size_t snp_bandwidth, double max_dist,
                                  std::size_t bins, const BandOptions& opts) {
  LDLA_EXPECT(positions.size() == g.snps(), "need one position per SNP");
  LDLA_EXPECT(std::is_sorted(positions.begin(), positions.end()),
              "positions must be sorted");
  LDLA_EXPECT(max_dist > 0.0, "max distance must be positive");
  LDLA_EXPECT(bins > 0, "need at least one bin");

  const double bin_width = max_dist / static_cast<double>(bins);
  std::vector<double> bin_upper(bins);
  for (std::size_t b = 0; b < bins; ++b) {
    bin_upper[b] = bin_width * static_cast<double>(b + 1);
  }
  std::vector<double> sum(bins, 0.0);
  std::vector<std::uint64_t> count(bins, 0);

  ld_band_scan(
      g, snp_bandwidth,
      [&](const LdTile& tile) {
        for (std::size_t i = 0; i < tile.rows; ++i) {
          const std::size_t gi = tile.row_begin + i;
          for (std::size_t j = 0; j < tile.cols; ++j) {
            const std::size_t gj = tile.col_begin + j;
            if (gj >= gi) break;
            const double dist = positions[gi] - positions[gj];
            if (dist > max_dist || dist <= 0.0) continue;
            const double v = tile.at(i, j);
            if (!std::isfinite(v)) continue;
            auto b = static_cast<std::size_t>(dist / bin_width);
            b = std::min(b, bins - 1);
            sum[b] += v;
            ++count[b];
          }
        }
      },
      opts);
  return finalize(std::move(bin_upper), std::move(sum), std::move(count));
}

}  // namespace ldla
