// Finite-sites-model extension (Section VII, "Facilitating finite sites
// models").
//
// Under the FSM a SNP holds up to four nucleotide states; each SNP is
// represented by four bit-planes (one per nucleotide), with gaps/ambiguity
// expressed as a sample being set in no plane. The per-pair statistic is
// Zaykin's correlation-based T (Eq. 6):
//
//   T_ij = ((v_i - 1)(v_j - 1) v_ij / (v_i v_j)) * sum_{a,b} r^2_{ab}
//
// where v_i is the number of states present at SNP i, v_ij the number of
// valid state pairs (samples valid at both SNPs), and r^2_{ab} is Eq. 2
// applied to the indicator vectors "state a at i" / "state b at j" over the
// jointly valid samples.
//
// Everything reduces to popcount-GEMMs over the planes: 16 plane-x-plane
// GEMMs, 4+4 plane-x-valid marginal GEMMs and 1 valid-x-valid GEMM — the
// worst-case 16x cost over the ISM the paper derives.
#pragma once

#include <array>

#include "core/bit_matrix.hpp"
#include "core/ld.hpp"

namespace ldla {

/// Nucleotide indices for the four planes.
enum Nucleotide : std::size_t { kA = 0, kC = 1, kG = 2, kT = 3 };

/// A finite-sites genomic matrix: four presence bit-planes per SNP.
/// A sample set in no plane is a gap/ambiguous character (invalid).
class FsmMatrix {
 public:
  FsmMatrix() = default;

  /// All planes zero (every sample a gap) — fill via set_state.
  FsmMatrix(std::size_t n_snps, std::size_t n_samples);

  /// Build from per-SNP strings over {A, C, G, T, -, N} (case-insensitive;
  /// '-' and 'N' mark gaps/ambiguity).
  static FsmMatrix from_snp_strings(std::span<const std::string> snps);

  [[nodiscard]] std::size_t snps() const noexcept { return planes_[0].snps(); }
  [[nodiscard]] std::size_t samples() const noexcept {
    return planes_[0].samples();
  }

  /// Assign nucleotide `nuc` to (snp, sample), clearing any previous state.
  void set_state(std::size_t snp, std::size_t sample, Nucleotide nuc);
  /// Mark (snp, sample) as a gap (no state set).
  void set_gap(std::size_t snp, std::size_t sample);
  /// Nucleotide at (snp, sample), or -1 for a gap.
  [[nodiscard]] int state(std::size_t snp, std::size_t sample) const;

  [[nodiscard]] const BitMatrix& plane(Nucleotide nuc) const {
    return planes_[nuc];
  }

  /// Number of distinct states present at a SNP (v_i in Eq. 6).
  [[nodiscard]] unsigned states_present(std::size_t snp) const;

  /// Validity mask: union of the four planes (1 bit per valid sample).
  [[nodiscard]] BitMatrix validity() const;

 private:
  std::array<BitMatrix, 4> planes_;
};

/// All-pairs Zaykin T over an FSM matrix. Degenerate pairs (either SNP
/// monomorphic over the jointly valid samples, or no valid pairs) are NaN.
LdMatrix fsm_t_matrix(const FsmMatrix& g, const LdOptions& opts = {});

/// Scalar reference for one pair of SNPs directly from the planes (O(k)
/// per pair; the oracle the GEMM version is tested against).
double fsm_t_pair_reference(const FsmMatrix& g, std::size_t i, std::size_t j);

}  // namespace ldla
