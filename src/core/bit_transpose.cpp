#include "core/bit_transpose.hpp"

#include "util/contract.hpp"

namespace ldla {

void transpose_64x64(std::array<std::uint64_t, 64>& block) {
  // Recursive quadrant swaps with shrinking masks (Hacker's Delight 7-3
  // adapted to LSB-first bit numbering): swaps bit c of word r with bit r
  // of word c. At step j, element (k, c+j) exchanges with (k+j, c) for
  // every c whose j-bit is clear.
  std::uint64_t m = 0x00000000ffffffffull;
  for (unsigned j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((block[k] >> j) ^ block[k + j]) & m;
      block[k + j] ^= t;
      block[k] ^= t << j;
    }
  }
}

BitMatrix transpose_bits(const BitMatrix& m) {
  LDLA_EXPECT(m.snps() < (std::uint64_t{1} << 32),
              "transposing would exceed the 2^32 sample limit");
  BitMatrix out(m.samples(), m.snps());
  if (m.snps() == 0 || m.samples() == 0) return out;

  const std::size_t row_blocks = (m.snps() + 63) / 64;
  const std::size_t col_blocks = m.words_per_snp();

  std::array<std::uint64_t, 64> block;
  for (std::size_t rb = 0; rb < row_blocks; ++rb) {
    const std::size_t rows = std::min<std::size_t>(64, m.snps() - rb * 64);
    for (std::size_t cb = 0; cb < col_blocks; ++cb) {
      for (std::size_t i = 0; i < 64; ++i) {
        block[i] = i < rows ? m.row_data(rb * 64 + i)[cb] : 0;
      }
      transpose_64x64(block);
      const std::size_t out_rows =
          std::min<std::size_t>(64, m.samples() - cb * 64);
      for (std::size_t i = 0; i < out_rows; ++i) {
        out.row_data(cb * 64 + i)[rb] = block[i];
      }
    }
  }
  // Output padding is clean by construction: input rows beyond snps() are
  // zero and input padding bits (beyond samples()) land in rows we never
  // write... they land in rows >= samples(), which do not exist. Tail bits
  // of each output row come from input rows >= snps(), zeroed above.
  return out;
}

}  // namespace ldla
