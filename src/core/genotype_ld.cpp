#include "core/genotype_ld.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "core/gemm/count_matrix.hpp"
#include "core/gemm/macro.hpp"
#include "core/gemm/syrk.hpp"
#include "util/contract.hpp"

namespace ldla {

DosagePlanes extract_dosage_planes(const GenotypeMatrix& g) {
  DosagePlanes out{BitMatrix(g.snps(), g.individuals()),
                   BitMatrix(g.snps(), g.individuals())};
  for (std::size_t s = 0; s < g.snps(); ++s) {
    for (std::size_t ind = 0; ind < g.individuals(); ++ind) {
      LDLA_EXPECT(!g.is_missing(s, ind),
                  "genotype GEMM fast path requires complete data");
      const unsigned d = g.dosage(s, ind);
      if (d == 1) out.lo.set(s, ind, true);
      if (d == 2) out.hi.set(s, ind, true);
    }
  }
  return out;
}

namespace {

struct Moments {
  double sum = 0.0;     ///< sum of dosages
  double sum_sq = 0.0;  ///< sum of squared dosages
};

// Pearson r^2 from pair-separable moments; identical arithmetic to the
// pairwise baseline so the two agree exactly on complete data.
double r2_from(const Moments& mi, const Moments& mj, double sum_xy,
               double n) {
  const double cov = n * sum_xy - mi.sum * mj.sum;
  const double var_i = n * mi.sum_sq - mi.sum * mi.sum;
  const double var_j = n * mj.sum_sq - mj.sum * mj.sum;
  const double denom = var_i * var_j;
  if (denom <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  const double r2 = (cov * cov) / denom;
  return r2 > 1.0 ? 1.0 : r2;
}

std::vector<Moments> plane_moments(const DosagePlanes& planes) {
  std::vector<Moments> m(planes.lo.snps());
  for (std::size_t s = 0; s < m.size(); ++s) {
    const double n1 = static_cast<double>(planes.lo.derived_count(s));
    const double n2 = static_cast<double>(planes.hi.derived_count(s));
    m[s] = {n1 + 2.0 * n2, n1 + 4.0 * n2};
  }
  return m;
}

}  // namespace

LdMatrix genotype_ld_matrix(const GenotypeMatrix& g, const GemmConfig& cfg) {
  const std::size_t n = g.snps();
  LdMatrix out(n, n);
  if (n == 0) return out;
  LDLA_EXPECT(g.individuals() > 1, "need at least two individuals");

  const DosagePlanes planes = extract_dosage_planes(g);
  const std::vector<Moments> m = plane_moments(planes);

  // Three GEMMs give every cross moment.
  CountMatrix ll(n, n), hh(n, n), lh(n, n);
  syrk_count(planes.lo.view(), ll.ref(), cfg);
  syrk_count(planes.hi.view(), hh.ref(), cfg);
  gemm_count(planes.lo.view(), planes.hi.view(), lh.ref(), cfg);

  const double n_ind = static_cast<double>(g.individuals());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double sum_xy = static_cast<double>(ll(i, j)) +
                            2.0 * static_cast<double>(lh(i, j)) +
                            2.0 * static_cast<double>(lh(j, i)) +
                            4.0 * static_cast<double>(hh(i, j));
      out(i, j) = r2_from(m[i], m[j], sum_xy, n_ind);
    }
  }
  return out;
}

void genotype_ld_scan(const GenotypeMatrix& g, const LdTileVisitor& visit,
                      const GemmConfig& cfg, std::size_t slab_rows) {
  const std::size_t n = g.snps();
  if (n == 0) return;
  LDLA_EXPECT(g.individuals() > 1, "need at least two individuals");
  LDLA_EXPECT(slab_rows > 0, "slab height must be positive");

  const DosagePlanes planes = extract_dosage_planes(g);
  const std::vector<Moments> m = plane_moments(planes);
  const double n_ind = static_cast<double>(g.individuals());

  const std::size_t max_rows = std::min(slab_rows, n);
  CountMatrix ll(max_rows, n), hh(max_rows, n), lh(max_rows, n),
      hl(max_rows, n);
  AlignedBuffer<double> values(max_rows * n);

  for (std::size_t r0 = 0; r0 < n; r0 += slab_rows) {
    const std::size_t rows = std::min(slab_rows, n - r0);
    const std::size_t cols = r0 + rows;
    auto slab_ref = [&](CountMatrix& c) {
      CountMatrixRef ref{c.ref().data, rows, cols, n};
      for (std::size_t i = 0; i < rows; ++i) {
        std::fill_n(&ref.at(i, 0), cols, 0u);
      }
      return ref;
    };
    CountMatrixRef ll_ref = slab_ref(ll);
    CountMatrixRef hh_ref = slab_ref(hh);
    CountMatrixRef lh_ref = slab_ref(lh);
    CountMatrixRef hl_ref = slab_ref(hl);

    gemm_count(planes.lo.view(r0, r0 + rows), planes.lo.view(0, cols), ll_ref,
               cfg);
    gemm_count(planes.hi.view(r0, r0 + rows), planes.hi.view(0, cols), hh_ref,
               cfg);
    gemm_count(planes.lo.view(r0, r0 + rows), planes.hi.view(0, cols), lh_ref,
               cfg);
    gemm_count(planes.hi.view(r0, r0 + rows), planes.lo.view(0, cols), hl_ref,
               cfg);

    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) {
        const double sum_xy = static_cast<double>(ll_ref.at(i, j)) +
                              2.0 * static_cast<double>(lh_ref.at(i, j)) +
                              2.0 * static_cast<double>(hl_ref.at(i, j)) +
                              4.0 * static_cast<double>(hh_ref.at(i, j));
        values[i * cols + j] = r2_from(m[r0 + i], m[j], sum_xy, n_ind);
      }
    }
    visit(LdTile{r0, 0, rows, cols, values.data(), cols});
  }
}

}  // namespace ldla
