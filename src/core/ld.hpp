// Linkage-disequilibrium statistics on top of the popcount-GEMM engine.
//
// Section II of the paper: with allele count c_i = s_i^T s_i, haplotype
// count c_ij = s_i^T s_j and sample size Nseq,
//
//   P_i  = c_i  / Nseq                (allele frequency, Eq. 3)
//   P_ij = c_ij / Nseq                (haplotype frequency, Eq. 4)
//   D    = P_ij - P_i P_j             (Eq. 1/5)
//   r^2  = D^2 / (P_i P_j (1-P_i)(1-P_j))   (Eq. 2)
//
// plus the conventional normalized D' = D / D_max. Monomorphic SNPs make
// r^2 and D' undefined; those entries are reported as NaN.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/bit_matrix.hpp"
#include "core/gemm/config.hpp"
#include "core/gemm/packed_bit_matrix.hpp"
#include "util/aligned_buffer.hpp"

namespace ldla {

enum class LdStatistic {
  kD,         ///< raw disequilibrium coefficient D
  kDPrime,    ///< D normalized by its theoretical extreme, in [-1, 1]
  kRSquared,  ///< squared Pearson correlation, in [0, 1]
};

std::string ld_statistic_name(LdStatistic s);

/// Scalar formulas (building blocks; exposed for tests and baselines).
/// All take raw counts plus the sample size.
double ld_d(std::uint64_t ci, std::uint64_t cj, std::uint64_t cij,
            std::uint64_t nseq);
double ld_r_squared(std::uint64_t ci, std::uint64_t cj, std::uint64_t cij,
                    std::uint64_t nseq);
double ld_d_prime(std::uint64_t ci, std::uint64_t cj, std::uint64_t cij,
                  std::uint64_t nseq);
double ld_value(LdStatistic stat, std::uint64_t ci, std::uint64_t cj,
                std::uint64_t cij, std::uint64_t nseq);

struct LdOptions {
  LdStatistic stat = LdStatistic::kRSquared;
  GemmConfig gemm;
  /// Row-slab height of the streaming drivers (memory/latency trade-off).
  std::size_t slab_rows = 256;
  /// Optional persistent packed operand for the primary matrix (`g`, or
  /// `a` in the cross drivers). Must be packed from the same matrix with
  /// the same GemmConfig (shape is checked, content is the caller's
  /// responsibility). Repeated-call workloads pack once per dataset and
  /// pass it here; when null, drivers pack internally per call while
  /// gemm.pack_once is on.
  const PackedBitMatrix* packed = nullptr;
  /// Same for the second matrix of the cross drivers (needs a B side).
  const PackedBitMatrix* packed_b = nullptr;
  /// Fused statistics epilogue (default): each finalized count tile is
  /// converted to D/D'/r² while still hot in cache, so no CountMatrix is
  /// ever materialized — counts live only in O(mc·nc) tile scratch.
  /// Applies whenever a packed operand is in effect (gemm.pack_once, or a
  /// caller-supplied pack); false is the historical two-pass pipeline
  /// (count matrix, then a statistics pass), kept as the ablation control
  /// in the spirit of gemm.pack_once. Both paths are bit-identical.
  bool fused = true;
  /// Work distribution of the *_parallel drivers (DESIGN.md §4.4). kNest
  /// (default) runs the team inside one loop nest, draining a work-stealing
  /// queue of macro-tile chunks over the shared pack; kCoarse is the
  /// historical static row-range split, kept as the ablation control.
  /// kNest requires a packed operand and the fused epilogue — drivers fall
  /// back to the coarse split when either is unavailable.
  ParallelMode parallel = ParallelMode::kNest;
};

/// Dense row-major matrix of doubles (LD values).
class LdMatrix {
 public:
  LdMatrix() = default;
  LdMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), buf_(rows * cols) {
    buf_.zero();
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const {
    return buf_[i * cols_ + j];
  }
  [[nodiscard]] double& operator()(std::size_t i, std::size_t j) {
    return buf_[i * cols_ + j];
  }
  [[nodiscard]] const double* data() const noexcept { return buf_.data(); }
  [[nodiscard]] double* data() noexcept { return buf_.data(); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  AlignedBuffer<double> buf_;
};

/// All-pairs LD within one genomic matrix (full symmetric n x n result,
/// diagonal = LD of a SNP with itself). Intended for moderate n; for large
/// regions use ld_scan.
LdMatrix ld_matrix(const BitMatrix& g, const LdOptions& opts = {});

/// LD between every SNP of `a` and every SNP of `b` (the Fig. 4 / long-range
/// association use case). Both matrices must cover the same samples.
LdMatrix ld_cross_matrix(const BitMatrix& a, const BitMatrix& b,
                         const LdOptions& opts = {});

/// A tile of LD values streamed out of a scan. Row/col indices are SNP
/// indices in the input matrices; `values` is row-major with leading
/// dimension `ld`.
struct LdTile {
  std::size_t row_begin = 0;
  std::size_t col_begin = 0;
  std::size_t rows = 0;
  std::size_t cols = 0;
  const double* values = nullptr;
  std::size_t ld = 0;

  [[nodiscard]] double at(std::size_t i, std::size_t j) const {
    return values[i * ld + j];
  }
};

using LdTileVisitor = std::function<void(const LdTile&)>;

/// Streaming all-pairs LD over one matrix: emits row slabs covering every
/// pair (i, j) with j <= i exactly once (tiles are lower-trapezoidal: a
/// slab of rows [r0, r1) comes with columns [0, r1)). Memory use is
/// O(slab_rows * n), independent of the number of pairs.
void ld_scan(const BitMatrix& g, const LdTileVisitor& visit,
             const LdOptions& opts = {});

/// Streaming cross-matrix LD over row slabs of `a` (columns span all of b).
void ld_cross_scan(const BitMatrix& a, const BitMatrix& b,
                   const LdTileVisitor& visit, const LdOptions& opts = {});

/// Visitor for stat tiles delivered straight from the fused GEMM epilogue:
/// tile geometry follows the cache blocking (at most mc x nc), values are
/// valid only for the duration of the call, and — unlike the slab scans —
/// total resident memory is O(mc·nc), independent of n.
using LdStatTileVisitor = std::function<void(const LdTile&)>;

/// Lowest-memory streaming all-pairs LD: emits stat tiles directly from
/// the fused epilogue, covering every canonical pair (j <= i, including
/// the diagonal) exactly once and emitting no other entries. Diagonal-
/// crossing cache tiles are delivered as per-row fragments so every
/// emitted value is valid. Falls back to slabbed two-pass emission (same
/// canonical-only contract) when no packed operand is in effect.
void ld_stat_scan(const BitMatrix& g, const LdStatTileVisitor& visit,
                  const LdOptions& opts = {});

/// Cross-matrix variant of ld_stat_scan: every (row of a, row of b) pair
/// exactly once, in cache-tile geometry, O(mc·nc) resident.
void ld_cross_stat_scan(const BitMatrix& a, const BitMatrix& b,
                        const LdStatTileVisitor& visit,
                        const LdOptions& opts = {});

/// Mirror the lower triangle (j < i) of a square LdMatrix into the upper
/// triangle, cache-blocked. All three statistics are symmetric in (i, j)
/// operation-for-operation, so mirroring stats equals computing them from
/// mirrored counts bit-for-bit.
void mirror_ld_lower_to_upper(LdMatrix& m);

/// Number of LD values a full symmetric analysis of n SNPs produces,
/// N(N+1)/2 including the diagonal — the paper's "50M pairwise LDs" figure
/// counts exactly this for N = 10,000.
[[nodiscard]] constexpr std::uint64_t ld_pair_count(std::uint64_t n) {
  return n * (n + 1) / 2;
}

}  // namespace ldla
