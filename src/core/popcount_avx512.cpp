// AVX-512 VPOPCNTDQ popcount backends — the hardware vectorized popcount
// the paper's Section V-B calls for. Compiled with explicit -mavx512* flags
// and reached only behind the CPUID dispatch in popcount.cpp.
#include <immintrin.h>

#include "core/detail/popcount_simd.hpp"

namespace ldla::detail {

std::uint64_t avx512_count(const std::uint64_t* p, std::size_t n) {
  __m512i acc0 = _mm512_setzero_si512();
  __m512i acc1 = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm512_add_epi64(acc0, _mm512_popcnt_epi64(_mm512_loadu_si512(p + i)));
    acc1 = _mm512_add_epi64(acc1,
                            _mm512_popcnt_epi64(_mm512_loadu_si512(p + i + 8)));
  }
  std::uint64_t out = static_cast<std::uint64_t>(
      _mm512_reduce_add_epi64(_mm512_add_epi64(acc0, acc1)));
  for (; i < n; ++i) {
    out += static_cast<std::uint64_t>(__builtin_popcountll(p[i]));
  }
  return out;
}

std::uint64_t avx512_count_and(const std::uint64_t* a, const std::uint64_t* b,
                               std::size_t n) {
  __m512i acc0 = _mm512_setzero_si512();
  __m512i acc1 = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i v0 =
        _mm512_and_si512(_mm512_loadu_si512(a + i), _mm512_loadu_si512(b + i));
    const __m512i v1 = _mm512_and_si512(_mm512_loadu_si512(a + i + 8),
                                        _mm512_loadu_si512(b + i + 8));
    acc0 = _mm512_add_epi64(acc0, _mm512_popcnt_epi64(v0));
    acc1 = _mm512_add_epi64(acc1, _mm512_popcnt_epi64(v1));
  }
  std::uint64_t out = static_cast<std::uint64_t>(
      _mm512_reduce_add_epi64(_mm512_add_epi64(acc0, acc1)));
  for (; i < n; ++i) {
    out += static_cast<std::uint64_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return out;
}

std::uint64_t avx512_count_and3(const std::uint64_t* a, const std::uint64_t* b,
                                const std::uint64_t* m, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v = _mm512_and_si512(
        _mm512_and_si512(_mm512_loadu_si512(a + i), _mm512_loadu_si512(b + i)),
        _mm512_loadu_si512(m + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  std::uint64_t out = static_cast<std::uint64_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    out += static_cast<std::uint64_t>(
        __builtin_popcountll(a[i] & b[i] & m[i]));
  }
  return out;
}

}  // namespace ldla::detail
