// Internal: per-row LD statistic evaluation over a row of pair counts.
//
// The D = H - p pᵀ (and r²) pass is itself a dense O(n²) operation; doing
// it with branch-free arithmetic over precomputed per-SNP factors lets the
// compiler vectorize it, so the statistics layer never dominates the GEMM
// (the paper's DLA formulation computes D exactly this way). Monomorphic
// SNPs produce NaN naturally: d is exactly 0 there and inv = +inf, and
// 0 * inf = NaN. The arithmetic matches ld_r_squared / ld_d operation for
// operation, so scalar and row paths agree bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "core/bit_matrix.hpp"
#include "core/ld.hpp"

namespace ldla::detail {

/// Precomputed per-SNP factors for the fast statistic rows.
struct StatTables {
  std::uint64_t nseq = 0;
  double n = 0.0;                ///< sample count as double
  std::vector<double> p;         ///< allele frequency P_i = c_i / Nseq
  std::vector<double> inv;       ///< 1 / (P_i (1 - P_i)); +inf if monomorphic
  std::vector<std::uint64_t> c;  ///< raw derived counts (generic fallback)
};

inline StatTables make_stat_tables(const BitMatrix& g) {
  StatTables t;
  t.nseq = g.samples();
  t.n = static_cast<double>(g.samples());
  t.p.resize(g.snps());
  t.inv.resize(g.snps());
  t.c.resize(g.snps());
  for (std::size_t s = 0; s < g.snps(); ++s) {
    const std::uint64_t c = g.derived_count(s);
    t.c[s] = c;
    const double p = static_cast<double>(c) / t.n;
    t.p[s] = p;
    t.inv[s] = 1.0 / (p * (1.0 - p));
  }
  return t;
}

/// Same tables from already-known per-SNP derived counts (the shard store
/// persists pack-time popcounts, so the streaming driver never touches the
/// bit matrix). Arithmetic is identical operation-for-operation to
/// make_stat_tables, which is what keeps streamed statistics bit-identical
/// to the in-memory drivers.
inline StatTables make_stat_tables_from_counts(
    const std::vector<std::uint64_t>& counts, std::uint64_t nseq) {
  StatTables t;
  t.nseq = nseq;
  t.n = static_cast<double>(nseq);
  t.p.resize(counts.size());
  t.inv.resize(counts.size());
  t.c = counts;
  for (std::size_t s = 0; s < counts.size(); ++s) {
    const double p = static_cast<double>(counts[s]) / t.n;
    t.p[s] = p;
    t.inv[s] = 1.0 / (p * (1.0 - p));
  }
  return t;
}

/// out[j] = statistic(SNP i, SNP col_begin + j) for j in [0, cols), given
/// this row's pair counts: counts[j] = POPCNT(s_i & s_{col_begin+j}).
inline void stat_row_shifted(LdStatistic stat, const StatTables& t,
                             std::size_t i, std::size_t col_begin,
                             const std::uint32_t* counts, std::size_t cols,
                             double* out) {
  const double pi = t.p[i];
  const double inv_i = t.inv[i];
  const double n = t.n;
  switch (stat) {
    case LdStatistic::kRSquared: {
      const double* p = t.p.data() + col_begin;
      const double* inv = t.inv.data() + col_begin;
      for (std::size_t j = 0; j < cols; ++j) {
        const double pij = static_cast<double>(counts[j]) / n;
        const double d = pij - pi * p[j];
        const double r = (d * d) * (inv_i * inv[j]);
        out[j] = r > 1.0 ? 1.0 : r;  // NaN compares false: preserved
      }
      break;
    }
    case LdStatistic::kD: {
      const double* p = t.p.data() + col_begin;
      for (std::size_t j = 0; j < cols; ++j) {
        const double pij = static_cast<double>(counts[j]) / n;
        out[j] = pij - pi * p[j];
      }
      break;
    }
    case LdStatistic::kDPrime: {
      // Sign-dependent normalization: generic scalar path.
      for (std::size_t j = 0; j < cols; ++j) {
        out[j] = ld_d_prime(t.c[i], t.c[col_begin + j], counts[j], t.nseq);
      }
      break;
    }
  }
}

/// Unshifted convenience used by the full-matrix drivers.
inline void stat_row(LdStatistic stat, const StatTables& t, std::size_t i,
                     const std::uint32_t* counts, std::size_t cols,
                     double* out) {
  stat_row_shifted(stat, t, i, 0, counts, cols, out);
}

/// Cross-matrix variant with a column offset into `tb` (tile epilogues):
/// counts[j] pairs row SNP i of `ta` with SNP col_begin + j of `tb`.
inline void stat_row_cross_shifted(LdStatistic stat, const StatTables& ta,
                                   std::size_t i, const StatTables& tb,
                                   std::size_t col_begin,
                                   const std::uint32_t* counts,
                                   std::size_t cols, double* out) {
  const double pi = ta.p[i];
  const double inv_i = ta.inv[i];
  const double n = ta.n;
  switch (stat) {
    case LdStatistic::kRSquared: {
      const double* p = tb.p.data() + col_begin;
      const double* inv = tb.inv.data() + col_begin;
      for (std::size_t j = 0; j < cols; ++j) {
        const double pij = static_cast<double>(counts[j]) / n;
        const double d = pij - pi * p[j];
        const double r = (d * d) * (inv_i * inv[j]);
        out[j] = r > 1.0 ? 1.0 : r;
      }
      break;
    }
    case LdStatistic::kD: {
      const double* p = tb.p.data() + col_begin;
      for (std::size_t j = 0; j < cols; ++j) {
        const double pij = static_cast<double>(counts[j]) / n;
        out[j] = pij - pi * p[j];
      }
      break;
    }
    case LdStatistic::kDPrime: {
      for (std::size_t j = 0; j < cols; ++j) {
        out[j] = ld_d_prime(ta.c[i], tb.c[col_begin + j], counts[j],
                            ta.nseq);
      }
      break;
    }
  }
}

/// Cross-matrix variant: row SNP i of table `ta`, columns from table `tb`.
inline void stat_row_cross(LdStatistic stat, const StatTables& ta,
                           std::size_t i, const StatTables& tb,
                           const std::uint32_t* counts, std::size_t cols,
                           double* out) {
  stat_row_cross_shifted(stat, ta, i, tb, 0, counts, cols, out);
}

}  // namespace ldla::detail
