// Internal declarations for the ISA-specific popcount translation units.
//
// These TUs are compiled with explicit -mavx2 / -mavx512* flags and must
// only be *called* behind the CPUID checks in popcount.cpp.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ldla::detail {

#if LDLA_HAVE_SSE_TU
std::uint64_t sse_count(const std::uint64_t* p, std::size_t n);
std::uint64_t sse_count_and(const std::uint64_t* a, const std::uint64_t* b,
                            std::size_t n);
#endif

#if LDLA_HAVE_AVX2_TU
std::uint64_t avx2_count(const std::uint64_t* p, std::size_t n);
std::uint64_t avx2_count_and(const std::uint64_t* a, const std::uint64_t* b,
                             std::size_t n);
std::uint64_t avx2_count_and3(const std::uint64_t* a, const std::uint64_t* b,
                              const std::uint64_t* m, std::size_t n);
// The paper's Section V strawman: SIMD AND then per-lane extract + scalar
// POPCNT + re-insert + vector add.
std::uint64_t avx2_count_extract(const std::uint64_t* p, std::size_t n);
std::uint64_t avx2_count_and_extract(const std::uint64_t* a,
                                     const std::uint64_t* b, std::size_t n);
// Positional popcount strip: counts[w*64 + b] += rows with bit b of word w
// set (counts must be pre-zeroed by the caller). Bits expand into byte
// lanes, accumulate in 8-bit lanes, drain to 16-bit lanes every 255 rows,
// and reach the u32 counts only at u16 saturation or the end.
void avx2_positional_strip(const std::uint64_t* rows, std::size_t n,
                           std::size_t stride, std::size_t width,
                           std::uint32_t* counts);
#endif

#if LDLA_HAVE_AVX512_TU
std::uint64_t avx512_count(const std::uint64_t* p, std::size_t n);
std::uint64_t avx512_count_and(const std::uint64_t* a, const std::uint64_t* b,
                               std::size_t n);
std::uint64_t avx512_count_and3(const std::uint64_t* a, const std::uint64_t* b,
                                const std::uint64_t* m, std::size_t n);
#endif

}  // namespace ldla::detail
