// AVX2 popcount backends. This TU is compiled with -mavx2 and reached only
// behind the CPUID dispatch in popcount.cpp.
#include <immintrin.h>

#include "core/detail/popcount_simd.hpp"

namespace ldla::detail {
namespace {

__m256i popcount_bytes(__m256i v) {
  const __m256i lookup = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                         _mm256_shuffle_epi8(lookup, hi));
}

__m256i popcount_epi64(__m256i v) {
  return _mm256_sad_epu8(popcount_bytes(v), _mm256_setzero_si256());
}

void csa(__m256i& h, __m256i& l, __m256i a, __m256i b, __m256i c) {
  const __m256i u = _mm256_xor_si256(a, b);
  h = _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c));
  l = _mm256_xor_si256(u, c);
}

// Harley-Seal carry-save popcount over 256-bit blocks produced by `load(i)`.
template <typename LoadFn>
std::uint64_t harley_seal_blocks(std::size_t blocks, LoadFn load) {
  __m256i total = _mm256_setzero_si256();
  __m256i ones = _mm256_setzero_si256();
  __m256i twos = _mm256_setzero_si256();
  __m256i fours = _mm256_setzero_si256();
  __m256i eights = _mm256_setzero_si256();

  std::size_t i = 0;
  for (; i + 16 <= blocks; i += 16) {
    __m256i twos_a, twos_b, fours_a, fours_b, eights_a, eights_b, sixteens;
    csa(twos_a, ones, ones, load(i + 0), load(i + 1));
    csa(twos_b, ones, ones, load(i + 2), load(i + 3));
    csa(fours_a, twos, twos, twos_a, twos_b);
    csa(twos_a, ones, ones, load(i + 4), load(i + 5));
    csa(twos_b, ones, ones, load(i + 6), load(i + 7));
    csa(fours_b, twos, twos, twos_a, twos_b);
    csa(eights_a, fours, fours, fours_a, fours_b);
    csa(twos_a, ones, ones, load(i + 8), load(i + 9));
    csa(twos_b, ones, ones, load(i + 10), load(i + 11));
    csa(fours_a, twos, twos, twos_a, twos_b);
    csa(twos_a, ones, ones, load(i + 12), load(i + 13));
    csa(twos_b, ones, ones, load(i + 14), load(i + 15));
    csa(fours_b, twos, twos, twos_a, twos_b);
    csa(eights_b, fours, fours, fours_a, fours_b);
    csa(sixteens, eights, eights, eights_a, eights_b);
    total = _mm256_add_epi64(total, popcount_epi64(sixteens));
  }
  total = _mm256_slli_epi64(total, 4);
  total = _mm256_add_epi64(total, _mm256_slli_epi64(popcount_epi64(eights), 3));
  total = _mm256_add_epi64(total, _mm256_slli_epi64(popcount_epi64(fours), 2));
  total = _mm256_add_epi64(total, _mm256_slli_epi64(popcount_epi64(twos), 1));
  total = _mm256_add_epi64(total, popcount_epi64(ones));
  for (; i < blocks; ++i) {
    total = _mm256_add_epi64(total, popcount_epi64(load(i)));
  }

  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), total);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

std::uint64_t scalar_tail(const std::uint64_t* p, std::size_t lo,
                          std::size_t hi) {
  std::uint64_t acc = 0;
  for (std::size_t i = lo; i < hi; ++i) {
    acc += static_cast<std::uint64_t>(__builtin_popcountll(p[i]));
  }
  return acc;
}

}  // namespace

std::uint64_t avx2_count(const std::uint64_t* p, std::size_t n) {
  const std::size_t blocks = n / 4;
  const std::uint64_t head = harley_seal_blocks(blocks, [p](std::size_t i) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i * 4));
  });
  return head + scalar_tail(p, blocks * 4, n);
}

std::uint64_t avx2_count_and(const std::uint64_t* a, const std::uint64_t* b,
                             std::size_t n) {
  const std::size_t blocks = n / 4;
  const std::uint64_t head =
      harley_seal_blocks(blocks, [a, b](std::size_t i) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i * 4));
        const __m256i vb =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i * 4));
        return _mm256_and_si256(va, vb);
      });
  std::uint64_t tail = 0;
  for (std::size_t i = blocks * 4; i < n; ++i) {
    tail += static_cast<std::uint64_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return head + tail;
}

std::uint64_t avx2_count_and3(const std::uint64_t* a, const std::uint64_t* b,
                              const std::uint64_t* m, std::size_t n) {
  const std::size_t blocks = n / 4;
  const std::uint64_t head =
      harley_seal_blocks(blocks, [a, b, m](std::size_t i) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i * 4));
        const __m256i vb =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i * 4));
        const __m256i vm =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(m + i * 4));
        return _mm256_and_si256(_mm256_and_si256(va, vb), vm);
      });
  std::uint64_t tail = 0;
  for (std::size_t i = blocks * 4; i < n; ++i) {
    tail += static_cast<std::uint64_t>(
        __builtin_popcountll(a[i] & b[i] & m[i]));
  }
  return head + tail;
}

namespace {

// One word-column's positional accumulators. 64 byte lanes live in two
// ymm registers (acc8); every 255 rows they drain into four 16-lane u16
// vectors (acc16), and the u16 layer reaches the u32 counts only at its
// own saturation horizon (255 * 256 rows) or at the end — so per row the
// column pays two vector ops per 32 counters.
struct PosAcc {
  __m256i acc8[2];
  __m256i acc16[4];
};

inline void pos_drain8(PosAcc& a) {
  a.acc16[0] = _mm256_add_epi16(
      a.acc16[0], _mm256_cvtepu8_epi16(_mm256_castsi256_si128(a.acc8[0])));
  a.acc16[1] = _mm256_add_epi16(
      a.acc16[1], _mm256_cvtepu8_epi16(_mm256_extracti128_si256(a.acc8[0], 1)));
  a.acc16[2] = _mm256_add_epi16(
      a.acc16[2], _mm256_cvtepu8_epi16(_mm256_castsi256_si128(a.acc8[1])));
  a.acc16[3] = _mm256_add_epi16(
      a.acc16[3], _mm256_cvtepu8_epi16(_mm256_extracti128_si256(a.acc8[1], 1)));
  a.acc8[0] = _mm256_setzero_si256();
  a.acc8[1] = _mm256_setzero_si256();
}

inline void pos_drain16(PosAcc& a, std::uint32_t* cw) {
  for (int k = 0; k < 4; ++k) {
    const __m256i lo =
        _mm256_cvtepu16_epi32(_mm256_castsi256_si128(a.acc16[k]));
    const __m256i hi =
        _mm256_cvtepu16_epi32(_mm256_extracti128_si256(a.acc16[k], 1));
    __m256i* c0 = reinterpret_cast<__m256i*>(cw + k * 16);
    __m256i* c1 = reinterpret_cast<__m256i*>(cw + k * 16 + 8);
    _mm256_storeu_si256(c0, _mm256_add_epi32(_mm256_loadu_si256(c0), lo));
    _mm256_storeu_si256(c1, _mm256_add_epi32(_mm256_loadu_si256(c1), hi));
    a.acc16[k] = _mm256_setzero_si256();
  }
}

}  // namespace

void avx2_positional_strip(const std::uint64_t* rows, std::size_t n,
                           std::size_t stride, std::size_t width,
                           std::uint32_t* counts) {
  // Byte b of the broadcast word lands in byte lanes [8b, 8b+8); the
  // per-byte selector then isolates one bit per lane, so byte lane p of
  // (lo, hi) tracks column p and 32 + p respectively.
  const __m256i shuf_lo = _mm256_setr_epi8(
      0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1,
      2, 2, 2, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 3, 3);
  const __m256i shuf_hi = _mm256_setr_epi8(
      4, 4, 4, 4, 4, 4, 4, 4, 5, 5, 5, 5, 5, 5, 5, 5,
      6, 6, 6, 6, 6, 6, 6, 6, 7, 7, 7, 7, 7, 7, 7, 7);
  const __m256i bitsel = _mm256_set1_epi64x(
      static_cast<long long>(0x8040201008040201ull));

  // Strips of up to 8 word-columns: each loaded row then feeds 512 column
  // counters, amortizing the transpose-row traffic that dominates when
  // columns are counted one at a time.
  constexpr std::size_t kStrip = 8;
  for (std::size_t w0 = 0; w0 < width; w0 += kStrip) {
    const std::size_t ww = width - w0 < kStrip ? width - w0 : kStrip;
    PosAcc acc[kStrip];
    for (std::size_t j = 0; j < ww; ++j) {
      acc[j].acc8[0] = _mm256_setzero_si256();
      acc[j].acc8[1] = _mm256_setzero_si256();
      for (int k = 0; k < 4; ++k) acc[j].acc16[k] = _mm256_setzero_si256();
    }

    std::size_t in8 = 0;
    std::size_t in16 = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t* row = rows + i * stride + w0;
      for (std::size_t j = 0; j < ww; ++j) {
        const __m256i w =
            _mm256_set1_epi64x(static_cast<long long>(row[j]));
        const __m256i x_lo = _mm256_shuffle_epi8(w, shuf_lo);
        const __m256i x_hi = _mm256_shuffle_epi8(w, shuf_hi);
        const __m256i m_lo =
            _mm256_cmpeq_epi8(_mm256_and_si256(x_lo, bitsel), bitsel);
        const __m256i m_hi =
            _mm256_cmpeq_epi8(_mm256_and_si256(x_hi, bitsel), bitsel);
        // cmpeq yields -1 per set bit; subtracting adds 1 to the lane.
        acc[j].acc8[0] = _mm256_sub_epi8(acc[j].acc8[0], m_lo);
        acc[j].acc8[1] = _mm256_sub_epi8(acc[j].acc8[1], m_hi);
      }
      if (++in8 == 255) {
        for (std::size_t j = 0; j < ww; ++j) pos_drain8(acc[j]);
        in8 = 0;
        if (++in16 == 256) {
          for (std::size_t j = 0; j < ww; ++j) {
            pos_drain16(acc[j], counts + (w0 + j) * 64);
          }
          in16 = 0;
        }
      }
    }
    for (std::size_t j = 0; j < ww; ++j) {
      if (in8 != 0) pos_drain8(acc[j]);
      pos_drain16(acc[j], counts + (w0 + j) * 64);
    }
  }
}

std::uint64_t avx2_count_extract(const std::uint64_t* p, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    const long long c0 = __builtin_popcountll(
        static_cast<unsigned long long>(_mm256_extract_epi64(v, 0)));
    const long long c1 = __builtin_popcountll(
        static_cast<unsigned long long>(_mm256_extract_epi64(v, 1)));
    const long long c2 = __builtin_popcountll(
        static_cast<unsigned long long>(_mm256_extract_epi64(v, 2)));
    const long long c3 = __builtin_popcountll(
        static_cast<unsigned long long>(_mm256_extract_epi64(v, 3)));
    acc = _mm256_add_epi64(acc, _mm256_set_epi64x(c3, c2, c1, c0));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint64_t out = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  return out + scalar_tail(p, i, n);
}

std::uint64_t avx2_count_and_extract(const std::uint64_t* a,
                                     const std::uint64_t* b, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i v = _mm256_and_si256(va, vb);
    const long long c0 = __builtin_popcountll(
        static_cast<unsigned long long>(_mm256_extract_epi64(v, 0)));
    const long long c1 = __builtin_popcountll(
        static_cast<unsigned long long>(_mm256_extract_epi64(v, 1)));
    const long long c2 = __builtin_popcountll(
        static_cast<unsigned long long>(_mm256_extract_epi64(v, 2)));
    const long long c3 = __builtin_popcountll(
        static_cast<unsigned long long>(_mm256_extract_epi64(v, 3)));
    acc = _mm256_add_epi64(acc, _mm256_set_epi64x(c3, c2, c1, c0));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint64_t out = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) {
    out += static_cast<std::uint64_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return out;
}

}  // namespace ldla::detail
