// Minimal VCF reader for phased haplotype data (the 1000-Genomes-style
// input of the paper's Dataset A).
//
// Supports the subset LD analysis needs: '#'-prefixed headers skipped,
// tab-separated records, GT as the first FORMAT field, phased diploid
// ("0|1") or haploid ("1") genotypes, biallelic sites. Multi-allelic sites
// and missing genotypes ("./.") raise ParseError unless `skip_invalid` is
// set, in which case those sites are dropped.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/bit_matrix.hpp"

namespace ldla {

struct VcfData {
  BitMatrix genotypes;                 ///< SNP-major haplotype matrix
  std::vector<std::uint64_t> positions;  ///< POS column per kept SNP
  std::vector<std::string> ids;          ///< ID column per kept SNP
  std::size_t skipped = 0;               ///< sites dropped (skip_invalid)
};

VcfData parse_vcf(std::istream& in, bool skip_invalid = false);
VcfData parse_vcf_file(const std::string& path, bool skip_invalid = false);

}  // namespace ldla
