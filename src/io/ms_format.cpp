#include "io/ms_format.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "core/bit_transpose.hpp"
#include "util/contract.hpp"
#include "util/trace.hpp"

namespace ldla {

namespace {

MsReplicate parse_one(std::istream& in) {
  MsReplicate rep;
  std::string line;

  // segsites:
  std::size_t segsites = 0;
  while (std::getline(in, line)) {
    if (line.rfind("segsites:", 0) == 0) {
      std::istringstream ss(line.substr(9));
      if (!(ss >> segsites)) throw ParseError("ms: bad segsites line");
      break;
    }
    if (!line.empty() && line != "//") {
      throw ParseError("ms: expected 'segsites:', got '" + line + "'");
    }
  }
  if (segsites == 0) return rep;  // empty replicate is legal

  // positions:
  if (!std::getline(in, line) || line.rfind("positions:", 0) != 0) {
    throw ParseError("ms: expected 'positions:' line");
  }
  {
    std::istringstream ss(line.substr(10));
    rep.positions.reserve(segsites);
    double p;
    while (ss >> p) rep.positions.push_back(p);
    if (rep.positions.size() != segsites) {
      throw ParseError("ms: positions count (" +
                       std::to_string(rep.positions.size()) +
                       ") != segsites (" + std::to_string(segsites) + ")");
    }
  }

  // haplotype rows until blank line / EOF / next replicate.
  std::vector<std::string> haps;
  while (std::getline(in, line)) {
    if (line.empty()) break;
    if (line == "//") {
      throw ParseError("ms: replicate separator inside haplotype block");
    }
    if (line.size() != segsites) {
      throw ParseError("ms: haplotype length " + std::to_string(line.size()) +
                       " != segsites " + std::to_string(segsites));
    }
    haps.push_back(line);
  }
  if (haps.empty()) throw ParseError("ms: replicate has no haplotypes");

  // Pack each haplotype line into a sample-major row, then transpose the
  // whole block into the SNP-major layout in 64x64 word blocks.
  BitMatrix sample_major(haps.size(), segsites);
  for (std::size_t h = 0; h < haps.size(); ++h) {
    const std::string& row = haps[h];
    std::uint64_t* dst = sample_major.row_data(h);
    for (std::size_t w = 0; w < sample_major.words_per_snp(); ++w) {
      std::uint64_t word = 0;
      const std::size_t limit = std::min<std::size_t>(64, segsites - w * 64);
      for (std::size_t b = 0; b < limit; ++b) {
        const char c = row[w * 64 + b];
        if (c == '1') {
          word |= std::uint64_t{1} << b;
        } else if (c != '0') {
          throw ParseError(std::string("ms: invalid character '") + c +
                           "' in haplotype " + std::to_string(h));
        }
      }
      dst[w] = word;
    }
  }
  rep.genotypes = transpose_bits(sample_major);
  return rep;
}

}  // namespace

std::vector<MsReplicate> parse_ms(std::istream& in) {
  LDLA_TRACE_SPAN(kIo);
  std::vector<MsReplicate> reps;
  std::string line;
  // Skip the command/seed header up to the first "//".
  while (std::getline(in, line)) {
    if (line == "//") {
      reps.push_back(parse_one(in));
    }
  }
  if (reps.empty()) throw ParseError("ms: no replicates ('//' blocks) found");
  return reps;
}

std::vector<MsReplicate> parse_ms_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open ms file: " + path);
  return parse_ms(in);
}

void write_ms(std::ostream& out, const MsReplicate& rep) {
  LDLA_TRACE_SPAN(kIo);
  LDLA_EXPECT(rep.positions.size() == rep.genotypes.snps(),
              "positions/SNP count mismatch");
  out << "ldla " << rep.genotypes.samples() << " 1\n0 0 0\n\n//\n";
  out << "segsites: " << rep.genotypes.snps() << "\n";
  // max_digits10 so positions survive a write/parse round trip exactly.
  out << std::setprecision(17);
  out << "positions:";
  for (const double p : rep.positions) out << ' ' << p;
  out << "\n";
  const BitMatrix sample_major = transpose_bits(rep.genotypes);
  for (std::size_t h = 0; h < sample_major.snps(); ++h) {
    out << sample_major.snp_string(h) << "\n";
  }
  out << "\n";
}

void write_ms_file(const std::string& path, const MsReplicate& rep) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open ms file for writing: " + path);
  write_ms(out, rep);
}

}  // namespace ldla
