// Binary snapshot of a BitMatrix (.ldm): magic + dimensions + packed words.
// Loads in O(size) with no re-packing — the fast path for repeated analyses
// of the same dataset.
#pragma once

#include <iosfwd>
#include <string>

#include "core/bit_matrix.hpp"

namespace ldla {

void write_ldm(std::ostream& out, const BitMatrix& m);
void write_ldm_file(const std::string& path, const BitMatrix& m);

/// Throws ParseError on bad magic/version/truncation; validates padding.
BitMatrix read_ldm(std::istream& in);
BitMatrix read_ldm_file(const std::string& path);

}  // namespace ldla
