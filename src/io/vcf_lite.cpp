#include "io/vcf_lite.hpp"

#include <fstream>
#include <sstream>

#include "util/contract.hpp"
#include "util/trace.hpp"

namespace ldla {

namespace {

std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

// Append the haplotype alleles of one GT field ("0|1", "1", ...) to `row`.
// Returns false when the genotype is missing or not parseable as biallelic.
bool append_gt(const std::string& field, std::string& row) {
  const std::string gt = field.substr(0, field.find(':'));
  std::size_t i = 0;
  while (i < gt.size()) {
    const char c = gt[i];
    if (c == '0' || c == '1') {
      row.push_back(c);
    } else {
      return false;  // missing '.', multi-allelic '2', unphased guesswork
    }
    ++i;
    if (i < gt.size()) {
      if (gt[i] != '|' && gt[i] != '/') return false;
      ++i;
    }
  }
  return !gt.empty();
}

}  // namespace

VcfData parse_vcf(std::istream& in, bool skip_invalid) {
  LDLA_TRACE_SPAN(kIo);
  VcfData out;
  std::vector<std::string> snp_rows;
  std::string line;
  bool saw_header = false;
  std::size_t haplotypes = 0;

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.rfind("#CHROM", 0) == 0) saw_header = true;
      continue;
    }
    if (!saw_header) throw ParseError("vcf: record before #CHROM header");

    const std::vector<std::string> cols = split_tabs(line);
    if (cols.size() < 10) {
      throw ParseError("vcf: record has fewer than 10 columns");
    }
    const std::string& alt = cols[4];
    std::string row;
    bool ok = alt.find(',') == std::string::npos;  // biallelic only
    if (ok) {
      for (std::size_t c = 9; c < cols.size() && ok; ++c) {
        ok = append_gt(cols[c], row);
      }
    }
    if (!ok) {
      if (skip_invalid) {
        ++out.skipped;
        continue;
      }
      throw ParseError("vcf: unsupported genotype at POS " + cols[1]);
    }
    if (haplotypes == 0) {
      haplotypes = row.size();
    } else if (row.size() != haplotypes) {
      throw ParseError("vcf: inconsistent haplotype count at POS " + cols[1]);
    }
    std::uint64_t pos = 0;
    try {
      pos = std::stoull(cols[1]);
    } catch (...) {
      throw ParseError("vcf: bad POS '" + cols[1] + "'");
    }
    out.positions.push_back(pos);
    out.ids.push_back(cols[2]);
    snp_rows.push_back(std::move(row));
  }

  out.genotypes = BitMatrix::from_snp_strings(snp_rows);
  return out;
}

VcfData parse_vcf_file(const std::string& path, bool skip_invalid) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open VCF file: " + path);
  return parse_vcf(in, skip_invalid);
}

}  // namespace ldla
