// Indexed on-disk store of streamed LD stat tiles.
//
// The streaming drivers (core/ld_stream.hpp) emit statistic tiles straight
// out of the fused epilogue; for chromosome-scale panels the full matrix
// never fits in RAM, so the tiles go to disk as they are produced:
// append-only payload, then a fixed-record index and a footer, so a writer
// crash loses the index but never corrupts earlier payload, and a reader
// seeks any tile in one index lookup — random (i, j) -> value access
// without decoding anything but the owning tile.
//
// Codec (flag-selectable, no external dependencies): kRaw stores the
// doubles verbatim; kXor XORs each value with its predecessor within the
// tile (prev = 0 at tile start, so tiles decode independently) and stores
// one control byte (the count of significant low-order bytes) plus only
// those bytes. Neighboring LD values share sign/exponent/high-mantissa
// bits, so the XOR residual's high bytes are zero and long runs of equal
// values (monomorphic NaN blocks, saturated r² = 1 regions) collapse to
// one byte per value — the classic Gorilla-style float-XOR scheme at byte
// granularity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "core/ld.hpp"

namespace ldla {

/// Tile payload encoding (persisted in the header).
enum class TileCodec : std::uint8_t {
  kRaw = 0,  ///< doubles verbatim (8 bytes/value)
  kXor = 1,  ///< per-tile XOR-with-previous, zero high bytes stripped
};

/// Index record of one stored tile. `offset`/`bytes` locate the encoded
/// payload; `raw_bytes` is rows*cols*8 (kept explicit so compression
/// ratios are computable from the index alone).
struct TileRecord {
  std::uint64_t row_begin = 0;
  std::uint64_t col_begin = 0;
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint64_t raw_bytes = 0;
};

/// A decoded tile: the record plus its row-major values.
struct TileData {
  TileRecord rec;
  std::vector<double> values;

  [[nodiscard]] double at(std::size_t i, std::size_t j) const {
    return values[i * rec.cols + j];
  }
};

/// Append-only tile writer. Feed it the streaming driver's tiles (it is
/// a valid LdStatTileVisitor body); close() writes index + footer.
/// NOT thread-safe: nest-mode streams must serialize add() calls.
class TileStoreWriter {
 public:
  TileStoreWriter(const std::string& path, LdStatistic stat,
                  std::size_t matrix_rows, std::size_t matrix_cols,
                  TileCodec codec = TileCodec::kXor);
  ~TileStoreWriter();
  TileStoreWriter(const TileStoreWriter&) = delete;
  TileStoreWriter& operator=(const TileStoreWriter&) = delete;

  /// Encode and append one tile (values read through the tile's `ld`).
  void add(const LdTile& t);

  /// Write the index and footer and close the file. Idempotent; called by
  /// the destructor if not called explicitly (errors are swallowed there —
  /// call close() yourself when you care).
  void close();

  [[nodiscard]] std::size_t tiles() const noexcept { return index_.size(); }
  [[nodiscard]] std::uint64_t payload_bytes() const noexcept {
    return payload_bytes_;
  }
  [[nodiscard]] std::uint64_t raw_bytes() const noexcept { return raw_bytes_; }

 private:
  std::ofstream out_;
  std::string path_;
  TileCodec codec_;
  std::vector<TileRecord> index_;
  std::vector<std::uint8_t> scratch_;
  std::uint64_t payload_bytes_ = 0;
  std::uint64_t raw_bytes_ = 0;
  bool closed_ = false;
};

/// Random-access tile reader. The whole index is loaded at open (56 bytes
/// per tile); payloads are read and decoded per request.
class TileStoreReader {
 public:
  explicit TileStoreReader(const std::string& path);

  [[nodiscard]] LdStatistic stat() const noexcept { return stat_; }
  [[nodiscard]] TileCodec codec() const noexcept { return codec_; }
  [[nodiscard]] std::size_t matrix_rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t matrix_cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t tiles() const noexcept { return index_.size(); }
  [[nodiscard]] const TileRecord& record(std::size_t t) const;

  /// Decode tile `t` (throws ParseError on a corrupt payload).
  [[nodiscard]] TileData read_tile(std::size_t t);

  /// Random lookup of element (i, j): linear scan of the in-memory index
  /// for the owning tile, then a single tile decode. Returns false when no
  /// stored tile covers (i, j) — e.g. the strictly-upper triangle of a
  /// same-matrix stream.
  bool find(std::size_t i, std::size_t j, double* out);

 private:
  std::ifstream in_;
  LdStatistic stat_ = LdStatistic::kRSquared;
  TileCodec codec_ = TileCodec::kRaw;
  std::uint64_t rows_ = 0;
  std::uint64_t cols_ = 0;
  std::vector<TileRecord> index_;
};

}  // namespace ldla
