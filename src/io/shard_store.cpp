// Shard store implementation. This is the ONLY translation unit allowed to
// issue mmap/munmap/madvise/mincore (lint rule 8): every other layer sees
// shards as PackedBitMatrix references and residency as byte counts.

#include "io/shard_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>
#include <utility>

#include "core/gemm/kernel.hpp"
#include "core/popcount.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace ldla {
namespace {

// "LDLASH01": LDLA SHard store, format version 01.
constexpr unsigned char kMagic[8] = {'L', 'D', 'L', 'A', 'S', 'H', '0', '1'};
constexpr std::size_t kHeaderU64s = 14;
constexpr std::size_t kHeaderBytes = sizeof(kMagic) + kHeaderU64s * 8;
constexpr std::size_t kRecordU64s = 16;
constexpr std::size_t kRecordBytes = kRecordU64s * 8;
constexpr std::size_t kAlign = 64;  ///< every section offset (payload pointers
                                    ///< must satisfy AlignedBuffer alignment)

[[noreturn]] void bad(const std::string& what) {
  throw ParseError("shard store: " + what);
}

std::uint64_t read_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// a * b, or ParseError when the product overflows (forged counts).
std::uint64_t mul_checked(std::uint64_t a, std::uint64_t b) {
  const __uint128_t wide = static_cast<__uint128_t>(a) * b;
  if (wide > std::numeric_limits<std::uint64_t>::max()) {
    bad("section size overflows (absurd element count)");
  }
  return static_cast<std::uint64_t>(wide);
}

/// The pack geometry a shard of `rows` SNPs must have under `plan`: the
/// exact words-per-side formula of PackedBitMatrix::init_side_layout, in
/// closed form (every panel but the last holds kc words, so the padded
/// panel sum needs no per-panel walk — forged headers cannot make this
/// slow). Any recorded sliver extent differing from this is forged.
std::uint64_t expected_side_words(const GemmPlan& plan, std::uint64_t rows,
                                  std::uint64_t n_words, std::uint64_t r) {
  const std::uint64_t k_padded = (n_words + plan.ku - 1) / plan.ku * plan.ku;
  const std::uint64_t kc = plan.kc_words < k_padded ? plan.kc_words : k_padded;
  const std::uint64_t panels = (n_words + kc - 1) / kc;
  const std::uint64_t slivers = (rows + r - 1) / r;
  const std::uint64_t kcp_full = (kc + plan.ku - 1) / plan.ku * plan.ku;
  const std::uint64_t last_kc = n_words - (panels - 1) * kc;
  const std::uint64_t kcp_last = (last_kc + plan.ku - 1) / plan.ku * plan.ku;
  const __uint128_t kcp_sum =
      static_cast<__uint128_t>(panels - 1) * kcp_full + kcp_last;
  const __uint128_t words = static_cast<__uint128_t>(slivers) * r * kcp_sum;
  if (words > std::numeric_limits<std::uint64_t>::max()) {
    bad("side payload size overflows (absurd geometry)");
  }
  return static_cast<std::uint64_t>(words);
}

std::uint64_t slivers_for(std::uint64_t rows, std::uint64_t r) {
  return (rows + r - 1) / r;
}

/// Validate one recorded extent and remember it for the overlap check.
/// `off` == 0 is the absent marker and must pair with `bytes` == 0.
void check_extent(std::uint64_t off, std::uint64_t bytes,
                  std::uint64_t file_bytes, const char* what,
                  std::vector<std::pair<std::uint64_t, std::uint64_t>>* spans) {
  if (off == 0) {
    if (bytes != 0) bad(std::string(what) + " has bytes but no offset");
    return;
  }
  if (bytes == 0) bad(std::string(what) + " has an offset but zero bytes");
  if (off % kAlign != 0) bad(std::string(what) + " offset is not 64B aligned");
  if (off < kHeaderBytes) bad(std::string(what) + " overlaps the header");
  if (off > file_bytes || bytes > file_bytes - off) {
    bad(std::string(what) + " extends past the end of the file");
  }
  spans->emplace_back(off, bytes);
}

}  // namespace

ShardIndex parse_shard_index(const std::uint8_t* data, std::size_t size) {
  LDLA_EXPECT(data != nullptr || size == 0,
              "parse_shard_index requires a valid byte span");
  if (size < kHeaderBytes) bad("truncated header");
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) bad("bad magic");

  std::uint64_t h[kHeaderU64s];
  for (std::size_t i = 0; i < kHeaderU64s; ++i) {
    h[i] = read_u64(data + sizeof(kMagic) + i * 8);
  }
  ShardIndex out;
  out.n_snps = h[0];
  out.n_words = h[1];
  out.n_samples = h[2];
  const std::uint64_t arch = h[3];
  out.plan.mr = h[4];
  out.plan.nr = h[5];
  out.plan.ku = h[6];
  out.plan.kc_words = h[7];
  out.plan.mc = h[8];
  out.plan.nc = h[9];
  out.plan.sparse_threshold = h[10];
  out.plan.packing = true;  // the store persists the packed layout only
  const std::uint64_t shard_count = h[11];
  out.file_bytes = h[12];
  const std::uint64_t dir_off = h[13];

  if (out.n_snps == 0 || out.n_words == 0 || out.n_samples == 0) {
    bad("empty matrix dimensions");
  }
  if (out.n_snps > (std::uint64_t{1} << 48)) bad("absurd SNP count");
  if (out.n_samples >= (std::uint64_t{1} << 32)) bad("absurd sample count");
  if (out.n_words != words_for_bits(out.n_samples)) {
    bad("word count inconsistent with sample count");
  }
  // Plans come from resolve_plan, whose outputs are machine-bounded; a
  // header claiming parameters outside these ranges is forged, and the
  // bounds keep every later geometry product overflow-free.
  if (arch == 0 || arch > static_cast<std::uint64_t>(KernelArch::kAvx512Wide)) {
    bad("unknown or unresolved kernel arch");
  }
  out.plan.arch = static_cast<KernelArch>(arch);
  if (out.plan.mr == 0 || out.plan.mr > 64 || out.plan.nr == 0 ||
      out.plan.nr > 64 || out.plan.ku == 0 || out.plan.ku > 64) {
    bad("absurd register blocking");
  }
  if (out.plan.kc_words == 0 || out.plan.kc_words > (std::uint64_t{1} << 28) ||
      out.plan.mc == 0 || out.plan.mc > (std::uint64_t{1} << 28) ||
      out.plan.nc == 0 || out.plan.nc > (std::uint64_t{1} << 28)) {
    bad("absurd cache blocking");
  }
  if (out.plan.sparse_threshold > out.n_samples) {
    bad("sparse threshold exceeds the sample count");
  }
  if (out.file_bytes != size) bad("recorded file size does not match");
  if (shard_count == 0 || shard_count > out.n_snps) bad("absurd shard count");

  std::vector<std::pair<std::uint64_t, std::uint64_t>> spans;
  const std::uint64_t dir_bytes = mul_checked(shard_count, kRecordBytes);
  check_extent(dir_off, dir_bytes, out.file_bytes, "directory", &spans);
  if (dir_off == 0) bad("missing directory");

  out.shards.resize(shard_count);
  for (std::uint64_t s = 0; s < shard_count; ++s) {
    std::uint64_t r[kRecordU64s];
    for (std::size_t i = 0; i < kRecordU64s; ++i) {
      r[i] = read_u64(data + dir_off + s * kRecordBytes + i * 8);
    }
    ShardRecord& rec = out.shards[s];
    rec.row_begin = r[0];
    rec.row_end = r[1];
    rec.a_off = r[2];
    rec.a_words = r[3];
    rec.b_off = r[4];
    rec.b_words = r[5];
    rec.pop_off = r[6];
    rec.kind_off = r[7];
    rec.csr_off = r[8];
    rec.index_off = r[9];
    rec.index_count = r[10];
    rec.scaled_off = r[11];
    rec.sm_off = r[12];
    rec.sm_stride = r[13];
    rec.aflags_off = r[14];
    rec.bflags_off = r[15];

    // Shards must partition [0, n_snps) contiguously in order.
    const std::uint64_t expect_begin = s == 0 ? 0 : out.shards[s - 1].row_end;
    if (rec.row_begin != expect_begin || rec.row_end <= rec.row_begin ||
        rec.row_end > out.n_snps) {
      bad("shard rows do not partition the matrix");
    }
    if (s == shard_count - 1 && rec.row_end != out.n_snps) {
      bad("shards do not cover every SNP row");
    }
    const std::uint64_t rows = rec.rows();

    // Sliver payloads must have EXACTLY the plan-implied size — this is
    // the "absurd sliver count" defense: a forged a_words cannot smuggle
    // an oversized (or undersized) panel past the drivers.
    if (rec.a_words !=
        expected_side_words(out.plan, rows, out.n_words, out.plan.mr)) {
      bad("A-side extent inconsistent with the plan geometry");
    }
    check_extent(rec.a_off, mul_checked(rec.a_words, 8), out.file_bytes,
                 "A slivers", &spans);
    if (rec.a_off == 0) bad("shard lacks an A payload");
    if (rec.b_off == 0) {
      if (rec.b_words != 0) bad("shared B side must record zero words");
      if (out.plan.mr != out.plan.nr) {
        bad("B side absent but register tile is not square");
      }
    } else {
      if (rec.b_words !=
          expected_side_words(out.plan, rows, out.n_words, out.plan.nr)) {
        bad("B-side extent inconsistent with the plan geometry");
      }
      check_extent(rec.b_off, mul_checked(rec.b_words, 8), out.file_bytes,
                   "B slivers", &spans);
    }

    check_extent(rec.pop_off, mul_checked(rows, 4), out.file_bytes,
                 "popcounts", &spans);
    check_extent(rec.kind_off, rows, out.file_bytes, "column kinds", &spans);
    check_extent(rec.csr_off, mul_checked(rows + 1, 8), out.file_bytes,
                 "CSR offsets", &spans);
    if (rec.pop_off == 0 || rec.kind_off == 0 || rec.csr_off == 0) {
      bad("shard lacks sparse metadata sections");
    }
    if (rec.index_count > mul_checked(rows, out.n_samples)) {
      bad("absurd index-list count");
    }
    if ((rec.index_off != 0) != (rec.index_count != 0)) {
      bad("index list presence inconsistent with its count");
    }
    check_extent(rec.index_off, mul_checked(rec.index_count, 4),
                 out.file_bytes, "index lists", &spans);

    if (rec.sm_off != 0) {
      if (rec.sm_stride != words_for_bits(rows)) {
        bad("sample-major stride inconsistent with the shard rows");
      }
      const std::uint64_t sm_words = mul_checked(out.n_samples, rec.sm_stride);
      if (sm_words > std::numeric_limits<std::uint32_t>::max()) {
        bad("sample-major transpose too large for prescaled 32-bit lists");
      }
      check_extent(rec.sm_off, mul_checked(sm_words, 8), out.file_bytes,
                   "sample-major transpose", &spans);
    } else if (rec.sm_stride != 0) {
      bad("sample-major stride recorded without a transpose");
    }
    // Prescaled lists exist exactly when there are lists to scale AND a
    // transpose to scale against.
    if ((rec.scaled_off != 0) !=
        (rec.index_count != 0 && rec.sm_off != 0)) {
      bad("prescaled list presence inconsistent with transpose/lists");
    }
    check_extent(rec.scaled_off,
                 rec.scaled_off != 0 ? mul_checked(rec.index_count, 4) : 0,
                 out.file_bytes, "prescaled lists", &spans);

    // Sliver flags are optional (absent when no sliver classified sparse).
    check_extent(rec.aflags_off,
                 rec.aflags_off != 0 ? slivers_for(rows, out.plan.mr) : 0,
                 out.file_bytes, "A sliver flags", &spans);
    if (rec.b_off == 0 && rec.bflags_off != 0) {
      bad("B sliver flags recorded for a shared B side");
    }
    check_extent(rec.bflags_off,
                 rec.bflags_off != 0 ? slivers_for(rows, out.plan.nr) : 0,
                 out.file_bytes, "B sliver flags", &spans);
  }

  // No two recorded extents may overlap (a forged directory aliasing the
  // same bytes into two shards, or a payload into the directory).
  std::sort(spans.begin(), spans.end());
  for (std::size_t i = 1; i < spans.size(); ++i) {
    if (spans[i - 1].first + spans[i - 1].second > spans[i].first) {
      bad("overlapping extents");
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Writer

namespace {

void put_u64(std::ofstream& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(v));
  out.write(buf, sizeof(buf));
}

/// Pad to the 64-byte alignment boundary, write `bytes` of `data`, and
/// return the section's file offset.
std::uint64_t put_section(std::ofstream& out, const void* data,
                          std::uint64_t bytes) {
  static const char zeros[kAlign] = {};
  std::uint64_t pos = static_cast<std::uint64_t>(out.tellp());
  if (pos % kAlign != 0) {
    out.write(zeros, static_cast<std::streamsize>(kAlign - pos % kAlign));
    pos += kAlign - pos % kAlign;
  }
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
  return pos;
}

void put_header(std::ofstream& out, const ShardIndex& idx,
                std::uint64_t shard_count, std::uint64_t dir_off) {
  out.write(reinterpret_cast<const char*>(kMagic), sizeof(kMagic));
  put_u64(out, idx.n_snps);
  put_u64(out, idx.n_words);
  put_u64(out, idx.n_samples);
  put_u64(out, static_cast<std::uint64_t>(idx.plan.arch));
  put_u64(out, idx.plan.mr);
  put_u64(out, idx.plan.nr);
  put_u64(out, idx.plan.ku);
  put_u64(out, idx.plan.kc_words);
  put_u64(out, idx.plan.mc);
  put_u64(out, idx.plan.nc);
  put_u64(out, idx.plan.sparse_threshold);
  put_u64(out, shard_count);
  put_u64(out, idx.file_bytes);
  put_u64(out, dir_off);
}

}  // namespace

void write_shard_store(const std::string& path, const BitMatrixView& m,
                       const GemmConfig& cfg, std::size_t rows_per_shard,
                       unsigned threads) {
  LDLA_EXPECT(!m.empty() && m.n_samples != 0,
              "write_shard_store requires a non-empty matrix");
  LDLA_EXPECT(rows_per_shard != 0, "rows_per_shard must be positive");
  LDLA_EXPECT(cfg.packing,
              "the shard store persists the packed layout; packing must be "
              "enabled in the config");

  ShardIndex idx;
  idx.n_snps = m.n_snps;
  idx.n_words = m.n_words;
  idx.n_samples = m.n_samples;
  idx.plan = resolve_plan(cfg, m.n_words);
  // A threshold beyond the sample count classifies columns identically to
  // one at the count; persist the clamp so the header bound stays checkable.
  idx.plan.sparse_threshold =
      std::min(idx.plan.sparse_threshold, m.n_samples);
  const std::size_t shard_count =
      (m.n_snps + rows_per_shard - 1) / rows_per_shard;

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("shard store: cannot create " + path);
  put_header(out, idx, shard_count, 0);  // placeholder: backpatched below

  // Pack and serialize shard-at-a-time: one pack alive at once, so ingest
  // memory stays O(rows_per_shard) however large the matrix is.
  std::vector<ShardRecord> records(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::size_t r0 = s * rows_per_shard;
    const std::size_t r1 = std::min(m.n_snps, r0 + rows_per_shard);
    const BitMatrixView sub{m.row(r0), r1 - r0, m.n_words, m.stride_words,
                            m.n_samples};
    const PackedBitMatrix pk(sub, idx.plan, PackSides::kBoth, threads);
    const SparseColumns& sp = pk.sparse_columns();
    ShardRecord& rec = records[s];
    rec.row_begin = r0;
    rec.row_end = r1;
    rec.a_words = pk.a_data_words();
    rec.a_off = put_section(out, pk.a_data(), rec.a_words * 8);
    if (pk.b_data() != nullptr) {  // mr != nr: distinct B payload
      rec.b_words = pk.b_data_words();
      rec.b_off = put_section(out, pk.b_data(), rec.b_words * 8);
    }
    rec.pop_off = put_section(out, sp.popcount.data(), sub.n_snps * 4);
    rec.kind_off = put_section(out, sp.kind.data(), sub.n_snps);
    rec.csr_off = put_section(out, sp.offset.data(), (sub.n_snps + 1) * 8);
    rec.index_count = sp.index.size();
    if (rec.index_count != 0) {
      rec.index_off = put_section(out, sp.index.data(), rec.index_count * 4);
    }
    if (pk.has_sample_major()) {
      rec.sm_stride = pk.sample_major_stride();
      rec.sm_off = put_section(out, pk.sample_major(),
                               m.n_samples * rec.sm_stride * 8);
      if (rec.index_count != 0) {
        rec.scaled_off =
            put_section(out, pk.scaled_index(), rec.index_count * 4);
      }
    }
    if (!pk.a_sliver_flags().empty()) {
      rec.aflags_off = put_section(out, pk.a_sliver_flags().data(),
                                   pk.a_sliver_flags().size());
    }
    if (!pk.b_sliver_flags().empty() && pk.b_data() != nullptr) {
      rec.bflags_off = put_section(out, pk.b_sliver_flags().data(),
                                   pk.b_sliver_flags().size());
    }
  }

  // Directory, then the backpatched header.
  std::vector<std::uint64_t> dir;
  dir.reserve(shard_count * kRecordU64s);
  for (const ShardRecord& rec : records) {
    const std::uint64_t fields[kRecordU64s] = {
        rec.row_begin, rec.row_end,   rec.a_off,       rec.a_words,
        rec.b_off,     rec.b_words,   rec.pop_off,     rec.kind_off,
        rec.csr_off,   rec.index_off, rec.index_count, rec.scaled_off,
        rec.sm_off,    rec.sm_stride, rec.aflags_off,  rec.bflags_off};
    dir.insert(dir.end(), fields, fields + kRecordU64s);
  }
  const std::uint64_t dir_off =
      put_section(out, dir.data(), dir.size() * 8);
  idx.file_bytes = static_cast<std::uint64_t>(out.tellp());
  out.seekp(0);
  put_header(out, idx, shard_count, dir_off);
  out.flush();
  if (!out) throw Error("shard store: write failed for " + path);
}

// ---------------------------------------------------------------------------
// ShardStore

ShardStore::~ShardStore() { unmap(); }

ShardStore::ShardStore(ShardStore&& other) noexcept { *this = std::move(other); }

ShardStore& ShardStore::operator=(ShardStore&& other) noexcept {
  if (this != &other) {
    unmap();
    map_ = std::exchange(other.map_, nullptr);
    map_size_ = std::exchange(other.map_size_, 0);
    index_ = std::move(other.index_);
    repack_plan_ = std::exchange(other.repack_plan_, std::nullopt);
    shard_bytes_ = std::move(other.shard_bytes_);
    total_payload_bytes_ = std::exchange(other.total_payload_bytes_, 0);
    max_shard_bytes_ = std::exchange(other.max_shard_bytes_, 0);
    // Moving a store with concurrent users is outside the contract; both
    // locks are taken only to keep the guarded accesses analyzable.
    MutexLock lock(mu_);
    MutexLock other_lock(other.mu_);
    wrappers_ = std::move(other.wrappers_);
    resident_ = std::exchange(other.resident_, 0);
  }
  return *this;
}

void ShardStore::unmap() noexcept {
  if (map_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(map_), map_size_);
    map_ = nullptr;
    map_size_ = 0;
  }
}

namespace {

/// "arch=avx2 mr=4 nr=4 ku=4 kc=256" — the geometry half of the guard's
/// error message, for both the stored and the expected plan.
std::string plan_geometry(const GemmPlan& p) {
  std::string s = "arch=" + kernel_arch_name(p.arch);
  s += " mr=" + std::to_string(p.mr);
  s += " nr=" + std::to_string(p.nr);
  s += " ku=" + std::to_string(p.ku);
  s += " kc=" + std::to_string(p.kc_words);
  return s;
}

/// The five plan fields that determine the persisted sliver layout. mc/nc
/// are loop blocking and sparse_threshold only reclassifies columns — none
/// of those change the bytes on disk, so they never trip the guard.
bool same_pack_geometry(const GemmPlan& a, const GemmPlan& b) {
  return a.arch == b.arch && a.mr == b.mr && a.nr == b.nr && a.ku == b.ku &&
         a.kc_words == b.kc_words;
}

}  // namespace

ShardStore ShardStore::open(const std::string& path,
                            const ShardOpenOptions& opts) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw Error("shard store: cannot open " + path);
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    throw Error("shard store: cannot stat " + path);
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  // MAP_PRIVATE + PROT_READ: the store is immutable at compute time, and
  // MADV_DONTNEED on a private file mapping drops this process's pages
  // (re-faulting from the page cache / disk on the next touch).
  void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (p == MAP_FAILED) throw Error("shard store: mmap failed for " + path);

  ShardStore s;
  s.map_ = static_cast<const std::uint8_t*>(p);
  s.map_size_ = size;
  s.index_ = parse_shard_index(s.map_, size);  // unmaps via dtor on throw
  const GemmPlan& stored = s.index_.plan;
  // The header's plan must name a variant the registry actually holds AND
  // a family this CPU can run — a store packed by a build with a different
  // kernel grid fails here with the remedy spelled out, not deep inside
  // kernel_for_plan at first compute.
  if (find_kernel(stored.arch, stored.mr, stored.nr, stored.ku) == nullptr ||
      !kernel_available(stored.arch)) {
    throw Error("shard store " + path + ": packed for kernel variant (" +
                plan_geometry(stored) +
                ") that this build/machine cannot run; re-ingest with "
                "ldla_ingest (--arch picks a portable family)");
  }
  if (opts.expect_plan != nullptr &&
      !same_pack_geometry(stored, *opts.expect_plan)) {
    if (!opts.repack_on_mismatch) {
      throw Error(
          "shard store " + path + ": pack geometry (" + plan_geometry(stored) +
          ") does not match the expected plan (" +
          plan_geometry(*opts.expect_plan) +
          ") — the tuned register tile changed since ingest. Either "
          "re-ingest the dataset with ldla_ingest under the current plan, "
          "pass the stored plan explicitly (GemmConfig{.arch,.mr,.nr,.ku,"
          ".kc_words}), or open with ShardOpenOptions{.repack_on_mismatch "
          "= true} to re-pack each shard at materialization");
    }
    const GemmPlan& want = *opts.expect_plan;
    LDLA_EXPECT(want.packing && want.mr != 0 && want.nr != 0 &&
                    want.ku != 0 && want.kc_words != 0,
                "repack-on-mismatch needs a fully resolved packing plan");
    if (find_kernel(want.arch, want.mr, want.nr, want.ku) == nullptr ||
        !kernel_available(want.arch)) {
      throw Error("shard store " + path + ": expected plan (" +
                  plan_geometry(want) +
                  ") names a kernel variant this build/machine cannot run");
    }
    s.repack_plan_ = want;
  }

  s.shard_bytes_.reserve(s.index_.shards.size());
  for (const ShardRecord& rec : s.index_.shards) {
    const std::uint64_t rows = rec.rows();
    std::uint64_t bytes = rec.a_words * 8 + rec.b_words * 8 + rows * 4 +
                          rows + (rows + 1) * 8 + rec.index_count * 4;
    if (rec.scaled_off != 0) bytes += rec.index_count * 4;
    if (rec.sm_off != 0) bytes += s.index_.n_samples * rec.sm_stride * 8;
    if (rec.aflags_off != 0) bytes += slivers_for(rows, s.index_.plan.mr);
    if (rec.bflags_off != 0) bytes += slivers_for(rows, s.index_.plan.nr);
    s.shard_bytes_.push_back(static_cast<std::size_t>(bytes));
    s.total_payload_bytes_ += bytes;
    s.max_shard_bytes_ = std::max<std::size_t>(s.max_shard_bytes_, bytes);
  }
  {
    MutexLock lock(s.mu_);
    s.wrappers_.resize(s.index_.shards.size());
  }
  return s;
}

const ShardRecord& ShardStore::record(std::size_t i) const {
  LDLA_EXPECT(i < index_.shards.size(), "shard index out of range");
  return index_.shards[i];
}

std::size_t ShardStore::shard_bytes(std::size_t i) const {
  LDLA_EXPECT(i < shard_bytes_.size(), "shard index out of range");
  return shard_bytes_[i];
}

std::vector<std::uint64_t> ShardStore::allele_counts() const {
  std::vector<std::uint64_t> counts;
  counts.reserve(index_.n_snps);
  for (const ShardRecord& rec : index_.shards) {
    const auto* pop =
        reinterpret_cast<const std::uint32_t*>(map_ + rec.pop_off);
    counts.insert(counts.end(), pop, pop + rec.rows());
  }
  return counts;
}

void ShardStore::prefetch(std::size_t i) const {
  const ShardRecord& rec = record(i);
  const long page = ::sysconf(_SC_PAGESIZE);
  const std::uint64_t mask = ~static_cast<std::uint64_t>(page - 1);
  auto advise = [&](std::uint64_t off, std::uint64_t bytes) {
    if (off == 0 || bytes == 0) return;
    const std::uint64_t begin = off & mask;
    const std::uint64_t end = off + bytes;
    ::madvise(const_cast<std::uint8_t*>(map_ + begin),
              static_cast<std::size_t>(end - begin), MADV_WILLNEED);
  };
  const std::uint64_t rows = rec.rows();
  advise(rec.a_off, rec.a_words * 8);
  advise(rec.b_off, rec.b_words * 8);
  advise(rec.pop_off, rows * 4);
  advise(rec.kind_off, rows);
  advise(rec.csr_off, (rows + 1) * 8);
  advise(rec.index_off, rec.index_count * 4);
  advise(rec.scaled_off, rec.scaled_off != 0 ? rec.index_count * 4 : 0);
  advise(rec.sm_off, index_.n_samples * rec.sm_stride * 8);
  advise(rec.aflags_off,
         rec.aflags_off != 0 ? slivers_for(rows, index_.plan.mr) : 0);
  advise(rec.bflags_off,
         rec.bflags_off != 0 ? slivers_for(rows, index_.plan.nr) : 0);
}

void ShardStore::touch_extent(std::uint64_t off, std::uint64_t bytes) const {
  if (off == 0 || bytes == 0) return;
  // One volatile load per page faults the extent in; the compiler cannot
  // elide the walk, so io_bytes_read reflects real page traffic.
  const std::uint64_t kPage = 4096;
  const volatile std::uint8_t* p = map_ + off;
  for (std::uint64_t b = 0; b < bytes; b += kPage) {
    (void)p[b];
  }
  (void)p[bytes - 1];
}

std::unique_ptr<PackedBitMatrix> ShardStore::materialize(std::size_t i) const {
  const ShardRecord& rec = record(i);
  const std::uint64_t rows = rec.rows();
  const std::size_t count = static_cast<std::size_t>(rec.index_count);

  // The index parse bounded every extent; here the *contents* get their
  // one-time semantic validation, so the kernels can gather unchecked.
  SparseColumns sp;
  sp.threshold = index_.plan.sparse_threshold;
  sp.n_samples = index_.n_samples;
  const auto* pop = reinterpret_cast<const std::uint32_t*>(map_ + rec.pop_off);
  sp.popcount.assign(pop, pop + rows);
  for (std::uint64_t c = 0; c < rows; ++c) {
    if (sp.popcount[c] > index_.n_samples) {
      bad("popcount exceeds the sample count");
    }
  }
  const std::uint8_t* kind = map_ + rec.kind_off;
  sp.kind.resize(rows);
  for (std::uint64_t c = 0; c < rows; ++c) {
    if (kind[c] > static_cast<std::uint8_t>(ColumnKind::kComplement)) {
      bad("unknown column kind");
    }
    sp.kind[c] = static_cast<ColumnKind>(kind[c]);
    if (sp.kind[c] != ColumnKind::kDense) ++sp.sparse_count;
  }
  const auto* csr = reinterpret_cast<const std::uint64_t*>(map_ + rec.csr_off);
  sp.offset.assign(csr, csr + rows + 1);
  if (sp.offset.front() != 0 || sp.offset.back() != rec.index_count) {
    bad("CSR offsets do not span the index lists");
  }
  for (std::uint64_t c = 0; c < rows; ++c) {
    if (sp.offset[c] > sp.offset[c + 1]) bad("CSR offsets not monotone");
  }
  if (count != 0) {
    const auto* idx =
        reinterpret_cast<const std::uint32_t*>(map_ + rec.index_off);
    sp.index.assign(idx, idx + count);
    for (std::size_t j = 0; j < count; ++j) {
      if (sp.index[j] >= index_.n_samples) bad("index entry out of range");
    }
  }
  const auto* scaled =
      rec.scaled_off != 0
          ? reinterpret_cast<const std::uint32_t*>(map_ + rec.scaled_off)
          : nullptr;
  if (scaled != nullptr) {
    // The prescaled entries are the gather's unchecked addresses: each must
    // be exactly index*stride, which also bounds it inside the transpose.
    for (std::size_t j = 0; j < count; ++j) {
      if (scaled[j] != sp.index[j] * rec.sm_stride) {
        bad("prescaled list entry does not match its index");
      }
    }
  }

  auto read_flags = [&](std::uint64_t off, std::uint64_t r) {
    std::vector<std::uint8_t> flags;
    if (off != 0) {
      const std::uint8_t* f = map_ + off;
      flags.assign(f, f + slivers_for(rows, r));
      // A flag may only claim a sliver sparse when every real row in the
      // group is list/complement classified (the dispatch precondition the
      // list kernels rely on).
      for (std::size_t s = 0; s < flags.size(); ++s) {
        if (flags[s] == 0) continue;
        const std::uint64_t lo = s * r;
        const std::uint64_t hi = std::min<std::uint64_t>(rows, lo + r);
        for (std::uint64_t c = lo; c < hi; ++c) {
          if (sp.kind[c] == ColumnKind::kDense) {
            bad("sliver flagged sparse over a dense column");
          }
        }
      }
    }
    return flags;
  };

  ExternalPack ext;
  ext.plan = index_.plan;
  ext.n_snps = rows;
  ext.n_words = index_.n_words;
  ext.n_samples = index_.n_samples;
  ext.a_data = reinterpret_cast<const std::uint64_t*>(map_ + rec.a_off);
  ext.b_data = rec.b_off != 0 ? reinterpret_cast<const std::uint64_t*>(
                                    map_ + rec.b_off)
                              : nullptr;
  ext.a_sliver_sparse = read_flags(rec.aflags_off, index_.plan.mr);
  ext.b_sliver_sparse = read_flags(rec.bflags_off, index_.plan.nr);
  if (rec.sm_off != 0) {
    ext.sample_major =
        reinterpret_cast<const std::uint64_t*>(map_ + rec.sm_off);
    ext.sm_stride = rec.sm_stride;
    ext.scaled_index = scaled;
  } else if (sp.sparse_count != 0) {
    bad("sparse columns recorded without a sample-major transpose");
  }
  ext.sparse = std::move(sp);
  auto mapped = std::make_unique<PackedBitMatrix>(
      PackedBitMatrix::from_external(std::move(ext)));
  if (!repack_plan_) return mapped;
  // Repack fallback (ShardOpenOptions): reconstruct the shard's rows from
  // the mapped slivers and pack both sides fresh under the expected plan.
  // The mapped wrapper above already ran the full payload validation, so
  // the repack starts from checked data; the result owns its memory (the
  // resident-byte accounting keeps the mapped sizes as an approximation).
  const BitMatrix m = unpack_packed(*mapped);
  mapped.reset();
  LDLA_METRICS_ONLY(
      static metrics::Counter& c_rp = metrics::counter(
          "ldla_shard_repacks_total",
          "shards re-packed at materialization (pack-geometry mismatch)");
      c_rp.inc();)
  return std::make_unique<PackedBitMatrix>(m.view(), *repack_plan_,
                                           PackSides::kBoth);
}

bool ShardStore::verify_shard_popcounts(std::size_t i) const {
  LDLA_EXPECT(i < index_.shards.size(), "shard index out of range");
  const ShardRecord& rec = record(i);
  const std::uint64_t rows = rec.rows();
  const auto* pop = reinterpret_cast<const std::uint32_t*>(map_ + rec.pop_off);
  if (rec.sm_off != 0) {
    // One positional-popcount strip pass over the sample-major transpose
    // yields every column's count at once: counts[w*64 + b] is the number
    // of samples with bit b of transpose word w set, i.e. the derived
    // count of shard-local SNP w*64 + b.
    const auto* sm = reinterpret_cast<const std::uint64_t*>(map_ + rec.sm_off);
    std::vector<std::uint32_t> counts(rec.sm_stride * 64);
    positional_popcount_strip(sm, index_.n_samples, rec.sm_stride,
                              rec.sm_stride, counts.data());
    for (std::uint64_t c = 0; c < rows; ++c) {
      if (counts[c] != pop[c]) return false;
    }
    // Padding columns beyond the shard's rows must be empty in every
    // sample row, or the transpose itself is corrupt.
    for (std::size_t c = rows; c < counts.size(); ++c) {
      if (counts[c] != 0) return false;
    }
    return true;
  }
  // Fully dense shards persist no transpose: reconstruct the rows from the
  // slivers and count each directly.
  const std::unique_ptr<PackedBitMatrix> pm = materialize(i);
  const BitMatrix m = unpack_packed(*pm);
  for (std::uint64_t c = 0; c < rows; ++c) {
    if (m.derived_count(c) != pop[c]) return false;
  }
  return true;
}

const PackedBitMatrix& ShardStore::shard(std::size_t i) {
  {
    MutexLock lock(mu_);
    LDLA_EXPECT(i < wrappers_.size(), "shard index out of range");
    if (wrappers_[i]) return *wrappers_[i];
  }
  // Build outside the lock: the prefetch task materializes one shard while
  // the caller thread serves lookups of already-resident ones. The stream
  // driver never materializes the same shard from two threads at once
  // (current-pair shards are acquired before the next-pair task launches),
  // so the double-checked insert below is a correctness backstop, not a
  // dedup path.
  std::unique_ptr<PackedBitMatrix> built = materialize(i);
  {
    // materialize() faulted the metadata sections by copying/validating
    // them; what remains cold are the zero-copy payloads the kernels will
    // alias (slivers and the transpose). Fault them here, off the compute
    // path when called from the prefetch task, and account the whole
    // shard's payload to io_bytes_read.
    LDLA_TRACE_SPAN(kIo);
    const ShardRecord& rec = record(i);
    touch_extent(rec.a_off, rec.a_words * 8);
    touch_extent(rec.b_off, rec.b_words * 8);
    touch_extent(rec.sm_off, index_.n_samples * rec.sm_stride * 8);
    LDLA_TRACE_ADD_IO_READ(shard_bytes_[i]);
    LDLA_METRICS_ONLY(
        static metrics::Counter& c_mat = metrics::counter(
            "ldla_shard_materializations_total",
            "shards materialized (packed payloads faulted in)");
        static metrics::Counter& c_io = metrics::counter(
            "ldla_shard_io_bytes_total",
            "shard payload bytes explicitly faulted/read");
        c_mat.inc();
        c_io.add(shard_bytes_[i]);)
  }
  MutexLock lock(mu_);
  if (!wrappers_[i]) {
    wrappers_[i] = std::move(built);
    resident_ += shard_bytes_[i];
  }
  return *wrappers_[i];
}

bool ShardStore::is_materialized(std::size_t i) const {
  MutexLock lock(mu_);
  LDLA_EXPECT(i < wrappers_.size(), "shard index out of range");
  return wrappers_[i] != nullptr;
}

void ShardStore::release(std::size_t i) {
  {
    MutexLock lock(mu_);
    LDLA_EXPECT(i < wrappers_.size(), "shard index out of range");
    if (!wrappers_[i]) return;
    wrappers_[i].reset();
    resident_ -= shard_bytes_[i];
  }
  LDLA_METRICS_ONLY(
      static metrics::Counter& c_rel = metrics::counter(
          "ldla_shard_releases_total",
          "shards released back to the page cache");
      c_rel.inc();)
  // Hand the pages back: page-align each extent inward-safely (WILLNEED in
  // prefetch() aligns outward; DONTNEED must not clip a neighboring
  // still-resident extent, so only fully-owned pages are dropped).
  const ShardRecord& rec = record(i);
  const long page = ::sysconf(_SC_PAGESIZE);
  const std::uint64_t p = static_cast<std::uint64_t>(page);
  auto drop = [&](std::uint64_t off, std::uint64_t bytes) {
    if (off == 0 || bytes == 0) return;
    const std::uint64_t begin = (off + p - 1) / p * p;
    const std::uint64_t end = (off + bytes) / p * p;
    if (end <= begin) return;
    ::madvise(const_cast<std::uint8_t*>(map_ + begin),
              static_cast<std::size_t>(end - begin), MADV_DONTNEED);
  };
  const std::uint64_t rows = rec.rows();
  drop(rec.a_off, rec.a_words * 8);
  drop(rec.b_off, rec.b_words * 8);
  drop(rec.pop_off, rows * 4);
  drop(rec.kind_off, rows);
  drop(rec.csr_off, (rows + 1) * 8);
  drop(rec.index_off, rec.index_count * 4);
  drop(rec.scaled_off, rec.scaled_off != 0 ? rec.index_count * 4 : 0);
  drop(rec.sm_off, index_.n_samples * rec.sm_stride * 8);
}

std::size_t ShardStore::resident_bytes() const {
  MutexLock lock(mu_);
  return resident_;
}

std::size_t ShardStore::probe_resident_bytes() const {
  const long page = ::sysconf(_SC_PAGESIZE);
  const std::size_t pages =
      (map_size_ + static_cast<std::size_t>(page) - 1) /
      static_cast<std::size_t>(page);
  std::vector<unsigned char> vec(pages);
  if (::mincore(const_cast<std::uint8_t*>(map_), map_size_, vec.data()) != 0) {
    return 0;  // probe unavailable (informational API; never throws)
  }
  std::size_t resident = 0;
  for (unsigned char v : vec) {
    resident += (v & 1U) != 0 ? static_cast<std::size_t>(page) : 0;
  }
  return resident;
}

ShardStore open_shard_store(const std::string& path,
                            const ShardOpenOptions& opts) {
  LDLA_EXPECT(!path.empty(), "open_shard_store needs a file path");
  return ShardStore::open(path, opts);
}

}  // namespace ldla
