// Writers for LD results: CSV/TSV matrices and ranked pair reports.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/ld.hpp"

namespace ldla {

/// Write an LdMatrix as delimited text; NaN renders as "nan".
void write_matrix_csv(std::ostream& out, const LdMatrix& m,
                      char delimiter = ',', int precision = 6);
void write_matrix_csv_file(const std::string& path, const LdMatrix& m,
                           char delimiter = ',', int precision = 6);

struct RankedPair {
  std::size_t i = 0;
  std::size_t j = 0;
  double value = 0.0;
};

/// The `count` highest finite off-diagonal values of a symmetric LD matrix
/// (each unordered pair reported once, i > j), descending.
std::vector<RankedPair> top_pairs(const LdMatrix& m, std::size_t count);

/// Human-readable report of ranked pairs.
void write_top_pairs(std::ostream& out, const std::vector<RankedPair>& pairs,
                     const std::string& value_name);

}  // namespace ldla
