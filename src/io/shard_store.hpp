// On-disk shard store: PackedBitMatrix shards persisted in the exact
// micro-panel sliver layout and memory-mapped back for zero-copy compute.
//
// Every driver consumes packed slivers through PackedBitMatrix, so packing
// is the natural persistence boundary: write_shard_store() splits the SNP
// rows into shards, packs each one with a single resolved GemmPlan, and
// serializes the payloads byte-for-byte (slivers, sparse index lists,
// sample-major transpose blocks, prescaled gather lists — everything
// DESIGN.md §4.6 builds at pack time). Packing cost is paid once per
// dataset, at ingest (tools/ldla_ingest.cpp); at compute time the store is
// mmap'd read-only and each shard is adopted into a PackedBitMatrix via
// from_external(), aliasing the mapping with zero copy — the packed /
// fused / nest drivers cannot tell a mapped shard from an owned pack.
//
// Residency model: the store is the only layer allowed to issue
// mmap/madvise/mincore syscalls (lint-enforced). A shard becomes resident
// when materialize()d — the payload pages are explicitly faulted in under
// the traced io phase (io_bytes_read counts exactly the payload bytes) —
// and leaves residency on release() (MADV_DONTNEED drops the pages from
// this process). resident_bytes() is the store's own accounting of
// materialized payload bytes — the deterministic quantity the streaming
// driver budgets against; probe_resident_bytes() asks the kernel (mincore)
// for the actual page residency of the mapping as a cross-check.
//
// Format hardening: the header/index parser is exposed over a raw byte
// span (parse_shard_index) so the fuzz harness drives it directly, and it
// rejects forged inputs the way io/ldm_binary.cpp does — bad magic,
// truncated maps, extents outside the file, overlapping extents, sliver
// geometry inconsistent with the plan, absurd counts — all via ParseError.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/bit_matrix.hpp"
#include "core/gemm/config.hpp"
#include "core/gemm/packed_bit_matrix.hpp"
#include "util/annotations.hpp"
#include "util/sync.hpp"

namespace ldla {

/// Directory record of one shard: byte offsets (from file start, 64-byte
/// aligned) and element counts of every serialized section. Offset 0 marks
/// an absent optional section.
struct ShardRecord {
  std::uint64_t row_begin = 0;  ///< first SNP row (global index)
  std::uint64_t row_end = 0;    ///< one past the last SNP row
  std::uint64_t a_off = 0;      ///< A-side slivers (u64 × a_words)
  std::uint64_t a_words = 0;
  std::uint64_t b_off = 0;      ///< B-side slivers; absent when shared (mr==nr)
  std::uint64_t b_words = 0;
  std::uint64_t pop_off = 0;    ///< per-column popcounts (u32 × rows)
  std::uint64_t kind_off = 0;   ///< per-column ColumnKind (u8 × rows)
  std::uint64_t csr_off = 0;    ///< CSR offsets (u64 × (rows+1))
  std::uint64_t index_off = 0;  ///< concatenated index lists (u32 × count)
  std::uint64_t index_count = 0;
  std::uint64_t scaled_off = 0;  ///< prescaled lists (u32 × count)
  std::uint64_t sm_off = 0;      ///< sample-major transpose (u64 × samples·stride)
  std::uint64_t sm_stride = 0;   ///< words per transpose row (0 = absent)
  std::uint64_t aflags_off = 0;  ///< mr-sliver sparse flags (u8 × slivers)
  std::uint64_t bflags_off = 0;  ///< nr-sliver sparse flags (absent when shared)

  [[nodiscard]] std::uint64_t rows() const noexcept {
    return row_end - row_begin;
  }
};

/// Validated index of a shard store file.
struct ShardIndex {
  std::uint64_t n_snps = 0;
  std::uint64_t n_words = 0;
  std::uint64_t n_samples = 0;
  GemmPlan plan;
  std::uint64_t file_bytes = 0;
  std::vector<ShardRecord> shards;
};

/// Parse and validate a shard-store header + directory from a byte span
/// (the mmap'd file, or fuzzer-supplied bytes). Throws ParseError on any
/// malformed input; on success every recorded extent is in-bounds,
/// 64-byte aligned, non-overlapping, and consistent with the plan-implied
/// sliver geometry. Payload *contents* are validated lazily at shard
/// materialization (ShardStore::shard).
ShardIndex parse_shard_index(const std::uint8_t* data, std::size_t size);

/// Options for opening a store whose pack geometry must match a plan the
/// caller already resolved (typically resolve_plan() under the current
/// tuning cache). An LDLASH01 header pins the (arch, mr, nr, ku, kc)
/// geometry its slivers were packed with; when a tuner update changes the
/// preferred register tile, an old store silently reopened under the new
/// plan would hand the drivers slivers in the wrong interleave. The guard
/// turns that into a decision at open time:
///  * expect_plan == nullptr      — accept whatever geometry is stored
///    (the store's plan() is authoritative; pre-guard behavior).
///  * mismatch, repack off        — Error naming both geometries and the
///    two remedies (re-ingest, or opt into repack).
///  * mismatch, repack_on_mismatch — open succeeds; each shard is
///    re-packed under `expect_plan` at materialization time (unpack the
///    mapped slivers, pack both sides fresh). Costs one pack per shard and
///    owns its memory instead of aliasing the map; resident-byte
///    accounting keeps using the mapped payload sizes as an approximation.
struct ShardOpenOptions {
  const GemmPlan* expect_plan = nullptr;
  bool repack_on_mismatch = false;
};

/// Split `m` into shards of `rows_per_shard` SNP rows, pack each with the
/// plan `cfg` resolves to, and write the store to `path`. Packing runs
/// shard-at-a-time, so ingest memory is O(one shard), independent of the
/// matrix size. `threads` > 1 team-packs each shard on global_pool().
void write_shard_store(const std::string& path, const BitMatrixView& m,
                       const GemmConfig& cfg, std::size_t rows_per_shard,
                       unsigned threads = 1);

/// Memory-mapped, lazily materialized shard store (see file comment for
/// the residency model). Thread-safety: materialize/shard/release/
/// resident_bytes may be called concurrently (the streaming driver's
/// prefetch task materializes shards while compute runs); each shard's
/// PackedBitMatrix address is stable from materialization until its
/// release, and the caller must not release a shard another thread is
/// still computing from.
class ShardStore {
 public:
  ShardStore() = default;
  ~ShardStore();
  ShardStore(ShardStore&& other) noexcept;
  ShardStore& operator=(ShardStore&& other) noexcept;
  ShardStore(const ShardStore&) = delete;
  ShardStore& operator=(const ShardStore&) = delete;

  /// mmap `path` read-only and validate its index. Throws Error on I/O
  /// failure, ParseError on a malformed file, and rejects stores whose
  /// plan names a kernel variant this build never compiled or this
  /// machine cannot run. With `opts.expect_plan` set, additionally
  /// enforces the pack-geometry guard documented on ShardOpenOptions.
  static ShardStore open(const std::string& path,
                         const ShardOpenOptions& opts = {});

  [[nodiscard]] std::size_t shards() const noexcept {
    return index_.shards.size();
  }
  [[nodiscard]] std::size_t snps() const noexcept { return index_.n_snps; }
  [[nodiscard]] std::size_t samples() const noexcept {
    return index_.n_samples;
  }
  [[nodiscard]] std::size_t words_per_snp() const noexcept {
    return index_.n_words;
  }
  /// The plan shards materialize under: the stored plan, or the expected
  /// plan when the open opted into repack-on-mismatch.
  [[nodiscard]] const GemmPlan& plan() const noexcept {
    return repack_plan_ ? *repack_plan_ : index_.plan;
  }
  /// The plan recorded in the LDLASH01 header (the on-disk geometry).
  [[nodiscard]] const GemmPlan& stored_plan() const noexcept {
    return index_.plan;
  }
  /// True when materialization re-packs shards under plan() instead of
  /// aliasing the mapped slivers.
  [[nodiscard]] bool repacks_on_materialize() const noexcept {
    return repack_plan_.has_value();
  }
  [[nodiscard]] const ShardRecord& record(std::size_t i) const;
  [[nodiscard]] std::size_t shard_row_begin(std::size_t i) const {
    return record(i).row_begin;
  }
  [[nodiscard]] std::size_t shard_rows(std::size_t i) const {
    return record(i).rows();
  }

  /// Payload bytes of shard `i` (what materialization makes resident).
  [[nodiscard]] std::size_t shard_bytes(std::size_t i) const;
  [[nodiscard]] std::size_t total_payload_bytes() const noexcept {
    return total_payload_bytes_;
  }
  [[nodiscard]] std::size_t max_shard_bytes() const noexcept {
    return max_shard_bytes_;
  }

  /// Global per-SNP derived-allele counts, concatenated from the shards'
  /// persisted popcounts — the streaming driver builds its StatTables from
  /// these without ever holding the bit matrix.
  [[nodiscard]] std::vector<std::uint64_t> allele_counts() const;

  /// Hint the kernel to read shard `i`'s pages ahead (MADV_WILLNEED).
  /// Asynchronous; does not materialize and touches no counters.
  void prefetch(std::size_t i) const;

  /// Materialize shard `i`: adopt the mapped payloads into a
  /// PackedBitMatrix (validating payload invariants; throws ParseError on
  /// corrupt contents) and explicitly fault its pages in under the io
  /// phase (counted in io_bytes_read). Idempotent; returns the shard.
  const PackedBitMatrix& shard(std::size_t i);

  /// Was shard `i` materialized (and not yet released)?
  [[nodiscard]] bool is_materialized(std::size_t i) const;

  /// Integrity cross-check: recompute shard `i`'s per-column popcounts
  /// from its payloads and compare against the persisted popcount section.
  /// Uses the positional-popcount strip engine over the mapped
  /// sample-major transpose when present (one pass over the samples covers
  /// every column, padding columns included); fully dense shards carry no
  /// transpose, so those unpack the slivers and count rows directly.
  /// Returns false on any disagreement. Does not materialize into the
  /// resident set.
  [[nodiscard]] bool verify_shard_popcounts(std::size_t i) const;

  /// Drop shard `i`'s wrapper and advise the kernel to reclaim its pages
  /// (MADV_DONTNEED). No-op when not materialized.
  void release(std::size_t i);

  /// Store-accounted residency: total payload bytes of currently
  /// materialized shards (deterministic; what the stream budget bounds).
  [[nodiscard]] std::size_t resident_bytes() const;

  /// Kernel-reported residency of the mapping (mincore), in bytes.
  [[nodiscard]] std::size_t probe_resident_bytes() const;

 private:
  void unmap() noexcept;
  void touch_extent(std::uint64_t off, std::uint64_t bytes) const;
  [[nodiscard]] std::unique_ptr<PackedBitMatrix> materialize(
      std::size_t i) const;

  const std::uint8_t* map_ = nullptr;
  std::size_t map_size_ = 0;
  ShardIndex index_;
  std::optional<GemmPlan> repack_plan_;  ///< set = repack at materialization
  std::vector<std::size_t> shard_bytes_;
  std::size_t total_payload_bytes_ = 0;
  std::size_t max_shard_bytes_ = 0;

  mutable Mutex mu_;
  std::vector<std::unique_ptr<PackedBitMatrix>> wrappers_ LDLA_GUARDED_BY(mu_);
  std::size_t resident_ LDLA_GUARDED_BY(mu_) = 0;
};

/// Convenience: ShardStore::open (the PUBLIC_API manifest entry point).
ShardStore open_shard_store(const std::string& path,
                            const ShardOpenOptions& opts = {});

}  // namespace ldla
