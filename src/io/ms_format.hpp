// Hudson `ms` coalescent-simulator output format — the lingua franca of
// population-genetics tooling (OmegaPlus consumes it directly).
//
// Layout of one replicate:
//
//   //
//   segsites: <n>
//   positions: <p1> <p2> ... <pn>      (fractions of the region, sorted)
//   <haplotype line 1: n chars of 0/1>   (one line per sample)
//   ...
//
// ms stores samples as rows and SNPs as columns; parsing transposes into
// this library's SNP-major BitMatrix.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/bit_matrix.hpp"

namespace ldla {

struct MsReplicate {
  BitMatrix genotypes;            ///< SNP-major
  std::vector<double> positions;  ///< one per SNP, in [0, 1]
};

/// Parse every replicate in a stream; throws ParseError on malformed input.
std::vector<MsReplicate> parse_ms(std::istream& in);

/// Parse a file (convenience; throws on I/O failure too).
std::vector<MsReplicate> parse_ms_file(const std::string& path);

/// Serialize one replicate in ms format (with a leading "ldla" command
/// line and "//" separator so standard tools accept it).
void write_ms(std::ostream& out, const MsReplicate& rep);
void write_ms_file(const std::string& path, const MsReplicate& rep);

}  // namespace ldla
