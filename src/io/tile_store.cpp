#include "io/tile_store.hpp"

#include <cstring>
#include <limits>

#include "util/contract.hpp"
#include "util/metrics.hpp"

namespace ldla {
namespace {

// "LDLATIL1" opens the file, "LDLATIX1" seals the footer: a reader that
// finds the head magic but not the tail knows the writer died mid-stream.
constexpr unsigned char kMagic[8] = {'L', 'D', 'L', 'A', 'T', 'I', 'L', '1'};
constexpr unsigned char kFootMagic[8] = {'L', 'D', 'L', 'A',
                                         'T', 'I', 'X', '1'};
constexpr std::size_t kHeaderBytes = sizeof(kMagic) + 4 * 8;
constexpr std::size_t kRecordU64s = 7;
constexpr std::size_t kRecordBytes = kRecordU64s * 8;
constexpr std::size_t kFooterBytes = 2 * 8 + sizeof(kFootMagic);

[[noreturn]] void bad(const std::string& what) {
  throw ParseError("tile store: " + what);
}

void put_u64(std::ostream& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(v));
  out.write(buf, sizeof(buf));
}

std::uint64_t get_u64(std::istream& in) {
  char buf[8];
  in.read(buf, sizeof(buf));
  std::uint64_t v;
  std::memcpy(&v, buf, sizeof(v));
  return v;
}

/// XOR-encode `n` doubles into `enc`: per value, one control byte holding
/// the count of significant low-order bytes of (bits ^ prev), then exactly
/// those bytes. prev starts at 0 so the block is self-contained.
void xor_encode(const double* v, std::size_t n,
                std::vector<std::uint8_t>& enc) {
  enc.clear();
  enc.reserve(n * 9);
  std::uint64_t prev = 0;
  for (std::size_t k = 0; k < n; ++k) {
    std::uint64_t bits;
    std::memcpy(&bits, &v[k], sizeof(bits));
    const std::uint64_t delta = bits ^ prev;
    prev = bits;
    std::uint8_t sig = 8;
    while (sig > 0 && (delta >> ((sig - 1) * 8)) == 0) {
      --sig;
    }
    enc.push_back(sig);
    for (std::uint8_t b = 0; b < sig; ++b) {
      enc.push_back(static_cast<std::uint8_t>(delta >> (b * 8)));
    }
  }
}

void xor_decode(const std::uint8_t* enc, std::size_t bytes, double* v,
                std::size_t n) {
  std::uint64_t prev = 0;
  std::size_t pos = 0;
  for (std::size_t k = 0; k < n; ++k) {
    if (pos >= bytes) bad("XOR payload truncated");
    const std::uint8_t sig = enc[pos++];
    if (sig > 8 || pos + sig > bytes) bad("corrupt XOR control byte");
    std::uint64_t delta = 0;
    for (std::uint8_t b = 0; b < sig; ++b) {
      delta |= static_cast<std::uint64_t>(enc[pos++]) << (b * 8);
    }
    prev ^= delta;
    std::memcpy(&v[k], &prev, sizeof(prev));
  }
  if (pos != bytes) bad("XOR payload has trailing bytes");
}

}  // namespace

TileStoreWriter::TileStoreWriter(const std::string& path, LdStatistic stat,
                                 std::size_t matrix_rows,
                                 std::size_t matrix_cols, TileCodec codec)
    : out_(path, std::ios::binary | std::ios::trunc),
      path_(path),
      codec_(codec) {
  if (!out_) throw Error("tile store: cannot create " + path);
  out_.write(reinterpret_cast<const char*>(kMagic), sizeof(kMagic));
  put_u64(out_, static_cast<std::uint64_t>(stat));
  put_u64(out_, matrix_rows);
  put_u64(out_, matrix_cols);
  put_u64(out_, static_cast<std::uint64_t>(codec));
}

TileStoreWriter::~TileStoreWriter() {
  try {
    close();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
    // Destructor path: the file is left without a footer, which the
    // reader reports as truncated — the recoverable outcome.
  }
}

void TileStoreWriter::add(const LdTile& t) {
  LDLA_EXPECT(!closed_, "tile store already closed");
  TileRecord rec;
  rec.row_begin = t.row_begin;
  rec.col_begin = t.col_begin;
  rec.rows = t.rows;
  rec.cols = t.cols;
  rec.offset = static_cast<std::uint64_t>(out_.tellp());
  rec.raw_bytes = static_cast<std::uint64_t>(t.rows) * t.cols * 8;

  if (codec_ == TileCodec::kRaw) {
    rec.bytes = rec.raw_bytes;
    for (std::size_t i = 0; i < t.rows; ++i) {
      out_.write(reinterpret_cast<const char*>(t.values + i * t.ld),
                 static_cast<std::streamsize>(t.cols * 8));
    }
  } else {
    // Pack the (possibly ld-strided) tile row-major, then XOR-encode.
    std::vector<double> dense;
    const double* src = t.values;
    if (t.ld != t.cols && t.rows > 1) {
      dense.resize(static_cast<std::size_t>(t.rows) * t.cols);
      for (std::size_t i = 0; i < t.rows; ++i) {
        std::memcpy(dense.data() + i * t.cols, t.values + i * t.ld,
                    t.cols * 8);
      }
      src = dense.data();
    }
    xor_encode(src, static_cast<std::size_t>(t.rows) * t.cols, scratch_);
    rec.bytes = scratch_.size();
    out_.write(reinterpret_cast<const char*>(scratch_.data()),
               static_cast<std::streamsize>(scratch_.size()));
  }
  payload_bytes_ += rec.bytes;
  raw_bytes_ += rec.raw_bytes;
  index_.push_back(rec);
  LDLA_METRICS_ONLY(
      static metrics::Counter& c_tiles = metrics::counter(
          "ldla_tiles_written_total", "stat tiles written to tile stores");
      static metrics::Counter& c_payload = metrics::counter(
          "ldla_tile_payload_bytes_total",
          "encoded tile payload bytes written");
      static metrics::Counter& c_raw = metrics::counter(
          "ldla_tile_raw_bytes_total",
          "pre-codec tile bytes (rows * cols * 8)");
      c_tiles.inc();
      c_payload.add(rec.bytes);
      c_raw.add(rec.raw_bytes);)
}

void TileStoreWriter::close() {
  if (closed_) return;
  closed_ = true;
  const std::uint64_t index_off = static_cast<std::uint64_t>(out_.tellp());
  for (const TileRecord& rec : index_) {
    put_u64(out_, rec.row_begin);
    put_u64(out_, rec.col_begin);
    put_u64(out_, rec.rows);
    put_u64(out_, rec.cols);
    put_u64(out_, rec.offset);
    put_u64(out_, rec.bytes);
    put_u64(out_, rec.raw_bytes);
  }
  put_u64(out_, index_off);
  put_u64(out_, index_.size());
  out_.write(reinterpret_cast<const char*>(kFootMagic), sizeof(kFootMagic));
  out_.flush();
  if (!out_) throw Error("tile store: write failed for " + path_);
  out_.close();
}

TileStoreReader::TileStoreReader(const std::string& path)
    : in_(path, std::ios::binary) {
  if (!in_) throw Error("tile store: cannot open " + path);
  in_.seekg(0, std::ios::end);
  const std::uint64_t size = static_cast<std::uint64_t>(in_.tellg());
  if (size < kHeaderBytes + kFooterBytes) bad("truncated file");

  in_.seekg(0);
  unsigned char magic[8];
  in_.read(reinterpret_cast<char*>(magic), sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(magic)) != 0) bad("bad magic");
  const std::uint64_t stat = get_u64(in_);
  if (stat > static_cast<std::uint64_t>(LdStatistic::kRSquared)) {
    bad("unknown statistic");
  }
  stat_ = static_cast<LdStatistic>(stat);
  rows_ = get_u64(in_);
  cols_ = get_u64(in_);
  const std::uint64_t codec = get_u64(in_);
  if (codec > static_cast<std::uint64_t>(TileCodec::kXor)) {
    bad("unknown codec");
  }
  codec_ = static_cast<TileCodec>(codec);

  in_.seekg(static_cast<std::streamoff>(size - kFooterBytes));
  const std::uint64_t index_off = get_u64(in_);
  const std::uint64_t count = get_u64(in_);
  unsigned char foot[8];
  in_.read(reinterpret_cast<char*>(foot), sizeof(foot));
  if (std::memcmp(foot, kFootMagic, sizeof(foot)) != 0) {
    bad("missing footer (writer did not close the store)");
  }
  if (index_off < kHeaderBytes || index_off > size - kFooterBytes ||
      count != (size - kFooterBytes - index_off) / kRecordBytes ||
      index_off + count * kRecordBytes != size - kFooterBytes) {
    bad("index extent inconsistent with the file size");
  }

  in_.seekg(static_cast<std::streamoff>(index_off));
  index_.resize(count);
  for (TileRecord& rec : index_) {
    rec.row_begin = get_u64(in_);
    rec.col_begin = get_u64(in_);
    rec.rows = get_u64(in_);
    rec.cols = get_u64(in_);
    rec.offset = get_u64(in_);
    rec.bytes = get_u64(in_);
    rec.raw_bytes = get_u64(in_);
    if (rec.rows == 0 || rec.cols == 0) bad("empty tile record");
    if (rec.rows > rows_ || rec.row_begin > rows_ - rec.rows ||
        rec.cols > cols_ || rec.col_begin > cols_ - rec.cols) {
      bad("tile outside the matrix");
    }
    if (rec.raw_bytes != rec.rows * rec.cols * 8) {
      bad("raw size inconsistent with the tile shape");
    }
    if (rec.offset < kHeaderBytes || rec.offset > index_off ||
        rec.bytes > index_off - rec.offset) {
      bad("tile payload outside the payload region");
    }
    if (codec_ == TileCodec::kRaw && rec.bytes != rec.raw_bytes) {
      bad("raw tile with mismatched payload size");
    }
  }
  if (!in_) bad("index read failed");
}

const TileRecord& TileStoreReader::record(std::size_t t) const {
  LDLA_EXPECT(t < index_.size(), "tile index out of range");
  return index_[t];
}

TileData TileStoreReader::read_tile(std::size_t t) {
  const TileRecord& rec = record(t);
  TileData out;
  out.rec = rec;
  out.values.resize(static_cast<std::size_t>(rec.rows) * rec.cols);
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(rec.offset));
  if (codec_ == TileCodec::kRaw) {
    in_.read(reinterpret_cast<char*>(out.values.data()),
             static_cast<std::streamsize>(rec.bytes));
  } else {
    std::vector<std::uint8_t> enc(rec.bytes);
    in_.read(reinterpret_cast<char*>(enc.data()),
             static_cast<std::streamsize>(enc.size()));
    if (!in_) bad("payload read failed");
    xor_decode(enc.data(), enc.size(), out.values.data(),
               out.values.size());
  }
  if (!in_) bad("payload read failed");
  return out;
}

bool TileStoreReader::find(std::size_t i, std::size_t j, double* out) {
  LDLA_EXPECT(out != nullptr, "find needs an output location");
  for (std::size_t t = 0; t < index_.size(); ++t) {
    const TileRecord& rec = index_[t];
    if (i >= rec.row_begin && i < rec.row_begin + rec.rows &&
        j >= rec.col_begin && j < rec.col_begin + rec.cols) {
      const TileData data = read_tile(t);
      *out = data.at(i - rec.row_begin, j - rec.col_begin);
      return true;
    }
  }
  return false;
}

}  // namespace ldla
