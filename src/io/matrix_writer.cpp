#include "io/matrix_writer.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>

#include "util/contract.hpp"
#include "util/trace.hpp"

namespace ldla {

void write_matrix_csv(std::ostream& out, const LdMatrix& m, char delimiter,
                      int precision) {
  LDLA_TRACE_SPAN(kIo);
  out << std::setprecision(precision);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (j != 0) out << delimiter;
      const double v = m(i, j);
      if (std::isnan(v)) {
        out << "nan";
      } else {
        out << v;
      }
    }
    out << '\n';
  }
}

void write_matrix_csv_file(const std::string& path, const LdMatrix& m,
                           char delimiter, int precision) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open output file: " + path);
  write_matrix_csv(out, m, delimiter, precision);
}

std::vector<RankedPair> top_pairs(const LdMatrix& m, std::size_t count) {
  LDLA_EXPECT(m.rows() == m.cols(), "top_pairs expects a symmetric matrix");
  std::vector<RankedPair> all;
  for (std::size_t i = 1; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const double v = m(i, j);
      if (std::isfinite(v)) all.push_back({i, j, v});
    }
  }
  const std::size_t k = std::min(count, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k),
                    all.end(), [](const RankedPair& a, const RankedPair& b) {
                      if (a.value != b.value) return a.value > b.value;
                      if (a.i != b.i) return a.i < b.i;
                      return a.j < b.j;
                    });
  all.resize(k);
  return all;
}

void write_top_pairs(std::ostream& out, const std::vector<RankedPair>& pairs,
                     const std::string& value_name) {
  out << "rank\tsnp_i\tsnp_j\t" << value_name << "\n";
  std::size_t rank = 1;
  for (const auto& p : pairs) {
    out << rank++ << '\t' << p.i << '\t' << p.j << '\t' << std::setprecision(6)
        << p.value << "\n";
  }
}

}  // namespace ldla
