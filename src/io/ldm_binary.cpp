#include "io/ldm_binary.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>

#include "util/contract.hpp"
#include "util/trace.hpp"

namespace ldla {

namespace {
constexpr std::array<char, 8> kMagic = {'L', 'D', 'L', 'A', 'B', 'M', '0', '1'};

void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw ParseError("ldm: truncated header");
  return v;
}
}  // namespace

void write_ldm(std::ostream& out, const BitMatrix& m) {
  LDLA_TRACE_SPAN(kIo);
  out.write(kMagic.data(), kMagic.size());
  write_u64(out, m.snps());
  write_u64(out, m.samples());
  for (std::size_t s = 0; s < m.snps(); ++s) {
    out.write(reinterpret_cast<const char*>(m.row_data(s)),
              static_cast<std::streamsize>(m.words_per_snp() *
                                           sizeof(std::uint64_t)));
  }
  if (!out) throw Error("ldm: write failed");
}

void write_ldm_file(const std::string& path, const BitMatrix& m) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot open ldm file for writing: " + path);
  write_ldm(out, m);
}

BitMatrix read_ldm(std::istream& in) {
  LDLA_TRACE_SPAN(kIo);
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) throw ParseError("ldm: bad magic");
  const std::uint64_t snps = read_u64(in);
  const std::uint64_t samples = read_u64(in);
  if (samples >= (std::uint64_t{1} << 32)) {
    throw ParseError("ldm: sample count exceeds the 2^32 format limit");
  }
  // Zero-sample rows carry no payload bytes, so the stream-size guard below
  // cannot bound `snps` — a forged header could make us spin over billions
  // of phantom rows. Reject the degenerate shape outright.
  if (samples == 0 && snps != 0) {
    throw ParseError("ldm: SNP rows with zero samples");
  }
  // A forged header must not drive a huge allocation: when the stream is
  // seekable (files, string streams), require the advertised payload to fit
  // in the bytes that actually remain.
  const std::istream::pos_type here = in.tellg();
  if (here != std::istream::pos_type(-1)) {
    in.seekg(0, std::ios::end);
    const std::istream::pos_type end = in.tellg();
    in.clear();
    in.seekg(here);
    const auto remaining =
        static_cast<std::uint64_t>(std::max<std::streamoff>(0, end - here));
    const std::uint64_t words = words_for_bits(samples);
    if (words != 0 && snps > remaining / sizeof(std::uint64_t) / words) {
      throw ParseError("ldm: header advertises more payload than the stream");
    }
  }

  BitMatrix m(snps, samples);
  for (std::size_t s = 0; s < m.snps(); ++s) {
    in.read(reinterpret_cast<char*>(m.row_data(s)),
            static_cast<std::streamsize>(m.words_per_snp() *
                                         sizeof(std::uint64_t)));
    if (!in) throw ParseError("ldm: truncated payload at SNP " +
                              std::to_string(s));
  }
  if (!m.padding_is_clean()) {
    throw ParseError("ldm: payload has non-zero padding bits");
  }
  return m;
}

BitMatrix read_ldm_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open ldm file: " + path);
  return read_ldm(in);
}

}  // namespace ldla
