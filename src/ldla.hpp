// Umbrella header: the full public API of ldla.
//
// ldla — Linkage Disequilibrium as dense Linear Algebra. A from-scratch
// reproduction of Alachiotis, Popovici & Low, "Efficient Computation of
// Linkage Disequilibria as Dense Linear Algebra Operations" (IPPS 2016).
//
// Typical use:
//
//   #include "ldla.hpp"
//   ldla::BitMatrix g = ldla::parse_ms_file("data.ms")[0].genotypes;
//   ldla::LdMatrix r2 = ldla::ld_matrix_parallel(g);   // all-pairs r^2
//
// See README.md for a tour and DESIGN.md for the architecture.
#pragma once

#include "core/bit_matrix.hpp"      // packed genomic matrix (Fig. 2 layout)
#include "core/popcount.hpp"        // popcount backend suite (Sections IV/V)
#include "core/gemm/config.hpp"     // blocking / kernel configuration
#include "core/gemm/count_matrix.hpp"
#include "core/gemm/macro.hpp"      // rectangular popcount-GEMM
#include "core/gemm/packed_bit_matrix.hpp"  // persistent packed operand
#include "core/gemm/syrk.hpp"       // symmetric count driver
#include "core/ld.hpp"              // D / D' / r^2 statistics and drivers
#include "core/ld_stream.hpp"       // out-of-core streaming drivers
#include "core/band.hpp"            // banded scans and LD-decay profiles
#include "core/ld_blocks.hpp"       // haplotype-block partitioning
#include "core/genotype_ld.hpp"     // genotype-dosage LD at GEMM speed
#include "core/higher_order.hpp"    // three-locus disequilibrium
#include "core/parallel.hpp"        // multi-threaded drivers
#include "core/missing.hpp"         // alignment-gap extension (Section VII)
#include "core/fsm.hpp"             // finite-sites extension (Section VII)
#include "core/tanimoto.hpp"        // fingerprint similarity (Section VII)
#include "baselines/naive.hpp"      // oracles
#include "baselines/plink_like.hpp" // PLINK-1.9-style comparator
#include "baselines/omegaplus_like.hpp"  // OmegaPlus-style comparator
#include "omega/omega_stat.hpp"     // Kim-Nielsen omega statistic
#include "omega/sweep_scan.hpp"     // selective-sweep scan
#include "io/ms_format.hpp"         // Hudson ms I/O
#include "io/vcf_lite.hpp"          // minimal VCF reader
#include "io/ldm_binary.hpp"        // binary matrix snapshots
#include "io/matrix_writer.hpp"     // CSV / report writers
#include "io/shard_store.hpp"       // mmap'd out-of-core shard store
#include "io/tile_store.hpp"        // indexed compressed stat-tile store
#include "sim/wright_fisher.hpp"    // dataset simulator
#include "sim/maf_spectrum.hpp"     // SFS-controlled rare-variant panels
#include "sim/sweep_sim.hpp"        // sweep simulator
#include "sim/fingerprint_sim.hpp"  // fingerprint simulator
