// The omega statistic of Kim & Nielsen (2004) — the selective-sweep
// detector OmegaPlus builds on LD (the paper's second comparator and its
// motivating application).
//
// For a window of w SNPs split after the l-th SNP into a left group L and a
// right group R:
//
//             ( C(l,2) + C(w-l,2) )^-1  ( sum_{i<j in L} r2 + sum_{i<j in R} r2 )
//   omega_l = ---------------------------------------------------------------
//             ( l (w-l) )^-1  sum_{i in L, j in R} r2
//
// High omega = strong LD within each flank but weak LD across them — the
// signature left by a completed selective sweep between the groups.
#pragma once

#include <cstddef>
#include <vector>

#include "core/bit_matrix.hpp"
#include "core/ld.hpp"

namespace ldla {

/// omega for one split of a window whose pairwise r^2 matrix is given.
/// `l` SNPs go left (1 <= l <= w-1). NaN r^2 entries (monomorphic SNPs)
/// contribute zero. Returns 0 when the cross term vanishes with empty
/// within-groups, and +inf when within-LD is positive but cross-LD is zero.
double omega_at_split(const LdMatrix& r2, std::size_t l);

struct OmegaMax {
  double omega = 0.0;
  std::size_t split = 0;  ///< best l
};

/// omega maximized over all splits of the window (OmegaPlus's omega_max),
/// computed in O(w^2) total via prefix sums.
OmegaMax omega_max(const LdMatrix& r2);

/// Pairwise r^2 matrix of a contiguous SNP window via the GEMM engine
/// (helper shared by the scan and the examples).
LdMatrix window_r2(const BitMatrix& g, std::size_t snp_begin,
                   std::size_t snp_end, const GemmConfig& cfg = {});

}  // namespace ldla
