// Whole-region selective-sweep scan: omega evaluated on a grid of positions
// (OmegaPlus's main loop), with each window's pairwise r^2 matrix produced
// by the GEMM engine.
#pragma once

#include <cstddef>
#include <vector>

#include "core/bit_matrix.hpp"
#include "core/gemm/config.hpp"
#include "core/gemm/packed_bit_matrix.hpp"

namespace ldla {

struct SweepScanParams {
  std::size_t grid_points = 100;   ///< evaluation positions across [0, 1)
  std::size_t window_snps = 40;    ///< SNPs on EACH side of the grid point
  /// OmegaPlus-style window search: when non-empty, every grid point also
  /// evaluates these half-window sizes and reports the maximizing one
  /// (window_snps is always included).
  std::vector<std::size_t> window_candidates;
  GemmConfig gemm;
  /// Optional persistent packed operand for `g` (see LdOptions::packed).
  /// Windows are tiny relative to the region and neighbouring grid points
  /// overlap heavily, so the scan slices one pack instead of gathering and
  /// re-packing every window; when null, omega_scan packs once per call
  /// while gemm.pack_once is on.
  const PackedBitMatrix* packed = nullptr;
  /// Fused statistics epilogue (see LdOptions::fused): each window's r²
  /// matrix is filled straight from hot count tiles, so the w×w window
  /// CountMatrix disappears — ω consumes r² with zero count storage.
  /// Bit-identical to the two-pass path; applies on the packed path.
  bool fused = true;
  /// Work distribution of omega_scan_parallel (see LdOptions::parallel).
  /// kNest (default): the grid is walked sequentially and the whole team
  /// cooperates inside each window's SYRK nest, stealing macro-tile chunks
  /// — one window is in flight at a time, so per-call memory stays one
  /// window regardless of thread count. kCoarse: grid points are split
  /// statically across workers, each evaluating whole windows (the
  /// historical mode, kept as the ablation control). Results identical.
  ParallelMode parallel = ParallelMode::kNest;
};

struct OmegaPoint {
  double position = 0.0;
  double omega = 0.0;
  std::size_t window_begin = 0;  ///< SNP range the window covered
  std::size_t window_end = 0;
  std::size_t best_split = 0;    ///< split (SNPs left of it) maximizing omega
};

/// Scan a region. `positions` are the sorted SNP coordinates in [0, 1)
/// (as produced by the simulators or parsed from input files).
std::vector<OmegaPoint> omega_scan(const BitMatrix& g,
                                   const std::vector<double>& positions,
                                   const SweepScanParams& params = {});

/// Same scan with `threads` workers (0 = default_thread_count()); the
/// work distribution follows params.parallel. Results identical to
/// omega_scan.
std::vector<OmegaPoint> omega_scan_parallel(
    const BitMatrix& g, const std::vector<double>& positions,
    const SweepScanParams& params = {}, unsigned threads = 0);

/// Highest-omega grid point of a scan (the sweep candidate).
OmegaPoint omega_scan_peak(const std::vector<OmegaPoint>& scan);

}  // namespace ldla
