#include "omega/omega_stat.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "core/gemm/count_matrix.hpp"
#include "core/gemm/syrk.hpp"
#include "core/popcount.hpp"
#include "util/contract.hpp"

namespace ldla {

namespace {

double finite_or_zero(double v) { return std::isfinite(v) ? v : 0.0; }

double pairs2(double k) { return k * (k - 1.0) / 2.0; }

struct PrefixSums {
  // within[l]  = sum of r2 over pairs (i < j < l)
  // upper[i]   = sum of r2 over (i, j>i)
  std::vector<double> within;
  std::vector<double> prefix_upper;
};

PrefixSums build_prefix(const LdMatrix& r2) {
  const std::size_t w = r2.rows();
  PrefixSums ps;
  ps.within.assign(w + 1, 0.0);
  ps.prefix_upper.assign(w + 1, 0.0);
  std::vector<double> upper(w, 0.0);
  for (std::size_t i = 0; i < w; ++i) {
    for (std::size_t j = i + 1; j < w; ++j) {
      upper[i] += finite_or_zero(r2(i, j));
    }
  }
  // within[l+1] = within[l] + sum_{i<l} r2(i, l)
  for (std::size_t l = 0; l < w; ++l) {
    double col = 0.0;
    for (std::size_t i = 0; i < l; ++i) col += finite_or_zero(r2(i, l));
    ps.within[l + 1] = ps.within[l] + col;
    ps.prefix_upper[l + 1] = ps.prefix_upper[l] + upper[l];
  }
  return ps;
}

double omega_from_sums(double sum_l, double sum_r, double cross,
                       std::size_t l, std::size_t w) {
  const double n_within = pairs2(static_cast<double>(l)) +
                          pairs2(static_cast<double>(w - l));
  const double n_cross = static_cast<double>(l) * static_cast<double>(w - l);
  if (n_within <= 0.0 || n_cross <= 0.0) return 0.0;
  const double numer = (sum_l + sum_r) / n_within;
  const double denom = cross / n_cross;
  if (denom <= 0.0) {
    return numer > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
  }
  return numer / denom;
}

}  // namespace

double omega_at_split(const LdMatrix& r2, std::size_t l) {
  const std::size_t w = r2.rows();
  LDLA_EXPECT(r2.rows() == r2.cols(), "window matrix must be square");
  LDLA_EXPECT(l >= 1 && l < w, "split must leave both groups non-empty");
  const PrefixSums ps = build_prefix(r2);
  const double sum_l = ps.within[l];
  const double total = ps.within[w];
  const double cross = ps.prefix_upper[l] - ps.within[l];
  const double sum_r = total - sum_l - cross;
  return omega_from_sums(sum_l, sum_r, cross, l, w);
}

OmegaMax omega_max(const LdMatrix& r2) {
  const std::size_t w = r2.rows();
  LDLA_EXPECT(r2.rows() == r2.cols(), "window matrix must be square");
  OmegaMax best;
  if (w < 2) return best;
  const PrefixSums ps = build_prefix(r2);
  const double total = ps.within[w];
  for (std::size_t l = 1; l < w; ++l) {
    const double sum_l = ps.within[l];
    const double cross = ps.prefix_upper[l] - ps.within[l];
    const double sum_r = total - sum_l - cross;
    const double omega = omega_from_sums(sum_l, sum_r, cross, l, w);
    if (omega > best.omega) {
      best.omega = omega;
      best.split = l;
    }
  }
  return best;
}

LdMatrix window_r2(const BitMatrix& g, std::size_t snp_begin,
                   std::size_t snp_end, const GemmConfig& cfg) {
  LDLA_EXPECT(snp_begin <= snp_end && snp_end <= g.snps(),
              "window out of range");
  const std::size_t w = snp_end - snp_begin;
  LdMatrix out(w, w);
  if (w == 0) return out;

  const BitMatrixView view = g.view(snp_begin, snp_end);
  CountMatrix counts(w, w);
  syrk_count(view, counts.ref(), cfg);

  std::vector<std::uint64_t> ci(w);
  for (std::size_t s = 0; s < w; ++s) {
    ci[s] = popcount_words({view.row(s), view.n_words});
  }
  for (std::size_t i = 0; i < w; ++i) {
    for (std::size_t j = 0; j < w; ++j) {
      out(i, j) = ld_r_squared(ci[i], ci[j], counts(i, j), g.samples());
    }
  }
  return out;
}

}  // namespace ldla
