#include "omega/sweep_scan.hpp"

#include <algorithm>
#include <optional>
#include <thread>

#include "omega/omega_stat.hpp"
#include "util/contract.hpp"
#include "util/thread_pool.hpp"

namespace ldla {

namespace {

void validate(const BitMatrix& g, const std::vector<double>& positions,
              const SweepScanParams& params) {
  LDLA_EXPECT(positions.size() == g.snps(), "need one position per SNP");
  LDLA_EXPECT(std::is_sorted(positions.begin(), positions.end()),
              "positions must be sorted");
  LDLA_EXPECT(params.grid_points > 0, "need at least one grid point");
  LDLA_EXPECT(params.window_snps >= 2, "window needs at least 2 SNPs a side");
}

std::optional<OmegaPoint> scan_window(const BitMatrix& g, double x,
                                      std::size_t center, std::size_t half,
                                      const GemmConfig& gemm) {
  const std::size_t n = g.snps();
  const std::size_t begin = center > half ? center - half : 0;
  const std::size_t end = std::min(n, center + half);
  if (end - begin < 4) return std::nullopt;

  // Monomorphic SNPs have undefined r^2 and, at window edges, produce
  // degenerate zero-cross splits (omega = inf); drop them, as OmegaPlus
  // does, and compute omega on the compacted window.
  std::vector<std::size_t> keep;
  keep.reserve(end - begin);
  for (std::size_t s = begin; s < end; ++s) {
    if (g.is_polymorphic(s)) keep.push_back(s);
  }
  if (keep.size() < 4) return std::nullopt;

  const BitMatrix window = g.gather_rows(keep);
  const LdMatrix r2 = window_r2(window, 0, window.snps(), gemm);
  const OmegaMax m = omega_max(r2);
  return OmegaPoint{x, m.omega, begin, end, m.split};
}

std::optional<OmegaPoint> scan_grid_point(
    const BitMatrix& g, const std::vector<double>& positions,
    const SweepScanParams& params, std::size_t gp) {
  const double x = (static_cast<double>(gp) + 0.5) /
                   static_cast<double>(params.grid_points);
  const std::size_t center = static_cast<std::size_t>(
      std::lower_bound(positions.begin(), positions.end(), x) -
      positions.begin());

  std::optional<OmegaPoint> best =
      scan_window(g, x, center, params.window_snps, params.gemm);
  // OmegaPlus-style search over window extents: report the maximizing one.
  for (const std::size_t half : params.window_candidates) {
    if (half == params.window_snps || half < 2) continue;
    const auto candidate = scan_window(g, x, center, half, params.gemm);
    if (candidate && (!best || candidate->omega > best->omega)) {
      best = candidate;
    }
  }
  return best;
}

}  // namespace

std::vector<OmegaPoint> omega_scan(const BitMatrix& g,
                                   const std::vector<double>& positions,
                                   const SweepScanParams& params) {
  validate(g, positions, params);
  std::vector<OmegaPoint> out;
  out.reserve(params.grid_points);
  if (g.snps() < 4) return out;
  for (std::size_t gp = 0; gp < params.grid_points; ++gp) {
    if (const auto point = scan_grid_point(g, positions, params, gp)) {
      out.push_back(*point);
    }
  }
  return out;
}

std::vector<OmegaPoint> omega_scan_parallel(
    const BitMatrix& g, const std::vector<double>& positions,
    const SweepScanParams& params, unsigned threads) {
  validate(g, positions, params);
  if (g.snps() < 4) return {};
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }

  std::vector<std::optional<OmegaPoint>> slots(params.grid_points);
  ThreadPool pool(threads);
  pool.parallel_for(0, params.grid_points, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t gp = lo; gp < hi; ++gp) {
      slots[gp] = scan_grid_point(g, positions, params, gp);
    }
  });

  std::vector<OmegaPoint> out;
  out.reserve(params.grid_points);
  for (const auto& slot : slots) {
    if (slot) out.push_back(*slot);
  }
  return out;
}

OmegaPoint omega_scan_peak(const std::vector<OmegaPoint>& scan) {
  LDLA_EXPECT(!scan.empty(), "scan produced no points");
  return *std::max_element(scan.begin(), scan.end(),
                           [](const OmegaPoint& a, const OmegaPoint& b) {
                             return a.omega < b.omega;
                           });
}

}  // namespace ldla
