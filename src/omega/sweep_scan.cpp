#include "omega/sweep_scan.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <vector>

#include "core/gemm/count_matrix.hpp"
#include "core/gemm/nest.hpp"
#include "core/gemm/syrk.hpp"
#include "omega/omega_stat.hpp"
#include "util/contract.hpp"
#include "util/partition.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace ldla {

namespace {

void validate(const BitMatrix& g, const std::vector<double>& positions,
              const SweepScanParams& params) {
  LDLA_EXPECT(positions.size() == g.snps(), "need one position per SNP");
  LDLA_EXPECT(std::is_sorted(positions.begin(), positions.end()),
              "positions must be sorted");
  LDLA_EXPECT(params.grid_points > 0, "need at least one grid point");
  LDLA_EXPECT(params.window_snps >= 2, "window needs at least 2 SNPs a side");
}

// Shared per-scan state: the packed operand (null = fresh-pack path) and
// the per-SNP derived-allele counts (only filled for the packed path,
// where they replace both the polymorphism filter and the r^2 ci inputs).
struct ScanContext {
  const PackedBitMatrix* packed = nullptr;
  std::vector<std::uint64_t> counts;
  std::uint64_t samples = 0;
  bool fused = true;
  /// Team size for in-nest window SYRKs (1 = sequential nests).
  unsigned team = 1;
};

std::optional<OmegaPoint> scan_window(const BitMatrix& g, double x,
                                      std::size_t center, std::size_t half,
                                      const GemmConfig& gemm) {
  const std::size_t n = g.snps();
  const std::size_t begin = center > half ? center - half : 0;
  const std::size_t end = std::min(n, center + half);
  if (end - begin < 4) return std::nullopt;

  // Monomorphic SNPs have undefined r^2 and, at window edges, produce
  // degenerate zero-cross splits (omega = inf); drop them, as OmegaPlus
  // does, and compute omega on the compacted window.
  std::vector<std::size_t> keep;
  keep.reserve(end - begin);
  for (std::size_t s = begin; s < end; ++s) {
    if (g.is_polymorphic(s)) keep.push_back(s);
  }
  if (keep.size() < 4) return std::nullopt;

  const BitMatrix window = g.gather_rows(keep);
  const LdMatrix r2 = window_r2(window, 0, window.snps(), gemm);
  const OmegaMax m = omega_max(r2);
  return OmegaPoint{x, m.omega, begin, end, m.split};
}

// Packed-operand window: counts for the whole contiguous window come from
// slicing the persistent pack (no gather, no re-pack); the polymorphic
// subset is then compacted at the r^2 stage. ld_r_squared sees the exact
// same (ci, cj, cij, n) inputs as the fresh path, so results are
// bit-identical.
std::optional<OmegaPoint> scan_window_packed(const ScanContext& ctx, double x,
                                             std::size_t center,
                                             std::size_t half) {
  const PackedBitMatrix& packed = *ctx.packed;
  const std::size_t n = packed.snps();
  const std::size_t begin = center > half ? center - half : 0;
  const std::size_t end = std::min(n, center + half);
  if (end - begin < 4) return std::nullopt;

  std::vector<std::size_t> keep;
  keep.reserve(end - begin);
  for (std::size_t s = begin; s < end; ++s) {
    if (ctx.counts[s] > 0 && ctx.counts[s] < ctx.samples) keep.push_back(s);
  }
  if (keep.size() < 4) return std::nullopt;

  const std::size_t wk = keep.size();
  LdMatrix r2(wk, wk);

  if (ctx.fused) {
    // Fused epilogue: r^2 entries are produced straight from hot count
    // tiles — the w×w window CountMatrix is never materialized, so ω
    // consumes r² with zero count storage. ld_r_squared sees the same
    // (ci, cj, cij, n) inputs as the two-pass branch: bit-identical.
    constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
    std::vector<std::size_t> pos(end - begin, kNone);
    for (std::size_t i = 0; i < wk; ++i) pos[keep[i] - begin] = i;
    // Each canonical pair lives in exactly one tile and writes its own
    // r2(pi, pj) / r2(pj, pi) cells, so the sink is safe for the in-nest
    // team (ctx.team > 1) without locking.
    const auto sink = [&](const CountTile& t) {
      LDLA_TRACE_SPAN(kEpilogue);
      for (std::size_t i = 0; i < t.rows; ++i) {
        const std::size_t gi = t.row_begin + i;
        const std::size_t pi = pos[gi - begin];
        if (pi == kNone) continue;
        const std::size_t j_hi = std::min(t.col_begin + t.cols, gi + 1);
        for (std::size_t gj = t.col_begin; gj < j_hi; ++gj) {
          const std::size_t pj = pos[gj - begin];
          if (pj == kNone) continue;
          const double v = ld_r_squared(ctx.counts[gi], ctx.counts[gj],
                                        t.row(i)[gj - t.col_begin],
                                        ctx.samples);
          r2(pi, pj) = v;
          r2(pj, pi) = v;
        }
      }
      LDLA_TRACE_ADD_EPILOGUE_ROWS(static_cast<std::uint64_t>(t.rows));
    };
    if (ctx.team > 1) {
      syrk_count_parallel_nest(packed, begin, end, sink, ctx.team);
    } else {
      syrk_count_fused(packed, begin, end, sink);
    }
    const OmegaMax m = omega_max(r2);
    return OmegaPoint{x, m.omega, begin, end, m.split};
  }

  const std::size_t w = end - begin;
  CountMatrix cmat(w, w);
  syrk_count_packed(packed, begin, end, cmat.ref(), /*triangular_only=*/true);

  {
    LDLA_TRACE_SPAN(kEpilogue);
    for (std::size_t i = 0; i < wk; ++i) {
      const std::size_t gi = keep[i];
      for (std::size_t j = 0; j <= i; ++j) {
        const std::size_t gj = keep[j];
        // gi >= gj, so (gi, gj) indexes the valid lower triangle. r^2 is
        // exactly symmetric in (ci, cj), so one evaluation fills both.
        const double v =
            ld_r_squared(ctx.counts[gi], ctx.counts[gj],
                         cmat(gi - begin, gj - begin), ctx.samples);
        r2(i, j) = v;
        r2(j, i) = v;
      }
    }
  }
  const OmegaMax m = omega_max(r2);
  return OmegaPoint{x, m.omega, begin, end, m.split};
}

std::optional<OmegaPoint> scan_grid_point(
    const BitMatrix& g, const std::vector<double>& positions,
    const SweepScanParams& params, const ScanContext& ctx, std::size_t gp) {
  const double x = (static_cast<double>(gp) + 0.5) /
                   static_cast<double>(params.grid_points);
  const std::size_t center = static_cast<std::size_t>(
      std::lower_bound(positions.begin(), positions.end(), x) -
      positions.begin());

  const auto eval = [&](std::size_t half) {
    return ctx.packed != nullptr
               ? scan_window_packed(ctx, x, center, half)
               : scan_window(g, x, center, half, params.gemm);
  };

  std::optional<OmegaPoint> best = eval(params.window_snps);
  // OmegaPlus-style search over window extents: report the maximizing one.
  for (const std::size_t half : params.window_candidates) {
    if (half == params.window_snps || half < 2) continue;
    const auto candidate = eval(half);
    if (candidate && (!best || candidate->omega > best->omega)) {
      best = candidate;
    }
  }
  return best;
}

ScanContext make_scan_context(const BitMatrix& g,
                              const SweepScanParams& params,
                              std::optional<PackedBitMatrix>& own,
                              unsigned team = 1) {
  ScanContext ctx;
  ctx.packed = resolve_packed(g.view(), params.gemm, params.packed,
                              PackSides::kBoth, own, team);
  ctx.fused = params.fused;
  ctx.team = team;
  if (ctx.packed != nullptr) {
    ctx.samples = g.samples();
    ctx.counts.resize(g.snps());
    for (std::size_t s = 0; s < g.snps(); ++s) {
      ctx.counts[s] = g.derived_count(s);
    }
  }
  return ctx;
}

}  // namespace

std::vector<OmegaPoint> omega_scan(const BitMatrix& g,
                                   const std::vector<double>& positions,
                                   const SweepScanParams& params) {
  validate(g, positions, params);
  std::vector<OmegaPoint> out;
  out.reserve(params.grid_points);
  if (g.snps() < 4) return out;

  std::optional<PackedBitMatrix> own;
  const ScanContext ctx = make_scan_context(g, params, own);
  for (std::size_t gp = 0; gp < params.grid_points; ++gp) {
    if (const auto point = scan_grid_point(g, positions, params, ctx, gp)) {
      out.push_back(*point);
    }
  }
  return out;
}

std::vector<OmegaPoint> omega_scan_parallel(
    const BitMatrix& g, const std::vector<double>& positions,
    const SweepScanParams& params, unsigned threads) {
  validate(g, positions, params);
  if (g.snps() < 4) return {};
  if (threads == 0) {
    threads = default_thread_count();
  }

  if (params.parallel == ParallelMode::kNest && params.fused) {
    // In-nest: walk the grid sequentially, with the whole team stealing
    // macro-tile chunks inside each window's SYRK. Requires the packed
    // fused path (fall through to the coarse grid split otherwise).
    std::optional<PackedBitMatrix> own;
    const ScanContext ctx = make_scan_context(g, params, own, threads);
    if (ctx.packed != nullptr) {
      std::vector<OmegaPoint> out;
      out.reserve(params.grid_points);
      for (std::size_t gp = 0; gp < params.grid_points; ++gp) {
        if (const auto point =
                scan_grid_point(g, positions, params, ctx, gp)) {
          out.push_back(*point);
        }
      }
      return out;
    }
  }

  // Pack once, share read-only across workers; grid points are distributed
  // in `threads` contiguous chunks on the process-wide pool.
  std::optional<PackedBitMatrix> own;
  const ScanContext ctx = make_scan_context(g, params, own);

  std::vector<std::optional<OmegaPoint>> slots(params.grid_points);
  const std::vector<Range> ranges = split_uniform(params.grid_points, threads);
  global_pool().run_tasks(ranges.size(), [&](std::size_t t) {
    for (std::size_t gp = ranges[t].begin; gp < ranges[t].end; ++gp) {
      slots[gp] = scan_grid_point(g, positions, params, ctx, gp);
    }
  });

  std::vector<OmegaPoint> out;
  out.reserve(params.grid_points);
  for (const auto& slot : slots) {
    if (slot) out.push_back(*slot);
  }
  return out;
}

OmegaPoint omega_scan_peak(const std::vector<OmegaPoint>& scan) {
  LDLA_EXPECT(!scan.empty(), "scan produced no points");
  return *std::max_element(scan.begin(), scan.end(),
                           [](const OmegaPoint& a, const OmegaPoint& b) {
                             return a.omega < b.omega;
                           });
}

}  // namespace ldla
