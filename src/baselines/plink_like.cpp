#include "baselines/plink_like.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "core/popcount.hpp"
#include "util/contract.hpp"
#include "util/partition.hpp"
#include "util/thread_pool.hpp"

namespace ldla {

namespace {

// 2-bit genotype codes (PLINK .bed-style interleaved storage; one word
// holds 32 genotypes). Chosen so plane extraction is branch-free:
//   00 -> dosage 0        10 -> dosage 1 (het)
//   11 -> dosage 2        01 -> missing
constexpr std::uint64_t kCode0 = 0b00;
constexpr std::uint64_t kCode1 = 0b10;
constexpr std::uint64_t kCode2 = 0b11;
constexpr std::uint64_t kCodeMissing = 0b01;

constexpr std::uint64_t kEvenBits = 0x5555555555555555ull;

std::uint64_t code_for_dosage(unsigned dosage) {
  switch (dosage) {
    case 0: return kCode0;
    case 1: return kCode1;
    default: return kCode2;
  }
}

// Extracted per-word planes (each a 0x5555-masked lane set of 32 samples).
struct Planes {
  std::uint64_t lo;     ///< dosage == 1
  std::uint64_t hi;     ///< dosage == 2
  std::uint64_t valid;  ///< genotype present
};

inline Planes extract(std::uint64_t w) {
  const std::uint64_t b0 = w & kEvenBits;
  const std::uint64_t b1 = (w >> 1) & kEvenBits;
  // lo: b1 & ~b0 (code 10); hi: b1 & b0 (code 11);
  // missing is code 01 (b0 & ~b1), so valid = ~(b0 & ~b1) on even lanes.
  return {b1 & ~b0, b1 & b0, (b1 | ~b0) & kEvenBits};
}

}  // namespace

GenotypeMatrix::GenotypeMatrix(std::size_t n_snps, std::size_t n_individuals)
    : packed_(n_snps, 2 * n_individuals), individuals_(n_individuals) {}

GenotypeMatrix GenotypeMatrix::from_haplotypes(const BitMatrix& haps) {
  LDLA_EXPECT(haps.samples() % 2 == 0,
              "pairing haplotypes requires an even sample count");
  const std::size_t n_ind = haps.samples() / 2;
  GenotypeMatrix out(haps.snps(), n_ind);
  for (std::size_t s = 0; s < haps.snps(); ++s) {
    for (std::size_t ind = 0; ind < n_ind; ++ind) {
      const unsigned d = static_cast<unsigned>(haps.get(s, 2 * ind)) +
                         static_cast<unsigned>(haps.get(s, 2 * ind + 1));
      out.set_dosage(s, ind, d);
    }
  }
  return out;
}

void GenotypeMatrix::set_code(std::size_t snp, std::size_t ind,
                              std::uint64_t code) {
  packed_.set(snp, 2 * ind, (code & 1) != 0);
  packed_.set(snp, 2 * ind + 1, (code & 2) != 0);
}

std::uint64_t GenotypeMatrix::code(std::size_t snp, std::size_t ind) const {
  return static_cast<std::uint64_t>(packed_.get(snp, 2 * ind)) |
         (static_cast<std::uint64_t>(packed_.get(snp, 2 * ind + 1)) << 1);
}

void GenotypeMatrix::set_dosage(std::size_t snp, std::size_t ind,
                                unsigned dosage) {
  LDLA_EXPECT(dosage <= 2, "dosage must be 0, 1 or 2");
  set_code(snp, ind, code_for_dosage(dosage));
}

void GenotypeMatrix::set_missing(std::size_t snp, std::size_t ind) {
  set_code(snp, ind, kCodeMissing);
}

unsigned GenotypeMatrix::dosage(std::size_t snp, std::size_t ind) const {
  switch (code(snp, ind)) {
    case kCode1: return 1;
    case kCode2: return 2;
    default: return 0;  // dosage 0 or missing
  }
}

bool GenotypeMatrix::is_missing(std::size_t snp, std::size_t ind) const {
  return code(snp, ind) == kCodeMissing;
}

namespace {

// The PLINK-style per-pair kernel. Every word is unpacked into dosage/
// validity planes on the fly (the interleaved .bed layout stores no
// separate planes), then nine masked popcount terms accumulate the moments
// over the jointly valid samples — pair at a time, no packing, no blocking.
double pair_r2(const GenotypeMatrix& g, std::size_t i, std::size_t j) {
  const std::uint64_t* ra = g.packed().row_data(i);
  const std::uint64_t* rb = g.packed().row_data(j);
  const std::size_t words = g.packed().words_per_snp();

  std::uint64_t n_c = 0, sl_i_c = 0, sh_i_c = 0, sl_j_c = 0, sh_j_c = 0;
  std::uint64_t ll_c = 0, lh_c = 0, hl_c = 0, hh_c = 0;
  for (std::size_t w = 0; w < words; ++w) {
    const Planes a = extract(ra[w]);
    const Planes b = extract(rb[w]);
    n_c += static_cast<std::uint64_t>(__builtin_popcountll(a.valid & b.valid));
    sl_i_c += static_cast<std::uint64_t>(__builtin_popcountll(a.lo & b.valid));
    sh_i_c += static_cast<std::uint64_t>(__builtin_popcountll(a.hi & b.valid));
    sl_j_c += static_cast<std::uint64_t>(__builtin_popcountll(b.lo & a.valid));
    sh_j_c += static_cast<std::uint64_t>(__builtin_popcountll(b.hi & a.valid));
    ll_c += static_cast<std::uint64_t>(__builtin_popcountll(a.lo & b.lo));
    lh_c += static_cast<std::uint64_t>(__builtin_popcountll(a.lo & b.hi));
    hl_c += static_cast<std::uint64_t>(__builtin_popcountll(a.hi & b.lo));
    hh_c += static_cast<std::uint64_t>(__builtin_popcountll(a.hi & b.hi));
  }
  // Padding bits beyond 2*individuals decode as code 00 = valid dosage 0;
  // subtract them from the valid-sample count.
  const std::size_t pad = words * 32 - g.individuals();
  n_c -= pad;

  const double n = static_cast<double>(n_c);
  if (n <= 1.0) return std::numeric_limits<double>::quiet_NaN();

  const double sx = static_cast<double>(sl_i_c) + 2.0 * static_cast<double>(sh_i_c);
  const double sy = static_cast<double>(sl_j_c) + 2.0 * static_cast<double>(sh_j_c);
  const double sxx = static_cast<double>(sl_i_c) + 4.0 * static_cast<double>(sh_i_c);
  const double syy = static_cast<double>(sl_j_c) + 4.0 * static_cast<double>(sh_j_c);
  const double sxy = static_cast<double>(ll_c) +
                     2.0 * static_cast<double>(lh_c) +
                     2.0 * static_cast<double>(hl_c) +
                     4.0 * static_cast<double>(hh_c);

  const double cov = n * sxy - sx * sy;
  const double var_x = n * sxx - sx * sx;
  const double var_y = n * syy - sy * sy;
  const double denom = var_x * var_y;
  if (denom <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  const double r2 = (cov * cov) / denom;
  return r2 > 1.0 ? 1.0 : r2;
}

}  // namespace

double plink_like_r2_pair(const GenotypeMatrix& g, std::size_t i,
                          std::size_t j) {
  LDLA_EXPECT(i < g.snps() && j < g.snps(), "SNP index out of range");
  return pair_r2(g, i, j);
}

BaselineScanResult plink_like_scan(const GenotypeMatrix& g, unsigned threads) {
  const std::size_t n = g.snps();
  BaselineScanResult total;
  if (n == 0) return total;
  if (threads == 0) threads = 1;

  const std::vector<Range> ranges = split_triangle_rows(n, threads);
  std::vector<BaselineScanResult> partial(ranges.size());
  ThreadPool pool(threads);
  pool.run_tasks(ranges.size(), [&](std::size_t t) {
    BaselineScanResult local;
    for (std::size_t i = ranges[t].begin; i < ranges[t].end; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        const double r2 = pair_r2(g, i, j);
        ++local.pairs;
        if (std::isfinite(r2)) {
          local.sum += r2;
          ++local.finite;
        }
      }
    }
    partial[t] = local;
  });
  for (const auto& p : partial) {
    total.pairs += p.pairs;
    total.sum += p.sum;
    total.finite += p.finite;
  }
  return total;
}

LdMatrix plink_like_matrix(const GenotypeMatrix& g) {
  const std::size_t n = g.snps();
  LdMatrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      out(i, j) = plink_like_r2_pair(g, i, j);
    }
  }
  return out;
}

}  // namespace ldla
