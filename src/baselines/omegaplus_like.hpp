// Allele-centric vector-at-a-time LD baseline in the style of OmegaPlus
// (Table I-III comparator).
//
// OmegaPlus stores SNPs as packed 64-bit words (the paper's footnote 5 adds
// the same 64-bit POPCNT intrinsic the GEMM kernel uses). Its LD kernel is
// the *general-case* one: it supports alignment gaps and ambiguous
// characters, so every pair is evaluated against the joint validity mask —
// per pair it computes
//
//   n_ij = POPCNT(v_i & v_j)        valid samples
//   c_i  = POPCNT(s_i & v_j)        masked marginal of SNP i
//   c_j  = POPCNT(s_j & v_i)        masked marginal of SNP j
//   c_ij = POPCNT(s_i & s_j)        haplotype count (states pre-masked)
//
// i.e. FOUR full-row popcount sweeps plus the r^2 normalization, pair at a
// time, with no operand packing or cache blocking. That 4x word-work over
// the GEMM engine's single fused sweep — not the popcount itself — is what
// the paper's ~4x GEMM-vs-OmegaPlus gap measures (Tables I-III).
#pragma once

#include <cstdint>

#include "baselines/plink_like.hpp"  // BaselineScanResult
#include "core/bit_matrix.hpp"
#include "core/ld.hpp"

namespace ldla {

/// r^2 for one SNP pair via the masked vector-at-a-time kernel. `valid`
/// must have the same shape as `g` (all-ones for complete data).
double omegaplus_like_r2_pair(const BitMatrix& g, const BitMatrix& valid,
                              std::size_t i, std::size_t j);

/// Convenience overload for complete data (builds an all-valid mask).
double omegaplus_like_r2_pair(const BitMatrix& g, std::size_t i,
                              std::size_t j);

/// All N(N+1)/2 pairwise r^2 values, pair-at-a-time, `threads` workers.
/// Runs the general (mask-carrying) kernel exactly as the tool would on
/// complete data.
BaselineScanResult omegaplus_like_scan(const BitMatrix& g,
                                       unsigned threads = 1);

/// Dense result for small n (tests).
LdMatrix omegaplus_like_matrix(const BitMatrix& g,
                               LdStatistic stat = LdStatistic::kRSquared);

/// All-ones validity mask with the shape of `g` (exposed for tests).
BitMatrix all_valid_mask(const BitMatrix& g);

}  // namespace ldla
