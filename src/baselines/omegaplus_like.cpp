#include "baselines/omegaplus_like.hpp"

#include <cmath>
#include <vector>

#include "core/popcount.hpp"
#include "util/contract.hpp"
#include "util/partition.hpp"
#include "util/thread_pool.hpp"

namespace ldla {

BitMatrix all_valid_mask(const BitMatrix& g) {
  BitMatrix valid(g.snps(), g.samples());
  const std::size_t words = valid.words_per_snp();
  if (words == 0) return valid;
  const std::size_t tail_bits = g.samples() % 64;
  const std::uint64_t tail_mask =
      tail_bits == 0 ? ~std::uint64_t{0}
                     : ((std::uint64_t{1} << tail_bits) - 1);
  for (std::size_t s = 0; s < g.snps(); ++s) {
    std::uint64_t* row = valid.row_data(s);
    for (std::size_t w = 0; w < words; ++w) row[w] = ~std::uint64_t{0};
    row[words - 1] = tail_mask;
  }
  return valid;
}

namespace {

// The tool's per-pair kernel: four masked popcount sweeps + normalization.
double masked_pair_r2(const BitMatrix& g, const BitMatrix& valid,
                      std::size_t i, std::size_t j) {
  const PopcountMethod pm = PopcountMethod::kHardware;
  const auto si = g.row(i);
  const auto sj = g.row(j);
  const auto vi = valid.row(i);
  const auto vj = valid.row(j);
  const std::uint64_t nij = popcount_and(vi, vj, pm);
  const std::uint64_t ci = popcount_and(si, vj, pm);
  const std::uint64_t cj = popcount_and(sj, vi, pm);
  const std::uint64_t cij = popcount_and(si, sj, pm);
  if (nij == 0) return std::numeric_limits<double>::quiet_NaN();
  return ld_r_squared(ci, cj, cij, nij);
}

}  // namespace

double omegaplus_like_r2_pair(const BitMatrix& g, const BitMatrix& valid,
                              std::size_t i, std::size_t j) {
  LDLA_EXPECT(i < g.snps() && j < g.snps(), "SNP index out of range");
  LDLA_EXPECT(valid.snps() == g.snps() && valid.samples() == g.samples(),
              "validity mask shape mismatch");
  return masked_pair_r2(g, valid, i, j);
}

double omegaplus_like_r2_pair(const BitMatrix& g, std::size_t i,
                              std::size_t j) {
  const BitMatrix valid = all_valid_mask(g);
  return omegaplus_like_r2_pair(g, valid, i, j);
}

BaselineScanResult omegaplus_like_scan(const BitMatrix& g, unsigned threads) {
  const std::size_t n = g.snps();
  BaselineScanResult total;
  if (n == 0) return total;
  if (threads == 0) threads = 1;

  const BitMatrix valid = all_valid_mask(g);

  const std::vector<Range> ranges = split_triangle_rows(n, threads);
  std::vector<BaselineScanResult> partial(ranges.size());
  ThreadPool pool(threads);
  pool.run_tasks(ranges.size(), [&](std::size_t t) {
    BaselineScanResult local;
    for (std::size_t i = ranges[t].begin; i < ranges[t].end; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        const double r2 = masked_pair_r2(g, valid, i, j);
        ++local.pairs;
        if (std::isfinite(r2)) {
          local.sum += r2;
          ++local.finite;
        }
      }
    }
    partial[t] = local;
  });
  for (const auto& p : partial) {
    total.pairs += p.pairs;
    total.sum += p.sum;
    total.finite += p.finite;
  }
  return total;
}

LdMatrix omegaplus_like_matrix(const BitMatrix& g, LdStatistic stat) {
  const std::size_t n = g.snps();
  LdMatrix out(n, n);
  const BitMatrix valid = all_valid_mask(g);
  const PopcountMethod pm = PopcountMethod::kHardware;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t nij = popcount_and(valid.row(i), valid.row(j), pm);
      const std::uint64_t ci = popcount_and(g.row(i), valid.row(j), pm);
      const std::uint64_t cj = popcount_and(g.row(j), valid.row(i), pm);
      const std::uint64_t cij = popcount_and(g.row(i), g.row(j), pm);
      out(i, j) = nij == 0 ? std::numeric_limits<double>::quiet_NaN()
                           : ld_value(stat, ci, cj, cij, nij);
    }
  }
  return out;
}

}  // namespace ldla
