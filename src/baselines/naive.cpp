#include "baselines/naive.hpp"

#include <vector>

#include "util/contract.hpp"

namespace ldla {

std::uint64_t naive_pair_count(const BitMatrix& a, std::size_t i,
                               const BitMatrix& b, std::size_t j) {
  LDLA_EXPECT(a.samples() == b.samples(), "sample counts differ");
  std::uint64_t count = 0;
  for (std::size_t s = 0; s < a.samples(); ++s) {
    count += static_cast<std::uint64_t>(a.get(i, s) && b.get(j, s));
  }
  return count;
}

CountMatrix naive_count_matrix(const BitMatrix& a, const BitMatrix& b) {
  CountMatrix out(a.snps(), b.snps());
  for (std::size_t i = 0; i < a.snps(); ++i) {
    for (std::size_t j = 0; j < b.snps(); ++j) {
      out(i, j) = static_cast<std::uint32_t>(naive_pair_count(a, i, b, j));
    }
  }
  return out;
}

LdMatrix naive_ld_matrix(const BitMatrix& g, LdStatistic stat) {
  const std::size_t n = g.snps();
  LdMatrix out(n, n);
  std::vector<std::uint64_t> ci(n);
  for (std::size_t s = 0; s < n; ++s) ci[s] = naive_pair_count(g, s, g, s);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t cij = naive_pair_count(g, i, g, j);
      out(i, j) = ld_value(stat, ci[i], ci[j], cij, g.samples());
    }
  }
  return out;
}

LdMatrix dgemm_ld_matrix(const BitMatrix& g, LdStatistic stat) {
  const std::size_t n = g.snps();
  const std::size_t k = g.samples();
  LdMatrix out(n, n);
  if (n == 0) return out;

  // Expand to doubles: row i of G' is SNP i as 0.0/1.0 values.
  std::vector<double> dense(n * k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t s = 0; s < k; ++s) {
      dense[i * k + s] = g.get(i, s) ? 1.0 : 0.0;
    }
  }

  // H*Nseq = G'·G'ᵀ with a textbook triple loop.
  std::vector<double> h(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t s = 0; s < k; ++s) {
        acc += dense[i * k + s] * dense[j * k + s];
      }
      h[i * n + j] = acc;
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      out(i, j) = ld_value(stat, static_cast<std::uint64_t>(h[i * n + i]),
                           static_cast<std::uint64_t>(h[j * n + j]),
                           static_cast<std::uint64_t>(h[i * n + j]),
                           g.samples());
    }
  }
  return out;
}

}  // namespace ldla
