// Naive reference implementations — correctness oracles for the GEMM engine
// and the slowest rung of the performance ladder.
#pragma once

#include "core/bit_matrix.hpp"
#include "core/gemm/count_matrix.hpp"
#include "core/ld.hpp"

namespace ldla {

/// Pair count by looping over individual samples (no word tricks at all).
std::uint64_t naive_pair_count(const BitMatrix& a, std::size_t i,
                               const BitMatrix& b, std::size_t j);

/// Cross-count matrix via the per-bit loop. O(m * n * samples).
CountMatrix naive_count_matrix(const BitMatrix& a, const BitMatrix& b);

/// All-pairs LD via the per-bit loop (the Section II pseudocode, vector ops
/// only — the "highly inefficient" formulation the paper starts from).
LdMatrix naive_ld_matrix(const BitMatrix& g,
                         LdStatistic stat = LdStatistic::kRSquared);

/// Floating-point oracle: expand G to a dense double matrix and compute
/// H·Nseq = GᵀG with a textbook triple loop, then the LD statistics. Checks
/// that the popcount semiring really computes the same linear algebra.
LdMatrix dgemm_ld_matrix(const BitMatrix& g,
                         LdStatistic stat = LdStatistic::kRSquared);

}  // namespace ldla
