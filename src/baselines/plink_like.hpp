// Genotype-centric LD baseline in the style of PLINK 1.9 (Table I-III
// comparator).
//
// PLINK operates on unphased diploid *genotypes* (dosage 0/1/2 per
// individual, plus a missing state) stored as interleaved 2-bit codes in
// .bed-style words — 32 genotypes per 64-bit word, no separate bit-planes.
// Its default --r2 statistic is the squared Pearson correlation of dosage
// vectors over the samples valid at BOTH SNPs. Because missingness is
// per-pair, every pair recomputes the masked moments from scratch, and
// because the storage is interleaved, every word of BOTH operands is
// unpacked into dosage/validity lane masks on the fly before the nine
// masked popcount terms accumulate:
//
//   n    = pc(V_i & V_j)
//   sL_i = pc(L_i & V_j),  sH_i = pc(H_i & V_j)   -> sum x, sum x^2
//   sL_j = pc(L_j & V_i),  sH_j = pc(H_j & V_i)   -> sum y, sum y^2
//   ll   = pc(L_i & L_j),  lh = pc(L_i & H_j),
//   hl   = pc(H_i & L_j),  hh = pc(H_i & H_j)     -> sum xy
//
// pair at a time with no packing/blocking. This per-word unpack + 9-term
// accumulation — versus the GEMM engine's single fused AND+POPCNT per
// word — is the structure behind the paper's 7-17x GEMM-vs-PLINK column.
#pragma once

#include <cstdint>

#include "core/bit_matrix.hpp"
#include "core/ld.hpp"

namespace ldla {

/// Diploid genotype matrix in interleaved 2-bit (.bed-style) storage:
/// dosage in {0, 1, 2} or missing per (SNP, individual).
class GenotypeMatrix {
 public:
  GenotypeMatrix() = default;
  GenotypeMatrix(std::size_t n_snps, std::size_t n_individuals);

  /// Collapse phased haplotypes into genotypes by pairing consecutive
  /// haplotype columns (2N haplotypes -> N individuals, all valid).
  /// Requires an even sample count.
  static GenotypeMatrix from_haplotypes(const BitMatrix& haps);

  [[nodiscard]] std::size_t snps() const noexcept { return packed_.snps(); }
  [[nodiscard]] std::size_t individuals() const noexcept {
    return individuals_;
  }

  void set_dosage(std::size_t snp, std::size_t ind, unsigned dosage);
  void set_missing(std::size_t snp, std::size_t ind);
  /// Dosage at (snp, ind); 0 when missing (check is_missing first).
  [[nodiscard]] unsigned dosage(std::size_t snp, std::size_t ind) const;
  [[nodiscard]] bool is_missing(std::size_t snp, std::size_t ind) const;

  /// Raw interleaved words (2 bits per individual), for the LD kernel.
  [[nodiscard]] const BitMatrix& packed() const noexcept { return packed_; }

 private:
  void set_code(std::size_t snp, std::size_t ind, std::uint64_t code);
  [[nodiscard]] std::uint64_t code(std::size_t snp, std::size_t ind) const;

  BitMatrix packed_;  ///< n_snps rows of 2*individuals bits
  std::size_t individuals_ = 0;
};

/// PLINK-style r^2 for one SNP pair: squared Pearson correlation of the two
/// dosage vectors over jointly valid samples. NaN when either SNP has zero
/// dosage variance over that subset (or no jointly valid samples).
double plink_like_r2_pair(const GenotypeMatrix& g, std::size_t i,
                          std::size_t j);

/// Aggregate of a full all-pairs scan (what the benchmark tables time).
struct BaselineScanResult {
  std::uint64_t pairs = 0;
  double sum = 0.0;          ///< sum of finite statistic values
  std::uint64_t finite = 0;  ///< number of finite values
};

/// All N(N+1)/2 pairwise r^2 values, pair-at-a-time, `threads` workers.
BaselineScanResult plink_like_scan(const GenotypeMatrix& g,
                                   unsigned threads = 1);

/// Dense result for small n (tests).
LdMatrix plink_like_matrix(const GenotypeMatrix& g);

}  // namespace ldla
