// Synthetic 2-D chemical fingerprints for the Tanimoto adaptation
// (Section VII): clustered binary vectors so nearest-neighbor structure is
// non-trivial, standing in for real subgraph-isomorphism fingerprints.
#pragma once

#include <cstdint>

#include "core/bit_matrix.hpp"

namespace ldla {

struct FingerprintParams {
  std::size_t count = 1000;     ///< number of fingerprints
  std::size_t bits = 2048;      ///< fingerprint width (typical ECFP width)
  unsigned clusters = 16;       ///< number of scaffold clusters
  double bit_density = 0.08;    ///< fraction of bits set in a cluster center
  double noise = 0.01;          ///< per-bit flip probability around the center
  std::uint64_t seed = 7;
};

/// Rows of the result are fingerprints; row i belongs to cluster
/// i % params.clusters, so same-cluster pairs have high Tanimoto similarity.
BitMatrix simulate_fingerprints(const FingerprintParams& params);

}  // namespace ldla
