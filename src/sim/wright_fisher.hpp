// Haplotype-copying population simulator (the stand-in for the paper's
// 1000-Genomes Dataset A and its simulated Datasets B/C).
//
// Model: a pool of F founder haplotypes receives per-SNP derived-allele
// frequencies drawn from a neutral-ish 1/q spectrum; every sample is a
// Li-&-Stephens-style mosaic over the founders, switching founder with a
// per-SNP probability. The switch rate plays the role of recombination:
// small rates give long shared haplotype tracts and therefore high LD that
// decays with SNP distance — the structure LD statistics exist to measure.
//
// Why this substitution preserves the paper's behaviour: the LD kernels'
// runtime depends only on matrix dimensions (data-oblivious bit operations),
// and statistical code paths are validated separately against hand-built
// cases; what matters here is realistic dimensionality and a non-degenerate
// frequency spectrum, both of which this model provides at O(SNPs x samples)
// generation cost.
#pragma once

#include <cstdint>
#include <vector>

#include "core/bit_matrix.hpp"

namespace ldla {

struct WrightFisherParams {
  std::size_t n_snps = 1000;
  std::size_t n_samples = 100;
  /// Founder-haplotype pool size; at most 64 (founder alleles at one SNP
  /// pack into a single word).
  unsigned founders = 64;
  /// Per-SNP probability that a sample's copying path switches founder
  /// (recombination analog; lower = stronger LD).
  double switch_rate = 0.02;
  /// Minimum founder-pool derived-allele frequency (avoids monomorphy).
  double min_freq = 0.05;
  std::uint64_t seed = 42;
};

struct SimulatedDataset {
  BitMatrix genotypes;             ///< SNP-major bit matrix
  std::vector<double> positions;   ///< sorted SNP positions in [0, 1)
};

/// Simulate a dataset; throws on invalid parameters.
SimulatedDataset simulate_wright_fisher(const WrightFisherParams& params);

/// Convenience: genotypes only.
BitMatrix simulate_genotypes(const WrightFisherParams& params);

}  // namespace ldla
