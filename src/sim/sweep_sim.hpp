// Selective-sweep overlay on the haplotype-copying simulator.
//
// Emulates the post-sweep LD signature of Kim & Nielsen (2004) that the
// omega statistic detects: elevated LD *within* each flank of the swept
// site, but LD broken *across* it. Inside the sweep region the founder
// switch rate is damped and the founder pool collapsed (reduced diversity =
// longer shared tracts = high flank LD); exactly at the sweep center every
// sample re-draws its founder, decoupling the two flanks.
#pragma once

#include "sim/wright_fisher.hpp"

namespace ldla {

struct SweepParams {
  WrightFisherParams base;
  double sweep_center = 0.5;   ///< position of the swept site in [0, 1)
  double sweep_width = 0.1;    ///< half-width of the affected region
  /// 0 = no sweep; 1 = switch rate fully suppressed and pool maximally
  /// collapsed inside the region.
  double sweep_intensity = 0.9;
};

SimulatedDataset simulate_sweep(const SweepParams& params);

}  // namespace ldla
