// Internal engine shared by the Wright-Fisher and sweep simulators.
//
// Two layers of correlation produce realistic LD:
//
//  1. Founder level — the carrier set of each SNP (which founder haplotypes
//     carry the derived allele) is a contiguous range over a founder
//     permutation, standing in for a subtree of the founder genealogy.
//     Between SNPs the range endpoints drift and the permutation receives
//     occasional transpositions, so nearby SNPs have nested/overlapping
//     carrier sets (high |D'| and r^2) while distant SNPs decorrelate.
//
//  2. Sample level — every sample copies one founder (Li-Stephens mosaic)
//     and switches founder with a per-SNP probability.
//
// All decay rates are tied to `switch_rate`, the recombination analog.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "sim/rng.hpp"

namespace ldla::detail {

class HaplotypeProcess {
 public:
  HaplotypeProcess(Rng& rng, unsigned founders, std::size_t samples,
                   double min_freq)
      : rng_(rng),
        founders_(founders),
        min_freq_(min_freq),
        perm_(founders),
        path_(samples) {
    std::iota(perm_.begin(), perm_.end(), std::uint8_t{0});
    shuffle_perm();
    for (auto& p : path_) {
      p = static_cast<std::uint8_t>(rng_.next_below(founders_));
    }
    redraw_range();
  }

  /// Advance the founder-level state by one SNP with the given
  /// recombination intensity and emit the packed founder carrier word.
  std::uint64_t advance_founders(double switch_rate) {
    // Occasional transpositions decorrelate the genealogy stand-in.
    if (switch_rate > 0.0) {
      const double swap_p = std::min(1.0, switch_rate);
      std::size_t j = static_cast<std::size_t>(rng_.next_geometric(swap_p));
      while (j < founders_) {
        std::swap(perm_[j], perm_[rng_.next_below(founders_)]);
        j += 1 + static_cast<std::size_t>(rng_.next_geometric(swap_p));
      }
    }
    // Carrier range: full redraw occasionally, otherwise endpoint drift.
    const double redraw_p = std::clamp(4.0 * switch_rate, 0.02, 1.0);
    if (rng_.next_bool(redraw_p)) {
      redraw_range();
    } else {
      jitter_endpoint(lo_);
      jitter_endpoint(hi_);
      if (lo_ >= hi_) redraw_range();
    }
    std::uint64_t word = 0;
    for (std::size_t j = lo_; j < hi_; ++j) {
      word |= std::uint64_t{1} << perm_[j];
    }
    return word;
  }

  /// Advance the sample mosaic: each sample re-draws its founder (from
  /// [0, pool)) with probability switch_rate.
  void advance_paths(double switch_rate, unsigned pool) {
    if (switch_rate <= 0.0) return;
    std::size_t idx =
        static_cast<std::size_t>(rng_.next_geometric(switch_rate));
    while (idx < path_.size()) {
      path_[idx] = static_cast<std::uint8_t>(rng_.next_below(pool));
      idx += 1 + static_cast<std::size_t>(rng_.next_geometric(switch_rate));
    }
  }

  /// Total reset of founder-level correlation AND every sample path —
  /// the sweep-site event that decouples the two flanks.
  void reset_all(unsigned pool) {
    shuffle_perm();
    redraw_range();
    for (auto& p : path_) {
      p = static_cast<std::uint8_t>(rng_.next_below(pool));
    }
  }

  /// Clamp every path into [0, pool) (entering a collapsed-diversity region).
  void clamp_paths(unsigned pool) {
    for (auto& p : path_) {
      if (p >= pool) p = static_cast<std::uint8_t>(p % pool);
    }
  }

  /// Emit one packed SNP row: sample i carries bit path_[i] of filtered
  /// founder word. `row` must hold ceil(samples/64) words.
  void emit_row(std::uint64_t founder_word, std::uint64_t* row,
                std::size_t words) const {
    std::size_t i = 0;
    const std::size_t samples = path_.size();
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t word = 0;
      const std::size_t limit = std::min<std::size_t>(64, samples - i);
      for (std::size_t b = 0; b < limit; ++b, ++i) {
        word |= ((founder_word >> path_[i]) & 1u) << b;
      }
      row[w] = word;
    }
  }

 private:
  void shuffle_perm() {
    for (std::size_t j = perm_.size(); j > 1; --j) {
      std::swap(perm_[j - 1], perm_[rng_.next_below(j)]);
    }
  }

  void redraw_range() {
    // Range length from the truncated 1/q frequency spectrum.
    const double lo = std::log(min_freq_);
    const double hi = std::log(0.5);
    const double q = std::exp(lo + (hi - lo) * rng_.next_double());
    std::size_t len = static_cast<std::size_t>(
        std::lround(q * static_cast<double>(founders_)));
    len = std::clamp<std::size_t>(len, 1, founders_ - 1);
    lo_ = rng_.next_below(founders_ - len + 1);
    hi_ = lo_ + len;
  }

  void jitter_endpoint(std::size_t& e) {
    if (rng_.next_bool(0.5)) {
      if (e < founders_) ++e;
    } else {
      if (e > 0) --e;
    }
  }

  Rng& rng_;
  unsigned founders_;
  double min_freq_;
  std::vector<std::uint8_t> perm_;
  std::vector<std::uint8_t> path_;
  std::size_t lo_ = 0;
  std::size_t hi_ = 1;
};

}  // namespace ldla::detail
