// Deterministic, fast PRNG for the dataset simulators.
//
// xoshiro256** — splittable-by-seed, reproducible across platforms, far
// faster than std::mt19937_64 for the bulk bit generation the simulators do.
#pragma once

#include <cstdint>

namespace ldla {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p.
  bool next_bool(double p);

  /// Exponentially distributed value with the given rate.
  double next_exponential(double rate);

  /// Geometric-ish waiting time: number of failures before a success with
  /// probability p (p > 0).
  std::uint64_t next_geometric(double p);

 private:
  std::uint64_t s_[4];
};

}  // namespace ldla
