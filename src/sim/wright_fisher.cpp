#include "sim/wright_fisher.hpp"

#include <algorithm>

#include "sim/detail/haplotype_process.hpp"
#include "sim/rng.hpp"
#include "util/contract.hpp"

namespace ldla {

SimulatedDataset simulate_wright_fisher(const WrightFisherParams& params) {
  LDLA_EXPECT(params.n_snps > 0 && params.n_samples > 0,
              "dataset dimensions must be positive");
  LDLA_EXPECT(params.founders >= 2 && params.founders <= 64,
              "founder pool must have 2..64 haplotypes");
  LDLA_EXPECT(params.switch_rate >= 0.0 && params.switch_rate <= 1.0,
              "switch rate is a probability");
  LDLA_EXPECT(params.min_freq > 0.0 && params.min_freq <= 0.5,
              "minimum frequency must be in (0, 0.5]");

  Rng rng(params.seed);
  SimulatedDataset out;
  out.genotypes = BitMatrix(params.n_snps, params.n_samples);
  out.positions.resize(params.n_snps);
  for (auto& p : out.positions) p = rng.next_double();
  std::sort(out.positions.begin(), out.positions.end());

  detail::HaplotypeProcess process(rng, params.founders, params.n_samples,
                                   params.min_freq);
  for (std::size_t s = 0; s < params.n_snps; ++s) {
    const std::uint64_t founder_word =
        process.advance_founders(params.switch_rate);
    process.advance_paths(params.switch_rate, params.founders);
    process.emit_row(founder_word, out.genotypes.row_data(s),
                     out.genotypes.words_per_snp());
  }

  LDLA_ASSERT(out.genotypes.padding_is_clean());
  return out;
}

BitMatrix simulate_genotypes(const WrightFisherParams& params) {
  return simulate_wright_fisher(params).genotypes;
}

}  // namespace ldla
