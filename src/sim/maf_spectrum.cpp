#include "sim/maf_spectrum.hpp"

#include <algorithm>
#include <cmath>

#include "sim/rng.hpp"
#include "util/contract.hpp"

namespace ldla {
namespace {

/// Draw from density ∝ 1/x on [lo, hi] (log-uniform): the neutral SFS.
double sample_one_over_x(Rng& rng, double lo, double hi) {
  return lo * std::pow(hi / lo, rng.next_double());
}

void validate(const MafSpectrumParams& p) {
  LDLA_EXPECT(p.n_snps > 0 && p.n_samples > 0,
              "dataset dimensions must be positive");
  LDLA_EXPECT(p.rare_fraction >= 0.0 && p.rare_fraction <= 1.0,
              "rare_fraction is a probability");
  LDLA_EXPECT(p.min_maf >= 0.0 && p.max_maf <= 0.5 && p.min_maf <= p.max_maf,
              "MAF support must satisfy 0 <= min_maf <= max_maf <= 0.5");
  LDLA_EXPECT(p.rare_max_maf > 0.0 && p.rare_max_maf <= p.max_maf,
              "rare_max_maf must be in (0, max_maf]");
}

}  // namespace

std::vector<double> sample_maf_spectrum(const MafSpectrumParams& params) {
  validate(params);
  Rng rng(params.seed);
  // Clamp the support floor to one carrier so every site is polymorphic.
  const double lo = std::max(params.min_maf,
                             1.0 / static_cast<double>(params.n_samples));
  const double hi = std::max(params.max_maf, lo);
  const double rare_hi = std::min(std::max(params.rare_max_maf, lo), hi);
  std::vector<double> maf(params.n_snps);
  for (double& x : maf) {
    const bool rare = params.rare_fraction > 0.0 &&
                      rng.next_bool(params.rare_fraction);
    x = rare ? sample_one_over_x(rng, lo, rare_hi)
             : sample_one_over_x(rng, lo, hi);
  }
  return maf;
}

BitMatrix simulate_maf_spectrum(const MafSpectrumParams& params) {
  validate(params);
  const std::vector<double> maf = sample_maf_spectrum(params);
  const std::size_t n = params.n_samples;
  BitMatrix out(params.n_snps, n);
  // Reuse the spectrum stream's seed space without re-drawing it: carriers
  // come from an independent stream so the spectrum stays pinned for tests.
  Rng rng(params.seed ^ 0x9e3779b97f4a7c15ull);
  for (std::size_t s = 0; s < params.n_snps; ++s) {
    const auto ac = static_cast<std::size_t>(std::clamp<double>(
        std::round(maf[s] * static_cast<double>(n)), 1.0,
        static_cast<double>(n - 1 > 0 ? n - 1 : 1)));
    // Floyd's uniform-subset sampling, using the row's own bits as the
    // membership set: O(allele count) per site, no scratch allocation.
    for (std::size_t j = n - ac; j < n; ++j) {
      const std::size_t t =
          static_cast<std::size_t>(rng.next_below(static_cast<std::uint64_t>(j) + 1));
      if (out.get(s, t)) {
        out.set(s, j, true);
      } else {
        out.set(s, t, true);
      }
    }
  }
  LDLA_ASSERT(out.padding_is_clean());
  return out;
}

}  // namespace ldla
