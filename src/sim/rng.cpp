#include "sim/rng.hpp"

#include <cmath>

#include "util/contract.hpp"

namespace ldla {

namespace {
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the full state via splitmix64 as the xoshiro authors recommend.
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  LDLA_EXPECT(bound > 0, "bound must be positive");
  // Lemire's nearly-divisionless bounded generation with rejection.
  for (;;) {
    const std::uint64_t x = next_u64();
    const __uint128_t m = static_cast<__uint128_t>(x) * bound;
    const std::uint64_t lo = static_cast<std::uint64_t>(m);
    if (lo >= bound || lo >= (0 - bound) % bound) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

double Rng::next_exponential(double rate) {
  LDLA_EXPECT(rate > 0.0, "rate must be positive");
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::uint64_t Rng::next_geometric(double p) {
  LDLA_EXPECT(p > 0.0 && p <= 1.0, "probability must be in (0, 1]");
  if (p >= 1.0) return 0;
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

}  // namespace ldla
