#include "sim/sweep_sim.hpp"

#include <algorithm>
#include <cmath>

#include "sim/detail/haplotype_process.hpp"
#include "sim/rng.hpp"
#include "util/contract.hpp"

namespace ldla {

SimulatedDataset simulate_sweep(const SweepParams& params) {
  const WrightFisherParams& base = params.base;
  LDLA_EXPECT(base.n_snps > 0 && base.n_samples > 0,
              "dataset dimensions must be positive");
  LDLA_EXPECT(base.founders >= 4 && base.founders <= 64,
              "founder pool must have 4..64 haplotypes");
  LDLA_EXPECT(base.switch_rate >= 0.0 && base.switch_rate <= 1.0,
              "switch rate is a probability");
  LDLA_EXPECT(base.min_freq > 0.0 && base.min_freq <= 0.5,
              "minimum frequency must be in (0, 0.5]");
  LDLA_EXPECT(params.sweep_center >= 0.0 && params.sweep_center < 1.0,
              "sweep center must lie in [0, 1)");
  LDLA_EXPECT(params.sweep_width > 0.0 && params.sweep_width < 0.5,
              "sweep width must lie in (0, 0.5)");
  LDLA_EXPECT(params.sweep_intensity >= 0.0 && params.sweep_intensity <= 1.0,
              "sweep intensity must lie in [0, 1]");

  Rng rng(base.seed);
  SimulatedDataset out;
  out.genotypes = BitMatrix(base.n_snps, base.n_samples);
  out.positions.resize(base.n_snps);
  for (auto& p : out.positions) p = rng.next_double();
  std::sort(out.positions.begin(), out.positions.end());

  // The SNP at which all lineages re-coalesce (the swept site): first SNP
  // at or beyond the sweep center.
  const std::size_t center_idx = static_cast<std::size_t>(
      std::lower_bound(out.positions.begin(), out.positions.end(),
                       params.sweep_center) -
      out.positions.begin());

  detail::HaplotypeProcess process(rng, base.founders, base.n_samples,
                                   base.min_freq);
  bool was_in_sweep = false;
  for (std::size_t s = 0; s < base.n_snps; ++s) {
    const double dist = std::abs(out.positions[s] - params.sweep_center);
    const bool in_sweep = dist < params.sweep_width;
    // Inside the sweep region recombination is damped and haplotype
    // diversity collapsed — the long shared tracts of a recent sweep.
    const double damp = in_sweep ? (1.0 - params.sweep_intensity) : 1.0;
    const double rate = base.switch_rate * damp;
    const unsigned pool =
        in_sweep ? std::max(2u, static_cast<unsigned>(std::lround(
                                    base.founders * std::max(0.125, damp))))
                 : base.founders;
    if (in_sweep && !was_in_sweep) process.clamp_paths(pool);
    was_in_sweep = in_sweep;

    const std::uint64_t founder_word = process.advance_founders(rate);
    if (s == center_idx) {
      // The swept site itself: founder correlation and every copying path
      // reset, decoupling the left flank from the right.
      process.reset_all(pool);
    } else {
      process.advance_paths(rate, pool);
    }
    process.emit_row(founder_word, out.genotypes.row_data(s),
                     out.genotypes.words_per_snp());
  }

  LDLA_ASSERT(out.genotypes.padding_is_clean());
  return out;
}

}  // namespace ldla
