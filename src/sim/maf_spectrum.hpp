// MAF-spectrum panel generator: site frequencies drawn from a configurable
// site-frequency spectrum instead of the uniform-ish frequencies of the
// haplotype-copying simulator.
//
// Real cohorts are dominated by rare variants — the neutral SFS puts mass
// ∝ 1/x on derived-allele frequency x, and sequencing panels show an
// additional rare-variant excess on top. The sparse/hybrid LD kernels
// (DESIGN.md §4.6) exist precisely for that regime, so benches and tests
// need panels whose column popcounts follow a controllable spectrum:
// `rare_fraction = 0` gives the neutral 1/x spectrum over
// [min_maf, max_maf]; raising it mixes in a second 1/x component truncated
// at `rare_max_maf`, concentrating columns below the sparse threshold.
//
// Sites are independent (no linkage): LD kernels are data-oblivious in
// runtime except for the popcount-dependent sparse dispatch, which is what
// these panels exercise; correctness against linked data is covered by the
// Wright-Fisher simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "core/bit_matrix.hpp"

namespace ldla {

struct MafSpectrumParams {
  std::size_t n_snps = 1000;
  std::size_t n_samples = 1000;
  /// Fraction of sites drawn from the rare-variant excess component
  /// (1/x truncated to [min_maf, rare_max_maf]); the rest draw from the
  /// neutral 1/x spectrum over [min_maf, max_maf].
  double rare_fraction = 0.0;
  double rare_max_maf = 0.01;
  /// Spectrum support. min_maf is clamped up to 1/n_samples so every site
  /// is polymorphic (allele count >= 1).
  double min_maf = 0.0;
  double max_maf = 0.5;
  std::uint64_t seed = 42;
};

/// Per-site target minor-allele frequencies sampled from the spectrum
/// (exposed separately so tests can pin the spectrum itself).
std::vector<double> sample_maf_spectrum(const MafSpectrumParams& params);

/// Generate a panel: each site's allele count is round(maf * n_samples)
/// (clamped to [1, n_samples - 1]) carriers placed uniformly at random.
BitMatrix simulate_maf_spectrum(const MafSpectrumParams& params);

}  // namespace ldla
