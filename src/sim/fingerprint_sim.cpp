#include "sim/fingerprint_sim.hpp"

#include <vector>

#include "sim/rng.hpp"
#include "util/contract.hpp"

namespace ldla {

BitMatrix simulate_fingerprints(const FingerprintParams& params) {
  LDLA_EXPECT(params.count > 0 && params.bits > 0,
              "fingerprint dimensions must be positive");
  LDLA_EXPECT(params.clusters > 0, "need at least one cluster");
  LDLA_EXPECT(params.bit_density > 0.0 && params.bit_density < 1.0,
              "bit density is a probability");
  LDLA_EXPECT(params.noise >= 0.0 && params.noise < 1.0,
              "noise is a probability");

  Rng rng(params.seed);
  const std::size_t words = words_for_bits(params.bits);

  // Cluster centers as packed words.
  std::vector<std::vector<std::uint64_t>> centers(params.clusters);
  for (auto& center : centers) {
    center.resize(words, 0);
    for (std::size_t b = 0; b < params.bits; ++b) {
      if (rng.next_bool(params.bit_density)) {
        center[b / 64] |= std::uint64_t{1} << (b % 64);
      }
    }
  }

  const std::size_t tail_bits = params.bits % 64;
  const std::uint64_t tail_mask =
      tail_bits == 0 ? ~std::uint64_t{0}
                     : ((std::uint64_t{1} << tail_bits) - 1);

  BitMatrix out(params.count, params.bits);
  for (std::size_t i = 0; i < params.count; ++i) {
    const auto& center = centers[i % params.clusters];
    std::uint64_t* row = out.row_data(i);
    for (std::size_t w = 0; w < words; ++w) {
      // Per-bit noise: build a flip mask word (noise is small, so sample
      // flip positions geometrically).
      std::uint64_t flips = 0;
      if (params.noise > 0.0) {
        std::size_t b = static_cast<std::size_t>(
            rng.next_geometric(params.noise));
        while (b < 64) {
          flips |= std::uint64_t{1} << b;
          b += 1 + static_cast<std::size_t>(rng.next_geometric(params.noise));
        }
      }
      row[w] = center[w] ^ flips;
      if (w + 1 == words) row[w] &= tail_mask;
    }
  }
  LDLA_ASSERT(out.padding_is_clean());
  return out;
}

}  // namespace ldla
