// Paper-style ASCII table formatting for the benchmark harness.
#pragma once

#include <string>
#include <vector>

namespace ldla {

/// Accumulates rows of string cells and renders an aligned table with a
/// header rule, matching the layout of Tables I-III in the paper.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with column alignment; numeric-looking cells right-align.
  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers shared by the bench binaries.
std::string fmt_fixed(double v, int decimals);
std::string fmt_sci(double v, int decimals);
std::string fmt_percent(double fraction, int decimals);

}  // namespace ldla
