#include "util/cpu_info.hpp"

#include <array>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace ldla {
namespace {

#if defined(__x86_64__) || defined(__i386__)
struct CpuidRegs {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
};

CpuidRegs cpuid(unsigned leaf, unsigned subleaf) {
  CpuidRegs r;
  __cpuid_count(leaf, subleaf, r.eax, r.ebx, r.ecx, r.edx);
  return r;
}

CpuFeatures detect_features() {
  CpuFeatures f;
  const CpuidRegs l1 = cpuid(1, 0);
  f.popcnt = (l1.ecx >> 23) & 1u;
  f.sse42 = (l1.ecx >> 20) & 1u;
  f.ssse3 = (l1.ecx >> 9) & 1u;
  const CpuidRegs l7 = cpuid(7, 0);
  f.avx2 = (l7.ebx >> 5) & 1u;
  f.avx512f = (l7.ebx >> 16) & 1u;
  f.avx512bw = (l7.ebx >> 30) & 1u;
  f.avx512vpopcntdq = (l7.ecx >> 14) & 1u;
  return f;
}

std::string detect_brand() {
  std::array<char, 49> brand{};
  unsigned* p = reinterpret_cast<unsigned*>(brand.data());
  for (unsigned i = 0; i < 3; ++i) {
    const CpuidRegs r = cpuid(0x80000002u + i, 0);
    p[i * 4 + 0] = r.eax;
    p[i * 4 + 1] = r.ebx;
    p[i * 4 + 2] = r.ecx;
    p[i * 4 + 3] = r.edx;
  }
  return std::string(brand.data());
}
#else
CpuFeatures detect_features() { return {}; }
std::string detect_brand() { return "unknown"; }
#endif

std::size_t read_sysfs_cache(unsigned index) {
  std::ostringstream path;
  path << "/sys/devices/system/cpu/cpu0/cache/index" << index << "/size";
  std::ifstream in(path.str());
  if (!in) return 0;
  std::string s;
  in >> s;
  if (s.empty()) return 0;
  std::size_t mul = 1;
  if (s.back() == 'K') mul = 1024;
  if (s.back() == 'M') mul = 1024 * 1024;
  if (mul != 1) s.pop_back();
  try {
    return static_cast<std::size_t>(std::stoull(s)) * mul;
  } catch (...) {
    return 0;
  }
}

std::string read_sysfs_cache_type(unsigned index) {
  std::ostringstream path;
  path << "/sys/devices/system/cpu/cpu0/cache/index" << index << "/type";
  std::ifstream in(path.str());
  std::string t;
  if (in) in >> t;
  return t;
}

unsigned read_sysfs_cache_level(unsigned index) {
  std::ostringstream path;
  path << "/sys/devices/system/cpu/cpu0/cache/index" << index << "/level";
  std::ifstream in(path.str());
  unsigned lvl = 0;
  if (in) in >> lvl;
  return lvl;
}

CacheInfo detect_cache() {
  CacheInfo c;
  bool found_any = false;
  for (unsigned idx = 0; idx < 8; ++idx) {
    const unsigned level = read_sysfs_cache_level(idx);
    if (level == 0) continue;
    const std::string type = read_sysfs_cache_type(idx);
    const std::size_t size = read_sysfs_cache(idx);
    if (size == 0) continue;
    found_any = true;
    if (level == 1 && type != "Instruction") c.l1d = size;
    if (level == 2) c.l2 = size;
    if (level == 3) c.l3 = size;
  }
  if (!found_any) {
    // Keep the conservative defaults from the struct initializers.
  }
  return c;
}

CpuInfo detect_all() {
  CpuInfo info;
  info.features = detect_features();
  info.cache = detect_cache();
  info.logical_cores = std::max(1u, std::thread::hardware_concurrency());
  info.brand = detect_brand();
  return info;
}

}  // namespace

const CpuInfo& cpu_info() {
  static const CpuInfo info = detect_all();
  return info;
}

bool pin_current_thread_to_core(unsigned core) {
#if defined(__linux__)
  const unsigned cores = cpu_info().logical_cores;
  cpu_set_t mask;
  CPU_ZERO(&mask);
  CPU_SET(core % (cores == 0 ? 1u : cores), &mask);
  return pthread_setaffinity_np(pthread_self(), sizeof(mask), &mask) == 0;
#else
  (void)core;
  return false;
#endif
}

std::string cpu_summary() {
  const CpuInfo& i = cpu_info();
  std::ostringstream out;
  out << i.brand << " | cores=" << i.logical_cores
      << " | L1d=" << i.cache.l1d / 1024 << "K L2=" << i.cache.l2 / 1024
      << "K L3=" << i.cache.l3 / 1024 << "K | features:";
  if (i.features.popcnt) out << " popcnt";
  if (i.features.avx2) out << " avx2";
  if (i.features.avx512f) out << " avx512f";
  if (i.features.avx512vpopcntdq) out << " avx512vpopcntdq";
  return out.str();
}

}  // namespace ldla
