// Cache-line / SIMD-aligned heap buffer with RAII ownership.
//
// The GEMM packing buffers and the bit matrix backing store must be aligned
// for aligned vector loads (64 B covers AVX-512) and to avoid split lines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

#include "util/contract.hpp"

namespace ldla {

/// Default alignment: one cache line, which also satisfies AVX-512 loads.
inline constexpr std::size_t kDefaultAlignment = 64;

namespace detail {
void* aligned_alloc_bytes(std::size_t bytes, std::size_t alignment);
void aligned_free_bytes(void* p) noexcept;
}  // namespace detail

/// Owning, aligned, fixed-size array of trivially-copyable T.
///
/// Unlike std::vector this guarantees the requested alignment and never
/// value-initializes on resize-free construction paths where callers will
/// overwrite the contents anyway (explicit zeroing is available).
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedBuffer is for POD-like element types");

 public:
  AlignedBuffer() noexcept = default;

  explicit AlignedBuffer(std::size_t count,
                         std::size_t alignment = kDefaultAlignment)
      : size_(count) {
    if (count != 0) {
      data_ = static_cast<T*>(
          detail::aligned_alloc_bytes(count * sizeof(T), alignment));
    }
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(other.data_), size_(other.size_) {
    other.data_ = nullptr;
    other.size_ = 0;
  }

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      detail::aligned_free_bytes(data_);
      data_ = other.data_;
      size_ = other.size_;
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }

  ~AlignedBuffer() { detail::aligned_free_bytes(data_); }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  // Bounds-checked in debug / checked builds; the functions stay noexcept,
  // so a violation terminates rather than unwinding (exercised by the
  // contract death tests).
  [[nodiscard]] T& operator[](std::size_t i) noexcept {
    LDLA_BOUNDS_CHECK(i < size_, "buffer index out of range");
    return data_[i];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    LDLA_BOUNDS_CHECK(i < size_, "buffer index out of range");
    return data_[i];
  }

  [[nodiscard]] std::span<T> span() noexcept { return {data_, size_}; }
  [[nodiscard]] std::span<const T> span() const noexcept {
    return {data_, size_};
  }

  [[nodiscard]] T* begin() noexcept { return data_; }
  [[nodiscard]] T* end() noexcept { return data_ + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data_; }
  [[nodiscard]] const T* end() const noexcept { return data_ + size_; }

  /// Set every byte to zero.
  void zero() noexcept;

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

template <typename T>
void AlignedBuffer<T>::zero() noexcept {
  if (data_ != nullptr) {
    __builtin_memset(data_, 0, size_ * sizeof(T));
  }
}

}  // namespace ldla
