// Range partitioners for the threaded LD drivers.
#pragma once

#include <cstddef>
#include <vector>

namespace ldla {

/// Half-open index range [begin, end).
struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
  [[nodiscard]] bool empty() const noexcept { return begin == end; }
  friend bool operator==(const Range&, const Range&) = default;
};

/// Split [0, n) into at most `parts` contiguous ranges of near-equal size.
/// Fewer ranges are returned when n < parts; never returns empty ranges.
std::vector<Range> split_uniform(std::size_t n, std::size_t parts);

/// Split [0, n) into at most `parts` contiguous ranges such that the *lower
/// triangle* work — range r owns all pairs (i, j) with j in r and i >= j —
/// is near-equal across ranges. Used to balance the symmetric LD driver,
/// where later columns own fewer pairs than earlier ones.
std::vector<Range> split_triangle(std::size_t n, std::size_t parts);

/// Number of lower-triangle pairs (i >= j) owned by columns [r.begin, r.end)
/// out of n total columns: sum over j of (n - j).
std::size_t triangle_work(std::size_t n, const Range& r);

/// Split [0, n) into at most `parts` contiguous ranges such that *row*
/// ownership of the lower triangle — range r owns all pairs (i, j) with
/// i in r and j <= i — is near-equal. Row i owns i + 1 pairs, so later
/// ranges get fewer rows. Used by the threaded symmetric LD scan.
std::vector<Range> split_triangle_rows(std::size_t n, std::size_t parts);

/// Lower-triangle pairs owned by rows [r.begin, r.end): sum over i of (i+1).
std::size_t triangle_row_work(const Range& r);

}  // namespace ldla
