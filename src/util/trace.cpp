// Implementation of the phase-counter / span / session layer declared in
// util/trace.hpp. Storage model: a fixed static array of cache-line-aligned
// per-thread slots (no heap allocation on the hot path; the repo's
// allocation choke point stays intact). A thread claims a slot on first
// instrumented call and keeps it for the process lifetime; counter and
// phase-time writes are relaxed fetch_adds on the owner's dedicated cache
// line, so there is no cross-thread contention and snapshot() can aggregate
// lock-free from any thread. If more threads than slots ever appear, the
// overflow threads share the last slot: fetch_add keeps their *counters*
// exact, and the owner-only span machinery is disabled for them.
#include "util/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "util/annotations.hpp"
#include "util/contract.hpp"
#include "util/sync.hpp"
#include "util/cpu_info.hpp"
#include "util/peak.hpp"
#include "util/perf_counters.hpp"
#include "util/timer.hpp"

namespace ldla::trace {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kPackA:
      return "pack_a";
    case Phase::kPackB:
      return "pack_b";
    case Phase::kKernel:
      return "kernel";
    case Phase::kEpilogue:
      return "epilogue";
    case Phase::kMirror:
      return "mirror";
    case Phase::kIo:
      return "io";
    case Phase::kTaskRun:
      return "task_run";
    case Phase::kTaskWait:
      return "task_wait";
    case Phase::kBarrier:
      return "barrier";
  }
  return "unknown";
}

TraceSnapshot TraceSnapshot::since(const TraceSnapshot& earlier) const {
  TraceSnapshot d;
  d.counters.bytes_packed = counters.bytes_packed - earlier.counters.bytes_packed;
  d.counters.slivers_packed =
      counters.slivers_packed - earlier.counters.slivers_packed;
  d.counters.slivers_reused =
      counters.slivers_reused - earlier.counters.slivers_reused;
  d.counters.kernel_calls = counters.kernel_calls - earlier.counters.kernel_calls;
  d.counters.kernel_words = counters.kernel_words - earlier.counters.kernel_words;
  d.counters.tiles_emitted =
      counters.tiles_emitted - earlier.counters.tiles_emitted;
  d.counters.epilogue_rows =
      counters.epilogue_rows - earlier.counters.epilogue_rows;
  d.counters.task_runs = counters.task_runs - earlier.counters.task_runs;
  d.counters.steals = counters.steals - earlier.counters.steals;
  d.counters.failed_steals =
      counters.failed_steals - earlier.counters.failed_steals;
  d.counters.parks = counters.parks - earlier.counters.parks;
  d.counters.barrier_waits =
      counters.barrier_waits - earlier.counters.barrier_waits;
  d.counters.sparse_ll_tiles =
      counters.sparse_ll_tiles - earlier.counters.sparse_ll_tiles;
  d.counters.sparse_ld_tiles =
      counters.sparse_ld_tiles - earlier.counters.sparse_ld_tiles;
  d.counters.list_intersections =
      counters.list_intersections - earlier.counters.list_intersections;
  d.counters.dense_fallback_tiles =
      counters.dense_fallback_tiles - earlier.counters.dense_fallback_tiles;
  d.counters.io_bytes_read =
      counters.io_bytes_read - earlier.counters.io_bytes_read;
  d.counters.prefetch_issued =
      counters.prefetch_issued - earlier.counters.prefetch_issued;
  d.counters.prefetch_hits =
      counters.prefetch_hits - earlier.counters.prefetch_hits;
  d.counters.prefetch_stalls =
      counters.prefetch_stalls - earlier.counters.prefetch_stalls;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    d.phase_self_ns[i] = phase_self_ns[i] - earlier.phase_self_ns[i];
    d.phase_perf[i].cycles = phase_perf[i].cycles - earlier.phase_perf[i].cycles;
    d.phase_perf[i].instructions =
        phase_perf[i].instructions - earlier.phase_perf[i].instructions;
    d.phase_perf[i].llc_loads =
        phase_perf[i].llc_loads - earlier.phase_perf[i].llc_loads;
    d.phase_perf[i].llc_misses =
        phase_perf[i].llc_misses - earlier.phase_perf[i].llc_misses;
  }
  return d;
}

#if defined(LDLA_TRACE_ENABLED)

namespace {

constexpr std::uint32_t kMaxSlots = 128;
constexpr int kMaxDepth = 16;
constexpr std::size_t kMaxEventsPerThread = std::size_t{1} << 20;
constexpr std::size_t kNumPerf = 4;

// Counter indices, matching the PhaseCounters field order.
enum CounterIndex : std::size_t {
  kCBytesPacked = 0,
  kCSliversPacked,
  kCSliversReused,
  kCKernelCalls,
  kCKernelWords,
  kCTilesEmitted,
  kCEpilogueRows,
  kCTaskRuns,
  kCSteals,
  kCFailedSteals,
  kCParks,
  kCBarrierWaits,
  kCSparseLlTiles,
  kCSparseLdTiles,
  kCListIntersections,
  kCDenseFallbackTiles,
  kCIoBytesRead,
  kCPrefetchIssued,
  kCPrefetchHits,
  kCPrefetchStalls,
  kNumCounters,
};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct alignas(64) Slot {
  // Any-thread-readable, owner-written (overflow threads may share writes;
  // fetch_add keeps the totals exact either way).
  std::atomic<std::uint64_t> counters[kNumCounters] = {};
  std::atomic<std::uint64_t> phase_ns[kPhaseCount] = {};
  std::atomic<std::uint64_t> perf[kPhaseCount][kNumPerf] = {};
  std::atomic<bool> shared{false};
  std::uint32_t tid = 0;

  // Owner-only span stack (disabled on shared slots).
  struct Frame {
    Phase phase = Phase::kKernel;
    std::uint64_t t0 = 0;
    std::uint64_t child_ns = 0;
    PerfReading p0;
    std::uint64_t child_perf[kNumPerf] = {0, 0, 0, 0};
  };
  Frame stack[kMaxDepth];
  int depth = 0;

  // Owner-only session event buffer, tagged with the session epoch it
  // belongs to so stale buffers are dropped lazily by the owner.
  std::vector<TraceEvent> events;
  std::uint64_t events_epoch = 0;
  std::uint64_t events_dropped = 0;
};

Slot g_slots[kMaxSlots];
std::atomic<std::uint32_t> g_next_slot{0};

std::atomic<bool> g_timing{true};
std::atomic<bool> g_session{false};
std::atomic<bool> g_session_perf{false};
std::atomic<std::uint64_t> g_epoch{0};
std::atomic<std::uint64_t> g_session_t0{0};

// Guards session start/stop/name; never taken on the hot path.
Mutex g_session_mutex;
std::string g_session_name LDLA_GUARDED_BY(g_session_mutex);

thread_local Slot* t_slot = nullptr;

Slot* slot() {
  Slot* s = t_slot;
  if (s == nullptr) [[unlikely]] {
    const std::uint32_t idx =
        g_next_slot.fetch_add(1, std::memory_order_relaxed);
    if (idx < kMaxSlots) {
      s = &g_slots[idx];
      s->tid = idx;
    } else {
      s = &g_slots[kMaxSlots - 1];
      s->shared.store(true, std::memory_order_relaxed);
    }
    t_slot = s;
  }
  return s;
}

void add_counter(std::size_t which, std::uint64_t x) {
  slot()->counters[which].fetch_add(x, std::memory_order_relaxed);
}

// Append a span event to the owner's buffer (caller checked !shared).
void append_event(Slot* s, Phase phase, std::uint64_t t0, std::uint64_t dur) {
  const std::uint64_t epoch = g_epoch.load(std::memory_order_relaxed);
  if (s->events_epoch != epoch) {
    s->events.clear();
    s->events_epoch = epoch;
    s->events_dropped = 0;
  }
  if (s->events.size() >= kMaxEventsPerThread) {
    ++s->events_dropped;
    return;
  }
  const std::uint64_t base = g_session_t0.load(std::memory_order_relaxed);
  TraceEvent e;
  e.phase = phase;
  e.tid = s->tid;
  e.ts_ns = t0 >= base ? t0 - base : 0;
  e.dur_ns = dur;
  s->events.push_back(e);
}

// Gather all event buffers belonging to the current epoch. Caller holds
// g_session_mutex and the quiescence contract.
std::vector<TraceEvent> gather_events() LDLA_REQUIRES(g_session_mutex) {
  std::vector<TraceEvent> out;
  const std::uint64_t epoch = g_epoch.load(std::memory_order_relaxed);
  const std::uint32_t n =
      std::min(g_next_slot.load(std::memory_order_relaxed), kMaxSlots);
  for (std::uint32_t i = 0; i < n; ++i) {
    const Slot& s = g_slots[i];
    if (s.events_epoch == epoch) {
      out.insert(out.end(), s.events.begin(), s.events.end());
    }
  }
  return out;
}

std::uint64_t gather_dropped() LDLA_REQUIRES(g_session_mutex) {
  std::uint64_t dropped = 0;
  const std::uint64_t epoch = g_epoch.load(std::memory_order_relaxed);
  const std::uint32_t n =
      std::min(g_next_slot.load(std::memory_order_relaxed), kMaxSlots);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (g_slots[i].events_epoch == epoch) dropped += g_slots[i].events_dropped;
  }
  return dropped;
}

void json_escape_to(std::string& out, const std::string& in) {
  for (const char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string sanitize_for_filename(const std::string& name) {
  std::string out;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    out += ok ? c : '_';
  }
  return out.empty() ? std::string("run") : out;
}

/// Write the Chrome-trace report. Caller holds g_session_mutex; the session
/// flag is already cleared so no new events race the buffers.
/// Returns the path, or "" on any write failure.
std::string write_report(const std::string& run_name)
    LDLA_REQUIRES(g_session_mutex) {
  const char* dir = std::getenv("LDLA_TRACE_DIR");
  std::string path = (dir != nullptr && *dir != '\0') ? dir : ".";
  path += "/trace_" + sanitize_for_filename(run_name) + ".json";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "trace: cannot open %s for writing\n", path.c_str());
    return "";
  }

  const TraceSnapshot snap = snapshot();
  const std::vector<TraceEvent> events = gather_events();
  const std::uint64_t dropped = gather_dropped();
  const std::uint64_t t_end = now_ns();
  const std::uint64_t t0 = g_session_t0.load(std::memory_order_relaxed);
  const CpuInfo& cpu = cpu_info();
  const TimingCalibration& cal = timing_calibration();
  const bool perf_ok = perf_counters_available();

  std::string brand;
  json_escape_to(brand, cpu.brand);
  std::string perf_status;
  json_escape_to(perf_status, perf_counters_status());
  std::string run_escaped;
  json_escape_to(run_escaped, run_name);

  // Metadata block: everything needed to interpret the numbers offline.
  std::fprintf(f, "{\n\"metadata\": {\n");
  std::fprintf(f, "  \"run\": \"%s\",\n", run_escaped.c_str());
  std::fprintf(f, "  \"clock\": \"steady_clock\",\n");
  std::fprintf(f, "  \"session_ns\": %llu,\n",
               static_cast<unsigned long long>(t_end > t0 ? t_end - t0 : 0));
  std::fprintf(f, "  \"tsc_hz\": %.6g,\n", cal.tsc_hz);
  std::fprintf(f, "  \"core_hz\": %.6g,\n", cal.core_hz);
  std::fprintf(f, "  \"scalar_peak_triples_per_sec\": %.6g,\n",
               scalar_peak_triples_per_sec());
  std::fprintf(f,
               "  \"cpu\": {\"brand\": \"%s\", \"logical_cores\": %u, "
               "\"l1d\": %llu, \"l2\": %llu, \"l3\": %llu, \"line\": %llu},\n",
               brand.c_str(), cpu.logical_cores,
               static_cast<unsigned long long>(cpu.cache.l1d),
               static_cast<unsigned long long>(cpu.cache.l2),
               static_cast<unsigned long long>(cpu.cache.l3),
               static_cast<unsigned long long>(cpu.cache.line));
  std::fprintf(f,
               "  \"perf\": {\"available\": %s, \"status\": \"%s\"},\n",
               perf_ok ? "true" : "false", perf_status.c_str());
  std::fprintf(f, "  \"events_dropped\": %llu\n",
               static_cast<unsigned long long>(dropped));
  std::fprintf(f, "},\n");

  // Cumulative counters (process lifetime; diff two traces to window them).
  std::fprintf(
      f,
      "\"counters\": {\"bytes_packed\": %llu, \"slivers_packed\": %llu, "
      "\"slivers_reused\": %llu, \"kernel_calls\": %llu, "
      "\"kernel_words\": %llu, \"tiles_emitted\": %llu, "
      "\"epilogue_rows\": %llu, \"task_runs\": %llu, \"steals\": %llu, "
      "\"failed_steals\": %llu, \"parks\": %llu, \"barrier_waits\": %llu, "
      "\"sparse_ll_tiles\": %llu, \"sparse_ld_tiles\": %llu, "
      "\"list_intersections\": %llu, \"dense_fallback_tiles\": %llu, "
      "\"io_bytes_read\": %llu, \"prefetch_issued\": %llu, "
      "\"prefetch_hits\": %llu, \"prefetch_stalls\": %llu},\n",
      static_cast<unsigned long long>(snap.counters.bytes_packed),
      static_cast<unsigned long long>(snap.counters.slivers_packed),
      static_cast<unsigned long long>(snap.counters.slivers_reused),
      static_cast<unsigned long long>(snap.counters.kernel_calls),
      static_cast<unsigned long long>(snap.counters.kernel_words),
      static_cast<unsigned long long>(snap.counters.tiles_emitted),
      static_cast<unsigned long long>(snap.counters.epilogue_rows),
      static_cast<unsigned long long>(snap.counters.task_runs),
      static_cast<unsigned long long>(snap.counters.steals),
      static_cast<unsigned long long>(snap.counters.failed_steals),
      static_cast<unsigned long long>(snap.counters.parks),
      static_cast<unsigned long long>(snap.counters.barrier_waits),
      static_cast<unsigned long long>(snap.counters.sparse_ll_tiles),
      static_cast<unsigned long long>(snap.counters.sparse_ld_tiles),
      static_cast<unsigned long long>(snap.counters.list_intersections),
      static_cast<unsigned long long>(snap.counters.dense_fallback_tiles),
      static_cast<unsigned long long>(snap.counters.io_bytes_read),
      static_cast<unsigned long long>(snap.counters.prefetch_issued),
      static_cast<unsigned long long>(snap.counters.prefetch_hits),
      static_cast<unsigned long long>(snap.counters.prefetch_stalls));

  // Per-phase roofline table: self time, perf deltas, and the derived
  // words/cycle + %-of-scalar-peak for the kernel phase (the paper's
  // 3-ops/cycle argument) plus bytes-per-LLC-load when LLC events exist.
  std::fprintf(f, "\"phases\": [\n");
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const Phase p = static_cast<Phase>(i);
    const double self_s =
        static_cast<double>(snap.phase_self_ns[i]) * 1e-9;
    std::fprintf(
        f,
        "  {\"phase\": \"%s\", \"self_ns\": %llu, \"cycles\": %llu, "
        "\"instructions\": %llu, \"llc_loads\": %llu, \"llc_misses\": %llu",
        phase_name(p), static_cast<unsigned long long>(snap.phase_self_ns[i]),
        static_cast<unsigned long long>(snap.phase_perf[i].cycles),
        static_cast<unsigned long long>(snap.phase_perf[i].instructions),
        static_cast<unsigned long long>(snap.phase_perf[i].llc_loads),
        static_cast<unsigned long long>(snap.phase_perf[i].llc_misses));
    if (p == Phase::kKernel && self_s > 0.0) {
      const double words_per_sec =
          static_cast<double>(snap.counters.kernel_words) / self_s;
      std::fprintf(f, ", \"words_per_sec\": %.6g", words_per_sec);
      const double peak = scalar_peak_triples_per_sec();
      if (peak > 0.0) {
        std::fprintf(f, ", \"pct_scalar_peak\": %.4g",
                     100.0 * words_per_sec / peak);
      }
      if (snap.phase_perf[i].cycles > 0) {
        std::fprintf(f, ", \"words_per_cycle\": %.4g",
                     static_cast<double>(snap.counters.kernel_words) /
                         static_cast<double>(snap.phase_perf[i].cycles));
      }
      if (snap.phase_perf[i].llc_loads > 0) {
        // Operand traffic: two packed input words per word-triple.
        std::fprintf(f, ", \"bytes_per_llc_load\": %.4g",
                     static_cast<double>(snap.counters.kernel_words) * 16.0 /
                         static_cast<double>(snap.phase_perf[i].llc_loads));
      }
    }
    std::fprintf(f, "}%s\n", i + 1 < kPhaseCount ? "," : "");
  }
  std::fprintf(f, "],\n");

  // Chrome-trace events: "X" complete events, microsecond timestamps.
  std::fprintf(f, "\"displayTimeUnit\": \"ms\",\n");
  std::fprintf(f, "\"traceEvents\": [\n");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"cat\": \"ldla\", \"ph\": \"X\", "
                 "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u}%s\n",
                 phase_name(e.phase), static_cast<double>(e.ts_ns) * 1e-3,
                 static_cast<double>(e.dur_ns) * 1e-3, e.tid,
                 i + 1 < events.size() ? "," : "");
  }
  std::fprintf(f, "]\n}\n");

  const bool write_error = std::ferror(f) != 0;
  const bool close_error = std::fclose(f) != 0;
  if (write_error || close_error) {
    std::fprintf(stderr, "trace: error writing %s\n", path.c_str());
    return "";
  }
  return path;
}

void atexit_write() {
  // Best-effort flush for runs that never called stop_session_and_write().
  stop_session_and_write();
}

}  // namespace

namespace detail {

void add_pack(std::uint64_t slivers, std::uint64_t bytes) {
  Slot* s = slot();
  s->counters[kCSliversPacked].fetch_add(slivers, std::memory_order_relaxed);
  s->counters[kCBytesPacked].fetch_add(bytes, std::memory_order_relaxed);
}

void add_reuse(std::uint64_t slivers) { add_counter(kCSliversReused, slivers); }

void add_kernel(std::uint64_t calls, std::uint64_t words) {
  Slot* s = slot();
  s->counters[kCKernelCalls].fetch_add(calls, std::memory_order_relaxed);
  s->counters[kCKernelWords].fetch_add(words, std::memory_order_relaxed);
}

void add_tile() { add_counter(kCTilesEmitted, 1); }

void add_epilogue_rows(std::uint64_t rows) {
  add_counter(kCEpilogueRows, rows);
}

void add_task_run() { add_counter(kCTaskRuns, 1); }

void add_steal() { add_counter(kCSteals, 1); }

void add_failed_steal() { add_counter(kCFailedSteals, 1); }

void add_park() { add_counter(kCParks, 1); }

void add_barrier_wait() { add_counter(kCBarrierWaits, 1); }

void add_sparse(std::uint64_t ll_tiles, std::uint64_t ld_tiles,
                std::uint64_t intersections, std::uint64_t fallback_tiles) {
  Slot* s = slot();
  s->counters[kCSparseLlTiles].fetch_add(ll_tiles, std::memory_order_relaxed);
  s->counters[kCSparseLdTiles].fetch_add(ld_tiles, std::memory_order_relaxed);
  s->counters[kCListIntersections].fetch_add(intersections,
                                             std::memory_order_relaxed);
  s->counters[kCDenseFallbackTiles].fetch_add(fallback_tiles,
                                              std::memory_order_relaxed);
}

void add_io_read(std::uint64_t bytes) { add_counter(kCIoBytesRead, bytes); }

void add_prefetch_issued() { add_counter(kCPrefetchIssued, 1); }

void add_prefetch_hit() { add_counter(kCPrefetchHits, 1); }

void add_prefetch_stall() { add_counter(kCPrefetchStalls, 1); }

std::uint64_t queue_stamp() {
  return g_timing.load(std::memory_order_relaxed) ? now_ns() : 0;
}

void task_dequeued(std::uint64_t enqueue_ns) {
  if (enqueue_ns == 0) return;
  const std::uint64_t t1 = now_ns();
  const std::uint64_t wait = t1 > enqueue_ns ? t1 - enqueue_ns : 0;
  Slot* s = slot();
  s->phase_ns[static_cast<std::size_t>(Phase::kTaskWait)].fetch_add(
      wait, std::memory_order_relaxed);
  if (g_session.load(std::memory_order_acquire) &&
      !s->shared.load(std::memory_order_relaxed)) {
    append_event(s, Phase::kTaskWait, enqueue_ns, wait);
  }
}

}  // namespace detail

Span::Span(Phase p) noexcept {
  if (!g_timing.load(std::memory_order_relaxed)) return;
  Slot* s = slot();
  if (s->shared.load(std::memory_order_relaxed) || s->depth >= kMaxDepth) {
    return;
  }
  Slot::Frame& f = s->stack[s->depth];
  f.phase = p;
  f.child_ns = 0;
  for (std::uint64_t& c : f.child_perf) c = 0;
  f.p0 = PerfReading{};
  if (g_session_perf.load(std::memory_order_relaxed) &&
      g_session.load(std::memory_order_acquire)) {
    f.p0 = perf_read_thread_counters();
  }
  f.t0 = now_ns();  // last, so the perf read is outside the timed window
  ++s->depth;
  slot_ = s;
}

Span::~Span() {
  if (slot_ == nullptr) return;
  Slot* s = static_cast<Slot*>(slot_);
  const std::uint64_t t1 = now_ns();
  Slot::Frame& f = s->stack[s->depth - 1];
  const std::uint64_t dur = t1 > f.t0 ? t1 - f.t0 : 0;
  const std::uint64_t self = dur > f.child_ns ? dur - f.child_ns : 0;
  const auto pi = static_cast<std::size_t>(f.phase);
  s->phase_ns[pi].fetch_add(self, std::memory_order_relaxed);

  if (f.p0.valid) {
    const PerfReading p1 = perf_read_thread_counters();
    if (p1.valid) {
      const std::uint64_t delta[kNumPerf] = {
          p1.cycles - f.p0.cycles, p1.instructions - f.p0.instructions,
          p1.llc_loads - f.p0.llc_loads, p1.llc_misses - f.p0.llc_misses};
      for (std::size_t j = 0; j < kNumPerf; ++j) {
        const std::uint64_t self_perf =
            delta[j] > f.child_perf[j] ? delta[j] - f.child_perf[j] : 0;
        s->perf[pi][j].fetch_add(self_perf, std::memory_order_relaxed);
        if (s->depth >= 2) s->stack[s->depth - 2].child_perf[j] += delta[j];
      }
    }
  }

  --s->depth;
  if (s->depth > 0) s->stack[s->depth - 1].child_ns += dur;

  if (g_session.load(std::memory_order_acquire)) {
    append_event(s, f.phase, f.t0, dur);
  }
}

void set_timing_enabled(bool on) {
  g_timing.store(on, std::memory_order_relaxed);
}

bool timing_enabled() { return g_timing.load(std::memory_order_relaxed); }

TraceSnapshot snapshot() {
  TraceSnapshot out;
  const std::uint32_t n =
      std::min(g_next_slot.load(std::memory_order_relaxed), kMaxSlots);
  for (std::uint32_t i = 0; i < n; ++i) {
    const Slot& s = g_slots[i];
    const auto c = [&s](std::size_t which) {
      return s.counters[which].load(std::memory_order_relaxed);
    };
    out.counters.bytes_packed += c(kCBytesPacked);
    out.counters.slivers_packed += c(kCSliversPacked);
    out.counters.slivers_reused += c(kCSliversReused);
    out.counters.kernel_calls += c(kCKernelCalls);
    out.counters.kernel_words += c(kCKernelWords);
    out.counters.tiles_emitted += c(kCTilesEmitted);
    out.counters.epilogue_rows += c(kCEpilogueRows);
    out.counters.task_runs += c(kCTaskRuns);
    out.counters.steals += c(kCSteals);
    out.counters.failed_steals += c(kCFailedSteals);
    out.counters.parks += c(kCParks);
    out.counters.barrier_waits += c(kCBarrierWaits);
    out.counters.sparse_ll_tiles += c(kCSparseLlTiles);
    out.counters.sparse_ld_tiles += c(kCSparseLdTiles);
    out.counters.list_intersections += c(kCListIntersections);
    out.counters.dense_fallback_tiles += c(kCDenseFallbackTiles);
    out.counters.io_bytes_read += c(kCIoBytesRead);
    out.counters.prefetch_issued += c(kCPrefetchIssued);
    out.counters.prefetch_hits += c(kCPrefetchHits);
    out.counters.prefetch_stalls += c(kCPrefetchStalls);
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      out.phase_self_ns[p] += s.phase_ns[p].load(std::memory_order_relaxed);
      out.phase_perf[p].cycles +=
          s.perf[p][0].load(std::memory_order_relaxed);
      out.phase_perf[p].instructions +=
          s.perf[p][1].load(std::memory_order_relaxed);
      out.phase_perf[p].llc_loads +=
          s.perf[p][2].load(std::memory_order_relaxed);
      out.phase_perf[p].llc_misses +=
          s.perf[p][3].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void start_session(const std::string& run_name) {
  LDLA_EXPECT(!run_name.empty(), "trace run name must be non-empty");
  LDLA_EXPECT(run_name.find('\n') == std::string::npos,
              "trace run name must be a single line");
  const MutexLock lock(g_session_mutex);
  g_session_name = run_name;
  g_epoch.fetch_add(1, std::memory_order_relaxed);  // invalidate old buffers
  g_session_perf.store(perf_counters_available(), std::memory_order_relaxed);
  g_session_t0.store(now_ns(), std::memory_order_relaxed);
  g_session.store(true, std::memory_order_release);
  static const int registered = std::atexit(atexit_write);
  (void)registered;
}

bool session_active() { return g_session.load(std::memory_order_acquire); }

std::string stop_session_and_write() {
  const MutexLock lock(g_session_mutex);
  if (!g_session.load(std::memory_order_acquire)) return "";
  g_session.store(false, std::memory_order_release);
  return write_report(g_session_name);
}

void cancel_session() {
  const MutexLock lock(g_session_mutex);
  g_session.store(false, std::memory_order_release);
  g_epoch.fetch_add(1, std::memory_order_relaxed);
}

std::vector<TraceEvent> session_events() {
  const MutexLock lock(g_session_mutex);
  return gather_events();
}

#else  // !LDLA_TRACE_ENABLED

// Compiled-out stubs: the macros already expand to nothing; these keep the
// runtime API linkable so benches/tests can query state unconditionally.

void set_timing_enabled(bool on) { (void)on; }

bool timing_enabled() { return false; }

TraceSnapshot snapshot() { return {}; }

void start_session(const std::string& run_name) {
  LDLA_EXPECT(!run_name.empty(), "trace run name must be non-empty");
  LDLA_EXPECT(run_name.find('\n') == std::string::npos,
              "trace run name must be a single line");
}

bool session_active() { return false; }

std::string stop_session_and_write() { return ""; }

void cancel_session() {}

std::vector<TraceEvent> session_events() { return {}; }

#endif  // LDLA_TRACE_ENABLED

}  // namespace ldla::trace
