// Chase–Lev work-stealing deque (fixed capacity, sequentially-consistent
// formulation).
//
// One thread — the owner — pushes and pops at the bottom (LIFO); any other
// thread steals from the top (FIFO). This is the original Chase & Lev
// "Dynamic Circular Work-Stealing Deque" (SPAA 2005) protocol expressed
// with seq_cst atomics on the two indices and atomic cells for the buffer.
// The fence-optimized weak-memory variant (Lê et al., PPoPP 2013) relies on
// atomic_thread_fence, which ThreadSanitizer cannot model (-Wtsan); the
// seq_cst version is TSan-exact, and index operations are nowhere near the
// hot path at our chunk granularity (one index op per macro-tile chunk).
//
// Capacity is fixed at construction (rounded up to a power of two): push()
// reports failure instead of growing, and the caller runs the item inline.
// That keeps the deque allocation-free on the hot path and sidesteps the
// buffer-reclamation problem of the growing variant.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ldla {

template <typename T>
class WorkStealDeque {
 public:
  /// `capacity` is rounded up to the next power of two (minimum 2).
  explicit WorkStealDeque(std::size_t capacity = 1024)
      : buffer_(round_up_pow2(capacity)), mask_(buffer_.size() - 1) {}

  WorkStealDeque(const WorkStealDeque&) = delete;
  WorkStealDeque& operator=(const WorkStealDeque&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return buffer_.size(); }

  /// Owner only. Returns false when the deque is full (caller keeps the item).
  bool push(T item) noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (b - t >= static_cast<std::int64_t>(buffer_.size())) return false;
    buffer_[static_cast<std::size_t>(b) & mask_].store(
        item, std::memory_order_relaxed);
    // seq_cst (⊇ release) publishes the cell — and anything the owner wrote
    // before push() — to thieves that acquire-read this bottom value.
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return true;
  }

  /// Owner only. LIFO: returns the most recently pushed item.
  bool pop(T& out) noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      // Deque was already empty; restore bottom.
      bottom_.store(b + 1, std::memory_order_seq_cst);
      return false;
    }
    out = buffer_[static_cast<std::size_t>(b) & mask_].load(
        std::memory_order_relaxed);
    if (t == b) {
      // Last item: race against thieves for it via top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_seq_cst)) {
        bottom_.store(b + 1, std::memory_order_seq_cst);
        return false;
      }
      bottom_.store(b + 1, std::memory_order_seq_cst);
    }
    return true;
  }

  /// Any thread. FIFO: returns the oldest item, or false when empty or when
  /// the CAS race against the owner / another thief is lost.
  bool steal(T& out) noexcept {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return false;
    out = buffer_[static_cast<std::size_t>(t) & mask_].load(
        std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst)) {
      return false;
    }
    return true;
  }

  /// Racy size hint for termination sweeps (exact only when quiescent).
  [[nodiscard]] bool empty_hint() const noexcept {
    return top_.load(std::memory_order_acquire) >=
           bottom_.load(std::memory_order_acquire);
  }

 private:
  static std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t p = 2;
    while (p < n) p <<= 1;
    return p;
  }

  std::vector<std::atomic<T>> buffer_;
  std::size_t mask_;
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
};

}  // namespace ldla
