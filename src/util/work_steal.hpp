// Chase–Lev work-stealing deque, weak-memory formulation (Lê, Pop, Cohen,
// Nardelli, "Correct and Efficient Work-Stealing for Weak Memory Models",
// PPoPP 2013), with the growing circular buffer of the original Chase & Lev
// SPAA 2005 protocol.
//
// One thread — the owner — pushes and pops at the bottom (LIFO); any other
// thread steals from the top (FIFO). Each operation carries exactly the
// memory ordering the PPoPP '13 proof requires, expressed fence-free so
// ThreadSanitizer (which does not model atomic_thread_fence) sees the same
// synchronization the hardware does:
//
//   push   bottom.store(release)         — publishes the cell (and all owner
//                                          writes before push) to thieves
//                                          that acquire-read bottom. On x86
//                                          this is a plain store instead of
//                                          the seq_cst xchg; on ARM a stlr
//                                          with no trailing dmb.
//   take   bottom.store(seq_cst) then    — the protocol's one unavoidable
//          top.load(seq_cst)               store→load ordering point: the
//                                          owner's claim of the last item
//                                          must be globally ordered against
//                                          a thief's CAS on top.
//   steal  top.load(acquire),            — acquire on top orders the bottom
//          bottom.load(seq_cst),           read after it; seq_cst on bottom
//          top CAS(seq_cst/relaxed)        pairs with take's store so the
//                                          single-item race serializes.
//   cells  relaxed atomic loads/stores   — publication rides entirely on
//                                          bottom/ring_; the cells only need
//                                          to be race-free.
//
// Growth: when the ring is full, push copies the live window [top, bottom)
// into a ring of twice the capacity and publishes it with a release store
// to `ring_`. A thief that still holds the old ring pointer is safe: the
// live window of a retired ring is never overwritten (the owner writes only
// to the current ring), and retired rings stay allocated until the deque is
// destroyed, so a stalled thief can always complete its read. Memory cost
// of that reclamation rule is geometric (all retired rings together are
// smaller than the current one).
//
// The protocol's logical interleavings are exhaustively checked at
// operation granularity, and the memory orderings stress-checked under
// TSan, by tests/litmus (the litmus gate guarding any change to the
// orderings above).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace ldla {

template <typename T>
class WorkStealDeque {
 public:
  /// `capacity` is rounded up to the next power of two (minimum 2); the
  /// deque grows by doubling whenever a push finds it full.
  explicit WorkStealDeque(std::size_t capacity = 1024) {
    rings_.push_back(std::make_unique<Ring>(round_up_pow2(capacity)));
    ring_.store(rings_.back().get(), std::memory_order_relaxed);
  }

  WorkStealDeque(const WorkStealDeque&) = delete;
  WorkStealDeque& operator=(const WorkStealDeque&) = delete;

  /// Current ring capacity (owner-exact; a racy hint elsewhere).
  [[nodiscard]] std::size_t capacity() const noexcept {
    return ring_.load(std::memory_order_acquire)->mask + 1;
  }

  /// Owner only. Publishes `item` at the bottom, growing the ring when
  /// full. Growth is the only allocation the deque ever performs.
  void push(T item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* a = ring_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(a->mask + 1)) {
      a = grow(a, t, b);
    }
    a->at(b).store(item, std::memory_order_relaxed);
    // Release publishes the cell — and anything the owner wrote before
    // push(), including a freshly grown ring — to thieves that
    // acquire-read this bottom value.
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only. LIFO: returns the most recently pushed item.
  bool pop(T& out) noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* a = ring_.load(std::memory_order_relaxed);
    // seq_cst store→load: the owner's provisional claim of slot b must be
    // globally ordered against concurrent steal()s' reads of bottom, or
    // both sides could take the same last item.
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      // Deque was already empty; restore bottom.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    out = a->at(b).load(std::memory_order_relaxed);
    if (t == b) {
      // Last item: race against thieves for it via top. Success is seq_cst
      // so the winning side is ordered against the loser's index reads;
      // failure needs no ordering (the loser backs off).
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        bottom_.store(b + 1, std::memory_order_relaxed);
        return false;
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return true;
  }

  /// Any thread. FIFO: returns the oldest item, or false when empty or when
  /// the CAS race against the owner / another thief is lost.
  bool steal(T& out) noexcept {
    std::int64_t t = top_.load(std::memory_order_acquire);
    // seq_cst pairs with pop()'s seq_cst bottom store: if the owner already
    // claimed the last item, this load is guaranteed to observe the
    // decremented bottom (or lose the CAS below). It also carries the
    // acquire that synchronizes with push()'s release, making the cell —
    // and any grown ring — visible before the reads below.
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return false;
    // Loaded after bottom: any ring this yields (current or retired) holds
    // a valid copy of slot t, because the live window is never overwritten
    // in place and retired rings outlive every outstanding steal.
    Ring* a = ring_.load(std::memory_order_acquire);
    out = a->at(t).load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return false;
    }
    return true;
  }

  /// Racy size hint for termination sweeps (exact only when quiescent).
  [[nodiscard]] bool empty_hint() const noexcept {
    return top_.load(std::memory_order_acquire) >=
           bottom_.load(std::memory_order_acquire);
  }

 private:
  struct Ring {
    explicit Ring(std::size_t cap) : mask(cap - 1), cells(cap) {}
    std::size_t mask;
    std::vector<std::atomic<T>> cells;
    std::atomic<T>& at(std::int64_t i) noexcept {
      return cells[static_cast<std::size_t>(i) & mask];
    }
  };

  /// Owner only (called from push with the ring full). Copies the live
  /// window into a ring of twice the capacity and publishes it; the old
  /// ring is retired but kept allocated for stalled thieves.
  Ring* grow(Ring* old, std::int64_t t, std::int64_t b) {
    rings_.push_back(std::make_unique<Ring>(2 * (old->mask + 1)));
    Ring* bigger = rings_.back().get();
    for (std::int64_t i = t; i < b; ++i) {
      bigger->at(i).store(old->at(i).load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    }
    // Release so a thief that acquires this pointer sees the copied cells;
    // push()'s release store to bottom covers thieves that never reload it.
    ring_.store(bigger, std::memory_order_release);
    return bigger;
  }

  static std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t p = 2;
    while (p < n) p <<= 1;
    return p;
  }

  std::atomic<Ring*> ring_{nullptr};
  // Every ring ever allocated, current one last. Mutated by the owner only
  // (grow); destroyed only with the deque, when no thief can be in flight.
  std::vector<std::unique_ptr<Ring>> rings_;
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
};

}  // namespace ldla
