// Capability-annotated synchronization primitives.
//
// libstdc++'s std::mutex carries no thread-safety capability attribute, so
// clang's -Wthread-safety cannot check code locking it directly. These thin
// wrappers attach the attributes (util/annotations.hpp) while delegating
// every operation to the standard primitives — zero behavioral difference,
// and off-Clang the annotations compile to nothing.
//
// Usage pattern (checked by the `thread-safety` preset):
//
//   Mutex mu_;
//   std::size_t remaining_ LDLA_GUARDED_BY(mu_);
//   CondVar done_;
//   ...
//   MutexLock lock(mu_);            // scoped acquire
//   while (remaining_ > 0) done_.wait(lock);
//
// Raw std::mutex / std::condition_variable elsewhere in src/ is rejected by
// the mutex-annotation-freshness lint rule, so every lock in the library is
// visible to the analysis.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/annotations.hpp"

namespace ldla {

class CondVar;

/// std::mutex with the clang `capability` attribute attached.
class LDLA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() LDLA_ACQUIRE() { m_.lock(); }
  void unlock() LDLA_RELEASE() { m_.unlock(); }
  bool try_lock() LDLA_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;  ///< wait() relinks the native handle
  friend class MutexLock;
  std::mutex m_;
};

/// Scoped lock over Mutex (std::lock_guard with the `scoped_lockable`
/// attribute, plus the native-handle plumbing CondVar::wait needs).
class LDLA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LDLA_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() LDLA_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mu_;
};

/// std::condition_variable usable with MutexLock. The wait methods carry
/// the standard unlock-block-relock contract; from the analysis's view the
/// lock state is unchanged across the call, which is exactly the caller-
/// visible truth.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `lock`'s mutex, block, and reacquire before
  /// returning. Spurious wakeups possible; callers loop on their predicate
  /// (which keeps the predicate reads inside the caller's analyzed scope,
  /// unlike a predicate lambda the analysis cannot see into).
  void wait(MutexLock& lock) LDLA_NO_THREAD_SAFETY_ANALYSIS {
    // Adopt the already-held native mutex for the duration of the wait;
    // release() hands it back still locked, so the scoped capability the
    // caller holds stays truthful.
    std::unique_lock<std::mutex> native(lock.mu_.m_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// wait() with a relative timeout. Returns true when notified before the
  /// timeout, false on timeout (either way the mutex is held again on
  /// return; callers re-check their predicate as with wait()).
  bool wait_for(MutexLock& lock,
                std::uint64_t timeout_ms) LDLA_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> native(lock.mu_.m_, std::adopt_lock);
    const std::cv_status st =
        cv_.wait_for(native, std::chrono::milliseconds(timeout_ms));
    native.release();
    return st == std::cv_status::no_timeout;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ldla
