#include "util/metrics.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "util/contract.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace ldla::metrics {

namespace detail {

// Sole writer of registered-metric metadata (friend of the metric classes).
struct Registry {
  static void set_meta(Counter& c, const char* name, const char* help) {
    c.name_ = name;
    c.help_ = help != nullptr ? help : "";
  }
  static void set_meta(Gauge& g, const char* name, const char* help) {
    g.name_ = name;
    g.help_ = help != nullptr ? help : "";
  }
  static void set_meta(Histogram& h, const char* name, const char* help) {
    h.name_ = name;
    h.help_ = help != nullptr ? help : "";
  }
  static void set_meta(Info& m, const char* name, const char* label,
                       const char* help) {
    m.name_ = name;
    m.label_ = label;
    m.help_ = help != nullptr ? help : "";
  }
};

std::atomic<bool> g_enabled{true};

std::uint32_t claim_stripe() noexcept {
  static std::atomic<std::uint32_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}
bool enabled() noexcept { return detail::on(); }

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kMaxCounters = 64;
constexpr std::size_t kMaxGauges = 64;
constexpr std::size_t kMaxHistograms = 24;
constexpr std::size_t kMaxInfos = 16;

// Storage is constant-initialized (atomics with constexpr constructors), so
// registration from any static initializer is safe.
Mutex g_registry_mu;
Counter g_counters[kMaxCounters];
Gauge g_gauges[kMaxGauges];
Histogram g_histograms[kMaxHistograms];
Info g_infos[kMaxInfos];
std::size_t g_n_counters LDLA_GUARDED_BY(g_registry_mu) = 0;
std::size_t g_n_gauges LDLA_GUARDED_BY(g_registry_mu) = 0;
std::size_t g_n_histograms LDLA_GUARDED_BY(g_registry_mu) = 0;
std::size_t g_n_infos LDLA_GUARDED_BY(g_registry_mu) = 0;

bool valid_metric_name(const char* name) {
  if (name == nullptr || *name == '\0') return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(*name)) return false;
  for (const char* p = name + 1; *p != '\0'; ++p) {
    if (!head(*p) && !(*p >= '0' && *p <= '9')) return false;
  }
  return true;
}

bool name_in_use(const char* name, const Counter* skip_kind_c,
                 const Gauge* skip_kind_g, const Histogram* skip_kind_h,
                 const Info* skip_kind_i = nullptr)
    LDLA_REQUIRES(g_registry_mu) {
  if (skip_kind_c == nullptr) {
    for (std::size_t i = 0; i < g_n_counters; ++i) {
      if (std::strcmp(g_counters[i].name(), name) == 0) return true;
    }
  }
  if (skip_kind_g == nullptr) {
    for (std::size_t i = 0; i < g_n_gauges; ++i) {
      if (std::strcmp(g_gauges[i].name(), name) == 0) return true;
    }
  }
  if (skip_kind_h == nullptr) {
    for (std::size_t i = 0; i < g_n_histograms; ++i) {
      if (std::strcmp(g_histograms[i].name(), name) == 0) return true;
    }
  }
  if (skip_kind_i == nullptr) {
    for (std::size_t i = 0; i < g_n_infos; ++i) {
      if (std::strcmp(g_infos[i].name(), name) == 0) return true;
    }
  }
  return false;
}

void append_json_escaped(std::string& out, const char* s) {
  for (const char* p = s; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  // JSON forbids bare nan/inf; clamp to 0 (metrics values never should be).
  if (std::strstr(buf, "nan") != nullptr || std::strstr(buf, "inf") != nullptr) {
    out += "0";
    return;
  }
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const Stripe& s : stripes_) {
    total += s.v.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // 1-based rank of the requested sample.
  std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(total) + 0.5);
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    if (cum + n >= rank) {
      const double lower = static_cast<double>(bucket_lower(i));
      const double upper = static_cast<double>(bucket_upper(i));
      const double frac =
          static_cast<double>(rank - cum) / static_cast<double>(n);
      return (lower + frac * (upper - lower)) * 1e-9;
    }
    cum += n;
  }
  // Writers raced count_ ahead of the bucket updates; report the top.
  return static_cast<double>(kMaxTracked) * 1e-9;
}

Counter& counter(const char* name, const char* help) {
  LDLA_EXPECT(valid_metric_name(name), "metrics: invalid counter name");
  MutexLock lock(g_registry_mu);
  for (std::size_t i = 0; i < g_n_counters; ++i) {
    if (std::strcmp(g_counters[i].name(), name) == 0) return g_counters[i];
  }
  LDLA_EXPECT(!name_in_use(name, g_counters, nullptr, nullptr),
              "metrics: name already registered with a different kind");
  LDLA_EXPECT(g_n_counters < kMaxCounters, "metrics: counter registry full");
  Counter& c = g_counters[g_n_counters++];
  detail::Registry::set_meta(c, name, help);
  return c;
}

Gauge& gauge(const char* name, const char* help) {
  LDLA_EXPECT(valid_metric_name(name), "metrics: invalid gauge name");
  MutexLock lock(g_registry_mu);
  for (std::size_t i = 0; i < g_n_gauges; ++i) {
    if (std::strcmp(g_gauges[i].name(), name) == 0) return g_gauges[i];
  }
  LDLA_EXPECT(!name_in_use(name, nullptr, g_gauges, nullptr),
              "metrics: name already registered with a different kind");
  LDLA_EXPECT(g_n_gauges < kMaxGauges, "metrics: gauge registry full");
  Gauge& g = g_gauges[g_n_gauges++];
  detail::Registry::set_meta(g, name, help);
  return g;
}

Histogram& histogram(const char* name, const char* help) {
  LDLA_EXPECT(valid_metric_name(name), "metrics: invalid histogram name");
  MutexLock lock(g_registry_mu);
  for (std::size_t i = 0; i < g_n_histograms; ++i) {
    if (std::strcmp(g_histograms[i].name(), name) == 0) {
      return g_histograms[i];
    }
  }
  LDLA_EXPECT(!name_in_use(name, nullptr, nullptr, g_histograms),
              "metrics: name already registered with a different kind");
  LDLA_EXPECT(g_n_histograms < kMaxHistograms,
              "metrics: histogram registry full");
  Histogram& h = g_histograms[g_n_histograms++];
  detail::Registry::set_meta(h, name, help);
  return h;
}

Info& info(const char* name, const char* label, const char* help) {
  LDLA_EXPECT(valid_metric_name(name), "metrics: invalid info name");
  LDLA_EXPECT(valid_metric_name(label), "metrics: invalid info label name");
  MutexLock lock(g_registry_mu);
  for (std::size_t i = 0; i < g_n_infos; ++i) {
    if (std::strcmp(g_infos[i].name(), name) == 0) {
      LDLA_EXPECT(std::strcmp(g_infos[i].label(), label) == 0,
                  "metrics: info re-registered with a different label");
      return g_infos[i];
    }
  }
  LDLA_EXPECT(!name_in_use(name, nullptr, nullptr, nullptr, g_infos),
              "metrics: name already registered with a different kind");
  LDLA_EXPECT(g_n_infos < kMaxInfos, "metrics: info registry full");
  Info& m = g_infos[g_n_infos++];
  detail::Registry::set_meta(m, name, label, help);
  return m;
}

// ---------------------------------------------------------------------------
// Trace bridge
// ---------------------------------------------------------------------------

namespace {

// Mirror trace-layer totals into gauges before a scrape, so a scraper (or
// test) can cross-check the two observability layers. Gauges, not counters:
// the trace snapshot is already an aggregate, and re-publishing it as a
// last-writer-wins value keeps the bridge idempotent across scrapes.
void bridge_trace() {
  if (!trace::compiled()) return;
  const trace::TraceSnapshot s = trace::snapshot();
  gauge("ldla_trace_task_runs", "trace-layer mirror: pool tasks executed")
      .set(s.counters.task_runs);
  gauge("ldla_trace_steals", "trace-layer mirror: successful deque steals")
      .set(s.counters.steals);
  gauge("ldla_trace_failed_steals", "trace-layer mirror: failed steal probes")
      .set(s.counters.failed_steals);
  gauge("ldla_trace_parks", "trace-layer mirror: worker parks")
      .set(s.counters.parks);
  gauge("ldla_trace_io_bytes_read",
        "trace-layer mirror: bytes faulted/read by the shard store")
      .set(s.counters.io_bytes_read);
  gauge("ldla_trace_prefetch_issued",
        "trace-layer mirror: shard prefetches initiated")
      .set(s.counters.prefetch_issued);
  gauge("ldla_trace_prefetch_hits",
        "trace-layer mirror: shard acquisitions already materialized")
      .set(s.counters.prefetch_hits);
  gauge("ldla_trace_prefetch_stalls",
        "trace-layer mirror: shard acquisitions on the critical path")
      .set(s.counters.prefetch_stalls);
}

}  // namespace

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

std::string render_prometheus() {
  bridge_trace();
  std::string out;
  out.reserve(8192);
  const auto help_line = [&out](const char* name, const char* help,
                                const char* type) {
    out += "# HELP ";
    out += name;
    out += ' ';
    // Exposition format escapes backslash and newline in help text.
    for (const char* p = help; *p != '\0'; ++p) {
      if (*p == '\\') {
        out += "\\\\";
      } else if (*p == '\n') {
        out += "\\n";
      } else {
        out += *p;
      }
    }
    out += "\n# TYPE ";
    out += name;
    out += ' ';
    out += type;
    out += '\n';
  };
  MutexLock lock(g_registry_mu);
  for (std::size_t i = 0; i < g_n_counters; ++i) {
    const Counter& c = g_counters[i];
    help_line(c.name(), c.help(), "counter");
    out += c.name();
    out += ' ';
    append_u64(out, c.value());
    out += '\n';
  }
  for (std::size_t i = 0; i < g_n_gauges; ++i) {
    const Gauge& g = g_gauges[i];
    help_line(g.name(), g.help(), "gauge");
    out += g.name();
    out += ' ';
    append_double(out, g.value());
    out += '\n';
  }
  for (std::size_t i = 0; i < g_n_infos; ++i) {
    const Info& m = g_infos[i];
    const char* v = m.value();
    if (v == nullptr) continue;  // never set — no sample to expose
    help_line(m.name(), m.help(), "gauge");
    out += m.name();
    out += '{';
    out += m.label();
    out += "=\"";
    // Exposition format escapes backslash, quote, and newline in label
    // values.
    for (const char* p = v; *p != '\0'; ++p) {
      if (*p == '\\') {
        out += "\\\\";
      } else if (*p == '"') {
        out += "\\\"";
      } else if (*p == '\n') {
        out += "\\n";
      } else {
        out += *p;
      }
    }
    out += "\"} 1\n";
  }
  for (std::size_t i = 0; i < g_n_histograms; ++i) {
    const Histogram& h = g_histograms[i];
    help_line(h.name(), h.help(), "histogram");
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < Histogram::kBucketCount; ++b) {
      const std::uint64_t n = h.bucket_count_at(b);
      if (n == 0) continue;
      cum += n;
      out += h.name();
      out += "_bucket{le=\"";
      append_double(out, static_cast<double>(Histogram::bucket_upper(b)) *
                             1e-9);
      out += "\"} ";
      append_u64(out, cum);
      out += '\n';
    }
    out += h.name();
    out += "_bucket{le=\"+Inf\"} ";
    append_u64(out, h.count());
    out += '\n';
    out += h.name();
    out += "_sum ";
    append_double(out, h.sum_seconds());
    out += '\n';
    out += h.name();
    out += "_count ";
    append_u64(out, h.count());
    out += '\n';
  }
  return out;
}

std::string render_json() {
  bridge_trace();
  std::string out;
  out.reserve(8192);
  out += "{\"schema\": \"ldla-metrics-v1\", \"enabled\": ";
  out += enabled() ? "true" : "false";
  MutexLock lock(g_registry_mu);
  out += ", \"counters\": {";
  for (std::size_t i = 0; i < g_n_counters; ++i) {
    const Counter& c = g_counters[i];
    if (i != 0) out += ", ";
    out += '"';
    append_json_escaped(out, c.name());
    out += "\": {\"help\": \"";
    append_json_escaped(out, c.help());
    out += "\", \"value\": ";
    append_u64(out, c.value());
    out += '}';
  }
  out += "}, \"gauges\": {";
  for (std::size_t i = 0; i < g_n_gauges; ++i) {
    const Gauge& g = g_gauges[i];
    if (i != 0) out += ", ";
    out += '"';
    append_json_escaped(out, g.name());
    out += "\": {\"help\": \"";
    append_json_escaped(out, g.help());
    out += "\", \"value\": ";
    append_double(out, g.value());
    out += '}';
  }
  out += "}, \"infos\": {";
  for (std::size_t i = 0; i < g_n_infos; ++i) {
    const Info& m = g_infos[i];
    if (i != 0) out += ", ";
    out += '"';
    append_json_escaped(out, m.name());
    out += "\": {\"help\": \"";
    append_json_escaped(out, m.help());
    out += "\", \"label\": \"";
    append_json_escaped(out, m.label());
    out += "\", \"value\": ";
    const char* v = m.value();
    if (v == nullptr) {
      out += "null";
    } else {
      out += '"';
      append_json_escaped(out, v);
      out += '"';
    }
    out += '}';
  }
  out += "}, \"histograms\": {";
  for (std::size_t i = 0; i < g_n_histograms; ++i) {
    const Histogram& h = g_histograms[i];
    if (i != 0) out += ", ";
    out += '"';
    append_json_escaped(out, h.name());
    out += "\": {\"help\": \"";
    append_json_escaped(out, h.help());
    out += "\", \"count\": ";
    append_u64(out, h.count());
    out += ", \"sum_seconds\": ";
    append_double(out, h.sum_seconds());
    out += ", \"p50\": ";
    append_double(out, h.quantile(0.50));
    out += ", \"p90\": ";
    append_double(out, h.quantile(0.90));
    out += ", \"p99\": ";
    append_double(out, h.quantile(0.99));
    out += ", \"p999\": ";
    append_double(out, h.quantile(0.999));
    out += ", \"buckets\": [";
    std::uint64_t cum = 0;
    bool first = true;
    for (std::size_t b = 0; b < Histogram::kBucketCount; ++b) {
      const std::uint64_t n = h.bucket_count_at(b);
      if (n == 0) continue;
      cum += n;
      if (!first) out += ", ";
      first = false;
      out += '[';
      append_double(out, static_cast<double>(Histogram::bucket_upper(b)) *
                             1e-9);
      out += ", ";
      append_u64(out, cum);
      out += ']';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

namespace {

bool write_whole_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return (std::fclose(f) == 0) && ok;
}

}  // namespace

bool dump_prometheus(const std::string& path) {
  LDLA_EXPECT(!path.empty(), "dump_prometheus: path is empty");
  return write_whole_file(path, render_prometheus());
}

bool dump_json(const std::string& path) {
  LDLA_EXPECT(!path.empty(), "dump_json: path is empty");
  return write_whole_file(path, render_json());
}

// ---------------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kMaxProbes = 8;

struct Probe {
  const char* gauge_name = nullptr;
  std::uint64_t (*fn)(void*) = nullptr;
  void* ctx = nullptr;
};

// Tick-state mutex: taken by the sampler thread, probes, and accessors.
Mutex g_sampler_mu;
CondVar g_sampler_cv;
bool g_sampler_stop LDLA_GUARDED_BY(g_sampler_mu) = false;
bool g_sampler_running LDLA_GUARDED_BY(g_sampler_mu) = false;
std::uint64_t g_sampler_interval_ms LDLA_GUARDED_BY(g_sampler_mu) = 0;
Probe g_probes[kMaxProbes] LDLA_GUARDED_BY(g_sampler_mu);
std::size_t g_n_probes LDLA_GUARDED_BY(g_sampler_mu) = 0;
std::atomic<std::uint64_t> g_sampler_ticks{0};

// Control mutex: serializes start/stop (which own the thread handle). The
// sampler thread never takes it, so joining under it cannot deadlock.
Mutex g_sampler_ctl_mu;
std::thread g_sampler_thread LDLA_GUARDED_BY(g_sampler_ctl_mu);

bool read_small_file(const char* path, char* buf, std::size_t cap,
                     std::size_t* len) {
  std::FILE* f = std::fopen(path, "re");
  if (f == nullptr) return false;
  *len = std::fread(buf, 1, cap - 1, f);
  buf[*len] = '\0';
  std::fclose(f);
  return *len > 0;
}

std::uint64_t page_size_bytes() {
  static const long ps = ::sysconf(_SC_PAGESIZE);
  return ps > 0 ? static_cast<std::uint64_t>(ps) : 4096;
}

void sample_proc_self() {
  char buf[2048];
  std::size_t len = 0;
  if (read_small_file("/proc/self/statm", buf, sizeof(buf), &len)) {
    unsigned long long vsz = 0;
    unsigned long long rss = 0;
    if (std::sscanf(buf, "%llu %llu", &vsz, &rss) == 2) {
      static Gauge& g_rss = gauge("ldla_process_rss_bytes",
                                  "resident set size (statm, bytes)");
      g_rss.set(static_cast<std::uint64_t>(rss) * page_size_bytes());
    }
  }
  if (read_small_file("/proc/self/stat", buf, sizeof(buf), &len)) {
    // Fields after the parenthesized comm: state ppid pgrp session tty_nr
    // tpgid flags minflt cminflt majflt ...
    const char* p = std::strrchr(buf, ')');
    char state = 0;
    long ppid = 0;
    long pgrp = 0;
    long session = 0;
    long tty = 0;
    long tpgid = 0;
    unsigned long flags = 0;
    unsigned long minflt = 0;
    unsigned long cminflt = 0;
    unsigned long majflt = 0;
    if (p != nullptr &&
        std::sscanf(p + 1, " %c %ld %ld %ld %ld %ld %lu %lu %lu %lu", &state,
                    &ppid, &pgrp, &session, &tty, &tpgid, &flags, &minflt,
                    &cminflt, &majflt) == 10) {
      static Gauge& g_minflt = gauge("ldla_process_minor_faults",
                                     "minor page faults since process start");
      static Gauge& g_majflt = gauge("ldla_process_major_faults",
                                     "major page faults since process start");
      g_minflt.set(static_cast<std::uint64_t>(minflt));
      g_majflt.set(static_cast<std::uint64_t>(majflt));
    }
  }
  // May be unreadable in restricted containers; skipped silently then.
  if (read_small_file("/proc/self/io", buf, sizeof(buf), &len)) {
    const auto field = [&buf](const char* key) -> std::uint64_t {
      const char* p = std::strstr(buf, key);
      if (p == nullptr) return 0;
      return std::strtoull(p + std::strlen(key), nullptr, 10);
    };
    static Gauge& g_rd = gauge("ldla_process_io_read_bytes",
                               "bytes read by the process (rchar)");
    static Gauge& g_wr = gauge("ldla_process_io_write_bytes",
                               "bytes written by the process (wchar)");
    g_rd.set(field("rchar:"));
    g_wr.set(field("wchar:"));
  }
}

void sample_pool() {
  ThreadPool* pool = global_pool_if_started();
  if (pool == nullptr) return;
  static Gauge& g_depth = gauge("ldla_pool_queue_depth",
                                "task nodes resident in submission deques");
  static Gauge& g_workers =
      gauge("ldla_pool_workers", "spawned worker threads in the global pool");
  g_depth.set(static_cast<std::uint64_t>(pool->pending_tasks()));
  g_workers.set(static_cast<std::uint64_t>(pool->size()));
}

void sample_probes() {
  Probe local[kMaxProbes];
  std::size_t n = 0;
  {
    MutexLock lock(g_sampler_mu);
    n = g_n_probes;
    for (std::size_t i = 0; i < n; ++i) local[i] = g_probes[i];
  }
  // Run probe callbacks outside the sampler mutex: they may touch their own
  // locks (e.g. ShardStore residency), and the registry has its own mutex.
  for (std::size_t i = 0; i < n; ++i) {
    gauge(local[i].gauge_name, "registered sampler probe")
        .set(local[i].fn(local[i].ctx));
  }
}

void sample_tick() {
  sample_proc_self();
  sample_pool();
  sample_probes();
  g_sampler_ticks.fetch_add(1, std::memory_order_relaxed);
  static Counter& c_ticks =
      counter("ldla_sampler_ticks_total", "health sampler ticks executed");
  c_ticks.inc();
}

void sampler_loop() {
  for (;;) {
    {
      MutexLock lock(g_sampler_mu);
      if (g_sampler_stop) return;
      g_sampler_cv.wait_for(lock, g_sampler_interval_ms);
      if (g_sampler_stop) return;
    }
    sample_tick();
  }
}

void stop_impl() LDLA_REQUIRES(g_sampler_ctl_mu) {
  {
    MutexLock lock(g_sampler_mu);
    if (!g_sampler_running) return;
    g_sampler_stop = true;
  }
  g_sampler_cv.notify_all();
  if (g_sampler_thread.joinable()) g_sampler_thread.join();
  MutexLock lock(g_sampler_mu);
  g_sampler_running = false;
}

}  // namespace

void Sampler::start(std::uint64_t interval_ms) {
  LDLA_EXPECT(interval_ms > 0, "Sampler::start: interval_ms must be > 0");
  MutexLock ctl(g_sampler_ctl_mu);
  stop_impl();
  {
    MutexLock lock(g_sampler_mu);
    g_sampler_stop = false;
    g_sampler_interval_ms = interval_ms;
    g_sampler_running = true;
  }
  g_sampler_thread = std::thread(sampler_loop);
}

void Sampler::stop() {
  MutexLock ctl(g_sampler_ctl_mu);
  stop_impl();
}

bool Sampler::running() {
  MutexLock lock(g_sampler_mu);
  return g_sampler_running;
}

std::uint64_t Sampler::ticks() {
  return g_sampler_ticks.load(std::memory_order_relaxed);
}

void Sampler::sample_now() { sample_tick(); }

int Sampler::add_probe(const char* gauge_name, std::uint64_t (*fn)(void*),
                       void* ctx) {
  LDLA_EXPECT(gauge_name != nullptr && fn != nullptr,
              "Sampler::add_probe: null name or callback");
  MutexLock lock(g_sampler_mu);
  if (g_n_probes >= kMaxProbes) return -1;
  g_probes[g_n_probes] = Probe{gauge_name, fn, ctx};
  return static_cast<int>(g_n_probes++);
}

void Sampler::clear_probes() {
  MutexLock lock(g_sampler_mu);
  g_n_probes = 0;
}

}  // namespace ldla::metrics
