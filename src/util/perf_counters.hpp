// Thin wrapper over perf_event_open for per-thread hardware-counter groups.
//
// Opens one counter group per calling thread — cycles (leader),
// instructions, LLC-loads, LLC-misses — and reads all four atomically with
// PERF_FORMAT_GROUP. Readings are multiplex-scaled by the kernel-reported
// time_enabled/time_running ratio, so they stay meaningful when the PMU is
// oversubscribed.
//
// Degrades gracefully, never throws, never prints: when the kernel forbids
// access (perf_event_paranoid, seccomp, containers without CAP_PERFMON) or
// the PMU lacks an event, availability is latched false once per process
// and every read returns `valid == false`. perf_counters_status() reports
// the reason so trace metadata can record *why* attribution is missing.
//
// This file is the only translation unit allowed to touch perf_event_open
// (enforced by tools/lint_ldla.py).
#pragma once

#include <cstdint>
#include <string>

namespace ldla {

/// One multiplex-scaled sample of the calling thread's counter group.
/// `llc_loads`/`llc_misses` may be zero-valid on PMUs without LLC events
/// (the group is opened without them rather than failing entirely).
struct PerfReading {
  bool valid = false;
  bool has_llc = false;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_loads = 0;
  std::uint64_t llc_misses = 0;
};

/// Probe once per process (opens and closes a trial group on the calling
/// thread). Cheap after the first call.
bool perf_counters_available();

/// "ok", or the reason counters are unavailable (e.g. the errno string from
/// perf_event_open, with the perf_event_paranoid level when relevant).
const std::string& perf_counters_status();

/// Read the calling thread's counter group, lazily opening it on first use.
/// Returns `valid == false` when counters are unavailable.
PerfReading perf_read_thread_counters();

}  // namespace ldla
