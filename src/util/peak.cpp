#include "util/peak.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "util/aligned_buffer.hpp"
#include "util/cpu_info.hpp"
#include "util/timer.hpp"

namespace ldla {
namespace {

// Streaming (AND, POPCNT, ADD) over two L1-resident word arrays with four
// independent accumulator chains — the same instruction mix as the LD
// micro-kernel with all data in L1, so it measures the attainable peak.
double measure_scalar_triples() {
  constexpr std::size_t kWords = 2048;  // 16 KiB per operand, fits L1
  AlignedBuffer<std::uint64_t> a(kWords), b(kWords);
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < kWords; ++i) {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    a[i] = seed;
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    b[i] = seed;
  }

  constexpr int kRepeats = 4096;
  std::uint64_t acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
  Timer t;
  for (int r = 0; r < kRepeats; ++r) {
    const std::uint64_t* pa = a.data();
    const std::uint64_t* pb = b.data();
    for (std::size_t i = 0; i < kWords; i += 4) {
      acc0 += static_cast<std::uint64_t>(__builtin_popcountll(pa[i] & pb[i]));
      acc1 += static_cast<std::uint64_t>(
          __builtin_popcountll(pa[i + 1] & pb[i + 1]));
      acc2 += static_cast<std::uint64_t>(
          __builtin_popcountll(pa[i + 2] & pb[i + 2]));
      acc3 += static_cast<std::uint64_t>(
          __builtin_popcountll(pa[i + 3] & pb[i + 3]));
    }
  }
  const double sec = t.seconds();
  do_not_optimize(acc0 + acc1 + acc2 + acc3);
  return static_cast<double>(kWords) * kRepeats / sec;
}

double measure_vector_triples();

PeakEstimate calibrate() {
  // Best of three probes per quantity: on shared/virtualized hosts a single
  // probe can land in a contended slice and understate the peak, which
  // would inflate every %-of-peak figure derived from it.
  PeakEstimate p;
  for (int rep = 0; rep < 3; ++rep) {
    p.scalar_triples_per_sec =
        std::max(p.scalar_triples_per_sec, measure_scalar_triples());
    if (cpu_info().features.avx512vpopcntdq) {
      p.vector_triples_per_sec =
          std::max(p.vector_triples_per_sec, measure_vector_triples());
    }
  }
  p.core_hz = estimated_core_hz();
  return p;
}

// The AVX-512 path lives in this TU but is only executed behind the CPUID
// check above; compiled with the target attribute so the base TU flags do
// not need -mavx512*.
__attribute__((target("avx512f,avx512vpopcntdq"))) double
measure_vector_triples() {
#if defined(__x86_64__)
  constexpr std::size_t kWords = 2048;
  AlignedBuffer<std::uint64_t> a(kWords), b(kWords);
  std::uint64_t seed = 0x853c49e6748fea9bull;
  for (std::size_t i = 0; i < kWords; ++i) {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    a[i] = seed;
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    b[i] = seed;
  }

  constexpr int kRepeats = 8192;
  __m512i acc0 = _mm512_setzero_si512();
  __m512i acc1 = _mm512_setzero_si512();
  __m512i acc2 = _mm512_setzero_si512();
  __m512i acc3 = _mm512_setzero_si512();
  Timer t;
  for (int r = 0; r < kRepeats; ++r) {
    const std::uint64_t* pa = a.data();
    const std::uint64_t* pb = b.data();
    for (std::size_t i = 0; i < kWords; i += 32) {
      const __m512i va0 = _mm512_load_si512(pa + i);
      const __m512i vb0 = _mm512_load_si512(pb + i);
      const __m512i va1 = _mm512_load_si512(pa + i + 8);
      const __m512i vb1 = _mm512_load_si512(pb + i + 8);
      const __m512i va2 = _mm512_load_si512(pa + i + 16);
      const __m512i vb2 = _mm512_load_si512(pb + i + 16);
      const __m512i va3 = _mm512_load_si512(pa + i + 24);
      const __m512i vb3 = _mm512_load_si512(pb + i + 24);
      acc0 = _mm512_add_epi64(acc0,
                              _mm512_popcnt_epi64(_mm512_and_si512(va0, vb0)));
      acc1 = _mm512_add_epi64(acc1,
                              _mm512_popcnt_epi64(_mm512_and_si512(va1, vb1)));
      acc2 = _mm512_add_epi64(acc2,
                              _mm512_popcnt_epi64(_mm512_and_si512(va2, vb2)));
      acc3 = _mm512_add_epi64(acc3,
                              _mm512_popcnt_epi64(_mm512_and_si512(va3, vb3)));
    }
  }
  const double sec = t.seconds();
  const __m512i sum =
      _mm512_add_epi64(_mm512_add_epi64(acc0, acc1), _mm512_add_epi64(acc2, acc3));
  const auto total =
      static_cast<std::uint64_t>(_mm512_reduce_add_epi64(sum));
  do_not_optimize(total);
  return static_cast<double>(kWords) * kRepeats / sec;
#else
  return 0.0;
#endif
}

}  // namespace

const PeakEstimate& peak_estimate() {
  static const PeakEstimate p = calibrate();
  return p;
}

double scalar_peak_triples_per_sec() { return peak_estimate().core_hz; }

}  // namespace ldla
