// Minimal command-line argument parser for the examples, tools and benches.
//
// Supports `--name value`, `--name=value` and boolean `--flag` forms plus
// positional arguments; unknown options raise an error listing valid names.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ldla {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Register options before parse(). `help` appears in usage().
  void add_flag(const std::string& name, const std::string& help);
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value);

  /// Parse argv; throws ldla::Error on unknown options or missing values.
  /// Returns false (after printing usage) when --help was requested.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] bool flag(const std::string& name) const;
  [[nodiscard]] std::string str(const std::string& name) const;
  [[nodiscard]] std::int64_t integer(const std::string& name) const;
  [[nodiscard]] double real(const std::string& name) const;
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] std::string usage() const;

 private:
  struct Spec {
    std::string help;
    std::string value;  // current (default or parsed) value; empty for flags
    bool is_flag = false;
    bool set = false;
  };
  const Spec& lookup(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Spec> specs_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
};

}  // namespace ldla
