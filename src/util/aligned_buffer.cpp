#include "util/aligned_buffer.hpp"

#include <cstdlib>
#include <new>

#include "util/contract.hpp"

namespace ldla::detail {

void* aligned_alloc_bytes(std::size_t bytes, std::size_t alignment) {
  LDLA_EXPECT(alignment != 0 && (alignment & (alignment - 1)) == 0,
              "alignment must be a power of two");
  // std::aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (bytes + alignment - 1) / alignment * alignment;
  void* p = std::aligned_alloc(alignment, rounded);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void aligned_free_bytes(void* p) noexcept { std::free(p); }

}  // namespace ldla::detail
