// Always-on runtime metrics: lock-free counters, gauges, and log-linear
// latency histograms with Prometheus / JSON exporters and a background
// process-health sampler.
//
// Relationship to util/trace.hpp (DESIGN.md §5c): the trace layer is
// compile-time-gated (LDLA_TRACE) and built for offline Chrome-trace
// analysis of a single run; this layer is compiled into every build and
// built for live scraping of a long-running process. When both are
// compiled, scrapes bridge trace::snapshot() into `ldla_trace_*` gauges so
// the two layers can be cross-checked.
//
// Hot-path cost model:
//   Counter::add   — one relaxed fetch_add on a thread-striped cache line
//                    (no sharing below kStripes concurrent writers).
//   Gauge::set     — one relaxed store.
//   Histogram::record_ns — bucket index from bit_width (no float math, no
//                    search), then three relaxed fetch_adds.
// No sink allocates, locks, or syscalls. Aggregation happens at scrape
// time (render_prometheus / render_json), which takes the registry mutex
// and sums stripes/buckets with relaxed loads.
//
// Registration (`metrics::counter(name, help)` etc.) is find-or-create by
// name in fixed-capacity static storage; call it once per site through a
// function-local static reference:
//
//   LDLA_METRICS_ONLY(
//       static metrics::Counter& c =
//           metrics::counter("ldla_pool_tasks_total", "tasks executed");
//       c.inc();)
//
// `name` and `help` must be string literals (or otherwise outlive the
// process); the registry stores the pointers, not copies.
//
// The CMake option LDLA_METRICS (default ON) gates only the
// LDLA_METRICS_ONLY(...) instrumentation macro: the registry, exporters,
// and sampler are always compiled and linkable, so tooling and tests work
// in every preset, while -DLDLA_METRICS=OFF provides the compiled-out
// control for overhead measurement (library hot paths carry no metrics
// code at all).
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>

#include "util/annotations.hpp"

#if defined(LDLA_METRICS_ENABLED)
#define LDLA_METRICS_ONLY(...) __VA_ARGS__
#else
#define LDLA_METRICS_ONLY(...)
#endif

namespace ldla::metrics {

/// True when LDLA_METRICS_ONLY(...) instrumentation is compiled into the
/// library (CMake -DLDLA_METRICS=ON). The registry itself is always
/// available either way.
constexpr bool compiled() {
#if defined(LDLA_METRICS_ENABLED)
  return true;
#else
  return false;
#endif
}

namespace detail {

/// Runtime master switch checked by every sink. Lives here (not behind a
/// function call) so the disabled path is a single relaxed load + branch.
extern std::atomic<bool> g_enabled;

inline bool on() noexcept { return g_enabled.load(std::memory_order_relaxed); }

/// Stable per-thread stripe index in [0, kStripes); claimed on first use.
std::uint32_t claim_stripe() noexcept;

inline std::uint32_t stripe_index() noexcept {
  thread_local const std::uint32_t idx = claim_stripe();
  return idx;
}

/// Monotonic nanoseconds (steady clock); used by ScopedLatency.
std::uint64_t now_ns() noexcept;

struct Registry;  // registration/render internals (metrics.cpp)

}  // namespace detail

/// Enable/disable every sink at runtime (scrapes still work while
/// disabled; they just see frozen values). Used by the bench overhead arm
/// as the runtime proxy for the compile-out control.
void set_enabled(bool on) noexcept;
bool enabled() noexcept;

/// Monotonic counter, striped across kStripes cache lines indexed by a
/// per-thread slot so concurrent writers do not share a line.
class Counter {
 public:
  static constexpr std::size_t kStripes = 8;

  void add(std::uint64_t n) noexcept {
    if (!detail::on()) return;
    stripes_[detail::stripe_index() % kStripes].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  /// Sum of all stripes (relaxed; exact once writers quiesce).
  [[nodiscard]] std::uint64_t value() const noexcept;

  [[nodiscard]] const char* name() const noexcept { return name_; }
  [[nodiscard]] const char* help() const noexcept { return help_; }

 private:
  friend struct detail::Registry;
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> v{0};
  };
  Stripe stripes_[kStripes];
  const char* name_ = nullptr;
  const char* help_ = "";
};

/// Last-writer-wins instantaneous value (double-valued).
class Gauge {
 public:
  void set(double v) noexcept {
    if (!detail::on()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void set(std::uint64_t v) noexcept { set(static_cast<double>(v)); }

  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const char* name() const noexcept { return name_; }
  [[nodiscard]] const char* help() const noexcept { return help_; }

 private:
  friend struct detail::Registry;
  std::atomic<double> v_{0.0};
  const char* name_ = nullptr;
  const char* help_ = "";
};

/// HDR-style log-linear latency histogram over nanosecond samples.
///
/// Bucket scheme (kSubBits = 5): values below 2^5 = 32 map exactly to
/// buckets 0..31; each octave [2^e, 2^(e+1)) for e in [5, 41] splits into
/// 2^(kSubBits-1) = 16 equal sub-buckets of width 2^(e-4), so the relative
/// quantization error is at most 2^-4 = 6.25% anywhere in the tracked
/// range (values up to 2^42 ns ≈ 73 minutes; beyond that clamps into the
/// last bucket). 624 buckets total, 8 bytes each.
class Histogram {
 public:
  static constexpr unsigned kSubBits = 5;
  static constexpr std::size_t kFirstBuckets = std::size_t{1} << kSubBits;
  static constexpr std::size_t kSubPerOctave = std::size_t{1}
                                               << (kSubBits - 1);
  static constexpr unsigned kMaxExp = 41;
  static constexpr std::uint64_t kMaxTracked = std::uint64_t{1}
                                               << (kMaxExp + 1);
  static constexpr std::size_t kBucketCount =
      kFirstBuckets + (kMaxExp - kSubBits + 1) * kSubPerOctave;

  /// Bucket index for a nanosecond value; pure function of the scheme
  /// above, exposed (with the bounds below) so tests can pin the layout
  /// analytically.
  static constexpr std::size_t bucket_index(std::uint64_t v) noexcept {
    if (v >= kMaxTracked) return kBucketCount - 1;
    if (v < kFirstBuckets) return static_cast<std::size_t>(v);
    const unsigned e = static_cast<unsigned>(std::bit_width(v)) - 1;
    const std::uint64_t sub =
        (v - (std::uint64_t{1} << e)) >> (e - (kSubBits - 1));
    return kFirstBuckets + (e - kSubBits) * kSubPerOctave +
           static_cast<std::size_t>(sub);
  }

  /// Inclusive lower bound of bucket `i` in nanoseconds.
  static constexpr std::uint64_t bucket_lower(std::size_t i) noexcept {
    if (i < kFirstBuckets) return i;
    const std::size_t j = i - kFirstBuckets;
    const unsigned e = kSubBits + static_cast<unsigned>(j / kSubPerOctave);
    const std::uint64_t sub = j % kSubPerOctave;
    return (std::uint64_t{1} << e) + (sub << (e - (kSubBits - 1)));
  }

  /// Exclusive upper bound of bucket `i` in nanoseconds.
  static constexpr std::uint64_t bucket_upper(std::size_t i) noexcept {
    return i + 1 < kBucketCount ? bucket_lower(i + 1) : kMaxTracked;
  }

  void record_ns(std::uint64_t ns) noexcept {
    if (!detail::on()) return;
    buckets_[bucket_index(ns)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void record_seconds(double s) noexcept {
    if (s < 0) s = 0;
    record_ns(static_cast<std::uint64_t>(s * 1e9));
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum_seconds() const noexcept {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
  }

  /// Quantile estimate in seconds (q in [0,1]), linearly interpolated
  /// within the containing bucket; 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Raw sample count of bucket `i` (relaxed; exporters and tests).
  [[nodiscard]] std::uint64_t bucket_count_at(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  [[nodiscard]] const char* name() const noexcept { return name_; }
  [[nodiscard]] const char* help() const noexcept { return help_; }

 private:
  friend struct detail::Registry;
  std::atomic<std::uint64_t> buckets_[kBucketCount]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
  const char* name_ = nullptr;
  const char* help_ = "";
};

/// Prometheus "info"-style metric: one label whose value is a string, the
/// sample value is always 1 (`name{label="value"} 1`, rendered as a
/// gauge). The label value must be a string literal or otherwise outlive
/// the process — the pointer is stored in one atomic, which is what keeps
/// set() a single relaxed store (kernel dispatch calls it per macro-tile
/// panel sweep). Until the first set() the metric renders no sample.
class Info {
 public:
  void set(const char* value) noexcept {
    if (!detail::on()) return;
    v_.store(value, std::memory_order_relaxed);
  }

  /// Currently published label value; nullptr before the first set().
  [[nodiscard]] const char* value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const char* name() const noexcept { return name_; }
  [[nodiscard]] const char* label() const noexcept { return label_; }
  [[nodiscard]] const char* help() const noexcept { return help_; }

 private:
  friend struct detail::Registry;
  std::atomic<const char*> v_{nullptr};
  const char* name_ = nullptr;
  const char* label_ = nullptr;
  const char* help_ = "";
};

/// Find-or-create by name. Names must be valid Prometheus metric names
/// ([a-zA-Z_:][a-zA-Z0-9_:]*), unique across all four kinds, and string
/// literals (the pointer is stored). Capacity is fixed; exceeding it or
/// reusing a name for a different kind throws ContractViolation. For
/// info(), `label` must also be a valid label name and is pinned at first
/// registration (re-registering with a different label throws).
Counter& counter(const char* name, const char* help);
Gauge& gauge(const char* name, const char* help);
Histogram& histogram(const char* name, const char* help);
Info& info(const char* name, const char* label, const char* help);

/// RAII latency sample into a histogram (nanosecond steady-clock delta).
/// When metrics are runtime-disabled at construction, the timestamp is
/// skipped entirely.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& h) noexcept
      : h_(h), t0_(detail::on() ? detail::now_ns() : 0) {}
  ~ScopedLatency() {
    if (t0_ != 0) h_.record_ns(detail::now_ns() - t0_);
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram& h_;
  std::uint64_t t0_;
};

/// Render every registered metric in Prometheus text exposition format
/// 0.0.4 (# HELP / # TYPE / samples; histograms emit cumulative
/// `_bucket{le="..."}` series in seconds plus `_sum`/`_count`). When the
/// trace layer is compiled, trace::snapshot() totals are bridged into
/// `ldla_trace_*` gauges first.
std::string render_prometheus();

/// Render a JSON snapshot: {"schema":"ldla-metrics-v1","counters":{...},
/// "gauges":{...},"histograms":{...}}. Histogram entries carry count,
/// sum_seconds, p50/p90/p99/p999, and the non-empty cumulative buckets as
/// [upper_seconds, cumulative_count] pairs. The object is suitable for
/// embedding into a BenchJson row.
std::string render_json();

/// Write render_prometheus() / render_json() to `path`. Returns false on
/// I/O failure. `path` must be non-empty.
bool dump_prometheus(const std::string& path);
bool dump_json(const std::string& path);

/// Background health sampler. All state is internal to metrics.cpp; the
/// class only namespaces the static entry points. Each tick sets process
/// gauges from /proc/self (RSS, minor/major faults, io read/write bytes),
/// polls the global thread pool's queue depth and worker count when it
/// has been started, and runs every registered probe. Ticks are counted
/// in `ldla_sampler_ticks_total`.
class Sampler {
 public:
  /// Start the sampler thread at the given period. interval_ms must be
  /// > 0. Restarts (stop + start) if already running.
  static void start(std::uint64_t interval_ms);
  /// Stop and join the sampler thread; no-op when not running.
  static void stop();
  static bool running();
  /// Ticks executed since process start (monotonic across restarts).
  static std::uint64_t ticks();
  /// Run one synchronous tick on the calling thread (works with the
  /// thread stopped; used by tests and pre-scrape refreshes).
  static void sample_now();

  /// Register a gauge probe: each tick sets gauge `gauge_name` to
  /// fn(ctx). `ctx` must outlive the probe (clear_probes() or process
  /// exit). Returns a probe id, or -1 when the probe table is full.
  static int add_probe(const char* gauge_name, std::uint64_t (*fn)(void*),
                       void* ctx);
  static void clear_probes();
};

}  // namespace ldla::metrics
