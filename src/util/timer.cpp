#include "util/timer.hpp"

#include <algorithm>
#include <thread>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace ldla {

std::uint64_t rdtsc_serialized() {
#if defined(__x86_64__)
  unsigned aux = 0;
  return __rdtscp(&aux);
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

namespace {

double measure_tsc_hz() {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const std::uint64_t c0 = rdtsc_serialized();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const std::uint64_t c1 = rdtsc_serialized();
  const auto t1 = clock::now();
  const double dt = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(c1 - c0) / dt;
}

// Estimate the effective core clock from the *independent POPCNT
// throughput*, which is architecturally one instruction per cycle on the
// x86 parts this study targets (POPCNT issues on a single port). This is
// also exactly the resource that defines the paper's 3-ops/cycle LD peak,
// so calibrating on it makes the %-of-peak ratio robust even on
// virtualized/emulated hosts where simple ALU chains are not 1 cycle.
// Inline asm keeps the compiler from folding or vectorizing the probe.
double measure_core_hz() {
#if defined(__x86_64__)
  constexpr std::uint64_t kIters = 100'000'000;
  std::uint64_t a = 0x1234, b = 0x5678, c = 0x9abc, d = 0xdef0;
  const std::uint64_t src = 0x0123456789abcdefull;
  Timer t;
  for (std::uint64_t i = 0; i < kIters; i += 4) {
    asm volatile(
        "popcnt %4, %0\n\t"
        "popcnt %4, %1\n\t"
        "popcnt %4, %2\n\t"
        "popcnt %4, %3"
        : "+r"(a), "+r"(b), "+r"(c), "+r"(d)
        : "r"(src));
  }
  const double sec = t.seconds();
  do_not_optimize(a + b + c + d);
  return static_cast<double>(kIters) / sec;
#else
  return 1e9;  // placeholder on non-x86 hosts
#endif
}

}  // namespace

double tsc_hz() {
  static const double hz = measure_tsc_hz();
  return hz;
}

double estimated_core_hz() {
  // Best of three probes: see util/peak.cpp for why a single probe can be
  // contaminated by contention on shared hosts.
  static const double hz = [] {
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) best = std::max(best, measure_core_hz());
    return best;
  }();
  return hz;
}

const TimingCalibration& timing_calibration() {
  static const TimingCalibration cal{tsc_hz(), estimated_core_hz()};
  return cal;
}

}  // namespace ldla
