// A fixed-size work-stealing worker pool with a parallel_for primitive.
//
// Task distribution is BLIS-style fork-join over Chase–Lev deques
// (util/work_steal.hpp): the caller of run_tasks claims a submission deque,
// pushes its task nodes there, and executes its own share LIFO from the
// bottom while parked workers wake and steal FIFO from the top. Stealing
// replaces the old central FIFO queue, so ragged task batches (triangular
// SYRK tails, uneven slabs) rebalance automatically instead of leaving
// workers idle behind a static split.
//
// Concurrency contract (unchanged from the FIFO pool):
//  - run_tasks / parallel_for are safe to call from multiple threads
//    concurrently on the same pool (including global_pool()): every call
//    owns a private task set, so completion tracking never crosses calls.
//  - Exceptions thrown by tasks do not escape worker threads. The first
//    exception (by completion order) is captured, the set is drained to
//    completion, and the exception is rethrown on the calling thread.
//  - run_tasks must not be called from inside a task running on the same
//    pool (the joining caller does not execute other calls' tasks, so
//    nested forks could exhaust the workers and deadlock).
//
// Locking contracts are machine-checked: every mutex-protected member
// carries LDLA_GUARDED_BY (util/annotations.hpp), and the `thread-safety`
// CMake preset fails the build on any access outside its lock.
//
// Environment knobs:
//  - LDLA_THREADS=<n>  default worker-team size when a caller passes 0
//    (both for pool construction and for the parallel LD drivers).
//  - LDLA_AFFINITY=1   pin each spawned worker round-robin to a logical
//    core at pool construction (cpu_info topology; no-op where the
//    scheduler rejects affinity masks).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/annotations.hpp"
#include "util/sync.hpp"
#include "util/work_steal.hpp"

namespace ldla {

/// Thread-team size to use when the caller passes 0: $LDLA_THREADS when set
/// to a positive integer, otherwise std::thread::hardware_concurrency()
/// (minimum 1).
unsigned default_thread_count();

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller participates in run_tasks);
  /// 0 means default_thread_count().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Instantaneous count of task nodes resident in submission deques
  /// (relaxed; the metrics sampler polls this as a queue-depth gauge).
  [[nodiscard]] std::size_t pending_tasks() const noexcept {
    return pending_.load(std::memory_order_relaxed);
  }

  /// Run fn(t) for t in [0, tasks) across the pool and wait for completion.
  /// The calling thread participates, so a pool of size 1 still provides
  /// two-way overlap-free execution with zero queueing overhead.
  /// If any task throws, the first captured exception is rethrown here after
  /// every task of this call has finished.
  void run_tasks(std::size_t tasks, const std::function<void(std::size_t)>& fn)
      LDLA_EXCLUDES(mutex_);

  /// Split [begin, end) into contiguous chunks, one per worker (including
  /// the caller), and run fn(chunk_begin, chunk_end) on each.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn)
      LDLA_EXCLUDES(mutex_);

 private:
  // One fork-join batch. `remaining` and `first_error` are guarded by `m`;
  // the caller waits on `done` (notified under `m` so the set can live on
  // the caller's stack).
  struct TaskSet {
    TaskSet(const std::function<void(std::size_t)>& f, std::size_t tasks)
        : fn(&f), remaining(tasks) {}
    const std::function<void(std::size_t)>* fn = nullptr;
    Mutex m;
    CondVar done;
    std::size_t remaining LDLA_GUARDED_BY(m) = 0;
    std::exception_ptr first_error LDLA_GUARDED_BY(m);
  };

  // One deque cell: which set, which task index, and the enqueue stamp for
  // task-wait attribution. Lives in a run_tasks-local vector that outlives
  // execution because the caller does not return before `remaining` is 0.
  struct TaskNode {
    TaskSet* set = nullptr;
    std::size_t index = 0;
    std::uint64_t enqueued_ns = 0;
  };

  // A claimable submission deque. Owner = the run_tasks caller that holds
  // `in_use`; workers only ever steal from it.
  struct Submission {
    std::atomic<bool> in_use{false};
    WorkStealDeque<TaskNode*> deque;
  };

  void worker_loop(unsigned worker_index) LDLA_EXCLUDES(mutex_);
  TaskNode* try_steal_any() noexcept;
  static void run_node(TaskNode* node);

  std::vector<std::thread> workers_;
  // Fixed registry: enough submission deques for heavily concurrent callers;
  // exhaustion degrades to inline execution, never blocks.
  std::vector<Submission> submissions_;
  Mutex mutex_;
  CondVar cv_work_;
  std::atomic<std::size_t> pending_{0};  ///< task nodes resident in deques
  bool stop_ LDLA_GUARDED_BY(mutex_) = false;
  bool pin_workers_ = false;  ///< written once in the ctor, then read-only
};

/// Process-wide pool sized to the machine; created on first use.
ThreadPool& global_pool();

/// The global pool if some caller has already instantiated it, nullptr
/// otherwise. Never creates the pool — observers (the metrics sampler)
/// must not spawn a worker team as a side effect of looking at it.
ThreadPool* global_pool_if_started() noexcept;

}  // namespace ldla
