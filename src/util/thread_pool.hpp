// A small fixed-size worker pool with a parallel_for primitive.
//
// The LD drivers parallelize by handing each worker an independent column
// slab (no shared mutable state), so the pool only needs fork-join task
// groups — no work stealing.
//
// Concurrency contract:
//  - run_tasks / parallel_for are safe to call from multiple threads
//    concurrently on the same pool (including global_pool()): every call
//    owns a private task group, so completion tracking never crosses calls.
//  - Exceptions thrown by tasks do not escape worker threads. The first
//    exception (by completion order) is captured, the group is drained to
//    completion, and the exception is rethrown on the calling thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ldla {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Run fn(t) for t in [0, tasks) across the pool and wait for completion.
  /// The calling thread participates, so a pool of size 1 still provides
  /// two-way overlap-free execution with zero queueing overhead.
  /// If any task throws, the first captured exception is rethrown here after
  /// every task of this call has finished.
  void run_tasks(std::size_t tasks, const std::function<void(std::size_t)>& fn);

  /// Split [begin, end) into contiguous chunks, one per worker (including
  /// the caller), and run fn(chunk_begin, chunk_end) on each.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  // One fork-join batch. Guarded by the pool mutex; `remaining` counts tasks
  // not yet finished (including the caller's slice), `first_error` holds the
  // earliest-completing failure.
  struct TaskGroup {
    std::size_t remaining = 0;
    std::exception_ptr first_error;
  };

  void worker_loop();
  void finish_one(TaskGroup& group, std::exception_ptr error) noexcept;

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::queue<std::function<void()>> queue_;
  bool stop_ = false;
};

/// Process-wide pool sized to the machine; created on first use.
ThreadPool& global_pool();

}  // namespace ldla
