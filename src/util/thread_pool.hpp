// A small fixed-size worker pool with a parallel_for primitive.
//
// The LD drivers parallelize by handing each worker an independent column
// slab (no shared mutable state), so the pool only needs fork-join task
// groups — no work stealing.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ldla {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Run fn(t) for t in [0, tasks) across the pool and wait for completion.
  /// The calling thread participates, so a pool of size 1 still provides
  /// two-way overlap-free execution with zero queueing overhead.
  void run_tasks(std::size_t tasks, const std::function<void(std::size_t)>& fn);

  /// Split [begin, end) into contiguous chunks, one per worker (including
  /// the caller), and run fn(chunk_begin, chunk_end) on each.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::queue<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Process-wide pool sized to the machine; created on first use.
ThreadPool& global_pool();

}  // namespace ldla
