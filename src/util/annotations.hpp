// Clang thread-safety-analysis attribute shim.
//
// Machine-checked locking contracts: annotate which lock guards which state
// (LDLA_GUARDED_BY), which functions need a lock held (LDLA_REQUIRES), and
// which acquire/release one (LDLA_ACQUIRE / LDLA_RELEASE), and clang's
// -Wthread-safety turns lock misuse into a compile error — the
// `thread-safety` CMake preset builds with -Wthread-safety -Werror, so a
// forgotten lock fails the build instead of waiting for the nightly TSan
// run to get lucky.
//
// Off-Clang every macro expands to nothing, so GCC builds and the release
// presets are byte-identical to unannotated code. The annotations attach to
// the capability types in util/sync.hpp (std::mutex itself carries no
// capability attribute under libstdc++, so lock-protected code uses
// ldla::Mutex / ldla::MutexLock instead — enforced by the
// mutex-annotation-freshness lint rule in tools/lint_ldla.py).
//
// Attribute reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define LDLA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define LDLA_THREAD_ANNOTATION(x)  // no-op off-Clang
#endif

/// Marks a class as a lockable capability ("mutex", "role", ...).
#define LDLA_CAPABILITY(x) LDLA_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose lifetime acquires/releases a capability.
#define LDLA_SCOPED_CAPABILITY LDLA_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define LDLA_GUARDED_BY(x) LDLA_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define LDLA_PT_GUARDED_BY(x) LDLA_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function callable only while holding the listed capabilities.
#define LDLA_REQUIRES(...) \
  LDLA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires the listed capabilities (held on return).
#define LDLA_ACQUIRE(...) \
  LDLA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the listed capabilities (must be held on entry).
#define LDLA_RELEASE(...) \
  LDLA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability when it returns `ret`.
#define LDLA_TRY_ACQUIRE(ret, ...) \
  LDLA_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Function that must NOT be called with the listed capabilities held
/// (deadlock prevention for self-locking entry points).
#define LDLA_EXCLUDES(...) LDLA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts (for the analysis only) that the capability is held.
#define LDLA_ASSERT_CAPABILITY(x) \
  LDLA_THREAD_ANNOTATION(assert_capability(x))

/// Return value carries the capability (lock accessor methods).
#define LDLA_RETURN_CAPABILITY(x) LDLA_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for trusted primitives the analysis cannot follow (e.g.
/// condition-variable wait relinking a scoped lock). Use sparingly; every
/// use is a hand-verified proof obligation.
#define LDLA_NO_THREAD_SAFETY_ANALYSIS \
  LDLA_THREAD_ANNOTATION(no_thread_safety_analysis)
