// Wall-clock and TSC timing utilities for the benchmark harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace ldla {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Serialized read of the time-stamp counter (constant-rate on modern x86).
std::uint64_t rdtsc_serialized();

/// Estimated TSC ticks per second, measured once against the steady clock.
double tsc_hz();

/// Estimated sustained core frequency in Hz, measured by timing a dependent
/// ALU chain of known length. Used to convert ops/sec into ops/cycle for the
/// %-of-peak reporting in Figures 3 and 4.
double estimated_core_hz();

/// Both clock calibrations, measured once per process and cached. Trace
/// reports embed these so a trace file is self-describing; callers that
/// need a calibration mid-run pay the (one-time) probe cost exactly once.
struct TimingCalibration {
  double tsc_hz = 0.0;
  double core_hz = 0.0;
};
const TimingCalibration& timing_calibration();

/// Prevent the optimizer from deleting a computed value.
template <typename T>
inline void do_not_optimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

/// Force memory side effects to be visible to the compiler.
inline void clobber_memory() { asm volatile("" : : : "memory"); }

}  // namespace ldla
